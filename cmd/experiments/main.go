// Command experiments runs every paper-reproduction experiment (E01–E24)
// and prints the per-experiment reports followed by a summary table; the
// recorded outputs back EXPERIMENTS.md.
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	results := experiments.RunAll(os.Stdout)
	fmt.Println("\n=== summary ===")
	pass := 0
	for _, r := range results {
		status := "PASS"
		if !r.Passed {
			status = "FAIL"
		} else {
			pass++
		}
		fmt.Printf("%-5s %-4s %s\n", r.ID, status, r.Notes)
	}
	fmt.Printf("%d/%d experiments reproduce the paper's claims\n", pass, len(results))
	if pass != len(results) {
		os.Exit(1)
	}
}
