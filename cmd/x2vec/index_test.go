package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
)

// writeCorpusFiles renders n random unlabelled graphs as edge-list files.
func writeCorpusFiles(t *testing.T, dir string, n int, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	paths := make([]string, n)
	for i := range paths {
		g := graph.Random(8+rng.Intn(6), 0.35, rng)
		var sb strings.Builder
		fmt.Fprintf(&sb, "# n=%d\n", g.N())
		for _, e := range g.Edges() {
			fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
		}
		p := filepath.Join(dir, fmt.Sprintf("g%02d.txt", i))
		if err := os.WriteFile(p, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	return paths
}

// TestCmdIndex: the offline half of the /neighbors quickstart — build an
// index over corpus files and check the saved file opens with the recorded
// shape and sketch parameters.
func TestCmdIndex(t *testing.T) {
	dir := t.TempDir()
	files := writeCorpusFiles(t, dir, 12, 3)
	out := filepath.Join(dir, "ix.x2vm")
	args := append([]string{"-out", out, "-sketch-rounds", "2", "-sketch-width", "32", "-tables", "4", "-bits", "8", "-workers", "2"}, files...)
	if err := cmdIndex(args); err != nil {
		t.Fatalf("cmdIndex: %v", err)
	}
	h, err := model.OpenANNIndex(out)
	if err != nil {
		t.Fatalf("OpenANNIndex: %v", err)
	}
	defer h.Close()
	ix := h.Index
	if ix.N != len(files) || ix.Dim != 32 || ix.Tables != 4 || ix.Bits != 8 {
		t.Fatalf("index shape n=%d dim=%d tables=%d bits=%d", ix.N, ix.Dim, ix.Tables, ix.Bits)
	}
	if ix.SketchRounds != 2 || ix.SketchWidth != 32 {
		t.Fatalf("sketch metadata rounds=%d width=%d", ix.SketchRounds, ix.SketchWidth)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestCmdIndexErrors(t *testing.T) {
	dir := t.TempDir()
	files := writeCorpusFiles(t, dir, 2, 7)
	if err := cmdIndex(files); err == nil {
		t.Fatal("missing -out accepted")
	}
	out := filepath.Join(dir, "ix.x2vm")
	if err := cmdIndex([]string{"-out", out}); err == nil {
		t.Fatal("no corpus files accepted")
	}
	if err := cmdIndex([]string{"-out", out, "-sketch-width", "0", files[0]}); err == nil {
		t.Fatal("zero sketch width accepted")
	}
	if err := cmdIndex([]string{"-out", out, "-bits", "64", files[0], files[1]}); err == nil {
		t.Fatal("oversized bits accepted")
	}
	if err := cmdIndex([]string{"-out", out, filepath.Join(dir, "missing.txt")}); err == nil {
		t.Fatal("missing corpus file accepted")
	}
}
