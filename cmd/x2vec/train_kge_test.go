package main

// CLI tests for the KGE and GNN training kinds of `x2vec train` (issue 10):
// triples file in → KindKGE model out on both engines (float64 oracle and
// -f32 Hogwild), rescal, the int8 serving tier, warm-start lineage chains,
// and the graph+labels → KindGNN path.

import (
	"path/filepath"
	"testing"

	"repro/internal/model"
)

const worldTriples = `# head relation tail
0 0 1
0 1 2
1 1 2
3 0 4
3 1 5
4 1 5
6 0 7
6 1 2
7 1 2
8 0 9
8 1 5
9 1 5
10 0 11
10 1 2
11 1 2
`

func TestTrainTransEAndRESCAL(t *testing.T) {
	triples := writeTemp(t, worldTriples)
	dir := t.TempDir()

	out := filepath.Join(dir, "transe.x2vm")
	if err := cmdTrain([]string{"-model", out, "-d", "8", "-epochs", "40", "transe", triples}); err != nil {
		t.Fatalf("train transe: %v", err)
	}
	m, err := model.OpenKGE(out)
	if err != nil {
		t.Fatalf("open saved transe: %v", err)
	}
	if m.Method != "transe" || m.DType != model.DTypeF64 || m.NumEntities != 12 ||
		m.NumRelations != 2 || m.Dim != 8 || len(m.Triples) != 15 {
		t.Fatalf("saved model %+v", m)
	}
	if len(m.KnownTails(0, 0)) != 1 || m.KnownTails(0, 0)[0] != 1 {
		t.Fatalf("stored triples lost: known tails of (0,0) = %v", m.KnownTails(0, 0))
	}
	m.Close()

	out32 := filepath.Join(dir, "transe32.x2vm")
	if err := cmdTrain([]string{"-model", out32, "-d", "8", "-epochs", "40", "-f32", "-workers", "0", "transe", triples}); err != nil {
		t.Fatalf("train transe -f32: %v", err)
	}
	m32, err := model.OpenKGE(out32)
	if err != nil {
		t.Fatal(err)
	}
	if m32.DType != model.DTypeF32 {
		t.Fatalf("-f32 model stored as %v", m32.DType)
	}
	m32.Close()

	q8 := filepath.Join(dir, "transe8.x2vm")
	if err := cmdTrain([]string{"-model", q8, "-d", "8", "-epochs", "40", "-quantize", "int8", "transe", triples}); err != nil {
		t.Fatalf("train transe -quantize int8: %v", err)
	}
	mq, err := model.OpenKGE(q8)
	if err != nil {
		t.Fatal(err)
	}
	if mq.DType != model.DTypeInt8 {
		t.Fatalf("quantised model stored as %v", mq.DType)
	}
	// The quantised tier still answers: top tails come back in range.
	preds, err := mq.View().TopTails(0, 0, 3, 1, nil)
	if err != nil || len(preds) != 3 {
		t.Fatalf("quantised TopTails: %v %v", preds, err)
	}
	mq.Close()

	outR := filepath.Join(dir, "rescal.x2vm")
	if err := cmdTrain([]string{"-model", outR, "-d", "4", "-epochs", "60", "rescal", triples}); err != nil {
		t.Fatalf("train rescal: %v", err)
	}
	mr, err := model.OpenKGE(outR)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Method != "rescal" || mr.RelWidth != 16 {
		t.Fatalf("rescal model %+v", mr)
	}
	mr.Close()
}

func TestTrainTransEWarmLineage(t *testing.T) {
	triples := writeTemp(t, worldTriples)
	dir := t.TempDir()
	parent := filepath.Join(dir, "parent.x2vm")
	child := filepath.Join(dir, "child.x2vm")
	grand := filepath.Join(dir, "grand.x2vm")

	if err := cmdTrain([]string{"-model", parent, "-d", "8", "-epochs", "40", "-f32", "transe", triples}); err != nil {
		t.Fatal(err)
	}
	parentCRC, err := model.FileCRC(parent)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdTrain([]string{"-model", child, "-warm", parent, "-epochs", "10", "transe", triples}); err != nil {
		t.Fatalf("warm transe: %v", err)
	}
	m, err := model.OpenKGE(child)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Lineage) != 1 || m.Lineage[0].Parent != parentCRC || m.Lineage[0].Seq != 1 {
		t.Fatalf("child lineage %+v, want parent CRC %08x seq 1", m.Lineage, parentCRC)
	}
	if m.DType != model.DTypeF32 {
		t.Fatalf("warm child stored as %v", m.DType)
	}
	m.Close()

	if err := cmdTrain([]string{"-model", grand, "-warm", child, "-epochs", "10", "transe", triples}); err != nil {
		t.Fatal(err)
	}
	g, err := model.OpenKGE(grand)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Lineage) != 2 || g.Lineage[1].Seq != 2 {
		t.Fatalf("grandchild lineage %+v", g.Lineage)
	}
	g.Close()
}

func TestTrainGNN(t *testing.T) {
	hexagon := writeTemp(t, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n")
	labels := writeTemp(t, "0\n1\n0\n-1\n0\n1\n")
	dir := t.TempDir()
	out := filepath.Join(dir, "gnn.x2vm")

	if err := cmdTrain([]string{"-model", out, "-d", "4", "-epochs", "20", "gnn", hexagon, labels}); err != nil {
		t.Fatalf("train gnn: %v", err)
	}
	m, err := model.OpenGNN(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Dims) != 2 || m.Dims[0] != 2 || m.Dims[1] != 4 || m.Classes != 2 || m.Features != "degree" {
		t.Fatalf("saved gnn %+v", m)
	}

	child := filepath.Join(dir, "gnn2.x2vm")
	if err := cmdTrain([]string{"-model", child, "-warm", out, "-epochs", "5", "gnn", hexagon, labels}); err != nil {
		t.Fatalf("warm gnn: %v", err)
	}
	c, err := model.OpenGNN(child)
	if err != nil {
		t.Fatal(err)
	}
	crc, err := model.FileCRC(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Lineage) != 1 || c.Lineage[0].Parent != crc {
		t.Fatalf("gnn child lineage %+v", c.Lineage)
	}
}

func TestTrainKGEAndGNNErrors(t *testing.T) {
	triples := writeTemp(t, worldTriples)
	hexagon := writeTemp(t, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n")
	out := filepath.Join(t.TempDir(), "m.x2vm")

	if err := cmdTrain([]string{"-model", out, "-f32", "rescal", triples}); err == nil {
		t.Fatal("rescal -f32 accepted")
	}
	if err := cmdTrain([]string{"-model", out, "-format", "v1", "transe", triples}); err == nil {
		t.Fatal("transe -format v1 accepted")
	}
	if err := cmdTrain([]string{"-model", out, "-warm", triples, "rescal", triples}); err == nil {
		t.Fatal("rescal -warm accepted")
	}
	if err := cmdTrain([]string{"-model", out, "transe", triples, triples}); err == nil {
		t.Fatal("two triples files accepted")
	}
	if err := cmdTrain([]string{"-model", out, "transe", writeTemp(t, "0 zero 1\n")}); err == nil {
		t.Fatal("malformed triples accepted")
	}
	if err := cmdTrain([]string{"-model", out, "-quantize", "int8", "gnn", hexagon, writeTemp(t, "0\n1\n0\n1\n0\n1\n")}); err == nil {
		t.Fatal("gnn -quantize accepted")
	}
	if err := cmdTrain([]string{"-model", out, "gnn", hexagon}); err == nil {
		t.Fatal("gnn without labels accepted")
	}
	if err := cmdTrain([]string{"-model", out, "gnn", hexagon, writeTemp(t, "0\n1\n")}); err == nil {
		t.Fatal("short labels file accepted")
	}
	if err := cmdTrain([]string{"-model", out, "gnn", hexagon, writeTemp(t, "-1\n-1\n-1\n-1\n-1\n-1\n")}); err == nil {
		t.Fatal("all-masked labels accepted")
	}
	// A rescal parent cannot warm-start transe.
	rp := filepath.Join(t.TempDir(), "r.x2vm")
	if err := cmdTrain([]string{"-model", rp, "-d", "4", "-epochs", "5", "rescal", triples}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrain([]string{"-model", out, "-warm", rp, "transe", triples}); err == nil {
		t.Fatal("transe warm-start from a rescal parent accepted")
	}
}
