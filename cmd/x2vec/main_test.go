package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadGraph(t *testing.T) {
	p := writeTemp(t, "# comment\n0 1\n1 2 2.5\n\n2 0\n")
	g, err := loadGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if w := g.EdgeWeight(1, 2); w != 2.5 {
		t.Errorf("weight=%v", w)
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
	p := writeTemp(t, "0\n")
	if _, err := loadGraph(p); err == nil {
		t.Error("malformed line should error")
	}
	p2 := writeTemp(t, "a b\n")
	if _, err := loadGraph(p2); err == nil {
		t.Error("non-numeric vertices should error")
	}
}

func TestParsePattern(t *testing.T) {
	tests := []struct {
		spec    string
		n, m    int
		wantErr bool
	}{
		{"path:4", 4, 3, false},
		{"cycle:5", 5, 5, false},
		{"star:3", 4, 3, false},
		{"clique:4", 4, 6, false},
		{"blob:3", 0, 0, true},
		{"path", 0, 0, true},
		{"path:x", 0, 0, true},
	}
	for _, tc := range tests {
		g, err := parsePattern(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		if g.N() != tc.n || g.M() != tc.m {
			t.Errorf("%s: n=%d m=%d, want %d,%d", tc.spec, g.N(), g.M(), tc.n, tc.m)
		}
	}
}

func TestSubcommands(t *testing.T) {
	triangle := writeTemp(t, "0 1\n1 2\n2 0\n")
	square := writeTemp(t, "0 1\n1 2\n2 3\n3 0\n")
	hexagon := writeTemp(t, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n")
	cases := []struct {
		name string
		run  func() error
	}{
		{"wl", func() error { return cmdWL([]string{triangle}, -1) }},
		{"wl-rounds", func() error { return cmdWL([]string{hexagon}, 2) }},
		{"hom", func() error { return cmdHom([]string{"cycle:3", triangle}) }},
		{"homvec", func() error { return cmdHomVec([]string{triangle, square, hexagon}) }},
		{"kernel", func() error { return cmdKernel([]string{"wl", triangle, square}, -1) }},
		{"kernel-rounds", func() error { return cmdKernel([]string{"wl", triangle, square}, 2) }},
		{"kernel-hom", func() error { return cmdKernel([]string{"hom", triangle, square}, -1) }},
		{"embed", func() error { return cmdEmbed([]string{"adjacency", triangle}) }},
		{"node2vec", func() error { return cmdNode2Vec([]string{hexagon}) }},
		{"node2vec-flags", func() error {
			return cmdNode2Vec([]string{"-d", "4", "-p", "0.5", "-q", "2", "-workers", "1", hexagon})
		}},
		{"dist", func() error { return cmdDist([]string{"frobenius", triangle, hexagon}) }},
	}
	for _, tc := range cases {
		if err := tc.run(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestSubcommandErrors(t *testing.T) {
	triangle := writeTemp(t, "0 1\n1 2\n2 0\n")
	if err := cmdKernel([]string{"nope", triangle, triangle}, -1); err == nil {
		t.Error("unknown kernel should error")
	}
	if err := cmdEmbed([]string{"nope", triangle}); err == nil {
		t.Error("unknown embed method should error")
	}
	if err := cmdDist([]string{"nope", triangle, triangle}); err == nil {
		t.Error("unknown norm should error")
	}
	if err := cmdWL([]string{}, -1); err == nil {
		t.Error("missing args should error")
	}
	if err := cmdNode2Vec([]string{}); err == nil {
		t.Error("node2vec without a file should error")
	}
	if err := cmdHomVec([]string{}); err == nil {
		t.Error("homvec without files should error")
	}
	if err := cmdHomVec([]string{filepath.Join(t.TempDir(), "missing.txt")}); err == nil {
		t.Error("homvec on a missing file should error")
	}
	// Alignment distance rejects pairs whose blown-up order explodes.
	big := writeTemp(t, "0 1\n1 2\n2 3\n3 4\n4 0\n")
	if err := cmdDist([]string{"frobenius", triangle, big}); err == nil {
		t.Error("lcm(3,5)=15 should be rejected")
	}
}
