package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadGraph(t *testing.T) {
	p := writeTemp(t, "# comment\n0 1\n1 2 2.5\n\n2 0\n")
	g, err := loadGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if w := g.EdgeWeight(1, 2); w != 2.5 {
		t.Errorf("weight=%v", w)
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
	p := writeTemp(t, "0\n")
	if _, err := loadGraph(p); err == nil {
		t.Error("malformed line should error")
	}
	p2 := writeTemp(t, "a b\n")
	if _, err := loadGraph(p2); err == nil {
		t.Error("non-numeric vertices should error")
	}
	// The shared reader turns what used to be a panic deep inside
	// graph.AddEdge into a decoding error.
	p3 := writeTemp(t, "-1 2\n")
	if _, err := loadGraph(p3); err == nil {
		t.Error("negative vertex id should error, not panic")
	}
}

// TestLoadGraphOrderHeader: the CLI honours "# n=K", so trailing isolated
// vertices survive the trip through an edge-list file.
func TestLoadGraphOrderHeader(t *testing.T) {
	p := writeTemp(t, "# n=6\n0 1\n")
	g, err := loadGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.M() != 1 {
		t.Fatalf("n=%d m=%d, want 6,1", g.N(), g.M())
	}
}

// TestTrainAndEmbedFromModel: train once, persist, reprint from the store —
// the offline half of the "train once, serve forever" acceptance loop.
func TestTrainAndEmbedFromModel(t *testing.T) {
	hexagon := writeTemp(t, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n")
	mp := filepath.Join(t.TempDir(), "n2v.bin")
	if err := cmdTrain([]string{"-model", mp, "-d", "4", "node2vec", hexagon}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEmbed([]string{"-model", mp}); err != nil {
		t.Fatal(err)
	}
	// graph2vec over a tiny corpus.
	triangle := writeTemp(t, "0 1\n1 2\n2 0\n")
	gp := filepath.Join(t.TempDir(), "g2v.bin")
	if err := cmdTrain([]string{"-model", gp, "-d", "4", "-epochs", "3", "graph2vec", triangle, hexagon}); err != nil {
		t.Fatal(err)
	}
	// line + homclass kinds.
	lp := filepath.Join(t.TempDir(), "line.bin")
	if err := cmdTrain([]string{"-model", lp, "-d", "4", "-epochs", "2", "line", hexagon}); err != nil {
		t.Fatal(err)
	}
	cp := filepath.Join(t.TempDir(), "class.bin")
	if err := cmdTrain([]string{"-model", cp, "homclass", "path:3", "cycle:4"}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainErrors(t *testing.T) {
	triangle := writeTemp(t, "0 1\n1 2\n2 0\n")
	if err := cmdTrain([]string{"node2vec", triangle}); err == nil {
		t.Error("train without -model should error")
	}
	mp := filepath.Join(t.TempDir(), "m.bin")
	if err := cmdTrain([]string{"-model", mp, "teleport", triangle}); err == nil {
		t.Error("unknown method should error")
	}
	if err := cmdTrain([]string{"-model", mp, "node2vec"}); err == nil {
		t.Error("node2vec without a file should error")
	}
	if err := cmdTrain([]string{"-model", mp, "homclass", "blob:3"}); err == nil {
		t.Error("bad pattern spec should error")
	}
}

func TestParsePattern(t *testing.T) {
	tests := []struct {
		spec    string
		n, m    int
		wantErr bool
	}{
		{"path:4", 4, 3, false},
		{"cycle:5", 5, 5, false},
		{"star:3", 4, 3, false},
		{"clique:4", 4, 6, false},
		{"blob:3", 0, 0, true},
		{"path", 0, 0, true},
		{"path:x", 0, 0, true},
	}
	for _, tc := range tests {
		g, err := parsePattern(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		if g.N() != tc.n || g.M() != tc.m {
			t.Errorf("%s: n=%d m=%d, want %d,%d", tc.spec, g.N(), g.M(), tc.n, tc.m)
		}
	}
}

func TestSubcommands(t *testing.T) {
	triangle := writeTemp(t, "0 1\n1 2\n2 0\n")
	square := writeTemp(t, "0 1\n1 2\n2 3\n3 0\n")
	hexagon := writeTemp(t, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n")
	cases := []struct {
		name string
		run  func() error
	}{
		{"wl", func() error { return cmdWL([]string{triangle}, -1) }},
		{"wl-rounds", func() error { return cmdWL([]string{hexagon}, 2) }},
		{"hom", func() error { return cmdHom([]string{"cycle:3", triangle}) }},
		{"homvec", func() error { return cmdHomVec([]string{triangle, square, hexagon}, 0) }},
		{"homvec-workers", func() error { return cmdHomVec([]string{triangle, square}, 2) }},
		{"kernel", func() error { return cmdKernel([]string{"wl", triangle, square}, -1, 0) }},
		{"kernel-rounds", func() error { return cmdKernel([]string{"wl", triangle, square}, 2, 0) }},
		{"kernel-workers", func() error { return cmdKernel([]string{"wl", triangle, square}, -1, 2) }},
		{"kernel-hom", func() error { return cmdKernel([]string{"hom", triangle, square}, -1, 0) }},
		{"embed", func() error { return cmdEmbed([]string{"adjacency", triangle}) }},
		{"node2vec", func() error { return cmdNode2Vec([]string{hexagon}) }},
		{"node2vec-flags", func() error {
			return cmdNode2Vec([]string{"-d", "4", "-p", "0.5", "-q", "2", "-workers", "1", hexagon})
		}},
		{"dist", func() error { return cmdDist([]string{"frobenius", triangle, hexagon}) }},
	}
	for _, tc := range cases {
		if err := tc.run(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestSubcommandErrors(t *testing.T) {
	triangle := writeTemp(t, "0 1\n1 2\n2 0\n")
	if err := cmdKernel([]string{"nope", triangle, triangle}, -1, 0); err == nil {
		t.Error("unknown kernel should error")
	}
	if err := cmdEmbed([]string{"nope", triangle}); err == nil {
		t.Error("unknown embed method should error")
	}
	if err := cmdDist([]string{"nope", triangle, triangle}); err == nil {
		t.Error("unknown norm should error")
	}
	if err := cmdWL([]string{}, -1); err == nil {
		t.Error("missing args should error")
	}
	if err := cmdNode2Vec([]string{}); err == nil {
		t.Error("node2vec without a file should error")
	}
	if err := cmdHomVec([]string{}, 0); err == nil {
		t.Error("homvec without files should error")
	}
	if err := cmdHomVec([]string{filepath.Join(t.TempDir(), "missing.txt")}, 0); err == nil {
		t.Error("homvec on a missing file should error")
	}
	// Alignment distance rejects pairs whose blown-up order explodes.
	big := writeTemp(t, "0 1\n1 2\n2 3\n3 4\n4 0\n")
	if err := cmdDist([]string{"frobenius", triangle, big}); err == nil {
		t.Error("lcm(3,5)=15 should be rejected")
	}
}

// TestTrainWarmStartLineage: `train -warm` fine-tunes from a saved parent
// and the child's lineage chain records the parent's file CRC; a second
// generation extends the chain with an incremented sequence number.
func TestTrainWarmStartLineage(t *testing.T) {
	hexagon := writeTemp(t, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n")
	dir := t.TempDir()
	parent := filepath.Join(dir, "parent.bin")
	if err := cmdTrain([]string{"-model", parent, "-d", "4", "-f32", "node2vec", hexagon}); err != nil {
		t.Fatal(err)
	}
	child := filepath.Join(dir, "child.bin")
	if err := cmdTrain([]string{"-model", child, "-warm", parent, "node2vec", hexagon}); err != nil {
		t.Fatal(err)
	}
	parentCRC, err := model.FileCRC(parent)
	if err != nil {
		t.Fatal(err)
	}
	e, err := model.OpenEmbeddings(child)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rows != 6 || e.Cols != 4 {
		t.Fatalf("child shape %dx%d, want 6x4 (dimension comes from the parent)", e.Rows, e.Cols)
	}
	want := model.LineageEntry{Parent: parentCRC, Seq: 1, Note: "node2vec fine-tune"}
	if len(e.Lineage) != 1 || e.Lineage[0] != want {
		t.Fatalf("child lineage %+v, want [%+v]", e.Lineage, want)
	}
	e.Close()

	// Generation 3 chains onto generation 2.
	grand := filepath.Join(dir, "grand.bin")
	if err := cmdTrain([]string{"-model", grand, "-warm", child, "deepwalk", hexagon}); err != nil {
		t.Fatal(err)
	}
	childCRC, err := model.FileCRC(child)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := model.OpenEmbeddings(grand)
	if err != nil {
		t.Fatal(err)
	}
	defer ge.Close()
	if len(ge.Lineage) != 2 {
		t.Fatalf("grandchild chain %+v, want depth 2", ge.Lineage)
	}
	if ge.Lineage[0] != want {
		t.Errorf("inherited entry %+v, want %+v", ge.Lineage[0], want)
	}
	if got := (model.LineageEntry{Parent: childCRC, Seq: 2, Note: "deepwalk fine-tune"}); ge.Lineage[1] != got {
		t.Errorf("new entry %+v, want %+v", ge.Lineage[1], got)
	}
}

func TestTrainWarmStartErrors(t *testing.T) {
	hexagon := writeTemp(t, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n")
	dir := t.TempDir()
	out := filepath.Join(dir, "out.bin")
	missing := filepath.Join(dir, "missing.bin")
	if err := cmdTrain([]string{"-model", out, "-warm", missing, "node2vec", hexagon}); err == nil {
		t.Error("missing -warm parent should fail")
	}
	if err := cmdTrain([]string{"-model", out, "-warm", missing, "-format", "v1", "node2vec", hexagon}); err == nil {
		t.Error("-warm with -format v1 should fail (lineage needs v2)")
	}
	if err := cmdTrain([]string{"-model", out, "-warm", missing, "line", hexagon}); err == nil {
		t.Error("-warm with a non-SGNS method should fail")
	}
	// A hom class is not a node-embedding parent.
	cp := filepath.Join(dir, "class.bin")
	if err := cmdTrain([]string{"-model", cp, "homclass", "path:3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrain([]string{"-model", out, "-warm", cp, "node2vec", hexagon}); err == nil {
		t.Error("hom-class parent should fail")
	}
}
