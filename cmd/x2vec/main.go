// Command x2vec is a small CLI over the library: colour refinement,
// homomorphism counting, graph kernels, node embeddings, and graph
// distances on edge-list files.
//
// Usage:
//
//	x2vec [-rounds T] [-parallel N] wl FILE      stable 1-WL colouring (-rounds T: stop after T rounds)
//	x2vec hom PATTERN FILE                       homomorphism count (PATTERN: path:K, cycle:K, star:K, clique:K)
//	x2vec homvec FILE...                         log-scaled homomorphism vectors over the standard class,
//	                                             one compiled corpus pass for all files
//	x2vec [-rounds T] kernel NAME A B            kernel value between two graphs (wl, sp, graphlet, hom)
//	x2vec embed METHOD FILE                      node embedding (adjacency, distance, node2vec, deepwalk)
//	x2vec node2vec [-d D] [-p P] [-q Q] [-workers N] FILE
//	                                             node2vec on the Hogwild SGNS engine (-workers 1 is
//	                                             deterministic, 0 uses GOMAXPROCS lock-free workers)
//	x2vec dist NORM A B                          aligned distance (frobenius, l1, cut) — small graphs only
//
// -rounds sets the WL refinement depth (-1, the default, refines to
// stability for `wl` and uses the kernel default of 5 for `kernel wl`);
// -parallel caps the worker count of the parallel refinement and Gram
// pipelines (0 keeps the GOMAXPROCS default).
//
// Edge-list format: one "u v [weight]" pair per line; vertex count inferred.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/kernel"
	"repro/internal/similarity"
	"repro/internal/wl"
)

func main() {
	rounds := flag.Int("rounds", -1, "WL refinement depth; -1 = refine to stability (wl) / kernel default (kernel wl)")
	parallel := flag.Int("parallel", 0, "worker count for parallel pipelines; 0 = GOMAXPROCS")
	flag.Usage = func() { usage() }
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	if *parallel > 0 {
		// The refinement / Gram worker pools size themselves off
		// GOMAXPROCS, so capping it caps every parallel pipeline at once.
		runtime.GOMAXPROCS(*parallel)
	}
	var err error
	switch args[0] {
	case "wl":
		err = cmdWL(args[1:], *rounds)
	case "hom":
		err = cmdHom(args[1:])
	case "homvec":
		err = cmdHomVec(args[1:])
	case "kernel":
		err = cmdKernel(args[1:], *rounds)
	case "embed":
		err = cmdEmbed(args[1:])
	case "node2vec":
		err = cmdNode2Vec(args[1:])
	case "dist":
		err = cmdDist(args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "x2vec:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: x2vec [-rounds T] [-parallel N] {wl|hom|homvec|kernel|embed|node2vec|dist} ...")
	os.Exit(2)
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var edges [][3]float64
	maxV := -1
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("bad edge line: %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, err
			}
		}
		edges = append(edges, [3]float64{float64(u), float64(v), w})
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := graph.New(maxV + 1)
	for _, e := range edges {
		g.AddWeightedEdge(int(e[0]), int(e[1]), e[2])
	}
	return g, nil
}

func parsePattern(spec string) (*graph.Graph, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("pattern must be kind:size, got %q", spec)
	}
	k, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, err
	}
	switch parts[0] {
	case "path":
		return graph.Path(k), nil
	case "cycle":
		return graph.Cycle(k), nil
	case "star":
		return graph.Star(k), nil
	case "clique":
		return graph.Complete(k), nil
	}
	return nil, fmt.Errorf("unknown pattern kind %q", parts[0])
}

func cmdWL(args []string, rounds int) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: x2vec [-rounds T] wl FILE")
	}
	g, err := loadGraph(args[0])
	if err != nil {
		return err
	}
	var c *wl.Coloring
	if rounds >= 0 {
		c = wl.RefineRounds(g, rounds)
	} else {
		c = wl.Refine(g)
	}
	fmt.Printf("n=%d m=%d rounds=%d classes=%d\n", g.N(), g.M(), c.Rounds, c.NumColors())
	for color, vs := range c.Classes() {
		fmt.Printf("  colour %d: %v\n", color, vs)
	}
	return nil
}

func cmdHom(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: x2vec hom PATTERN FILE")
	}
	pattern, err := parsePattern(args[0])
	if err != nil {
		return err
	}
	g, err := loadGraph(args[1])
	if err != nil {
		return err
	}
	fmt.Printf("hom(%s, %s) = %g\n", args[0], args[1], hom.Count(pattern, g))
	return nil
}

// cmdHomVec prints the Section 4 log-scaled homomorphism vector of every
// input graph over the standard ~20-pattern class. The class compiles once
// and all files evaluate in one batched corpus pass — the CLI face of
// hom.Compile / hom.CorpusLogScaledVectors.
func cmdHomVec(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: x2vec homvec FILE...")
	}
	gs := make([]*graph.Graph, len(args))
	for i, path := range args {
		g, err := loadGraph(path)
		if err != nil {
			return err
		}
		gs[i] = g
	}
	vecs := hom.CorpusLogScaledVectors(hom.Compile(hom.StandardClass()), gs)
	for i, path := range args {
		fmt.Printf("%s", path)
		for _, x := range vecs[i] {
			fmt.Printf(" %.4f", x)
		}
		fmt.Println()
	}
	return nil
}

func cmdKernel(args []string, rounds int) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: x2vec [-rounds T] kernel {wl|sp|graphlet|hom} A B")
	}
	if rounds < 0 {
		rounds = 5 // the WL kernel default shared with the experiments
	}
	var k kernel.Kernel
	switch args[0] {
	case "wl":
		k = kernel.WLSubtree{Rounds: rounds}
	case "sp":
		k = kernel.ShortestPath{}
	case "graphlet":
		k = kernel.Graphlet{Size: 3}
	case "hom":
		k = kernel.HomVector{Log: true}
	default:
		return fmt.Errorf("unknown kernel %q", args[0])
	}
	a, err := loadGraph(args[1])
	if err != nil {
		return err
	}
	b, err := loadGraph(args[2])
	if err != nil {
		return err
	}
	fmt.Printf("K_%s = %g\n", k.Name(), k.Compute(a, b))
	return nil
}

func cmdEmbed(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: x2vec embed {adjacency|distance|node2vec|deepwalk} FILE")
	}
	g, err := loadGraph(args[1])
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	var e *embed.NodeEmbedding
	switch args[0] {
	case "adjacency":
		e = embed.AdjacencySpectral(g, 2)
	case "distance":
		e = embed.DistanceSimilaritySpectral(g, 2, 2)
	case "node2vec":
		e = embed.Node2Vec(g, 8, 1, 0.5, rng)
	case "deepwalk":
		e = embed.DeepWalk(g, 8, rng)
	default:
		return fmt.Errorf("unknown method %q", args[0])
	}
	for v := 0; v < g.N(); v++ {
		fmt.Printf("%d", v)
		for _, x := range e.Vector(v) {
			fmt.Printf(" %.4f", x)
		}
		fmt.Println()
	}
	return nil
}

// cmdNode2Vec is the learned-embedding face of the Hogwild SGNS engine:
// (p,q)-biased walks generated in parallel, trained by sgns through
// embed.Node2VecWorkers. -workers 1 selects the deterministic sequential
// mode; 0 trains lock-free across GOMAXPROCS workers.
func cmdNode2Vec(args []string) error {
	fs := flag.NewFlagSet("node2vec", flag.ContinueOnError)
	d := fs.Int("d", 8, "embedding dimension")
	p := fs.Float64("p", 1, "return parameter (bias towards revisiting the previous vertex)")
	q := fs.Float64("q", 1, "in-out parameter (bias towards leaving the previous neighbourhood)")
	workers := fs.Int("workers", 0, "SGNS worker count: 0 = GOMAXPROCS Hogwild, 1 = deterministic")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: x2vec node2vec [-d D] [-p P] [-q Q] [-workers N] FILE")
	}
	g, err := loadGraph(fs.Arg(0))
	if err != nil {
		return err
	}
	e := embed.Node2VecWorkers(g, *d, *p, *q, *workers, rand.New(rand.NewSource(1)))
	for v := 0; v < g.N(); v++ {
		fmt.Printf("%d", v)
		for _, x := range e.Vector(v) {
			fmt.Printf(" %.4f", x)
		}
		fmt.Println()
	}
	return nil
}

func cmdDist(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: x2vec dist {frobenius|l1|cut} A B")
	}
	var norm similarity.Norm
	switch args[0] {
	case "frobenius":
		norm = similarity.Frobenius
	case "l1":
		norm = similarity.Entry1
	case "cut":
		norm = similarity.Cut
	default:
		return fmt.Errorf("unknown norm %q", args[0])
	}
	a, err := loadGraph(args[1])
	if err != nil {
		return err
	}
	b, err := loadGraph(args[2])
	if err != nil {
		return err
	}
	l := lcm(a.N(), b.N())
	if l > 8 {
		return fmt.Errorf("exact alignment distance limited to graphs whose order lcm is <= 8 (got %d)", l)
	}
	fmt.Printf("dist = %g\n", similarity.DistAnyOrder(a, b, norm))
	return nil
}

func lcm(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
