// Command x2vec is a small CLI over the library: colour refinement,
// homomorphism counting, graph kernels, node embeddings, and graph
// distances on edge-list files.
//
// Usage:
//
//	x2vec [-rounds T] [-parallel N] wl FILE      stable 1-WL colouring (-rounds T: stop after T rounds)
//	x2vec hom PATTERN FILE                       homomorphism count (PATTERN: path:K, cycle:K, star:K, clique:K)
//	x2vec homvec FILE...                         log-scaled homomorphism vectors over the standard class,
//	                                             one compiled corpus pass for all files
//	x2vec [-rounds T] kernel NAME A B            kernel value between two graphs (wl, sp, graphlet, hom)
//	x2vec embed METHOD FILE                      node embedding (adjacency, distance, node2vec, deepwalk)
//	x2vec embed -model M.bin                     print the vectors of a saved model instead of retraining
//	x2vec node2vec [-d D] [-p P] [-q Q] [-workers N] FILE
//	                                             node2vec on the Hogwild SGNS engine (-workers 1 is
//	                                             deterministic, 0 uses GOMAXPROCS lock-free workers)
//	x2vec train -model M.bin METHOD FILE...      train once and persist (node2vec, deepwalk, line,
//	                                             graph2vec) or save a pattern class (homclass); the
//	                                             saved file feeds `x2vec embed -model` and x2vecd
//	x2vec train -model M.x2vm transe TRIPLES     knowledge-graph embedding from "head relation tail"
//	                                             integer-id lines (transe or rescal; transe -f32 runs
//	                                             the Hogwild float32 engine); x2vecd serves the saved
//	                                             model on /link-predict in the filtered setting
//	x2vec train -model M.x2vm gnn GRAPH LABELS   message-passing network on one graph (one integer
//	                                             label per vertex line, -1 = unlabeled); x2vecd then
//	                                             embeds request graphs through POST /embed {"graph":…}
//	x2vec train -warm P.bin -model M.bin node2vec FILE
//	                                             warm-start fine-tune from a saved parent in a
//	                                             fraction of the epochs; the child's lineage chain
//	                                             records the parent's file CRC (node2vec, deepwalk,
//	                                             transe, gnn)
//	x2vec index -out I.x2vm FILE...              build the LSH similarity index over the corpus files
//	                                             (count-sketch WL features + sign-random-projection
//	                                             tables); x2vecd -index serves it on /neighbors
//	x2vec dist NORM A B                          aligned distance (frobenius, l1, cut) — small graphs only
//
// -rounds sets the WL refinement depth (-1, the default, refines to
// stability for `wl` and uses the kernel default of 5 for `kernel wl`).
// -parallel caps the workers of the corpus pipelines behind `homvec` and
// `kernel` (0 = GOMAXPROCS); the learned-embedding commands (`node2vec`,
// `train`) take their own -workers flag, which caps walk generation and
// SGNS training together. All of these thread explicit worker counts
// through the library — nothing mutates the process-global GOMAXPROCS.
//
// Edge-list format: one "u v [weight]" pair per line; a "# n=K" comment
// pins the vertex count (for trailing isolated vertices); otherwise the
// count is inferred from the largest endpoint.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/ann"
	"repro/internal/embed"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/graph2vec"
	"repro/internal/hom"
	"repro/internal/kernel"
	"repro/internal/kge"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/wl"
)

func main() {
	rounds := flag.Int("rounds", -1, "WL refinement depth; -1 = refine to stability (wl) / kernel default (kernel wl)")
	parallel := flag.Int("parallel", 0, "worker cap for the homvec/kernel corpus pipelines; 0 = GOMAXPROCS")
	flag.Usage = func() { usage() }
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	// -parallel used to mutate runtime.GOMAXPROCS — wrong in-process (it
	// throttled every goroutine, not just the pipelines) and fatal in a
	// shared daemon. It now flows through the explicit worker-count APIs.
	var err error
	switch args[0] {
	case "wl":
		err = cmdWL(args[1:], *rounds)
	case "hom":
		err = cmdHom(args[1:])
	case "homvec":
		err = cmdHomVec(args[1:], *parallel)
	case "kernel":
		err = cmdKernel(args[1:], *rounds, *parallel)
	case "embed":
		err = cmdEmbed(args[1:])
	case "node2vec":
		err = cmdNode2Vec(args[1:])
	case "train":
		err = cmdTrain(args[1:])
	case "index":
		err = cmdIndex(args[1:])
	case "dist":
		err = cmdDist(args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "x2vec:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: x2vec [-rounds T] [-parallel N] {wl|hom|homvec|kernel|embed|node2vec|train|index|dist} ...")
	os.Exit(2)
}

// loadGraph reads one edge-list file through the shared validating reader
// (internal/graph), which the x2vecd request decoder reuses: bad ids are
// errors, and "# n=K" headers declare trailing isolated vertices.
func loadGraph(path string) (*graph.Graph, error) {
	return graph.LoadGraphFile(path)
}

func parsePattern(spec string) (*graph.Graph, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("pattern must be kind:size, got %q", spec)
	}
	k, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, err
	}
	switch parts[0] {
	case "path":
		return graph.Path(k), nil
	case "cycle":
		return graph.Cycle(k), nil
	case "star":
		return graph.Star(k), nil
	case "clique":
		return graph.Complete(k), nil
	}
	return nil, fmt.Errorf("unknown pattern kind %q", parts[0])
}

func cmdWL(args []string, rounds int) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: x2vec [-rounds T] wl FILE")
	}
	g, err := loadGraph(args[0])
	if err != nil {
		return err
	}
	var c *wl.Coloring
	if rounds >= 0 {
		c = wl.RefineRounds(g, rounds)
	} else {
		c = wl.Refine(g)
	}
	fmt.Printf("n=%d m=%d rounds=%d classes=%d\n", g.N(), g.M(), c.Rounds, c.NumColors())
	for color, vs := range c.Classes() {
		fmt.Printf("  colour %d: %v\n", color, vs)
	}
	return nil
}

func cmdHom(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: x2vec hom PATTERN FILE")
	}
	pattern, err := parsePattern(args[0])
	if err != nil {
		return err
	}
	g, err := loadGraph(args[1])
	if err != nil {
		return err
	}
	fmt.Printf("hom(%s, %s) = %g\n", args[0], args[1], hom.Count(pattern, g))
	return nil
}

// cmdHomVec prints the Section 4 log-scaled homomorphism vector of every
// input graph over the standard ~20-pattern class. The class compiles once
// and all files evaluate in one batched corpus pass — the CLI face of
// hom.Compile / hom.CorpusLogScaledVectors.
func cmdHomVec(args []string, workers int) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: x2vec homvec FILE...")
	}
	gs := make([]*graph.Graph, len(args))
	for i, path := range args {
		g, err := loadGraph(path)
		if err != nil {
			return err
		}
		gs[i] = g
	}
	vecs := hom.CorpusLogScaledVectorsWorkers(hom.Compile(hom.StandardClass()), gs, workers)
	for i, path := range args {
		fmt.Printf("%s", path)
		for _, x := range vecs[i] {
			fmt.Printf(" %.4f", x)
		}
		fmt.Println()
	}
	return nil
}

func cmdKernel(args []string, rounds, workers int) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: x2vec [-rounds T] kernel {wl|sp|graphlet|hom} A B")
	}
	if rounds < 0 {
		rounds = 5 // the WL kernel default shared with the experiments
	}
	var k kernel.Kernel
	switch args[0] {
	case "wl":
		k = kernel.WLSubtree{Rounds: rounds}
	case "sp":
		k = kernel.ShortestPath{}
	case "graphlet":
		k = kernel.Graphlet{Size: 3}
	case "hom":
		k = kernel.HomVector{Log: true}
	default:
		return fmt.Errorf("unknown kernel %q", args[0])
	}
	a, err := loadGraph(args[1])
	if err != nil {
		return err
	}
	b, err := loadGraph(args[2])
	if err != nil {
		return err
	}
	// One worker-capped Gram over the pair exercises the same corpus
	// pipeline the daemon batches; entry (0,1) is K(a, b).
	gram := kernel.GramWorkers(k, []*graph.Graph{a, b}, workers)
	fmt.Printf("K_%s = %g\n", k.Name(), gram.At(0, 1))
	return nil
}

func cmdEmbed(args []string) error {
	fs := flag.NewFlagSet("embed", flag.ContinueOnError)
	modelPath := fs.String("model", "", "print the vectors of this saved model instead of retraining")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath != "" {
		// Trained once, reused forever: a float64 model round-trips
		// bit-identically, so this prints exactly what training printed.
		// OpenEmbeddings negotiates both format versions and every
		// embedding kind (node2vec, graph2vec, word2vec, quantised tiers).
		if fs.NArg() != 0 {
			return fmt.Errorf("usage: x2vec embed -model M.bin")
		}
		e, err := model.OpenEmbeddings(*modelPath)
		if err != nil {
			return err
		}
		defer e.Close()
		if err := e.Verify(); err != nil {
			return err
		}
		row := make([]float64, e.Cols)
		for v := 0; v < e.Rows; v++ {
			e.VectorInto(row, v)
			fmt.Printf("%d", v)
			for _, x := range row {
				fmt.Printf(" %.4f", x)
			}
			fmt.Println()
		}
		return nil
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: x2vec embed {adjacency|distance|node2vec|deepwalk} FILE | x2vec embed -model M.bin")
	}
	g, err := loadGraph(fs.Arg(1))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	var e *embed.NodeEmbedding
	switch fs.Arg(0) {
	case "adjacency":
		e = embed.AdjacencySpectral(g, 2)
	case "distance":
		e = embed.DistanceSimilaritySpectral(g, 2, 2)
	case "node2vec":
		e = embed.Node2Vec(g, 8, 1, 0.5, rng)
	case "deepwalk":
		e = embed.DeepWalk(g, 8, rng)
	default:
		return fmt.Errorf("unknown method %q", fs.Arg(0))
	}
	printVectors(e, g.N())
	return nil
}

func printVectors(e *embed.NodeEmbedding, n int) {
	for v := 0; v < n; v++ {
		fmt.Printf("%d", v)
		for _, x := range e.Vector(v) {
			fmt.Printf(" %.4f", x)
		}
		fmt.Println()
	}
}

// cmdNode2Vec is the learned-embedding face of the Hogwild SGNS engine:
// (p,q)-biased walks generated in parallel, trained by sgns through
// embed.Node2VecWorkers. -workers 1 selects the deterministic sequential
// mode; 0 trains lock-free across GOMAXPROCS workers.
func cmdNode2Vec(args []string) error {
	fs := flag.NewFlagSet("node2vec", flag.ContinueOnError)
	d := fs.Int("d", 8, "embedding dimension")
	p := fs.Float64("p", 1, "return parameter (bias towards revisiting the previous vertex)")
	q := fs.Float64("q", 1, "in-out parameter (bias towards leaving the previous neighbourhood)")
	workers := fs.Int("workers", 0, "SGNS worker count: 0 = GOMAXPROCS Hogwild, 1 = deterministic")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: x2vec node2vec [-d D] [-p P] [-q Q] [-workers N] FILE")
	}
	g, err := loadGraph(fs.Arg(0))
	if err != nil {
		return err
	}
	e := embed.Node2VecWorkers(g, *d, *p, *q, *workers, rand.New(rand.NewSource(1)))
	printVectors(e, g.N())
	return nil
}

// cmdTrain is the persistence face of the embedding engines: train once
// with a fixed seed (workers defaults to 1, the engine's bit-deterministic
// sequential mode) and save through the versioned model store. A saved
// model feeds `x2vec embed -model` and the x2vecd daemon, which then serve
// vectors bit-identical to this offline pipeline without ever retraining.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	modelPath := fs.String("model", "", "output model file (required)")
	d := fs.Int("d", 8, "embedding dimension")
	p := fs.Float64("p", 1, "node2vec return parameter")
	q := fs.Float64("q", 1, "node2vec in-out parameter")
	workers := fs.Int("workers", 1, "SGNS worker count: 1 = deterministic, 0 = GOMAXPROCS Hogwild")
	epochs := fs.Int("epochs", 0, "training epochs (0 = method default)")
	f32 := fs.Bool("f32", false, "train on the float32 fused-kernel SGNS engine (node2vec, deepwalk, graph2vec)")
	format := fs.String("format", "v2", "model file format: v2 (mmap-friendly serving layout) or v1 (legacy decode-on-load)")
	quantize := fs.String("quantize", "none", "embedding storage tier: none or int8 (v2 only; symmetric per-row scales behind a cosine quality gate)")
	warm := fs.String("warm", "", "warm-start node2vec/deepwalk from this saved model instead of random init; the output records the parent in its lineage chain")
	if err := fs.Parse(args); err != nil {
		return err
	}
	usageErr := fmt.Errorf("usage: x2vec train [-d D] [-p P] [-q Q] [-workers N] [-epochs E] [-f32] [-warm PARENT.bin] [-format v1|v2] [-quantize none|int8] -model M.bin {node2vec|deepwalk|line|graph2vec|homclass|transe|rescal|gnn} FILE...")
	if *modelPath == "" || fs.NArg() < 1 {
		return usageErr
	}
	if *format != "v1" && *format != "v2" {
		return fmt.Errorf("unknown -format %q (want v1 or v2)", *format)
	}
	switch *quantize {
	case "none":
	case "int8":
		if *format == "v1" {
			return fmt.Errorf("-quantize int8 needs the v2 format (the v1 layout has no quantised tier)")
		}
	default:
		return fmt.Errorf("unknown -quantize %q (want none or int8)", *quantize)
	}
	method, files := fs.Arg(0), fs.Args()[1:]
	if *warm != "" {
		switch method {
		case "node2vec", "deepwalk", "transe", "gnn":
		default:
			return fmt.Errorf("-warm fine-tunes node2vec, deepwalk, transe and gnn only")
		}
		if *format == "v1" {
			return fmt.Errorf("-warm records a lineage chain, which needs -format v2")
		}
	}
	rng := rand.New(rand.NewSource(1))

	loadOne := func() (*graph.Graph, error) {
		if len(files) != 1 {
			return nil, fmt.Errorf("train %s wants exactly one FILE", method)
		}
		return loadGraph(files[0])
	}

	// saveNode persists a node embedding in the chosen format; saveDocs is
	// its graph2vec twin. Both route v2 through the quantisation-aware
	// helper below.
	saveNode := func(e *embed.NodeEmbedding, lineage []model.LineageEntry) error {
		if *format == "v1" {
			return model.SaveNodeEmbedding(*modelPath, e)
		}
		return saveEmbeddingsFile(*modelPath, model.KindNodeEmbedding, e.Method,
			e.Vectors.Rows, e.Vectors.Cols, e.Vectors.Data, *f32, *quantize, lineage)
	}

	switch method {
	case "node2vec", "deepwalk":
		g, err := loadOne()
		if err != nil {
			return err
		}
		pp, qq := *p, *q
		if method == "deepwalk" {
			pp, qq = 1, 1
		}
		if *warm != "" {
			return fineTuneNode(g, method, *warm, *modelPath, pp, qq, *workers, *epochs, *quantize, rng)
		}
		var e *embed.NodeEmbedding
		if *f32 {
			e = embed.Node2VecWorkersF32(g, *d, pp, qq, *workers, rng)
		} else {
			e = embed.Node2VecWorkers(g, *d, pp, qq, *workers, rng)
		}
		if err := saveNode(e, nil); err != nil {
			return err
		}
		fmt.Printf("saved %s model: %d vertices x %d dims -> %s\n", method, g.N(), *d, *modelPath)
	case "line":
		if *f32 {
			return fmt.Errorf("train line has no -f32 engine (only the SGNS methods train in float32)")
		}
		g, err := loadOne()
		if err != nil {
			return err
		}
		ep := *epochs
		if ep == 0 {
			ep = 30
		}
		e := embed.LINE(g, *d, ep, 0.025, rng)
		if err := saveNode(e, nil); err != nil {
			return err
		}
		fmt.Printf("saved line model: %d vertices x %d dims -> %s\n", g.N(), *d, *modelPath)
	case "graph2vec":
		if len(files) < 1 {
			return fmt.Errorf("train graph2vec wants one FILE per corpus graph")
		}
		gs := make([]*graph.Graph, len(files))
		for i, path := range files {
			g, err := loadGraph(path)
			if err != nil {
				return err
			}
			gs[i] = g
		}
		cfg := graph2vec.DefaultConfig()
		cfg.Dim = *d
		cfg.Workers = *workers
		cfg.Float32 = *f32
		if *epochs > 0 {
			cfg.Epochs = *epochs
		}
		m := graph2vec.Train(gs, cfg, rng)
		var saveErr error
		if *format == "v1" {
			saveErr = model.SaveGraph2Vec(*modelPath, m)
		} else {
			saveErr = saveEmbeddingsFile(*modelPath, model.KindGraph2Vec, "graph2vec",
				m.Vectors.Rows, m.Vectors.Cols, m.Vectors.Data, *f32, *quantize, nil)
		}
		if saveErr != nil {
			return saveErr
		}
		fmt.Printf("saved graph2vec model: %d graphs x %d dims -> %s\n", len(gs), *d, *modelPath)
	case "transe", "rescal":
		if *format == "v1" {
			return fmt.Errorf("train %s needs -format v2 (the v1 layout has no KGE kind)", method)
		}
		if len(files) != 1 {
			return fmt.Errorf("train %s wants exactly one TRIPLES file (\"head relation tail\" integer-id lines)", method)
		}
		return trainKGE(method, files[0], *modelPath, *warm, *d, *epochs, *workers, *f32, *quantize)
	case "gnn":
		if *format == "v1" {
			return fmt.Errorf("train gnn needs -format v2 (the v1 layout has no GNN kind)")
		}
		if *quantize != "none" {
			return fmt.Errorf("train gnn stores network parameters applied layer over layer; -quantize does not apply")
		}
		if len(files) != 2 {
			return fmt.Errorf("train gnn wants GRAPH and LABELS files (one integer label per vertex line, -1 = unlabeled)")
		}
		return trainGNN(files[0], files[1], *modelPath, *warm, *d, *epochs, *f32, rng)
	case "homclass":
		if *f32 || *quantize != "none" {
			return fmt.Errorf("train homclass stores graphs, not vectors; -f32/-quantize do not apply")
		}
		// Arguments are pattern specs (path:4, cycle:5, …); none = the
		// standard class. The daemon loads this with -homclass. Pattern
		// classes always use the v1 container — they are decode-once
		// graph payloads, not mmap-served vector tables.
		class := hom.StandardClass()
		if len(files) > 0 {
			class = nil
			for _, spec := range files {
				f, err := parsePattern(spec)
				if err != nil {
					return err
				}
				class = append(class, f)
			}
		}
		if err := model.SaveHomClass(*modelPath, class); err != nil {
			return err
		}
		fmt.Printf("saved hom class: %d patterns -> %s\n", len(class), *modelPath)
	default:
		return usageErr
	}
	return nil
}

// saveEmbeddingsFile writes a v2 model: storage precision follows the
// training precision (float64, or float32 under -f32 — the f32 parameters
// round-trip exactly either way), and -quantize int8 swaps the dense block
// for the symmetric per-row-scale tier, refusing when the quantised
// vectors stray from the trained ones (the pinned cosine regression gate).
// A non-empty lineage records the fine-tune ancestry in the file header.
func saveEmbeddingsFile(path string, kind model.Kind, method string, rows, cols int, data []float64, f32 bool, quantize string, lineage []model.LineageEntry) error {
	dtype := model.DTypeF64
	if f32 {
		dtype = model.DTypeF32
	}
	if quantize == "int8" {
		mean, min := model.Int8Quality(data, rows, cols)
		if mean < 0.999 || min < 0.99 {
			return fmt.Errorf("int8 quantisation fails the quality gate on this model (mean row cosine %.5f, min %.5f; need mean >= 0.999 and min >= 0.99) — save with -quantize none", mean, min)
		}
		dtype = model.DTypeInt8
	}
	return model.SaveEmbeddings(path, model.EmbeddingsSpec{
		Kind: kind, Method: method, Rows: rows, Cols: cols, Data: data, DType: dtype,
		Lineage: lineage,
	})
}

// fineTuneNode is the -warm path of `x2vec train`: load a parent model,
// fine-tune it on the (possibly mutated) graph through the float32 warm-
// start engine for a fraction of the from-scratch epoch budget, and save
// the child with a lineage entry pointing at the parent's file CRC — the
// identity x2vecd reports per served generation. The dimension comes from
// the parent (warm-start requires matching shapes), not -d.
func fineTuneNode(g *graph.Graph, method, warmPath, outPath string, p, q float64, workers, epochs int, quantize string, rng *rand.Rand) error {
	parent, err := model.OpenEmbeddings(warmPath)
	if err != nil {
		return err
	}
	if err := parent.Verify(); err != nil {
		parent.Close()
		return err
	}
	if parent.Kind != model.KindNodeEmbedding {
		parent.Close()
		return fmt.Errorf("-warm wants a node-embedding model, got %v", parent.Kind)
	}
	warm := linalg.NewMatrix(parent.Rows, parent.Cols)
	row := make([]float64, parent.Cols)
	for v := 0; v < parent.Rows; v++ {
		parent.VectorInto(row, v)
		copy(warm.Data[v*parent.Cols:(v+1)*parent.Cols], row)
	}
	parentChain := parent.Lineage
	parent.Close()
	chain, err := extendLineage(parentChain, warmPath, method+" fine-tune")
	if err != nil {
		return err
	}

	if epochs == 0 {
		epochs = 1 // the warm-start budget: a fraction of the from-scratch default
	}
	e, err := embed.Node2VecFineTuneF32(g, warm.Cols, p, q, workers, epochs, warm, rng)
	if err != nil {
		return err
	}
	if err := saveEmbeddingsFile(outPath, model.KindNodeEmbedding, e.Method,
		e.Vectors.Rows, e.Vectors.Cols, e.Vectors.Data, true, quantize, chain); err != nil {
		return err
	}
	fmt.Printf("fine-tuned %s model: %d vertices x %d dims (lineage depth %d) -> %s\n",
		method, g.N(), warm.Cols, len(chain), outPath)
	return nil
}

// extendLineage copies a parent's recorded chain and appends one entry
// pointing at the parent's file CRC — the identity x2vecd reports per
// served generation.
func extendLineage(parentChain []model.LineageEntry, warmPath, note string) ([]model.LineageEntry, error) {
	chain := append([]model.LineageEntry(nil), parentChain...)
	crc, err := model.FileCRC(warmPath)
	if err != nil {
		return nil, err
	}
	seq := uint32(1)
	if n := len(chain); n > 0 {
		seq = chain[n-1].Seq + 1
	}
	return append(chain, model.LineageEntry{Parent: crc, Seq: seq, Note: note}), nil
}

// trainKGE is the knowledge-graph face of `x2vec train`: triples in, a
// KindKGE model out. transe trains on the float64 oracle by default, on the
// float32 Hogwild engine under -f32 (-workers caps the shards; 1 is
// bit-deterministic), and -warm fine-tunes a saved transe parent through
// the float32 engine with the lineage chain extended. rescal always runs
// the float64 full-gradient engine. The training triples are stored in the
// file so x2vecd answers /link-predict in the filtered setting.
func trainKGE(method, triplesPath, outPath, warmPath string, d, epochs, workers int, f32 bool, quantize string) error {
	triples, nE, nR, err := kge.LoadTriplesFile(triplesPath)
	if err != nil {
		return err
	}
	var view *kge.KGView
	var chain []model.LineageEntry
	dtype := model.DTypeF64
	switch {
	case method == "rescal":
		if f32 || warmPath != "" {
			return fmt.Errorf("train rescal runs the float64 full-gradient engine only (no -f32/-warm)")
		}
		cfg := kge.DefaultRESCALConfig()
		cfg.Dim = d
		if epochs > 0 {
			cfg.Epochs = epochs
		}
		view = kge.TrainRESCAL(triples, nE, nR, cfg, rand.New(rand.NewSource(1))).View()
	case warmPath != "":
		parent, err := model.OpenKGE(warmPath)
		if err != nil {
			return err
		}
		if err := parent.Verify(); err != nil {
			parent.Close()
			return err
		}
		if parent.Method != "transe" {
			parent.Close()
			return fmt.Errorf("-warm transe wants a transe parent, got %s", parent.Method)
		}
		if parent.NumEntities < nE || parent.NumRelations < nR {
			parent.Close()
			return fmt.Errorf("warm parent covers %d entities / %d relations, triples need %d/%d",
				parent.NumEntities, parent.NumRelations, nE, nR)
		}
		// The parent may know more entities than this triples file mentions;
		// fine-tuning keeps the parent's id space so served ids stay stable.
		nE, nR = parent.NumEntities, parent.NumRelations
		dim := parent.Dim
		we := make([]float32, nE*dim)
		wr := make([]float32, nR*dim)
		row := make([]float64, dim) // RelWidth == Dim for transe
		for i := 0; i < nE; i++ {
			parent.EntityInto(row, i)
			for j, x := range row {
				we[i*dim+j] = float32(x)
			}
		}
		for i := 0; i < nR; i++ {
			parent.RelationInto(row, i)
			for j, x := range row {
				wr[i*dim+j] = float32(x)
			}
		}
		parentChain := parent.Lineage
		parent.Close()
		if chain, err = extendLineage(parentChain, warmPath, "transe fine-tune"); err != nil {
			return err
		}
		cfg := kge.DefaultTransE32Config()
		cfg.Dim = dim
		cfg.Workers = workers
		cfg.Epochs = 100 // the warm-start budget: a fraction of the from-scratch default
		if epochs > 0 {
			cfg.Epochs = epochs
		}
		cfg.WarmEntities, cfg.WarmRelations = we, wr
		m, err := kge.TrainTransE32(triples, nE, nR, cfg, 1)
		if err != nil {
			return err
		}
		view = m.View()
		dtype = model.DTypeF32
	case f32:
		cfg := kge.DefaultTransE32Config()
		cfg.Dim = d
		cfg.Workers = workers
		if epochs > 0 {
			cfg.Epochs = epochs
		}
		m, err := kge.TrainTransE32(triples, nE, nR, cfg, 1)
		if err != nil {
			return err
		}
		view = m.View()
		dtype = model.DTypeF32
	default:
		cfg := kge.DefaultTransEConfig()
		cfg.Dim = d
		if epochs > 0 {
			cfg.Epochs = epochs
		}
		view = kge.TrainTransE(triples, nE, nR, cfg, rand.New(rand.NewSource(1))).View()
	}
	spec := model.KGESpecFrom(view, triples, dtype)
	spec.Lineage = chain
	if quantize == "int8" {
		mean, min := model.Int8Quality(spec.Entities, spec.NumEntities, spec.Dim)
		if mean < 0.999 || min < 0.99 {
			return fmt.Errorf("int8 quantisation fails the quality gate on this model (mean row cosine %.5f, min %.5f; need mean >= 0.999 and min >= 0.99) — save with -quantize none", mean, min)
		}
		spec.DType = model.DTypeInt8
	}
	if err := model.SaveKGE(outPath, spec); err != nil {
		return err
	}
	fmt.Printf("saved %s model: %d entities / %d relations x %d dims, %d triples -> %s\n",
		method, spec.NumEntities, spec.NumRelations, spec.Dim, len(spec.Triples), outPath)
	return nil
}

// trainGNN trains a node-classification message-passing network on one
// graph with degree features and saves the KindGNN model x2vecd serves
// graph /embed from. The labels file carries one integer per vertex line;
// -1 marks an unlabeled vertex (excluded from the loss but still embedded).
// -warm continues training a saved parent network on the new graph.
func trainGNN(graphPath, labelsPath, outPath, warmPath string, d, epochs int, f32 bool, rng *rand.Rand) error {
	g, err := loadGraph(graphPath)
	if err != nil {
		return err
	}
	labels, mask, classes, err := loadNodeLabels(labelsPath, g.N())
	if err != nil {
		return err
	}
	var net *gnn.Network
	var chain []model.LineageEntry
	features := "degree"
	if warmPath != "" {
		parent, err := model.OpenGNN(warmPath)
		if err != nil {
			return err
		}
		if parent.Classes < classes {
			return fmt.Errorf("warm parent has a %d-class head, labels need %d", parent.Classes, classes)
		}
		net, features = parent.Net, parent.Features
		if chain, err = extendLineage(parent.Lineage, warmPath, "gnn fine-tune"); err != nil {
			return err
		}
		if epochs == 0 {
			epochs = 50 // the warm-start budget
		}
	} else {
		if net, err = gnn.New([]int{2, d}, classes, rng); err != nil {
			return err
		}
		if epochs == 0 {
			epochs = 200
		}
	}
	x0 := gnn.DegreeFeatures(g, net.InDim())
	if features == "const" {
		x0 = gnn.ConstantFeatures(g.N(), net.InDim())
	}
	losses, err := net.TrainNodes(g, x0, labels, mask, epochs, 0.05)
	if err != nil {
		return err
	}
	dtype := model.DTypeF64
	if f32 {
		dtype = model.DTypeF32
	}
	spec := model.GNNSpec{Net: net, Features: features, DType: dtype, Lineage: chain}
	if err := model.SaveGNN(outPath, spec); err != nil {
		return err
	}
	fmt.Printf("saved gnn model: layers %v, %d classes, %d epochs (final loss %.4f) -> %s\n",
		net.Dims(), net.Classes(), epochs, losses[len(losses)-1], outPath)
	return nil
}

// loadNodeLabels reads one integer label per line (blank lines and
// '#' comments skipped); -1 masks the vertex out of the training loss.
func loadNodeLabels(path string, n int) (labels []int, mask []bool, classes int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		l, perr := strconv.Atoi(text)
		if perr != nil {
			return nil, nil, 0, fmt.Errorf("labels line %d: %q is not an integer", line, text)
		}
		if l < -1 {
			return nil, nil, 0, fmt.Errorf("labels line %d: label %d (want >= -1)", line, l)
		}
		labels = append(labels, l)
		mask = append(mask, l >= 0)
		if l+1 > classes {
			classes = l + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, 0, err
	}
	if len(labels) != n {
		return nil, nil, 0, fmt.Errorf("%d labels for a graph of order %d", len(labels), n)
	}
	if classes == 0 {
		return nil, nil, 0, fmt.Errorf("no labeled vertices (every line is -1)")
	}
	// Masked vertices carry a placeholder inside the head's range.
	for i, l := range labels {
		if l < 0 {
			labels[i] = 0
		}
	}
	return labels, mask, classes, nil
}

// cmdIndex builds the sublinear similarity tier offline: one count-sketch
// WL feature vector per corpus file, a sign-random-projection LSH index
// over the sketch matrix, and a KindANNIndex model file. The sketch
// parameters are recorded in the file, so the daemon embeds /neighbors
// request graphs into exactly the indexed vector space.
func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ContinueOnError)
	out := fs.String("out", "", "output index file (required)")
	sketchRounds := fs.Int("sketch-rounds", kernel.DefaultSketchRounds, "WL rounds folded into each count sketch")
	sketchWidth := fs.Int("sketch-width", kernel.DefaultSketchWidth, "count-sketch width (the indexed vector dimension)")
	sketchSeed := fs.Uint64("sketch-seed", 2024, "count-sketch hash seed")
	tables := fs.Int("tables", ann.DefaultTables, "LSH hash tables")
	bits := fs.Int("bits", ann.DefaultBits, "hyperplane bits per table signature (max 60)")
	seed := fs.Uint64("seed", 1, "hyperplane seed")
	workers := fs.Int("workers", 0, "sketch/build workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" || fs.NArg() < 1 {
		return fmt.Errorf("usage: x2vec index [-sketch-rounds R] [-sketch-width W] [-tables L] [-bits B] [-workers N] -out I.x2vm FILE...")
	}
	if *sketchRounds < 1 || *sketchWidth < 1 {
		return fmt.Errorf("sketch needs at least 1 round and width 1 (got rounds=%d width=%d)", *sketchRounds, *sketchWidth)
	}
	gs := make([]*graph.Graph, fs.NArg())
	for i, path := range fs.Args() {
		g, err := loadGraph(path)
		if err != nil {
			return err
		}
		gs[i] = g
	}
	sk := kernel.CountSketchWL{Rounds: *sketchRounds, Width: *sketchWidth, Seed: *sketchSeed}
	vecs := sk.CorpusSketchMatrix(gs, *workers)
	ix, err := ann.Build(vecs, ann.Config{
		Tables: *tables, Bits: *bits, Seed: *seed,
		SketchRounds: *sketchRounds, SketchWidth: *sketchWidth, SketchSeed: *sketchSeed,
	}, *workers)
	if err != nil {
		return err
	}
	if err := model.SaveANNIndex(*out, ix); err != nil {
		return err
	}
	fmt.Printf("indexed %d graphs: dim %d, %d tables x %d bits -> %s\n",
		ix.N, ix.Dim, ix.Tables, ix.Bits, *out)
	return nil
}

func cmdDist(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: x2vec dist {frobenius|l1|cut} A B")
	}
	var norm similarity.Norm
	switch args[0] {
	case "frobenius":
		norm = similarity.Frobenius
	case "l1":
		norm = similarity.Entry1
	case "cut":
		norm = similarity.Cut
	default:
		return fmt.Errorf("unknown norm %q", args[0])
	}
	a, err := loadGraph(args[1])
	if err != nil {
		return err
	}
	b, err := loadGraph(args[2])
	if err != nil {
		return err
	}
	l := lcm(a.N(), b.N())
	if l > 8 {
		return fmt.Errorf("exact alignment distance limited to graphs whose order lcm is <= 8 (got %d)", l)
	}
	d, err := similarity.DistAnyOrder(a, b, norm)
	if err != nil {
		return err
	}
	fmt.Printf("dist = %g\n", d)
	return nil
}

func lcm(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
