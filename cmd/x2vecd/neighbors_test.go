package main

// /neighbors endpoint tests: build a real index the way `x2vec index` does,
// serve it, and check the ranked answers, the error statuses, and the
// reload consistency that the CI socket smoke also exercises.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ann"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/model"
)

// graphText renders g in the daemon's request edge-list format (labels
// cannot travel in it, so neighbour-test corpora are label-0 graphs).
func graphText(g *graph.Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# n=%d\n", g.N())
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
	}
	return sb.String()
}

// neighborsFixture saves a node-embedding model plus an LSH index over a
// corpus of unlabelled random graphs and returns (modelPath, indexPath,
// corpus).
func neighborsFixture(t *testing.T, dir string, n int, seed int64) (string, string, []*graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gs := make([]*graph.Graph, n)
	for i := range gs {
		gs[i] = graph.Random(10+rng.Intn(8), 0.3, rng)
	}
	mp := filepath.Join(dir, "m.x2vm")
	hex, err := graph.ParseGraph(hexagonText)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SaveNodeEmbedding(mp, embed.Node2VecWorkers(hex, 4, 1, 1, 1, rand.New(rand.NewSource(1)))); err != nil {
		t.Fatal(err)
	}
	ip := writeIndexFile(t, dir, "ix.x2vm", gs)
	return mp, ip, gs
}

func writeIndexFile(t *testing.T, dir, name string, gs []*graph.Graph) string {
	t.Helper()
	sk := kernel.CountSketchWL{Rounds: 2, Width: 64, Seed: 2024}
	ix, err := ann.Build(sk.CorpusSketchMatrix(gs, 2), ann.Config{
		Tables: 8, Bits: 10, Seed: 7,
		SketchRounds: 2, SketchWidth: 64, SketchSeed: 2024,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := model.SaveANNIndex(path, ix); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNeighborsEndpoint(t *testing.T) {
	dir := t.TempDir()
	mp, ip, gs := neighborsFixture(t, dir, 30, 41)
	_, ts := newTestDaemon(t, daemonConfig{ModelPath: mp, IndexPath: ip})

	// An indexed graph's own text must come back ranked first with
	// cosine ~1, scores non-increasing.
	for _, i := range []int{0, 3, 17} {
		resp, body := postJSON(t, ts.URL+"/neighbors", map[string]any{"graph": graphText(gs[i]), "k": 5})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/neighbors(%d): status %d: %s", i, resp.StatusCode, body)
		}
		var nr neighborsResponse
		if err := json.Unmarshal(body, &nr); err != nil {
			t.Fatal(err)
		}
		if len(nr.IDs) == 0 || nr.IDs[0] != i {
			t.Fatalf("/neighbors(%d): ids %v, want self first: %s", i, nr.IDs, body)
		}
		if nr.Scores[0] < 0.999 {
			t.Fatalf("/neighbors(%d): self score %v, want ~1", i, nr.Scores[0])
		}
		for j := 1; j < len(nr.Scores); j++ {
			if nr.Scores[j] > nr.Scores[j-1] {
				t.Fatalf("/neighbors(%d): scores not ranked: %v", i, nr.Scores)
			}
		}
		if nr.IndexRows != len(gs) || nr.ModelVersion == 0 {
			t.Fatalf("/neighbors(%d): rows=%d version=%d", i, nr.IndexRows, nr.ModelVersion)
		}
	}

	// Malformed graph → 400.
	resp, _ := postJSON(t, ts.URL+"/neighbors", map[string]any{"graph": "0 not-a-vertex\n"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed graph: status %d, want 400", resp.StatusCode)
	}
	// Missing graph field → 400.
	resp, _ = postJSON(t, ts.URL+"/neighbors", map[string]any{"k": 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing graph: status %d, want 400", resp.StatusCode)
	}

	// /stats surfaces the pipeline and the index snapshot.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Pipelines map[string]struct {
			Requests      int64   `json:"requests"`
			RecallSamples int64   `json:"recall_samples"`
			MeanRecall    float64 `json:"mean_recall_at_k"`
		} `json:"pipelines"`
		Model *struct {
			Index *struct {
				Rows int `json:"rows"`
			} `json:"index"`
		} `json:"model"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	np, ok := stats.Pipelines["neighbors"]
	if !ok || np.Requests == 0 {
		t.Fatalf("stats missing neighbors pipeline: %+v", stats.Pipelines)
	}
	if np.RecallSamples == 0 || np.MeanRecall <= 0 {
		t.Fatalf("stats missing recall sampling: %+v", np)
	}
	if stats.Model == nil || stats.Model.Index == nil || stats.Model.Index.Rows != len(gs) {
		t.Fatalf("stats missing index snapshot: %+v", stats.Model)
	}
}

// TestNeighborsAcrossReload: swapping in a re-ordered index flips answers
// to the new id space atomically — the /reload half of the socket smoke.
func TestNeighborsAcrossReload(t *testing.T) {
	dir := t.TempDir()
	mp, ip, gs := neighborsFixture(t, dir, 20, 43)
	_, ts := newTestDaemon(t, daemonConfig{ModelPath: mp, IndexPath: ip})

	query := graphText(gs[4])
	resp, body := postJSON(t, ts.URL+"/neighbors", map[string]any{"graph": query, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-reload: status %d: %s", resp.StatusCode, body)
	}
	var before neighborsResponse
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	if before.IDs[0] != 4 {
		t.Fatalf("pre-reload top hit %d, want 4", before.IDs[0])
	}

	// Reversed corpus: graph 4 of 20 lands at id 15.
	rev := make([]*graph.Graph, len(gs))
	for i, g := range gs {
		rev[len(gs)-1-i] = g
	}
	ip2 := writeIndexFile(t, dir, "ix2.x2vm", rev)
	resp, body = postJSON(t, ts.URL+"/reload", map[string]string{"index": ip2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/reload: status %d: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/neighbors", map[string]any{"graph": query, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload: status %d: %s", resp.StatusCode, body)
	}
	var after neighborsResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.IDs[0] != len(gs)-1-4 {
		t.Fatalf("post-reload top hit %d, want %d", after.IDs[0], len(gs)-1-4)
	}
	if after.ModelVersion != before.ModelVersion+1 {
		t.Fatalf("version %d -> %d, want +1", before.ModelVersion, after.ModelVersion)
	}
}

func TestNeighborsWithoutIndex404(t *testing.T) {
	dir := t.TempDir()
	mp, _, _ := neighborsFixture(t, dir, 5, 47)
	_, ts := newTestDaemon(t, daemonConfig{ModelPath: mp})
	resp, body := postJSON(t, ts.URL+"/neighbors", map[string]any{"graph": hexagonText, "k": 3})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no index: status %d, want 404: %s", resp.StatusCode, body)
	}
}

func TestIndexFlagRequiresModel(t *testing.T) {
	dir := t.TempDir()
	_, ip, _ := neighborsFixture(t, dir, 5, 53)
	if _, err := newDaemon(daemonConfig{IndexPath: ip}); err == nil {
		t.Fatal("-index without -model accepted")
	}
}
