package main

// Daemon-level tests for the KGE and GNN endpoints (issue 10): a daemon
// cold-started on a trained-and-saved TransE model answers /link-predict
// with a sane filtered top-k, rejects malformed queries with 400, and stays
// consistent across /reload; a GNN model serves graph /embed bit-identical
// to the offline forward pass.

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/kge"
	"repro/internal/model"
)

// mustParse parses edge-list text or fails the test.
func mustParse(t *testing.T, text string) *graph.Graph {
	t.Helper()
	g, err := graph.ParseGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLinkPredictEndpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	kg := dataset.World(12, rng)
	train, test := kg.Split(0.2, rng)
	m := kge.TrainTransE(train, kg.NumEntities(), kg.NumRelations(), kge.DefaultTransEConfig(), rng)
	mp := filepath.Join(t.TempDir(), "kg.x2vm")
	if err := model.SaveKGE(mp, model.KGESpecFrom(m.View(), train, model.DTypeF64)); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestDaemon(t, daemonConfig{ModelPath: mp})

	// Cold-start sanity on a held-out fact: the ranking is non-empty, capped
	// at k, sorted ascending (TransE: lower is better) and never contains
	// the anchor or a known training tail.
	knownTails := map[[2]int]map[int]bool{}
	for _, tr := range train {
		key := [2]int{tr[0], tr[1]}
		if knownTails[key] == nil {
			knownTails[key] = map[int]bool{}
		}
		knownTails[key][tr[2]] = true
	}
	probe := test[0]
	resp, body := postJSON(t, ts.URL+"/link-predict", map[string]int{"head": probe[0], "relation": probe[1], "k": 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/link-predict: status %d: %s", resp.StatusCode, body)
	}
	var lp linkPredictResponse
	if err := json.Unmarshal(body, &lp); err != nil {
		t.Fatal(err)
	}
	if lp.Mode != "tail" || lp.Method != "transe" || lp.ModelVersion != 1 {
		t.Fatalf("response shape %+v", lp)
	}
	if len(lp.Entities) == 0 || len(lp.Entities) > 10 || len(lp.Scores) != len(lp.Entities) {
		t.Fatalf("%d entities / %d scores", len(lp.Entities), len(lp.Scores))
	}
	for i, e := range lp.Entities {
		if e == probe[0] || knownTails[[2]int{probe[0], probe[1]}][e] {
			t.Fatalf("anchor or known fact %d served in the filtered ranking %v", e, lp.Entities)
		}
		if i > 0 && lp.Scores[i] < lp.Scores[i-1] {
			t.Fatalf("scores not ascending: %v", lp.Scores)
		}
	}

	// Head mode answers too, under its own exclusion set.
	resp, body = postJSON(t, ts.URL+"/link-predict", map[string]int{"tail": probe[2], "relation": probe[1], "k": 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("head mode: status %d: %s", resp.StatusCode, body)
	}
	var hp linkPredictResponse
	if err := json.Unmarshal(body, &hp); err != nil {
		t.Fatal(err)
	}
	if hp.Mode != "head" || len(hp.Entities) == 0 {
		t.Fatalf("head response %+v", hp)
	}

	// Malformed queries are 400s: out-of-range ids, a missing relation,
	// both sides bound, neither side bound.
	for _, bad := range []map[string]int{
		{"head": kg.NumEntities(), "relation": 0},
		{"head": -1, "relation": 0},
		{"head": 0, "relation": kg.NumRelations()},
		{"head": 0},
		{"head": 0, "tail": 1, "relation": 0},
		{"relation": 0},
	} {
		if resp, body := postJSON(t, ts.URL+"/link-predict", bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%v: status %d, want 400: %s", bad, resp.StatusCode, body)
		}
	}

	// /embed serves entity rows from a KGE model; a graph is a kind
	// mismatch (400), exactly like /link-predict against a table.
	resp, body = postJSON(t, ts.URL+"/embed", map[string]int{"id": probe[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/embed entity row: status %d: %s", resp.StatusCode, body)
	}
	var er embedResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	for j, x := range m.Entities[probe[0]] {
		if er.Vector[j] != x {
			t.Fatalf("entity row differs from the trained model at dim %d", j)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/embed", map[string]string{"graph": hexagonText}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("graph /embed on KGE model: status %d, want 400", resp.StatusCode)
	}

	// /stats reports the KGE generation and the link-predict pipeline.
	sresp, sbody := postGet(t, ts.URL+"/stats")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %d", sresp.StatusCode)
	}
	var stats struct {
		Model     *serveModelStats           `json:"model"`
		Pipelines map[string]json.RawMessage `json:"pipelines"`
	}
	if err := json.Unmarshal(sbody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Model == nil || stats.Model.Kind != "kge" || stats.Model.Relations != kg.NumRelations() {
		t.Fatalf("stats model %+v", stats.Model)
	}
	if _, ok := stats.Pipelines["link-predict"]; !ok {
		t.Fatal("link-predict pipeline missing from /stats")
	}

	// A hot /reload of the same file answers the same query identically at
	// the next generation.
	if resp, body := postJSON(t, ts.URL+"/reload", map[string]string{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("/reload: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/link-predict", map[string]int{"head": probe[0], "relation": probe[1], "k": 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload: status %d: %s", resp.StatusCode, body)
	}
	var lp2 linkPredictResponse
	if err := json.Unmarshal(body, &lp2); err != nil {
		t.Fatal(err)
	}
	if lp2.ModelVersion != 2 {
		t.Fatalf("post-reload version %d, want 2", lp2.ModelVersion)
	}
	if len(lp2.Entities) != len(lp.Entities) {
		t.Fatalf("reload changed the answer: %v vs %v", lp2.Entities, lp.Entities)
	}
	for i := range lp.Entities {
		if lp2.Entities[i] != lp.Entities[i] || lp2.Scores[i] != lp.Scores[i] {
			t.Fatalf("reload changed the answer: %v/%v vs %v/%v", lp2.Entities, lp2.Scores, lp.Entities, lp.Scores)
		}
	}
}

// serveModelStats decodes just the snapshot fields this test asserts on.
type serveModelStats struct {
	Kind      string `json:"kind"`
	Relations int    `json:"relations"`
}

// postGet is the GET twin of postJSON, for /stats.
func postGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestReloadIndexDropForKindFlip pins the reload index semantics a kind
// flip depends on: an absent "index" field inherits the current ANN index
// (so a table→KGE swap is rejected, since the index only rides embedding
// tables), while an explicit empty string drops it and the swap lands.
func TestReloadIndexDropForKindFlip(t *testing.T) {
	dir := t.TempDir()
	mp, ip, _ := neighborsFixture(t, dir, 6, 3)

	rng := rand.New(rand.NewSource(7))
	kg := dataset.World(8, rng)
	m := kge.TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), kge.DefaultTransEConfig(), rng)
	kp := filepath.Join(dir, "kg.x2vm")
	if err := model.SaveKGE(kp, model.KGESpecFrom(m.View(), kg.Triples, model.DTypeF64)); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestDaemon(t, daemonConfig{ModelPath: mp, IndexPath: ip})

	// Absent index field: the current index is inherited, which a KGE model
	// cannot carry — the swap must fail and generation 1 keeps serving.
	if resp, body := postJSON(t, ts.URL+"/reload", map[string]string{"model": kp}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("kind flip with inherited index: status %d, want 400: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/embed", map[string]int{"id": 0}); resp.StatusCode != http.StatusOK {
		t.Fatal("generation 1 stopped serving after the failed swap")
	}

	// Explicit "" drops the index; the same swap now lands and /neighbors
	// reports the index as gone rather than answering from a stale one.
	resp, body := postJSON(t, ts.URL+"/reload", map[string]any{"model": kp, "index": ""})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kind flip with dropped index: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/link-predict", map[string]int{"head": 0, "relation": 0, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/link-predict after flip: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/neighbors", map[string]any{"graph": hexagonText, "k": 1}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/neighbors after index drop: status %d, want 404", resp.StatusCode)
	}
}

func TestGNNEmbedEndpoint(t *testing.T) {
	net, err := gnn.New([]int{2, 5}, 3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	mp := filepath.Join(t.TempDir(), "gnn.x2vm")
	if err := model.SaveGNN(mp, model.GNNSpec{Net: net, Features: "degree", DType: model.DTypeF64}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestDaemon(t, daemonConfig{ModelPath: mp})

	resp, body := postJSON(t, ts.URL+"/embed", map[string]string{"graph": hexagonText})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("graph /embed: status %d: %s", resp.StatusCode, body)
	}
	var er embedResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	g := mustParse(t, hexagonText)
	want, err := net.GraphEmbed(g, gnn.DegreeFeatures(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	if er.Method != "gnn" || len(er.Vector) != len(want) {
		t.Fatalf("response %+v, want %d dims", er, len(want))
	}
	for j := range want {
		if er.Vector[j] != want[j] {
			t.Fatalf("served dim %d = %v, offline %v (must be bit-identical)", j, er.Vector[j], want[j])
		}
	}

	// Kind and shape mismatches are 400s.
	if resp, _ := postJSON(t, ts.URL+"/embed", map[string]int{"id": 0}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("id /embed on GNN model: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/embed", map[string]any{"id": 0, "graph": hexagonText}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("id+graph /embed: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/embed", map[string]any{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty /embed: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/embed", map[string]string{"graph": "not a graph"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed graph: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/link-predict", map[string]int{"head": 0, "relation": 0}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/link-predict on GNN model: status %d, want 400", resp.StatusCode)
	}
}
