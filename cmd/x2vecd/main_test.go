package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/wl"
)

const hexagonText = "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n"

func newTestDaemon(t *testing.T, cfg daemonConfig) (*daemon, *httptest.Server) {
	t.Helper()
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		ts.Close()
		d.close()
	})
	return d, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestColdStartBitIdentical is the acceptance criterion: a daemon loading a
// saved model from disk answers /embed and /homvec with vectors
// bit-identical to the offline cmd/x2vec pipeline that trained them.
func TestColdStartBitIdentical(t *testing.T) {
	g, err := graph.ParseGraph(hexagonText)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the offline `x2vec train node2vec -d 4` pipeline: seed 1,
	// sequential deterministic engine.
	offline := embed.Node2VecWorkers(g, 4, 1, 1, 1, rand.New(rand.NewSource(1)))
	mp := filepath.Join(t.TempDir(), "m.bin")
	if err := model.SaveNodeEmbedding(mp, offline); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestDaemon(t, daemonConfig{ModelPath: mp})

	// Cold /embed vs offline vectors, bit for bit.
	for v := 0; v < g.N(); v++ {
		resp, body := postJSON(t, ts.URL+"/embed", map[string]int{"id": v})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/embed id=%d: status %d: %s", v, resp.StatusCode, body)
		}
		var er embedResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Method != "node2vec" {
			t.Errorf("method %q, want node2vec", er.Method)
		}
		want := offline.Vector(v)
		if len(er.Vector) != len(want) {
			t.Fatalf("id %d: %d dims, want %d", v, len(er.Vector), len(want))
		}
		for j := range want {
			if er.Vector[j] != want[j] {
				t.Fatalf("id %d dim %d: served %v, offline %v (must be bit-identical)", v, j, er.Vector[j], want[j])
			}
		}
	}

	// /homvec vs the offline `x2vec homvec` pipeline, bit for bit.
	wantVec := hom.CorpusLogScaledVectors(hom.Compile(hom.StandardClass()), []*graph.Graph{g})[0]
	resp, body := postJSON(t, ts.URL+"/homvec", map[string]string{"graph": hexagonText})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/homvec: status %d: %s", resp.StatusCode, body)
	}
	var hr homvecResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Vector) != len(wantVec) {
		t.Fatalf("%d coords, want %d", len(hr.Vector), len(wantVec))
	}
	for j := range wantVec {
		if hr.Vector[j] != wantVec[j] {
			t.Fatalf("coord %d: served %v, offline %v (must be bit-identical)", j, hr.Vector[j], wantVec[j])
		}
	}
}

func TestKernelAndWLEndpoints(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Options: serve.Options{Rounds: 5}})
	triangle := "0 1\n1 2\n2 0\n"

	resp, body := postJSON(t, ts.URL+"/kernel", map[string]string{"name": "wl", "a": hexagonText, "b": triangle})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/kernel: status %d: %s", resp.StatusCode, body)
	}
	var kr kernelResponse
	if err := json.Unmarshal(body, &kr); err != nil {
		t.Fatal(err)
	}
	a, _ := graph.ParseGraph(hexagonText)
	b, _ := graph.ParseGraph(triangle)
	if want := (kernel.WLSubtree{Rounds: 5}).Compute(a, b); kr.Value != want {
		t.Errorf("wl kernel = %v, offline %v", kr.Value, want)
	}

	resp, body = postJSON(t, ts.URL+"/wl", map[string]string{"graph": hexagonText})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/wl: status %d: %s", resp.StatusCode, body)
	}
	var wr wlResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	offline := wl.RefineCorpus([]*graph.Graph{a}, 5)[0]
	want := offline[len(offline)-1]
	if wr.Rounds != 5 || len(wr.Colors) != a.N() {
		t.Fatalf("rounds=%d len=%d", wr.Rounds, len(wr.Colors))
	}
	for v := range want {
		if wr.Colors[v] != want[v] {
			t.Errorf("vertex %d: colour %d, offline %d", v, wr.Colors[v], want[v])
		}
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz: %d %q", resp.StatusCode, body)
	}

	// Drive one request so the stats have a pipeline to report.
	if resp, body := postJSON(t, ts.URL+"/homvec", map[string]string{"graph": "0 1\n"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("/homvec: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	ps, ok := snap.Pipelines["homvec"]
	if !ok || ps.Requests != 1 || ps.CacheMisses != 1 {
		t.Errorf("stats = %+v, want one homvec request and miss", snap)
	}
}

// TestRequestValidation: the daemon must turn every malformed request into
// a 4xx JSON error — including the negative-id graphs that used to panic
// the CLI's parser — and keep serving afterwards.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{})

	cases := []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"negative vertex id", "/homvec", map[string]string{"graph": "-1 2\n"}, http.StatusBadRequest},
		{"edge beyond n header", "/wl", map[string]string{"graph": "# n=2\n0 5\n"}, http.StatusBadRequest},
		{"missing graph field", "/homvec", map[string]string{}, http.StatusBadRequest},
		{"unknown field", "/homvec", map[string]string{"grpah": "0 1\n"}, http.StatusBadRequest},
		{"unknown kernel", "/kernel", map[string]string{"name": "nope", "a": "0 1\n", "b": "0 1\n"}, http.StatusBadRequest},
		{"kernel missing b", "/kernel", map[string]string{"name": "wl", "a": "0 1\n"}, http.StatusBadRequest},
		{"embed without model", "/embed", map[string]int{"id": 0}, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, body)
		}
	}

	// GET on a POST endpoint.
	resp, err := http.Get(ts.URL + "/homvec")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /homvec: %d, want 405", resp.StatusCode)
	}

	// Still alive.
	if resp, _ := postJSON(t, ts.URL+"/homvec", map[string]string{"graph": "0 1\n"}); resp.StatusCode != http.StatusOK {
		t.Errorf("daemon stopped serving after bad requests")
	}
}

// TestEmbedIDRange covers the model lookup bounds.
func TestEmbedIDRange(t *testing.T) {
	g := graph.Cycle(4)
	e := embed.Node2VecWorkers(g, 3, 1, 1, 1, rand.New(rand.NewSource(1)))
	mp := filepath.Join(t.TempDir(), "m.bin")
	if err := model.SaveNodeEmbedding(mp, e); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestDaemon(t, daemonConfig{ModelPath: mp})
	for _, id := range []int{-1, 4} {
		resp, body := postJSON(t, ts.URL+"/embed", map[string]int{"id": id})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("id %d: status %d, want 400 (%s)", id, resp.StatusCode, body)
		}
	}
}

// TestCustomHomClass: a pattern class saved by `x2vec train homclass` and
// loaded with -homclass changes the /homvec feature space.
func TestCustomHomClass(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "class.bin")
	class := []*graph.Graph{graph.Path(3), graph.Cycle(4)}
	if err := model.SaveHomClass(cp, class); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestDaemon(t, daemonConfig{ClassPath: cp})
	resp, body := postJSON(t, ts.URL+"/homvec", map[string]string{"graph": hexagonText})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/homvec: %d %s", resp.StatusCode, body)
	}
	var hr homvecResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Vector) != len(class) {
		t.Fatalf("%d coords, want %d (the custom class)", len(hr.Vector), len(class))
	}
	g, _ := graph.ParseGraph(hexagonText)
	want := hom.CorpusLogScaledVectors(hom.Compile(class), []*graph.Graph{g})[0]
	for j := range want {
		if hr.Vector[j] != want[j] {
			t.Errorf("coord %d: %v, want %v", j, hr.Vector[j], want[j])
		}
	}
}

// TestBadModelFilesFailClosed: a daemon pointed at a corrupt or wrong-kind
// model file must refuse to start.
func TestBadModelFilesFailClosed(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "class.bin")
	if err := model.SaveHomClass(cp, []*graph.Graph{graph.Path(2)}); err != nil {
		t.Fatal(err)
	}
	// A hom class is not an embedding model.
	if _, err := newDaemon(daemonConfig{ModelPath: cp}); err == nil {
		t.Error("hom-class file as -model should fail")
	}
	// And an embedding model is not a hom class.
	g := graph.Cycle(4)
	mp := filepath.Join(t.TempDir(), "m.bin")
	if err := model.SaveNodeEmbedding(mp, embed.Node2VecWorkers(g, 3, 1, 1, 1, rand.New(rand.NewSource(1)))); err != nil {
		t.Fatal(err)
	}
	if _, err := newDaemon(daemonConfig{ClassPath: mp}); err == nil {
		t.Error("embedding model as -homclass should fail")
	}
	if _, err := newDaemon(daemonConfig{ModelPath: filepath.Join(t.TempDir(), "missing.bin")}); err == nil {
		t.Error("missing model file should fail")
	}
}

// TestConcurrentHTTPLoad drives the full HTTP stack concurrently and then
// reads /stats: coalescing and caching must be visible end to end.
func TestConcurrentHTTPLoad(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Options: serve.Options{
		MaxBatch: 16, MaxDelay: 20 * time.Millisecond, Workers: 2,
	}})
	graphs := make([]string, 6)
	for i := range graphs {
		graphs[i] = fmt.Sprintf("0 1\n1 2\n2 3\n3 %d\n", 4+i%3)
	}
	const loaders = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	errCh := make(chan error, loaders)
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 12; i++ {
				resp, body := postJSONQuiet(ts.URL+"/homvec", map[string]string{"graph": graphs[(w+i)%len(graphs)]})
				if resp == nil || resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("homvec failed: %s", body)
					return
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	ps := snap.Pipelines["homvec"]
	if ps.Requests != loaders*12 {
		t.Fatalf("%d requests recorded, want %d", ps.Requests, loaders*12)
	}
	if ps.CacheHits == 0 {
		t.Error("no cache hits despite repeated graphs")
	}
	if ps.Batches > 0 && ps.BatchOccupancy <= 1 && ps.CacheMisses > ps.Batches {
		t.Errorf("no coalescing: %+v", ps)
	}
}

func postJSONQuiet(url string, body any) (*http.Response, []byte) {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, []byte(err.Error())
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

// TestV2MmapServingBitIdentical: the mmap'ed v2 fast path must serve the
// same bits as the offline trainer — float64 blocks are zero-copy views,
// so nothing may be lost between Save and /embed.
func TestV2MmapServingBitIdentical(t *testing.T) {
	g, err := graph.ParseGraph(hexagonText)
	if err != nil {
		t.Fatal(err)
	}
	offline := embed.Node2VecWorkers(g, 4, 1, 1, 1, rand.New(rand.NewSource(1)))
	mp := filepath.Join(t.TempDir(), "m2.bin")
	if err := model.SaveEmbeddings(mp, model.EmbeddingsSpec{
		Kind: model.KindNodeEmbedding, Method: offline.Method,
		Rows: offline.Vectors.Rows, Cols: offline.Vectors.Cols,
		Data: offline.Vectors.Data, DType: model.DTypeF64,
	}); err != nil {
		t.Fatal(err)
	}
	d, ts := newTestDaemon(t, daemonConfig{ModelPath: mp})
	for v := 0; v < g.N(); v++ {
		resp, body := postJSON(t, ts.URL+"/embed", map[string]int{"id": v})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/embed id=%d: status %d: %s", v, resp.StatusCode, body)
		}
		var er embedResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		want := offline.Vector(v)
		for j := range want {
			if er.Vector[j] != want[j] {
				t.Fatalf("id %d dim %d: served %v, offline %v (v2 f64 must be bit-identical)", v, j, er.Vector[j], want[j])
			}
		}
	}
	// /embed lookups surface in /stats through Server.ObserveEmbed.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if ps, ok := snap.Pipelines["embed"]; !ok || ps.Requests != int64(g.N()) {
		t.Errorf("embed pipeline stats = %+v, want %d requests", snap.Pipelines["embed"], g.N())
	}
	_ = d
}

// TestQuantizedEmbedServing: an int8-tier model serves /embed vectors that
// stay within the quantisation quality gate of the full-precision model.
func TestQuantizedEmbedServing(t *testing.T) {
	g, err := graph.ParseGraph(hexagonText)
	if err != nil {
		t.Fatal(err)
	}
	offline := embed.Node2VecWorkers(g, 8, 1, 1, 1, rand.New(rand.NewSource(1)))
	mp := filepath.Join(t.TempDir(), "q.bin")
	if err := model.SaveEmbeddings(mp, model.EmbeddingsSpec{
		Kind: model.KindNodeEmbedding, Method: offline.Method,
		Rows: offline.Vectors.Rows, Cols: offline.Vectors.Cols,
		Data: offline.Vectors.Data, DType: model.DTypeInt8,
	}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestDaemon(t, daemonConfig{ModelPath: mp})
	for v := 0; v < g.N(); v++ {
		resp, body := postJSON(t, ts.URL+"/embed", map[string]int{"id": v})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/embed id=%d: status %d: %s", v, resp.StatusCode, body)
		}
		var er embedResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		want := offline.Vector(v)
		var dot, na, nb float64
		for j := range want {
			dot += er.Vector[j] * want[j]
			na += want[j] * want[j]
			nb += er.Vector[j] * er.Vector[j]
		}
		if cos := dot / math.Sqrt(na*nb); cos < 0.99 {
			t.Errorf("id %d: quantised serving cosine %v vs full precision, want >= 0.99", v, cos)
		}
	}
}

// TestCorruptV2FailsClosed: the daemon's default startup verifies the
// whole-file CRC of a v2 model; -skip-verify trades that pass for an O(1)
// cold start but still rejects structurally broken headers.
func TestCorruptV2FailsClosed(t *testing.T) {
	e := embed.Node2VecWorkers(graph.Cycle(5), 4, 1, 1, 1, rand.New(rand.NewSource(1)))
	mp := filepath.Join(t.TempDir(), "m2.bin")
	if err := model.SaveEmbeddings(mp, model.EmbeddingsSpec{
		Kind: model.KindNodeEmbedding, Method: e.Method,
		Rows: e.Vectors.Rows, Cols: e.Vectors.Cols, Data: e.Vectors.Data, DType: model.DTypeF64,
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	b[4096+5] ^= 0x10 // flip a bit deep in the vector block
	cp := filepath.Join(t.TempDir(), "corrupt.bin")
	if err := os.WriteFile(cp, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newDaemon(daemonConfig{ModelPath: cp}); err == nil {
		t.Error("default startup must CRC the model and refuse a corrupt file")
	}
	d, err := newDaemon(daemonConfig{ModelPath: cp, SkipVerify: true})
	if err != nil {
		t.Errorf("-skip-verify should defer payload CRC: %v", err)
	} else {
		d.close()
	}
}

// saveVersioned writes a tiny v2 model whose vectors encode gen, so a
// response proves which generation served it.
func saveVersioned(t *testing.T, dir string, gen int) string {
	t.Helper()
	const rows, cols = 4, 3
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = float64(gen*100 + i/cols)
	}
	p := filepath.Join(dir, fmt.Sprintf("gen%d.x2vm", gen))
	if err := model.SaveEmbeddings(p, model.EmbeddingsSpec{
		Kind: model.KindNodeEmbedding, Method: "node2vec",
		Rows: rows, Cols: cols, Data: data, DType: model.DTypeF64,
	}); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestReloadEndpointHotSwap drives the serving half of the dynamic
// pipeline: /embed carries the generation's model_version, /stats reports
// the served model, POST /reload swaps generations without a restart, a
// failed reload leaves serving untouched, and an empty body re-reads the
// current path (the SIGHUP semantics).
func TestReloadEndpointHotSwap(t *testing.T) {
	dir := t.TempDir()
	mp1 := saveVersioned(t, dir, 1)
	d, ts := newTestDaemon(t, daemonConfig{ModelPath: mp1})

	embedAt := func(id int) embedResponse {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/embed", map[string]int{"id": id})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/embed: %d %s", resp.StatusCode, body)
		}
		var er embedResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		return er
	}

	if er := embedAt(2); er.ModelVersion != 1 || er.Vector[0] != 102 {
		t.Fatalf("gen 1 serving: %+v", er)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Model == nil || snap.Model.Version != 1 || snap.Model.Swaps != 1 || snap.Model.Rows != 4 {
		t.Fatalf("/stats model section: %+v", snap.Model)
	}

	// Swap to generation 2 and verify both the response version and vectors.
	mp2 := saveVersioned(t, dir, 2)
	resp2, body := postJSON(t, ts.URL+"/reload", map[string]string{"model": mp2})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/reload: %d %s", resp2.StatusCode, body)
	}
	var ms serve.ModelSnapshot
	if err := json.Unmarshal(body, &ms); err != nil {
		t.Fatal(err)
	}
	if ms.Version != 2 || ms.Path != mp2 {
		t.Fatalf("reload snapshot: %+v", ms)
	}
	if er := embedAt(2); er.ModelVersion != 2 || er.Vector[0] != 202 {
		t.Fatalf("gen 2 serving: %+v", er)
	}

	// A failed reload must leave generation 2 serving.
	respBad, _ := postJSON(t, ts.URL+"/reload", map[string]string{"model": filepath.Join(dir, "missing.x2vm")})
	if respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload of missing file: %d", respBad.StatusCode)
	}
	if er := embedAt(1); er.ModelVersion != 2 || er.Vector[0] != 201 {
		t.Fatalf("serving changed after failed reload: %+v", er)
	}

	// Empty body = re-read the current path in place, same as SIGHUP (which
	// routes through the identical d.reload("") call).
	respHup, err := http.Post(ts.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	respHup.Body.Close()
	if respHup.StatusCode != http.StatusOK {
		t.Fatalf("empty-body reload: %d", respHup.StatusCode)
	}
	if er := embedAt(0); er.ModelVersion != 3 || er.Vector[0] != 200 {
		t.Fatalf("in-place reload: %+v", er)
	}
	if s := d.svc.Snapshot(); s.Swaps != 3 {
		t.Fatalf("swap count %d, want 3", s.Swaps)
	}

	// Method and no-model guards.
	respGet, err := http.Get(ts.URL + "/reload")
	if err != nil {
		t.Fatal(err)
	}
	respGet.Body.Close()
	if respGet.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload: %d", respGet.StatusCode)
	}
	_, tsNone := newTestDaemon(t, daemonConfig{})
	respNone, _ := postJSON(t, tsNone.URL+"/reload", map[string]string{"model": mp2})
	if respNone.StatusCode != http.StatusNotFound {
		t.Fatalf("/reload without -model: %d", respNone.StatusCode)
	}
}
