// Command x2vecd is the x2vec embedding daemon: an HTTP JSON front end over
// the internal/serve batching layer and the internal/model store. Train
// once with `x2vec train … -model m.bin`, then serve vectors forever:
//
//	x2vecd -addr :8080 -model m.bin
//
// Endpoints (request bodies are JSON; graphs travel in the same edge-list
// text format the CLI reads, including the optional "# n=K" header):
//
//	POST /embed    {"id": 3}                      vector of node/graph/token 3
//	               from the loaded model — no retraining, bit-identical to
//	               the offline x2vec pipeline that trained it
//	POST /homvec   {"graph": "0 1\n1 2\n"}        log-scaled homomorphism vector
//	POST /kernel   {"name": "wl", "a": …, "b": …} kernel value between two graphs
//	POST /wl       {"graph": "0 1\n1 2\n"}        stable WL colouring
//	GET  /healthz                                 liveness probe
//	GET  /stats                                   cache hit rates, batch occupancy,
//	                                              p50/p99 latency per pipeline
//
// Concurrency model: concurrent requests to the graph pipelines coalesce
// into shared engine batches (-batch, -batch-delay), answers for repeated —
// even renumbered — graphs come from per-pipeline LRU caches (-cache), and
// each pipeline's engine parallelism is capped by -workers instead of any
// process-global knob. SIGINT/SIGTERM drain in-flight requests and exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "model file for /embed (from `x2vec train … -model`)")
	classPath := flag.String("homclass", "", "pattern-class model file for /homvec (default: the standard class)")
	rounds := flag.Int("rounds", 5, "WL refinement depth for /wl and /kernel")
	batch := flag.Int("batch", 32, "max requests coalesced into one engine pass")
	batchDelay := flag.Duration("batch-delay", 2*time.Millisecond, "latency budget while filling a batch")
	workers := flag.Int("workers", 0, "engine workers per pipeline (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1024, "LRU entries per pipeline cache (negative disables)")
	skipVerify := flag.Bool("skip-verify", false, "skip the whole-file model CRC at startup (O(1) cold start for mmap'ed v2 models)")
	flag.Parse()

	d, err := newDaemon(daemonConfig{
		ModelPath:  *modelPath,
		ClassPath:  *classPath,
		SkipVerify: *skipVerify,
		Options: serve.Options{
			Rounds:    *rounds,
			MaxBatch:  *batch,
			MaxDelay:  *batchDelay,
			Workers:   *workers,
			CacheSize: *cacheSize,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "x2vecd:", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: d.handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("x2vecd listening on %s (model=%s)", *addr, describeModel(d))

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "x2vecd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Printf("x2vecd shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("x2vecd: shutdown: %v", err)
	}
	d.close()
}

func describeModel(d *daemon) string {
	if d.emb == nil {
		return "none"
	}
	backing := "heap"
	if d.emb.Mapped {
		backing = "mmap"
	}
	return fmt.Sprintf("%v/%v/%s", d.emb.Kind, d.emb.DType, backing)
}

// daemonConfig bundles everything newDaemon needs; split from the flag
// parsing so tests construct daemons directly.
type daemonConfig struct {
	ModelPath string
	ClassPath string
	// SkipVerify skips the whole-file CRC pass over a v2 model at startup,
	// keeping the mmap cold start O(1). The default verifies: a daemon
	// fails closed on a corrupt model file rather than serving garbage.
	SkipVerify bool
	Options    serve.Options
}

type daemon struct {
	srv *serve.Server
	emb *model.Embeddings
}

func newDaemon(cfg daemonConfig) (*daemon, error) {
	d := &daemon{}
	if cfg.ModelPath != "" {
		// One unified handle for every embedding kind and both format
		// versions: v2 files serve straight from a page-aligned mapping,
		// v1 files decode through the legacy loaders.
		e, err := model.OpenEmbeddings(cfg.ModelPath)
		if err != nil {
			return nil, err
		}
		if !cfg.SkipVerify {
			if err := e.Verify(); err != nil {
				e.Close()
				return nil, err
			}
		}
		d.emb = e
	}
	if cfg.ClassPath != "" {
		class, err := model.LoadHomClass(cfg.ClassPath)
		if err != nil {
			if d.emb != nil {
				d.emb.Close()
			}
			return nil, err
		}
		cfg.Options.Class = class
	}
	d.srv = serve.New(cfg.Options)
	return d, nil
}

func (d *daemon) close() {
	d.srv.Close()
	if d.emb != nil {
		d.emb.Close() // release the model mapping after the last request drained
	}
}

// maxBody bounds request bodies (32 MiB of edge-list text is far beyond any
// sensible request graph).
const maxBody = 32 << 20

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.srv.Stats())
	})
	mux.HandleFunc("/embed", d.handleEmbed)
	mux.HandleFunc("/homvec", d.handleHomVec)
	mux.HandleFunc("/kernel", d.handleKernel)
	mux.HandleFunc("/wl", d.handleWL)
	return http.MaxBytesHandler(mux, maxBody)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decode parses a JSON request body into v, rejecting unknown fields so
// typos ("grpah") fail loudly instead of serving the empty graph.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// requestGraph decodes one edge-list text into a graph through the shared
// validating reader — a malformed graph is a 400, never a panic.
func requestGraph(w http.ResponseWriter, text, field string) (*graph.Graph, bool) {
	if text == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing %q field", field))
		return nil, false
	}
	g, err := graph.ParseGraph(text)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad graph in %q: %w", field, err))
		return nil, false
	}
	return g, true
}

// serveStatus maps pipeline errors: a closed server is 503, anything else
// (a failed engine batch) is 500.
func serveStatus(err error) int {
	if errors.Is(err, serve.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

type embedRequest struct {
	ID int `json:"id"`
}

type embedResponse struct {
	ID     int       `json:"id"`
	Method string    `json:"method"`
	Vector []float64 `json:"vector"`
}

func (d *daemon) handleEmbed(w http.ResponseWriter, r *http.Request) {
	var req embedRequest
	if !decode(w, r, &req) {
		return
	}
	if d.emb == nil {
		writeError(w, http.StatusNotFound, errors.New("no model loaded; start x2vecd with -model"))
		return
	}
	if req.ID < 0 || req.ID >= d.emb.Rows {
		writeError(w, http.StatusBadRequest, fmt.Errorf("id %d out of range [0,%d)", req.ID, d.emb.Rows))
		return
	}
	start := time.Now()
	vec := d.emb.Vector(req.ID)
	d.srv.ObserveEmbed(start)
	writeJSON(w, http.StatusOK, embedResponse{ID: req.ID, Method: d.emb.Method, Vector: vec})
}

type graphRequest struct {
	Graph string `json:"graph"`
}

type homvecResponse struct {
	Vector []float64 `json:"vector"`
}

func (d *daemon) handleHomVec(w http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if !decode(w, r, &req) {
		return
	}
	g, ok := requestGraph(w, req.Graph, "graph")
	if !ok {
		return
	}
	v, err := d.srv.HomVec(g)
	if err != nil {
		writeError(w, serveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, homvecResponse{Vector: v})
}

type kernelRequest struct {
	Name string `json:"name"`
	A    string `json:"a"`
	B    string `json:"b"`
}

type kernelResponse struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func (d *daemon) handleKernel(w http.ResponseWriter, r *http.Request) {
	var req kernelRequest
	if !decode(w, r, &req) {
		return
	}
	a, ok := requestGraph(w, req.A, "a")
	if !ok {
		return
	}
	b, ok := requestGraph(w, req.B, "b")
	if !ok {
		return
	}
	name := req.Name
	if name == "" {
		name = "wl"
	}
	v, err := d.srv.Kernel(name, a, b)
	if err != nil {
		status := serveStatus(err)
		if errors.Is(err, serve.ErrUnknownKernel) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, kernelResponse{Name: name, Value: v})
}

type wlResponse struct {
	Rounds  int   `json:"rounds"`
	Classes int   `json:"classes"`
	Colors  []int `json:"colors"`
}

func (d *daemon) handleWL(w http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if !decode(w, r, &req) {
		return
	}
	g, ok := requestGraph(w, req.Graph, "graph")
	if !ok {
		return
	}
	res, err := d.srv.WL(g)
	if err != nil {
		writeError(w, serveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, wlResponse{Rounds: res.Rounds, Classes: res.Classes, Colors: res.Colors})
}
