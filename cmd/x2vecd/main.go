// Command x2vecd is the x2vec embedding daemon: an HTTP JSON front end over
// the internal/serve batching layer and the internal/model store. Train
// once with `x2vec train … -model m.bin`, then serve vectors forever:
//
//	x2vecd -addr :8080 -model m.bin
//
// Endpoints (request bodies are JSON; graphs travel in the same edge-list
// text format the CLI reads, including the optional "# n=K" header):
//
//	POST /embed    {"id": 3}                      vector of node/graph/token 3
//	               from the loaded model — no retraining, bit-identical to
//	               the offline x2vec pipeline that trained it
//	POST /homvec   {"graph": "0 1\n1 2\n"}        log-scaled homomorphism vector
//	POST /kernel   {"name": "wl", "a": …, "b": …} kernel value between two graphs
//	POST /wl       {"graph": "0 1\n1 2\n"}        stable WL colouring
//	GET  /healthz                                 liveness probe
//	GET  /stats                                   cache hit rates, batch occupancy,
//	                                              p50/p99 latency per pipeline
//
// Concurrency model: concurrent requests to the graph pipelines coalesce
// into shared engine batches (-batch, -batch-delay), answers for repeated —
// even renumbered — graphs come from per-pipeline LRU caches (-cache), and
// each pipeline's engine parallelism is capped by -workers instead of any
// process-global knob. SIGINT/SIGTERM drain in-flight requests and exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/graph2vec"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/word2vec"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "model file for /embed (from `x2vec train … -model`)")
	classPath := flag.String("homclass", "", "pattern-class model file for /homvec (default: the standard class)")
	rounds := flag.Int("rounds", 5, "WL refinement depth for /wl and /kernel")
	batch := flag.Int("batch", 32, "max requests coalesced into one engine pass")
	batchDelay := flag.Duration("batch-delay", 2*time.Millisecond, "latency budget while filling a batch")
	workers := flag.Int("workers", 0, "engine workers per pipeline (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1024, "LRU entries per pipeline cache (negative disables)")
	flag.Parse()

	d, err := newDaemon(daemonConfig{
		ModelPath: *modelPath,
		ClassPath: *classPath,
		Options: serve.Options{
			Rounds:    *rounds,
			MaxBatch:  *batch,
			MaxDelay:  *batchDelay,
			Workers:   *workers,
			CacheSize: *cacheSize,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "x2vecd:", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: d.handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("x2vecd listening on %s (model=%s)", *addr, describeModel(d))

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "x2vecd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Printf("x2vecd shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("x2vecd: shutdown: %v", err)
	}
	d.close()
}

func describeModel(d *daemon) string {
	if d.emb == nil {
		return "none"
	}
	return d.emb.kind.String()
}

// daemonConfig bundles everything newDaemon needs; split from the flag
// parsing so tests construct daemons directly.
type daemonConfig struct {
	ModelPath string
	ClassPath string
	Options   serve.Options
}

// loadedModel is the /embed lookup table, whichever kind was loaded.
type loadedModel struct {
	kind model.Kind
	node *embed.NodeEmbedding
	g2v  *graph2vec.Model
	w2v  *word2vec.Model
}

// rows returns how many ids the model serves.
func (m *loadedModel) rows() int {
	switch m.kind {
	case model.KindNodeEmbedding:
		return m.node.Vectors.Rows
	case model.KindGraph2Vec:
		return m.g2v.Vectors.Rows
	case model.KindWord2Vec:
		return m.w2v.Vocab
	}
	return 0
}

// vector returns the embedding of id.
func (m *loadedModel) vector(id int) []float64 {
	switch m.kind {
	case model.KindNodeEmbedding:
		return m.node.Vector(id)
	case model.KindGraph2Vec:
		return m.g2v.Vector(id)
	case model.KindWord2Vec:
		return m.w2v.Vector(id)
	}
	return nil
}

func (m *loadedModel) method() string {
	if m.kind == model.KindNodeEmbedding {
		return m.node.Method
	}
	return m.kind.String()
}

type daemon struct {
	srv *serve.Server
	emb *loadedModel
}

func newDaemon(cfg daemonConfig) (*daemon, error) {
	d := &daemon{}
	if cfg.ModelPath != "" {
		// One read + one CRC pass; kind dispatch happens on the decoded
		// value, not a second trip through the file.
		v, kind, err := model.LoadAny(cfg.ModelPath)
		if err != nil {
			return nil, err
		}
		lm := &loadedModel{kind: kind}
		switch m := v.(type) {
		case *embed.NodeEmbedding:
			lm.node = m
		case *graph2vec.Model:
			lm.g2v = m
		case *word2vec.Model:
			lm.w2v = m
		default:
			return nil, fmt.Errorf("x2vecd: cannot serve /embed from a %v model", kind)
		}
		d.emb = lm
	}
	if cfg.ClassPath != "" {
		class, err := model.LoadHomClass(cfg.ClassPath)
		if err != nil {
			return nil, err
		}
		cfg.Options.Class = class
	}
	d.srv = serve.New(cfg.Options)
	return d, nil
}

func (d *daemon) close() { d.srv.Close() }

// maxBody bounds request bodies (32 MiB of edge-list text is far beyond any
// sensible request graph).
const maxBody = 32 << 20

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.srv.Stats())
	})
	mux.HandleFunc("/embed", d.handleEmbed)
	mux.HandleFunc("/homvec", d.handleHomVec)
	mux.HandleFunc("/kernel", d.handleKernel)
	mux.HandleFunc("/wl", d.handleWL)
	return http.MaxBytesHandler(mux, maxBody)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decode parses a JSON request body into v, rejecting unknown fields so
// typos ("grpah") fail loudly instead of serving the empty graph.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// requestGraph decodes one edge-list text into a graph through the shared
// validating reader — a malformed graph is a 400, never a panic.
func requestGraph(w http.ResponseWriter, text, field string) (*graph.Graph, bool) {
	if text == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing %q field", field))
		return nil, false
	}
	g, err := graph.ParseGraph(text)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad graph in %q: %w", field, err))
		return nil, false
	}
	return g, true
}

// serveStatus maps pipeline errors: a closed server is 503, anything else
// (a failed engine batch) is 500.
func serveStatus(err error) int {
	if errors.Is(err, serve.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

type embedRequest struct {
	ID int `json:"id"`
}

type embedResponse struct {
	ID     int       `json:"id"`
	Method string    `json:"method"`
	Vector []float64 `json:"vector"`
}

func (d *daemon) handleEmbed(w http.ResponseWriter, r *http.Request) {
	var req embedRequest
	if !decode(w, r, &req) {
		return
	}
	if d.emb == nil {
		writeError(w, http.StatusNotFound, errors.New("no model loaded; start x2vecd with -model"))
		return
	}
	if req.ID < 0 || req.ID >= d.emb.rows() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("id %d out of range [0,%d)", req.ID, d.emb.rows()))
		return
	}
	writeJSON(w, http.StatusOK, embedResponse{ID: req.ID, Method: d.emb.method(), Vector: d.emb.vector(req.ID)})
}

type graphRequest struct {
	Graph string `json:"graph"`
}

type homvecResponse struct {
	Vector []float64 `json:"vector"`
}

func (d *daemon) handleHomVec(w http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if !decode(w, r, &req) {
		return
	}
	g, ok := requestGraph(w, req.Graph, "graph")
	if !ok {
		return
	}
	v, err := d.srv.HomVec(g)
	if err != nil {
		writeError(w, serveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, homvecResponse{Vector: v})
}

type kernelRequest struct {
	Name string `json:"name"`
	A    string `json:"a"`
	B    string `json:"b"`
}

type kernelResponse struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func (d *daemon) handleKernel(w http.ResponseWriter, r *http.Request) {
	var req kernelRequest
	if !decode(w, r, &req) {
		return
	}
	a, ok := requestGraph(w, req.A, "a")
	if !ok {
		return
	}
	b, ok := requestGraph(w, req.B, "b")
	if !ok {
		return
	}
	name := req.Name
	if name == "" {
		name = "wl"
	}
	v, err := d.srv.Kernel(name, a, b)
	if err != nil {
		status := serveStatus(err)
		if errors.Is(err, serve.ErrUnknownKernel) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, kernelResponse{Name: name, Value: v})
}

type wlResponse struct {
	Rounds  int   `json:"rounds"`
	Classes int   `json:"classes"`
	Colors  []int `json:"colors"`
}

func (d *daemon) handleWL(w http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if !decode(w, r, &req) {
		return
	}
	g, ok := requestGraph(w, req.Graph, "graph")
	if !ok {
		return
	}
	res, err := d.srv.WL(g)
	if err != nil {
		writeError(w, serveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, wlResponse{Rounds: res.Rounds, Classes: res.Classes, Colors: res.Colors})
}
