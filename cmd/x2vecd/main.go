// Command x2vecd is the x2vec embedding daemon: an HTTP JSON front end over
// the internal/serve batching layer and the internal/model store. Train
// once with `x2vec train … -model m.bin`, then serve vectors forever:
//
//	x2vecd -addr :8080 -model m.bin
//
// Endpoints (request bodies are JSON; graphs travel in the same edge-list
// text format the CLI reads, including the optional "# n=K" header):
//
//	POST /embed    {"id": 3}                      vector of node/graph/token 3
//	               from the loaded model — no retraining, bit-identical to
//	               the offline x2vec pipeline that trained it. KGE models
//	               serve entity rows by id; against a GNN model the request
//	               carries a graph instead: {"graph": "0 1\n1 2\n"} embeds
//	               the request graph with the stored network and feature
//	               scheme
//	POST /link-predict {"head": 0, "relation": 2, "k": 10}
//	               top-k tail completions of (head, relation, ?) from the
//	               loaded KGE model in the filtered setting (known facts
//	               and the anchor excluded); {"tail": …} instead of "head"
//	               ranks head completions of (?, relation, tail)
//	POST /homvec   {"graph": "0 1\n1 2\n"}        log-scaled homomorphism vector
//	POST /kernel   {"name": "wl", "a": …, "b": …} kernel value between two graphs
//	POST /wl       {"graph": "0 1\n1 2\n"}        stable WL colouring
//	POST /neighbors {"graph": …, "k": 10}         top-k most similar indexed corpus
//	               graphs from the LSH index loaded with -index (built by
//	               `x2vec index`): count-sketch WL embed, multi-probe lookup,
//	               exact-cosine rerank — sublinear in the corpus size
//	POST /reload   {"model": "path", "index": "path"}  hot-swap the served model
//	               (and index, atomically with it); an empty body (or SIGHUP)
//	               re-reads the current paths in place
//	GET  /healthz                                 liveness probe
//	GET  /stats                                   cache hit rates, batch occupancy,
//	                                              p50/p99 latency per pipeline,
//	                                              plus the served model generation
//
// Concurrency model: concurrent requests to the graph pipelines coalesce
// into shared engine batches (-batch, -batch-delay), answers for repeated —
// even renumbered — graphs come from per-pipeline LRU caches (-cache), and
// each pipeline's engine parallelism is capped by -workers instead of any
// process-global knob. SIGINT/SIGTERM drain in-flight requests and exit.
//
// The model behind /embed lives in a serve.EmbedService: /reload (or
// SIGHUP, for the fine-tune-and-re-save loop of a dynamic pipeline)
// validates the new file before atomically flipping serving to it, so a
// bad file never interrupts traffic, no request is ever dropped across a
// swap, and every response carries the monotone model_version that /stats
// reports.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "model file for /embed (from `x2vec train … -model`)")
	indexPath := flag.String("index", "", "ANN index file for /neighbors (from `x2vec index`); requires -model")
	classPath := flag.String("homclass", "", "pattern-class model file for /homvec (default: the standard class)")
	rounds := flag.Int("rounds", 5, "WL refinement depth for /wl and /kernel")
	batch := flag.Int("batch", 32, "max requests coalesced into one engine pass")
	batchDelay := flag.Duration("batch-delay", 2*time.Millisecond, "latency budget while filling a batch")
	workers := flag.Int("workers", 0, "engine workers per pipeline (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1024, "LRU entries per pipeline cache (negative disables)")
	skipVerify := flag.Bool("skip-verify", false, "skip the whole-file model CRC at startup (O(1) cold start for mmap'ed v2 models)")
	flag.Parse()

	d, err := newDaemon(daemonConfig{
		ModelPath:  *modelPath,
		IndexPath:  *indexPath,
		ClassPath:  *classPath,
		SkipVerify: *skipVerify,
		Options: serve.Options{
			Rounds:    *rounds,
			MaxBatch:  *batch,
			MaxDelay:  *batchDelay,
			Workers:   *workers,
			CacheSize: *cacheSize,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "x2vecd:", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: d.handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP re-reads the current model path in place — the signal half of
	// /reload, for pipelines that re-save fine-tuned generations to a fixed
	// path and nudge the daemon.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			snap, err := d.reload("", nil)
			if err != nil {
				log.Printf("x2vecd: SIGHUP reload: %v", err)
				continue
			}
			log.Printf("x2vecd: reloaded %s (model_version %d)", snap.Path, snap.Version)
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("x2vecd listening on %s (model=%s)", *addr, describeModel(d))

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "x2vecd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Printf("x2vecd shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("x2vecd: shutdown: %v", err)
	}
	d.close()
}

func describeModel(d *daemon) string {
	if d.svc == nil {
		return "none"
	}
	snap := d.svc.Snapshot()
	if snap == nil {
		return "none"
	}
	backing := "heap"
	if snap.Mapped {
		backing = "mmap"
	}
	return fmt.Sprintf("%s/%s/%s", snap.Kind, snap.DType, backing)
}

// daemonConfig bundles everything newDaemon needs; split from the flag
// parsing so tests construct daemons directly.
type daemonConfig struct {
	ModelPath string
	IndexPath string // ANN index for /neighbors; requires ModelPath
	ClassPath string
	// SkipVerify skips the whole-file CRC pass over a v2 model at startup,
	// keeping the mmap cold start O(1). The default verifies: a daemon
	// fails closed on a corrupt model file rather than serving garbage.
	SkipVerify bool
	Options    serve.Options
}

type daemon struct {
	srv *serve.Server
	svc *serve.EmbedService // nil when started without -model
}

func newDaemon(cfg daemonConfig) (*daemon, error) {
	if cfg.ClassPath != "" {
		class, err := model.LoadHomClass(cfg.ClassPath)
		if err != nil {
			return nil, err
		}
		cfg.Options.Class = class
	}
	d := &daemon{srv: serve.New(cfg.Options)}
	if cfg.IndexPath != "" && cfg.ModelPath == "" {
		d.srv.Close()
		return nil, errors.New("-index requires -model: /neighbors answers carry the served model generation")
	}
	if cfg.ModelPath != "" {
		// The hot-swap service owns the model handle: one unified view over
		// every embedding kind and both format versions (v2 files serve
		// straight from a page-aligned mapping, v1 files decode through the
		// legacy loaders), swapped atomically on /reload or SIGHUP. The ANN
		// index rides the same handle, so /neighbors and /embed always agree
		// on the generation.
		svc, err := d.srv.NewEmbedService(cfg.ModelPath, cfg.IndexPath, !cfg.SkipVerify, cfg.Options.CacheSize)
		if err != nil {
			d.srv.Close()
			return nil, err
		}
		d.svc = svc
	}
	return d, nil
}

// reload hot-swaps the served model and ANN index together. An empty model
// path re-reads whatever the current generation came from — the SIGHUP
// semantics. indexPath nil inherits (and re-opens) the current index rather
// than silently dropping /neighbors; an explicit empty string drops it,
// which a swap onto a non-table kind (KGE, GNN) requires since the ANN
// index only rides embedding tables.
func (d *daemon) reload(modelPath string, indexPath *string) (serve.ModelSnapshot, error) {
	if d.svc == nil {
		return serve.ModelSnapshot{}, errors.New("no model loaded; start x2vecd with -model")
	}
	idx := ""
	if indexPath != nil {
		idx = *indexPath
	}
	if cur := d.svc.Snapshot(); cur != nil {
		if modelPath == "" {
			modelPath = cur.Path
		}
		if indexPath == nil && cur.Index != nil {
			idx = cur.Index.Path
		}
	}
	return d.svc.Reload(modelPath, idx)
}

func (d *daemon) close() {
	d.srv.Close()
	if d.svc != nil {
		d.svc.Close() // release the model mapping after the last request drained
	}
}

// maxBody bounds request bodies (32 MiB of edge-list text is far beyond any
// sensible request graph).
const maxBody = 32 << 20

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		snap := d.srv.Stats()
		if d.svc != nil {
			snap.Model = d.svc.Snapshot() // current generation, version, swap count
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("/embed", d.handleEmbed)
	mux.HandleFunc("/link-predict", d.handleLinkPredict)
	mux.HandleFunc("/reload", d.handleReload)
	mux.HandleFunc("/homvec", d.handleHomVec)
	mux.HandleFunc("/kernel", d.handleKernel)
	mux.HandleFunc("/wl", d.handleWL)
	mux.HandleFunc("/neighbors", d.handleNeighbors)
	return http.MaxBytesHandler(mux, maxBody)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decode parses a JSON request body into v, rejecting unknown fields so
// typos ("grpah") fail loudly instead of serving the empty graph.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// requestGraph decodes one edge-list text into a graph through the shared
// validating reader — a malformed graph is a 400, never a panic.
func requestGraph(w http.ResponseWriter, text, field string) (*graph.Graph, bool) {
	if text == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing %q field", field))
		return nil, false
	}
	g, err := graph.ParseGraph(text)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad graph in %q: %w", field, err))
		return nil, false
	}
	return g, true
}

// serveStatus maps pipeline errors: a closed server is 503, anything else
// (a failed engine batch) is 500.
func serveStatus(err error) int {
	if errors.Is(err, serve.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

type embedRequest struct {
	ID    *int   `json:"id,omitempty"`    // table/KGE models: row or entity id
	Graph string `json:"graph,omitempty"` // GNN models: edge-list text to embed
}

type embedResponse struct {
	ID           *int      `json:"id,omitempty"`
	Method       string    `json:"method"`
	ModelVersion uint64    `json:"model_version"` // generation that served this vector
	Vector       []float64 `json:"vector"`
}

// embedStatus maps embed-service errors: no model is 404, a bad id or a
// kind mismatch is the client's fault, anything else the server's.
func embedStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrNoModel):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrEmbedRange), errors.Is(err, serve.ErrWrongModel):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (d *daemon) handleEmbed(w http.ResponseWriter, r *http.Request) {
	var req embedRequest
	if !decode(w, r, &req) {
		return
	}
	if d.svc == nil {
		writeError(w, http.StatusNotFound, errors.New("no model loaded; start x2vecd with -model"))
		return
	}
	if (req.ID == nil) == (req.Graph == "") {
		writeError(w, http.StatusBadRequest, errors.New(`need exactly one of "id" or "graph"`))
		return
	}
	if req.Graph != "" {
		g, ok := requestGraph(w, req.Graph, "graph")
		if !ok {
			return
		}
		vec, version, err := d.svc.EmbedGraph(g)
		if err != nil {
			writeError(w, embedStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, embedResponse{Method: "gnn", ModelVersion: version, Vector: vec})
		return
	}
	vec, method, version, err := d.svc.Lookup(*req.ID)
	if err != nil {
		writeError(w, embedStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, embedResponse{ID: req.ID, Method: method, ModelVersion: version, Vector: vec})
}

type linkPredictRequest struct {
	Head     *int `json:"head,omitempty"` // rank tails of (head, relation, ?)
	Tail     *int `json:"tail,omitempty"` // rank heads of (?, relation, tail)
	Relation *int `json:"relation"`
	K        int  `json:"k"` // 0 = serve.DefaultLinkK
}

type linkPredictResponse struct {
	Mode         string    `json:"mode"`   // "tail" or "head": which side was ranked
	Method       string    `json:"method"` // "transe" (lower is better) or "rescal" (higher)
	K            int       `json:"k"`
	ModelVersion uint64    `json:"model_version"`
	Entities     []int     `json:"entities"` // ranked, best completion first
	Scores       []float64 `json:"scores"`
}

// handleLinkPredict serves filtered top-k triple completion from the loaded
// KGE model: exactly one of "head"/"tail" picks the open side, known facts
// and the anchor never appear in the ranking.
func (d *daemon) handleLinkPredict(w http.ResponseWriter, r *http.Request) {
	var req linkPredictRequest
	if !decode(w, r, &req) {
		return
	}
	if d.svc == nil {
		writeError(w, http.StatusNotFound, errors.New("no model loaded; start x2vecd with -model"))
		return
	}
	if req.Relation == nil {
		writeError(w, http.StatusBadRequest, errors.New(`missing "relation" field`))
		return
	}
	if (req.Head == nil) == (req.Tail == nil) {
		writeError(w, http.StatusBadRequest, errors.New(`need exactly one of "head" or "tail"`))
		return
	}
	anchor, mode := 0, ""
	if req.Head != nil {
		anchor, mode = *req.Head, "tail"
	} else {
		anchor, mode = *req.Tail, "head"
	}
	res, err := d.svc.LinkPredict(anchor, *req.Relation, req.K, mode)
	if err != nil {
		writeError(w, embedStatus(err), err)
		return
	}
	resp := linkPredictResponse{
		Mode:         res.Mode,
		Method:       res.Method,
		K:            res.K,
		ModelVersion: res.ModelVersion,
		Entities:     make([]int, len(res.Predictions)),
		Scores:       make([]float64, len(res.Predictions)),
	}
	for i, p := range res.Predictions {
		resp.Entities[i] = p.Entity
		resp.Scores[i] = p.Score
	}
	writeJSON(w, http.StatusOK, resp)
}

type reloadRequest struct {
	Model string  `json:"model"`
	Index *string `json:"index"` // absent: keep the current index; "": drop it
}

// handleReload hot-swaps the served model: an explicit path swaps to a new
// file, an empty body re-reads the current path (the HTTP twin of SIGHUP).
// On failure the current generation keeps serving and the caller gets the
// error; on success the response is the new generation's snapshot.
func (d *daemon) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req reloadRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if d.svc == nil {
		writeError(w, http.StatusNotFound, errors.New("no model loaded; start x2vecd with -model"))
		return
	}
	snap, err := d.reload(req.Model, req.Index)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	log.Printf("x2vecd: reloaded %s (model_version %d)", snap.Path, snap.Version)
	writeJSON(w, http.StatusOK, snap)
}

type graphRequest struct {
	Graph string `json:"graph"`
}

type homvecResponse struct {
	Vector []float64 `json:"vector"`
}

func (d *daemon) handleHomVec(w http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if !decode(w, r, &req) {
		return
	}
	g, ok := requestGraph(w, req.Graph, "graph")
	if !ok {
		return
	}
	v, err := d.srv.HomVec(g)
	if err != nil {
		writeError(w, serveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, homvecResponse{Vector: v})
}

type kernelRequest struct {
	Name string `json:"name"`
	A    string `json:"a"`
	B    string `json:"b"`
}

type kernelResponse struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func (d *daemon) handleKernel(w http.ResponseWriter, r *http.Request) {
	var req kernelRequest
	if !decode(w, r, &req) {
		return
	}
	a, ok := requestGraph(w, req.A, "a")
	if !ok {
		return
	}
	b, ok := requestGraph(w, req.B, "b")
	if !ok {
		return
	}
	name := req.Name
	if name == "" {
		name = "wl"
	}
	v, err := d.srv.Kernel(name, a, b)
	if err != nil {
		status := serveStatus(err)
		if errors.Is(err, serve.ErrUnknownKernel) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, kernelResponse{Name: name, Value: v})
}

type neighborsRequest struct {
	Graph  string `json:"graph"`
	K      int    `json:"k"`      // 0 = serve.DefaultNeighborK
	Probes int    `json:"probes"` // 0 = serve.DefaultProbes
}

type neighborsResponse struct {
	IDs          []int     `json:"ids"`    // ranked, most similar first
	Scores       []float64 `json:"scores"` // exact cosine similarities (reranked)
	K            int       `json:"k"`
	IndexRows    int       `json:"index_rows"`
	ModelVersion uint64    `json:"model_version"`
}

// handleNeighbors serves sublinear top-k similarity over the indexed
// corpus: 404 without an index, 400 for malformed graphs, ids ranked by
// exact cosine after the LSH candidate pass.
func (d *daemon) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	var req neighborsRequest
	if !decode(w, r, &req) {
		return
	}
	if d.svc == nil {
		writeError(w, http.StatusNotFound, serve.ErrNoIndex)
		return
	}
	g, ok := requestGraph(w, req.Graph, "graph")
	if !ok {
		return
	}
	res, err := d.svc.Neighbors(g, req.K, req.Probes)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, serve.ErrNoIndex) || errors.Is(err, serve.ErrNoModel) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	resp := neighborsResponse{
		IDs:          make([]int, len(res.Neighbors)),
		Scores:       make([]float64, len(res.Neighbors)),
		K:            res.K,
		IndexRows:    res.IndexRows,
		ModelVersion: res.ModelVersion,
	}
	for i, nb := range res.Neighbors {
		resp.IDs[i] = nb.ID
		resp.Scores[i] = nb.Score
	}
	writeJSON(w, http.StatusOK, resp)
}

type wlResponse struct {
	Rounds  int   `json:"rounds"`
	Classes int   `json:"classes"`
	Colors  []int `json:"colors"`
}

func (d *daemon) handleWL(w http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if !decode(w, r, &req) {
		return
	}
	g, ok := requestGraph(w, req.Graph, "graph")
	if !ok {
		return
	}
	res, err := d.srv.WL(g)
	if err != nil {
		writeError(w, serveStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, wlResponse{Rounds: res.Rounds, Classes: res.Classes, Colors: res.Colors})
}
