// Command x2veclint machine-checks the repository's hand-built invariants
// — the ones the compiler cannot see. It loads every package matched by
// the given go-list patterns (default ./...), runs the rule suite in
// internal/analysis, prints one `file:line: [rule] message` per finding,
// and exits non-zero when anything survives its //x2vec:allow audit.
//
// Usage:
//
//	x2veclint [-rules hotalloc,nopanic,...] [packages]
//
// Rules:
//
//	hotalloc      no allocation-bearing constructs in //x2vec:hotpath
//	              functions or their same-package callees
//	nopanic       internal library code returns errors, never panics
//	noglobalrand  randomness flows through seeded generators, not the
//	              math/rand global source
//	workerpool    no GOMAXPROCS mutation; goroutines only in the
//	              approved pool packages (linalg, serve, sgns)
//	racemirror    //go:build race files mirror their !race counterparts
//	              function-for-function
//
// `//x2vec:allow <rule> <justification>` on (or directly above) a line
// suppresses exactly that rule there; directives without a justification
// are findings themselves.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: x2veclint [-rules r1,r2] [packages]\nrules: %s\n",
			strings.Join(analysis.AnalyzerNames(), ", "))
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var picked []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(os.Stderr, "x2veclint: unknown rule %q\n", r)
			os.Exit(2)
		}
		analyzers = picked
	}

	pkgs, err := analysis.LoadPatterns(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "x2veclint: %v\n", err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		pos := f.Pos
		if cwd != "" && pos.Filename != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", pos.Filename, pos.Line, f.Rule, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "x2veclint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
