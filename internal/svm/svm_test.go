package svm

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// linearGram builds a Gram matrix of 2-D points under the linear kernel.
func linearGram(pts [][2]float64) *linalg.Matrix {
	n := len(pts)
	g := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, pts[i][0]*pts[j][0]+pts[i][1]*pts[j][1])
		}
	}
	return g
}

func separablePoints(rng *rand.Rand, n int) ([][2]float64, []int) {
	pts := make([][2]float64, n)
	y := make([]int, n)
	for i := range pts {
		if i%2 == 0 {
			pts[i] = [2]float64{2 + rng.NormFloat64()*0.3, 2 + rng.NormFloat64()*0.3}
			y[i] = 1
		} else {
			pts[i] = [2]float64{-2 + rng.NormFloat64()*0.3, -2 + rng.NormFloat64()*0.3}
			y[i] = -1
		}
	}
	return pts, y
}

func TestBinarySVMSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	pts, y := separablePoints(rng, 30)
	gram := linearGram(pts)
	m := TrainGram(gram, y, DefaultConfig(), rng)
	correct := 0
	for i := range pts {
		kRow := make([]float64, len(pts))
		for j := range pts {
			kRow[j] = gram.At(i, j)
		}
		pred := 1
		if m.Decision(kRow) < 0 {
			pred = -1
		}
		if pred == y[i] {
			correct++
		}
	}
	if correct < 28 {
		t.Errorf("separable data: %d/30 correct", correct)
	}
}

func TestMulticlassThreeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	var pts [][2]float64
	var labels []int
	centers := [][2]float64{{3, 0}, {-3, 0}, {0, 4}}
	for c, ctr := range centers {
		for i := 0; i < 12; i++ {
			pts = append(pts, [2]float64{ctr[0] + rng.NormFloat64()*0.4, ctr[1] + rng.NormFloat64()*0.4})
			labels = append(labels, c)
		}
	}
	gram := linearGram(pts)
	mc := TrainMulticlass(gram, labels, DefaultConfig(), rng)
	correct := 0
	for i := range pts {
		kRow := make([]float64, len(pts))
		for j := range pts {
			kRow[j] = gram.At(i, j)
		}
		if mc.Predict(kRow) == labels[i] {
			correct++
		}
	}
	if correct < 33 {
		t.Errorf("3-class accuracy %d/36", correct)
	}
}

func TestCrossValidateSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	pts, yRaw := separablePoints(rng, 40)
	labels := make([]int, len(yRaw))
	for i, v := range yRaw {
		if v > 0 {
			labels[i] = 1
		}
	}
	gram := linearGram(pts)
	acc := CrossValidate(gram, labels, 5, DefaultConfig(), rng)
	if acc < 0.9 {
		t.Errorf("CV accuracy=%v, want >= 0.9 on separable data", acc)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 0, 1}, []int{1, 1, 1}); got != 2.0/3 {
		t.Errorf("accuracy=%v", got)
	}
	if got := Accuracy(nil, nil); got != 0 {
		t.Errorf("empty accuracy=%v", got)
	}
}
