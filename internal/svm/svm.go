// Package svm implements a kernel support vector machine trained by
// simplified SMO, with one-vs-rest multiclass and k-fold cross-validation —
// the downstream classifier used to evaluate graph kernels and
// homomorphism-vector embeddings (Section 4 "initial experiments" and
// Section 5's downstream-task methodology).
package svm

import (
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Config controls SMO training.
type Config struct {
	C         float64 // soft-margin penalty
	Tol       float64 // KKT tolerance
	MaxPasses int     // consecutive no-change passes before stopping
}

// DefaultConfig returns serviceable defaults for small Gram matrices.
func DefaultConfig() Config { return Config{C: 10, Tol: 1e-4, MaxPasses: 8} }

// Model is a trained binary SVM over a fixed training Gram matrix.
type Model struct {
	Alpha []float64
	B     float64
	Y     []int // ±1 labels of training points
}

// TrainGram fits a binary SVM on a precomputed Gram matrix with labels ±1
// using simplified SMO.
func TrainGram(gram *linalg.Matrix, y []int, cfg Config, rng *rand.Rand) *Model {
	n := len(y)
	m := &Model{Alpha: make([]float64, n), Y: y}
	passes := 0
	f := func(i int) float64 {
		var s float64
		for j := 0; j < n; j++ {
			if m.Alpha[j] != 0 {
				s += m.Alpha[j] * float64(y[j]) * gram.At(j, i)
			}
		}
		return s + m.B
	}
	for passes < cfg.MaxPasses {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - float64(y[i])
			if !((float64(y[i])*ei < -cfg.Tol && m.Alpha[i] < cfg.C) ||
				(float64(y[i])*ei > cfg.Tol && m.Alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - float64(y[j])
			ai, aj := m.Alpha[i], m.Alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cfg.C)
				hi = math.Min(cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*gram.At(i, j) - gram.At(i, i) - gram.At(j, j)
			if eta >= 0 {
				continue
			}
			newAj := aj - float64(y[j])*(ei-ej)/eta
			if newAj > hi {
				newAj = hi
			}
			if newAj < lo {
				newAj = lo
			}
			if math.Abs(newAj-aj) < 1e-7 {
				continue
			}
			newAi := ai + float64(y[i]*y[j])*(aj-newAj)
			m.Alpha[i], m.Alpha[j] = newAi, newAj
			b1 := m.B - ei - float64(y[i])*(newAi-ai)*gram.At(i, i) - float64(y[j])*(newAj-aj)*gram.At(i, j)
			b2 := m.B - ej - float64(y[i])*(newAi-ai)*gram.At(i, j) - float64(y[j])*(newAj-aj)*gram.At(j, j)
			switch {
			case newAi > 0 && newAi < cfg.C:
				m.B = b1
			case newAj > 0 && newAj < cfg.C:
				m.B = b2
			default:
				m.B = (b1 + b2) / 2
			}
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	return m
}

// Decision evaluates the decision function for a point given its kernel row
// against the training set (kRow[j] = K(x, x_j)).
func (m *Model) Decision(kRow []float64) float64 {
	var s float64
	for j, a := range m.Alpha {
		if a != 0 {
			s += a * float64(m.Y[j]) * kRow[j]
		}
	}
	return s + m.B
}

// Multiclass is a one-vs-rest ensemble.
type Multiclass struct {
	Classes []int
	Models  []*Model
}

// TrainMulticlass fits one-vs-rest binary models on a Gram matrix with
// arbitrary integer labels.
func TrainMulticlass(gram *linalg.Matrix, labels []int, cfg Config, rng *rand.Rand) *Multiclass {
	classSet := map[int]bool{}
	for _, l := range labels {
		classSet[l] = true
	}
	mc := &Multiclass{}
	for c := range classSet {
		mc.Classes = append(mc.Classes, c)
	}
	// Deterministic order.
	for i := 0; i < len(mc.Classes); i++ {
		for j := i + 1; j < len(mc.Classes); j++ {
			if mc.Classes[j] < mc.Classes[i] {
				mc.Classes[i], mc.Classes[j] = mc.Classes[j], mc.Classes[i]
			}
		}
	}
	for _, c := range mc.Classes {
		y := make([]int, len(labels))
		for i, l := range labels {
			if l == c {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		mc.Models = append(mc.Models, TrainGram(gram, y, cfg, rng))
	}
	return mc
}

// Predict returns the class with the largest decision value for a point
// given its kernel row against the training set.
func (mc *Multiclass) Predict(kRow []float64) int {
	best, bestVal := mc.Classes[0], math.Inf(-1)
	for i, m := range mc.Models {
		if v := m.Decision(kRow); v > bestVal {
			bestVal = v
			best = mc.Classes[i]
		}
	}
	return best
}

// CrossValidate runs k-fold cross-validation of a multiclass SVM on a full
// Gram matrix and returns mean accuracy. The Gram matrix must cover all
// points; folds index into it.
func CrossValidate(gram *linalg.Matrix, labels []int, folds int, cfg Config, rng *rand.Rand) float64 {
	n := len(labels)
	perm := rng.Perm(n)
	correct, total := 0, 0
	for f := 0; f < folds; f++ {
		var trainIdx, testIdx []int
		for i, p := range perm {
			if i%folds == f {
				testIdx = append(testIdx, p)
			} else {
				trainIdx = append(trainIdx, p)
			}
		}
		subGram := linalg.NewMatrix(len(trainIdx), len(trainIdx))
		subLabels := make([]int, len(trainIdx))
		for a, ia := range trainIdx {
			subLabels[a] = labels[ia]
			for b, ib := range trainIdx {
				subGram.Set(a, b, gram.At(ia, ib))
			}
		}
		mc := TrainMulticlass(subGram, subLabels, cfg, rng)
		for _, it := range testIdx {
			kRow := make([]float64, len(trainIdx))
			for a, ia := range trainIdx {
				kRow[a] = gram.At(it, ia)
			}
			if mc.Predict(kRow) == labels[it] {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total)
}

// Accuracy scores predictions against truth.
func Accuracy(pred, truth []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	c := 0
	for i := range pred {
		if pred[i] == truth[i] {
			c++
		}
	}
	return float64(c) / float64(len(pred))
}
