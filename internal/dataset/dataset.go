// Package dataset generates the synthetic benchmarks this reproduction uses
// in place of the proprietary graph-classification corpora the paper's
// "initial experiments" reference (see DESIGN.md, substitutions table):
// graph-classification tasks with known structural signal, SBM node
// classification, and a synthetic knowledge graph with functional relations
// for the TransE / RESCAL experiments.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// GraphClassification is a labelled set of graphs.
type GraphClassification struct {
	Name   string
	Graphs []*graph.Graph
	Labels []int
}

// CommunityCount generates graphs with either one or two planted
// communities at matched expected density; the label is the community
// count minus one. Distinguishing them requires structure beyond size and
// degree statistics.
func CommunityCount(perClass, size int, rng *rand.Rand) *GraphClassification {
	d := &GraphClassification{Name: "community-count"}
	for i := 0; i < perClass; i++ {
		g, _ := graph.SBM([]int{size}, 0.45, 0, rng)
		d.Graphs = append(d.Graphs, g)
		d.Labels = append(d.Labels, 0)
		h, _ := graph.SBM([]int{size / 2, size - size/2}, 0.8, 0.1, rng)
		d.Graphs = append(d.Graphs, h)
		d.Labels = append(d.Labels, 1)
	}
	return d
}

// TriangleDensity generates Erdős–Rényi graphs versus triangle-closed
// variants of matched edge count; the label marks the triangle-rich class.
func TriangleDensity(perClass, size int, rng *rand.Rand) *GraphClassification {
	d := &GraphClassification{Name: "triangle-density"}
	for i := 0; i < perClass; i++ {
		g := graph.Random(size, 0.25, rng)
		d.Graphs = append(d.Graphs, g)
		d.Labels = append(d.Labels, 0)
		h := triangleClosed(size, g.M(), rng)
		d.Graphs = append(d.Graphs, h)
		d.Labels = append(d.Labels, 1)
	}
	return d
}

// triangleClosed builds a graph of roughly m edges by repeatedly planting
// triangles on random vertex triples.
func triangleClosed(n, m int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for g.M() < m {
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		if a == b || b == c || a == c {
			continue
		}
		for _, p := range [][2]int{{a, b}, {b, c}, {a, c}} {
			if !g.HasEdge(p[0], p[1]) && g.M() < m {
				g.AddEdge(p[0], p[1])
			}
		}
	}
	return g
}

// CycleParity generates noisy even versus odd base cycles: a cycle of
// length size or size+1 with pendant vertices attached; the label is the
// base-cycle parity. Bipartiteness makes odd-cycle homomorphism counts a
// perfect feature.
func CycleParity(perClass, size int, rng *rand.Rand) *GraphClassification {
	if size%2 != 0 {
		size++
	}
	d := &GraphClassification{Name: "cycle-parity"}
	for i := 0; i < perClass; i++ {
		for parity := 0; parity < 2; parity++ {
			base := graph.Cycle(size + parity)
			g := base.Clone()
			// Attach a few pendants as noise.
			for p := 0; p < 3; p++ {
				v := g.AddVertex()
				g.AddEdge(v, rng.Intn(size))
			}
			d.Graphs = append(d.Graphs, g)
			d.Labels = append(d.Labels, parity)
		}
	}
	return d
}

// ERvsPA generates Erdős–Rényi graphs versus preferential-attachment graphs
// at matched vertex and (approximately) edge counts; degree-distribution
// shape is the discriminating signal.
func ERvsPA(perClass, size int, rng *rand.Rand) *GraphClassification {
	d := &GraphClassification{Name: "er-vs-pa"}
	for i := 0; i < perClass; i++ {
		pa := graph.PreferentialAttachment(size, 2, rng)
		p := 2 * float64(pa.M()) / float64(size*(size-1))
		er := graph.Random(size, p, rng)
		d.Graphs = append(d.Graphs, er)
		d.Labels = append(d.Labels, 0)
		d.Graphs = append(d.Graphs, pa)
		d.Labels = append(d.Labels, 1)
	}
	return d
}

// KnowledgeGraph is a synthetic world with typed entities and functional
// binary relations, standing in for the Paris/France/Santiago/Chile
// examples of the paper's introduction.
type KnowledgeGraph struct {
	EntityNames   []string
	RelationNames []string
	Triples       [][3]int // (head, relation, tail)
}

// Relation ids in the synthetic world.
const (
	RelCapitalOf   = 0
	RelInContinent = 1
	RelCurrencyOf  = 2
)

// World generates a synthetic knowledge graph with numCountries countries,
// each having a capital and a currency, distributed over two continents.
func World(numCountries int, rng *rand.Rand) *KnowledgeGraph {
	kg := &KnowledgeGraph{
		RelationNames: []string{"capital-of", "in-continent", "currency-of"},
	}
	continents := []int{}
	for c := 0; c < 2; c++ {
		continents = append(continents, kg.addEntity(fmt.Sprintf("continent%d", c)))
	}
	for i := 0; i < numCountries; i++ {
		country := kg.addEntity(fmt.Sprintf("country%d", i))
		capital := kg.addEntity(fmt.Sprintf("capital%d", i))
		currency := kg.addEntity(fmt.Sprintf("currency%d", i))
		kg.Triples = append(kg.Triples,
			[3]int{capital, RelCapitalOf, country},
			[3]int{country, RelInContinent, continents[rng.Intn(2)]},
			[3]int{currency, RelCurrencyOf, country},
		)
	}
	return kg
}

func (kg *KnowledgeGraph) addEntity(name string) int {
	kg.EntityNames = append(kg.EntityNames, name)
	return len(kg.EntityNames) - 1
}

// NumEntities returns the entity count.
func (kg *KnowledgeGraph) NumEntities() int { return len(kg.EntityNames) }

// NumRelations returns the relation count.
func (kg *KnowledgeGraph) NumRelations() int { return len(kg.RelationNames) }

// Split partitions triples into train and test sets.
func (kg *KnowledgeGraph) Split(testFraction float64, rng *rand.Rand) (train, test [][3]int) {
	perm := rng.Perm(len(kg.Triples))
	nTest := int(float64(len(kg.Triples)) * testFraction)
	for i, p := range perm {
		if i < nTest {
			test = append(test, kg.Triples[p])
		} else {
			train = append(train, kg.Triples[p])
		}
	}
	return train, test
}

// AsGraph encodes the knowledge graph as a directed edge-labelled graph for
// WL and GNN experiments.
func (kg *KnowledgeGraph) AsGraph() *graph.Graph {
	g := graph.NewDirected(kg.NumEntities())
	for _, t := range kg.Triples {
		g.AddLabeledEdge(t[0], t[2], t[1]+1)
	}
	return g
}

// NodeClassification is a single graph with vertex labels to predict.
type NodeClassification struct {
	Graph  *graph.Graph
	Labels []int
}

// SBMNodes generates an SBM node-classification task with the given block
// sizes.
func SBMNodes(sizes []int, pin, pout float64, rng *rand.Rand) *NodeClassification {
	g, labels := graph.SBM(sizes, pin, pout, rng)
	return &NodeClassification{Graph: g, Labels: labels}
}
