package dataset

import (
	"math/rand"
	"testing"
)

func TestCommunityCount(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	d := CommunityCount(5, 16, rng)
	if len(d.Graphs) != 10 || len(d.Labels) != 10 {
		t.Fatalf("sizes %d/%d", len(d.Graphs), len(d.Labels))
	}
	for _, g := range d.Graphs {
		if g.N() != 16 {
			t.Errorf("graph size %d, want 16", g.N())
		}
	}
}

func TestTriangleDensityHasSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	d := TriangleDensity(10, 14, rng)
	// Triangle-rich class should have more triangles on average.
	var tri [2]float64
	var cnt [2]int
	for i, g := range d.Graphs {
		tri[d.Labels[i]] += float64(g.Triangles())
		cnt[d.Labels[i]]++
	}
	if tri[1]/float64(cnt[1]) <= tri[0]/float64(cnt[0]) {
		t.Errorf("triangle-rich class mean %v should exceed ER %v",
			tri[1]/float64(cnt[1]), tri[0]/float64(cnt[0]))
	}
}

func TestCycleParityBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	d := CycleParity(4, 8, rng)
	for i, g := range d.Graphs {
		hasOdd := g.Girth() > 0 && g.Girth()%2 == 1
		wantOdd := d.Labels[i] == 1
		if hasOdd != wantOdd {
			t.Errorf("graph %d: odd-girth=%v label=%d", i, hasOdd, d.Labels[i])
		}
	}
}

func TestERvsPA(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	d := ERvsPA(6, 30, rng)
	if len(d.Graphs) != 12 {
		t.Fatalf("size %d", len(d.Graphs))
	}
	// PA graphs should have higher maximum degree on average.
	var maxDeg [2]float64
	var cnt [2]int
	for i, g := range d.Graphs {
		md := 0
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) > md {
				md = g.Degree(v)
			}
		}
		maxDeg[d.Labels[i]] += float64(md)
		cnt[d.Labels[i]]++
	}
	if maxDeg[1]/float64(cnt[1]) <= maxDeg[0]/float64(cnt[0]) {
		t.Error("PA class should have heavier-tailed degrees")
	}
}

func TestWorldKG(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	kg := World(6, rng)
	if kg.NumEntities() != 2+6*3 {
		t.Errorf("entities=%d, want 20", kg.NumEntities())
	}
	if kg.NumRelations() != 3 {
		t.Errorf("relations=%d", kg.NumRelations())
	}
	if len(kg.Triples) != 18 {
		t.Errorf("triples=%d, want 18", len(kg.Triples))
	}
	train, test := kg.Split(0.2, rng)
	if len(train)+len(test) != 18 || len(test) == 0 {
		t.Errorf("split %d/%d", len(train), len(test))
	}
	g := kg.AsGraph()
	if !g.Directed() || g.M() != 18 {
		t.Errorf("KG graph: directed=%v m=%d", g.Directed(), g.M())
	}
}

func TestSBMNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	nc := SBMNodes([]int{10, 10, 10}, 0.7, 0.05, rng)
	if nc.Graph.N() != 30 || len(nc.Labels) != 30 {
		t.Fatalf("node task sizes wrong")
	}
	seen := map[int]bool{}
	for _, l := range nc.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Errorf("want 3 classes, got %d", len(seen))
	}
}
