// Package serve is the in-process serving layer under cmd/x2vecd: batched,
// cached, worker-bounded access to the repository's corpus engines.
//
// The ROADMAP's north star is a system that serves heavy traffic; PRs 2–4
// built engines that are fast *per corpus* (one WL refinement pass, one
// compiled pattern class, one Gram fill for n graphs), but a daemon sees
// one graph per request. This package turns concurrent unit requests back
// into corpora: a micro-batcher per pipeline coalesces requests under a
// size/latency budget into single engine passes (batcher.go), an LRU cache
// keyed by the canonical graph hash wl.Hash answers repeats — including
// renumbered copies — without touching the engines (cache.go), and every
// pipeline's parallelism is capped by an explicit worker count rather than
// the process-global GOMAXPROCS the CLI used to mutate.
package serve

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/wl"
)

// Options configures a Server. The zero value means: 5 WL rounds, the
// standard hom pattern class, batches of up to 32 requests collected for at
// most 2ms, GOMAXPROCS engine workers, and 1024-entry caches per pipeline.
type Options struct {
	Rounds    int            // WL refinement depth for /wl and /kernel features (0 = 5)
	Class     []*graph.Graph // hom pattern class for /homvec (nil = hom.StandardClass)
	MaxBatch  int            // requests coalesced into one engine pass (0 = 32, 1 disables batching)
	MaxDelay  time.Duration  // latency budget while filling a batch (0 = 2ms)
	Workers   int            // per-pipeline engine worker cap (0 = GOMAXPROCS)
	CacheSize int            // LRU entries per pipeline (0 = 1024, negative disables)
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		// Negative depths (the CLI's -rounds -1 "refine to stability"
		// convention) would panic the refinement engine on every batch;
		// a fixed-depth server clamps them to the default instead.
		o.Rounds = 5
	}
	if o.Class == nil {
		o.Class = hom.StandardClass()
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 32
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	return o
}

// WLResult is the served output of the WL pipeline: the stable colours of
// one refinement run at the server's round budget. Colour ids are
// process-globally canonical (wl.RefineCorpus), so results of different
// requests are directly comparable.
type WLResult struct {
	Rounds  int   // rounds run
	Colors  []int // final-round colour per vertex
	Classes int   // number of distinct final colours
}

// Server provides batched, cached access to the WL, homomorphism-vector,
// and kernel-feature pipelines. All methods are safe for concurrent use;
// that is the point.
type Server struct {
	opts  Options
	cc    *hom.CompiledClass
	wlK   kernel.WLSubtree
	stats *Stats

	wlBatch   *coalescer[*graph.Graph, [][]int]
	homBatch  *coalescer[*graph.Graph, []float64]
	featBatch *coalescer[*graph.Graph, linalg.SparseVector]

	wlCache   *lruCache[[][]int]
	homCache  *lruCache[[]float64]
	featCache *lruCache[linalg.SparseVector]
}

// New builds a Server: the pattern class compiles once, and one dispatcher
// per pipeline starts collecting.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:      opts,
		cc:        hom.Compile(opts.Class),
		wlK:       kernel.WLSubtree{Rounds: opts.Rounds},
		stats:     newStats(),
		wlCache:   newLRU[[][]int](opts.CacheSize),
		homCache:  newLRU[[]float64](opts.CacheSize),
		featCache: newLRU[linalg.SparseVector](opts.CacheSize),
	}
	workers := opts.Workers
	s.wlBatch = newCoalescer("wl", opts.MaxBatch, opts.MaxDelay, s.stats, func(gs []*graph.Graph) [][][]int {
		return wl.RefineCorpusWorkers(gs, opts.Rounds, workers)
	})
	s.homBatch = newCoalescer("homvec", opts.MaxBatch, opts.MaxDelay, s.stats, func(gs []*graph.Graph) [][]float64 {
		return hom.CorpusLogScaledVectorsWorkers(s.cc, gs, workers)
	})
	s.featBatch = newCoalescer("kernel", opts.MaxBatch, opts.MaxDelay, s.stats, func(gs []*graph.Graph) []linalg.SparseVector {
		return s.wlK.CorpusFeatures(gs, workers)
	})
	return s
}

// Stats returns a snapshot of the serving metrics.
func (s *Server) Stats() Snapshot { return s.stats.Snapshot() }

// ObserveEmbed records one /embed lookup in the "embed" pipeline. Model
// lookups run in the daemon against the opened embedding table — outside
// the batching pipelines — but they belong on the same /stats surface as
// every other request the process serves.
func (s *Server) ObserveEmbed(start time.Time) { s.stats.observe("embed", start) }

// Close drains in-flight requests and stops all pipeline dispatchers.
// Subsequent requests return ErrClosed.
func (s *Server) Close() {
	s.wlBatch.close()
	s.homBatch.close()
	s.featBatch.close()
}

// WL runs the server's round budget of 1-WL on g. Cached under an
// order-sensitive structural hash: per-vertex colour arrays depend on the
// vertex numbering, so only byte-identical graphs may share an entry
// (unlike the isomorphism-invariant caches of the other pipelines). The
// result's Colors slice aliases the cache entry; callers must not mutate
// it.
func (s *Server) WL(g *graph.Graph) (*WLResult, error) {
	start := time.Now()
	defer s.stats.observe("wl", start)
	key := exactHash(g)
	rounds, ok := s.wlCache.get(key)
	if ok {
		s.stats.hit("wl")
	} else {
		s.stats.miss("wl")
		var err error
		rounds, err = s.wlBatch.do(g)
		if err != nil {
			return nil, err
		}
		s.wlCache.put(key, rounds)
	}
	final := rounds[len(rounds)-1]
	distinct := map[int]struct{}{}
	for _, c := range final {
		distinct[c] = struct{}{}
	}
	return &WLResult{Rounds: len(rounds) - 1, Colors: final, Classes: len(distinct)}, nil
}

// HomVec returns the log-scaled homomorphism vector of g over the server's
// pattern class, bit-identical to the offline hom.CorpusLogScaledVectors /
// `x2vec homvec` pipeline. Cached under wl.Hash — hom vectors are graph
// invariants, so renumbered repeats hit. The returned slice aliases the
// cache entry; callers must not mutate it.
func (s *Server) HomVec(g *graph.Graph) ([]float64, error) {
	start := time.Now()
	defer s.stats.observe("homvec", start)
	key := wl.Hash(g)
	if v, ok := s.homCache.get(key); ok {
		s.stats.hit("homvec")
		return v, nil
	}
	s.stats.miss("homvec")
	v, err := s.homBatch.do(g)
	if err != nil {
		return nil, err
	}
	s.homCache.put(key, v)
	return v, nil
}

// WLFeatures returns the WL subtree feature vector of g at the server's
// round budget (the explicit map of kernel.WLSubtree), cached under
// wl.Hash. Callers must not mutate the returned vector.
func (s *Server) WLFeatures(g *graph.Graph) (linalg.SparseVector, error) {
	start := time.Now()
	defer s.stats.observe("kernel", start)
	key := wl.Hash(g)
	if v, ok := s.featCache.get(key); ok {
		s.stats.hit("kernel")
		return v, nil
	}
	s.stats.miss("kernel")
	v, err := s.featBatch.do(g)
	if err != nil {
		return nil, err
	}
	s.featCache.put(key, v)
	return v, nil
}

// Kernel evaluates the named kernel between two request graphs through the
// cached feature pipelines: "wl" is the WL subtree kernel at the server's
// round budget, "hom" the log-scaled homomorphism-vector kernel — both
// exactly the values the offline kernel.Gram pipeline produces. The two
// feature requests are issued concurrently, so an idle server coalesces
// them into ONE engine batch and a kernel request pays one batch-collection
// delay, not two.
func (s *Server) Kernel(name string, a, b *graph.Graph) (float64, error) {
	switch name {
	case "", "wl":
		fa, fb, err := concurrently(a, b, s.WLFeatures)
		if err != nil {
			return 0, err
		}
		return fa.Dot(fb), nil
	case "hom":
		va, vb, err := concurrently(a, b, s.HomVec)
		if err != nil {
			return 0, err
		}
		return linalg.Dot(va, vb), nil
	}
	return 0, fmt.Errorf("%w: %q (want wl or hom)", ErrUnknownKernel, name)
}

// concurrently runs f on both graphs at once — pair requests land in the
// same coalescer window instead of serialising two batch delays.
func concurrently[O any](a, b *graph.Graph, f func(*graph.Graph) (O, error)) (O, O, error) {
	type res struct {
		v   O
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := f(b)
		ch <- res{v, err}
	}()
	va, errA := f(a)
	rb := <-ch
	if errA != nil {
		return va, rb.v, errA
	}
	return va, rb.v, rb.err
}

// ErrUnknownKernel is returned by Kernel for unsupported kernel names — the
// daemon maps it to a 400 rather than a 500.
var ErrUnknownKernel = errors.New("serve: unknown kernel")

// exactHash is the order-sensitive structural fingerprint for caches whose
// values depend on vertex numbering: FNV-1a over the exact vertex-label and
// edge records.
func exactHash(g *graph.Graph) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mix(uint64(g.N()))
	if g.Directed() {
		mix(1)
	}
	for v := 0; v < g.N(); v++ {
		mix(uint64(int64(g.VertexLabel(v))))
	}
	for _, e := range g.Edges() {
		mix(uint64(e.U))
		mix(uint64(e.V))
		mix(math.Float64bits(e.Weight + 0)) // -0 folds into +0
		mix(uint64(int64(e.Label)))
	}
	return h
}
