package serve

// The request-coalescing micro-batcher. Every corpus engine in this
// repository (wl.RefineCorpus, hom.CorpusVectors, the kernel corpus feature
// extractors) amortises per-batch setup — compiled pattern programs, shared
// colour-store passes, worker pools — across many graphs, but a network
// daemon receives graphs one at a time. The coalescer bridges the two
// shapes: concurrent single-graph requests queue onto one channel, a
// dispatcher collects them until either the batch size cap or the latency
// budget is hit, the whole batch runs through ONE engine pass, and the
// results scatter back to the blocked callers. Batches execute on their own
// goroutines, so a slow batch never blocks collection of the next one.

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"
)

// ErrClosed is returned by requests issued to (or stranded in) a closed
// server.
var ErrClosed = errors.New("serve: server closed")

type result[O any] struct {
	val O
	err error
}

type request[I, O any] struct {
	in  I
	out chan result[O]
}

// coalescer batches requests of type I into calls of run, which must return
// exactly one O per input, in order.
type coalescer[I, O any] struct {
	name     string
	maxBatch int
	maxDelay time.Duration
	run      func([]I) []O
	stats    *Stats

	ch   chan request[I, O]
	quit chan struct{}
	// slots bounds in-flight engine batches: without it, sustained overload
	// would stack an unbounded number of concurrent engine passes and the
	// per-pipeline Workers cap would bound each pass but not the pipeline.
	// Dispatch blocks on a slot before launching a batch, which turns
	// overload into backpressure on the request channel instead.
	slots chan struct{}

	mu      sync.Mutex
	closed  bool
	pending sync.WaitGroup
	batches sync.WaitGroup
}

// maxInflightBatches is the per-pipeline cap on concurrently running engine
// passes: one running plus one being scattered keeps the pipeline busy
// without unbounded stacking, so a pipeline's goroutine count stays within
// 2x its configured worker cap.
const maxInflightBatches = 2

func newCoalescer[I, O any](name string, maxBatch int, maxDelay time.Duration, stats *Stats, run func([]I) []O) *coalescer[I, O] {
	c := &coalescer[I, O]{
		name:     name,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		run:      run,
		stats:    stats,
		ch:       make(chan request[I, O]),
		quit:     make(chan struct{}),
		slots:    make(chan struct{}, maxInflightBatches),
	}
	go c.dispatch()
	return c
}

// do submits one input and blocks until its output is ready (or the server
// closes before the request could be accepted).
func (c *coalescer[I, O]) do(in I) (O, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		var zero O
		return zero, ErrClosed
	}
	// Registered before unlocking: close() cannot pass pending.Wait() until
	// this request has been fully served, so the dispatcher is guaranteed
	// alive for the send below.
	c.pending.Add(1)
	c.mu.Unlock()
	defer c.pending.Done()

	r := request[I, O]{in: in, out: make(chan result[O], 1)}
	c.ch <- r
	res := <-r.out
	return res.val, res.err
}

// dispatch is the collection loop: one blocking receive opens a batch, then
// the size cap races the latency budget.
func (c *coalescer[I, O]) dispatch() {
	for {
		var first request[I, O]
		select {
		case <-c.quit:
			return
		case first = <-c.ch:
		}
		batch := []request[I, O]{first}
		if c.maxBatch > 1 {
			timer := time.NewTimer(c.maxDelay)
		collect:
			for len(batch) < c.maxBatch {
				select {
				case r := <-c.ch:
					batch = append(batch, r)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		}
		c.stats.recordBatch(c.name, len(batch))
		c.slots <- struct{}{} // blocks when maxInflightBatches are running
		c.batches.Add(1)
		go func(batch []request[I, O]) {
			defer func() {
				<-c.slots
				c.batches.Done()
			}()
			c.scatter(batch)
		}(batch)
	}
}

// scatter runs one engine pass and distributes the results. A panicking
// engine (e.g. a pathological request graph) fails that batch's requests
// with an error instead of killing the daemon; so does an engine that
// breaches the one-output-per-input contract — a serving daemon logs and
// sheds the broken batch rather than dying under it.
func (c *coalescer[I, O]) scatter(batch []request[I, O]) {
	defer func() {
		if p := recover(); p != nil {
			c.failBatch(batch, fmt.Errorf("serve: %s batch failed: %v", c.name, p))
		}
	}()
	ins := make([]I, len(batch))
	for i, r := range batch {
		ins[i] = r.in
	}
	outs := c.run(ins)
	if len(outs) != len(batch) {
		c.failBatch(batch, fmt.Errorf("serve: %s engine returned %d results for %d inputs", c.name, len(outs), len(batch)))
		return
	}
	for i, r := range batch {
		r.out <- result[O]{val: outs[i]}
	}
}

// failBatch answers every request of a broken batch with err, logs once,
// and bumps the pipeline's engine-error counter.
func (c *coalescer[I, O]) failBatch(batch []request[I, O], err error) {
	log.Printf("%v (failing %d request(s))", err, len(batch))
	c.stats.recordEngineError(c.name)
	for _, r := range batch {
		r.out <- result[O]{err: err}
	}
}

// close drains in-flight requests, stops the dispatcher, and waits for
// running batches — after it returns, no goroutine of this coalescer is
// live and every caller has an answer.
func (c *coalescer[I, O]) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.pending.Wait() // every accepted request has been answered
	close(c.quit)    // dispatcher's channel is now permanently empty
	c.batches.Wait()
}
