package serve

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/ann"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/model"
)

// neighborsCorpus: structurally distinct labelled graphs, so each one's
// sketch is its own nearest neighbour.
func neighborsCorpus(n int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	gs := make([]*graph.Graph, n)
	for i := range gs {
		g := graph.Random(8+rng.Intn(8), 0.3, rng)
		for v := 0; v < g.N(); v++ {
			g.SetVertexLabel(v, rng.Intn(3))
		}
		gs[i] = g
	}
	return gs
}

// writeIndex sketches gs exactly like `x2vec index` and saves the LSH index.
func writeIndex(t *testing.T, dir, name string, gs []*graph.Graph, sketchSeed uint64) string {
	t.Helper()
	sk := kernel.CountSketchWL{Rounds: 2, Width: 64, Seed: sketchSeed}
	vecs := sk.CorpusSketchMatrix(gs, 2)
	ix, err := ann.Build(vecs, ann.Config{
		Tables: 8, Bits: 10, Seed: 7,
		SketchRounds: 2, SketchWidth: 64, SketchSeed: sketchSeed,
	}, 2)
	if err != nil {
		t.Fatalf("ann.Build: %v", err)
	}
	path := filepath.Join(dir, name)
	if err := model.SaveANNIndex(path, ix); err != nil {
		t.Fatalf("SaveANNIndex: %v", err)
	}
	return path
}

func TestNeighborsSelfHitAndCache(t *testing.T) {
	dir := t.TempDir()
	gs := neighborsCorpus(50, 3)
	srv := New(Options{})
	defer srv.Close()
	svc, err := srv.NewEmbedService(writeGenModel(t, dir, 0), writeIndex(t, dir, "ix.x2vm", gs, 11), true, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for i, g := range gs[:10] {
		res, err := svc.Neighbors(g, 5, 0)
		if err != nil {
			t.Fatalf("Neighbors(%d): %v", i, err)
		}
		if len(res.Neighbors) == 0 {
			t.Fatalf("Neighbors(%d): empty result", i)
		}
		if res.Neighbors[0].ID != i {
			t.Fatalf("Neighbors(%d): top hit %d (score %v), want self", i, res.Neighbors[0].ID, res.Neighbors[0].Score)
		}
		if s := res.Neighbors[0].Score; s < 0.999 {
			t.Fatalf("Neighbors(%d): self-score %v, want ~1", i, s)
		}
		if res.IndexRows != len(gs) {
			t.Fatalf("IndexRows = %d, want %d", res.IndexRows, len(gs))
		}
	}

	// A renumbered repeat must hit the wl.Hash cache.
	base := srv.Stats().Pipelines["neighbors"]
	perm := rand.New(rand.NewSource(9)).Perm(gs[0].N())
	renum := graph.New(gs[0].N())
	for v := 0; v < gs[0].N(); v++ {
		renum.SetVertexLabel(perm[v], gs[0].VertexLabel(v))
	}
	for _, e := range gs[0].Edges() {
		renum.AddEdgeFull(perm[e.U], perm[e.V], e.Weight, e.Label)
	}
	if _, err := svc.Neighbors(renum, 5, 0); err != nil {
		t.Fatal(err)
	}
	after := srv.Stats().Pipelines["neighbors"]
	if after.CacheHits != base.CacheHits+1 {
		t.Fatalf("renumbered repeat missed the cache: hits %d -> %d", base.CacheHits, after.CacheHits)
	}

	// The first query was recall-sampled; /stats must carry the estimate.
	if after.RecallSamples == 0 {
		t.Fatal("no recall samples recorded")
	}
	if after.MeanRecall <= 0 || after.MeanRecall > 1 {
		t.Fatalf("mean recall %v outside (0,1]", after.MeanRecall)
	}

	// Snapshot carries the index view.
	snap := svc.Snapshot()
	if snap.Index == nil || snap.Index.Rows != len(gs) || snap.Index.SketchWidth != 64 {
		t.Fatalf("snapshot index view: %+v", snap.Index)
	}
}

func TestNeighborsWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{})
	defer srv.Close()
	svc, err := srv.NewEmbedService(writeGenModel(t, dir, 0), "", true, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Neighbors(graph.Cycle(4), 3, 0); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("want ErrNoIndex, got %v", err)
	}
	if snap := svc.Snapshot(); snap.Index != nil {
		t.Fatalf("index snapshot without index: %+v", snap.Index)
	}
}

// TestNeighborsReloadFlipsIndex: a reload swaps model and index atomically,
// results switch to the new index's id space, and cached answers from the
// old generation cannot resurface (version is part of the key).
func TestNeighborsReloadFlipsIndex(t *testing.T) {
	dir := t.TempDir()
	gsA := neighborsCorpus(30, 5)
	gsB := neighborsCorpus(30, 6) // disjoint corpus
	srv := New(Options{})
	defer srv.Close()
	svc, err := srv.NewEmbedService(writeGenModel(t, dir, 0), writeIndex(t, dir, "a.x2vm", gsA, 21), true, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	q := gsA[7]
	res, err := svc.Neighbors(q, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Neighbors[0].ID != 7 {
		t.Fatalf("pre-reload top hit %d, want 7", res.Neighbors[0].ID)
	}
	v1 := res.ModelVersion

	// Index B contains q at position 12.
	gsB[12] = q
	if _, err := svc.Reload(writeGenModel(t, dir, 1), writeIndex(t, dir, "b.x2vm", gsB, 21)); err != nil {
		t.Fatal(err)
	}
	res, err = svc.Neighbors(q, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelVersion != v1+1 {
		t.Fatalf("post-reload version %d, want %d", res.ModelVersion, v1+1)
	}
	if res.Neighbors[0].ID != 12 {
		t.Fatalf("post-reload top hit %d, want 12 (stale pre-reload answer?)", res.Neighbors[0].ID)
	}

	// A reload to a file without sketch metadata must fail closed and keep
	// the current generation serving.
	bare, err := ann.Build(kernel.CountSketchWL{Rounds: 2, Width: 64, Seed: 1}.CorpusSketchMatrix(gsA, 1),
		ann.Config{Tables: 2, Bits: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	barePath := filepath.Join(dir, "bare.x2vm")
	if err := model.SaveANNIndex(barePath, bare); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Reload(writeGenModel(t, dir, 2), barePath); err == nil {
		t.Fatal("reload accepted an index without sketch metadata")
	}
	if res, err := svc.Neighbors(q, 3, 0); err != nil || res.Neighbors[0].ID != 12 {
		t.Fatalf("failed reload disturbed serving: %v %+v", err, res)
	}
}
