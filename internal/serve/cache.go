package serve

// The LRU feature cache in front of each batched pipeline. Keys are 64-bit
// canonical graph hashes: wl.Hash for isomorphism-invariant outputs (hom
// vectors, kernel feature vectors), so a renumbered copy of a seen graph is
// still a hit, and an order-sensitive structural hash for the /wl pipeline,
// whose per-vertex colour arrays do depend on the numbering.

import (
	"container/list"
	"sync"
)

type lruEntry[V any] struct {
	key uint64
	val V
}

// lruCache is a fixed-capacity least-recently-used map. capacity <= 0
// disables caching (every get misses, put is a no-op).
type lruCache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[uint64]*list.Element
}

func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[uint64]*list.Element),
	}
}

func (c *lruCache[V]) get(key uint64) (V, bool) {
	var zero V
	if c.capacity <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(lruEntry[V]).val, true
}

func (c *lruCache[V]) put(key uint64, val V) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = lruEntry[V]{key: key, val: val}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(lruEntry[V]).key)
	}
}

func (c *lruCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
