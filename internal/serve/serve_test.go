package serve

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/kernel"
	"repro/internal/wl"
)

func testCorpus(n int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	gs := make([]*graph.Graph, n)
	for i := range gs {
		g := graph.Random(6+rng.Intn(5), 0.45, rng)
		if i%3 == 0 {
			for v := 0; v < g.N(); v++ {
				g.SetVertexLabel(v, rng.Intn(2))
			}
		}
		gs[i] = g
	}
	return gs
}

func permuted(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	perm := rng.Perm(g.N())
	h := graph.New(g.N())
	for v := 0; v < g.N(); v++ {
		h.SetVertexLabel(perm[v], g.VertexLabel(v))
	}
	for _, e := range g.Edges() {
		h.AddEdgeFull(perm[e.U], perm[e.V], e.Weight, e.Label)
	}
	return h
}

// TestHomVecCoalescesAndMatchesOffline is the core acceptance property:
// concurrent single-graph requests must (a) return vectors bit-identical to
// the offline corpus pipeline and (b) be coalesced into shared engine
// passes — strictly more than one request per batch under concurrent load.
func TestHomVecCoalescesAndMatchesOffline(t *testing.T) {
	gs := testCorpus(24, 41)
	want := hom.CorpusLogScaledVectors(hom.Compile(hom.StandardClass()), gs)

	s := New(Options{MaxBatch: 64, MaxDelay: 80 * time.Millisecond, Workers: 2})
	defer s.Close()

	var wg sync.WaitGroup
	start := make(chan struct{})
	got := make([][]float64, len(gs))
	errs := make([]error, len(gs))
	for i := range gs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			got[i], errs[i] = s.HomVec(gs[i])
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range gs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d coords, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d coord %d: served %v, offline %v (must be bit-identical)", i, j, got[i][j], want[i][j])
			}
		}
	}

	snap := s.Stats().Pipelines["homvec"]
	if snap.Batches >= int64(len(gs)) {
		t.Errorf("no coalescing: %d batches for %d concurrent requests", snap.Batches, len(gs))
	}
	if snap.BatchOccupancy <= 1 {
		t.Errorf("batch occupancy %v, want > 1 request per engine pass", snap.BatchOccupancy)
	}
	if snap.BatchedRequests != int64(len(gs)) {
		t.Errorf("%d batched requests, want %d", snap.BatchedRequests, len(gs))
	}
}

// TestCacheHitsIncludingRenumberedRepeats: repeats must be answered from
// the LRU without an engine pass, and — because the key is the canonical
// wl.Hash — a renumbered copy of a seen graph is also a hit, with the
// identical vector.
func TestCacheHitsIncludingRenumberedRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Random(9, 0.4, rng)
	s := New(Options{MaxBatch: 1})
	defer s.Close()

	first, err := s.HomVec(g)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.HomVec(g)
	if err != nil {
		t.Fatal(err)
	}
	renumbered, err := s.HomVec(permuted(g, rng))
	if err != nil {
		t.Fatal(err)
	}
	for j := range first {
		if again[j] != first[j] || renumbered[j] != first[j] {
			t.Fatalf("coord %d: repeat %v / renumbered %v, want %v", j, again[j], renumbered[j], first[j])
		}
	}
	snap := s.Stats().Pipelines["homvec"]
	if snap.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2 (identical repeat + renumbered repeat)", snap.CacheHits)
	}
	if snap.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1", snap.CacheMisses)
	}
	if snap.CacheHitRate < 0.6 || snap.CacheHitRate > 0.7 {
		t.Errorf("hit rate = %v, want 2/3", snap.CacheHitRate)
	}
}

// TestWLPipeline: served colourings must equal the offline batched
// refinement (ids are process-globally canonical), and the WL cache must
// NOT treat renumbered copies as repeats — per-vertex colours depend on the
// numbering.
func TestWLPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Random(8, 0.5, rng)
	p := permuted(g, rng)
	s := New(Options{MaxBatch: 1, Rounds: 4})
	defer s.Close()

	res, err := s.WL(g)
	if err != nil {
		t.Fatal(err)
	}
	offline := wl.RefineCorpus([]*graph.Graph{g}, 4)[0]
	want := offline[len(offline)-1]
	if res.Rounds != 4 || len(res.Colors) != g.N() {
		t.Fatalf("rounds=%d len=%d", res.Rounds, len(res.Colors))
	}
	for v, c := range want {
		if res.Colors[v] != c {
			t.Fatalf("vertex %d: served colour %d, offline %d", v, res.Colors[v], c)
		}
	}

	if _, err := s.WL(p); err != nil {
		t.Fatal(err)
	}
	snap := s.Stats().Pipelines["wl"]
	if snap.CacheHits != 0 {
		t.Errorf("renumbered graph hit the order-sensitive WL cache (%d hits)", snap.CacheHits)
	}
	res2, err := s.WL(g)
	if err != nil {
		t.Fatal(err)
	}
	if snap := s.Stats().Pipelines["wl"]; snap.CacheHits != 1 {
		t.Errorf("identical repeat should hit (hits=%d)", snap.CacheHits)
	}
	for v := range want {
		if res2.Colors[v] != want[v] {
			t.Fatalf("cached colours differ at vertex %d", v)
		}
	}
}

// TestKernelMatchesOffline: served kernel values must equal the offline
// Kernel.Compute results for both supported kernels.
func TestKernelMatchesOffline(t *testing.T) {
	gs := testCorpus(6, 43)
	s := New(Options{MaxBatch: 4, MaxDelay: time.Millisecond, Rounds: 5})
	defer s.Close()
	wlK := kernel.WLSubtree{Rounds: 5}
	homK := kernel.HomVector{Log: true}
	for i := 0; i < len(gs); i++ {
		for j := i; j < len(gs); j++ {
			got, err := s.Kernel("wl", gs[i], gs[j])
			if err != nil {
				t.Fatal(err)
			}
			if want := wlK.Compute(gs[i], gs[j]); got != want {
				t.Fatalf("wl kernel (%d,%d): served %v, offline %v", i, j, got, want)
			}
			got, err = s.Kernel("hom", gs[i], gs[j])
			if err != nil {
				t.Fatal(err)
			}
			if want := homK.Compute(gs[i], gs[j]); got != want {
				t.Fatalf("hom kernel (%d,%d): served %v, offline %v", i, j, got, want)
			}
		}
	}
	if _, err := s.Kernel("nope", gs[0], gs[1]); err == nil {
		t.Error("unknown kernel should error")
	}
}

// TestConcurrentMixedLoad is the -race end-to-end: many goroutines firing
// mixed requests with repeats across every pipeline. Asserts correctness
// per response plus the two load-level properties: coalescing (>1 request
// per engine pass on the hot pipeline) and cache hits on repeats.
func TestConcurrentMixedLoad(t *testing.T) {
	distinct := testCorpus(12, 44)
	cc := hom.Compile(hom.StandardClass())
	wantHom := make(map[*graph.Graph][]float64)
	for _, g := range distinct {
		wantHom[g] = cc.LogScaledVector(g)
	}

	s := New(Options{MaxBatch: 16, MaxDelay: 20 * time.Millisecond, Workers: 2, Rounds: 3})
	defer s.Close()

	const loaders = 8
	const perLoader = 30
	var wg sync.WaitGroup
	start := make(chan struct{})
	errCh := make(chan error, loaders)
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			<-start
			for i := 0; i < perLoader; i++ {
				g := distinct[rng.Intn(len(distinct))]
				switch i % 3 {
				case 0:
					v, err := s.HomVec(g)
					if err != nil {
						errCh <- err
						return
					}
					for j, x := range wantHom[g] {
						if v[j] != x {
							errCh <- errors.New("hom vector mismatch under concurrent load")
							return
						}
					}
				case 1:
					res, err := s.WL(g)
					if err != nil {
						errCh <- err
						return
					}
					if len(res.Colors) != g.N() {
						errCh <- errors.New("wl result length mismatch")
						return
					}
				case 2:
					h := distinct[rng.Intn(len(distinct))]
					v, err := s.Kernel("wl", g, h)
					if err != nil {
						errCh <- err
						return
					}
					if v < 0 {
						errCh <- errors.New("negative WL kernel value")
						return
					}
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	snap := s.Stats()
	var totalHits int64
	coalesced := false
	for name, ps := range snap.Pipelines {
		totalHits += ps.CacheHits
		if ps.BatchOccupancy > 1 {
			coalesced = true
		}
		t.Logf("%s: %+v", name, ps)
	}
	if totalHits == 0 {
		t.Error("no cache hits across any pipeline despite repeated graphs")
	}
	if !coalesced {
		t.Error("no pipeline coalesced more than one request per engine pass")
	}
	if p99 := snap.Pipelines["homvec"].P99Micros; p99 == 0 {
		t.Error("latency histogram recorded nothing")
	}
}

// TestClosedServer: Close drains and subsequent requests fail fast with
// ErrClosed; Close is idempotent.
func TestClosedServer(t *testing.T) {
	s := New(Options{MaxBatch: 4})
	g := graph.Cycle(5)
	if _, err := s.HomVec(g); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if _, err := s.HomVec(graph.Path(4)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if _, err := s.WL(graph.Path(4)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	// Cached entries are still served without an engine.
	if v, err := s.HomVec(g); err != nil || len(v) == 0 {
		t.Errorf("cached entry after close: %v, %v", v, err)
	}
}

// TestBatchPanicRecovery: a panicking engine pass must fail its batch's
// requests with an error, not kill the process or strand the callers.
func TestBatchPanicRecovery(t *testing.T) {
	st := newStats()
	c := newCoalescer[int, int]("boom", 8, time.Millisecond, st, func(xs []int) []int {
		panic("engine exploded")
	})
	defer c.close()
	if _, err := c.do(7); err == nil {
		t.Fatal("want error from panicking batch")
	}
	// The coalescer survives for the next batch.
	if _, err := c.do(8); err == nil {
		t.Fatal("want error from second panicking batch")
	}
}

// TestBatchSizeMismatch: an engine that breaches the one-output-per-input
// contract must fail that batch with errors (and count it in the stats),
// not panic the daemon or hand a caller someone else's result.
func TestBatchSizeMismatch(t *testing.T) {
	st := newStats()
	broken := true
	c := newCoalescer[int, int]("short", 8, time.Millisecond, st, func(xs []int) []int {
		if broken {
			return xs[:len(xs)-1] // one result short
		}
		out := make([]int, len(xs))
		for i, x := range xs {
			out[i] = x * 2
		}
		return out
	})
	defer c.close()
	if _, err := c.do(7); err == nil {
		t.Fatal("want error from short-returning batch")
	}
	if got := st.Snapshot().Pipelines["short"].EngineErrors; got != 1 {
		t.Errorf("engine_errors = %d, want 1", got)
	}
	// The coalescer survives and serves correctly once the engine behaves.
	broken = false
	if v, err := c.do(21); err != nil || v != 42 {
		t.Errorf("after recovery: got %v, %v, want 42, nil", v, err)
	}
}

// TestLRUEviction pins capacity enforcement and recency order.
func TestLRUEviction(t *testing.T) {
	c := newLRU[int](2)
	c.put(1, 10)
	c.put(2, 20)
	if _, ok := c.get(1); !ok { // 1 becomes most recent
		t.Fatal("expected 1 cached")
	}
	c.put(3, 30) // evicts 2
	if _, ok := c.get(2); ok {
		t.Error("2 should have been evicted")
	}
	if v, ok := c.get(1); !ok || v != 10 {
		t.Errorf("1 = %v,%v", v, ok)
	}
	if v, ok := c.get(3); !ok || v != 30 {
		t.Errorf("3 = %v,%v", v, ok)
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	d := newLRU[int](-1)
	d.put(1, 1)
	if _, ok := d.get(1); ok {
		t.Error("disabled cache should never hit")
	}
}

// TestNegativeRoundsClamped: the CLI's -rounds -1 convention must not reach
// the fixed-depth refinement engine (it would panic every /wl and /kernel
// batch); the server clamps it to the default.
func TestNegativeRoundsClamped(t *testing.T) {
	s := New(Options{Rounds: -1, MaxBatch: 1})
	defer s.Close()
	res, err := s.WL(graph.Cycle(5))
	if err != nil {
		t.Fatalf("WL with Rounds:-1 should serve at the default depth, got %v", err)
	}
	if res.Rounds != 5 {
		t.Errorf("rounds = %d, want the clamped default 5", res.Rounds)
	}
	if _, err := s.Kernel("wl", graph.Cycle(5), graph.Path(4)); err != nil {
		t.Errorf("kernel with Rounds:-1: %v", err)
	}
}

// TestKernelPairCoalesces: one kernel request must put both graphs into the
// same engine batch (the feature fetches are issued concurrently), not pay
// two batch-collection delays.
func TestKernelPairCoalesces(t *testing.T) {
	s := New(Options{MaxBatch: 8, MaxDelay: 60 * time.Millisecond, CacheSize: -1})
	defer s.Close()
	if _, err := s.Kernel("wl", graph.Cycle(6), graph.Path(5)); err != nil {
		t.Fatal(err)
	}
	snap := s.Stats().Pipelines["kernel"]
	if snap.Batches != 1 || snap.BatchedRequests != 2 {
		t.Errorf("pair ran as %d batches / %d requests, want 1 batch of 2", snap.Batches, snap.BatchedRequests)
	}
}

// TestInflightBatchesBounded: under sustained overload the coalescer must
// apply backpressure, never stack unbounded concurrent engine passes — the
// per-pipeline worker cap is only real if the batch count is bounded too.
func TestInflightBatchesBounded(t *testing.T) {
	var inflight, peak atomic.Int64
	st := newStats()
	c := newCoalescer[int, int]("load", 1, time.Millisecond, st, func(xs []int) []int {
		if cur := inflight.Add(1); cur > peak.Load() {
			peak.Store(cur)
		}
		time.Sleep(5 * time.Millisecond)
		inflight.Add(-1)
		return xs
	})
	defer c.close()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.do(i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > maxInflightBatches {
		t.Errorf("%d engine passes ran concurrently, cap is %d", p, maxInflightBatches)
	}
}
