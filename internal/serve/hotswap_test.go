package serve

// The hot-swap correctness hammer (issue 8 satellite 3): concurrent
// lookups against a model-flip loop, asserting under -race that (1) no
// lookup ever fails, (2) every returned vector belongs to the generation
// the lookup reports — no stale-cache hits across a version boundary —
// and (3) versions observed by any one client are monotone, as is the
// version in the stats snapshot.

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
)

// writeGenModel saves a tiny model whose every value encodes its
// generation: row r is filled with gen*1000 + r, so one float identifies
// both the generation and the row.
func writeGenModel(t *testing.T, dir string, gen int) string {
	t.Helper()
	const rows, cols = 8, 4
	data := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			data[r*cols+c] = float64(gen*1000 + r)
		}
	}
	path := filepath.Join(dir, "gen.x2vm")
	if gen%2 == 1 {
		path = filepath.Join(dir, "gen-odd.x2vm")
	}
	err := model.SaveEmbeddings(path, model.EmbeddingsSpec{
		Kind: model.KindNodeEmbedding, Method: "node2vec",
		Rows: rows, Cols: cols, Data: data, DType: model.DTypeF64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEmbedServiceHotSwapHammer(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{})
	defer srv.Close()
	svc, err := srv.NewEmbedService(writeGenModel(t, dir, 0), "", true, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// genOf maps a service version to the generation constant baked into
	// that version's vectors. Written before the swap publishes the
	// version, read by clients only after observing the version.
	var genOf sync.Map
	genOf.Store(uint64(1), 0)

	const (
		clients    = 8
		lookupsPer = 400
		swaps      = 60
		rows       = 8
	)
	var failures atomic.Int64
	var started sync.WaitGroup
	started.Add(clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			started.Done()
			var lastVersion uint64
			for i := 0; i < lookupsPer; i++ {
				id := (c + i) % rows
				vec, method, version, err := svc.Lookup(id)
				if err != nil {
					t.Errorf("client %d lookup %d: %v", c, i, err)
					failures.Add(1)
					return
				}
				if method != "node2vec" {
					t.Errorf("client %d: method %q", c, method)
					failures.Add(1)
					return
				}
				if version < lastVersion {
					t.Errorf("client %d: version went backwards %d -> %d", c, lastVersion, version)
					failures.Add(1)
					return
				}
				lastVersion = version
				genVal, ok := genOf.Load(version)
				if !ok {
					t.Errorf("client %d: lookup returned unpublished version %d", c, version)
					failures.Add(1)
					return
				}
				if want := float64(genVal.(int)*1000 + id); vec[0] != want || vec[len(vec)-1] != want {
					t.Errorf("client %d: version %d id %d returned vector %v, want all %v — stale cache across swap",
						c, version, id, vec, want)
					failures.Add(1)
					return
				}
			}
		}(c)
	}

	// Don't start flipping generations until every client goroutine is
	// running, so swaps genuinely overlap in-flight lookups.
	started.Wait()
	var lastStatsVersion uint64
	for gen := 1; gen <= swaps; gen++ {
		path := writeGenModel(t, dir, gen)
		// Publish the generation for the version the swap WILL assign:
		// versions are assigned under the reload lock in sequence, so the
		// next is current+1. Storing before Reload keeps the map ahead of
		// any client that can observe the new version.
		genOf.Store(uint64(gen+1), gen)
		snap, err := svc.Reload(path, "")
		if err != nil {
			t.Fatalf("reload %d: %v", gen, err)
		}
		if snap.Version != uint64(gen+1) {
			t.Fatalf("reload %d assigned version %d", gen, snap.Version)
		}
		if cur := svc.Snapshot(); cur == nil || cur.Version < lastStatsVersion {
			t.Fatalf("stats model version regressed: %v after %d", cur, lastStatsVersion)
		} else {
			lastStatsVersion = cur.Version
		}
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d lookup failures during hot swap", failures.Load())
	}
	if snap := svc.Snapshot(); snap.Swaps != swaps+1 {
		t.Fatalf("swap counter %d, want %d", snap.Swaps, swaps+1)
	}
	// The server-level stats surface must carry the embed pipeline.
	stats := srv.Stats()
	if stats.Pipelines["embed"].Requests == 0 {
		t.Fatal("embed pipeline missing from stats")
	}
}

func TestEmbedServiceReloadFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{})
	defer srv.Close()
	svc, err := srv.NewEmbedService(writeGenModel(t, dir, 0), "", true, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	before := svc.Snapshot()

	if _, err := svc.Reload(filepath.Join(dir, "missing.x2vm"), ""); err == nil {
		t.Fatal("reload of a missing file succeeded")
	}
	if _, err := svc.Reload("", ""); err == nil {
		t.Fatal("reload with empty path succeeded")
	}
	vec, _, version, err := svc.Lookup(3)
	if err != nil {
		t.Fatalf("lookup after failed reload: %v", err)
	}
	if version != before.Version {
		t.Fatalf("failed reload changed the version: %d -> %d", before.Version, version)
	}
	if vec[0] != 3 {
		t.Fatalf("failed reload corrupted vectors: %v", vec)
	}
	if _, _, _, err := svc.Lookup(99); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	svc.Close()
	if _, _, _, err := svc.Lookup(0); err == nil {
		t.Fatal("lookup after Close succeeded")
	}
	if svc.Snapshot() != nil {
		t.Fatal("snapshot after Close is non-nil")
	}
	if svc.Rows() != 0 {
		t.Fatal("rows after Close non-zero")
	}
}
