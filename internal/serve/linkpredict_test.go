package serve

// Serving tests for the KGE and GNN model kinds (issue 10): /link-predict
// answers in the filtered setting off a saved (and possibly reloaded) KGE
// file, GNN graph /embed is bit-identical to the offline forward pass and
// invariant under vertex renumbering, kind mismatches are typed errors the
// daemon can map to 400, and the hot-swap hammer holds for link prediction
// exactly as it does for vector lookups.

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/model"
)

// writeTransEModel saves a dim-2 TransE model with hand-placed geometry:
// entity e sits at (e, 0) except e3=(0,1) and e4=(5,5); relation 0 is the
// unit translation (1, 0). The stored triple (0,0,1) makes e1 a known fact.
func writeTransEModel(t *testing.T, dir string) string {
	t.Helper()
	entities := []float64{
		0, 0, // e0
		1, 0, // e1: exactly e0 + r0 — the known completion
		2, 0, // e2
		0, 1, // e3
		5, 5, // e4
		1.1, 0, // e5: the best NEW tail for (e0, r0, ?)
	}
	path := filepath.Join(dir, "kg.x2vm")
	err := model.SaveKGE(path, model.KGESpec{
		Method: "transe", NumEntities: 6, NumRelations: 1, Dim: 2,
		Entities:  entities,
		Relations: []float64{1, 0},
		Triples:   [][3]int{{0, 0, 1}},
		DType:     model.DTypeF64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// writeGNNModel saves a small random degree-feature network and returns the
// path with the network itself, for oracle forward passes.
func writeGNNModel(t *testing.T, dir string, seed int64) (string, *gnn.Network) {
	t.Helper()
	net, err := gnn.New([]int{2, 4}, 3, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "gnn.x2vm")
	if err := model.SaveGNN(path, model.GNNSpec{Net: net, Features: "degree", DType: model.DTypeF64}); err != nil {
		t.Fatal(err)
	}
	return path, net
}

func TestLinkPredictServing(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{})
	defer srv.Close()
	svc, err := srv.NewEmbedService(writeTransEModel(t, dir), "", true, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// /embed against a KGE model serves entity rows.
	vec, method, _, err := svc.Lookup(1)
	if err != nil {
		t.Fatalf("entity lookup: %v", err)
	}
	if method != "transe" || vec[0] != 1 || vec[1] != 0 {
		t.Fatalf("entity row = %v (%s)", vec, method)
	}
	if svc.Rows() != 6 {
		t.Fatalf("rows = %d", svc.Rows())
	}

	// Tail mode: the known tail e1 and the anchor e0 are excluded, so the
	// best candidate is e5 at distance 0.1 from e0 + r0.
	res, err := svc.LinkPredict(0, 0, 3, "")
	if err != nil {
		t.Fatalf("link-predict: %v", err)
	}
	if res.Mode != "tail" || res.Method != "transe" || res.K != 3 {
		t.Fatalf("result shape %+v", res)
	}
	if len(res.Predictions) != 3 || res.Predictions[0].Entity != 5 {
		t.Fatalf("tail predictions %v, want e5 first", res.Predictions)
	}
	if math.Abs(res.Predictions[0].Score-0.1) > 1e-12 {
		t.Fatalf("top score %v, want 0.1", res.Predictions[0].Score)
	}
	for _, p := range res.Predictions {
		if p.Entity == 0 || p.Entity == 1 {
			t.Fatalf("excluded entity served: %v", res.Predictions)
		}
	}

	// A repeat is a cache hit: the served slice is the same object.
	again, err := svc.LinkPredict(0, 0, 3, "tail")
	if err != nil {
		t.Fatal(err)
	}
	if &again.Predictions[0] != &res.Predictions[0] {
		t.Fatal("repeat link-predict missed the cache")
	}

	// Head mode for (?, r0, e1): known head e0 and anchor e1 excluded; the
	// remaining entity closest to e1 - r0 = (0, 0) is e3 at distance 1.
	heads, err := svc.LinkPredict(1, 0, 2, "head")
	if err != nil {
		t.Fatalf("head mode: %v", err)
	}
	if len(heads.Predictions) != 2 || heads.Predictions[0].Entity != 3 {
		t.Fatalf("head predictions %v, want e3 first", heads.Predictions)
	}

	// Malformed queries are range errors, not panics or 500s.
	for _, bad := range []struct {
		anchor, rel int
		mode        string
	}{{-1, 0, ""}, {6, 0, ""}, {0, -1, ""}, {0, 1, ""}, {0, 0, "sideways"}} {
		if _, err := svc.LinkPredict(bad.anchor, bad.rel, 2, bad.mode); !errors.Is(err, ErrEmbedRange) {
			t.Fatalf("LinkPredict(%+v) error %v, want ErrEmbedRange", bad, err)
		}
	}

	// Kind mismatches are typed: a KGE model does not embed graphs.
	g, _ := graph.ParseGraph("0 1\n1 2\n")
	if _, _, err := svc.EmbedGraph(g); !errors.Is(err, ErrWrongModel) {
		t.Fatalf("EmbedGraph on KGE: %v", err)
	}

	// An ANN index cannot ride a KGE generation — rejected before the flip,
	// with the old generation intact.
	before := svc.Snapshot()
	if _, err := svc.Reload(writeTransEModel(t, dir), filepath.Join(dir, "whatever.idx")); err == nil {
		t.Fatal("index accepted on a KGE model")
	}
	if after := svc.Snapshot(); after.Version != before.Version {
		t.Fatalf("failed reload advanced the version %d -> %d", before.Version, after.Version)
	}

	snap := svc.Snapshot()
	if snap.Kind != "kge" || snap.Rows != 6 || snap.Cols != 2 || snap.Relations != 1 || snap.Triples != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestGNNEmbedServing(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{})
	defer srv.Close()
	path, net := writeGNNModel(t, dir, 42)
	svc, err := srv.NewEmbedService(path, "", true, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	star, _ := graph.ParseGraph("0 1\n0 2\n0 3\n")
	got, version, err := svc.EmbedGraph(star)
	if err != nil {
		t.Fatalf("EmbedGraph: %v", err)
	}
	want, err := net.GraphEmbed(star, gnn.DegreeFeatures(star, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("width %d, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("served embedding %v differs from offline forward %v", got, want)
		}
	}

	// A renumbered isomorphic copy (centre moved to vertex 3) hits the
	// wl.Hash cache: the very same slice comes back.
	renumbered, _ := graph.ParseGraph("3 0\n3 1\n3 2\n")
	cached, v2, err := svc.EmbedGraph(renumbered)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != version || &cached[0] != &got[0] {
		t.Fatal("renumbered isomorphic graph missed the cache")
	}

	// Kind mismatches: a GNN model serves graphs, not ids or triples.
	if _, _, _, err := svc.Lookup(0); !errors.Is(err, ErrWrongModel) {
		t.Fatalf("Lookup on GNN: %v", err)
	}
	if _, err := svc.LinkPredict(0, 0, 2, ""); !errors.Is(err, ErrWrongModel) {
		t.Fatalf("LinkPredict on GNN: %v", err)
	}
	if svc.Rows() != 0 {
		t.Fatalf("GNN rows = %d", svc.Rows())
	}
	snap := svc.Snapshot()
	if snap.Kind != "gnn" || snap.Method != "gnn" || len(snap.LayerDims) != 2 || snap.Cols != 4 {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestServeKindFlip reloads across all three handle kinds and asserts every
// endpoint answers (or refuses) according to the CURRENT kind — no stale
// behaviour survives a swap.
func TestServeKindFlip(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{})
	defer srv.Close()
	svc, err := srv.NewEmbedService(writeGenModel(t, dir, 0), "", true, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	g, _ := graph.ParseGraph("0 1\n1 2\n")

	if _, _, _, err := svc.Lookup(2); err != nil {
		t.Fatalf("table lookup: %v", err)
	}
	if _, err := svc.LinkPredict(0, 0, 2, ""); !errors.Is(err, ErrWrongModel) {
		t.Fatalf("LinkPredict on table: %v", err)
	}

	if _, err := svc.Reload(writeTransEModel(t, dir), ""); err != nil {
		t.Fatal(err)
	}
	if res, err := svc.LinkPredict(0, 0, 2, ""); err != nil || len(res.Predictions) == 0 {
		t.Fatalf("LinkPredict after flip to KGE: %v %v", res, err)
	}
	if vec, _, _, err := svc.Lookup(3); err != nil || vec[1] != 1 {
		t.Fatalf("entity lookup after flip: %v %v", vec, err)
	}

	gnnPath, _ := writeGNNModel(t, dir, 7)
	if _, err := svc.Reload(gnnPath, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.EmbedGraph(g); err != nil {
		t.Fatalf("EmbedGraph after flip to GNN: %v", err)
	}
	if _, _, _, err := svc.Lookup(0); !errors.Is(err, ErrWrongModel) {
		t.Fatalf("Lookup after flip to GNN: %v", err)
	}

	if _, err := svc.Reload(writeGenModel(t, dir, 5), ""); err != nil {
		t.Fatal(err)
	}
	vec, _, _, err := svc.Lookup(2)
	if err != nil || vec[0] != 5002 {
		t.Fatalf("table lookup after flip back: %v %v", vec, err)
	}
}

// writeHammerKGE saves a KGE generation whose relation encodes the
// generation: entity e sits at (e,e,e,e), relation 0 at gen+8 per
// coordinate, so the best tail for (e0, r0, ?) is always e7 with score
// exactly 2*(gen+1) — one float pins both the generation and correctness.
func writeHammerKGE(t *testing.T, dir string, gen int) string {
	t.Helper()
	const nE, dim = 8, 4
	entities := make([]float64, nE*dim)
	for e := 0; e < nE; e++ {
		for c := 0; c < dim; c++ {
			entities[e*dim+c] = float64(e)
		}
	}
	rel := make([]float64, dim)
	for c := range rel {
		rel[c] = float64(gen + 8)
	}
	path := filepath.Join(dir, "hammer.x2vm")
	if gen%2 == 1 {
		path = filepath.Join(dir, "hammer-odd.x2vm")
	}
	err := model.SaveKGE(path, model.KGESpec{
		Method: "transe", NumEntities: nE, NumRelations: 1, Dim: dim,
		Entities: entities, Relations: rel, DType: model.DTypeF64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLinkPredictHotSwapHammer is the issue-8 hot-swap hammer re-run over
// /link-predict: concurrent predictions against a reload loop, asserting
// no dropped request, monotone versions per client, and scores that always
// match the generation the response reports — no stale cache across swaps.
func TestLinkPredictHotSwapHammer(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{})
	defer srv.Close()
	svc, err := srv.NewEmbedService(writeHammerKGE(t, dir, 0), "", true, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var genOf sync.Map
	genOf.Store(uint64(1), 0)

	const (
		clients    = 8
		queriesPer = 300
		swaps      = 40
	)
	var failures atomic.Int64
	var started, wg sync.WaitGroup
	started.Add(clients)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			started.Done()
			var lastVersion uint64
			for i := 0; i < queriesPer; i++ {
				res, err := svc.LinkPredict(0, 0, 2, "tail")
				if err != nil {
					t.Errorf("client %d query %d: %v", c, i, err)
					failures.Add(1)
					return
				}
				if res.ModelVersion < lastVersion {
					t.Errorf("client %d: version went backwards %d -> %d", c, lastVersion, res.ModelVersion)
					failures.Add(1)
					return
				}
				lastVersion = res.ModelVersion
				genVal, ok := genOf.Load(res.ModelVersion)
				if !ok {
					t.Errorf("client %d: unpublished version %d", c, res.ModelVersion)
					failures.Add(1)
					return
				}
				want := 2 * float64(genVal.(int)+1)
				if len(res.Predictions) != 2 || res.Predictions[0].Entity != 7 || res.Predictions[0].Score != want {
					t.Errorf("client %d: version %d served %v, want e7 at score %v — stale cache across swap",
						c, res.ModelVersion, res.Predictions, want)
					failures.Add(1)
					return
				}
			}
		}(c)
	}

	started.Wait()
	for gen := 1; gen <= swaps; gen++ {
		path := writeHammerKGE(t, dir, gen)
		genOf.Store(uint64(gen+1), gen)
		snap, err := svc.Reload(path, "")
		if err != nil {
			t.Fatalf("reload %d: %v", gen, err)
		}
		if snap.Version != uint64(gen+1) {
			t.Fatalf("reload %d assigned version %d", gen, snap.Version)
		}
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d link-predict failures during hot swap", failures.Load())
	}
	stats := srv.Stats()
	if stats.Pipelines["link-predict"].Requests == 0 {
		t.Fatal("link-predict pipeline missing from stats")
	}
}
