package serve

// EmbedService: the hot-swappable model behind /embed. The daemon used to
// hold one *model.Embeddings for its whole life — changing models meant a
// restart, and a restart on a dynamic pipeline that re-saves fine-tuned
// generations every few minutes means dropping traffic on every
// generation. The service keeps the current model behind an atomic
// pointer:
//
//   - Lookups load the pointer and pin the handle with a reference count
//     before touching vectors. The mmap behind a v2 model must not be
//     unmapped while a request reads from it, so a swapped-out handle is
//     closed by whichever side drops the LAST reference — the swapper if
//     the model is idle, the final in-flight request otherwise. Zero
//     dropped requests, zero use-after-unmap.
//   - Reload opens and (optionally) CRC-verifies the new file BEFORE the
//     flip, so a bad file never interrupts serving: the old model keeps
//     answering and the caller gets the error.
//   - Every generation gets a monotone version number, and the vector
//     cache key is (version, id). A stale hit across a swap is therefore
//     structurally impossible — old entries age out of the LRU rather
//     than being served.
//
// hotswap_test.go hammers lookups against a reload loop under -race and
// asserts exactly those three properties.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ann"
	"repro/internal/kge"
	"repro/internal/model"
)

// Errors of the embed service, mapped by the daemon to 404/400.
var (
	ErrNoModel    = errors.New("serve: no model loaded")
	ErrEmbedRange = errors.New("serve: embedding id out of range")
	ErrNoIndex    = errors.New("serve: no ann index loaded; start x2vecd with -index")
	// ErrWrongModel flags an endpoint/model-kind mismatch: /link-predict
	// against an embedding table, an id lookup against a GNN, a graph embed
	// against a KGE. The daemon maps it to 400 — the request is well-formed,
	// the loaded model just does not answer it.
	ErrWrongModel = errors.New("serve: loaded model does not answer this endpoint")
)

// modelHandle is one loaded model generation. Exactly one of emb, kge and
// gnn is non-nil — the handle's kind is the file's kind — and, for
// embedding tables only, the ANN index that answers /neighbors rides the
// same handle so a reload flips them atomically: a query never sees a new
// index against an old model version. refs starts at 1 (the service's
// ownership); every lookup holds +1 for its critical section. Close
// happens exactly once, when the last reference drops — after the swap for
// an idle model, after the final in-flight lookup otherwise.
type modelHandle struct {
	emb     *model.Embeddings // embedding-table kinds (v1 and v2)
	kge     *model.KGEModel   // KindKGE: /link-predict and entity-row /embed
	gnn     *model.GNNModel   // KindGNN: graph /embed
	idx     *model.ANNIndex   // nil when this generation has no index
	idxPath string
	path    string
	version uint64
	refs    atomic.Int64

	// searchers pools per-goroutine ann.Searcher scratch over idx: queries
	// Get one, run the zero-alloc hotpath, and Put it back. Handle-scoped
	// so a searcher can never outlive the mapping its index points into.
	searchers sync.Pool
}

// searcher returns pooled query scratch for this generation's index.
func (h *modelHandle) searcher() *ann.Searcher { return h.searchers.Get().(*ann.Searcher) }

// acquire pins the handle for a reader; it fails only when the handle
// already hit zero (swapped out and fully drained), in which case the
// caller re-reads the current pointer.
func (h *modelHandle) acquire() bool {
	for {
		r := h.refs.Load()
		if r <= 0 {
			return false
		}
		if h.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

func (h *modelHandle) release() {
	if h.refs.Add(-1) == 0 {
		if h.emb != nil {
			h.emb.Close()
		}
		if h.kge != nil {
			h.kge.Close()
		}
		if h.idx != nil {
			h.idx.Close()
		}
		// GNN models are fully decoded to the heap; nothing to unmap.
	}
}

// ModelSnapshot is the /stats view of the currently served model. Rows/Cols
// are the embedding-table shape for table kinds and the entity-matrix shape
// for KGE models; GNN models report their layer widths instead.
type ModelSnapshot struct {
	Path         string         `json:"path"`
	Version      uint64         `json:"model_version"` // monotone across reloads
	Method       string         `json:"method"`
	Kind         string         `json:"kind"`
	DType        string         `json:"dtype"`
	Rows         int            `json:"rows"`
	Cols         int            `json:"cols"`
	Relations    int            `json:"relations,omitempty"`  // KGE: relation count
	Triples      int            `json:"triples,omitempty"`    // KGE: stored known facts
	LayerDims    []int          `json:"layer_dims,omitempty"` // GNN: widths, input to last hidden
	Mapped       bool           `json:"mmap"`
	LineageDepth int            `json:"lineage_depth"` // fine-tune generations recorded in the file
	Swaps        int64          `json:"swaps"`         // successful reloads since start (initial load included)
	Index        *IndexSnapshot `json:"index,omitempty"`
}

// IndexSnapshot is the /stats view of the ANN index riding the current
// generation.
type IndexSnapshot struct {
	Path         string `json:"path"`
	Rows         int    `json:"rows"`
	Dim          int    `json:"dim"`
	Tables       int    `json:"tables"`
	Bits         int    `json:"bits"`
	Mapped       bool   `json:"mmap"`
	SketchRounds int    `json:"sketch_rounds"`
	SketchWidth  int    `json:"sketch_width"`
}

// EmbedService serves vectors from the current model generation and swaps
// generations atomically. All methods are safe for concurrent use; Lookup
// never blocks on Reload.
type EmbedService struct {
	verify   bool
	workers  int // engine worker cap for candidate scans (0 = GOMAXPROCS)
	cache    *lruCache[[]float64]
	nbrCache *lruCache[[]ann.Neighbor]
	lpCache  *lruCache[[]kge.Prediction]
	stats    *Stats

	cur        atomic.Pointer[modelHandle]
	version    atomic.Uint64 // last assigned generation number
	swaps      atomic.Int64
	nbrQueries atomic.Uint64 // total /neighbors queries, drives recall sampling
	mu         sync.Mutex    // serialises Reload/Close; lookups never take it
}

// NewEmbedService opens modelPath as the first model generation of a
// service wired into this server's "embed" stats pipeline, with an optional
// ANN index (indexPath == "" serves /embed only; /neighbors then returns
// ErrNoIndex). verify runs the whole-file CRC before serving (and before
// every swap); cacheSize follows Options.CacheSize conventions (0 = 1024,
// negative disables).
func (s *Server) NewEmbedService(modelPath, indexPath string, verify bool, cacheSize int) (*EmbedService, error) {
	if cacheSize == 0 {
		cacheSize = 1024
	}
	svc := &EmbedService{
		verify:   verify,
		workers:  s.opts.Workers,
		cache:    newLRU[[]float64](cacheSize),
		nbrCache: newLRU[[]ann.Neighbor](cacheSize),
		lpCache:  newLRU[[]kge.Prediction](cacheSize),
		stats:    s.stats,
	}
	if _, err := svc.Reload(modelPath, indexPath); err != nil {
		return nil, err
	}
	return svc, nil
}

// Reload opens and validates modelPath (and indexPath, unless empty), then
// atomically flips serving to the new generation — model and index
// together, never one without the other. On any error the current
// generation keeps serving untouched. The swapped-out generation is closed
// once its last in-flight lookup finishes.
func (svc *EmbedService) Reload(modelPath, indexPath string) (ModelSnapshot, error) {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if modelPath == "" {
		return ModelSnapshot{}, fmt.Errorf("serve: reload needs a model path")
	}
	h := &modelHandle{idxPath: indexPath, path: modelPath}

	// Dispatch on the file's kind prefix: KGE and GNN files get their own
	// handles, everything else (v1 files, v2 embedding tables) goes through
	// the embedding opener, which produces the right error for bad files.
	kind, fileVersion, _ := model.SniffKind(modelPath)
	switch {
	case fileVersion == model.Version2 && kind == model.KindKGE:
		m, err := model.OpenKGE(modelPath)
		if err != nil {
			return ModelSnapshot{}, err
		}
		if svc.verify {
			if err := m.Verify(); err != nil {
				m.Close()
				return ModelSnapshot{}, err
			}
		}
		h.kge = m
	case fileVersion == model.Version2 && kind == model.KindGNN:
		m, err := model.OpenGNN(modelPath) // small file: CRC always runs at open
		if err != nil {
			return ModelSnapshot{}, err
		}
		h.gnn = m
	default:
		e, err := model.OpenEmbeddings(modelPath)
		if err != nil {
			return ModelSnapshot{}, err
		}
		if svc.verify {
			if err := e.Verify(); err != nil {
				e.Close()
				return ModelSnapshot{}, err
			}
		}
		h.emb = e
	}
	closeModel := func() {
		if h.emb != nil {
			h.emb.Close()
		}
		if h.kge != nil {
			h.kge.Close()
		}
	}
	var idx *model.ANNIndex
	if indexPath != "" {
		if h.emb == nil {
			closeModel()
			return ModelSnapshot{}, fmt.Errorf("serve: an ann index serves /neighbors over an embedding table, not a %v model", kind)
		}
		var err error
		idx, err = svc.openIndex(indexPath)
		if err != nil {
			closeModel()
			return ModelSnapshot{}, err
		}
	}
	h.idx = idx
	h.version = svc.version.Add(1)
	if idx != nil {
		ix := idx.Index
		h.searchers.New = func() any { return ann.NewSearcher(ix) }
	}
	h.refs.Store(1)
	old := svc.cur.Swap(h)
	svc.swaps.Add(1)
	if old != nil {
		old.release()
	}
	return svc.snapshotOf(h), nil
}

// openIndex opens and gates an ANN index for /neighbors serving: the index
// must carry the sketch metadata that lets the service embed request graphs
// into its vector space (recorded by `x2vec index`), with the sketch width
// matching the indexed dimension.
func (svc *EmbedService) openIndex(path string) (*model.ANNIndex, error) {
	idx, err := model.OpenANNIndex(path)
	if err != nil {
		return nil, err
	}
	if svc.verify {
		if err := idx.Verify(); err != nil {
			idx.Close()
			return nil, err
		}
	}
	ix := idx.Index
	if ix.SketchWidth != ix.Dim || ix.SketchRounds < 1 {
		idx.Close()
		return nil, fmt.Errorf("serve: index %s lacks usable sketch metadata (rounds=%d width=%d dim=%d); build it with `x2vec index`",
			path, ix.SketchRounds, ix.SketchWidth, ix.Dim)
	}
	return idx, nil
}

// Lookup returns a copy of the vector for id from the current generation,
// with the serving method and the generation's version — the value the
// response must report so clients can correlate vectors with /stats.
func (svc *EmbedService) Lookup(id int) ([]float64, string, uint64, error) {
	start := time.Now()
	defer func() { svc.stats.observe("embed", start) }()
	h := svc.pin()
	if h == nil {
		return nil, "", 0, ErrNoModel
	}
	defer h.release()
	if h.gnn != nil {
		return nil, "", 0, fmt.Errorf("%w: a GNN model embeds graphs; POST a \"graph\" to /embed", ErrWrongModel)
	}
	rows, method := 0, ""
	if h.kge != nil {
		rows, method = h.kge.NumEntities, h.kge.Method
	} else {
		rows, method = h.emb.Rows, h.emb.Method
	}
	if id < 0 || id >= rows {
		return nil, "", 0, fmt.Errorf("%w: id %d outside [0,%d)", ErrEmbedRange, id, rows)
	}
	key := h.version<<32 | uint64(uint32(id))
	if v, ok := svc.cache.get(key); ok {
		svc.stats.hit("embed")
		return v, method, h.version, nil
	}
	svc.stats.miss("embed")
	// A fresh copy in both arms: safe to cache and to return past Close.
	var v []float64
	if h.kge != nil {
		v = make([]float64, h.kge.Dim)
		h.kge.EntityInto(v, id)
	} else {
		v = h.emb.Vector(id)
	}
	svc.cache.put(key, v)
	return v, method, h.version, nil
}

// Rows returns the current generation's row count — table rows or KGE
// entities; 0 with no model or a GNN model, which has no id space.
func (svc *EmbedService) Rows() int {
	h := svc.pin()
	if h == nil {
		return 0
	}
	defer h.release()
	switch {
	case h.kge != nil:
		return h.kge.NumEntities
	case h.gnn != nil:
		return 0
	}
	return h.emb.Rows
}

// Snapshot returns the /stats view of the current generation, or nil
// after Close.
func (svc *EmbedService) Snapshot() *ModelSnapshot {
	h := svc.pin()
	if h == nil {
		return nil
	}
	defer h.release()
	snap := svc.snapshotOf(h)
	return &snap
}

// Close stops serving and releases the service's ownership of the current
// generation; the mapping itself is released when the last in-flight
// lookup finishes. Subsequent lookups return ErrNoModel.
func (svc *EmbedService) Close() {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if old := svc.cur.Swap(nil); old != nil {
		old.release()
	}
}

// pin loads the current handle and acquires it, retrying across the
// benign race where a generation is swapped out and drained between the
// load and the acquire.
func (svc *EmbedService) pin() *modelHandle {
	for {
		h := svc.cur.Load()
		if h == nil {
			return nil
		}
		if h.acquire() {
			return h
		}
	}
}

func (svc *EmbedService) snapshotOf(h *modelHandle) ModelSnapshot {
	var idxSnap *IndexSnapshot
	if h.idx != nil {
		ix := h.idx.Index
		idxSnap = &IndexSnapshot{
			Path:         h.idxPath,
			Rows:         ix.N,
			Dim:          ix.Dim,
			Tables:       ix.Tables,
			Bits:         ix.Bits,
			Mapped:       h.idx.Mapped,
			SketchRounds: ix.SketchRounds,
			SketchWidth:  ix.SketchWidth,
		}
	}
	snap := ModelSnapshot{
		Index:   idxSnap,
		Path:    h.path,
		Version: h.version,
		Swaps:   svc.swaps.Load(),
	}
	switch {
	case h.kge != nil:
		m := h.kge
		snap.Method, snap.Kind, snap.DType = m.Method, model.KindKGE.String(), m.DType.String()
		snap.Rows, snap.Cols, snap.Relations = m.NumEntities, m.Dim, m.NumRelations
		snap.Triples = len(m.Triples)
		snap.Mapped = m.Mapped
		snap.LineageDepth = len(m.Lineage)
	case h.gnn != nil:
		m := h.gnn
		snap.Method, snap.Kind, snap.DType = "gnn", model.KindGNN.String(), m.DType.String()
		snap.Cols = m.Net.OutDim() // width of the pooled graph embedding
		snap.LayerDims = m.Dims
		snap.LineageDepth = len(m.Lineage)
	default:
		snap.Method, snap.Kind, snap.DType = h.emb.Method, h.emb.Kind.String(), h.emb.DType.String()
		snap.Rows, snap.Cols = h.emb.Rows, h.emb.Cols
		snap.Mapped = h.emb.Mapped
		snap.LineageDepth = len(h.emb.Lineage)
	}
	return snap
}
