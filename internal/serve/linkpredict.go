package serve

// The /link-predict and GNN /embed pipelines: the KGE and GNN model kinds
// of PR 10, served through the same refcounted hot-swap handle as embedding
// tables. Link prediction ranks every candidate entity for (h, r, ?) or
// (?, r, t) straight off the (possibly int8-quantised, possibly mmap'ed)
// model file in the FILTERED setting — the training triples stored in the
// file exclude known facts, so the top-k are new predictions, not a replay
// of the training set. GNN graph embedding rebuilds the model's recorded
// initial-feature scheme for the request graph and sum-pools the final
// message-passing layer; the cache key is the renumbering-invariant
// wl.Hash, so an isomorphic renumbered repeat is a cache hit (DegreeFeatures
// and ConstantFeatures are permutation-equivariant, sum-pooling collapses
// the ordering — the served vector is a graph invariant).

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/kge"
	"repro/internal/wl"
)

// DefaultLinkK is the k used when a /link-predict request does not choose
// one.
const DefaultLinkK = 10

// LinkPredictResult is one served /link-predict answer. Predictions aliases
// a cache entry; callers must not mutate it.
type LinkPredictResult struct {
	Predictions  []kge.Prediction
	Method       string // "transe" (lower score is better) or "rescal" (higher)
	Mode         string // "tail" ranks (h, r, ?), "head" ranks (?, r, t)
	K            int
	ModelVersion uint64
}

// LinkPredict ranks the top-k candidate entities for the open side of a
// triple against the current KGE generation. mode "tail" (or "") ranks
// tails of (anchor, rel, ?); mode "head" ranks heads of (?, rel, anchor).
// Entities stored as true completions in the model's training triples are
// excluded (the filtered setting), as is the anchor itself.
func (svc *EmbedService) LinkPredict(anchor, rel, k int, mode string) (*LinkPredictResult, error) {
	start := time.Now()
	defer func() { svc.stats.observe("link-predict", start) }()
	switch mode {
	case "":
		mode = "tail"
	case "tail", "head":
	default:
		return nil, fmt.Errorf("%w: mode %q (want tail or head)", ErrEmbedRange, mode)
	}
	if k <= 0 {
		k = DefaultLinkK
	}
	h := svc.pin()
	if h == nil {
		return nil, ErrNoModel
	}
	defer h.release()
	if h.kge == nil {
		return nil, fmt.Errorf("%w: /link-predict needs a KGE model (x2vec train transe|rescal)", ErrWrongModel)
	}
	m := h.kge
	if anchor < 0 || anchor >= m.NumEntities {
		return nil, fmt.Errorf("%w: entity %d outside [0,%d)", ErrEmbedRange, anchor, m.NumEntities)
	}
	if rel < 0 || rel >= m.NumRelations {
		return nil, fmt.Errorf("%w: relation %d outside [0,%d)", ErrEmbedRange, rel, m.NumRelations)
	}
	if k > m.NumEntities {
		k = m.NumEntities
	}
	res := &LinkPredictResult{Method: m.Method, Mode: mode, K: k, ModelVersion: h.version}

	key := linkKey(h.version, anchor, rel, k, mode)
	if v, ok := svc.lpCache.get(key); ok {
		svc.stats.hit("link-predict")
		res.Predictions = v
		return res, nil
	}
	svc.stats.miss("link-predict")

	var known []int
	if mode == "tail" {
		known = m.KnownTails(anchor, rel)
	} else {
		known = m.KnownHeads(rel, anchor)
	}
	skip := make(map[int]struct{}, len(known)+1)
	skip[anchor] = struct{}{}
	for _, e := range known {
		skip[e] = struct{}{}
	}
	exclude := func(e int) bool { _, ok := skip[e]; return ok }

	var preds []kge.Prediction
	var err error
	if mode == "tail" {
		preds, err = m.View().TopTails(anchor, rel, k, svc.workers, exclude)
	} else {
		preds, err = m.View().TopHeads(rel, anchor, k, svc.workers, exclude)
	}
	if err != nil {
		return nil, err
	}
	svc.lpCache.put(key, preds)
	res.Predictions = preds
	return res, nil
}

// EmbedGraph embeds a request graph with the current GNN generation: the
// model's stored feature scheme, its message-passing layers, sum-pooled.
// The returned vector aliases a cache entry; callers must not mutate it.
func (svc *EmbedService) EmbedGraph(g *graph.Graph) ([]float64, uint64, error) {
	start := time.Now()
	defer func() { svc.stats.observe("gnn-embed", start) }()
	h := svc.pin()
	if h == nil {
		return nil, 0, ErrNoModel
	}
	defer h.release()
	if h.gnn == nil {
		return nil, 0, fmt.Errorf("%w: graph /embed needs a GNN model (x2vec train gnn)", ErrWrongModel)
	}
	key := gnnKey(wl.Hash(g), h.version)
	if v, ok := svc.cache.get(key); ok {
		svc.stats.hit("gnn-embed")
		return v, h.version, nil
	}
	svc.stats.miss("gnn-embed")
	m := h.gnn
	v, err := m.Net.GraphEmbed(g, m.FeatureMatrix(g))
	if err != nil {
		return nil, 0, err
	}
	svc.cache.put(key, v)
	return v, h.version, nil
}

// linkKey folds the generation and the full query shape — entries can never
// leak across a model swap or between queries.
func linkKey(version uint64, anchor, rel, k int, mode string) uint64 {
	x := version ^ 0xa24baed4963ee407
	x = keyMix(x + uint64(anchor))
	x = keyMix(x + uint64(rel)*0x100000001b3)
	x = keyMix(x + uint64(k))
	if mode == "head" {
		x = keyMix(x ^ 0x9e3779b97f4a7c15)
	}
	return x
}

// gnnKey folds the request graph's canonical hash with the generation. It
// shares the service's vector cache with id lookups: a generation serves
// either ids or graphs, never both, so the two key families cannot collide
// within a version.
func gnnKey(gh, version uint64) uint64 {
	return keyMix(keyMix(gh^0x5851f42d4c957f2d) + version)
}
