package serve

// Serving metrics: per-pipeline request counts, cache hit rates, batch
// occupancy (requests per engine pass — the number that shows coalescing is
// actually amortising work), and log-bucketed latency with p50/p99 readouts.
// Everything is a counter under one mutex; observation cost is dwarfed by
// even a cache-hit request.

import (
	"sync"
	"time"
)

// latencyBuckets is the number of power-of-two microsecond buckets; bucket
// b counts requests with latency in [2^(b-1), 2^b) µs, so 40 buckets cover
// beyond 15 minutes.
const latencyBuckets = 40

type pipelineCounters struct {
	requests     int64
	cacheHits    int64
	cacheMisses  int64
	batches      int64
	batchedReqs  int64
	maxBatch     int64
	engineErrors int64
	// Recall sampling (the /neighbors pipeline): every Nth approximate
	// query is re-answered exactly and its recall@k recorded here, so
	// /stats carries a live estimate of what the LSH tier is trading away.
	recallSamples int64
	recallSum     float64
	latency       [latencyBuckets]int64
}

// Stats collects serving metrics across all pipelines of one Server.
type Stats struct {
	mu        sync.Mutex
	start     time.Time
	pipelines map[string]*pipelineCounters
}

func newStats() *Stats {
	return &Stats{start: time.Now(), pipelines: map[string]*pipelineCounters{}}
}

func (s *Stats) counters(pipeline string) *pipelineCounters {
	c, ok := s.pipelines[pipeline]
	if !ok {
		c = &pipelineCounters{}
		s.pipelines[pipeline] = c
	}
	return c
}

func (s *Stats) hit(pipeline string) {
	s.mu.Lock()
	s.counters(pipeline).cacheHits++
	s.mu.Unlock()
}

func (s *Stats) miss(pipeline string) {
	s.mu.Lock()
	s.counters(pipeline).cacheMisses++
	s.mu.Unlock()
}

func (s *Stats) recordBatch(pipeline string, size int) {
	s.mu.Lock()
	c := s.counters(pipeline)
	c.batches++
	c.batchedReqs += int64(size)
	if int64(size) > c.maxBatch {
		c.maxBatch = int64(size)
	}
	s.mu.Unlock()
}

// recordEngineError counts one failed engine pass (a panic or a
// result-count contract breach); the affected batch's requests get
// errors, the daemon stays up, and /stats surfaces the damage.
func (s *Stats) recordEngineError(pipeline string) {
	s.mu.Lock()
	s.counters(pipeline).engineErrors++
	s.mu.Unlock()
}

// recordRecall records one sampled recall@k measurement (approximate vs
// exact answer over the same index).
func (s *Stats) recordRecall(pipeline string, recall float64) {
	s.mu.Lock()
	c := s.counters(pipeline)
	c.recallSamples++
	c.recallSum += recall
	s.mu.Unlock()
}

// observe records one served request and its latency.
func (s *Stats) observe(pipeline string, start time.Time) {
	us := time.Since(start).Microseconds()
	b := 0
	for v := us; v > 0; v >>= 1 {
		b++
	}
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	s.mu.Lock()
	c := s.counters(pipeline)
	c.requests++
	c.latency[b]++
	s.mu.Unlock()
}

// PipelineSnapshot is the exported per-pipeline view, JSON-ready for the
// daemon's /stats endpoint.
type PipelineSnapshot struct {
	Requests        int64   `json:"requests"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Batches         int64   `json:"batches"`
	BatchedRequests int64   `json:"batched_requests"`
	BatchOccupancy  float64 `json:"batch_occupancy"` // mean requests per engine pass
	MaxBatch        int64   `json:"max_batch"`
	EngineErrors    int64   `json:"engine_errors"`
	RecallSamples   int64   `json:"recall_samples,omitempty"`
	MeanRecall      float64 `json:"mean_recall_at_k,omitempty"`
	P50Micros       int64   `json:"p50_us"`
	P99Micros       int64   `json:"p99_us"`
}

// Snapshot is the full /stats payload. Model is filled in by callers that
// serve an EmbedService (the daemon) — the batching pipelines know nothing
// about models.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Pipelines     map[string]PipelineSnapshot `json:"pipelines"`
	Model         *ModelSnapshot              `json:"model,omitempty"`
}

// Snapshot returns a consistent copy of all counters.
func (s *Stats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Snapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Pipelines:     make(map[string]PipelineSnapshot, len(s.pipelines)),
	}
	for name, c := range s.pipelines {
		ps := PipelineSnapshot{
			Requests:        c.requests,
			CacheHits:       c.cacheHits,
			CacheMisses:     c.cacheMisses,
			Batches:         c.batches,
			BatchedRequests: c.batchedReqs,
			MaxBatch:        c.maxBatch,
			EngineErrors:    c.engineErrors,
			P50Micros:       percentile(&c.latency, c.requests, 0.50),
			P99Micros:       percentile(&c.latency, c.requests, 0.99),
		}
		if lookups := c.cacheHits + c.cacheMisses; lookups > 0 {
			ps.CacheHitRate = float64(c.cacheHits) / float64(lookups)
		}
		if c.batches > 0 {
			ps.BatchOccupancy = float64(c.batchedReqs) / float64(c.batches)
		}
		if c.recallSamples > 0 {
			ps.RecallSamples = c.recallSamples
			ps.MeanRecall = c.recallSum / float64(c.recallSamples)
		}
		out.Pipelines[name] = ps
	}
	return out
}

// percentile returns a representative latency (the upper edge of the
// log-bucket holding the p-quantile observation).
func percentile(buckets *[latencyBuckets]int64, total int64, p float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total-1))
	var seen int64
	for b, n := range buckets {
		seen += n
		if n > 0 && seen > rank {
			return int64(1) << b // upper edge of [2^(b-1), 2^b)
		}
	}
	return int64(1) << (latencyBuckets - 1)
}
