package serve

// The /neighbors pipeline: graph in, top-k nearest corpus members out,
// in sublinear time. A request graph is embedded with the count-sketch WL
// map whose parameters the index file recorded at build time (so daemon and
// indexer agree bit-for-bit on the vector space), looked up in the LSH
// index with multi-probe + exact-cosine rerank, and cached under the
// renumbering-invariant wl.Hash — a renumbered repeat of a known graph is a
// cache hit, not a query. Every recallSampleEvery-th query is re-answered
// by the exact scan over the same index and the observed recall@k feeds the
// "neighbors" pipeline's /stats counters: the approximation's quality is a
// live metric, not a build-time promise.

import (
	"time"

	"repro/internal/ann"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/wl"
)

const (
	// DefaultProbes is the multi-probe budget per table when the request
	// does not choose one.
	DefaultProbes = 8
	// DefaultNeighborK is the k used when the request does not choose one.
	DefaultNeighborK = 10
	// recallSampleEvery picks which queries are re-answered exactly for
	// recall accounting (the first query of a fresh service is sampled, so
	// /stats shows a recall figure as soon as traffic starts).
	recallSampleEvery = 64
)

// NeighborsResult is one served /neighbors answer. Neighbors aliases a
// cache entry; callers must not mutate it.
type NeighborsResult struct {
	Neighbors    []ann.Neighbor
	K            int
	Probes       int
	ModelVersion uint64
	IndexRows    int
}

// Neighbors returns the top-k most cosine-similar indexed corpus members to
// g under the index's recorded count-sketch WL embedding. k and probes ≤ 0
// take the defaults. The result may hold fewer than k entries (small index,
// or a request graph whose sketch is zero).
func (svc *EmbedService) Neighbors(g *graph.Graph, k, probes int) (*NeighborsResult, error) {
	start := time.Now()
	defer func() { svc.stats.observe("neighbors", start) }()
	if k <= 0 {
		k = DefaultNeighborK
	}
	if probes <= 0 {
		probes = DefaultProbes
	}
	h := svc.pin()
	if h == nil {
		return nil, ErrNoModel
	}
	defer h.release()
	if h.idx == nil {
		return nil, ErrNoIndex
	}
	ix := h.idx.Index
	res := &NeighborsResult{K: k, Probes: probes, ModelVersion: h.version, IndexRows: ix.N}

	key := neighborsKey(wl.Hash(g), h.version, k, probes)
	if v, ok := svc.nbrCache.get(key); ok {
		svc.stats.hit("neighbors")
		res.Neighbors = v
		return res, nil
	}
	svc.stats.miss("neighbors")

	sk := kernel.CountSketchWL{Rounds: ix.SketchRounds, Width: ix.SketchWidth, Seed: ix.SketchSeed}
	q := sk.Sketch(g)
	s := h.searcher()
	nbs, err := s.Search(q, k, probes, nil)
	if err != nil {
		h.searchers.Put(s)
		return nil, err
	}
	if svc.nbrQueries.Add(1)%recallSampleEvery == 1 && len(nbs) > 0 {
		if exact, err := s.ExactTopK(q, k, nil); err == nil && len(exact) > 0 {
			svc.stats.recordRecall("neighbors", recallOf(nbs, exact))
		}
	}
	h.searchers.Put(s)
	svc.nbrCache.put(key, nbs)
	res.Neighbors = nbs
	return res, nil
}

// recallOf measures |approx ∩ exact| / |exact| by id.
func recallOf(approx, exact []ann.Neighbor) float64 {
	ids := make(map[int]struct{}, len(approx))
	for _, nb := range approx {
		ids[nb.ID] = struct{}{}
	}
	hits := 0
	for _, nb := range exact {
		if _, ok := ids[nb.ID]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// neighborsKey folds the query graph's canonical hash with the generation
// and the query shape: entries can never leak across a model swap or
// between different (k, probes) requests for the same graph.
func neighborsKey(gh, version uint64, k, probes int) uint64 {
	x := gh ^ 0x9e3779b97f4a7c15
	x = keyMix(x + version)
	x = keyMix(x + uint64(k)*0x100000001b3)
	x = keyMix(x + uint64(probes))
	return x
}

// keyMix is the murmur3 finaliser — full avalanche per folded field.
func keyMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
