package kge

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestTransELinkPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	kg := dataset.World(10, rng)
	train, test := kg.Split(0.15, rng)
	cfg := DefaultTransEConfig()
	m := TrainTransE(train, kg.NumEntities(), kg.NumRelations(), cfg, rng)
	met := EvaluateTransE(m, test, kg.Triples)
	if met.MRR < 0.3 {
		t.Errorf("TransE MRR=%v, want >= 0.3 on the synthetic world", met.MRR)
	}
	if met.HitsAt[10] < 0.6 {
		t.Errorf("Hits@10=%v, want >= 0.6", met.HitsAt[10])
	}
}

func TestTransETranslationConsistency(t *testing.T) {
	// The capital-of relation should act as a near-constant translation:
	// consistency (mean pairwise diff distance) well below that of random
	// entity pairs.
	rng := rand.New(rand.NewSource(122))
	kg := dataset.World(10, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rng)
	consistency := m.TranslationConsistency(kg.Triples, dataset.RelCapitalOf)

	// Baseline: differences between random unrelated entity pairs.
	var fake []Triple
	for i := 0; i < 10; i++ {
		fake = append(fake, Triple{rng.Intn(kg.NumEntities()), dataset.RelCapitalOf, rng.Intn(kg.NumEntities())})
	}
	baseline := m.TranslationConsistency(fake, dataset.RelCapitalOf)
	if consistency >= baseline {
		t.Errorf("capital-of consistency %v should beat random baseline %v", consistency, baseline)
	}
}

func TestTransEScoresPositivesBelowNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	kg := dataset.World(8, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rng)
	var posMean, negMean float64
	for _, tr := range kg.Triples {
		posMean += m.Score(tr[0], tr[1], tr[2])
		negMean += m.Score(rng.Intn(kg.NumEntities()), tr[1], rng.Intn(kg.NumEntities()))
	}
	posMean /= float64(len(kg.Triples))
	negMean /= float64(len(kg.Triples))
	if posMean >= negMean {
		t.Errorf("positive mean score %v should be below negative mean %v", posMean, negMean)
	}
}

func TestRESCALReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	kg := dataset.World(6, rng)
	cfg := DefaultRESCALConfig()
	m := TrainRESCAL(kg.Triples, kg.NumEntities(), kg.NumRelations(), cfg, rng)
	err := m.ReconstructionError(kg.Triples, kg.NumRelations())
	// Untrained baseline.
	m0 := TrainRESCAL(kg.Triples, kg.NumEntities(), kg.NumRelations(), RESCALConfig{Dim: cfg.Dim, LR: 0, Epochs: 0}, rand.New(rand.NewSource(124)))
	err0 := m0.ReconstructionError(kg.Triples, kg.NumRelations())
	if err >= err0 {
		t.Errorf("training should reduce reconstruction error: %v -> %v", err0, err)
	}
}

func TestRESCALRelationAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	kg := dataset.World(8, rng)
	m := TrainRESCAL(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultRESCALConfig(), rng)
	for r := 0; r < kg.NumRelations(); r++ {
		auc := m.RelationAUC(kg.Triples, r, rng, 2000)
		if auc < 0.85 {
			t.Errorf("relation %d AUC=%v, want >= 0.85", r, auc)
		}
	}
}

func TestEvaluateMetricsRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	kg := dataset.World(5, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), TransEConfig{Dim: 4, Margin: 1, LR: 0.05, Epochs: 20}, rng)
	met := EvaluateTransE(m, kg.Triples[:3], kg.Triples)
	if met.MRR < 0 || met.MRR > 1 {
		t.Errorf("MRR out of range: %v", met.MRR)
	}
	for k, v := range met.HitsAt {
		if v < 0 || v > 1 {
			t.Errorf("Hits@%d out of range: %v", k, v)
		}
	}
	if met.HitsAt[10] < met.HitsAt[1] {
		t.Error("Hits@10 must dominate Hits@1")
	}
}

func TestAnalogyQueries(t *testing.T) {
	// "What is the capital of country X?" answered by TransE ranking — the
	// introduction's Paris/France lookup on the synthetic world.
	rng := rand.New(rand.NewSource(127))
	kg := dataset.World(8, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rng)
	correct, total := 0, 0
	for _, tr := range kg.Triples {
		if tr[1] != dataset.RelCapitalOf {
			continue
		}
		total++
		if m.AnswerHead(dataset.RelCapitalOf, tr[2], nil) == tr[0] {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("no capital-of triples")
	}
	if float64(correct)/float64(total) < 0.5 {
		t.Errorf("analogy head queries: %d/%d correct, want >= half", correct, total)
	}
}

func TestAnswerTailExcludes(t *testing.T) {
	rng := rand.New(rand.NewSource(128))
	kg := dataset.World(4, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), TransEConfig{Dim: 8, Margin: 1, LR: 0.05, Epochs: 50}, rng)
	first := m.AnswerTail(0, 0, nil)
	second := m.AnswerTail(0, 0, map[int]bool{first: true})
	if first == second {
		t.Error("excluded entity should not be returned")
	}
}

// TestCorruptTripleFiltered pins the sampler contract directly: filtered
// corruptions never equal the positive and are never known facts.
func TestCorruptTripleFiltered(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	triples := []Triple{}
	for h := 0; h < 3; h++ {
		for tl := 3; tl < 6; tl++ {
			triples = append(triples, Triple{h, 0, tl})
		}
	}
	known := map[Triple]bool{}
	for _, tr := range triples {
		known[tr] = true
	}
	for i := 0; i < 2000; i++ {
		pos := triples[rng.Intn(len(triples))]
		neg, ok := corruptTriple(pos, 6, known, false, rng)
		if !ok {
			t.Fatal("sampler gave up on a KG with plenty of false triples")
		}
		if neg == pos {
			t.Fatal("filtered corruption equals the positive")
		}
		if known[neg] {
			t.Fatalf("filtered corruption %v is a known fact", neg)
		}
	}
	// Degenerate case: every triple over the entity set is known, so no
	// false corruption exists and the sampler must give up, not spin.
	all := []Triple{}
	allKnown := map[Triple]bool{}
	for h := 0; h < 2; h++ {
		for tl := 0; tl < 2; tl++ {
			tr := Triple{h, 0, tl}
			all = append(all, tr)
			allKnown[tr] = true
		}
	}
	if _, ok := corruptTriple(all[0], 2, allKnown, false, rng); ok {
		t.Error("sampler should report failure when no false triple exists")
	}
}

// TestFilteredNegativesBeatUnfiltered is the regression test for the
// false-negative sampling bug. The KG is a dense "related" clique over
// entities 0..4 (every ordered pair is a fact) plus 6 distractor entities:
// corrupting the head or tail of a clique fact lands on ANOTHER true fact
// with high probability, so the legacy blind sampler spends a large share
// of its margin steps pushing true facts apart. Training is fully seeded
// and deterministic; across 8 seeds the fixed sampler's filtered MRR is
// 0.75 on every seed while the legacy one degrades on half of them and
// never wins.
func TestFilteredNegativesBeatUnfiltered(t *testing.T) {
	var triples []Triple
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if a != b {
				triples = append(triples, Triple{a, 0, b})
			}
		}
	}
	const numEntities = 11 // clique 0..4 plus distractors 5..10
	cfg := DefaultTransEConfig()
	cfg.Dim = 8
	cfg.Epochs = 400

	var sumFiltered, sumUnfiltered float64
	const seeds = 8
	for seed := int64(0); seed < seeds; seed++ {
		good := TrainTransE(triples, numEntities, 1, cfg, rand.New(rand.NewSource(seed)))
		badCfg := cfg
		badCfg.UnfilteredNegatives = true
		bad := TrainTransE(triples, numEntities, 1, badCfg, rand.New(rand.NewSource(seed)))
		f := EvaluateTransE(good, triples, triples).MRR
		u := EvaluateTransE(bad, triples, triples).MRR
		if f < u {
			t.Errorf("seed %d: filtered MRR %.4f below legacy %.4f", seed, f, u)
		}
		sumFiltered += f
		sumUnfiltered += u
	}
	mrrFiltered := sumFiltered / seeds
	mrrUnfiltered := sumUnfiltered / seeds
	t.Logf("mean filtered MRR=%.4f, legacy unfiltered MRR=%.4f", mrrFiltered, mrrUnfiltered)
	if mrrFiltered < mrrUnfiltered+0.03 {
		t.Errorf("filtered sampling MRR %.4f does not measurably beat legacy %.4f", mrrFiltered, mrrUnfiltered)
	}
	if mrrFiltered < 0.74 {
		t.Errorf("filtered sampling MRR %.4f below the structural optimum of 0.75", mrrFiltered)
	}
}
