package kge

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestTransELinkPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	kg := dataset.World(10, rng)
	train, test := kg.Split(0.15, rng)
	cfg := DefaultTransEConfig()
	m := TrainTransE(train, kg.NumEntities(), kg.NumRelations(), cfg, rng)
	met := EvaluateTransE(m, test, kg.Triples)
	if met.MRR < 0.3 {
		t.Errorf("TransE MRR=%v, want >= 0.3 on the synthetic world", met.MRR)
	}
	if met.HitsAt[10] < 0.6 {
		t.Errorf("Hits@10=%v, want >= 0.6", met.HitsAt[10])
	}
}

func TestTransETranslationConsistency(t *testing.T) {
	// The capital-of relation should act as a near-constant translation:
	// consistency (mean pairwise diff distance) well below that of random
	// entity pairs.
	rng := rand.New(rand.NewSource(122))
	kg := dataset.World(10, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rng)
	consistency := m.TranslationConsistency(kg.Triples, dataset.RelCapitalOf)

	// Baseline: differences between random unrelated entity pairs.
	var fake []Triple
	for i := 0; i < 10; i++ {
		fake = append(fake, Triple{rng.Intn(kg.NumEntities()), dataset.RelCapitalOf, rng.Intn(kg.NumEntities())})
	}
	baseline := m.TranslationConsistency(fake, dataset.RelCapitalOf)
	if consistency >= baseline {
		t.Errorf("capital-of consistency %v should beat random baseline %v", consistency, baseline)
	}
}

func TestTransEScoresPositivesBelowNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	kg := dataset.World(8, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rng)
	var posMean, negMean float64
	for _, tr := range kg.Triples {
		posMean += m.Score(tr[0], tr[1], tr[2])
		negMean += m.Score(rng.Intn(kg.NumEntities()), tr[1], rng.Intn(kg.NumEntities()))
	}
	posMean /= float64(len(kg.Triples))
	negMean /= float64(len(kg.Triples))
	if posMean >= negMean {
		t.Errorf("positive mean score %v should be below negative mean %v", posMean, negMean)
	}
}

func TestRESCALReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	kg := dataset.World(6, rng)
	cfg := DefaultRESCALConfig()
	m := TrainRESCAL(kg.Triples, kg.NumEntities(), kg.NumRelations(), cfg, rng)
	err := m.ReconstructionError(kg.Triples, kg.NumRelations())
	// Untrained baseline.
	m0 := TrainRESCAL(kg.Triples, kg.NumEntities(), kg.NumRelations(), RESCALConfig{Dim: cfg.Dim, LR: 0, Epochs: 0}, rand.New(rand.NewSource(124)))
	err0 := m0.ReconstructionError(kg.Triples, kg.NumRelations())
	if err >= err0 {
		t.Errorf("training should reduce reconstruction error: %v -> %v", err0, err)
	}
}

func TestRESCALRelationAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	kg := dataset.World(8, rng)
	m := TrainRESCAL(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultRESCALConfig(), rng)
	for r := 0; r < kg.NumRelations(); r++ {
		auc := m.RelationAUC(kg.Triples, r, rng, 2000)
		if auc < 0.85 {
			t.Errorf("relation %d AUC=%v, want >= 0.85", r, auc)
		}
	}
}

func TestEvaluateMetricsRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	kg := dataset.World(5, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), TransEConfig{Dim: 4, Margin: 1, LR: 0.05, Epochs: 20}, rng)
	met := EvaluateTransE(m, kg.Triples[:3], kg.Triples)
	if met.MRR < 0 || met.MRR > 1 {
		t.Errorf("MRR out of range: %v", met.MRR)
	}
	for k, v := range met.HitsAt {
		if v < 0 || v > 1 {
			t.Errorf("Hits@%d out of range: %v", k, v)
		}
	}
	if met.HitsAt[10] < met.HitsAt[1] {
		t.Error("Hits@10 must dominate Hits@1")
	}
}

func TestAnalogyQueries(t *testing.T) {
	// "What is the capital of country X?" answered by TransE ranking — the
	// introduction's Paris/France lookup on the synthetic world.
	rng := rand.New(rand.NewSource(127))
	kg := dataset.World(8, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rng)
	correct, total := 0, 0
	for _, tr := range kg.Triples {
		if tr[1] != dataset.RelCapitalOf {
			continue
		}
		total++
		if m.AnswerHead(dataset.RelCapitalOf, tr[2], nil) == tr[0] {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("no capital-of triples")
	}
	if float64(correct)/float64(total) < 0.5 {
		t.Errorf("analogy head queries: %d/%d correct, want >= half", correct, total)
	}
}

func TestAnswerTailExcludes(t *testing.T) {
	rng := rand.New(rand.NewSource(128))
	kg := dataset.World(4, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), TransEConfig{Dim: 8, Margin: 1, LR: 0.05, Epochs: 50}, rng)
	first := m.AnswerTail(0, 0, nil)
	second := m.AnswerTail(0, 0, map[int]bool{first: true})
	if first == second {
		t.Error("excluded entity should not be returned")
	}
}
