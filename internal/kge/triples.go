package kge

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// ParseTriples reads a knowledge graph as whitespace-separated
// "head relation tail" integer-id lines — the `x2vec train transe` input
// format. Blank lines and lines starting with '#' are skipped. Entity and
// relation counts are inferred as max id + 1.
func ParseTriples(r io.Reader) (triples []Triple, numEntities, numRelations int, err error) {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var h, rel, t int
		if _, err := fmt.Sscanf(text, "%d %d %d", &h, &rel, &t); err != nil {
			return nil, 0, 0, fmt.Errorf("kge: triples line %d: %q is not \"head relation tail\"", line, text)
		}
		if h < 0 || rel < 0 || t < 0 {
			return nil, 0, 0, fmt.Errorf("kge: triples line %d: negative id in %q", line, text)
		}
		triples = append(triples, Triple{h, rel, t})
		if h >= numEntities {
			numEntities = h + 1
		}
		if t >= numEntities {
			numEntities = t + 1
		}
		if rel >= numRelations {
			numRelations = rel + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, 0, err
	}
	if len(triples) == 0 {
		return nil, 0, 0, fmt.Errorf("kge: no triples in input")
	}
	return triples, numEntities, numRelations, nil
}

// LoadTriplesFile reads a triples file (see ParseTriples).
func LoadTriplesFile(path string) ([]Triple, int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	return ParseTriples(f)
}
