package kge

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func parseTriplesString(s string) ([]Triple, int, int, error) {
	return ParseTriples(strings.NewReader(s))
}

// TestTransE32UpdateOrderMatchesOracle pins the differential contract of the
// sequential float32 mode: with the same seed it consumes the master RNG
// exactly like the float64 oracle, so both trainers sample the identical
// sequence of (positive, corrupted) update pairs.
func TestTransE32UpdateOrderMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	kg := dataset.World(8, rng)
	const seed = 77

	var oraclePairs, enginePairs [][2]Triple
	cfg64 := DefaultTransEConfig()
	cfg64.Epochs = 5
	cfg64.trace = func(pos, neg Triple) { oraclePairs = append(oraclePairs, [2]Triple{pos, neg}) }
	TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), cfg64, rand.New(rand.NewSource(seed)))

	cfg32 := DefaultTransE32Config()
	cfg32.Epochs = 5
	cfg32.Workers = 1
	cfg32.trace = func(pos, neg Triple) { enginePairs = append(enginePairs, [2]Triple{pos, neg}) }
	if _, err := TrainTransE32(kg.Triples, kg.NumEntities(), kg.NumRelations(), cfg32, seed); err != nil {
		t.Fatalf("TrainTransE32: %v", err)
	}

	if len(oraclePairs) == 0 || len(oraclePairs) != len(enginePairs) {
		t.Fatalf("update counts differ: oracle %d vs engine %d", len(oraclePairs), len(enginePairs))
	}
	for i := range oraclePairs {
		if oraclePairs[i] != enginePairs[i] {
			t.Fatalf("update %d differs: oracle %v vs engine %v", i, oraclePairs[i], enginePairs[i])
		}
	}
}

func TestTransE32SequentialDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	kg := dataset.World(6, rng)
	cfg := DefaultTransE32Config()
	cfg.Epochs = 10
	cfg.Workers = 1
	a, err := TrainTransE32(kg.Triples, kg.NumEntities(), kg.NumRelations(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := TrainTransE32(kg.Triples, kg.NumEntities(), kg.NumRelations(), cfg, 5)
	for i := range a.Entities {
		if math.Float32bits(a.Entities[i]) != math.Float32bits(b.Entities[i]) {
			t.Fatalf("sequential mode not bit-deterministic at entity slot %d", i)
		}
	}
	for i := range a.Relations {
		if math.Float32bits(a.Relations[i]) != math.Float32bits(b.Relations[i]) {
			t.Fatalf("sequential mode not bit-deterministic at relation slot %d", i)
		}
	}
}

// TestTransE32HogwildQualityParity gates the engine path on quality: the
// racy multi-worker trainer must match the float64 oracle's filtered MRR on
// the synthetic world within a small tolerance.
func TestTransE32HogwildQualityParity(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	kg := dataset.World(10, rng)
	train, test := kg.Split(0.15, rng)

	oracle := TrainTransE(train, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rand.New(rand.NewSource(9)))
	metOracle := EvaluateTransE(oracle, test, kg.Triples)

	cfg := DefaultTransE32Config()
	cfg.Workers = 4
	engine, err := TrainTransE32(train, kg.NumEntities(), kg.NumRelations(), cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	metEngine := EvaluateTransE(engine.ToTransE(), test, kg.Triples)

	t.Logf("oracle MRR=%.3f hogwild MRR=%.3f", metOracle.MRR, metEngine.MRR)
	if metEngine.MRR < 0.25 {
		t.Errorf("hogwild MRR=%v, want >= 0.25", metEngine.MRR)
	}
	if metEngine.MRR < metOracle.MRR-0.1 {
		t.Errorf("hogwild MRR=%v trails the oracle %v by more than 0.1", metEngine.MRR, metOracle.MRR)
	}
}

func TestTransE32RejectsBadInput(t *testing.T) {
	cfg := DefaultTransE32Config()
	if _, err := TrainTransE32([]Triple{{0, 0, 0}}, 0, 1, cfg, 1); err == nil {
		t.Error("zero entities should be rejected")
	}
	if _, err := TrainTransE32([]Triple{{0, 0, 5}}, 2, 1, cfg, 1); err == nil {
		t.Error("out-of-range entity should be rejected")
	}
	if _, err := TrainTransE32([]Triple{{0, 3, 1}}, 2, 1, cfg, 1); err == nil {
		t.Error("out-of-range relation should be rejected")
	}
	bad := cfg
	bad.Dim = 0
	if _, err := TrainTransE32([]Triple{{0, 0, 1}}, 2, 1, bad, 1); err == nil {
		t.Error("zero dim should be rejected")
	}
	warm := cfg
	warm.WarmEntities = []float32{1}
	warm.WarmRelations = []float32{1}
	if _, err := TrainTransE32([]Triple{{0, 0, 1}}, 2, 1, warm, 1); err == nil {
		t.Error("mis-shaped warm start should be rejected")
	}
}

func TestTransE32WarmStartSkipsInit(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	kg := dataset.World(6, rng)
	cfg := DefaultTransE32Config()
	cfg.Epochs = 3
	parent, err := TrainTransE32(kg.Triples, kg.NumEntities(), kg.NumRelations(), cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	warm := cfg
	warm.Epochs = 2
	warm.WarmEntities = append([]float32(nil), parent.Entities...)
	warm.WarmRelations = append([]float32(nil), parent.Relations...)
	child, err := TrainTransE32(kg.Triples, kg.NumEntities(), kg.NumRelations(), warm, 12)
	if err != nil {
		t.Fatal(err)
	}
	if child.NumEntities != parent.NumEntities || child.Dim != parent.Dim {
		t.Fatal("warm-started model shape mismatch")
	}
}

func TestMarginStep32ZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	kg := dataset.World(6, rng)
	cfg := DefaultTransE32Config()
	cfg.Epochs = 1
	m, err := TrainTransE32(kg.Triples, kg.NumEntities(), kg.NumRelations(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	pos := kg.Triples[0]
	neg := Triple{pos[0], pos[1], (pos[2] + 1) % kg.NumEntities()}
	if allocs := testing.AllocsPerRun(100, func() {
		m.marginStep32(pos, neg, 1, 0.01)
	}); allocs != 0 {
		t.Errorf("marginStep32 allocates %v times per run, want 0", allocs)
	}
}

func TestEvaluateTransEWorkersMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	kg := dataset.World(8, rng)
	train, test := kg.Split(0.2, rng)
	m := TrainTransE(train, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rng)
	seq := EvaluateTransEWorkers(m, test, kg.Triples, 1)
	for _, workers := range []int{2, 4, 0} {
		par := EvaluateTransEWorkers(m, test, kg.Triples, workers)
		if math.Float64bits(seq.MRR) != math.Float64bits(par.MRR) {
			t.Fatalf("workers=%d: MRR %v differs from sequential %v", workers, par.MRR, seq.MRR)
		}
		for k, v := range seq.HitsAt {
			if math.Float64bits(v) != math.Float64bits(par.HitsAt[k]) {
				t.Fatalf("workers=%d: Hits@%d differs", workers, k)
			}
		}
	}
}

func TestAnswerTailKMatchesAnswerTail(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	kg := dataset.World(8, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rng)
	exclude := map[int]bool{2: true}
	for h := 0; h < 4; h++ {
		for r := 0; r < kg.NumRelations(); r++ {
			want := m.AnswerTail(h, r, exclude)
			got, err := m.AnswerTailK(h, r, 3, 4, exclude)
			if err != nil {
				t.Fatalf("AnswerTailK(%d,%d): %v", h, r, err)
			}
			if len(got) == 0 || got[0].Entity != want {
				t.Fatalf("AnswerTailK(%d,%d) top-1 %v, AnswerTail says %d", h, r, got, want)
			}
			for i := 1; i < len(got); i++ {
				if got[i-1].Score > got[i].Score {
					t.Fatalf("AnswerTailK results not sorted ascending: %v", got)
				}
			}
		}
	}
	wantH := m.AnswerHead(0, 1, nil)
	gotH, err := m.AnswerHeadK(0, 1, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotH) == 0 || gotH[0].Entity != wantH {
		t.Fatalf("AnswerHeadK top-1 %v, AnswerHead says %d", gotH, wantH)
	}
}

func TestTopTailsDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(308))
	kg := dataset.World(8, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rng)
	v := m.View()
	base, err := v.TopTails(1, 0, 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		got, err := v.TopTails(1, 0, 5, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Fatalf("workers=%d: length %d vs %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i].Entity != base[i].Entity || math.Float64bits(got[i].Score) != math.Float64bits(base[i].Score) {
				t.Fatalf("workers=%d: result %d differs: %v vs %v", workers, i, got[i], base[i])
			}
		}
	}
}

func TestTopTailsRejectsOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(309))
	kg := dataset.World(5, rng)
	m := TrainTransE(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultTransEConfig(), rng)
	v := m.View()
	if _, err := v.TopTails(-1, 0, 3, 1, nil); err == nil {
		t.Error("negative entity should be rejected")
	}
	if _, err := v.TopTails(0, kg.NumRelations(), 3, 1, nil); err == nil {
		t.Error("out-of-range relation should be rejected")
	}
	if _, err := v.TopTails(0, 0, 0, 1, nil); err == nil {
		t.Error("non-positive k should be rejected")
	}
}

func TestRESCALViewTopTailsAgreesWithScore(t *testing.T) {
	rng := rand.New(rand.NewSource(310))
	kg := dataset.World(6, rng)
	m := TrainRESCAL(kg.Triples, kg.NumEntities(), kg.NumRelations(), DefaultRESCALConfig(), rng)
	v := m.View()
	got, err := v.TopTails(0, 0, kg.NumEntities(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != kg.NumEntities() {
		t.Fatalf("want all %d candidates, got %d", kg.NumEntities(), len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Score < got[i].Score {
			t.Fatalf("rescal ranking should be descending: %v", got)
		}
	}
	for _, p := range got[:3] {
		want := m.Score(0, 0, p.Entity)
		if math.Abs(p.Score-want) > 1e-9 {
			t.Fatalf("entity %d: view score %v vs model score %v", p.Entity, p.Score, want)
		}
	}
}

func TestParseTriples(t *testing.T) {
	in := "# comment\n0 0 1\n\n1 0 2\n2 1 0\n"
	triples, ne, nr, err := parseTriplesString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 3 || ne != 3 || nr != 2 {
		t.Fatalf("got %d triples, %d entities, %d relations", len(triples), ne, nr)
	}
	if _, _, _, err := parseTriplesString("0 0\n"); err == nil {
		t.Error("malformed line should be an error")
	}
	if _, _, _, err := parseTriplesString("0 -1 2\n"); err == nil {
		t.Error("negative id should be an error")
	}
	if _, _, _, err := parseTriplesString("# only comments\n"); err == nil {
		t.Error("empty input should be an error")
	}
}
