package kge

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Prediction is one ranked link-prediction candidate.
type Prediction struct {
	Entity int     `json:"entity"`
	Score  float64 `json:"score"`
}

// KGView is a storage-agnostic scoring view over a knowledge-graph
// embedding: the serving layer wraps rows read straight out of a (possibly
// quantised, possibly mmap'ed) model file, the in-memory trainers wrap
// their own parameter matrices, and the top-k answering path underneath
// /link-predict is the same either way. Entity and Relation write row i
// into dst (len ≥ Dim for entities; ≥ RelWidth for relations).
type KGView struct {
	// Method selects the scoring rule: "transe" ranks by ‖h + r − t‖
	// ascending (lower is better), "rescal" by the bilinear form xₕᵀ·B_r·xₜ
	// descending (higher is better).
	Method       string
	NumEntities  int
	NumRelations int
	Dim          int
	Entity       func(i int, dst []float64)
	Relation     func(i int, dst []float64)
}

// RelWidth returns the relation row width: Dim for translations, Dim² for
// bilinear mixing matrices.
func (v *KGView) RelWidth() int {
	if v.Method == "rescal" {
		return v.Dim * v.Dim
	}
	return v.Dim
}

// TopTails ranks every candidate tail for (h, r, ?) and returns the k best,
// skipping entities for which exclude returns true (nil excludes nothing).
// Candidate scores are computed independently per entity across a
// linalg.ParallelForWorkers pool (workers ≤ 0 = GOMAXPROCS) and selected
// sequentially, so the result is identical for every pool size.
func (v *KGView) TopTails(h, r, k, workers int, exclude func(int) bool) ([]Prediction, error) {
	if err := v.check(h, r); err != nil {
		return nil, err
	}
	return v.top(h, r, k, workers, exclude, true)
}

// TopHeads ranks every candidate head for (?, r, t) analogously.
func (v *KGView) TopHeads(r, t, k, workers int, exclude func(int) bool) ([]Prediction, error) {
	if err := v.check(t, r); err != nil {
		return nil, err
	}
	return v.top(t, r, k, workers, exclude, false)
}

func (v *KGView) check(e, r int) error {
	if e < 0 || e >= v.NumEntities {
		return fmt.Errorf("kge: entity %d outside [0,%d)", e, v.NumEntities)
	}
	if r < 0 || r >= v.NumRelations {
		return fmt.Errorf("kge: relation %d outside [0,%d)", r, v.NumRelations)
	}
	switch v.Method {
	case "transe", "rescal":
		return nil
	}
	return fmt.Errorf("kge: unknown scoring method %q", v.Method)
}

// top scores all candidates on one side of (anchor, rel, ?) / (?, rel,
// anchor) and selects the best k. tails selects which side is ranked.
func (v *KGView) top(anchor, rel, k, workers int, exclude func(int) bool, tails bool) ([]Prediction, error) {
	if k <= 0 {
		return nil, fmt.Errorf("kge: top-k size %d must be positive", k)
	}
	if k > v.NumEntities {
		k = v.NumEntities
	}
	avec := make([]float64, v.Dim)
	v.Entity(anchor, avec)
	rvec := make([]float64, v.RelWidth())
	v.Relation(rel, rvec)
	// RESCAL folds the anchor side into the mixing matrix once: ranking
	// tails needs xₐᵀ·B_r, ranking heads needs B_r·xₜ; either way each
	// candidate then costs one Dim-length dot product, same as TransE.
	var fold []float64
	if v.Method == "rescal" {
		fold = make([]float64, v.Dim)
		for i := 0; i < v.Dim; i++ {
			var s float64
			for j := 0; j < v.Dim; j++ {
				if tails {
					s += avec[j] * rvec[j*v.Dim+i] // (xₐᵀ·B_r)[i]
				} else {
					s += rvec[i*v.Dim+j] * avec[j] // (B_r·xₜ)[i]
				}
			}
			fold[i] = s
		}
	}
	scores := make([]float64, v.NumEntities)
	if workers <= 0 {
		workers = linalg.DefaultWorkers()
	}
	if workers > v.NumEntities {
		workers = v.NumEntities
	}
	// Contiguous chunks, one per pool slot, each with its own candidate-row
	// scratch; every score has a unique writer, so the fill is deterministic
	// regardless of scheduling.
	linalg.ParallelForWorkers(workers, workers, func(c int) {
		lo := c * v.NumEntities / workers
		hi := (c + 1) * v.NumEntities / workers
		cvec := make([]float64, v.Dim)
		for e := lo; e < hi; e++ {
			v.Entity(e, cvec)
			if v.Method == "rescal" {
				var s float64
				for i, x := range cvec {
					s += fold[i] * x
				}
				scores[e] = s
				continue
			}
			var s float64
			if tails {
				for i, x := range cvec {
					d := avec[i] + rvec[i] - x
					s += d * d
				}
			} else {
				for i, x := range cvec {
					d := x + rvec[i] - avec[i]
					s += d * d
				}
			}
			scores[e] = math.Sqrt(s)
		}
	})
	better := func(a, b Prediction) bool {
		if a.Score != b.Score {
			if v.Method == "rescal" {
				return a.Score > b.Score
			}
			return a.Score < b.Score
		}
		return a.Entity < b.Entity // deterministic tie-break
	}
	// k-bounded insertion selection: O(n·k) with tiny k beats sorting all n
	// candidate scores per query.
	best := make([]Prediction, 0, k)
	for e, s := range scores {
		if exclude != nil && exclude(e) {
			continue
		}
		p := Prediction{Entity: e, Score: s}
		if len(best) == k && !better(p, best[k-1]) {
			continue
		}
		pos := len(best)
		if len(best) < k {
			best = append(best, p)
		} else {
			pos = k - 1
		}
		for pos > 0 && better(p, best[pos-1]) {
			best[pos] = best[pos-1]
			pos--
		}
		best[pos] = p
	}
	return best, nil
}

// View wraps the float64 model for serving-path answering.
func (m *TransE) View() *KGView {
	dim := 0
	if len(m.Entities) > 0 {
		dim = len(m.Entities[0])
	}
	return &KGView{
		Method:       "transe",
		NumEntities:  len(m.Entities),
		NumRelations: len(m.Relations),
		Dim:          dim,
		Entity:       func(i int, dst []float64) { copy(dst, m.Entities[i]) },
		Relation:     func(i int, dst []float64) { copy(dst, m.Relations[i]) },
	}
}

// View wraps the float32 engine model for serving-path answering.
func (m *TransE32) View() *KGView {
	widen := func(src []float32, dst []float64) {
		for i, x := range src {
			dst[i] = float64(x)
		}
	}
	return &KGView{
		Method:       "transe",
		NumEntities:  m.NumEntities,
		NumRelations: m.NumRelations,
		Dim:          m.Dim,
		Entity:       func(i int, dst []float64) { widen(m.Entities[i*m.Dim:(i+1)*m.Dim], dst) },
		Relation:     func(i int, dst []float64) { widen(m.Relations[i*m.Dim:(i+1)*m.Dim], dst) },
	}
}

// View wraps the bilinear model for serving-path answering.
func (m *RESCAL) View() *KGView {
	return &KGView{
		Method:       "rescal",
		NumEntities:  m.X.Rows,
		NumRelations: len(m.B),
		Dim:          m.X.Cols,
		Entity:       func(i int, dst []float64) { copy(dst, m.X.Row(i)) },
		Relation:     func(i int, dst []float64) { copy(dst, m.B[i].Data) },
	}
}

// AnswerTailK is the batch form of AnswerTail: the k best tails for
// (h, r, ?) under the same exclusion semantics (h itself plus the exclude
// set), computed over the worker pool.
func (m *TransE) AnswerTailK(h, r, k, workers int, exclude map[int]bool) ([]Prediction, error) {
	return m.View().TopTails(h, r, k, workers, func(t int) bool { return t == h || exclude[t] })
}

// AnswerHeadK is the batch form of AnswerHead.
func (m *TransE) AnswerHeadK(r, t, k, workers int, exclude map[int]bool) ([]Prediction, error) {
	return m.View().TopHeads(r, t, k, workers, func(h int) bool { return h == t || exclude[h] })
}
