// Package kge implements the knowledge-graph embedding algorithms of
// Section 2.3: TransE (relations as translations of the latent space,
// trained with a margin ranking loss and negative sampling) and RESCAL
// (relations as bilinear forms, trained by full-gradient descent on the
// reconstruction objective ‖X·B_R·Xᵀ − A_R‖²).
package kge

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/linalg"
)

// Triple is a (head, relation, tail) fact.
type Triple = [3]int

// TransEConfig controls TransE training.
type TransEConfig struct {
	Dim    int
	Margin float64
	LR     float64
	Epochs int
	// UnfilteredNegatives restores the original sampler, which drew the
	// corrupting entity blindly: the "negative" could equal the positive
	// triple itself or another known fact, so the margin step pushed TRUE
	// facts apart (false negatives). Kept only as the regression baseline —
	// see TestFilteredNegativesBeatUnfiltered.
	UnfilteredNegatives bool

	// trace, when set, observes every sampled (positive, corrupted) update
	// pair in order — the differential suite's hook for pinning the float32
	// engine's sequential mode to this oracle's update order.
	trace func(pos, neg Triple)
}

// DefaultTransEConfig returns small-scale defaults.
func DefaultTransEConfig() TransEConfig {
	return TransEConfig{Dim: 16, Margin: 1, LR: 0.05, Epochs: 400}
}

// TransE holds trained entity and relation vectors with the scoring
// convention score(h,r,t) = ‖h + r − t‖₂ (lower is better).
type TransE struct {
	Entities  [][]float64
	Relations [][]float64
}

// TrainTransE fits TransE on the triples.
func TrainTransE(triples []Triple, numEntities, numRelations int, cfg TransEConfig, rng *rand.Rand) *TransE {
	m := &TransE{
		Entities:  randomVectors(numEntities, cfg.Dim, rng),
		Relations: randomVectors(numRelations, cfg.Dim, rng),
	}
	for _, e := range m.Entities {
		normalize(e)
	}
	for _, r := range m.Relations {
		normalize(r)
	}
	// The known-triple set is built once up front: corrupted triples are
	// resampled until they are genuinely false (not the positive itself,
	// not any training fact), so the margin loss never pushes true facts
	// apart. Bordes et al. call these corrupted-but-true samples the reason
	// for "filtered" evaluation; filtering them during *training* is what
	// the daemon-facing models need to not regress on dense KGs.
	known := make(map[Triple]bool, len(triples))
	for _, t := range triples {
		known[t] = true
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, t := range triples {
			corrupt, ok := corruptTriple(t, numEntities, known, cfg.UnfilteredNegatives, rng)
			if !ok {
				continue // no false triple found (degenerate dense KG); skip
			}
			if cfg.trace != nil {
				cfg.trace(t, corrupt)
			}
			m.marginStep(t, corrupt, cfg)
		}
		// Re-normalise entities (the original algorithm's constraint).
		for _, e := range m.Entities {
			normalize(e)
		}
	}
	return m
}

// corruptResampleCap bounds the rejection loop on KGs so dense that almost
// every corruption is a known fact.
const corruptResampleCap = 64

// randInts is the sampling surface corruption needs: satisfied by both the
// oracle's *rand.Rand and the Hogwild workers' per-shard sgns.FastRand.
type randInts interface {
	Intn(n int) int
}

// corruptTriple replaces the head or tail of t with a random entity. In
// filtered mode (the default) it resamples until the corruption differs
// from the positive and is not a known triple; unfiltered mode reproduces
// the legacy single blind draw.
func corruptTriple(t Triple, numEntities int, known map[Triple]bool, unfiltered bool, rng randInts) (Triple, bool) {
	for tries := 0; tries < corruptResampleCap; tries++ {
		corrupt := t
		if rng.Intn(2) == 0 {
			corrupt[0] = rng.Intn(numEntities)
		} else {
			corrupt[2] = rng.Intn(numEntities)
		}
		if unfiltered {
			return corrupt, true
		}
		if corrupt != t && !known[corrupt] {
			return corrupt, true
		}
	}
	return t, false
}

// Score returns ‖h + r − t‖ (lower means more plausible).
func (m *TransE) Score(h, r, t int) float64 {
	var s float64
	eh, er, et := m.Entities[h], m.Relations[r], m.Entities[t]
	for d := range eh {
		diff := eh[d] + er[d] - et[d]
		s += diff * diff
	}
	return math.Sqrt(s)
}

func (m *TransE) marginStep(pos, neg Triple, cfg TransEConfig) {
	loss := cfg.Margin + m.Score(pos[0], pos[1], pos[2]) - m.Score(neg[0], neg[1], neg[2])
	if loss <= 0 {
		return
	}
	// Gradient of ‖h+r−t‖ wrt components is (h+r−t)/‖·‖.
	upd := func(t Triple, sign float64) {
		eh, er, et := m.Entities[t[0]], m.Relations[t[1]], m.Entities[t[2]]
		norm := m.Score(t[0], t[1], t[2])
		if norm < 1e-9 {
			return
		}
		for d := range eh {
			g := sign * cfg.LR * (eh[d] + er[d] - et[d]) / norm
			eh[d] -= g
			er[d] -= g
			et[d] += g
		}
	}
	upd(pos, 1)  // decrease positive score
	upd(neg, -1) // increase negative score
}

// RankMetrics summarises link-prediction quality.
type RankMetrics struct {
	MRR    float64
	HitsAt map[int]float64
}

// EvaluateTransE ranks the true tail (and head) of each test triple against
// all entity substitutions, filtering known triples, and returns MRR and
// Hits@{1,3,10}.
func EvaluateTransE(m *TransE, test, known []Triple) RankMetrics {
	return EvaluateTransEWorkers(m, test, known, 1)
}

// EvaluateTransEWorkers is EvaluateTransE over a linalg.ParallelForWorkers
// pool (0 = GOMAXPROCS): test triples rank independently, so each one is a
// work item writing its two ranks into fixed slots, and the sequential
// aggregation over those slots makes the result bit-identical to the
// workers=1 path for every pool size (pinned by
// TestEvaluateTransEWorkersMatchesSequential).
func EvaluateTransEWorkers(m *TransE, test, known []Triple, workers int) RankMetrics {
	knownSet := map[Triple]bool{}
	for _, t := range known {
		knownSet[t] = true
	}
	ranks := make([]int, 2*len(test))
	linalg.ParallelForWorkers(workers, len(test), func(i int) {
		ranks[2*i] = filteredRank(m, test[i], 0, knownSet)
		ranks[2*i+1] = filteredRank(m, test[i], 2, knownSet)
	})
	met := RankMetrics{HitsAt: map[int]float64{1: 0, 3: 0, 10: 0}}
	for _, r := range ranks {
		met.MRR += 1 / float64(r)
		for k := range met.HitsAt {
			if r <= k {
				met.HitsAt[k]++
			}
		}
	}
	n := float64(len(ranks))
	if n > 0 {
		met.MRR /= n
		for k := range met.HitsAt {
			met.HitsAt[k] /= n
		}
	}
	return met
}

// filteredRank ranks the true entity on one side of t (0 = head, 2 = tail)
// against all substitutions, skipping other known facts.
func filteredRank(m *TransE, t Triple, side int, knownSet map[Triple]bool) int {
	trueEnt := t[side]
	numEntities := len(m.Entities)
	type scored struct {
		ent   int
		score float64
	}
	var cands []scored
	for e := 0; e < numEntities; e++ {
		cand := t
		cand[side] = e
		if e != trueEnt && knownSet[cand] {
			continue // filtered setting
		}
		cands = append(cands, scored{e, m.Score(cand[0], cand[1], cand[2])})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
	for rank, c := range cands {
		if c.ent == trueEnt {
			return rank + 1
		}
	}
	return len(cands) // unreachable: the true entity is never filtered out
}

// TranslationConsistency measures how well a relation behaves as a single
// translation: the mean pairwise distance between (tail − head) difference
// vectors of its triples. Small values mean Paris−France ≈ Santiago−Chile.
func (m *TransE) TranslationConsistency(triples []Triple, relation int) float64 {
	var diffs [][]float64
	for _, t := range triples {
		if t[1] != relation {
			continue
		}
		d := make([]float64, len(m.Entities[0]))
		for i := range d {
			d[i] = m.Entities[t[2]][i] - m.Entities[t[0]][i]
		}
		diffs = append(diffs, d)
	}
	if len(diffs) < 2 {
		return 0
	}
	var total float64
	var count int
	for i := 0; i < len(diffs); i++ {
		for j := i + 1; j < len(diffs); j++ {
			var s float64
			for d := range diffs[i] {
				x := diffs[i][d] - diffs[j][d]
				s += x * x
			}
			total += math.Sqrt(s)
			count++
		}
	}
	return total / float64(count)
}

func randomVectors(n, d int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64() * 0.1
		}
	}
	return out
}

func normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	s = math.Sqrt(s)
	for i := range v {
		v[i] /= s
	}
}

// RESCAL holds the bilinear factorisation: entity matrix X and one mixing
// matrix B per relation, with score(h,r,t) = x_hᵀ B_r x_t ≈ A_r[h][t].
type RESCAL struct {
	X *linalg.Matrix
	B []*linalg.Matrix
}

// RESCALConfig controls RESCAL training.
type RESCALConfig struct {
	Dim    int
	LR     float64
	Epochs int
}

// DefaultRESCALConfig returns small-scale defaults.
func DefaultRESCALConfig() RESCALConfig { return RESCALConfig{Dim: 8, LR: 0.01, Epochs: 500} }

// TrainRESCAL fits the factorisation by full-gradient descent on
// Σ_r ‖X·B_r·Xᵀ − A_r‖²_F.
func TrainRESCAL(triples []Triple, numEntities, numRelations int, cfg RESCALConfig, rng *rand.Rand) *RESCAL {
	m := &RESCAL{X: linalg.NewMatrix(numEntities, cfg.Dim)}
	for i := range m.X.Data {
		m.X.Data[i] = rng.NormFloat64() * 0.1
	}
	adj := make([]*linalg.Matrix, numRelations)
	for r := range adj {
		adj[r] = linalg.NewMatrix(numEntities, numEntities)
	}
	for _, t := range triples {
		adj[t[1]].Set(t[0], t[2], 1)
	}
	for r := 0; r < numRelations; r++ {
		b := linalg.NewMatrix(cfg.Dim, cfg.Dim)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64() * 0.1
		}
		m.B = append(m.B, b)
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		dX := linalg.NewMatrix(numEntities, cfg.Dim)
		for r := 0; r < numRelations; r++ {
			e := m.X.Mul(m.B[r]).Mul(m.X.T()).Sub(adj[r]) // residual
			dB := m.X.T().Mul(e).Mul(m.X)
			dXr := e.Mul(m.X.Mul(m.B[r].T())).Add(e.T().Mul(m.X.Mul(m.B[r])))
			dX = dX.Add(dXr)
			for i := range m.B[r].Data {
				m.B[r].Data[i] -= cfg.LR * 2 * dB.Data[i]
			}
		}
		for i := range m.X.Data {
			m.X.Data[i] -= cfg.LR * 2 * dX.Data[i]
		}
	}
	return m
}

// Score returns x_hᵀ B_r x_t.
func (m *RESCAL) Score(h, r, t int) float64 {
	xh := m.X.Row(h)
	xt := m.X.Row(t)
	bxt := m.B[r].MulVec(xt)
	return linalg.Dot(xh, bxt)
}

// ReconstructionError returns Σ_r ‖X·B_r·Xᵀ − A_r‖_F for the given triples.
func (m *RESCAL) ReconstructionError(triples []Triple, numRelations int) float64 {
	n := m.X.Rows
	adj := make([]*linalg.Matrix, numRelations)
	for r := range adj {
		adj[r] = linalg.NewMatrix(n, n)
	}
	for _, t := range triples {
		adj[t[1]].Set(t[0], t[2], 1)
	}
	var total float64
	for r := 0; r < numRelations; r++ {
		total += linalg.Frobenius(m.X.Mul(m.B[r]).Mul(m.X.T()).Sub(adj[r]))
	}
	return total
}

// RelationAUC estimates, for one relation, the probability that a random
// positive pair scores above a random negative pair (1 = perfect bilinear
// reconstruction).
func (m *RESCAL) RelationAUC(triples []Triple, relation int, rng *rand.Rand, samples int) float64 {
	var pos []Triple
	posSet := map[[2]int]bool{}
	for _, t := range triples {
		if t[1] == relation {
			pos = append(pos, t)
			posSet[[2]int{t[0], t[2]}] = true
		}
	}
	if len(pos) == 0 {
		return 0.5
	}
	n := m.X.Rows
	wins, total := 0.0, 0.0
	for s := 0; s < samples; s++ {
		p := pos[rng.Intn(len(pos))]
		h, t := rng.Intn(n), rng.Intn(n)
		if posSet[[2]int{h, t}] {
			continue
		}
		sp := m.Score(p[0], relation, p[2])
		sn := m.Score(h, relation, t)
		switch {
		case sp > sn:
			wins++
		case sp == sn:
			wins += 0.5
		}
		total++
	}
	if total == 0 {
		return 0.5
	}
	return wins / total
}

// AnswerTail answers the analogy-style query (head, relation, ?) by ranking
// all entities under the TransE score — the "capital of X" lookup of the
// paper's introduction. Entities in exclude are skipped.
func (m *TransE) AnswerTail(h, r int, exclude map[int]bool) int {
	best, bestScore := -1, math.Inf(1)
	for t := range m.Entities {
		if t == h || exclude[t] {
			continue
		}
		if s := m.Score(h, r, t); s < bestScore {
			bestScore = s
			best = t
		}
	}
	return best
}

// AnswerHead answers (?, relation, tail) analogously.
func (m *TransE) AnswerHead(r, t int, exclude map[int]bool) int {
	best, bestScore := -1, math.Inf(1)
	for h := range m.Entities {
		if h == t || exclude[h] {
			continue
		}
		if s := m.Score(h, r, t); s < bestScore {
			bestScore = s
			best = h
		}
	}
	return best
}
