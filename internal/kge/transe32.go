package kge

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/linalg/f32"
	"repro/internal/sgns"
)

// TransE32 is the engine-grade TransE trainer: flat row-major float32
// parameter matrices updated through the fused kernels of
// internal/linalg/f32, following the SGNS float32 engine convention
// (internal/sgns/sgns32.go). The float64 TrainTransE stays the quality and
// determinism oracle; this is the speed path behind `x2vec train transe
// -f32` and the serving models.
type TransE32 struct {
	Dim          int
	NumEntities  int
	NumRelations int
	Entities     []float32 // NumEntities × Dim, row-major
	Relations    []float32 // NumRelations × Dim, row-major
}

// TransE32Config controls the float32 trainer.
type TransE32Config struct {
	Dim    int
	Margin float32
	LR     float32
	Epochs int
	// Workers caps the Hogwild pool: each epoch is sharded into Workers
	// interleaved slices of the triple list, raced lock-free over the shared
	// parameter matrices with per-worker splitmix64 RNG streams. Workers ≤ 1
	// runs the bit-deterministic sequential mode, which consumes the master
	// RNG exactly like the float64 oracle — same negative-sampling sequence,
	// same update order (pinned by TestTransE32UpdateOrderMatchesOracle).
	Workers int
	// UnfilteredNegatives restores the legacy blind corruption draw; see
	// TransEConfig.
	UnfilteredNegatives bool
	// WarmEntities/WarmRelations warm-start training from a parent model's
	// parameters (row-major, NumEntities×Dim and NumRelations×Dim). Both
	// must be set together; the random init (and its RNG draws) is skipped,
	// mirroring the SGNS fine-tune convention.
	WarmEntities  []float32
	WarmRelations []float32

	// trace, when set, observes every sampled (positive, corrupted) update
	// pair of the sequential mode in order — the hook the differential suite
	// uses to pin the Workers:1 update order against the float64 oracle.
	trace func(pos, neg Triple)
}

// DefaultTransE32Config mirrors DefaultTransEConfig.
func DefaultTransE32Config() TransE32Config {
	return TransE32Config{Dim: 16, Margin: 1, LR: 0.05, Epochs: 400}
}

// TrainTransE32 fits TransE in float32. The seed drives a master RNG that
// (like the SGNS engine) is consumed identically for every worker count:
// init draws first, then either the sequential sampling stream (Workers ≤ 1)
// or one splitmix64 seed per epoch shard.
func TrainTransE32(triples []Triple, numEntities, numRelations int, cfg TransE32Config, seed int64) (*TransE32, error) {
	if numEntities <= 0 || numRelations <= 0 {
		return nil, fmt.Errorf("kge: transe32 needs positive entity/relation counts, got %d/%d", numEntities, numRelations)
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("kge: transe32 dimension %d must be positive", cfg.Dim)
	}
	if cfg.Epochs < 0 {
		return nil, fmt.Errorf("kge: transe32 epochs %d must be non-negative", cfg.Epochs)
	}
	for _, t := range triples {
		if t[0] < 0 || t[0] >= numEntities || t[2] < 0 || t[2] >= numEntities {
			return nil, fmt.Errorf("kge: triple %v entity outside [0,%d)", t, numEntities)
		}
		if t[1] < 0 || t[1] >= numRelations {
			return nil, fmt.Errorf("kge: triple %v relation outside [0,%d)", t, numRelations)
		}
	}
	d := cfg.Dim
	m := &TransE32{
		Dim:          d,
		NumEntities:  numEntities,
		NumRelations: numRelations,
		Entities:     make([]float32, numEntities*d),
		Relations:    make([]float32, numRelations*d),
	}
	master := rand.New(rand.NewSource(seed))
	if cfg.WarmEntities != nil || cfg.WarmRelations != nil {
		if len(cfg.WarmEntities) != len(m.Entities) || len(cfg.WarmRelations) != len(m.Relations) {
			return nil, fmt.Errorf("kge: warm start shapes %d/%d, want %d/%d",
				len(cfg.WarmEntities), len(cfg.WarmRelations), len(m.Entities), len(m.Relations))
		}
		copy(m.Entities, cfg.WarmEntities)
		copy(m.Relations, cfg.WarmRelations)
	} else {
		// Same draw order as the oracle's randomVectors: entities row by
		// row, then relations, one NormFloat64 per element.
		for i := range m.Entities {
			m.Entities[i] = float32(master.NormFloat64() * 0.1)
		}
		for i := range m.Relations {
			m.Relations[i] = float32(master.NormFloat64() * 0.1)
		}
		for i := 0; i < numEntities; i++ {
			renormRow32(m.Entities[i*d : (i+1)*d])
		}
		for i := 0; i < numRelations; i++ {
			renormRow32(m.Relations[i*d : (i+1)*d])
		}
	}
	known := make(map[Triple]bool, len(triples))
	for _, t := range triples {
		known[t] = true
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if workers <= 1 {
			for _, t := range triples {
				corrupt, ok := corruptTriple(t, numEntities, known, cfg.UnfilteredNegatives, master)
				if !ok {
					continue
				}
				if cfg.trace != nil {
					cfg.trace(t, corrupt)
				}
				m.marginStep32(t, corrupt, cfg.Margin, cfg.LR)
			}
		} else {
			// Hogwild epoch sharding: worker w owns triples w, w+workers, …
			// with its own splitmix64 stream seeded from the master RNG.
			// Shard steps race on the shared matrices (see kernels_race.go
			// for what -race builds see).
			seeds := make([]uint64, workers)
			for w := range seeds {
				seeds[w] = uint64(master.Int63())
			}
			linalg.ParallelForWorkers(workers, workers, func(w int) {
				rng := sgns.NewFastRand(seeds[w])
				for i := w; i < len(triples); i += workers {
					t := triples[i]
					corrupt, ok := corruptTriple(t, numEntities, known, cfg.UnfilteredNegatives, rng)
					if !ok {
						continue
					}
					m.marginStep32(t, corrupt, cfg.Margin, cfg.LR)
				}
			})
		}
		// Re-normalise entities (the algorithm's per-epoch constraint); the
		// epoch barrier above means rows are no longer contended.
		linalg.ParallelForWorkers(workers, numEntities, func(i int) {
			renormRow32(m.Entities[i*d : (i+1)*d])
		})
	}
	return m, nil
}

// marginStep32 is the fused float32 margin-ranking step. It mirrors the
// float64 oracle exactly: the loss gate uses both pre-update scores, the
// positive triple is pushed together first, and the negative gradient is
// scaled by the score recomputed AFTER the positive step (the two triples
// share rows).
//
//x2vec:hotpath
func (m *TransE32) marginStep32(pos, neg Triple, margin, lr float32) {
	d := m.Dim
	ph := m.Entities[pos[0]*d : pos[0]*d+d]
	pr := m.Relations[pos[1]*d : pos[1]*d+d]
	pt := m.Entities[pos[2]*d : pos[2]*d+d]
	nh := m.Entities[neg[0]*d : neg[0]*d+d]
	nr := m.Relations[neg[1]*d : neg[1]*d+d]
	nt := m.Entities[neg[2]*d : neg[2]*d+d]
	sp := sqrt32(tripleNormSq32(ph, pr, pt))
	sn := sqrt32(tripleNormSq32(nh, nr, nt))
	if margin+sp-sn <= 0 {
		return
	}
	if sp >= 1e-9 {
		tripleStep32(lr/sp, ph, pr, pt)
	}
	if sn2 := sqrt32(tripleNormSq32(nh, nr, nt)); sn2 >= 1e-9 {
		tripleStep32(-lr/sn2, nh, nr, nt)
	}
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// renormRow32 scales row to unit L2 norm (no-op for a zero row).
func renormRow32(row []float32) {
	s := f32.Dot(row, row)
	if s == 0 {
		return
	}
	f32.Scale(1/sqrt32(s), row)
}

// Score returns ‖h + r − t‖ under the float32 parameters.
func (m *TransE32) Score(h, r, t int) float64 {
	d := m.Dim
	return math.Sqrt(float64(tripleNormSq32(
		m.Entities[h*d:h*d+d], m.Relations[r*d:r*d+d], m.Entities[t*d:t*d+d])))
}

// ToTransE widens the parameters to the float64 model shape, so the oracle
// evaluation and answering paths apply unchanged to engine-trained models.
func (m *TransE32) ToTransE() *TransE {
	out := &TransE{
		Entities:  make([][]float64, m.NumEntities),
		Relations: make([][]float64, m.NumRelations),
	}
	d := m.Dim
	for i := range out.Entities {
		row := make([]float64, d)
		for j, x := range m.Entities[i*d : (i+1)*d] {
			row[j] = float64(x)
		}
		out.Entities[i] = row
	}
	for i := range out.Relations {
		row := make([]float64, d)
		for j, x := range m.Relations[i*d : (i+1)*d] {
			row[j] = float64(x)
		}
		out.Relations[i] = row
	}
	return out
}
