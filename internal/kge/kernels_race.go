//go:build race

package kge

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Race-detector builds route every shared float32 parameter access of the
// Hogwild TransE trainer through relaxed (load/store, not read-modify-write)
// atomics on the bit patterns, mirroring internal/sgns/kernels_race.go. The
// fused kernels of internal/linalg/f32 are replaced by scalar loops over
// these accessors: slower, but `go test -race` observes a synchronised
// program while normal builds keep the unrolled kernels.

func ld32(s []float32, i int) float32 {
	return math.Float32frombits(atomic.LoadUint32((*uint32)(unsafe.Pointer(&s[i]))))
}

func st32(s []float32, i int, v float32) {
	atomic.StoreUint32((*uint32)(unsafe.Pointer(&s[i])), math.Float32bits(v))
}

func tripleNormSq32(h, r, t []float32) float32 {
	var s float32
	for i := range h {
		d := ld32(h, i) + ld32(r, i) - ld32(t, i)
		s += d * d
	}
	return s
}

func tripleStep32(g float32, h, r, t []float32) {
	for i := range h {
		g0 := g * (ld32(h, i) + ld32(r, i) - ld32(t, i))
		st32(h, i, ld32(h, i)-g0)
		st32(r, i, ld32(r, i)-g0)
		st32(t, i, ld32(t, i)+g0)
	}
}

func scale32(alpha float32, x []float32) {
	for i := range x {
		st32(x, i, ld32(x, i)*alpha)
	}
}
