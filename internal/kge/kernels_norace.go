//go:build !race

package kge

import "repro/internal/linalg/f32"

// Float32 shared-parameter kernels of the Hogwild TransE trainer, normal
// builds: the plain fused loops of internal/linalg/f32. Concurrent epoch
// shards race on individual float32 words of the entity/relation matrices —
// last writer wins, statistically benign (the Hogwild scheme). Under -race
// the versions in kernels_race.go replace these with relaxed-atomic scalar
// loops so the detector sees a synchronised program.

func ld32(s []float32, i int) float32 { return s[i] }

func st32(s []float32, i int, v float32) { s[i] = v }

func tripleNormSq32(h, r, t []float32) float32 { return f32.TripleNormSq(h, r, t) }

func tripleStep32(g float32, h, r, t []float32) { f32.TripleStep(g, h, r, t) }

func scale32(alpha float32, x []float32) { f32.Scale(alpha, x) }
