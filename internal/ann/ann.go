// Package ann implements sign-random-projection locality-sensitive hashing
// over a dense embedding matrix — the sublinear answer to "what is similar
// to g?" once graph similarity has become vector similarity.
//
// The scheme is Charikar's SimHash: a hyperplane with Gaussian normal r
// splits the sphere so that P[sign⟨r,x⟩ = sign⟨r,y⟩] = 1 − θ(x,y)/π. Each of
// L tables concatenates K such signs into a K-bit signature; near vectors
// collide in some table with high probability, far vectors rarely do. A
// query probes its own bucket per table plus the buckets reached by flipping
// the lowest-|margin| signature bits (multi-probe: the bits most likely to
// have landed on the wrong side of their hyperplane), then reranks every
// candidate by exact cosine against the stored vectors, so returned scores
// are true similarities — the approximation only affects which rows are
// considered, never how they are scored.
//
// Layout is mmap-first: planes, vectors, and the per-table CSR buckets
// (sorted signatures + offsets + ids) are flat arrays, so internal/model can
// persist the whole index as one x2vm block and the daemon can cold-start by
// pointing these slices into a page-cache mapping. The query path allocates
// nothing: Searcher carries every scratch buffer (float32 query, margins,
// probe order, epoch-stamped visited set, result heap) preallocated, gated
// by an AllocsPerRun test and the x2veclint hotalloc analyzer.
package ann

import (
	"errors"
	"math"

	"repro/internal/linalg"
	"repro/internal/linalg/f32"
)

// Defaults for Config zero values, shared with the `x2vec index` CLI.
const (
	DefaultTables = 8
	DefaultBits   = 16
)

// maxBits bounds signature width: signatures live in a uint64 and each table
// materialises at most 2^Bits buckets' worth of CSR structure.
const maxBits = 60

// Sentinel errors — preallocated so the hotpath can fail without allocating.
var (
	ErrDimMismatch = errors.New("ann: query dimension does not match index")
	ErrBadConfig   = errors.New("ann: invalid index configuration")
)

// Config parameterises index construction.
type Config struct {
	Tables int    // L hash tables (0 = DefaultTables)
	Bits   int    // K hyperplanes per table (0 = DefaultBits, max 60)
	Seed   uint64 // hyperplane RNG seed; 0 is a valid seed
	// Sketch metadata, persisted alongside the index so the daemon can
	// reproduce the exact feature map query graphs must pass through. All
	// zero when the indexed vectors come from elsewhere.
	SketchRounds int
	SketchWidth  int
	SketchSeed   uint64
}

// Neighbor is one ranked result: a row id of the indexed matrix and its
// exact cosine similarity to the query.
type Neighbor struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// Index is a built LSH index. All slices are flat (or per-table views into
// flat arrays) so the index serialises to — and deserialises from — x2vm
// blocks without transformation; see internal/model.
type Index struct {
	Dim    int
	N      int
	Tables int
	Bits   int
	Seed   uint64

	SketchRounds int
	SketchWidth  int
	SketchSeed   uint64

	// Planes holds the Tables×Bits hyperplane normals, row-major:
	// table t, bit j occupies Planes[(t*Bits+j)*Dim : (t*Bits+j+1)*Dim].
	Planes []float32
	// Vecs holds the indexed vectors, unit-normalised at build time (row i
	// at Vecs[i*Dim:(i+1)*Dim]), so a dot product is a cosine.
	Vecs []float32
	// Per-table CSR buckets: Sigs[t] is the sorted list of distinct
	// signatures, IDs[t][Offs[t][b]:Offs[t][b+1]] the rows whose table-t
	// signature is Sigs[t][b]. Every row appears exactly once per table.
	Sigs [][]uint64
	Offs [][]uint32
	IDs  [][]uint32
}

// splitmix64 steps a deterministic 64-bit stream — the hyperplane RNG.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// gaussianPlanes fills a Tables*Bits*Dim array with N(0,1) normals derived
// from seed via splitmix64 + Box-Muller — deterministic across processes, so
// an index and a later rebuild from the same seed agree bit for bit.
func gaussianPlanes(tables, bits, dim int, seed uint64) []float32 {
	out := make([]float32, tables*bits*dim)
	state := seed ^ 0x6a09e667f3bcc909 // keep plane stream clear of the raw seed
	for i := 0; i < len(out); i += 2 {
		// Box-Muller from two uniforms in (0,1].
		u1 := (float64(splitmix64(&state)>>11) + 1) / (1 << 53)
		u2 := (float64(splitmix64(&state)>>11) + 1) / (1 << 53)
		r := math.Sqrt(-2 * math.Log(u1))
		z0 := r * math.Cos(2*math.Pi*u2)
		out[i] = float32(z0)
		if i+1 < len(out) {
			out[i+1] = float32(r * math.Sin(2*math.Pi*u2))
		}
	}
	return out
}

// signature returns the K-bit signature of vec under the planes of table t.
func (ix *Index) signature(t int, vec []float32) uint64 {
	var sig uint64
	base := t * ix.Bits * ix.Dim
	for j := 0; j < ix.Bits; j++ {
		p := ix.Planes[base+j*ix.Dim : base+(j+1)*ix.Dim]
		if f32.Dot(p, vec) >= 0 {
			sig |= 1 << uint(j)
		}
	}
	return sig
}

// Build constructs an index over the rows of vecs. Rows are unit-normalised
// into float32 storage (zero rows stay zero and score 0 against everything);
// signatures are computed across a worker pool (0 or negative = GOMAXPROCS).
// The input matrix is not retained or modified.
func Build(vecs *linalg.Matrix, cfg Config, workers int) (*Index, error) {
	if vecs == nil || vecs.Cols < 1 {
		return nil, ErrBadConfig
	}
	tables := cfg.Tables
	if tables == 0 {
		tables = DefaultTables
	}
	bits := cfg.Bits
	if bits == 0 {
		bits = DefaultBits
	}
	if tables < 1 || bits < 1 || bits > maxBits {
		return nil, ErrBadConfig
	}
	n, dim := vecs.Rows, vecs.Cols
	ix := &Index{
		Dim: dim, N: n, Tables: tables, Bits: bits, Seed: cfg.Seed,
		SketchRounds: cfg.SketchRounds, SketchWidth: cfg.SketchWidth, SketchSeed: cfg.SketchSeed,
		Planes: gaussianPlanes(tables, bits, dim, cfg.Seed),
		Vecs:   make([]float32, n*dim),
	}

	// Normalise rows into float32: after this every stored dot is a cosine.
	linalg.ParallelForWorkers(workers, n, func(i int) {
		row := vecs.Row(i)
		var sq float64
		for _, v := range row {
			sq += v * v
		}
		dst := ix.Vecs[i*dim : (i+1)*dim]
		if sq == 0 {
			return
		}
		inv := 1 / math.Sqrt(sq)
		for j, v := range row {
			dst[j] = float32(v * inv)
		}
	})

	// All signatures in one parallel pass: sigs[i*tables+t].
	sigs := make([]uint64, n*tables)
	linalg.ParallelForWorkers(workers, n, func(i int) {
		vec := ix.Vecs[i*dim : (i+1)*dim]
		for t := 0; t < tables; t++ {
			sigs[i*tables+t] = ix.signature(t, vec)
		}
	})

	// Per-table CSR: counting sort by signature. Buckets are discovered by
	// sorting the (signature, id) pairs; ids within a bucket stay ascending.
	ix.Sigs = make([][]uint64, tables)
	ix.Offs = make([][]uint32, tables)
	ix.IDs = make([][]uint32, tables)
	linalg.ParallelForWorkers(workers, tables, func(t int) {
		order := make([]uint32, n)
		for i := range order {
			order[i] = uint32(i)
		}
		sortIDsBySig(order, sigs, tables, t)
		var tSigs []uint64
		var tOffs []uint32
		ids := make([]uint32, n)
		for i, id := range order {
			s := sigs[int(id)*tables+t]
			if len(tSigs) == 0 || tSigs[len(tSigs)-1] != s {
				tSigs = append(tSigs, s)
				tOffs = append(tOffs, uint32(i))
			}
			ids[i] = id
		}
		tOffs = append(tOffs, uint32(n))
		ix.Sigs[t] = tSigs
		ix.Offs[t] = tOffs
		ix.IDs[t] = ids
	})
	return ix, nil
}

// sortIDsBySig sorts row ids by their table-t signature (ties by id, which
// the stable starting order provides). Build-time only; uses heapsort to
// stay allocation-free for large n.
func sortIDsBySig(order []uint32, sigs []uint64, tables, t int) {
	key := func(id uint32) uint64 { return sigs[int(id)*tables+t] }
	less := func(a, b uint32) bool {
		ka, kb := key(a), key(b)
		return ka < kb || (ka == kb && a < b)
	}
	// Standard heapsort over order.
	n := len(order)
	for i := n/2 - 1; i >= 0; i-- {
		siftOrder(order, i, n, less)
	}
	for end := n - 1; end > 0; end-- {
		order[0], order[end] = order[end], order[0]
		siftOrder(order, 0, end, less)
	}
}

func siftOrder(xs []uint32, root, end int, less func(a, b uint32) bool) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && less(xs[child], xs[child+1]) {
			child++
		}
		if !less(xs[root], xs[child]) {
			return
		}
		xs[root], xs[child] = xs[child], xs[root]
		root = child
	}
}
