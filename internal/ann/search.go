package ann

// The query path. A Searcher owns every scratch buffer a query needs, so a
// steady-state Search performs zero heap allocations — the property the
// serving daemon leans on at high QPS, enforced by TestSearchZeroAlloc and
// the x2veclint hotalloc analyzer via the hotpath annotation below. A
// Searcher is NOT safe for concurrent use; callers pool them (the daemon
// keeps a sync.Pool per loaded index).

import (
	"math"

	"repro/internal/linalg/f32"
)

// Searcher is reusable per-query scratch bound to one Index.
type Searcher struct {
	ix      *Index
	qf      []float32 // normalised float32 query
	margins []float32 // |signed distance| to each hyperplane of a table
	order   []int32   // bit indices sorted by ascending margin
	visited []uint32  // epoch stamps, one per indexed row
	epoch   uint32
	heap    []Neighbor // min-heap of current best k
}

// NewSearcher allocates scratch for queries against ix.
func NewSearcher(ix *Index) *Searcher {
	return &Searcher{
		ix:      ix,
		qf:      make([]float32, ix.Dim),
		margins: make([]float32, ix.Bits),
		order:   make([]int32, ix.Bits),
		visited: make([]uint32, ix.N),
	}
}

// Index returns the index this searcher queries.
func (s *Searcher) Index() *Index { return s.ix }

// Search returns the (up to) k indexed rows most cosine-similar to q, best
// first, written into dst (grown as needed; pass a slice with cap ≥ k to
// stay allocation-free). probes is the number of buckets examined per table:
// 1 probes only the query's own bucket, p > 1 additionally flips the p−1
// signature bits with the smallest hyperplane margins — the bits most likely
// wrong — before lookup. Candidates are deduplicated across tables and
// reranked by exact cosine, so scores are true similarities. A zero-norm
// query matches nothing.
//
//x2vec:hotpath
func (s *Searcher) Search(q []float64, k, probes int, dst []Neighbor) ([]Neighbor, error) {
	ix := s.ix
	dst = dst[:0]
	if len(q) != ix.Dim {
		return dst, ErrDimMismatch
	}
	if k <= 0 || ix.N == 0 {
		return dst, nil
	}
	if k > ix.N {
		k = ix.N
	}
	if probes < 1 {
		probes = 1
	}
	if probes > ix.Bits+1 {
		probes = ix.Bits + 1
	}
	if !s.loadQuery(q) {
		return dst, nil
	}

	s.bumpEpoch()
	s.heap = s.heap[:0]
	for t := 0; t < ix.Tables; t++ {
		base := s.tableMargins(t)
		for p := 0; p < probes; p++ {
			sig := base
			if p > 0 {
				sig ^= 1 << uint(s.order[p-1])
			}
			b := findSig(ix.Sigs[t], sig)
			if b < 0 {
				continue
			}
			offs := ix.Offs[t]
			ids := ix.IDs[t][offs[b]:offs[b+1]]
			s.scanCandidates(ids, k)
		}
	}
	return s.drainHeap(dst), nil
}

// ExactTopK scans every indexed row — the per-index brute-force oracle the
// daemon's recall sampler compares Search against. Same scratch, same
// normalisation, same tie-breaks; only the candidate set differs (all rows).
func (s *Searcher) ExactTopK(q []float64, k int, dst []Neighbor) ([]Neighbor, error) {
	ix := s.ix
	dst = dst[:0]
	if len(q) != ix.Dim {
		return dst, ErrDimMismatch
	}
	if k <= 0 || ix.N == 0 {
		return dst, nil
	}
	if k > ix.N {
		k = ix.N
	}
	if !s.loadQuery(q) {
		return dst, nil
	}
	s.heap = s.heap[:0]
	for id := 0; id < ix.N; id++ {
		score := float64(f32.Dot(s.qf, ix.Vecs[id*ix.Dim:(id+1)*ix.Dim]))
		s.push(Neighbor{ID: id, Score: score}, k)
	}
	return s.drainHeap(dst), nil
}

// loadQuery normalises q into the float32 scratch; false means zero norm.
func (s *Searcher) loadQuery(q []float64) bool {
	var sq float64
	for _, v := range q {
		sq += v * v
	}
	if sq == 0 {
		return false
	}
	inv := 1 / math.Sqrt(sq)
	for i, v := range q {
		s.qf[i] = float32(v * inv)
	}
	return true
}

// bumpEpoch advances the visited stamp, clearing the array only on the
// (once per 2³² queries) wraparound.
func (s *Searcher) bumpEpoch() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
}

// tableMargins computes the query's signature under table t, records each
// bit's |margin|, and leaves order[] holding bit indices sorted by ascending
// margin (insertion sort: Bits ≤ 60, and closures or sort.Slice would
// allocate on the hotpath).
func (s *Searcher) tableMargins(t int) uint64 {
	ix := s.ix
	base := t * ix.Bits * ix.Dim
	var sig uint64
	for j := 0; j < ix.Bits; j++ {
		m := f32.Dot(ix.Planes[base+j*ix.Dim:base+(j+1)*ix.Dim], s.qf)
		if m >= 0 {
			sig |= 1 << uint(j)
		} else {
			m = -m
		}
		s.margins[j] = m
		s.order[j] = int32(j)
	}
	for i := 1; i < ix.Bits; i++ {
		o := s.order[i]
		m := s.margins[o]
		j := i - 1
		for j >= 0 && s.margins[s.order[j]] > m {
			s.order[j+1] = s.order[j]
			j--
		}
		s.order[j+1] = o
	}
	return sig
}

// scanCandidates reranks one bucket's rows by exact cosine, deduplicating
// across tables and probes with the epoch-stamped visited set.
func (s *Searcher) scanCandidates(ids []uint32, k int) {
	ix := s.ix
	for _, id := range ids {
		if s.visited[id] == s.epoch {
			continue
		}
		s.visited[id] = s.epoch
		row := ix.Vecs[int(id)*ix.Dim : (int(id)+1)*ix.Dim]
		score := float64(f32.Dot(s.qf, row))
		s.push(Neighbor{ID: int(id), Score: score}, k)
	}
}

// worse orders heap entries: a ranks strictly below b when its score is
// lower, ties broken toward the higher id (so results match the exact
// oracle's deterministic lower-id-wins order).
func worse(a, b Neighbor) bool {
	return a.Score < b.Score || (a.Score == b.Score && a.ID > b.ID)
}

// push offers a candidate to the k-bounded min-heap.
func (s *Searcher) push(nb Neighbor, k int) {
	if len(s.heap) < k {
		s.heap = append(s.heap, nb)
		i := len(s.heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(s.heap[i], s.heap[parent]) {
				break
			}
			s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
			i = parent
		}
		return
	}
	if !worse(s.heap[0], nb) {
		return
	}
	s.heap[0] = nb
	s.siftDown(0)
}

func (s *Searcher) siftDown(root int) {
	n := len(s.heap)
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && worse(s.heap[child+1], s.heap[child]) {
			child++
		}
		if !worse(s.heap[child], s.heap[root]) {
			return
		}
		s.heap[root], s.heap[child] = s.heap[child], s.heap[root]
		root = child
	}
}

// drainHeap empties the heap into dst in descending rank order.
func (s *Searcher) drainHeap(dst []Neighbor) []Neighbor {
	n := len(s.heap)
	for i := 0; i < n; i++ {
		dst = append(dst, Neighbor{})
	}
	for i := n - 1; i >= 0; i-- {
		dst[i] = s.heap[0]
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		s.siftDown(0)
	}
	return dst
}

// findSig locates sig in the sorted signature list, -1 if absent. Manual
// binary search: sort.Search takes a closure and would allocate per probe.
func findSig(sigs []uint64, sig uint64) int {
	lo, hi := 0, len(sigs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sigs[mid] < sig {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(sigs) && sigs[lo] == sig {
		return lo
	}
	return -1
}
