package ann

// The end-to-end quality gate of ISSUE 9: LSH over count-sketched WL
// features of an SBM corpus must reach recall@10 ≥ 0.9 against the exact
// similarity.TopK oracle — the full pipeline a /neighbors query travels
// (graph → stable sketch → LSH → rerank), graded against the exact scan.

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/similarity"
)

func TestRecallGateSBMCorpusVsTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	// Four SBM families: distinct block structure gives the corpus real
	// cluster geometry, like a production corpus of related graphs.
	var gs []*graph.Graph
	families := []struct {
		sizes     []int
		pin, pout float64
	}{
		{[]int{10, 10}, 0.85, 0.05},
		{[]int{7, 7, 7}, 0.9, 0.1},
		{[]int{15, 5}, 0.7, 0.15},
		{[]int{6, 6, 6, 6}, 0.8, 0.05},
	}
	const perFamily = 150
	for _, f := range families {
		for i := 0; i < perFamily; i++ {
			g, blocks := graph.SBM(f.sizes, f.pin, f.pout, rng)
			for v, b := range blocks {
				g.SetVertexLabel(v, b%2)
			}
			gs = append(gs, g)
		}
	}

	sk := kernel.CountSketchWL{Rounds: 3, Width: 128, Seed: 2024}
	corpus := sk.CorpusSketchMatrix(gs, 0)
	ix, err := Build(corpus, Config{Tables: 16, Bits: 12, Seed: 1}, 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	s := NewSearcher(ix)
	const k, probes, queries = 10, 10, 60
	var total float64
	for q := 0; q < queries; q++ {
		query := corpus.Row((q * 7) % len(gs))
		approx, err := s.Search(query, k, probes, nil)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		exact, err := similarity.TopK(query, corpus, k)
		if err != nil {
			t.Fatalf("TopK oracle: %v", err)
		}
		asNeighbors := make([]Neighbor, len(exact))
		for i, nb := range exact {
			asNeighbors[i] = Neighbor{ID: nb.ID, Score: nb.Score}
		}
		total += recallAt(approx, asNeighbors)
	}
	if mean := total / queries; mean < 0.9 {
		t.Fatalf("SBM corpus recall@%d = %.3f < 0.9", k, mean)
	}
}
