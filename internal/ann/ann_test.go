package ann

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func gaussianMatrix(rows, cols int, rng *rand.Rand) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// clusteredMatrix draws rows from a mixture of Gaussian clusters — the
// regime LSH is for (queries have genuinely near neighbours).
func clusteredMatrix(rows, cols, clusters int, noise float64, rng *rand.Rand) *linalg.Matrix {
	centers := gaussianMatrix(clusters, cols, rng)
	m := linalg.NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		c := centers.Row(r % clusters)
		row := m.Row(r)
		for j := range row {
			row[j] = c[j] + noise*rng.NormFloat64()
		}
	}
	return m
}

// TestSignCollisionProbability pins the SimHash identity the whole tier
// rests on: for unit vectors at angle θ, a random hyperplane puts them on
// the same side with probability 1 − θ/π. Pairs at controlled angles are
// hashed through the index's own plane generator.
func TestSignCollisionProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const dim = 24
	for _, theta := range []float64{0.2, 0.7, math.Pi / 2, 2.4} {
		// Build an orthonormal pair (v, u) and set w = cos θ·v + sin θ·u.
		v := make([]float64, dim)
		u := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
			u[i] = rng.NormFloat64()
		}
		normalize(v)
		// Gram-Schmidt u against v.
		d := dot(v, u)
		for i := range u {
			u[i] -= d * v[i]
		}
		normalize(u)
		w := make([]float64, dim)
		for i := range w {
			w[i] = math.Cos(theta)*v[i] + math.Sin(theta)*u[i]
		}

		// One big "index" of just the two vectors gives signatures under
		// many independent hyperplanes: agreement fraction ≈ 1 − θ/π.
		pair := linalg.NewMatrix(2, dim)
		copy(pair.Row(0), v)
		copy(pair.Row(1), w)
		ix, err := Build(pair, Config{Tables: 64, Bits: 60, Seed: 7}, 0)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		agree, total := 0, 0
		for tb := 0; tb < ix.Tables; tb++ {
			s0 := ix.signature(tb, ix.Vecs[0:dim])
			s1 := ix.signature(tb, ix.Vecs[dim:2*dim])
			for j := 0; j < ix.Bits; j++ {
				total++
				if (s0>>uint(j))&1 == (s1>>uint(j))&1 {
					agree++
				}
			}
		}
		got := float64(agree) / float64(total)
		want := 1 - theta/math.Pi
		// 3840 Bernoulli trials: 3σ ≈ 0.024; allow 0.04.
		if math.Abs(got-want) > 0.04 {
			t.Fatalf("theta=%.2f: collision rate %.4f, want %.4f ± 0.04", theta, got, want)
		}
	}
}

func normalize(v []float64) {
	n := math.Sqrt(dot(v, v))
	for i := range v {
		v[i] /= n
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// recallAt computes |approx ∩ exact| / |exact| over result ids.
func recallAt(approx, exact []Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := map[int]bool{}
	for _, nb := range approx {
		in[nb.ID] = true
	}
	hits := 0
	for _, nb := range exact {
		if in[nb.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// TestSearchRecallClusteredVectors: multi-probe search over a clustered
// corpus must recover ≥ 0.9 of the exact top-10 on average. (The SBM-corpus
// recall gate against similarity.TopK lives in recall_test.go; this one
// isolates the index from the sketching pipeline.)
func TestSearchRecallClusteredVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	const n, dim = 4000, 32
	m := clusteredMatrix(n, dim, 80, 0.35, rng)
	ix, err := Build(m, Config{Tables: 12, Bits: 12, Seed: 3}, 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := NewSearcher(ix)
	var total float64
	const queries = 50
	for q := 0; q < queries; q++ {
		query := m.Row(rng.Intn(n))
		approx, err := s.Search(query, 10, 8, nil)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		exact, err := s.ExactTopK(query, 10, nil)
		if err != nil {
			t.Fatalf("ExactTopK: %v", err)
		}
		total += recallAt(approx, exact)
	}
	if mean := total / queries; mean < 0.9 {
		t.Fatalf("mean recall@10 %.3f < 0.9", mean)
	}
}

// TestMultiProbeImprovesRecall: probing more buckets must not hurt, and from
// 1 to 8 probes it should measurably help on a mid-size index.
func TestMultiProbeImprovesRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n, dim = 2000, 24
	m := clusteredMatrix(n, dim, 50, 0.4, rng)
	ix, err := Build(m, Config{Tables: 6, Bits: 14, Seed: 9}, 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := NewSearcher(ix)
	recall := func(probes int) float64 {
		var total float64
		for q := 0; q < 40; q++ {
			query := m.Row((q * 53) % n)
			approx, _ := s.Search(query, 10, probes, nil)
			exact, _ := s.ExactTopK(query, 10, nil)
			total += recallAt(approx, exact)
		}
		return total / 40
	}
	r1, r8 := recall(1), recall(8)
	if r8 < r1 {
		t.Fatalf("recall fell with more probes: probes=1 %.3f, probes=8 %.3f", r1, r8)
	}
	if r8-r1 < 0.02 {
		t.Logf("multi-probe gain small on this corpus: %.3f -> %.3f", r1, r8)
	}
}

// TestSearchZeroAlloc is the hotpath gate: a steady-state query (dst with
// cap ≥ k, searcher warmed once) must not allocate.
func TestSearchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := gaussianMatrix(500, 16, rng)
	ix, err := Build(m, Config{Tables: 8, Bits: 10, Seed: 1}, 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := NewSearcher(ix)
	query := m.Row(123)
	dst := make([]Neighbor, 0, 10)
	if _, err := s.Search(query, 10, 4, dst); err != nil { // warm the heap
		t.Fatalf("Search: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = s.Search(query, 10, 4, dst)
	})
	if allocs != 0 {
		t.Fatalf("Search allocated %.1f times per run, want 0", allocs)
	}
}

// TestSearchMatchesExactWhenExhaustive: with enough tables/probes on a tiny
// index every bucket gets visited, so Search must equal ExactTopK including
// order and tie-breaks.
func TestSearchMatchesExactWhenExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := gaussianMatrix(60, 8, rng)
	ix, err := Build(m, Config{Tables: 24, Bits: 4, Seed: 5}, 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := NewSearcher(ix)
	for q := 0; q < 10; q++ {
		query := m.Row(q * 5)
		approx, _ := s.Search(query, 5, 5, nil)
		exact, _ := s.ExactTopK(query, 5, nil)
		if len(approx) != len(exact) {
			t.Fatalf("query %d: %d vs %d results", q, len(approx), len(exact))
		}
		for i := range approx {
			if approx[i] != exact[i] {
				t.Fatalf("query %d rank %d: %+v != %+v", q, i, approx[i], exact[i])
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := gaussianMatrix(100, 12, rng)
	a, err := Build(m, Config{Tables: 4, Bits: 8, Seed: 77}, 3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := Build(m, Config{Tables: 4, Bits: 8, Seed: 77}, 1)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i := range a.Planes {
		if a.Planes[i] != b.Planes[i] {
			t.Fatalf("planes differ at %d", i)
		}
	}
	for tb := range a.Sigs {
		if len(a.Sigs[tb]) != len(b.Sigs[tb]) {
			t.Fatalf("table %d: bucket counts differ", tb)
		}
		for i := range a.Sigs[tb] {
			if a.Sigs[tb][i] != b.Sigs[tb][i] || a.Offs[tb][i] != b.Offs[tb][i] {
				t.Fatalf("table %d: buckets differ at %d", tb, i)
			}
		}
		for i := range a.IDs[tb] {
			if a.IDs[tb][i] != b.IDs[tb][i] {
				t.Fatalf("table %d: ids differ at %d", tb, i)
			}
		}
	}
}

func TestBuildAndSearchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := Build(nil, Config{}, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil matrix: want ErrBadConfig, got %v", err)
	}
	if _, err := Build(linalg.NewMatrix(3, 4), Config{Bits: 61}, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bits=61: want ErrBadConfig, got %v", err)
	}
	if _, err := Build(linalg.NewMatrix(3, 4), Config{Tables: -1}, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("tables=-1: want ErrBadConfig, got %v", err)
	}
	m := gaussianMatrix(10, 6, rng)
	ix, err := Build(m, Config{Tables: 2, Bits: 4}, 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := NewSearcher(ix)
	if _, err := s.Search(make([]float64, 5), 3, 1, nil); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dim mismatch: want ErrDimMismatch, got %v", err)
	}
	if _, err := s.ExactTopK(make([]float64, 7), 3, nil); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("exact dim mismatch: want ErrDimMismatch, got %v", err)
	}
	// Zero-norm query: empty result, no error.
	if got, err := s.Search(make([]float64, 6), 3, 2, nil); err != nil || len(got) != 0 {
		t.Fatalf("zero query: got %d results err %v", len(got), err)
	}
	// k > N clamps; k <= 0 empty.
	if got, _ := s.Search(m.Row(0), 50, 2, nil); len(got) > 10 {
		t.Fatalf("k>n returned %d results", len(got))
	}
	if got, _ := s.Search(m.Row(0), 0, 2, nil); len(got) != 0 {
		t.Fatalf("k=0 returned %d results", len(got))
	}
}

// TestBuildZeroRowsAndZeroVectors: an empty corpus builds and answers; zero
// rows stay representable and score 0.
func TestBuildZeroRowsAndZeroVectors(t *testing.T) {
	empty := linalg.NewMatrix(0, 8)
	ix, err := Build(empty, Config{}, 0)
	if err != nil {
		t.Fatalf("empty Build: %v", err)
	}
	s := NewSearcher(ix)
	q := make([]float64, 8)
	q[0] = 1
	if got, err := s.Search(q, 5, 2, nil); err != nil || len(got) != 0 {
		t.Fatalf("empty index: got %d err %v", len(got), err)
	}

	m := linalg.NewMatrix(3, 4)
	m.Row(0)[0] = 1 // rows 1, 2 are all-zero
	ix, err = Build(m, Config{Tables: 2, Bits: 3}, 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s = NewSearcher(ix)
	got, err := s.ExactTopK([]float64{1, 0, 0, 0}, 3, nil)
	if err != nil {
		t.Fatalf("ExactTopK: %v", err)
	}
	if len(got) != 3 || got[0].ID != 0 || got[0].Score < 0.99 {
		t.Fatalf("unexpected results %+v", got)
	}
	for _, nb := range got[1:] {
		if nb.Score != 0 {
			t.Fatalf("zero row scored %v", nb.Score)
		}
	}
}
