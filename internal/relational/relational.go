// Package relational implements relational structures of arbitrary arity
// and their binary incidence structures (Section 4.2 of the paper). A
// σ-structure with relations R_1..R_m of arities k_1..k_m is encoded as an
// incidence graph over vocabulary σ_I = {E_1..E_k, P_1..P_m}: one vertex per
// universe element, one vertex per tuple (labelled by its relation), and a
// position-labelled edge from the j-th member of a tuple to the tuple
// vertex. Corollary 4.12 relates 1-WL on these incidence graphs to
// tree-homomorphism vectors and C² equivalence; this package provides the
// encoders and deciders that experiment E12 exercises.
package relational

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/logic"
	"repro/internal/wl"
)

// Relation is a named relation with fixed arity and a set of tuples.
type Relation struct {
	Name   string
	Arity  int
	Tuples [][]int
}

// Structure is a finite relational structure over universe {0..N-1}.
type Structure struct {
	N         int
	Relations []Relation
}

// AddTuple appends a tuple to relation r, rejecting wrong arities,
// out-of-range relation indices, and out-of-universe elements with an
// error (bad ingestion data must not kill the process).
func (s *Structure) AddTuple(r int, tuple ...int) error {
	if r < 0 || r >= len(s.Relations) {
		return fmt.Errorf("relational: relation index %d out of range [0,%d)", r, len(s.Relations))
	}
	rel := &s.Relations[r]
	if len(tuple) != rel.Arity {
		return fmt.Errorf("relational: tuple arity %d != %d for relation %s", len(tuple), rel.Arity, rel.Name)
	}
	for _, v := range tuple {
		if v < 0 || v >= s.N {
			return fmt.Errorf("relational: tuple element %d outside universe [0,%d)", v, s.N)
		}
	}
	rel.Tuples = append(rel.Tuples, append([]int(nil), tuple...))
	return nil
}

// IncidenceGraph encodes the structure as an undirected vertex-labelled
// graph: element vertices carry label 1, the tuple vertex of a relation R_i
// tuple carries label i+2, and the position relations E_j are encoded by
// subdividing each membership edge through a vertex labelled m+1+j (m =
// number of relations). Vertex labels alone then carry the full σ_I
// information, so label-preserving homomorphisms, 1-WL, and C² all see the
// positions — matching Corollary 4.12's vocabulary.
func (s *Structure) IncidenceGraph() *graph.Graph {
	g := graph.New(s.N)
	for v := 0; v < s.N; v++ {
		g.SetVertexLabel(v, 1)
	}
	m := len(s.Relations)
	for ri, rel := range s.Relations {
		for _, tuple := range rel.Tuples {
			tv := g.AddVertex()
			g.SetVertexLabel(tv, ri+2)
			for j, v := range tuple {
				pv := g.AddVertex()
				g.SetVertexLabel(pv, m+2+j)
				g.AddEdge(v, pv)
				g.AddEdge(pv, tv)
			}
		}
	}
	return g
}

// incidenceLabels returns the vertex-label alphabet of the incidence
// encoding: element, relation, and position labels.
func (s *Structure) incidenceLabels() []int {
	maxArity := 0
	for _, r := range s.Relations {
		if r.Arity > maxArity {
			maxArity = r.Arity
		}
	}
	labels := []int{1}
	for i := range s.Relations {
		labels = append(labels, i+2)
	}
	m := len(s.Relations)
	for j := 0; j < maxArity; j++ {
		labels = append(labels, m+2+j)
	}
	return labels
}

// WLEquivalent reports whether 1-WL fails to distinguish the incidence
// graphs of a and b (Corollary 4.12 condition (2)).
func WLEquivalent(a, b *Structure) bool {
	return !wl.Distinguishes(a.IncidenceGraph(), b.IncidenceGraph())
}

// C2Equivalent reports C²-equivalence of the incidence graphs (Corollary
// 4.12 condition (3)), decided by the bijective two-pebble game.
func C2Equivalent(a, b *Structure) bool {
	return logic.EquivalentC2(a.IncidenceGraph(), b.IncidenceGraph())
}

// LabelledTrees enumerates all vertex-labelled trees with at most maxN
// vertices and labels drawn from labels — the pattern class T(σ_I) of
// Corollary 4.12 truncated for experiments.
func LabelledTrees(maxN int, labels []int) []*graph.Graph {
	var out []*graph.Graph
	for n := 1; n <= maxN; n++ {
		for _, t := range graph.AllTrees(n) {
			assignment := make([]int, n)
			var rec func(i int)
			rec = func(i int) {
				if i == n {
					lt := t.Clone()
					for v, l := range assignment {
						lt.SetVertexLabel(v, l)
					}
					out = append(out, lt)
					return
				}
				for _, l := range labels {
					assignment[i] = l
					rec(i + 1)
				}
			}
			rec(0)
		}
	}
	return out
}

// TreeHomIndistinguishable reports whether the incidence graphs of a and b
// have equal homomorphism counts over all labelled trees up to maxN
// vertices (Corollary 4.12 condition (1), truncated).
func TreeHomIndistinguishable(a, b *Structure, maxN int) bool {
	ga, gb := a.IncidenceGraph(), b.IncidenceGraph()
	labels := a.incidenceLabels()
	for _, t := range LabelledTrees(maxN, labels) {
		if hom.Count(t, ga) != hom.Count(t, gb) {
			return false
		}
	}
	return true
}

// RandomStructure samples a structure with one ternary relation over n
// elements containing exactly k distinct random tuples — the simplest
// higher-arity test bed. Keeping k small keeps the incidence graphs small
// enough for the exact C² game.
func RandomStructure(n, k int, rng *rand.Rand) *Structure {
	s := &Structure{N: n, Relations: []Relation{{Name: "R", Arity: 3}}}
	seen := map[[3]int]bool{}
	for len(s.Relations[0].Tuples) < k {
		t := [3]int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
		if seen[t] {
			continue
		}
		seen[t] = true
		// rng.Intn(n) keeps every element in the universe and the arity is
		// fixed at 3, so AddTuple cannot fail here.
		_ = s.AddTuple(0, t[0], t[1], t[2])
	}
	return s
}
