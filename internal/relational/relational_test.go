package relational

import (
	"math/rand"
	"testing"
)

// ternary builds a structure with one ternary relation from tuples.
func ternary(n int, tuples ...[3]int) *Structure {
	s := &Structure{N: n, Relations: []Relation{{Name: "R", Arity: 3}}}
	for _, t := range tuples {
		if err := s.AddTuple(0, t[0], t[1], t[2]); err != nil {
			panic(err) // test fixtures are well-formed by construction
		}
	}
	return s
}

func TestIncidenceGraphShape(t *testing.T) {
	s := ternary(3, [3]int{0, 1, 2}, [3]int{2, 1, 0})
	g := s.IncidenceGraph()
	if g.N() != 11 { // 3 elements + 2 tuple vertices + 6 position vertices
		t.Fatalf("incidence graph has %d vertices, want 11", g.N())
	}
	if g.M() != 12 { // 2 subdivision edges per position
		t.Fatalf("incidence graph has %d edges, want 12", g.M())
	}
	if g.VertexLabel(3) != 2 || g.VertexLabel(0) != 1 {
		t.Error("labels: tuple vertices get relation labels, elements label 1")
	}
}

func TestIdenticalStructuresEquivalent(t *testing.T) {
	a := ternary(3, [3]int{0, 1, 2})
	b := ternary(3, [3]int{1, 2, 0}) // isomorphic relabelling
	if !WLEquivalent(a, b) {
		t.Error("isomorphic structures should be WL-equivalent")
	}
	if !C2Equivalent(a, b) {
		t.Error("isomorphic structures should be C2-equivalent")
	}
	if !TreeHomIndistinguishable(a, b, 3) {
		t.Error("isomorphic structures should have equal tree-hom vectors")
	}
}

func TestPositionMattersInTuples(t *testing.T) {
	// (0,1,2) vs (0,2,1): different position structure around elements 1,2
	// when their roles elsewhere differ; with a second tuple pinning roles
	// the structures separate.
	a := ternary(3, [3]int{0, 1, 2}, [3]int{0, 1, 2})
	b := ternary(3, [3]int{0, 1, 2}, [3]int{0, 2, 1})
	if WLEquivalent(a, b) {
		t.Error("tuple position swap should be visible to WL on incidence graphs")
	}
	if C2Equivalent(a, b) {
		t.Error("tuple position swap should be visible to C2")
	}
	if TreeHomIndistinguishable(a, b, 3) {
		t.Error("labelled tree homs should separate the pair")
	}
}

func TestCorollary412Consistency(t *testing.T) {
	// Conditions (1) WL, (2) C2, and (3) truncated tree homs must agree on
	// random structure pairs.
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 6; trial++ {
		a := RandomStructure(3, 2, rng)
		b := RandomStructure(3, 2, rng)
		wlEq := WLEquivalent(a, b)
		c2Eq := C2Equivalent(a, b)
		if wlEq != c2Eq {
			t.Errorf("trial %d: WL=%v C2=%v disagree", trial, wlEq, c2Eq)
		}
		homEq := TreeHomIndistinguishable(a, b, 3)
		if wlEq && !homEq {
			t.Errorf("trial %d: WL-equivalent but tree homs differ (violates Cor 4.12)", trial)
		}
		if !wlEq && homEq {
			// Truncation at 3 vertices may fail to separate; log only.
			t.Logf("trial %d: truncated tree class too small to separate", trial)
		}
	}
}

func TestDifferentTupleCounts(t *testing.T) {
	a := ternary(3, [3]int{0, 1, 2})
	b := ternary(3)
	if WLEquivalent(a, b) {
		t.Error("different tuple counts should be visible")
	}
}

func TestArityValidation(t *testing.T) {
	s := ternary(3)
	if err := s.AddTuple(0, 1, 2); err == nil {
		t.Error("arity mismatch should be an error")
	}
	if err := s.AddTuple(1, 0, 1, 2); err == nil {
		t.Error("out-of-range relation index should be an error")
	}
	if err := s.AddTuple(0, 0, 1, 3); err == nil {
		t.Error("element outside the universe should be an error")
	}
	if err := s.AddTuple(0, -1, 1, 2); err == nil {
		t.Error("negative element should be an error")
	}
	if err := s.AddTuple(0, 0, 1, 2); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
}
