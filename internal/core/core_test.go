package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/kernel"
)

func TestHomEmbedderDefaultClass(t *testing.T) {
	e := NewHomEmbedder(nil)
	v := e.EmbedGraph(graph.Petersen())
	if len(v) != 20 {
		t.Fatalf("default hom embedding has %d entries, want 20", len(v))
	}
	if e.Name() != "hom-vector" {
		t.Error("name")
	}
}

// TestHomEmbedderCorpusMatchesSingle pins the CorpusEmbedder contract on
// the hom embedder: the batched compiled-class pass must equal independent
// per-graph embeddings entry for entry.
func TestHomEmbedderCorpusMatchesSingle(t *testing.T) {
	e := NewHomEmbedder(nil)
	rng := rand.New(rand.NewSource(9))
	gs := []*graph.Graph{graph.Petersen(), graph.Cycle(6), graph.New(1)}
	for len(gs) < 10 {
		g := graph.Random(8, 0.3, rng)
		if len(gs)%2 == 0 {
			for v := 0; v < g.N(); v++ {
				g.SetVertexLabel(v, rng.Intn(3))
			}
		}
		gs = append(gs, g)
	}
	batch := e.EmbedCorpus(gs)
	if len(batch) != len(gs) {
		t.Fatalf("%d corpus embeddings for %d graphs", len(batch), len(gs))
	}
	for i, g := range gs {
		single := e.EmbedGraph(g)
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("graph %d entry %d: corpus=%v single=%v", i, j, batch[i][j], single[j])
			}
		}
	}
}

func TestHomEmbedderSeparatesCospectral(t *testing.T) {
	e := NewHomEmbedder(nil)
	g, h := graph.CospectralPair()
	if d := InducedGraphDistance(e, g, h); d <= 0 {
		t.Errorf("induced distance %v between tree-distinguishable graphs", d)
	}
	if d := InducedGraphDistance(e, g, g); d != 0 {
		t.Errorf("self distance %v", d)
	}
}

func TestWLEmbedderConsistentDimensions(t *testing.T) {
	corpus := []*graph.Graph{graph.Cycle(4), graph.Path(5), graph.Star(3)}
	e := NewWLEmbedder(2, corpus)
	d := -1
	for _, g := range corpus {
		v := e.EmbedGraph(g)
		if d < 0 {
			d = len(v)
		}
		if len(v) != d {
			t.Fatal("all embeddings must share a dimension")
		}
	}
	// Unseen graph still embeds (possibly with zero OOV features).
	v := e.EmbedGraph(graph.Complete(5))
	if len(v) != d {
		t.Fatal("unseen graph embedding dimension mismatch")
	}
}

func TestGNNEmbedderRespects1WL(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	e, err := NewGNNEmbedder([]int{2, 6}, 4, rng)
	if err != nil {
		t.Fatalf("NewGNNEmbedder: %v", err)
	}
	g, h := graph.WLIndistinguishablePair()
	if d := InducedGraphDistance(e, g, h); d > 1e-9 {
		t.Errorf("untrained GNN embedder separates a WL-equivalent pair: %v", d)
	}
}

func TestNodeEmbedderWrappers(t *testing.T) {
	g, _ := graph.KarateClub()
	for _, e := range []NodeEmbedder{
		&SpectralNodeEmbedder{Dim: 2},
		&SpectralNodeEmbedder{Dim: 2, C: 2},
		&Node2VecEmbedder{Dim: 4, P: 1, Q: 1, Seed: 7},
	} {
		x := e.EmbedNodes(g)
		if x.Rows != g.N() {
			t.Errorf("%s: %d rows, want %d", e.Name(), x.Rows, g.N())
		}
	}
}

func TestClassificationPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	d := dataset.CycleParity(16, 8, rng)
	acc := ClassifyWithEmbedder(NewHomEmbedder(nil), d.Graphs, d.Labels, 4, rng)
	if acc < 0.9 {
		t.Errorf("hom-vector pipeline accuracy %v, want >= 0.9 on cycle parity", acc)
	}
	accWL := ClassifyWithKernel(kernel.WLSubtree{Rounds: 3}, d.Graphs, d.Labels, 4, rng)
	if accWL < 0.4 {
		t.Errorf("WL kernel pipeline accuracy %v unreasonably low", accWL)
	}
	t.Logf("cycle-parity: hom=%v wl=%v", acc, accWL)
}
