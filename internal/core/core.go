// Package core is the unifying public API of the x2vec library — the
// "X2vec" viewpoint of the paper: word2vec, node2vec, graph2vec, graph
// kernels, homomorphism vectors, and GNNs are all vector embeddings of
// structured data, differing in what they embed (nodes vs graphs), how
// (learned vs constructed), and what equivalence they respect (1-WL,
// spectra, isomorphism).
//
// The package exposes uniform GraphEmbedder / NodeEmbedder interfaces over
// the specialised packages, plus an end-to-end classification pipeline
// (embed → Gram matrix → kernel SVM) used by the examples and experiments.
package core

import (
	"math"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/svm"
	"repro/internal/wl"
)

// GraphEmbedder maps whole graphs to fixed-dimension vectors (an explicit
// feature map; every GraphEmbedder induces a kernel via the inner product).
// EmbedGraph must be safe to call concurrently on distinct graphs: the Gram
// pipeline extracts embeddings across a worker pool, so implementations
// must not share unsynchronised mutable state (e.g. a *rand.Rand or a
// scratch buffer) between calls.
type GraphEmbedder interface {
	EmbedGraph(g *graph.Graph) []float64
	Name() string
}

// NodeEmbedder maps the nodes of one graph to vectors.
type NodeEmbedder interface {
	EmbedNodes(g *graph.Graph) *linalg.Matrix
	Name() string
}

// CorpusEmbedder is a GraphEmbedder that can embed a whole corpus from one
// shared pass (e.g. one batched wl.RefineCorpus refinement instead of one
// refinement per graph). EmbedCorpus must return exactly one vector per
// input graph, equal to EmbedGraph(gs[i]) for every i; the Gram pipeline
// prefers it when available.
type CorpusEmbedder interface {
	GraphEmbedder
	EmbedCorpus(gs []*graph.Graph) [][]float64
}

// HomEmbedder is the homomorphism-vector graph embedding of Section 4: the
// log-scaled counts over a fixed pattern class.
type HomEmbedder struct {
	Class []*graph.Graph
}

// NewHomEmbedder uses the paper's ~20-pattern class of binary trees and
// cycles when class is nil.
func NewHomEmbedder(class []*graph.Graph) *HomEmbedder {
	if class == nil {
		class = hom.StandardClass()
	}
	return &HomEmbedder{Class: class}
}

// EmbedGraph implements GraphEmbedder.
func (e *HomEmbedder) EmbedGraph(g *graph.Graph) []float64 {
	return hom.LogScaledVector(e.Class, g)
}

// EmbedCorpus implements CorpusEmbedder: the pattern class compiles once
// (hom.Compile) and every graph evaluates through the batched corpus engine,
// so the Gram pipeline never rebuilds a decomposition or matrix power per
// graph per pattern.
func (e *HomEmbedder) EmbedCorpus(gs []*graph.Graph) [][]float64 {
	return hom.CorpusLogScaledVectors(hom.Compile(e.Class), gs)
}

// Name implements GraphEmbedder.
func (e *HomEmbedder) Name() string { return "hom-vector" }

// WLEmbedder is the explicit WL-subtree feature map restricted to a fixed
// feature index (colours discovered on a reference corpus), so vectors have
// a common fixed dimension.
type WLEmbedder struct {
	Rounds int
	index  map[[2]int]int
}

// NewWLEmbedder builds the feature index from a reference corpus of graphs
// with one batched wl.RefineCorpus refinement pass.
func NewWLEmbedder(rounds int, corpus []*graph.Graph) *WLEmbedder {
	e := &WLEmbedder{Rounds: rounds, index: map[[2]int]int{}}
	for _, cols := range wl.RefineCorpus(corpus, rounds) {
		for r, round := range cols {
			for _, c := range round {
				key := [2]int{r, c}
				if _, ok := e.index[key]; !ok {
					e.index[key] = len(e.index)
				}
			}
		}
	}
	return e
}

// embedColors folds one graph's per-round canonical colours into the fixed
// index space. Colours outside the reference index are dropped
// (out-of-vocabulary), mirroring how fixed feature maps behave on unseen
// structure.
func (e *WLEmbedder) embedColors(cols [][]int) []float64 {
	out := make([]float64, len(e.index))
	for r, round := range cols {
		for _, c := range round {
			if i, ok := e.index[[2]int{r, c}]; ok {
				out[i]++
			}
		}
	}
	return out
}

// EmbedGraph implements GraphEmbedder.
func (e *WLEmbedder) EmbedGraph(g *graph.Graph) []float64 {
	return e.embedColors(wl.CanonicalColors(g, e.Rounds))
}

// EmbedCorpus implements CorpusEmbedder: the whole set refines in one
// batched pass through the shared canonical colour store.
func (e *WLEmbedder) EmbedCorpus(gs []*graph.Graph) [][]float64 {
	cols := wl.RefineCorpus(gs, e.Rounds)
	out := make([][]float64, len(gs))
	linalg.ParallelFor(len(gs), func(i int) {
		out[i] = e.embedColors(cols[i])
	})
	return out
}

// Name implements GraphEmbedder.
func (e *WLEmbedder) Name() string { return "wl-features" }

// GNNEmbedder sum-pools the node states of a (possibly untrained) GNN — the
// Section 2.5 whole-graph use of GNNs. It is inductive: one model embeds
// any graph.
type GNNEmbedder struct {
	Net      *gnn.Network
	InputDim int
}

// NewGNNEmbedder creates an untrained random GNN embedder (useful as a
// structural fingerprint bounded by 1-WL).
func NewGNNEmbedder(dims []int, outDim int, rng *rand.Rand) (*GNNEmbedder, error) {
	net, err := gnn.New(dims, outDim, rng)
	if err != nil {
		return nil, err
	}
	return &GNNEmbedder{Net: net, InputDim: dims[0]}, nil
}

// EmbedGraph implements GraphEmbedder.
func (e *GNNEmbedder) EmbedGraph(g *graph.Graph) []float64 {
	// Features are constructed to match the network, so the only error path
	// is a nil graph; surface it as an empty embedding.
	logits, err := e.Net.GraphLogits(g, gnn.ConstantFeatures(g.N(), e.InputDim))
	if err != nil {
		return make([]float64, e.Net.Classes())
	}
	return logits
}

// Name implements GraphEmbedder.
func (e *GNNEmbedder) Name() string { return "gnn-pooled" }

// SpectralNodeEmbedder wraps the Figure 2 spectral node embeddings.
type SpectralNodeEmbedder struct {
	Dim int
	C   float64 // 0 = raw adjacency (Fig 2a), else exp(-C dist) (Fig 2b)
}

// EmbedNodes implements NodeEmbedder.
func (e *SpectralNodeEmbedder) EmbedNodes(g *graph.Graph) *linalg.Matrix {
	if e.C == 0 {
		return embed.AdjacencySpectral(g, e.Dim).Vectors
	}
	return embed.DistanceSimilaritySpectral(g, e.Dim, e.C).Vectors
}

// Name implements NodeEmbedder.
func (e *SpectralNodeEmbedder) Name() string {
	if e.C == 0 {
		return "adjacency-spectral"
	}
	return "distance-spectral"
}

// Node2VecEmbedder wraps the random-walk node embedding (Fig 2c).
type Node2VecEmbedder struct {
	Dim  int
	P, Q float64
	Seed int64
}

// EmbedNodes implements NodeEmbedder.
func (e *Node2VecEmbedder) EmbedNodes(g *graph.Graph) *linalg.Matrix {
	rng := rand.New(rand.NewSource(e.Seed))
	return embed.Node2Vec(g, e.Dim, e.P, e.Q, rng).Vectors
}

// Name implements NodeEmbedder.
func (e *Node2VecEmbedder) Name() string { return "node2vec" }

// GramFromEmbedder computes the linear-kernel Gram matrix of an explicit
// graph embedding over a graph set: one embedding per graph extracted
// across a worker pool, then a parallel symmetric fill — the same
// one-extraction-per-graph pipeline kernel.Gram uses for FeatureKernels.
func GramFromEmbedder(e GraphEmbedder, gs []*graph.Graph) *linalg.Matrix {
	feats := embedAll(e, gs)
	return linalg.SymmetricFromFunc(len(gs), func(i, j int) float64 {
		return linalg.Dot(feats[i], feats[j])
	})
}

// embedAll embeds every graph exactly once: embedders with a corpus pass
// (CorpusEmbedder) get one batched call, the rest one EmbedGraph per graph
// on a GOMAXPROCS-sized pool.
func embedAll(e GraphEmbedder, gs []*graph.Graph) [][]float64 {
	if ce, ok := e.(CorpusEmbedder); ok {
		return ce.EmbedCorpus(gs)
	}
	feats := make([][]float64, len(gs))
	linalg.ParallelFor(len(gs), func(i int) {
		feats[i] = e.EmbedGraph(gs[i])
	})
	return feats
}

// StandardizedGram embeds every graph, z-scores each feature dimension
// across the set, and returns the linear-kernel Gram matrix. Explicit
// feature maps like the log-scaled hom vector have wildly different
// per-dimension scales; standardisation puts them on equal footing before
// the SVM.
func StandardizedGram(e GraphEmbedder, gs []*graph.Graph) *linalg.Matrix {
	feats := embedAll(e, gs)
	if len(feats) > 0 {
		d := len(feats[0])
		for j := 0; j < d; j++ {
			var mean, sq float64
			for i := range feats {
				mean += feats[i][j]
			}
			mean /= float64(len(feats))
			for i := range feats {
				diff := feats[i][j] - mean
				sq += diff * diff
			}
			std := math.Sqrt(sq / float64(len(feats)))
			if std < 1e-12 {
				std = 1
			}
			for i := range feats {
				feats[i][j] = (feats[i][j] - mean) / std
			}
		}
	}
	return linalg.SymmetricFromFunc(len(gs), func(i, j int) float64 {
		return linalg.Dot(feats[i], feats[j])
	})
}

// ClassifyWithEmbedder runs the full downstream pipeline of the paper's
// "initial experiments": embed every graph, standardise features, form the
// Gram matrix, and cross-validate a kernel SVM. Returns mean accuracy.
func ClassifyWithEmbedder(e GraphEmbedder, gs []*graph.Graph, labels []int, folds int, rng *rand.Rand) float64 {
	gram := StandardizedGram(e, gs)
	return svm.CrossValidate(gram, labels, folds, svm.DefaultConfig(), rng)
}

// ClassifyWithKernel is the same pipeline for implicit (kernel) methods.
func ClassifyWithKernel(k kernel.Kernel, gs []*graph.Graph, labels []int, folds int, rng *rand.Rand) float64 {
	gram := kernel.Normalize(kernel.Gram(k, gs))
	return svm.CrossValidate(gram, labels, folds, svm.DefaultConfig(), rng)
}

// InducedGraphDistance is dist_f(G,H) = ‖f(G) − f(H)‖ for an explicit
// embedding f — the induced distance measure of the introduction.
func InducedGraphDistance(e GraphEmbedder, g, h *graph.Graph) float64 {
	a, b := e.EmbedGraph(g), e.EmbedGraph(h)
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		var x, y float64
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		s += (x - y) * (x - y)
	}
	return math.Sqrt(s)
}
