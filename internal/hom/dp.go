package hom

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/treedec"
)

// CountTD counts hom(f, g) for an arbitrary connected pattern f via dynamic
// programming over a nice tree decomposition of f, in time roughly
// O(|nodes| · |V(g)|^{tw(f)+1}). Supports pattern vertex labels and weighted
// targets (weights multiply per pattern edge, so unweighted graphs reduce to
// plain counting). Patterns above treedec.MaxExactVertices use the min-fill
// heuristic decomposition instead of the exact one — same counts, possibly a
// slower DP — so oversized patterns of manageable width no longer panic the
// whole job. The DP stays exponential in the decomposition width, so a wide
// pattern on a large target can still be infeasible; that case fails fast
// with a descriptive (recoverable) panic instead of exhausting memory.
//
// Each call compiles the decomposition program afresh; use Compile /
// CorpusVectors to amortise that analysis across many targets.
func CountTD(f, g *graph.Graph) float64 {
	if f.N() == 0 {
		return 1
	}
	prog := compileTD(f)
	sc := scratchPool.Get().(*evalScratch)
	res := prog.eval(sc, g)
	scratchPool.Put(sc)
	return res
}

type niceKind int

const (
	leafNode niceKind = iota
	introduceNode
	forgetNode
	joinNode
)

type niceNode struct {
	kind     niceKind
	bag      []int // sorted pattern vertices
	v        int   // introduced / forgotten vertex
	children []*niceNode
	owned    [][2]int // pattern edges accounted at this introduce node
}

// buildNice converts a tree decomposition into a nice decomposition rooted
// at an empty bag, and assigns every pattern edge to exactly one introduce
// node.
func buildNice(dec *treedec.Decomposition, f *graph.Graph) *niceNode {
	nNodes := len(dec.Bags)
	adj := make([][]int, nNodes)
	for _, e := range dec.Tree {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	var build func(node, parent int) *niceNode
	build = func(node, parent int) *niceNode {
		bag := append([]int(nil), dec.Bags[node]...)
		sort.Ints(bag)
		var kids []*niceNode
		for _, c := range adj[node] {
			if c == parent {
				continue
			}
			sub := build(c, node)
			// Morph sub's bag into this node's bag: forget extras, then
			// introduce missing.
			cur := sub
			curBag := append([]int(nil), cur.bag...)
			for _, v := range diff(curBag, bag) {
				nb := remove(curBag, v)
				cur = &niceNode{kind: forgetNode, bag: nb, v: v, children: []*niceNode{cur}}
				curBag = nb
			}
			for _, v := range diff(bag, curBag) {
				nb := insert(curBag, v)
				cur = &niceNode{kind: introduceNode, bag: nb, v: v, children: []*niceNode{cur}}
				curBag = nb
			}
			kids = append(kids, cur)
		}
		if len(kids) == 0 {
			// Introduce the whole bag above an empty leaf.
			cur := &niceNode{kind: leafNode, bag: nil}
			curBag := []int{}
			for _, v := range bag {
				nb := insert(curBag, v)
				cur = &niceNode{kind: introduceNode, bag: nb, v: v, children: []*niceNode{cur}}
				curBag = nb
			}
			return cur
		}
		cur := kids[0]
		for i := 1; i < len(kids); i++ {
			cur = &niceNode{kind: joinNode, bag: bag, children: []*niceNode{cur, kids[i]}}
		}
		return cur
	}
	root := build(0, -1)
	// Forget everything remaining so the root bag is empty.
	curBag := append([]int(nil), root.bag...)
	for len(curBag) > 0 {
		v := curBag[len(curBag)-1]
		nb := remove(curBag, v)
		root = &niceNode{kind: forgetNode, bag: nb, v: v, children: []*niceNode{root}}
		curBag = nb
	}
	assignEdges(root, f)
	return root
}

// assignEdges gives each pattern edge to the first (lowest, post-order)
// introduce node that can check it: the introduced vertex is an endpoint and
// the other endpoint is in the bag. Self-loops are checked where their
// vertex is introduced.
func assignEdges(root *niceNode, f *graph.Graph) {
	type ekey struct{ u, v int }
	unowned := map[ekey]int{} // normalised edge -> multiplicity
	norm := func(u, v int) ekey {
		if u > v {
			u, v = v, u
		}
		return ekey{u, v}
	}
	for _, e := range f.Edges() {
		unowned[norm(e.U, e.V)]++
	}
	var walk func(n *niceNode)
	walk = func(n *niceNode) {
		for _, c := range n.children {
			walk(c)
		}
		if n.kind != introduceNode {
			return
		}
		for _, u := range n.bag {
			if u == n.v {
				continue
			}
			k := norm(n.v, u)
			for unowned[k] > 0 {
				n.owned = append(n.owned, [2]int{n.v, u})
				unowned[k]--
			}
		}
		lk := norm(n.v, n.v)
		for unowned[lk] > 0 {
			n.owned = append(n.owned, [2]int{n.v, n.v})
			unowned[lk]--
		}
	}
	walk(root)
	for k, c := range unowned {
		if c > 0 {
			panic(fmt.Sprintf("hom: edge %d-%d not covered by decomposition", k.u, k.v)) //x2vec:allow nopanic decomposition invariant, unreachable for valid tree decompositions
		}
	}
}

func diff(a, b []int) []int {
	var out []int
	for _, x := range a {
		if !containsInt(b, x) {
			out = append(out, x)
		}
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func remove(bag []int, v int) []int {
	out := make([]int, 0, len(bag)-1)
	for _, x := range bag {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func insert(bag []int, v int) []int {
	out := append(append([]int(nil), bag...), v)
	sort.Ints(out)
	return out
}

func indexOf(bag []int, v int) int {
	for i, x := range bag {
		if x == v {
			return i
		}
	}
	panic("hom: vertex not in bag") //x2vec:allow nopanic bag-membership invariant guaranteed by the decomposition walker
}

func intPow(n, k int) int {
	r := 1
	for i := 0; i < k; i++ {
		r *= n
	}
	return r
}

// decode writes the mixed-radix digits of idx into assign (least significant
// digit first, matching bag order).
func decode(idx, n int, assign []int) {
	for i := range assign {
		assign[i] = idx % n
		idx /= n
	}
}
