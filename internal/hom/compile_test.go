package hom

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// compiledTestTargets builds the target mix every compiled-vs-naive test
// runs over: plain random graphs, vertex-labelled ones (forcing cycle
// components onto the treewidth program), integer-weighted ones (keeping
// all counts exactly representable), and the structured edge cases.
func compiledTestTargets(rng *rand.Rand, n int) []*graph.Graph {
	targets := []*graph.Graph{
		graph.New(0),
		graph.New(1),
		graph.Cycle(6),
		graph.Petersen(),
		graph.Complete(4),
	}
	for len(targets) < n {
		g := graph.Random(3+rng.Intn(8), 0.4, rng)
		switch rng.Intn(3) {
		case 1:
			for v := 0; v < g.N(); v++ {
				g.SetVertexLabel(v, rng.Intn(3))
			}
		case 2:
			w := graph.New(g.N())
			for _, e := range g.Edges() {
				w.AddWeightedEdge(e.U, e.V, float64(1+rng.Intn(3)))
			}
			g = w
		}
		targets = append(targets, g)
	}
	return targets
}

// TestCompiledVectorMatchesNaive pins the tentpole invariant: the compiled
// class produces bit-identical vectors to the per-call hom.Vector path on
// the standard class, over plain, labelled, and integer-weighted targets.
func TestCompiledVectorMatchesNaive(t *testing.T) {
	class := StandardClass()
	cc := Compile(class)
	rng := rand.New(rand.NewSource(51))
	for ti, g := range compiledTestTargets(rng, 40) {
		want := Vector(class, g)
		got := cc.Vector(g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("target %d (%v): pattern %d compiled=%v naive=%v", ti, g, i, got[i], want[i])
			}
		}
		wantLog := LogScaledVector(class, g)
		gotLog := cc.LogScaledVector(g)
		for i := range wantLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("target %d: log entry %d compiled=%v naive=%v", ti, i, gotLog[i], wantLog[i])
			}
		}
	}
}

// TestCompiledTDAndDisconnectedPatterns exercises the treewidth program and
// the component-product path: dense patterns, labelled cycles (which must
// refuse the trace fast path), and disjoint unions mixing kinds.
func TestCompiledTDAndDisconnectedPatterns(t *testing.T) {
	labCycle := graph.Cycle(5)
	labCycle.SetVertexLabel(0, 2)
	class := []*graph.Graph{
		graph.Complete(4),
		graph.Fig5Graph(),
		graph.Grid(2, 3),
		graph.CompleteBipartite(2, 3),
		labCycle,
		graph.DisjointUnion(graph.Cycle(4), graph.AllTrees(4)[0]),
		graph.DisjointUnion(graph.Complete(3), graph.Path(3)),
		graph.New(0),
		graph.New(2),
	}
	cc := Compile(class)
	rng := rand.New(rand.NewSource(52))
	for ti, g := range compiledTestTargets(rng, 25) {
		want := Vector(class, g)
		got := cc.Vector(g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("target %d (%v): pattern %d compiled=%v naive=%v", ti, g, i, got[i], want[i])
			}
		}
	}
}

// TestCorpusVectorsMatchSingle pins the corpus contract: one batched
// CorpusVectors pass equals independent Vector calls, deterministically
// across repeated (parallel) runs.
func TestCorpusVectorsMatchSingle(t *testing.T) {
	class := StandardClass()
	cc := Compile(class)
	rng := rand.New(rand.NewSource(53))
	gs := compiledTestTargets(rng, 30)
	first := CorpusVectors(cc, gs)
	if len(first) != len(gs) {
		t.Fatalf("%d corpus vectors for %d graphs", len(first), len(gs))
	}
	for rep := 0; rep < 2; rep++ {
		batch := CorpusVectors(cc, gs)
		for i, g := range gs {
			single := cc.Vector(g)
			for j := range single {
				if batch[i][j] != single[j] || batch[i][j] != first[i][j] {
					t.Fatalf("graph %d pattern %d: corpus=%v single=%v first=%v", i, j, batch[i][j], single[j], first[i][j])
				}
			}
		}
	}
	logs := CorpusLogScaledVectors(cc, gs)
	for i, g := range gs {
		single := LogScaledVector(class, g)
		for j := range single {
			if logs[i][j] != single[j] {
				t.Fatalf("graph %d: log corpus %v != naive %v", i, logs[i][j], single[j])
			}
		}
	}
}

// TestCompiledClassConcurrentUse hammers one compiled class from many
// goroutines (run under -race in CI): the class must be read-only and the
// pooled scratches properly isolated.
func TestCompiledClassConcurrentUse(t *testing.T) {
	class := StandardClass()
	cc := Compile(class)
	rng := rand.New(rand.NewSource(54))
	gs := compiledTestTargets(rng, 12)
	want := make([][]float64, len(gs))
	for i, g := range gs {
		want[i] = Vector(class, g)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			for rep := 0; rep < 5; rep++ {
				for i, g := range gs {
					got := cc.Vector(g)
					for j := range got {
						if got[j] != want[i][j] {
							done <- errMismatch
							return
						}
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errString("concurrent compiled evaluation diverged")

type errString string

func (e errString) Error() string { return string(e) }
