package hom

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/treedec"
)

// bruteWeighted is the weighted brute-force oracle: the partition function
// Σ_h Π_{uv ∈ E(F)} α(h(u), h(v)) over all label-respecting vertex maps. On
// unweighted targets it coincides with BruteForce; with integer weights every
// product and sum is exactly representable, so the fast paths must match it
// bit for bit.
func bruteWeighted(f, g *graph.Graph) float64 {
	nf, ng := f.N(), g.N()
	if nf == 0 {
		return 1
	}
	if ng == 0 {
		return 0
	}
	assign := make([]int, nf)
	var total float64
	var rec func(i int)
	rec = func(i int) {
		if i == nf {
			w := 1.0
			for _, e := range f.Edges() {
				w *= g.EdgeWeight(assign[e.U], assign[e.V])
				if w == 0 {
					return
				}
			}
			total += w
			return
		}
		for v := 0; v < ng; v++ {
			if f.VertexLabel(i) != 0 && f.VertexLabel(i) != g.VertexLabel(v) {
				continue
			}
			assign[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return total
}

// randomConnectedPattern draws a random connected simple pattern on up to
// maxN vertices: a random tree plus a few random chords, so the draw mixes
// trees, cycles, and genuinely treewidth-≥2 patterns.
func randomConnectedPattern(rng *rand.Rand, maxN int) *graph.Graph {
	n := 2 + rng.Intn(maxN-1)
	f := graph.RandomTree(n, rng)
	for extra := rng.Intn(3); extra > 0; extra-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !f.HasEdge(u, v) {
			f.AddEdge(u, v)
		}
	}
	return f
}

// mutateTarget returns the target in one of three flavours: plain,
// vertex-labelled, or integer-weighted (weights 1..3 keep all counts exact).
func mutateTarget(g *graph.Graph, flavour int, rng *rand.Rand) *graph.Graph {
	switch flavour {
	case 1:
		g = g.Clone()
		for v := 0; v < g.N(); v++ {
			g.SetVertexLabel(v, rng.Intn(3))
		}
	case 2:
		w := graph.New(g.N())
		for _, e := range g.Edges() {
			w.AddWeightedEdge(e.U, e.V, float64(1+rng.Intn(3)))
		}
		g = w
	}
	return g
}

// TestDifferentialRandomPatterns pins Count and the compiled path to the
// brute-force oracle on random connected patterns (≤7 vertices, sometimes
// vertex-labelled) against random plain, labelled, and weighted targets.
func TestDifferentialRandomPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	trials := 60
	if testing.Short() {
		trials = 20
	}
	for trial := 0; trial < trials; trial++ {
		f := randomConnectedPattern(rng, 7)
		if trial%3 == 1 {
			for v := 0; v < f.N(); v++ {
				f.SetVertexLabel(v, rng.Intn(3))
			}
		}
		g := mutateTarget(graph.Random(5, 0.5, rng), trial%3, rng)
		want := bruteWeighted(f, g)
		if got := Count(f, g); got != want {
			t.Fatalf("trial %d: Count(%v, %v)=%v, brute=%v", trial, f, g, got, want)
		}
		if got := Compile([]*graph.Graph{f}).Vector(g)[0]; got != want {
			t.Fatalf("trial %d: compiled(%v, %v)=%v, brute=%v", trial, f, g, got, want)
		}
	}
}

// TestDifferentialDispatchBranches crosses every dispatch branch with every
// applicable specialised counter AND the oracle: tree patterns through
// CountTree, cycles through CountCycle and CountTD, dense patterns through
// CountTD, each on plain / labelled / weighted targets.
func TestDifferentialDispatchBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	var trees []*graph.Graph
	for n := 1; n <= 6; n++ {
		trees = append(trees, graph.AllTrees(n)...)
	}
	var cycles []*graph.Graph
	for k := 3; k <= 7; k++ {
		cycles = append(cycles, graph.Cycle(k))
	}
	dense := []*graph.Graph{
		graph.Complete(4), graph.Fig5Graph(), graph.Grid(2, 3),
		graph.CompleteBipartite(2, 3), graph.Complete(5),
	}
	for flavour := 0; flavour < 3; flavour++ {
		g := mutateTarget(graph.Random(5, 0.5, rng), flavour, rng)
		for _, f := range trees {
			want := bruteWeighted(f, g)
			if got := CountTree(f, g); got != want {
				t.Fatalf("flavour %d: CountTree(%v)=%v, brute=%v on %v", flavour, f, got, want, g)
			}
			if got := Count(f, g); got != want {
				t.Fatalf("flavour %d: Count(tree %v)=%v, brute=%v", flavour, f, got, want)
			}
		}
		for _, f := range cycles {
			want := bruteWeighted(f, g)
			if !g.HasVertexLabels() {
				if got := CountCycle(f.N(), g); got != want {
					t.Fatalf("flavour %d: CountCycle(%d)=%v, brute=%v on %v", flavour, f.N(), got, want, g)
				}
			}
			if got := CountTD(f, g); got != want {
				t.Fatalf("flavour %d: CountTD(cycle %d)=%v, brute=%v", flavour, f.N(), got, want)
			}
			if got := Count(f, g); got != want {
				t.Fatalf("flavour %d: Count(cycle %d)=%v, brute=%v", flavour, f.N(), got, want)
			}
		}
		for _, f := range dense {
			want := bruteWeighted(f, g)
			if got := CountTD(f, g); got != want {
				t.Fatalf("flavour %d: CountTD(%v)=%v, brute=%v", flavour, f, got, want)
			}
			if got := Count(f, g); got != want {
				t.Fatalf("flavour %d: Count(%v)=%v, brute=%v", flavour, f, got, want)
			}
		}
		// The whole branch mix again through one compiled class.
		all := append(append(append([]*graph.Graph{}, trees...), cycles...), dense...)
		cc := Compile(all)
		got := cc.Vector(g)
		for i, f := range all {
			if want := bruteWeighted(f, g); got[i] != want {
				t.Fatalf("flavour %d: compiled pattern %d (%v)=%v, brute=%v", flavour, i, f, got[i], want)
			}
		}
	}
}

// TestLoopPatternsCountInsteadOfPanicking is the regression test for the
// self-loop edge assignment: a pattern with a self-loop used to panic
// assignEdges ("edge not covered by decomposition") through hom.Count and
// hom.Compile. A loop now contributes the target's loop weight (0 without a
// loop, 1 per plain loop), matching the boolean brute-force oracle on
// unweighted targets.
func TestLoopPatternsCountInsteadOfPanicking(t *testing.T) {
	loopy := graph.Complete(3)
	loopy.AddEdge(0, 0)
	single := graph.New(1)
	single.AddEdge(0, 0)
	patterns := []*graph.Graph{loopy, single}
	k3loop := graph.Complete(3)
	k3loop.AddEdge(0, 0)
	targets := []*graph.Graph{graph.Complete(3), k3loop, graph.Cycle(4), graph.New(1)}
	for pi, f := range patterns {
		for ti, g := range targets {
			want := BruteForce(f, g)
			if got := Count(f, g); got != want {
				t.Errorf("pattern %d target %d: Count=%v, brute=%v", pi, ti, got, want)
			}
			if got := Compile([]*graph.Graph{f}).Vector(g)[0]; got != want {
				t.Errorf("pattern %d target %d: compiled=%v, brute=%v", pi, ti, got, want)
			}
		}
	}
}

// TestOversizedPatternFallsBackInsteadOfPanicking is the regression test for
// the treedec size-limit bugfix: a 24-vertex non-tree non-cycle pattern used
// to panic the whole job through hom.Count (exact treewidth is capped at 20
// vertices); now it falls back to the min-fill decomposition.
func TestOversizedPatternFallsBackInsteadOfPanicking(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	f := graph.RandomTree(24, rng)
	added := 0
	for added < 2 {
		u, v := rng.Intn(24), rng.Intn(24)
		if u != v && !f.HasEdge(u, v) {
			f.AddEdge(u, v)
			added++
		}
	}
	// A tree plus two chords has a low-degree vertex everywhere, so it is
	// 3-colourable: hom into K3 must be strictly positive.
	if got := Count(f, graph.Complete(3)); got <= 0 {
		t.Fatalf("Count(oversized pattern, K3)=%v, want > 0", got)
	}
	if got := Compile([]*graph.Graph{f}).Vector(graph.Complete(3))[0]; got <= 0 {
		t.Fatalf("compiled oversized pattern = %v, want > 0", got)
	}
}

// TestOversizedPatternMatchesBruteForceOnK2 checks the fallback still counts
// correctly: against a 2-vertex target the brute oracle stays feasible even
// for a 23-vertex pattern.
func TestOversizedPatternMatchesBruteForceOnK2(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	f := graph.RandomTree(23, rng)
	for {
		u, v := rng.Intn(23), rng.Intn(23)
		if u != v && !f.HasEdge(u, v) {
			f.AddEdge(u, v)
			break
		}
	}
	g := graph.Complete(2)
	want := BruteForce(f, g)
	if got := Count(f, g); got != want {
		t.Fatalf("Count(23-vertex pattern, K2)=%v, brute=%v", got, want)
	}
}

// TestLoopyTargetsMatchBruteForce pins the adjacency-diagonal loop
// convention across the whole counting stack: on unweighted targets with
// self-loops, trees (DP), cycles (trace), and dense patterns (treewidth DP)
// must all agree with the boolean brute force.
func TestLoopyTargetsMatchBruteForce(t *testing.T) {
	target := graph.Cycle(4)
	target.AddEdge(0, 0)
	target.AddEdge(2, 2)
	patterns := []*graph.Graph{
		graph.Path(2), graph.Path(3), graph.Star(3), // trees
		graph.Cycle(3), graph.Cycle(4), // cycles (trace path)
		graph.Complete(4), graph.Fig5Graph(), // treewidth DP
	}
	cc := Compile(patterns)
	vec := cc.Vector(target)
	for i, f := range patterns {
		want := BruteForce(f, target)
		if got := Count(f, target); got != want {
			t.Errorf("pattern %d (%v): Count=%v, brute=%v", i, f, got, want)
		}
		if vec[i] != want {
			t.Errorf("pattern %d (%v): compiled=%v, brute=%v", i, f, vec[i], want)
		}
	}
}

// TestInfeasibleWidthFailsFast: a wide oversized pattern on a large target
// would need a DP table beyond any feasible memory; the evaluator must fail
// immediately with a descriptive panic rather than exhausting memory (or
// overflowing the table size) deep into the allocation.
func TestInfeasibleWidthFailsFast(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a descriptive panic for an infeasible DP width")
		}
	}()
	// K22 exceeds the exact-treewidth cap (min-fill fallback, width 21);
	// against a 1000-vertex target the third table already overflows the cap.
	Count(graph.Complete(22), graph.New(1000))
}

// TestOversizedTreewidthSentinel pins the error-returning treedec API the
// fallback is built on.
func TestOversizedTreewidthSentinel(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	big := graph.RandomTree(treedec.MaxExactVertices+1, rng)
	if _, err := treedec.ExactTreewidth(big); err != treedec.ErrTooLarge {
		t.Fatalf("ExactTreewidth(n=%d) err=%v, want ErrTooLarge", big.N(), err)
	}
	small := graph.Cycle(5)
	if w, err := treedec.ExactTreewidth(small); err != nil || w != 2 {
		t.Fatalf("ExactTreewidth(C5) = %d, %v; want 2, nil", w, err)
	}
}
