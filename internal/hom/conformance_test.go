package hom

// Theory-conformance suite for Section 4 / Dvořák / Dell–Grohe–Rattan:
// homomorphism indistinguishability over trees coincides with 1-WL
// equivalence (Theorem 4.4), checked against the WL engine's canonical
// colours, and path indistinguishability is consistent with it (paths are
// trees, so tree equivalence must imply path equivalence).

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/wl"
)

// wlEquivalent decides 1-WL equivalence through the engine's canonical
// colour ids: equal final-round colour histograms (ids are process-globally
// canonical, so histograms of independently refined graphs are comparable).
func wlEquivalent(g, h *graph.Graph) bool {
	rounds := g.N()
	if h.N() > rounds {
		rounds = h.N()
	}
	cg := wl.CanonicalColors(g, rounds)
	ch := wl.CanonicalColors(h, rounds)
	hist := func(round []int) map[int]int {
		m := map[int]int{}
		for _, c := range round {
			m[c]++
		}
		return m
	}
	hg, hh := hist(cg[rounds]), hist(ch[rounds])
	if len(hg) != len(hh) {
		return false
	}
	for c, k := range hg {
		if hh[c] != k {
			return false
		}
	}
	return true
}

// permuted returns an isomorphic copy of g under a random vertex permutation.
func permuted(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	perm := rng.Perm(g.N())
	h := graph.New(g.N())
	for v := 0; v < g.N(); v++ {
		h.SetVertexLabel(perm[v], g.VertexLabel(v))
	}
	for _, e := range g.Edges() {
		h.AddWeightedEdge(perm[e.U], perm[e.V], e.Weight)
	}
	return h
}

// TestTreeIndistinguishableMatchesWLOnRandomPairs checks Theorem 4.4 /
// Dvořák both ways on random pairs: equal tree-hom vectors exactly when
// 1-WL cannot tell the graphs apart. Isomorphic (permuted) pairs and pairs
// of same-degree regular graphs supply the indistinguishable side; generic
// random pairs the distinguishable one.
func TestTreeIndistinguishableMatchesWLOnRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	type pair struct{ g, h *graph.Graph }
	var pairs []pair
	for i := 0; i < 12; i++ {
		g := graph.Random(4+rng.Intn(4), 0.45, rng)
		pairs = append(pairs, pair{g, graph.Random(g.N(), 0.45, rng)})
		pairs = append(pairs, pair{g, permuted(g, rng)})
	}
	// Same-degree regular graphs are 1-WL-equivalent whatever their
	// structure; tree homs must agree too (hom(T, G) = n·d^{|E(T)|}).
	for i := 0; i < 4; i++ {
		pairs = append(pairs, pair{graph.RandomRegular(8, 3, rng), graph.RandomRegular(8, 3, rng)})
	}
	for i, p := range pairs {
		wlSame := wlEquivalent(p.g, p.h)
		homSame := TreeIndistinguishable(p.g, p.h)
		if wlSame != homSame {
			t.Fatalf("pair %d: WL equivalent=%v but tree-hom indistinguishable=%v\ng=%v\nh=%v",
				i, wlSame, homSame, p.g, p.h)
		}
	}
}

// TestTreeIndistinguishabilityClassicPair pins the classic C6 vs 2·C3
// example: 1-WL-equivalent (hence tree- and path-hom-indistinguishable) yet
// separated by cycle homs and non-isomorphic.
func TestTreeIndistinguishabilityClassicPair(t *testing.T) {
	g, h := graph.WLIndistinguishablePair()
	if !wlEquivalent(g, h) {
		t.Error("C6 and 2C3 should be 1-WL equivalent")
	}
	if !TreeIndistinguishable(g, h) {
		t.Error("C6 and 2C3 should be tree-hom indistinguishable (Theorem 4.4)")
	}
	if !PathIndistinguishable(g, h) {
		t.Error("paths are trees: C6 and 2C3 must be path-hom indistinguishable")
	}
	if CycleIndistinguishable(g, h) {
		t.Error("hom(C3, ·) separates C6 from 2C3 (0 vs 12)")
	}
	if graph.Isomorphic(g, h) {
		t.Error("C6 and 2C3 are not isomorphic")
	}
}

// TestPathIndistinguishabilityConsistency checks the containment hierarchy
// on random pairs: tree equivalence implies path equivalence (paths ⊆
// trees), isomorphic pairs are path-equivalent, and a path-hom difference
// always certifies a tree-hom difference.
func TestPathIndistinguishabilityConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 15; i++ {
		g := graph.Random(4+rng.Intn(4), 0.45, rng)
		var h *graph.Graph
		if i%3 == 0 {
			h = permuted(g, rng)
		} else {
			h = graph.Random(g.N(), 0.45, rng)
		}
		treeSame := TreeIndistinguishable(g, h)
		pathSame := PathIndistinguishable(g, h)
		if treeSame && !pathSame {
			t.Fatalf("pair %d: tree-indistinguishable but path homs differ\ng=%v\nh=%v", i, g, h)
		}
		if i%3 == 0 && !pathSame {
			t.Fatalf("pair %d: isomorphic graphs with different path homs", i)
		}
	}
}
