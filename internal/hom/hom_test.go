package hom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestExample41StarCounts(t *testing.T) {
	// Example 4.1: for the Figure 5 graph (reconstructed as the paw graph),
	// hom(S2, G) = 18 and hom(S4, G) = 114, via hom(S_k,G) = Σ_v deg(v)^k.
	g := graph.Fig5Graph()
	if got := Count(graph.Star(2), g); got != 18 {
		t.Errorf("hom(S2, paw) = %v, want 18", got)
	}
	if got := Count(graph.Star(4), g); got != 114 {
		t.Errorf("hom(S4, paw) = %v, want 114", got)
	}
}

func TestStarFormula(t *testing.T) {
	// hom(S_k, G) = Σ_v deg(v)^k for every G.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(7, 0.5, rng)
		for k := 1; k <= 4; k++ {
			var want float64
			for v := 0; v < g.N(); v++ {
				want += math.Pow(float64(g.Degree(v)), float64(k))
			}
			if got := Count(graph.Star(k), g); got != want {
				t.Errorf("trial %d: hom(S%d)=%v, want %v", trial, k, got, want)
			}
		}
	}
}

func TestExample47PathCounts(t *testing.T) {
	// Example 4.7: the co-spectral pair has hom(P3, K1,4) = 20 and
	// hom(P3, C4+K1) = 16.
	g, h := graph.CospectralPair()
	if got := CountPath(3, g); got != 20 {
		t.Errorf("hom(P3, K1,4) = %v, want 20", got)
	}
	if got := CountPath(3, h); got != 16 {
		t.Errorf("hom(P3, C4+K1) = %v, want 16", got)
	}
}

func TestBruteForceBasics(t *testing.T) {
	tests := []struct {
		name string
		f, g *graph.Graph
		want float64
	}{
		{"K1 into K3", graph.New(1), graph.Complete(3), 3},
		{"K2 into K3", graph.Path(2), graph.Complete(3), 6},
		{"K3 into K3", graph.Complete(3), graph.Complete(3), 6},
		{"K3 into C5", graph.Complete(3), graph.Cycle(5), 0},
		{"P3 into K3", graph.Path(3), graph.Complete(3), 12},
		{"C4 into K3", graph.Cycle(4), graph.Complete(3), 18},
		{"C3 into bipartite", graph.Cycle(3), graph.CompleteBipartite(2, 2), 0},
		{"empty pattern", graph.New(0), graph.Complete(3), 1},
	}
	for _, tc := range tests {
		if got := BruteForce(tc.f, tc.g); got != tc.want {
			t.Errorf("%s: BruteForce=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBruteForceDirected(t *testing.T) {
	dpath := func(n int) *graph.Graph {
		g := graph.NewDirected(n)
		for i := 0; i+1 < n; i++ {
			g.AddEdge(i, i+1)
		}
		return g
	}
	dcycle := func(n int) *graph.Graph {
		g := graph.NewDirected(n)
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		return g
	}
	revArc := graph.NewDirected(2)
	revArc.AddEdge(1, 0) // forces the in-arc consistency check at vertex 0
	tests := []struct {
		name string
		f, g *graph.Graph
		want float64
	}{
		{"arc into dP3", dpath(2), dpath(3), 2},
		{"arc into dC3", dpath(2), dcycle(3), 3},
		{"reversed arc into dP3", revArc, dpath(3), 2},
		{"dP3 into dP3", dpath(3), dpath(3), 1}, // directed walks of length 2
		{"dP3 into dC3", dpath(3), dcycle(3), 3},
		{"dC3 into dP3", dcycle(3), dpath(3), 0},
	}
	for _, tc := range tests {
		if got := BruteForce(tc.f, tc.g); got != tc.want {
			t.Errorf("%s: BruteForce=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	patterns := []*graph.Graph{
		graph.Path(3), graph.Path(4), graph.Cycle(3), graph.Cycle(4),
		graph.Cycle(5), graph.Star(3), graph.Complete(4), graph.Fig5Graph(),
		graph.DisjointUnion(graph.Path(2), graph.Cycle(3)),
		graph.CompleteBipartite(2, 2),
	}
	for trial := 0; trial < 6; trial++ {
		g := graph.Random(6, 0.5, rng)
		for _, f := range patterns {
			want := BruteForce(f, g)
			if got := Count(f, g); got != want {
				t.Errorf("trial %d: Count(%v)=%v, brute=%v on %v", trial, f, got, want, g)
			}
		}
	}
}

func TestCountTDMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	patterns := []*graph.Graph{
		graph.Cycle(4), graph.Complete(4), graph.Fig5Graph(), graph.Grid(2, 3),
		graph.CompleteBipartite(2, 3),
	}
	for trial := 0; trial < 5; trial++ {
		g := graph.Random(6, 0.6, rng)
		for _, f := range patterns {
			want := BruteForce(f, g)
			if got := CountTD(f, g); got != want {
				t.Errorf("trial %d: CountTD(%v)=%v, brute=%v on %v", trial, f, got, want, g)
			}
		}
	}
}

func TestCountTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 5; trial++ {
		g := graph.Random(6, 0.5, rng)
		for n := 1; n <= 6; n++ {
			for _, f := range graph.AllTrees(n) {
				want := BruteForce(f, g)
				if got := CountTree(f, g); got != want {
					t.Errorf("trial %d: CountTree(%v)=%v, brute=%v", trial, f, got, want)
				}
			}
		}
	}
}

func TestCountPathCycleClosedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 5; trial++ {
		g := graph.Random(6, 0.5, rng)
		for k := 1; k <= 5; k++ {
			if got, want := CountPath(k, g), BruteForce(graph.Path(k), g); got != want {
				t.Errorf("CountPath(%d)=%v, want %v", k, got, want)
			}
		}
		for k := 3; k <= 6; k++ {
			if got, want := CountCycle(k, g), BruteForce(graph.Cycle(k), g); got != want {
				t.Errorf("CountCycle(%d)=%v, want %v", k, got, want)
			}
		}
	}
}

func TestRootedCountsSumToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	g := graph.Random(7, 0.4, rng)
	for n := 2; n <= 5; n++ {
		for _, f := range graph.AllTrees(n) {
			per := CountTreeRooted(f, 0, g)
			var sum float64
			for _, c := range per {
				sum += c
			}
			if total := CountTree(f, g); sum != total {
				t.Errorf("rooted counts sum %v != total %v for %v", sum, total, f)
			}
		}
	}
}

func TestBruteForceRootedMatchesTreeDP(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := graph.Random(5, 0.5, rng)
	for _, f := range graph.AllTrees(4) {
		for r := 0; r < f.N(); r++ {
			per := CountTreeRooted(f, r, g)
			for v := 0; v < g.N(); v++ {
				if got := BruteForceRooted(f, r, g, v); got != per[v] {
					t.Errorf("rooted brute %v vs DP %v (tree %v root %d target %d)", got, per[v], f, r, v)
				}
			}
		}
	}
}

func TestHomMultiplicativeOverDisjointUnion(t *testing.T) {
	// hom(F, G) where F = F1 ∪ F2 equals hom(F1,G)·hom(F2,G).
	f1, f2 := graph.Cycle(3), graph.Path(3)
	f := graph.DisjointUnion(f1, f2)
	g := graph.Complete(4)
	if got, want := Count(f, g), Count(f1, g)*Count(f2, g); got != want {
		t.Errorf("union multiplicativity: %v != %v", got, want)
	}
}

func TestHomIntoDisjointUnionAdditiveForConnected(t *testing.T) {
	// For connected F: hom(F, G1 ∪ G2) = hom(F,G1) + hom(F,G2).
	f := graph.Cycle(3)
	g1, g2 := graph.Complete(3), graph.Complete(4)
	u := graph.DisjointUnion(g1, g2)
	if got, want := Count(f, u), Count(f, g1)+Count(f, g2); got != want {
		t.Errorf("additivity: %v != %v", got, want)
	}
}

func TestWeightedTreeHomsArePartitionFunctions(t *testing.T) {
	// Single weighted edge: hom(P2, G) = Σ_{u,v} α(u,v) over ordered pairs.
	g := graph.New(2)
	g.AddWeightedEdge(0, 1, 2.5)
	if got := Count(graph.Path(2), g); got != 5 {
		t.Errorf("weighted hom(P2)=%v, want 5 (2.5 both directions)", got)
	}
	// P3 through the weighted edge: walks of length 2: v0-v1-v0 (2.5*2.5)
	// and v1-v0-v1: total 12.5.
	if got := Count(graph.Path(3), g); got != 12.5 {
		t.Errorf("weighted hom(P3)=%v, want 12.5", got)
	}
}

func TestWeightedCycleHom(t *testing.T) {
	// Triangle with weights 2,3,4: hom(C3) = trace(A^3) = 6·(2·3·4) = 144.
	g := graph.New(3)
	g.AddWeightedEdge(0, 1, 2)
	g.AddWeightedEdge(1, 2, 3)
	g.AddWeightedEdge(2, 0, 4)
	if got := Count(graph.Cycle(3), g); got != 144 {
		t.Errorf("weighted hom(C3)=%v, want 144", got)
	}
}

func TestEmbEpiAut(t *testing.T) {
	k3, p3 := graph.Complete(3), graph.Path(3)
	if got := Emb(p3, k3); got != 6 {
		t.Errorf("emb(P3,K3)=%v, want 6", got)
	}
	if got := Emb(k3, p3); got != 0 {
		t.Errorf("emb(K3,P3)=%v, want 0", got)
	}
	if got := Epi(p3, graph.Path(2)); got != 2 {
		// P3 onto K2: middle vertex to one side, ends to other: 2 ways.
		t.Errorf("epi(P3,K2)=%v, want 2", got)
	}
	if got := Epi(graph.Path(2), p3); got != 0 {
		t.Errorf("epi(K2,P3)=%v, want 0", got)
	}
	if got := Aut(graph.Cycle(4)); got != 8 {
		t.Errorf("aut(C4)=%v, want 8", got)
	}
}

func TestHomDecomposition42(t *testing.T) {
	// Equation (4.2): hom(F,F') = Σ_{F''} epi(F,F'')·emb(F'',F')/aut(F'').
	f := graph.Path(3)
	fp := graph.Complete(3)
	var sum float64
	for n := 1; n <= 3; n++ {
		for _, fpp := range graph.AllGraphs(n) {
			sum += Epi(f, fpp) * Emb(fpp, fp) / Aut(fpp)
		}
	}
	if want := Count(f, fp); sum != want {
		t.Errorf("decomposition sum %v != hom %v", sum, want)
	}
}

func TestLovaszSystemOrder3(t *testing.T) {
	sys := NewLovaszSystem(3)
	if !sys.TriangularityHolds() {
		t.Error("P should be lower triangular and M upper triangular with positive diagonals")
	}
	if !sys.FactorisationHolds() {
		t.Error("HOM = P·D·M factorisation fails")
	}
}

func TestLovaszSystemOrder4(t *testing.T) {
	if testing.Short() {
		t.Skip("order-4 Lovász system is slower")
	}
	sys := NewLovaszSystem(4)
	if !sys.TriangularityHolds() {
		t.Error("triangularity fails at order 4")
	}
	if !sys.FactorisationHolds() {
		t.Error("factorisation fails at order 4")
	}
}

func TestTheorem42HomVectorsDetermineIsomorphism(t *testing.T) {
	// Over all pairs of graphs of order <= 4: equality of hom vectors over
	// patterns of order <= 4 iff isomorphic.
	var all []*graph.Graph
	for n := 1; n <= 4; n++ {
		all = append(all, graph.AllGraphs(n)...)
	}
	for i, g := range all {
		for j, h := range all {
			same := true
			for _, f := range all {
				if Count(f, g) != Count(f, h) {
					same = false
					break
				}
			}
			wantSame := i == j
			if same != wantSame {
				t.Errorf("hom-vector equality=%v for %v vs %v (iso catalogue index %d,%d)", same, g, h, i, j)
			}
		}
	}
}

func TestCospectralHaveEqualCycleHoms(t *testing.T) {
	// Theorem 4.3: co-spectral iff equal cycle homs; the Figure 6 pair.
	g, h := graph.CospectralPair()
	if !CycleIndistinguishable(g, h) {
		t.Error("co-spectral pair should be cycle-hom-indistinguishable")
	}
	if PathIndistinguishable(g, h) {
		t.Error("Example 4.7: path homs distinguish the co-spectral pair")
	}
}

func TestTreeIndistinguishabilityC6vs2C3(t *testing.T) {
	g, h := graph.WLIndistinguishablePair()
	if !TreeIndistinguishable(g, h) {
		t.Error("C6 and 2C3 should be tree-hom-indistinguishable (both 2-regular)")
	}
	if CycleIndistinguishable(g, h) {
		t.Error("C6 and 2C3 differ on hom(C3, ·): 0 vs 12")
	}
}

func TestVectorAndLogScaledVector(t *testing.T) {
	class := StandardClass()
	if len(class) != 20 {
		t.Errorf("StandardClass size=%d, want 20 (11 binary trees + 9 cycles)", len(class))
	}
	g := graph.Petersen()
	v := Vector(class, g)
	lv := LogScaledVector(class, g)
	if len(v) != 20 || len(lv) != 20 {
		t.Fatal("vector lengths wrong")
	}
	for i := range v {
		want := math.Log1p(v[i]) / float64(class[i].N())
		if math.Abs(lv[i]-want) > 1e-12 {
			t.Errorf("log-scaled entry %d = %v, want %v", i, lv[i], want)
		}
	}
}

func TestQuickHomCountInvariantUnderTargetIsomorphism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.Random(6, 0.5, rng)
		perm := rng.Perm(6)
		h := graph.New(6)
		for _, e := range g.Edges() {
			h.AddEdge(perm[e.U], perm[e.V])
		}
		pattern := graph.AllTrees(4)[rng.Intn(len(graph.AllTrees(4)))]
		return Count(pattern, g) == Count(pattern, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickHomSubgraphMonotone(t *testing.T) {
	// Adding an edge to the target never decreases hom counts.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.Random(6, 0.4, rng)
		h := g.Clone()
		u, v := rng.Intn(6), rng.Intn(6)
		if u == v {
			return true
		}
		if !h.HasEdge(u, v) {
			h.AddEdge(u, v)
		}
		pattern := graph.Cycle(4)
		return Count(pattern, h) >= Count(pattern, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAllRootedTrees(t *testing.T) {
	trees, roots := AllRootedTrees(3)
	// n=1: 1 tree × 1 root; n=2: 1 × 2; n=3: 1 × 3 => 6 rooted entries.
	if len(trees) != 6 || len(roots) != 6 {
		t.Errorf("AllRootedTrees(3): %d trees %d roots, want 6 each", len(trees), len(roots))
	}
}

func TestLabelledHomCounts(t *testing.T) {
	// Pattern with labels only maps onto matching labels.
	f := graph.Path(2)
	f.SetVertexLabel(0, 1)
	f.SetVertexLabel(1, 2)
	g := graph.Path(2)
	g.SetVertexLabel(0, 1)
	g.SetVertexLabel(1, 2)
	if got := BruteForce(f, g); got != 1 {
		t.Errorf("labelled hom=%v, want 1", got)
	}
	if got := CountTree(f, g); got != 1 {
		t.Errorf("labelled tree DP=%v, want 1", got)
	}
	if got := CountTD(f, g); got != 1 {
		t.Errorf("labelled TD DP=%v, want 1", got)
	}
}

func TestDirectedHomomorphisms(t *testing.T) {
	// Theorem 4.11 setting: homomorphisms of directed patterns preserve
	// direction. The directed path 0->1->2 has no hom into the reverse
	// orientation beyond... check small cases exactly.
	p3 := graph.NewDirected(3)
	p3.AddEdge(0, 1)
	p3.AddEdge(1, 2)
	// Directed triangle cycle.
	c3 := graph.NewDirected(3)
	c3.AddEdge(0, 1)
	c3.AddEdge(1, 2)
	c3.AddEdge(2, 0)
	if got := BruteForce(p3, c3); got != 3 {
		t.Errorf("hom(directed P3, directed C3)=%v, want 3 (one start per vertex)", got)
	}
	// Anti-parallel edge pair admits back-and-forth walks.
	two := graph.NewDirected(2)
	two.AddEdge(0, 1)
	two.AddEdge(1, 0)
	if got := BruteForce(p3, two); got != 2 {
		t.Errorf("hom(directed P3, 2-cycle)=%v, want 2", got)
	}
	// A single directed edge admits no directed 2-step walk.
	one := graph.NewDirected(2)
	one.AddEdge(0, 1)
	if got := BruteForce(p3, one); got != 0 {
		t.Errorf("hom(directed P3, single arc)=%v, want 0", got)
	}
}

func TestDirectedHomVectorsSeparateOrientations(t *testing.T) {
	// Theorem 4.11: homs from DAGs determine directed graphs up to
	// isomorphism. Directed C3 vs a directed path triangle (one edge
	// reversed) are separated by the directed P3 pattern.
	c3 := graph.NewDirected(3)
	c3.AddEdge(0, 1)
	c3.AddEdge(1, 2)
	c3.AddEdge(2, 0)
	acyclic := graph.NewDirected(3)
	acyclic.AddEdge(0, 1)
	acyclic.AddEdge(1, 2)
	acyclic.AddEdge(0, 2)
	p3 := graph.NewDirected(3)
	p3.AddEdge(0, 1)
	p3.AddEdge(1, 2)
	if BruteForce(p3, c3) == BruteForce(p3, acyclic) {
		t.Error("directed P3 homs should separate the cyclic and transitive triangles")
	}
}
