package hom

// Corpus API over the compiled-pattern engine: one Compile per class, n
// evaluations across a linalg.ParallelFor worker pool with per-goroutine
// pooled DP scratch — the homomorphism-side analogue of wl.RefineCorpus.

import (
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// Vector returns hom(F, g) for every pattern of the compiled class,
// bit-identical to hom.Vector on the same class (integer-exact targets; see
// the package notes in compile.go).
func (c *CompiledClass) Vector(g *graph.Graph) []float64 {
	sc := scratchPool.Get().(*evalScratch)
	out := make([]float64, len(c.pats))
	c.vectorInto(sc, g, out)
	scratchPool.Put(sc)
	return out
}

// LogScaledVector returns the log(1+hom)/|F| embedding of Section 4 from
// the compiled class, matching hom.LogScaledVector entry for entry.
func (c *CompiledClass) LogScaledVector(g *graph.Graph) []float64 {
	out := c.Vector(g)
	c.logScaleInPlace(out)
	return out
}

func (c *CompiledClass) logScaleInPlace(v []float64) {
	for i, p := range c.pats {
		v[i] = math.Log1p(v[i]) / float64(p.n)
	}
}

// CorpusVectors evaluates the compiled class against a whole corpus: one
// vector per graph, extracted across a GOMAXPROCS-sized worker pool with
// per-goroutine scratch buffers. CorpusVectors(Compile(class), gs)[i] equals
// Vector(class, gs[i]) for every i.
func CorpusVectors(c *CompiledClass, gs []*graph.Graph) [][]float64 {
	return CorpusVectorsWorkers(c, gs, 0)
}

// CorpusVectorsWorkers is CorpusVectors with an explicit worker cap (0 or
// negative = GOMAXPROCS), for per-pipeline parallelism bounds.
func CorpusVectorsWorkers(c *CompiledClass, gs []*graph.Graph, workers int) [][]float64 {
	out := make([][]float64, len(gs))
	linalg.ParallelForWorkers(workers, len(gs), func(i int) {
		sc := scratchPool.Get().(*evalScratch)
		v := make([]float64, len(c.pats))
		c.vectorInto(sc, gs[i], v)
		out[i] = v
		scratchPool.Put(sc)
	})
	return out
}

// CorpusLogScaledVectors is CorpusVectors followed by the log(1+hom)/|F|
// scaling, matching hom.LogScaledVector per graph.
func CorpusLogScaledVectors(c *CompiledClass, gs []*graph.Graph) [][]float64 {
	return CorpusLogScaledVectorsWorkers(c, gs, 0)
}

// CorpusLogScaledVectorsWorkers is CorpusLogScaledVectors with an explicit
// worker cap (0 or negative = GOMAXPROCS).
func CorpusLogScaledVectorsWorkers(c *CompiledClass, gs []*graph.Graph, workers int) [][]float64 {
	out := CorpusVectorsWorkers(c, gs, workers)
	linalg.ParallelForWorkers(workers, len(out), func(i int) {
		c.logScaleInPlace(out[i])
	})
	return out
}
