package hom

import (
	"math"

	"repro/internal/graph"
)

// LogScaledVector returns the practically-motivated embedding from
// Section 4: the vector ( log(1 + hom(F, g)) / |F| )_{F in class}. The
// paper uses log hom(F,G)/|F|; the +1 shift keeps patterns with zero
// homomorphism count (e.g. odd cycles into bipartite graphs) finite while
// preserving ordering.
func LogScaledVector(class []*graph.Graph, g *graph.Graph) []float64 {
	out := make([]float64, len(class))
	for i, f := range class {
		out[i] = math.Log1p(Count(f, g)) / float64(f.N())
	}
	return out
}

// StandardClass returns the feature class the paper's "initial experiments"
// describe: a small collection (20 graphs) of binary trees and cycles. The
// exact composition is the 11 binary trees on up to 6 vertices and the 9
// cycles C3..C11.
func StandardClass() []*graph.Graph {
	class := graph.BinaryTrees(6)
	class = append(class, graph.CyclesUpTo(11)...)
	return class
}

// PathClass returns P_1..P_k, the class P of Theorem 4.6 truncated at k.
// For graphs of order n, homomorphism counts of paths satisfy a linear
// recurrence of order <= n, so k >= 2n+1 determines the full vector.
func PathClass(k int) []*graph.Graph { return graph.PathsUpTo(k) }

// CycleClass returns C_3..C_k, the class C of Theorem 4.3 truncated at k.
// For graphs of order n, k >= n+2 determines the full spectrum-moment
// sequence.
func CycleClass(k int) []*graph.Graph { return graph.CyclesUpTo(k) }

// TreeClass returns all trees with at most k vertices (k <= 8), the class T
// of Theorem 4.4 / Corollary 4.5 truncated at k.
func TreeClass(k int) []*graph.Graph { return graph.TreesUpTo(k) }

// PathIndistinguishable reports hom-indistinguishability over paths long
// enough to be decisive for the pair (length 2·max(|G|,|H|)+1).
func PathIndistinguishable(g, h *graph.Graph) bool {
	n := g.N()
	if h.N() > n {
		n = h.N()
	}
	for k := 1; k <= 2*n+1; k++ {
		if CountPath(k, g) != CountPath(k, h) {
			return false
		}
	}
	return true
}

// CycleIndistinguishable reports hom-indistinguishability over cycles long
// enough to be decisive (equality of all spectral moments up to n+2 forces
// equal spectra for graphs of order <= n).
func CycleIndistinguishable(g, h *graph.Graph) bool {
	n := g.N()
	if h.N() > n {
		n = h.N()
	}
	for k := 3; k <= n+3; k++ {
		if CountCycle(k, g) != CountCycle(k, h) {
			return false
		}
	}
	return true
}

// TreeIndistinguishable reports hom-indistinguishability over all trees with
// at most max(|G|,|H|) vertices. By Theorem 4.4 and the stabilisation of
// 1-WL within n rounds, trees of order up to n are decisive for graphs of
// order n; the cap is min(n, 8) because of the tree catalogue bound, which
// covers all experiment graphs.
func TreeIndistinguishable(g, h *graph.Graph) bool {
	n := g.N()
	if h.N() > n {
		n = h.N()
	}
	if n > 8 {
		n = 8
	}
	return Indistinguishable(TreeClass(n), g, h)
}
