package hom

// The compiled-pattern engine: every per-pattern analysis that Count redoes
// on each call — component split, tree/cycle/treewidth dispatch, the nice
// tree decomposition with its edge assignment, bag positions and mixed-radix
// layout — is done exactly once by Compile, leaving per-target evaluation as
// straight-line dynamic programming over reusable scratch buffers. A
// CompiledClass evaluates bit-identically to the hom.Vector path (they share
// the same DP loops in the same float operation order; the cycle fast path
// shares matrix powers across all cycle patterns, which is exact whenever
// counts are integers below 2^53 — every unweighted or integer-weighted
// target in this repository).

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/treedec"
)

// patKind is the per-component dispatch decision, fixed at compile time
// except that cycle components of labelled targets take their treewidth
// program instead of the trace fast path (mirroring countConnected).
type patKind int

const (
	patTree patKind = iota
	patCycle
	patTD
)

// compiledComp is one analysed connected component of a pattern.
type compiledComp struct {
	kind patKind
	n    int

	// Tree DP (kind == patTree): BFS order from root 0, children of each
	// vertex in adjacency order, and the pattern vertex labels.
	order    []int
	children [][]int
	vlabels  []int

	// Cycle fast path (kind == patCycle): hom(C_k, g) = trace(A^k), read
	// from the per-target power table shared by every cycle in the class.
	cycleLen int

	// Treewidth DP program (kind == patTD, and the labelled-target
	// fallback for kind == patCycle).
	prog *tdProgram
}

// CompiledPattern is one pattern analysed into per-component programs.
type CompiledPattern struct {
	n     int // |V(F)|, used by the log/power scalings
	comps []*compiledComp
}

// N returns the pattern's vertex count.
func (p *CompiledPattern) N() int { return p.n }

// CompiledClass is a pattern class analysed once, ready for repeated
// evaluation against many targets. It is immutable after Compile and safe
// for concurrent use; all per-evaluation state lives in pooled scratch.
type CompiledClass struct {
	pats     []*CompiledPattern
	maxCycle int // largest cycle length using the trace fast path
}

// Len returns the number of patterns in the class.
func (c *CompiledClass) Len() int { return len(c.pats) }

// Pattern returns the i-th compiled pattern.
func (c *CompiledClass) Pattern(i int) *CompiledPattern { return c.pats[i] }

// Compile analyses every pattern of a class once: component split, dispatch
// decision, nice tree decompositions with pre-assigned edges and bag
// layouts. The returned class evaluates hom vectors without rebuilding any
// of this per target.
func Compile(class []*graph.Graph) *CompiledClass {
	c := &CompiledClass{pats: make([]*CompiledPattern, len(class))}
	for i, f := range class {
		p := compilePattern(f)
		c.pats[i] = p
		for _, comp := range p.comps {
			if comp.kind == patCycle && comp.cycleLen > c.maxCycle {
				c.maxCycle = comp.cycleLen
			}
		}
	}
	return c
}

func compilePattern(f *graph.Graph) *CompiledPattern {
	p := &CompiledPattern{n: f.N()}
	for _, comp := range f.ComponentGraphs() {
		p.comps = append(p.comps, compileComponent(comp))
	}
	return p
}

func compileComponent(f *graph.Graph) *compiledComp {
	comp := &compiledComp{n: f.N()}
	switch {
	case isTree(f):
		comp.kind = patTree
		comp.compileTree(f)
	case isCycle(f) && !f.HasVertexLabels():
		// The trace fast path needs an unlabelled target too; compile the
		// treewidth program as the labelled-target fallback (cycles have
		// width 2, so this is cheap and done once).
		comp.kind = patCycle
		comp.cycleLen = f.N()
		comp.prog = compileTD(f)
	default:
		comp.kind = patTD
		comp.prog = compileTD(f)
	}
	return comp
}

// compileTree precomputes the rooted orientation CountTreeRooted derives per
// call: BFS order from vertex 0 and per-vertex child lists in adjacency
// order (the order the DP multiplies child sums in).
func (comp *compiledComp) compileTree(t *graph.Graph) {
	n := t.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	order := make([]int, 0, n)
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, w := range t.Neighbors(u) {
			if parent[w] == -2 {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	children := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, w := range t.Neighbors(u) {
			if parent[w] == u {
				children[u] = append(children[u], w)
			}
		}
	}
	comp.order = order
	comp.children = children
	comp.vlabels = t.VertexLabels()
}

// tdOp is one node of the linearised nice-tree-decomposition program.
// Tables are mixed-radix encoded over the sorted bag (least significant
// digit = smallest bag vertex), so introduce/forget reduce to digit
// insertion/removal at a precomputed position.
type tdOp struct {
	kind   niceKind
	bagLen int   // bag size of the table this op produces
	pos    int   // introduce/forget: digit position of v in the larger bag
	vlabel int   // introduce: pattern label of the introduced vertex
	owned  []int // introduce: child-bag positions of owned-edge endpoints; -1 marks a self-loop
}

// tdProgram is the compiled n^{tw+1} dynamic program of one component:
// a post-order instruction list evaluated with an explicit table stack.
type tdProgram struct {
	ops      []tdOp
	hasLoops bool // some op owns a pattern self-loop: eval needs the target's loop weights
}

// compileTD builds the nice tree decomposition once and linearises it.
func compileTD(f *graph.Graph) *tdProgram {
	dec := treedec.OptimalDecomposition(f)
	root := buildNice(dec, f)
	prog := &tdProgram{}
	var walk func(nd *niceNode)
	walk = func(nd *niceNode) {
		for _, c := range nd.children {
			walk(c)
		}
		op := tdOp{kind: nd.kind, bagLen: len(nd.bag)}
		switch nd.kind {
		case introduceNode:
			op.pos = indexOf(nd.bag, nd.v)
			op.vlabel = f.VertexLabel(nd.v)
			childBag := remove(nd.bag, nd.v)
			for _, e := range nd.owned {
				// e[0] == nd.v; the other endpoint sits in the child bag,
				// unless the edge is a self-loop at nd.v.
				if e[1] == nd.v {
					op.owned = append(op.owned, -1)
					prog.hasLoops = true
				} else {
					op.owned = append(op.owned, indexOf(childBag, e[1]))
				}
			}
		case forgetNode:
			op.pos = indexOf(insert(nd.bag, nd.v), nd.v)
		}
		prog.ops = append(prog.ops, op)
	}
	walk(root)
	return prog
}

// maxTableEntries caps one DP table of the treewidth program (~2 GiB of
// float64s). The DP is inherently exponential in the decomposition width, so
// a wide pattern on a large target can request an impossible table; the cap
// turns that into an immediate, descriptive (and recoverable) panic instead
// of the runtime dying on an overflowed or memory-exhausting allocation.
const maxTableEntries = 1 << 28

// tableSize returns n^k, or -1 when the table would exceed maxTableEntries
// (which also covers int overflow).
func tableSize(n, k int) int {
	size := 1
	for i := 0; i < k; i++ {
		if n != 0 && size > maxTableEntries/n {
			return -1
		}
		size *= n
	}
	return size
}

// eval runs the program against one target. Float operations replay
// evalNice's order exactly (factors multiplied in owned-edge order, forget
// sums accumulated in ascending child-index order), so results are
// bit-identical to the per-call path for any target.
//
//x2vec:hotpath
func (p *tdProgram) eval(sc *evalScratch, g *graph.Graph) float64 {
	n := g.N()
	// Self-loop weights are the adjacency-matrix diagonal: each loop edge's
	// weight counted once (1 per plain loop, 0 without one). Both a pattern
	// self-loop at v and a degenerate mapping of an ordinary pattern edge
	// onto a target loop (h(u) = h(v) = w) contribute this factor, so the DP
	// is the partition function of g.AdjacencyMatrix — consistent with the
	// CountCycle/CountPath trace formulas and, on unweighted targets, with
	// the boolean brute-force oracle. (g.EdgeWeight(w, w) would double-count
	// undirected loops, whose two arcs both carry the full weight.)
	needLoops := p.hasLoops
	if !needLoops {
		for _, e := range g.Edges() {
			if e.U == e.V {
				needLoops = true
				break
			}
		}
	}
	var loopW []float64
	if needLoops {
		loopW = sc.ensureFloats(&sc.loopW, n)
		for i := range loopW {
			loopW[i] = 0
		}
		for _, e := range g.Edges() {
			if e.U == e.V {
				loopW[e.U] += e.Weight
			}
		}
	}
	stack := sc.stack[:0]
	for oi := range p.ops {
		op := &p.ops[oi]
		switch op.kind {
		case leafNode:
			t := sc.getTable(1)
			t[0] = 1
			stack = append(stack, t)
		case introduceNode:
			child := stack[len(stack)-1]
			size := tableSize(n, op.bagLen)
			if size < 0 {
				panic(fmt.Sprintf("hom: infeasible DP table %d^%d — pattern decomposition width %d is too large for a %d-vertex target", n, op.bagLen, op.bagLen-1, n)) //x2vec:allow nopanic recovered at the serve batcher; signals an infeasible compiled program
			}
			out := sc.getTable(size)
			lowSize := intPow(n, op.pos)
			cassign := sc.ensureAssign(op.bagLen - 1)
			for cidx, cv := range child {
				if cv == 0 {
					continue
				}
				decode(cidx, n, cassign)
				lo := cidx % lowSize
				base := (cidx/lowSize)*lowSize*n + lo
				for w := 0; w < n; w++ {
					if op.vlabel != 0 && op.vlabel != g.VertexLabel(w) {
						continue
					}
					factor := 1.0
					for _, cp := range op.owned {
						var aw float64
						if cp < 0 {
							aw = loopW[w]
						} else if other := cassign[cp]; other != w {
							aw = g.EdgeWeight(w, other)
						} else if loopW != nil {
							aw = loopW[w]
						}
						factor *= aw
						if factor == 0 {
							break
						}
					}
					if factor == 0 {
						continue
					}
					out[base+w*lowSize] = cv * factor
				}
			}
			sc.putTable(child)
			stack[len(stack)-1] = out
		case forgetNode:
			child := stack[len(stack)-1]
			out := sc.getTable(intPow(n, op.bagLen))
			lowSize := intPow(n, op.pos)
			for cidx, cv := range child {
				if cv == 0 {
					continue
				}
				out[(cidx/(lowSize*n))*lowSize+cidx%lowSize] += cv
			}
			sc.putTable(child)
			stack[len(stack)-1] = out
		case joinNode:
			right := stack[len(stack)-1]
			left := stack[len(stack)-2]
			for i := range left {
				left[i] *= right[i]
			}
			sc.putTable(right)
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 1 || len(stack[0]) != 1 {
		panic("hom: compiled program should end with a single root entry") //x2vec:allow nopanic compiler postcondition, unreachable for well-formed decompositions
	}
	res := stack[0][0]
	sc.putTable(stack[0])
	sc.stack = stack[:0]
	return res
}

// evalScratch holds one goroutine's reusable evaluation state: the DP table
// free list and stack, the tree-DP rows, the assignment decode buffer, and
// the per-target cycle power table. Scratches are pooled; evaluation never
// allocates per pattern once the buffers have grown.
type evalScratch struct {
	stack  [][]float64
	free   [][]float64
	assign []int

	rows [][]float64 // tree DP: one row per pattern vertex

	// Cycle fast path, valid for one target at a time: adj is the flat
	// weighted adjacency matrix, cur/next the power iteration buffers,
	// traces[k] = trace(A^k) for k = 2..maxCycle.
	tracesValid bool
	traces      []float64
	adj         []float64
	cur         []float64
	next        []float64

	loopW []float64 // loop-pattern evals: per-target-vertex self-loop weights
}

var scratchPool = sync.Pool{New: func() interface{} { return &evalScratch{} }}

func (sc *evalScratch) getTable(size int) []float64 {
	for i := len(sc.free) - 1; i >= 0; i-- {
		if cap(sc.free[i]) >= size {
			t := sc.free[i][:size]
			sc.free[i] = sc.free[len(sc.free)-1]
			sc.free = sc.free[:len(sc.free)-1]
			for j := range t {
				t[j] = 0
			}
			return t
		}
	}
	return make([]float64, size)
}

func (sc *evalScratch) putTable(t []float64) {
	if len(sc.free) < 8 {
		sc.free = append(sc.free, t)
	}
}

func (sc *evalScratch) ensureAssign(k int) []int {
	if cap(sc.assign) < k {
		sc.assign = make([]int, k)
	}
	return sc.assign[:k]
}

func (sc *evalScratch) ensureRows(rows, width int) [][]float64 {
	for len(sc.rows) < rows {
		sc.rows = append(sc.rows, nil)
	}
	for i := 0; i < rows; i++ {
		if cap(sc.rows[i]) < width {
			sc.rows[i] = make([]float64, width)
		}
	}
	return sc.rows
}

// evalTree replays CountTree's DP (post-order products of child sums, then
// the sum over root placements) on the precompiled orientation, reusing the
// scratch rows. Loop and operation order match CountTreeRooted exactly.
func (comp *compiledComp) evalTree(sc *evalScratch, g *graph.Graph) float64 {
	n := g.N()
	rows := sc.ensureRows(comp.n, n)
	edges := g.Edges()
	for i := len(comp.order) - 1; i >= 0; i-- {
		u := comp.order[i]
		row := rows[u][:n]
		for v := 0; v < n; v++ {
			if comp.vlabels[u] != 0 && comp.vlabels[u] != g.VertexLabel(v) {
				row[v] = 0
				continue
			}
			prod := 1.0
			for _, w := range comp.children[u] {
				cw := rows[w]
				var sum float64
				for _, a := range g.Arcs(v) {
					aw := edges[a.Edge].Weight
					if a.To == v && !g.Directed() {
						aw *= 0.5 // undirected self-loop: both arcs carry the full weight
					}
					sum += aw * cw[a.To]
				}
				prod *= sum
				if prod == 0 {
					break
				}
			}
			row[v] = prod
		}
	}
	var total float64
	for _, c := range rows[0][:n] {
		total += c
	}
	return total
}

func (sc *evalScratch) ensureFloats(buf *[]float64, size int) []float64 {
	if cap(*buf) < size {
		*buf = make([]float64, size)
	}
	return (*buf)[:size]
}

// cycleTrace returns trace(A^k) for the target, computing the shared power
// table A^2..A^maxK on first use per target: one sparse-row multiplication
// per power serves every cycle pattern in the class, instead of one full
// matrix Pow per pattern per call.
func (sc *evalScratch) cycleTrace(g *graph.Graph, k, maxK int) float64 {
	if !sc.tracesValid {
		sc.computeTraces(g, maxK)
		sc.tracesValid = true
	}
	return sc.traces[k]
}

func (sc *evalScratch) computeTraces(g *graph.Graph, maxK int) {
	n := g.N()
	sc.traces = sc.ensureFloats(&sc.traces, maxK+1)
	for i := range sc.traces {
		sc.traces[i] = 0
	}
	adj := sc.ensureFloats(&sc.adj, n*n)
	for i := range adj {
		adj[i] = 0
	}
	// Mirror graph.AdjacencyMatrix: summed weights, symmetric for
	// undirected edges, self-loops counted once.
	for _, e := range g.Edges() {
		adj[e.U*n+e.V] += e.Weight
		if !g.Directed() && e.U != e.V {
			adj[e.V*n+e.U] += e.Weight
		}
	}
	cur := sc.ensureFloats(&sc.cur, n*n)
	copy(cur, adj)
	next := sc.ensureFloats(&sc.next, n*n)
	trace := func(m []float64) float64 {
		var t float64
		for i := 0; i < n; i++ {
			t += m[i*n+i]
		}
		return t
	}
	if maxK >= 1 {
		sc.traces[1] = trace(cur)
	}
	for k := 2; k <= maxK; k++ {
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < n; i++ {
			for l := 0; l < n; l++ {
				a := adj[i*n+l]
				if a == 0 {
					continue
				}
				crow := cur[l*n : (l+1)*n]
				drow := next[i*n : (i+1)*n]
				for j, b := range crow {
					drow[j] += a * b
				}
			}
		}
		cur, next = next, cur
		sc.traces[k] = trace(cur)
	}
}

// vectorInto evaluates every pattern of the class against one target,
// mirroring Count's dispatch and component-product order entry for entry.
func (c *CompiledClass) vectorInto(sc *evalScratch, g *graph.Graph, out []float64) {
	sc.tracesValid = false
	gLabelled := g.HasVertexLabels()
	for i, p := range c.pats {
		out[i] = c.evalPattern(p, sc, g, gLabelled)
	}
}

func (c *CompiledClass) evalPattern(p *CompiledPattern, sc *evalScratch, g *graph.Graph, gLabelled bool) float64 {
	if p.n == 0 {
		return 1
	}
	result := 1.0
	for _, comp := range p.comps {
		var v float64
		switch {
		case comp.kind == patTree:
			v = comp.evalTree(sc, g)
		case comp.kind == patCycle && !gLabelled:
			v = sc.cycleTrace(g, comp.cycleLen, c.maxCycle)
		default:
			v = comp.prog.eval(sc, g)
		}
		result *= v
		if result == 0 {
			return 0
		}
	}
	return result
}
