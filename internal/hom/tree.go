package hom

import (
	"repro/internal/graph"
	"repro/internal/linalg"
)

// CountTree counts hom(t, g) for a tree pattern t by the classic linear
// dynamic program over a rooted orientation of t. Supports vertex labels on
// the pattern (nonzero labels must match) and weighted targets (each pattern
// edge contributes the target edge weight as a factor, making the count a
// partition function in the sense of Theorem 4.13).
func CountTree(t, g *graph.Graph) float64 {
	if !isTree(t) {
		panic("hom: CountTree requires a tree pattern") //x2vec:allow nopanic caller contract: pattern must be a tree
	}
	per := CountTreeRooted(t, 0, g)
	var total float64
	for _, c := range per {
		total += c
	}
	return total
}

// CountTreeRooted returns, for each target vertex v, the number (or weighted
// sum) of homomorphisms from t to g mapping root r to v — the rooted
// homomorphism vector entries hom(t, g; r -> v) of Section 4.4. Target
// self-loops contribute their adjacency-matrix diagonal weight (an
// undirected loop's two arcs are halved), keeping the tree DP consistent
// with the trace formulas, the treewidth DP, and the boolean brute force.
func CountTreeRooted(t *graph.Graph, r int, g *graph.Graph) []float64 {
	n := g.N()
	// Build rooted structure: BFS from r.
	parent := make([]int, t.N())
	order := make([]int, 0, t.N())
	for i := range parent {
		parent[i] = -2
	}
	parent[r] = -1
	queue := []int{r}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, w := range t.Neighbors(u) {
			if parent[w] == -2 {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	// cnt[u][v] for u processed in reverse BFS order.
	cnt := make([][]float64, t.N())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		row := make([]float64, n)
		for v := 0; v < n; v++ {
			if t.VertexLabel(u) != 0 && t.VertexLabel(u) != g.VertexLabel(v) {
				continue
			}
			prod := 1.0
			for _, w := range t.Neighbors(u) {
				if parent[w] != u {
					continue
				}
				var sum float64
				for _, a := range g.Arcs(v) {
					aw := g.Edges()[a.Edge].Weight
					if a.To == v && !g.Directed() {
						aw *= 0.5 // undirected self-loop: both arcs carry the full weight
					}
					sum += aw * cnt[w][a.To]
				}
				prod *= sum
				if prod == 0 {
					break
				}
			}
			row[v] = prod
		}
		cnt[u] = row
	}
	return cnt[r]
}

// CountPath returns hom(P_k, g) for the path with k vertices: the number of
// walks with k-1 steps, i.e. 1ᵀ A^{k-1} 1.
func CountPath(k int, g *graph.Graph) float64 {
	if k < 1 {
		panic("hom: path needs at least one vertex") //x2vec:allow nopanic caller contract: path length precondition
	}
	a := linalg.FromRows(g.AdjacencyMatrix())
	p := a.Pow(k - 1)
	var s float64
	for _, v := range p.Data {
		s += v
	}
	return s
}

// CountCycle returns hom(C_k, g) = trace(A^k), the closed walks of length k
// (Theorem 4.3's left-hand side).
func CountCycle(k int, g *graph.Graph) float64 {
	if k < 3 {
		panic("hom: cycle needs at least 3 vertices") //x2vec:allow nopanic caller contract: cycle length precondition
	}
	a := linalg.FromRows(g.AdjacencyMatrix())
	return a.Pow(k).Trace()
}

// RootedVector computes Hom_{F*}(g, v): for each rooted pattern (class[i],
// roots[i]), the count hom(class[i], g; roots[i] -> v). Tree patterns use
// the DP; general patterns fall back to brute force.
func RootedVector(class []*graph.Graph, roots []int, g *graph.Graph, v int) []float64 {
	out := make([]float64, len(class))
	for i, f := range class {
		if isTree(f) {
			out[i] = CountTreeRooted(f, roots[i], g)[v]
		} else {
			out[i] = BruteForceRooted(f, roots[i], g, v)
		}
	}
	return out
}

// SameRootedVector reports whether nodes v of g and w of h have identical
// rooted homomorphism counts over the given rooted pattern class
// (Theorem 4.14's left-hand side).
func SameRootedVector(class []*graph.Graph, roots []int, g *graph.Graph, v int, h *graph.Graph, w int) bool {
	for i, f := range class {
		var cv, cw float64
		if isTree(f) {
			cv = CountTreeRooted(f, roots[i], g)[v]
			cw = CountTreeRooted(f, roots[i], h)[w]
		} else {
			cv = BruteForceRooted(f, roots[i], g, v)
			cw = BruteForceRooted(f, roots[i], h, w)
		}
		if cv != cw {
			return false
		}
	}
	return true
}

// AllRootedTrees returns every rooted tree with at most maxN vertices: each
// free tree paired with one root per vertex orbit (all vertices, for
// simplicity — duplicate orbits only add redundant but consistent entries).
func AllRootedTrees(maxN int) (trees []*graph.Graph, roots []int) {
	for n := 1; n <= maxN; n++ {
		for _, t := range graph.AllTrees(n) {
			for v := 0; v < t.N(); v++ {
				trees = append(trees, t)
				roots = append(roots, v)
			}
		}
	}
	return trees, roots
}
