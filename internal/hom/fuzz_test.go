package hom

// Native fuzz target for the counting stack: arbitrary byte strings decode
// into a small pattern / target pair, and the Count dispatcher plus the
// compiled engine must agree with the brute-force oracle exactly. CI runs
// this with a short budget on every push.

import (
	"testing"

	"repro/internal/graph"
)

// smallGraphFromBytes decodes bytes into an undirected graph on 1..5
// vertices with optional vertex labels and (loops permitting) self-loops,
// consuming at most the first bytes of data; it returns the graph and the
// unconsumed tail.
func smallGraphFromBytes(data []byte, loops bool) (*graph.Graph, []byte) {
	if len(data) == 0 {
		return graph.New(1), nil
	}
	n := int(data[0])%5 + 1
	data = data[1:]
	g := graph.New(n)
	if len(data) > 0 && data[0]&1 == 1 {
		data = data[1:]
		for v := 0; v < n && v < len(data); v++ {
			g.SetVertexLabel(v, int(data[v])%3)
		}
		if len(data) > n {
			data = data[n:]
		} else {
			data = nil
		}
	} else if len(data) > 0 {
		data = data[1:]
	}
	// Up to 10 edge pairs, skipping duplicates (and loops when disallowed).
	consumed := 0
	for consumed+1 < len(data) && consumed < 20 {
		u := int(data[consumed]) % n
		v := int(data[consumed+1]) % n
		consumed += 2
		if (u != v || loops) && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g, data[consumed:]
}

func FuzzCountSmallPattern(f *testing.F) {
	f.Add([]byte{3, 0, 0, 1, 1, 2, 2, 0, 4, 0, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{4, 1, 1, 2, 0, 0, 0, 1, 1, 2, 2, 3, 4, 0, 0, 1})
	f.Add([]byte{5, 0, 0, 1, 0, 2, 0, 3, 0, 4, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		pattern, rest := smallGraphFromBytes(data, true)
		target, _ := smallGraphFromBytes(rest, true)
		want := BruteForce(pattern, target)
		if got := Count(pattern, target); got != want {
			t.Fatalf("Count(%v, %v)=%v, brute=%v", pattern, target, got, want)
		}
		if got := Compile([]*graph.Graph{pattern}).Vector(target)[0]; got != want {
			t.Fatalf("compiled(%v, %v)=%v, brute=%v", pattern, target, got, want)
		}
	})
}
