// Package hom counts graph homomorphisms and builds the homomorphism
// vectors of Section 4 of the paper. It provides a brute-force oracle, a
// linear-time dynamic program for tree patterns, closed forms for paths and
// cycles, and a general n^{tw+1} dynamic program over nice tree
// decompositions for arbitrary patterns, plus embedding / epimorphism /
// automorphism counts and the Lovász HOM = P·D·M matrix machinery behind
// Theorem 4.2.
//
// Counts are returned as float64; they are exact integers whenever they fit
// into the 53-bit mantissa, which covers every experiment in this
// repository.
package hom

import (
	"repro/internal/graph"
)

// BruteForce counts homomorphisms from f to g by enumerating all |V(g)|^|V(f)|
// mappings. It respects vertex labels and is the oracle the fast
// implementations are tested against. Use only for tiny patterns.
func BruteForce(f, g *graph.Graph) float64 {
	nf, ng := f.N(), g.N()
	if nf == 0 {
		return 1
	}
	if ng == 0 {
		return 0
	}
	// Arcs(i) covers out-edges only on directed patterns; precompute the
	// per-vertex in-arc sources once so the consistency check below does
	// not rescan the whole edge slice for every candidate assignment.
	var inFrom [][]int
	if f.Directed() {
		inFrom = make([][]int, nf)
		for _, e := range f.Edges() {
			inFrom[e.V] = append(inFrom[e.V], e.U)
		}
	}
	assign := make([]int, nf)
	var count float64
	var rec func(i int)
	rec = func(i int) {
		if i == nf {
			count++
			return
		}
		for v := 0; v < ng; v++ {
			if f.VertexLabel(i) != 0 && f.VertexLabel(i) != g.VertexLabel(v) {
				continue
			}
			assign[i] = v
			// Check every pattern edge whose endpoints are both assigned,
			// i.e. those incident to i with the other endpoint <= i.
			ok := true
			for _, a := range f.Arcs(i) {
				if a.To <= i && !g.HasEdge(assign[i], assign[a.To]) {
					ok = false
					break
				}
			}
			if ok && inFrom != nil {
				// In-edges from already-assigned vertices, in the correct
				// direction.
				for _, u := range inFrom[i] {
					if u <= i && !g.HasEdge(assign[u], assign[i]) {
						ok = false
						break
					}
				}
			}
			if ok {
				rec(i + 1)
			}
		}
	}
	rec(0)
	return count
}

// BruteForceRooted counts homomorphisms h from f to g with h(r) = v pinned.
func BruteForceRooted(f *graph.Graph, r int, g *graph.Graph, v int) float64 {
	nf, ng := f.N(), g.N()
	if f.VertexLabel(r) != 0 && f.VertexLabel(r) != g.VertexLabel(v) {
		return 0
	}
	assign := make([]int, nf)
	assigned := make([]bool, nf)
	assign[r] = v
	assigned[r] = true
	var count float64
	var rec func(i int)
	rec = func(i int) {
		if i == nf {
			count++
			return
		}
		if assigned[i] {
			if consistentAt(f, g, assign, assigned, i) {
				rec(i + 1)
			}
			return
		}
		for w := 0; w < ng; w++ {
			if f.VertexLabel(i) != 0 && f.VertexLabel(i) != g.VertexLabel(w) {
				continue
			}
			assign[i] = w
			assigned[i] = true
			if consistentAt(f, g, assign, assigned, i) {
				rec(i + 1)
			}
			assigned[i] = false
		}
	}
	// Re-walk vertices in order, treating r as pre-assigned; mark the rest
	// unassigned initially.
	for i := 0; i < nf; i++ {
		if i != r {
			assigned[i] = false
		}
	}
	rec(0)
	return count
}

// consistentAt checks every f-edge incident to i whose other endpoint is
// already assigned (earlier vertices and the pinned root).
func consistentAt(f, g *graph.Graph, assign []int, assigned []bool, i int) bool {
	for _, e := range f.Edges() {
		if e.U != i && e.V != i {
			continue
		}
		other := e.U + e.V - i
		if !assigned[other] {
			continue
		}
		if !g.HasEdge(assign[e.U], assign[e.V]) {
			return false
		}
	}
	return true
}

// Count returns hom(f, g), dispatching to the fastest applicable method:
// products over components, the tree DP for forests, the trace formula for
// cycles, and the tree-decomposition DP otherwise. Patterns with vertex
// labels fall back to label-aware methods.
func Count(f, g *graph.Graph) float64 {
	if f.N() == 0 {
		return 1
	}
	comps := f.ComponentGraphs()
	result := 1.0
	for _, c := range comps {
		result *= countConnected(c, g)
		if result == 0 {
			return 0
		}
	}
	return result
}

func countConnected(f, g *graph.Graph) float64 {
	if isTree(f) {
		return CountTree(f, g)
	}
	if isCycle(f) && !f.HasVertexLabels() && !g.HasVertexLabels() {
		return CountCycle(f.N(), g)
	}
	return CountTD(f, g)
}

func isTree(f *graph.Graph) bool {
	return f.M() == f.N()-1 && f.IsConnected() && !hasLoop(f)
}

func isCycle(f *graph.Graph) bool {
	if f.N() < 3 || f.M() != f.N() || hasLoop(f) {
		return false
	}
	for v := 0; v < f.N(); v++ {
		if f.Degree(v) != 2 {
			return false
		}
	}
	return f.IsConnected()
}

func hasLoop(f *graph.Graph) bool {
	for _, e := range f.Edges() {
		if e.U == e.V {
			return true
		}
	}
	return false
}

// Indistinguishable reports whether g and h are homomorphism-
// indistinguishable over the given pattern class: hom(F,g) = hom(F,h) for
// every F in the class.
func Indistinguishable(class []*graph.Graph, g, h *graph.Graph) bool {
	for _, f := range class {
		if Count(f, g) != Count(f, h) {
			return false
		}
	}
	return true
}

// Vector returns the homomorphism vector Hom_class(g).
func Vector(class []*graph.Graph, g *graph.Graph) []float64 {
	out := make([]float64, len(class))
	for i, f := range class {
		out[i] = Count(f, g)
	}
	return out
}
