package hom

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// Emb counts embeddings (injective homomorphisms) from f to g by brute
// force.
func Emb(f, g *graph.Graph) float64 {
	nf, ng := f.N(), g.N()
	if nf > ng {
		return 0
	}
	assign := make([]int, nf)
	used := make([]bool, ng)
	var count float64
	var rec func(i int)
	rec = func(i int) {
		if i == nf {
			count++
			return
		}
		for v := 0; v < ng; v++ {
			if used[v] {
				continue
			}
			if f.VertexLabel(i) != 0 && f.VertexLabel(i) != g.VertexLabel(v) {
				continue
			}
			assign[i] = v
			ok := true
			for _, e := range f.Edges() {
				if e.U != i && e.V != i {
					continue
				}
				other := e.U + e.V - i
				if other < i || other == i {
					if !g.HasEdge(assign[e.U], assign[e.V]) {
						ok = false
						break
					}
				}
			}
			if ok {
				used[v] = true
				rec(i + 1)
				used[v] = false
			}
		}
	}
	rec(0)
	return count
}

// Epi counts epimorphisms from f to g: homomorphisms surjective on both
// vertices and edges (the decomposition used in the proof of Theorem 4.2).
func Epi(f, g *graph.Graph) float64 {
	nf, ng := f.N(), g.N()
	if nf < ng || f.M() < g.M() {
		return 0
	}
	assign := make([]int, nf)
	var count float64
	var rec func(i int)
	rec = func(i int) {
		if i == nf {
			if isSurjective(f, g, assign) {
				count++
			}
			return
		}
		for v := 0; v < ng; v++ {
			assign[i] = v
			ok := true
			for _, e := range f.Edges() {
				if e.U != i && e.V != i {
					continue
				}
				other := e.U + e.V - i
				if other <= i {
					if !g.HasEdge(assign[e.U], assign[e.V]) {
						ok = false
						break
					}
				}
			}
			if ok {
				rec(i + 1)
			}
		}
	}
	rec(0)
	return count
}

func isSurjective(f, g *graph.Graph, assign []int) bool {
	hitV := make([]bool, g.N())
	for _, v := range assign {
		hitV[v] = true
	}
	for _, h := range hitV {
		if !h {
			return false
		}
	}
	type ek struct{ u, v int }
	norm := func(u, v int) ek {
		if u > v {
			u, v = v, u
		}
		return ek{u, v}
	}
	hitE := map[ek]bool{}
	for _, e := range f.Edges() {
		hitE[norm(assign[e.U], assign[e.V])] = true
	}
	for _, e := range g.Edges() {
		if !hitE[norm(e.U, e.V)] {
			return false
		}
	}
	return true
}

// Aut returns the order of the automorphism group of f.
func Aut(f *graph.Graph) float64 { return float64(graph.Automorphisms(f)) }

// LovaszSystem is the matrix machinery from the proof of Theorem 4.2 over
// an enumeration F_1, ..., F_m of all graphs of order at most n, ordered by
// (|V|, |E|).
type LovaszSystem struct {
	Graphs []*graph.Graph
	HOM    *linalg.Matrix // HOM[i][j] = hom(F_i, F_j)
	P      *linalg.Matrix // P[i][j] = epi(F_i, F_j), lower triangular
	D      *linalg.Matrix // diag(1/aut(F_i))
	M      *linalg.Matrix // M[i][j] = emb(F_i, F_j), upper triangular
}

// NewLovaszSystem builds the system for all graphs of order <= n (n <= 4 is
// instant; n = 5 takes a few seconds).
func NewLovaszSystem(n int) *LovaszSystem {
	var gs []*graph.Graph
	for k := 1; k <= n; k++ {
		gs = append(gs, graph.AllGraphs(k)...)
	}
	sort.SliceStable(gs, func(i, j int) bool {
		if gs[i].N() != gs[j].N() {
			return gs[i].N() < gs[j].N()
		}
		return gs[i].M() < gs[j].M()
	})
	m := len(gs)
	sys := &LovaszSystem{
		Graphs: gs,
		HOM:    linalg.NewMatrix(m, m),
		P:      linalg.NewMatrix(m, m),
		D:      linalg.NewMatrix(m, m),
		M:      linalg.NewMatrix(m, m),
	}
	for i := 0; i < m; i++ {
		sys.D.Set(i, i, 1/Aut(gs[i]))
		for j := 0; j < m; j++ {
			sys.HOM.Set(i, j, Count(gs[i], gs[j]))
			sys.P.Set(i, j, Epi(gs[i], gs[j]))
			sys.M.Set(i, j, Emb(gs[i], gs[j]))
		}
	}
	return sys
}

// FactorisationHolds verifies HOM = P·D·M entry-wise (equation 4.3).
func (s *LovaszSystem) FactorisationHolds() bool {
	return s.P.Mul(s.D).Mul(s.M).Equal(s.HOM, 1e-6)
}

// TriangularityHolds verifies that P is lower triangular and M upper
// triangular, both with positive diagonals, so HOM is invertible — the crux
// of Lovász's proof.
func (s *LovaszSystem) TriangularityHolds() bool {
	m := len(s.Graphs)
	for i := 0; i < m; i++ {
		if s.P.At(i, i) <= 0 || s.M.At(i, i) <= 0 {
			return false
		}
		for j := i + 1; j < m; j++ {
			if s.P.At(i, j) != 0 {
				return false
			}
			if s.M.At(j, i) != 0 {
				return false
			}
		}
	}
	return true
}
