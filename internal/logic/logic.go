// Package logic implements the counting logic C of Section 3.4: a formula
// AST with counting quantifiers ∃≥p, an evaluator over graphs, and deciders
// for the finite-variable fragment C² and the bounded-quantifier-rank
// fragments C_k (via the bijective counting game), which the paper relates
// to 1-WL (Theorem 3.1, Corollary 4.15) and to tree-depth-bounded
// homomorphism vectors (Theorem 4.10).
package logic

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Formula is a formula of the counting logic C over graph vocabulary
// {E, =, labels}, with variables identified by small integers.
type Formula interface {
	// Eval evaluates the formula in g under the given assignment of
	// variables to vertices.
	Eval(g *graph.Graph, assign map[int]int) bool
	// Rank returns the quantifier rank.
	Rank() int
	// MaxVar returns the largest variable index occurring (free or bound),
	// or -1 when none do.
	MaxVar() int
	String() string
}

// Adj is the atomic formula E(x, y).
type Adj struct{ X, Y int }

// Eval implements Formula.
func (a Adj) Eval(g *graph.Graph, assign map[int]int) bool {
	return g.HasEdge(assign[a.X], assign[a.Y])
}

// Rank implements Formula.
func (a Adj) Rank() int { return 0 }

// MaxVar implements Formula.
func (a Adj) MaxVar() int { return max(a.X, a.Y) }

func (a Adj) String() string { return fmt.Sprintf("E(x%d,x%d)", a.X, a.Y) }

// Eq is the atomic formula x = y.
type Eq struct{ X, Y int }

// Eval implements Formula.
func (e Eq) Eval(g *graph.Graph, assign map[int]int) bool { return assign[e.X] == assign[e.Y] }

// Rank implements Formula.
func (e Eq) Rank() int { return 0 }

// MaxVar implements Formula.
func (e Eq) MaxVar() int { return max(e.X, e.Y) }

func (e Eq) String() string { return fmt.Sprintf("x%d=x%d", e.X, e.Y) }

// HasLabel is the atomic formula L_l(x).
type HasLabel struct {
	X     int
	Label int
}

// Eval implements Formula.
func (h HasLabel) Eval(g *graph.Graph, assign map[int]int) bool {
	return g.VertexLabel(assign[h.X]) == h.Label
}

// Rank implements Formula.
func (h HasLabel) Rank() int { return 0 }

// MaxVar implements Formula.
func (h HasLabel) MaxVar() int { return h.X }

func (h HasLabel) String() string { return fmt.Sprintf("L%d(x%d)", h.Label, h.X) }

// Not negates a formula.
type Not struct{ F Formula }

// Eval implements Formula.
func (n Not) Eval(g *graph.Graph, assign map[int]int) bool { return !n.F.Eval(g, assign) }

// Rank implements Formula.
func (n Not) Rank() int { return n.F.Rank() }

// MaxVar implements Formula.
func (n Not) MaxVar() int { return n.F.MaxVar() }

func (n Not) String() string { return "¬" + n.F.String() }

// And is binary conjunction.
type And struct{ L, R Formula }

// Eval implements Formula.
func (a And) Eval(g *graph.Graph, assign map[int]int) bool {
	return a.L.Eval(g, assign) && a.R.Eval(g, assign)
}

// Rank implements Formula.
func (a And) Rank() int { return max(a.L.Rank(), a.R.Rank()) }

// MaxVar implements Formula.
func (a And) MaxVar() int { return max(a.L.MaxVar(), a.R.MaxVar()) }

func (a And) String() string { return "(" + a.L.String() + "∧" + a.R.String() + ")" }

// Or is binary disjunction.
type Or struct{ L, R Formula }

// Eval implements Formula.
func (o Or) Eval(g *graph.Graph, assign map[int]int) bool {
	return o.L.Eval(g, assign) || o.R.Eval(g, assign)
}

// Rank implements Formula.
func (o Or) Rank() int { return max(o.L.Rank(), o.R.Rank()) }

// MaxVar implements Formula.
func (o Or) MaxVar() int { return max(o.L.MaxVar(), o.R.MaxVar()) }

func (o Or) String() string { return "(" + o.L.String() + "∨" + o.R.String() + ")" }

// CountExists is the counting quantifier ∃≥p x. F.
type CountExists struct {
	X int
	P int
	F Formula
}

// Eval implements Formula.
func (c CountExists) Eval(g *graph.Graph, assign map[int]int) bool {
	count := 0
	inner := map[int]int{}
	for k, v := range assign {
		inner[k] = v
	}
	for v := 0; v < g.N(); v++ {
		inner[c.X] = v
		if c.F.Eval(g, inner) {
			count++
			if count >= c.P {
				return true
			}
		}
	}
	return false
}

// Rank implements Formula.
func (c CountExists) Rank() int { return 1 + c.F.Rank() }

// MaxVar implements Formula.
func (c CountExists) MaxVar() int { return max(c.X, c.F.MaxVar()) }

func (c CountExists) String() string {
	return fmt.Sprintf("∃≥%d x%d.%s", c.P, c.X, c.F.String())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Sentence evaluates a closed formula on g.
func Sentence(g *graph.Graph, f Formula) bool {
	return f.Eval(g, map[int]int{})
}

// SatisfiesAt evaluates a formula with one free variable (index 0) at
// vertex v.
func SatisfiesAt(g *graph.Graph, f Formula, v int) bool {
	return f.Eval(g, map[int]int{0: v})
}

// RandomC2Formula samples a random C² formula with free variable x0 and
// quantifier rank at most depth, referencing only variables in scope. Used
// to probe Corollary 4.15 empirically.
func RandomC2Formula(rng *rand.Rand, depth int) Formula {
	return randC2(rng, depth, []int{0})
}

func randC2(rng *rand.Rand, depth int, avail []int) Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		x := avail[rng.Intn(len(avail))]
		y := avail[rng.Intn(len(avail))]
		if rng.Intn(2) == 0 {
			return Adj{x, y}
		}
		return Eq{x, y}
	}
	switch rng.Intn(4) {
	case 0:
		return Not{randC2(rng, depth, avail)}
	case 1:
		return And{randC2(rng, depth, avail), randC2(rng, depth, avail)}
	default:
		x := rng.Intn(2)
		na := avail
		if !containsVar(avail, x) {
			na = append(append([]int(nil), avail...), x)
		}
		return CountExists{X: x, P: 1 + rng.Intn(3), F: randC2(rng, depth-1, na)}
	}
}

func containsVar(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
