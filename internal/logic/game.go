package logic

import (
	"fmt"

	"repro/internal/graph"
)

// EquivalentCk decides whether g and h satisfy the same sentences of C_k,
// the fragment of counting logic with quantifier rank at most k (any number
// of variables), via the bijective counting game: positions are pairs of
// equal-length assignments (ā, b̄); Duplicator survives r more rounds iff
// the atomic types match and there is a bijection f between the vertex sets
// such that every extension (ā·v, b̄·f(v)) survives r−1 rounds.
//
// Theorem 4.10 equates C_k-equivalence with homomorphism indistinguishability
// over graphs of tree-depth at most k. Intended for small graphs.
func EquivalentCk(g, h *graph.Graph, k int) bool {
	if g.N() != h.N() {
		// With counting quantifiers, differing order is detected at rank 1.
		return k < 1
	}
	e := &gameEvaluator{g: g, h: h, memo: map[string]bool{}}
	return e.equiv(nil, nil, k)
}

type gameEvaluator struct {
	g, h *graph.Graph
	memo map[string]bool
}

func (e *gameEvaluator) equiv(as, bs []int, rounds int) bool {
	if !sameAtomicType(e.g, as, e.h, bs) {
		return false
	}
	if rounds == 0 {
		return true
	}
	key := fmt.Sprintf("%v|%v|%d", as, bs, rounds)
	if v, ok := e.memo[key]; ok {
		return v
	}
	n := e.g.N()
	// Bipartite compatibility: edge v-w when the extended position survives
	// rounds-1.
	adj := make([][]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make([]bool, n)
		for w := 0; w < n; w++ {
			adj[v][w] = e.equiv(append(append([]int(nil), as...), v), append(append([]int(nil), bs...), w), rounds-1)
		}
	}
	ok := hasPerfectMatching(adj, n)
	e.memo[key] = ok
	return ok
}

// sameAtomicType checks that the two assignments induce identical labelled
// ordered subgraphs.
func sameAtomicType(g *graph.Graph, as []int, h *graph.Graph, bs []int) bool {
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if g.VertexLabel(as[i]) != h.VertexLabel(bs[i]) {
			return false
		}
		for j := range as {
			if (as[i] == as[j]) != (bs[i] == bs[j]) {
				return false
			}
			if g.HasEdge(as[i], as[j]) != h.HasEdge(bs[i], bs[j]) {
				return false
			}
		}
	}
	return true
}

// hasPerfectMatching runs the Hungarian-style augmenting path algorithm on a
// boolean bipartite adjacency.
func hasPerfectMatching(adj [][]bool, n int) bool {
	matchTo := make([]int, n) // right vertex -> left vertex
	for i := range matchTo {
		matchTo[i] = -1
	}
	var try func(v int, seen []bool) bool
	try = func(v int, seen []bool) bool {
		for w := 0; w < n; w++ {
			if !adj[v][w] || seen[w] {
				continue
			}
			seen[w] = true
			if matchTo[w] < 0 || try(matchTo[w], seen) {
				matchTo[w] = v
				return true
			}
		}
		return false
	}
	for v := 0; v < n; v++ {
		seen := make([]bool, n)
		if !try(v, seen) {
			return false
		}
	}
	return true
}

// EquivalentC2 decides C²-equivalence of two graphs. By Theorem 3.1 this
// coincides with 1-WL indistinguishability; the decider here plays the
// 2-pebble bijective game directly so the correspondence can be tested
// rather than assumed.
func EquivalentC2(g, h *graph.Graph) bool {
	if g.N() != h.N() {
		return false
	}
	// The 2-pebble game with counting stabilises within n rounds.
	e := &pebbleEvaluator{g: g, h: h, memo: map[string]bool{}}
	return e.equiv(nil, nil, g.N()+h.N())
}

// NodesEquivalentC2 decides whether vertex v of g and w of h satisfy the
// same C² formulas with one free variable (Corollary 4.15's right-hand
// side).
func NodesEquivalentC2(g *graph.Graph, v int, h *graph.Graph, w int) bool {
	e := &pebbleEvaluator{g: g, h: h, memo: map[string]bool{}}
	return e.equiv([]int{v}, []int{w}, g.N()+h.N())
}

// pebbleEvaluator plays the 2-pebble bijective counting game: assignments
// never exceed length 2; a move may re-place an existing pebble.
type pebbleEvaluator struct {
	g, h *graph.Graph
	memo map[string]bool
}

func (e *pebbleEvaluator) equiv(as, bs []int, rounds int) bool {
	if !sameAtomicType(e.g, as, e.h, bs) {
		return false
	}
	if rounds == 0 {
		return true
	}
	key := fmt.Sprintf("%v|%v|%d", as, bs, rounds)
	if v, ok := e.memo[key]; ok {
		return v
	}
	e.memo[key] = true // assume survivable to cut cycles; overwritten below
	n := e.g.N()
	ok := true
	// Spoiler chooses which pebble slot to move (or to place a new pebble if
	// fewer than 2 are down).
	slots := len(as)
	var moves [][2][]int // pairs of (as', bs') templates with a hole at the end
	if slots < 2 {
		moves = append(moves, [2][]int{append([]int(nil), as...), append([]int(nil), bs...)})
	}
	for s := 0; s < slots; s++ {
		na := make([]int, 0, slots)
		nb := make([]int, 0, slots)
		for i := 0; i < slots; i++ {
			if i != s {
				na = append(na, as[i])
				nb = append(nb, bs[i])
			}
		}
		moves = append(moves, [2][]int{na, nb})
	}
	for _, mv := range moves {
		adj := make([][]bool, n)
		for v := 0; v < n; v++ {
			adj[v] = make([]bool, n)
			for w := 0; w < n; w++ {
				adj[v][w] = e.equiv(append(append([]int(nil), mv[0]...), v), append(append([]int(nil), mv[1]...), w), rounds-1)
			}
		}
		if !hasPerfectMatching(adj, n) {
			ok = false
			break
		}
	}
	e.memo[key] = ok
	return ok
}
