package logic

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/treedec"
	"repro/internal/wl"
)

func TestFormulaEval(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	adj := Adj{0, 1}
	if !adj.Eval(g, map[int]int{0: 0, 1: 1}) {
		t.Error("E(0,1) should hold on P3")
	}
	if adj.Eval(g, map[int]int{0: 0, 1: 2}) {
		t.Error("E(0,2) should fail on P3")
	}
	// "x0 has at least 2 neighbours" holds only at the middle vertex.
	deg2 := CountExists{X: 1, P: 2, F: Adj{0, 1}}
	for v := 0; v < 3; v++ {
		want := v == 1
		if got := SatisfiesAt(g, deg2, v); got != want {
			t.Errorf("deg>=2 at %d: got %v want %v", v, got, want)
		}
	}
}

func TestSentences(t *testing.T) {
	// "There are at least 4 vertices": ∃≥4 x0 (x0 = x0).
	atLeast4 := CountExists{X: 0, P: 4, F: Eq{0, 0}}
	if !Sentence(graph.Cycle(4), atLeast4) {
		t.Error("C4 has 4 vertices")
	}
	if Sentence(graph.Cycle(3), atLeast4) {
		t.Error("C3 has only 3")
	}
	// "Some vertex has at least 3 neighbours."
	hub := CountExists{X: 0, P: 1, F: CountExists{X: 1, P: 3, F: Adj{0, 1}}}
	if !Sentence(graph.Star(3), hub) {
		t.Error("S3 has a hub")
	}
	if Sentence(graph.Cycle(5), hub) {
		t.Error("C5 has no degree-3 vertex")
	}
	if hub.Rank() != 2 {
		t.Errorf("rank=%d, want 2", hub.Rank())
	}
}

func TestEquivalentC2MatchesWL(t *testing.T) {
	// Theorem 3.1 (k=1): C²-equivalence iff 1-WL does not distinguish.
	pairs := []struct {
		name string
		g, h *graph.Graph
	}{
		{"C6 vs 2C3", graph.Cycle(6), graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3))},
		{"C5 vs C5", graph.Cycle(5), graph.Cycle(5)},
		{"P4 vs S3", graph.Path(4), graph.Star(3)},
		{"paw vs paw", graph.Fig5Graph(), graph.Fig5Graph()},
	}
	for _, p := range pairs {
		wlSame := !wl.Distinguishes(p.g, p.h)
		c2Same := EquivalentC2(p.g, p.h)
		if wlSame != c2Same {
			t.Errorf("%s: WL-equivalent=%v but C2-equivalent=%v", p.name, wlSame, c2Same)
		}
	}
}

func TestEquivalentC2RandomPairsMatchWL(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		g := graph.Random(5, 0.5, rng)
		h := graph.Random(5, 0.5, rng)
		wlSame := !wl.Distinguishes(g, h)
		c2Same := EquivalentC2(g, h)
		if wlSame != c2Same {
			t.Errorf("trial %d: WL=%v C2=%v\n%v\n%v", trial, wlSame, c2Same, g, h)
		}
	}
}

func TestNodesEquivalentC2MatchesNodeColours(t *testing.T) {
	// Corollary 4.15 / Theorem 4.14 right half: same stable WL colour iff
	// same C² formulas with one free variable.
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 8; trial++ {
		g := graph.Random(5, 0.5, rng)
		for v := 0; v < g.N(); v++ {
			for w := v; w < g.N(); w++ {
				wlSame := wl.SameNodeColor(g, v, g, w)
				c2Same := NodesEquivalentC2(g, v, g, w)
				if wlSame != c2Same {
					t.Errorf("trial %d nodes %d,%d: WL=%v C2=%v on %v", trial, v, w, wlSame, c2Same, g)
				}
			}
		}
	}
}

func TestRandomC2FormulasRespectWLClasses(t *testing.T) {
	// Sampled C² formulas cannot separate WL-equivalent nodes.
	rng := rand.New(rand.NewSource(53))
	g := graph.Cycle(6) // all nodes WL-equivalent
	for i := 0; i < 50; i++ {
		f := RandomC2Formula(rng, 3)
		base := SatisfiesAt(g, f, 0)
		for v := 1; v < 6; v++ {
			if SatisfiesAt(g, f, v) != base {
				t.Fatalf("formula %v separates vertices of vertex-transitive C6", f)
			}
		}
	}
}

func TestEquivalentCkRankZeroAndOne(t *testing.T) {
	g, h := graph.Cycle(3), graph.Cycle(4)
	if !EquivalentCk(g, h, 0) {
		t.Error("rank-0 equivalence is trivial for any graphs of equal... (no closed atomic sentences)")
	}
	// Rank 1 counts vertices: C3 vs C4 differ.
	if EquivalentCk(g, h, 1) {
		t.Error("rank-1 counting separates graphs of different order")
	}
	// Same order, different degree multiset needs rank 2.
	p4, s3 := graph.Path(4), graph.Star(3)
	if !EquivalentCk(p4, s3, 1) {
		t.Error("P4 and S3 both have 4 vertices; rank 1 cannot separate")
	}
	if EquivalentCk(p4, s3, 2) {
		t.Error("rank 2 sees the degree-3 hub of S3")
	}
}

func TestTheorem410TreeDepthHomsVsCk(t *testing.T) {
	// Over pairs of small graphs: Hom_{TD_k} equality iff C_k-equivalence.
	// Uses the hom package indirectly through tree-depth filtered classes.
	type pair struct{ g, h *graph.Graph }
	pairs := []pair{
		{graph.Cycle(6), graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3))},
		{graph.Path(4), graph.Path(4)},
		{graph.Star(3), graph.Path(4)},
	}
	for k := 1; k <= 3; k++ {
		class := treedec.GraphsOfTreeDepthAtMost(k, 4)
		for _, p := range pairs {
			homSame := homIndistinguishable(class, p.g, p.h)
			ckSame := EquivalentCk(p.g, p.h, k)
			if homSame != ckSame {
				t.Errorf("k=%d %v vs %v: hom-TD=%v Ck=%v", k, p.g, p.h, homSame, ckSame)
			}
		}
	}
}

// homIndistinguishable is a tiny local brute-force hom comparison to avoid
// an import cycle in tests (logic does not depend on hom).
func homIndistinguishable(class []*graph.Graph, g, h *graph.Graph) bool {
	for _, f := range class {
		if countHom(f, g) != countHom(f, h) {
			return false
		}
	}
	return true
}

func countHom(f, g *graph.Graph) int {
	nf := f.N()
	assign := make([]int, nf)
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == nf {
			count++
			return
		}
		for v := 0; v < g.N(); v++ {
			assign[i] = v
			ok := true
			for _, e := range f.Edges() {
				if e.U != i && e.V != i {
					continue
				}
				other := e.U + e.V - i
				if other <= i && !g.HasEdge(assign[e.U], assign[e.V]) {
					ok = false
					break
				}
			}
			if ok {
				rec(i + 1)
			}
		}
	}
	rec(0)
	return count
}

func TestFormulaStringers(t *testing.T) {
	f := CountExists{X: 1, P: 2, F: And{Adj{0, 1}, Not{Eq{0, 1}}}}
	if f.String() == "" {
		t.Error("formula string should be nonempty")
	}
	if f.MaxVar() != 1 {
		t.Errorf("MaxVar=%d, want 1", f.MaxVar())
	}
	if (HasLabel{X: 0, Label: 3}).Rank() != 0 {
		t.Error("atomic rank should be 0")
	}
}

func TestHasLabelEval(t *testing.T) {
	g := graph.Path(2)
	g.SetVertexLabel(0, 7)
	if !SatisfiesAt(g, HasLabel{X: 0, Label: 7}, 0) {
		t.Error("label 7 at vertex 0")
	}
	if SatisfiesAt(g, HasLabel{X: 0, Label: 7}, 1) {
		t.Error("vertex 1 has no label 7")
	}
}
