package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// fast experiments that must pass and report sensibly.
func TestFastExperimentsPass(t *testing.T) {
	cases := []struct {
		name string
		f    func(io.Writer) Result
	}{
		{"E02", E02Fig3},
		{"E03", E03Fig4},
		{"E04", E04Fig5},
		{"E05", E05Ex41},
		{"E07", E07Cospectral},
		{"E13", E13Weighted},
		{"E14", E14GNNvsWL},
		{"E18", E18Distances},
		{"E19", E19CutNorm},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		r := tc.f(&buf)
		if r.ID != tc.name {
			t.Errorf("%s: wrong ID %q", tc.name, r.ID)
		}
		if !r.Passed {
			t.Errorf("%s failed: %s\n%s", tc.name, r.Notes, buf.String())
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no report", tc.name)
		}
	}
}

func TestE05ExactPaperNumbers(t *testing.T) {
	var buf bytes.Buffer
	r := E05Ex41(&buf)
	if !r.Passed {
		t.Fatalf("E05: %s", r.Notes)
	}
	out := buf.String()
	if !strings.Contains(out, "18") || !strings.Contains(out, "114") {
		t.Errorf("E05 report should contain the paper's exact numbers:\n%s", out)
	}
}

func TestE07ExactPaperNumbers(t *testing.T) {
	var buf bytes.Buffer
	r := E07Cospectral(&buf)
	if !r.Passed {
		t.Fatalf("E07: %s", r.Notes)
	}
	out := buf.String()
	if !strings.Contains(out, "20") || !strings.Contains(out, "16") {
		t.Errorf("E07 report should contain hom(P3) = 20 and 16:\n%s", out)
	}
}

func TestE15ReturnsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("E15 trains SVMs on three datasets")
	}
	r, rows := E15Classification(io.Discard)
	if !r.Passed {
		t.Errorf("E15: %s", r.Notes)
	}
	if len(rows) != 12 { // 3 datasets x 4 methods
		t.Errorf("E15 table has %d rows, want 12", len(rows))
	}
	for _, row := range rows {
		if row.Acc < 0 || row.Acc > 1 {
			t.Errorf("accuracy out of range: %+v", row)
		}
	}
}

func TestRationalSolutionExistsMatchesWLOnKnownPairs(t *testing.T) {
	// For the regular pair C6/2C3 the system must be solvable; for the
	// cospectral pair it must not (paths distinguish them).
	var buf bytes.Buffer
	r := E09PathHoms(&buf)
	if !r.Passed {
		t.Errorf("E09: %s\n%s", r.Notes, buf.String())
	}
	if !strings.Contains(buf.String(), "witness") {
		t.Error("E09 should print a Figure-7 witness")
	}
}
