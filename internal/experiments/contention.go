package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// This file keeps a faithful copy of the PR 1 WL feature pipeline — one
// process-wide mutex around one string-keyed colour map, one formatted
// signature string per vertex per round — as the baseline of the E20
// contention comparison and the root GramWL benchmarks. The live wl
// package interns integer signatures through a lock-striped store instead;
// this copy exists only so the speedup stays measurable against the real
// thing rather than a guess.

// mutexInterner is the old global interner shape: every worker of the Gram
// pipeline serializes on one mutex for every colour of every vertex.
type mutexInterner struct {
	mu  sync.Mutex
	ids map[string]int
}

func newMutexInterner() *mutexInterner { return &mutexInterner{ids: map[string]int{}} }

func (in *mutexInterner) intern(sig string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[sig]; ok {
		return id
	}
	id := len(in.ids)
	in.ids[sig] = id
	return id
}

// legacyWLColors is the PR 1 CanonicalColors: Sprintf signatures through
// the shared interner.
func legacyWLColors(in *mutexInterner, g *graph.Graph, t int) [][]int {
	n := g.N()
	out := make([][]int, t+1)
	cur := make([]int, n)
	for v := 0; v < n; v++ {
		cur[v] = in.intern(fmt.Sprintf("L%d", g.VertexLabel(v)))
	}
	out[0] = append([]int(nil), cur...)
	for round := 1; round <= t; round++ {
		next := make([]int, n)
		for v := 0; v < n; v++ {
			nbr := make([]int, 0, g.Degree(v))
			for _, w := range g.Neighbors(v) {
				nbr = append(nbr, cur[w])
			}
			sort.Ints(nbr)
			next[v] = in.intern(fmt.Sprintf("L%d|%v", g.VertexLabel(v), nbr))
		}
		cur = next
		out[round] = append([]int(nil), cur...)
	}
	return out
}

// legacyGlobal mirrors PR 1's process-global wl.globalColors: warm across
// calls, so repeated Gram builds (E20's best-of-two, benchmark iterations)
// pay lookup-only interning exactly as the engine's warm global store does
// on the sharded side — the comparison isolates contention, not cold-map
// fill.
var legacyGlobal = newMutexInterner()

// LegacyMutexWLGram builds the WL-subtree Gram matrix exactly as PR 1 did:
// feature extraction on a GOMAXPROCS pool with every worker interning
// colours through ONE mutex-guarded string map, then the parallel
// symmetric fill. It is the global-mutex side of the E20 contention
// comparison and of the root GramWL benchmarks.
func LegacyMutexWLGram(gs []*graph.Graph, rounds int) *linalg.Matrix {
	in := legacyGlobal
	feats := make([]linalg.SparseVector, len(gs))
	linalg.ParallelFor(len(gs), func(i int) {
		out := make(linalg.SparseVector)
		for r, round := range legacyWLColors(in, gs[i], rounds) {
			for _, c := range round {
				out.Add(linalg.Key(r, c, 0), 1)
			}
		}
		feats[i] = out
	})
	return linalg.SymmetricFromFunc(len(gs), func(i, j int) float64 {
		return feats[i].Dot(feats[j])
	})
}
