// Package experiments reproduces every figure, worked example, and theorem
// of the paper as an executable experiment (see DESIGN.md for the E01–E24
// index and EXPERIMENTS.md for recorded results). Each function writes a
// small report to the supplied writer and returns a Result capturing the
// headline checks, so the cmd/experiments binary and the root benchmarks
// share one implementation.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/graph2vec"
	"repro/internal/hom"
	"repro/internal/kernel"
	"repro/internal/kge"
	"repro/internal/linalg"
	"repro/internal/logic"
	"repro/internal/relational"
	"repro/internal/similarity"
	"repro/internal/svm"
	"repro/internal/treedec"
	"repro/internal/wl"
	"repro/internal/word2vec"
)

// Result summarises one experiment run.
type Result struct {
	ID     string
	Passed bool
	Notes  string
}

func report(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format+"\n", args...)
}

// E01Fig2 reproduces Figure 2: three 2-D node embeddings of one graph
// (Zachary's karate club) — SVD of the adjacency matrix, SVD of the
// exp(−2·dist) similarity matrix, and node2vec — scored by how well k-means
// on the embedding recovers the two factions.
func E01Fig2(w io.Writer) Result {
	g, factions := graph.KarateClub()
	rng := rand.New(rand.NewSource(1))
	rows := []struct {
		name string
		emb  *embed.NodeEmbedding
	}{
		{"(a) adjacency SVD", embed.AdjacencySpectral(g, 2)},
		{"(b) exp(-2 dist) SVD", embed.DistanceSimilaritySpectral(g, 2, 2)},
		{"(c) node2vec", embed.Node2Vec(g, 8, 1, 0.5, rng)},
	}
	report(w, "E01 Figure 2: node embeddings of the karate club (34 nodes)")
	ok := true
	var nmis []float64
	for _, r := range rows {
		nmi := embed.CommunityRecovery(r.emb, factions, 2, rand.New(rand.NewSource(2)))
		nmis = append(nmis, nmi)
		report(w, "  %-22s dim=%d  faction NMI=%.3f", r.name, r.emb.Dim(), nmi)
	}
	// The similarity-based and walk-based embeddings should carry community
	// signal (the paper's point that all three are plausible embeddings).
	if nmis[1] < 0.25 || nmis[2] < 0.25 {
		ok = false
	}
	return Result{ID: "E01", Passed: ok, Notes: fmt.Sprintf("NMI a/b/c = %.2f/%.2f/%.2f", nmis[0], nmis[1], nmis[2])}
}

// E02Fig3 reproduces Figure 3: a run of 1-WL on the running example graph,
// reporting colour-class counts per round until the colouring is stable.
func E02Fig3(w io.Writer) Result {
	g := graph.Fig5Graph()
	c := wl.Refine(g)
	report(w, "E02 Figure 3: 1-WL colour refinement on the paw graph")
	for i, colors := range c.History {
		classes := map[int]int{}
		for _, x := range colors {
			classes[x]++
		}
		report(w, "  round %d: %d colour classes", i, len(classes))
	}
	report(w, "  stable after %d rounds with %d classes", c.Rounds, c.NumColors())
	ok := c.NumColors() == 3
	return Result{ID: "E02", Passed: ok, Notes: fmt.Sprintf("stable classes=%d rounds=%d", c.NumColors(), c.Rounds)}
}

// E03Fig4 reproduces Figure 4: the stable colouring matrix-WL computes for
// the paper's 3×5 matrix.
func E03Fig4(w io.Writer) Result {
	mc := wl.MatrixWL(graph.Fig4Matrix())
	report(w, "E03 Figure 4: matrix WL on the 3x5 example matrix")
	report(w, "  row classes: %v", mc.RowColors)
	report(w, "  col classes: %v", mc.ColColors)
	ok := mc.NumRowClasses() == 2 && mc.NumColClasses() == 2 &&
		mc.RowColors[0] == mc.RowColors[2] && mc.ColColors[1] != mc.ColColors[0]
	return Result{ID: "E03", Passed: ok,
		Notes: fmt.Sprintf("rows {v1,v3}|{v2}, cols {w2}|{w1,w3,w4,w5}: %v", ok)}
}

// E04Fig5 reproduces Figure 5 and Example 3.3: WL colours viewed as rooted
// trees, with the published counts wl(c,G) = 2 and 0.
func E04Fig5(w io.Writer) Result {
	g := graph.Fig5Graph()
	two := &wl.ColorTree{Children: []*wl.ColorTree{{}, {}}}
	four := &wl.ColorTree{Children: []*wl.ColorTree{{}, {}, {}, {}}}
	c2 := wl.WLCount(g, two)
	c4 := wl.WLCount(g, four)
	report(w, "E04 Figure 5 / Example 3.3: colours as trees on the paw graph")
	report(w, "  wl(2-leaf tree, G) = %d (paper: 2)", c2)
	report(w, "  wl(4-leaf tree, G) = %d (paper: 0)", c4)
	ok := c2 == 2 && c4 == 0
	return Result{ID: "E04", Passed: ok, Notes: fmt.Sprintf("counts %d,%d", c2, c4)}
}

// E05Ex41 reproduces Example 4.1: hom(S2,G)=18 and hom(S4,G)=114 on the
// reconstructed Figure 5 graph, plus the star formula.
func E05Ex41(w io.Writer) Result {
	g := graph.Fig5Graph()
	h2 := hom.Count(graph.Star(2), g)
	h4 := hom.Count(graph.Star(4), g)
	report(w, "E05 Example 4.1: homomorphism counts into the paw graph")
	report(w, "  hom(S2, G) = %.0f (paper: 18)", h2)
	report(w, "  hom(S4, G) = %.0f (paper: 114)", h4)
	ok := h2 == 18 && h4 == 114
	return Result{ID: "E05", Passed: ok, Notes: fmt.Sprintf("hom=%v,%v", h2, h4)}
}

// E06Lovasz verifies Theorem 4.2's machinery: the HOM = P·D·M factorisation
// with triangular P, M over all graphs of order <= 3 (and the iso check over
// order <= 4).
func E06Lovasz(w io.Writer) Result {
	sys := hom.NewLovaszSystem(3)
	tri := sys.TriangularityHolds()
	fac := sys.FactorisationHolds()
	report(w, "E06 Theorem 4.2 (Lovász): HOM = P·D·M over %d graphs of order <= 3", len(sys.Graphs))
	report(w, "  P lower-/M upper-triangular with positive diagonals: %v", tri)
	report(w, "  factorisation holds entrywise: %v", fac)
	// Hom vectors determine isomorphism over order <= 4.
	var all []*graph.Graph
	for n := 1; n <= 4; n++ {
		all = append(all, graph.AllGraphs(n)...)
	}
	isoOK := true
	for i, g := range all {
		for j, h := range all {
			same := true
			for _, f := range all {
				if hom.Count(f, g) != hom.Count(f, h) {
					same = false
					break
				}
			}
			if same != (i == j) {
				isoOK = false
			}
		}
	}
	report(w, "  hom-vector equality == isomorphism over all %d graphs of order <= 4: %v", len(all), isoOK)
	ok := tri && fac && isoOK
	return Result{ID: "E06", Passed: ok, Notes: fmt.Sprintf("tri=%v fac=%v iso=%v", tri, fac, isoOK)}
}

// E07Cospectral reproduces Theorem 4.3, Figure 6 and Example 4.7: the
// co-spectral pair has equal spectra and equal cycle homs but different
// path homs (20 vs 16).
func E07Cospectral(w io.Writer) Result {
	g, h := graph.CospectralPair()
	sg := linalg.Eigenvalues(linalg.FromRows(g.AdjacencyMatrix()))
	sh := linalg.Eigenvalues(linalg.FromRows(h.AdjacencyMatrix()))
	spectraEqual := true
	for i := range sg {
		if math.Abs(sg[i]-sh[i]) > 1e-9 {
			spectraEqual = false
		}
	}
	cycles := hom.CycleIndistinguishable(g, h)
	p3g, p3h := hom.CountPath(3, g), hom.CountPath(3, h)
	iso := graph.Isomorphic(g, h)
	report(w, "E07 Thm 4.3 / Fig 6 / Ex 4.7: K1,4 vs C4+K1")
	report(w, "  spectra equal: %v (%.3v)", spectraEqual, sg)
	report(w, "  cycle homs equal: %v; isomorphic: %v", cycles, iso)
	report(w, "  hom(P3,K1,4)=%.0f hom(P3,C4+K1)=%.0f (paper: 20, 16)", p3g, p3h)
	ok := spectraEqual && cycles && !iso && p3g == 20 && p3h == 16
	return Result{ID: "E07", Passed: ok, Notes: fmt.Sprintf("P3 homs %v/%v", p3g, p3h)}
}

// E08TreeHoms verifies Theorem 4.4 (k=1) and Corollary 4.5 exhaustively:
// over all pairs of graphs of order <= 5, tree-hom equality, 1-WL
// indistinguishability, and fractional isomorphism coincide.
func E08TreeHoms(w io.Writer) Result {
	var all []*graph.Graph
	for n := 1; n <= 5; n++ {
		all = append(all, graph.AllGraphs(n)...)
	}
	agree := true
	pairs, equivalentPairs := 0, 0
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			g, h := all[i], all[j]
			if g.N() != h.N() {
				continue
			}
			pairs++
			treeEq := hom.TreeIndistinguishable(g, h)
			wlEq := !wl.Distinguishes(g, h)
			fracEq := similarity.FractionallyIsomorphic(g, h)
			if treeEq != wlEq || wlEq != fracEq {
				agree = false
			}
			if wlEq {
				equivalentPairs++
			}
		}
	}
	g6, h3 := graph.WLIndistinguishablePair()
	c6Check := hom.TreeIndistinguishable(g6, h3) && !graph.Isomorphic(g6, h3)
	cg, ch := graph.CFIPair()
	cfiCheck := !wl.Distinguishes(cg, ch)
	report(w, "E08 Thm 4.4 / Cor 4.5: tree homs == 1-WL == fractional isomorphism")
	report(w, "  exhaustive over %d same-order pairs of order <= 5: agree=%v", pairs, agree)
	report(w, "  non-isomorphic WL-equivalent pairs found: %d", equivalentPairs)
	report(w, "  C6 vs 2C3 tree-hom-indistinguishable: %v; CFI pair WL-equivalent: %v", c6Check, cfiCheck)
	ok := agree && c6Check && cfiCheck
	return Result{ID: "E08", Passed: ok, Notes: fmt.Sprintf("pairs=%d equivalent=%d", pairs, equivalentPairs)}
}

// E09PathHoms verifies Theorem 4.6 exhaustively over order <= 5 — path-hom
// equality iff equations (3.2)+(3.3) have a rational solution — and finds
// the first path-indistinguishable non-isomorphic pair (the Figure 7
// witness of this reproduction).
func E09PathHoms(w io.Writer) Result {
	// Part 1: exhaustive both-direction verification over order <= 5.
	var small []*graph.Graph
	for n := 1; n <= 5; n++ {
		small = append(small, graph.AllGraphs(n)...)
	}
	agree := true
	checked := 0
	for i := 0; i < len(small); i++ {
		for j := i + 1; j < len(small); j++ {
			g, h := small[i], small[j]
			if g.N() != h.N() {
				continue
			}
			checked++
			if hom.PathIndistinguishable(g, h) != rationalSolutionExists(g, h) {
				agree = false
			}
		}
	}
	// Part 2: the smallest witnesses live at order 6 (e.g. C6 vs 2C3, both
	// 2-regular, so hom(P_k) = 6·2^{k-1} for every k). Search the order-6
	// catalogue with the cheap path test, then verify Theorem 4.6's forward
	// direction on each witness with exact rational elimination.
	six := graph.AllGraphs(6)
	var witness [2]*graph.Graph
	witnesses := 0
	witnessesVerified := true
	for i := 0; i < len(six); i++ {
		for j := i + 1; j < len(six); j++ {
			if !hom.PathIndistinguishable(six[i], six[j]) {
				continue
			}
			witnesses++
			if witness[0] == nil {
				witness[0], witness[1] = six[i], six[j]
			}
			if !rationalSolutionExists(six[i], six[j]) {
				witnessesVerified = false
			}
		}
	}
	report(w, "E09 Thm 4.6 / Fig 7: path homs == rational solutions of (3.2)+(3.3)")
	report(w, "  exhaustive over %d same-order pairs of order <= 5: agree=%v", checked, agree)
	report(w, "  order-6 path-indistinguishable non-isomorphic pairs: %d (all satisfy (3.2)+(3.3) rationally: %v)",
		witnesses, witnessesVerified)
	if witness[0] != nil {
		report(w, "  Figure-7 witness: %v  vs  %v", witness[0], witness[1])
	}
	ok := agree && witness[0] != nil && witnessesVerified
	return Result{ID: "E09", Passed: ok, Notes: fmt.Sprintf("smallPairs=%d witnesses=%d", checked, witnesses)}
}

// rationalSolutionExists decides whether equations (3.2) AX = XB and (3.3)
// row/column sums 1 admit any rational solution, by exact Gaussian
// elimination.
func rationalSolutionExists(g, h *graph.Graph) bool {
	n := g.N()
	if h.N() != n {
		return false
	}
	a := g.AdjacencyMatrix()
	b := h.AdjacencyMatrix()
	varOf := func(v, w int) int { return v*n + w }
	sys := linalg.NewRationalSystem(n * n)
	// (3.2): for all v,w: Σ_v' A[v][v'] X[v'][w] − Σ_w' X[v][w'] B[w'][w] = 0.
	for v := 0; v < n; v++ {
		for w := 0; w < n; w++ {
			coeffs := map[int]int64{}
			for vp := 0; vp < n; vp++ {
				if a[v][vp] != 0 {
					coeffs[varOf(vp, w)] += int64(a[v][vp])
				}
			}
			for wp := 0; wp < n; wp++ {
				if b[wp][w] != 0 {
					coeffs[varOf(v, wp)] -= int64(b[wp][w])
				}
			}
			if len(coeffs) > 0 {
				sys.AddEquation(coeffs, 0)
			}
		}
	}
	// (3.3): row and column sums are 1.
	for v := 0; v < n; v++ {
		coeffs := map[int]int64{}
		for w := 0; w < n; w++ {
			coeffs[varOf(v, w)] = 1
		}
		sys.AddEquation(coeffs, 1)
	}
	for w := 0; w < n; w++ {
		coeffs := map[int]int64{}
		for v := 0; v < n; v++ {
			coeffs[varOf(v, w)] = 1
		}
		sys.AddEquation(coeffs, 1)
	}
	ok, _ := sys.Solvable()
	return ok
}

// E10TreeDepth verifies Theorem 4.10 over pairs of small graphs: tree-depth-k
// hom vectors coincide iff the graphs are C_k-equivalent (bijective counting
// game), for k = 1..3.
func E10TreeDepth(w io.Writer) Result {
	var all []*graph.Graph
	for n := 1; n <= 4; n++ {
		all = append(all, graph.AllGraphs(n)...)
	}
	report(w, "E10 Thm 4.10: tree-depth-k homs vs quantifier-rank-k equivalence")
	ok := true
	for k := 1; k <= 3; k++ {
		class := treedec.GraphsOfTreeDepthAtMost(k, 4)
		agree, checked := true, 0
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				g, h := all[i], all[j]
				if g.N() != h.N() {
					continue
				}
				checked++
				homEq := hom.Indistinguishable(class, g, h)
				ckEq := logic.EquivalentCk(g, h, k)
				if homEq != ckEq {
					agree = false
				}
			}
		}
		report(w, "  k=%d: class size %d, %d pairs, agree=%v", k, len(class), checked, agree)
		ok = ok && agree
	}
	return Result{ID: "E10", Passed: ok, Notes: fmt.Sprintf("agree=%v", ok)}
}

// E11RootedHoms verifies Theorem 4.14 and Corollary 4.15: rooted-tree hom
// vectors of nodes coincide iff 1-WL assigns equal colours iff the nodes are
// C²-equivalent.
func E11RootedHoms(w io.Writer) Result {
	trees, roots := hom.AllRootedTrees(4)
	rng := rand.New(rand.NewSource(11))
	agree := true
	checked := 0
	for trial := 0; trial < 6; trial++ {
		g := graph.Random(6, 0.5, rng)
		for v := 0; v < g.N(); v++ {
			for u := v + 1; u < g.N(); u++ {
				checked++
				homEq := hom.SameRootedVector(trees, roots, g, v, g, u)
				wlEq := wl.SameNodeColor(g, v, g, u)
				c2Eq := logic.NodesEquivalentC2(g, v, g, u)
				if homEq != wlEq || wlEq != c2Eq {
					agree = false
				}
			}
		}
	}
	report(w, "E11 Thm 4.14 / Cor 4.15: rooted-tree homs == node WL colour == C² node type")
	report(w, "  %d node pairs over 6 random graphs: agree=%v (rooted trees <= 4 vertices)", checked, agree)
	return Result{ID: "E11", Passed: agree, Notes: fmt.Sprintf("pairs=%d", checked)}
}

// E12Incidence exercises Section 4.2 / Corollary 4.12 on ternary structures
// via incidence graphs.
func E12Incidence(w io.Writer) Result {
	rng := rand.New(rand.NewSource(12))
	agree := true
	for trial := 0; trial < 5; trial++ {
		a := relational.RandomStructure(3, 2, rng)
		b := relational.RandomStructure(3, 2, rng)
		wlEq := relational.WLEquivalent(a, b)
		c2Eq := relational.C2Equivalent(a, b)
		if wlEq != c2Eq {
			agree = false
		}
		if wlEq && !relational.TreeHomIndistinguishable(a, b, 3) {
			agree = false
		}
	}
	report(w, "E12 Cor 4.12: ternary structures via incidence graphs")
	report(w, "  WL == C² == labelled-tree homs on random structure pairs: %v", agree)
	return Result{ID: "E12", Passed: agree, Notes: fmt.Sprintf("agree=%v", agree)}
}

// E13Weighted verifies Theorem 4.13 on weighted graphs: weighted-WL
// equivalence coincides with equality of tree partition functions.
func E13Weighted(w io.Writer) Result {
	// Weighted C6 vs two weighted triangles with matching uniform weight:
	// weighted-WL-equivalent, so all tree partition functions must agree.
	weight := 2.5
	mk := func(base *graph.Graph) *graph.Graph {
		g := graph.New(base.N())
		for _, e := range base.Edges() {
			g.AddWeightedEdge(e.U, e.V, weight)
		}
		return g
	}
	c6 := mk(graph.Cycle(6))
	tt := mk(graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3)))
	wlEq := !wl.DistinguishesWeighted(c6, tt)
	treesEq := true
	for _, t := range graph.TreesUpTo(6) {
		if math.Abs(hom.Count(t, c6)-hom.Count(t, tt)) > 1e-6 {
			treesEq = false
		}
	}
	// A perturbed pair must be separated by both sides.
	tt2 := tt.Clone()
	tt2.Edges()[0].Weight = 9 // direct mutation of the shared slice
	wlSep := wl.DistinguishesWeighted(c6, rebuild(tt2))
	treeSep := false
	for _, t := range graph.TreesUpTo(4) {
		if math.Abs(hom.Count(t, c6)-hom.Count(t, rebuild(tt2))) > 1e-6 {
			treeSep = true
		}
	}
	report(w, "E13 Thm 4.13: weighted WL vs tree partition functions")
	report(w, "  uniform-weight C6 vs 2C3: weighted-WL-equivalent=%v, tree partition functions equal=%v", wlEq, treesEq)
	report(w, "  perturbed pair separated by weighted WL=%v and by tree homs=%v", wlSep, treeSep)
	ok := wlEq && treesEq && wlSep && treeSep
	return Result{ID: "E13", Passed: ok, Notes: fmt.Sprintf("eq=%v sep=%v", wlEq && treesEq, wlSep && treeSep)}
}

// rebuild deep-copies a graph through its edge list so mutated weights take
// effect in adjacency-derived structures.
func rebuild(g *graph.Graph) *graph.Graph {
	h := graph.New(g.N())
	for _, e := range g.Edges() {
		h.AddEdgeFull(e.U, e.V, e.Weight, e.Label)
	}
	return h
}

// E14GNNvsWL demonstrates Section 3.6: GNNs with constant features cannot
// exceed 1-WL; random initial features can.
func E14GNNvsWL(w io.Writer) Result {
	g, h := graph.WLIndistinguishablePair()
	boundHolds := true
	for seed := int64(0); seed < 8; seed++ {
		net, _ := gnn.New([]int{3, 6, 5}, 2, rand.New(rand.NewSource(seed)))
		lg, _ := net.GraphLogits(g, gnn.ConstantFeatures(g.N(), 3))
		lh, _ := net.GraphLogits(h, gnn.ConstantFeatures(h.N(), 3))
		for i := range lg {
			if math.Abs(lg[i]-lh[i]) > 1e-9 {
				boundHolds = false
			}
		}
	}
	rng := rand.New(rand.NewSource(14))
	net, _ := gnn.New([]int{4, 8, 4}, 2, rng)
	broken := false
	for trial := 0; trial < 10 && !broken; trial++ {
		lg, _ := net.GraphLogits(g, gnn.RandomFeatures(g.N(), 4, rng))
		lh, _ := net.GraphLogits(h, gnn.RandomFeatures(h.N(), 4, rng))
		for i := range lg {
			if math.Abs(lg[i]-lh[i]) > 1e-6 {
				broken = true
			}
		}
	}
	report(w, "E14 Sec 3.6: GNN expressiveness vs 1-WL on C6 vs 2C3")
	report(w, "  constant features: outputs identical across 8 random GNNs: %v", boundHolds)
	report(w, "  random features: pair separated in some draw: %v", broken)
	ok := boundHolds && broken
	return Result{ID: "E14", Passed: ok, Notes: fmt.Sprintf("bound=%v broken=%v", boundHolds, broken)}
}

// ClassificationRow is one (dataset, method) accuracy entry of the E15
// table.
type ClassificationRow struct {
	Dataset string
	Method  string
	Acc     float64
}

// E15Classification reproduces the paper's "initial experiments": the
// log-scaled homomorphism vector over ~20 binary trees and cycles, fed to a
// kernel SVM, compared against the WL subtree, shortest-path, and graphlet
// kernels on synthetic classification tasks. The paper's claim is relative:
// hom vectors are competitive.
func E15Classification(w io.Writer) (Result, []ClassificationRow) {
	rng := rand.New(rand.NewSource(15))
	datasets := []*dataset.GraphClassification{
		dataset.CycleParity(16, 8, rng),
		dataset.TriangleDensity(16, 12, rng),
		dataset.ERvsPA(16, 20, rng),
	}
	homEmb := core.NewHomEmbedder(nil)
	kernels := []kernel.Kernel{
		kernel.WLSubtree{Rounds: 5},
		kernel.ShortestPath{},
		kernel.Graphlet{Size: 3},
	}
	var rows []ClassificationRow
	report(w, "E15 Sec 4 initial experiments: hom-vector + SVM vs graph kernels (5-fold CV accuracy)")
	homWins := 0
	for _, d := range datasets {
		accHom := core.ClassifyWithEmbedder(homEmb, d.Graphs, d.Labels, 5, rand.New(rand.NewSource(151)))
		rows = append(rows, ClassificationRow{d.Name, "hom-log20", accHom})
		line := fmt.Sprintf("  %-18s hom=%.3f", d.Name, accHom)
		best := 0.0
		for _, k := range kernels {
			acc := core.ClassifyWithKernel(k, d.Graphs, d.Labels, 5, rand.New(rand.NewSource(151)))
			rows = append(rows, ClassificationRow{d.Name, k.Name(), acc})
			line += fmt.Sprintf(" %s=%.3f", k.Name(), acc)
			if acc > best {
				best = acc
			}
		}
		if accHom >= best-0.1 {
			homWins++
		}
		report(w, "%s", line)
	}
	ok := homWins >= 2 // competitive on at least 2 of 3 tasks
	return Result{ID: "E15", Passed: ok,
		Notes: fmt.Sprintf("hom competitive on %d/3 datasets", homWins)}, rows
}

// E16TransE trains TransE on the synthetic world KG and reports link
// prediction and the translation property of the introduction.
func E16TransE(w io.Writer) Result {
	rng := rand.New(rand.NewSource(16))
	kg := dataset.World(10, rng)
	train, test := kg.Split(0.15, rng)
	// Margin 2 (vs the package default of 1) comes from a 16-seed sweep on
	// this KG: with entity vectors re-normalised to the unit sphere every
	// epoch, margin 1 leaves most corrupted triples already outside the
	// margin and link prediction barely trains (mean filtered MRR 0.24,
	// most seeds under the 0.3 bar); margin 2 keeps the loss active and
	// lifts the mean to 0.36 at identical cost.
	cfg := kge.DefaultTransEConfig()
	cfg.Margin = 2
	m := kge.TrainTransE(train, kg.NumEntities(), kg.NumRelations(), cfg, rng)
	met := kge.EvaluateTransE(m, test, kg.Triples)
	cons := m.TranslationConsistency(kg.Triples, dataset.RelCapitalOf)
	var fake []kge.Triple
	for i := 0; i < 10; i++ {
		fake = append(fake, kge.Triple{rng.Intn(kg.NumEntities()), dataset.RelCapitalOf, rng.Intn(kg.NumEntities())})
	}
	base := m.TranslationConsistency(fake, dataset.RelCapitalOf)
	report(w, "E16 Sec 2.3: TransE on the synthetic world KG (%d entities, %d triples)", kg.NumEntities(), len(kg.Triples))
	report(w, "  link prediction: MRR=%.3f Hits@1=%.3f Hits@10=%.3f", met.MRR, met.HitsAt[1], met.HitsAt[10])
	report(w, "  capital-of as translation: consistency %.3f vs random baseline %.3f", cons, base)
	ok := met.MRR >= 0.3 && cons < base
	return Result{ID: "E16", Passed: ok, Notes: fmt.Sprintf("MRR=%.2f", met.MRR)}
}

// E17RESCAL trains RESCAL and reports per-relation reconstruction AUC.
func E17RESCAL(w io.Writer) Result {
	rng := rand.New(rand.NewSource(17))
	kg := dataset.World(8, rng)
	m := kge.TrainRESCAL(kg.Triples, kg.NumEntities(), kg.NumRelations(), kge.DefaultRESCALConfig(), rng)
	report(w, "E17 Sec 2.3: RESCAL bilinear reconstruction")
	ok := true
	for r := 0; r < kg.NumRelations(); r++ {
		auc := m.RelationAUC(kg.Triples, r, rng, 2000)
		report(w, "  relation %-12s AUC=%.3f", kg.RelationNames[r], auc)
		if auc < 0.85 {
			ok = false
		}
	}
	return Result{ID: "E17", Passed: ok, Notes: "per-relation AUC >= 0.85"}
}

// E18Distances exercises Section 5.1/5.2: the edit-distance identity, the
// relaxed Frank–Wolfe distance, and its pseudo-metric behaviour.
func E18Distances(w io.Writer) Result {
	ed, edErr := similarity.EditDistance(graph.Cycle(4), graph.Path(4))
	g, h := graph.WLIndistinguishablePair()
	relaxed := similarity.RelaxedDist(g, h, 300)
	exact, exactErr := similarity.Dist(g, h, similarity.Frobenius)
	if edErr != nil || exactErr != nil {
		return Result{ID: "E18", Passed: false, Notes: fmt.Sprintf("distance error: %v %v", edErr, exactErr)}
	}
	cg, ch := graph.CospectralPair()
	relaxedPos := similarity.RelaxedDist(cg, ch, 400)
	a := linalg.FromRows(g.AdjacencyMatrix())
	b := linalg.FromRows(h.AdjacencyMatrix())
	fw := linalg.FrankWolfe(a, b, 60)
	report(w, "E18 Sec 5: matrix-norm distances")
	report(w, "  edit distance C4->P4: %d (one edge flip)", ed)
	report(w, "  C6 vs 2C3: relaxed dist=%.2e (fractionally isomorphic), exact Frobenius dist=%.3f", relaxed, exact)
	report(w, "  K1,4 vs C4+K1: relaxed dist=%.3f (> 0: WL-distinguishable)", relaxedPos)
	report(w, "  Frank-Wolfe trace (first/last): %.3f -> %.2e over %d iters", fw.Trace[0], fw.Trace[len(fw.Trace)-1], len(fw.Trace))
	ok := ed == 1 && relaxed < 1e-3 && exact > 0 && relaxedPos > 1e-4
	return Result{ID: "E18", Passed: ok, Notes: fmt.Sprintf("relaxed=%.1e exact=%.2f", relaxed, exact)}
}

// E19CutNorm validates the norm inequalities ‖M‖□ <= ‖M‖1 <= n‖M‖F and the
// local-search cut-norm approximation quality.
func E19CutNorm(w io.Writer) Result {
	rng := rand.New(rand.NewSource(19))
	ok := true
	worstRatio := 1.0
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(3)
		m := linalg.NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		cut := linalg.CutNormExact(m)
		l1 := linalg.EntrywisePNorm(m, 1)
		fro := linalg.Frobenius(m)
		if cut > l1+1e-9 || l1 > float64(n)*fro+1e-9 {
			ok = false
		}
		approx := linalg.CutNormLocalSearch(m, 20, rng)
		if cut > 0 && approx/cut < worstRatio {
			worstRatio = approx / cut
		}
	}
	report(w, "E19 Sec 5.1: cut norm")
	report(w, "  inequalities cut <= l1 <= n*Frobenius hold on 10 random matrices: %v", ok)
	report(w, "  local search worst approximation ratio: %.3f", worstRatio)
	return Result{ID: "E19", Passed: ok && worstRatio > 0.5, Notes: fmt.Sprintf("ratio=%.2f", worstRatio)}
}

// pairwiseOnly hides a kernel's FeatureKernel interface so kernel.Gram
// takes its parallel pairwise fallback — the equal-parallelism baseline of
// the E20 feature-map head-to-head.
type pairwiseOnly struct{ kernel.Kernel }

// KernelTiming is one row of the E20 efficiency table.
type KernelTiming struct {
	Kernel  string
	GramSec float64
}

// E20KernelEfficiency times Gram-matrix construction for each kernel on a
// common corpus — Section 3.5's efficiency claim for the WL kernel.
func E20KernelEfficiency(w io.Writer) (Result, []KernelTiming) {
	rng := rand.New(rand.NewSource(20))
	var gs []*graph.Graph
	for i := 0; i < 30; i++ {
		gs = append(gs, graph.Random(25, 0.15, rng))
	}
	kernels := []kernel.Kernel{
		kernel.WLSubtree{Rounds: 5},
		kernel.ShortestPath{},
		kernel.Graphlet{Size: 3},
		kernel.RandomWalk{Lambda: 0.05, MaxLen: 6},
	}
	var rows []KernelTiming
	report(w, "E20 Sec 3.5: kernel Gram-matrix time on 30 graphs of 25 nodes")
	var wlTime, worst float64
	for _, k := range kernels {
		start := time.Now()
		kernel.Gram(k, gs)
		sec := time.Since(start).Seconds()
		rows = append(rows, KernelTiming{k.Name(), sec})
		report(w, "  %-14s %.3fs", k.Name(), sec)
		if k.Name() == "wl-subtree" {
			wlTime = sec
		}
		if sec > worst {
			worst = sec
		}
	}
	// Section 3.5 head-to-head: the explicit feature map means one
	// extraction per graph instead of re-running WL refinement for every
	// pair. Both sides of the speedup use the same parallel matrix fill
	// (pairwiseOnly hides the feature map, forcing Gram's parallel pairwise
	// fallback), so the ratio isolates the algorithmic gain of the feature
	// map from worker-pool parallelism; the sequential PairwiseGram time is
	// reported alongside for the end-to-end picture. The feature-parallel
	// side was already timed in the loop above (wlTime).
	wlk := kernel.WLSubtree{Rounds: 5}
	start := time.Now()
	kernel.PairwiseGram(wlk, gs)
	seqSec := time.Since(start).Seconds()
	start = time.Now()
	kernel.Gram(pairwiseOnly{wlk}, gs)
	pairSec := time.Since(start).Seconds()
	featSec := wlTime
	speedup := pairSec / featSec
	report(w, "  wl-subtree Gram: pairwise-seq=%.3fs pairwise-parallel=%.3fs feature-parallel=%.3fs (feature-map gain %.1fx)",
		seqSec, pairSec, featSec, speedup)
	// Contention head-to-head: the PR 1 pipeline interned every colour of
	// every worker through ONE mutex-guarded string map; the engine interns
	// integer signatures in a lock-striped store and extracts the whole
	// corpus in one batched RefineCorpus pass. Same corpus, same GOMAXPROCS
	// worker pool, so the ratio isolates interner contention + allocation.
	corpus := make([]*graph.Graph, 120)
	for i := range corpus {
		g := graph.Random(20, 0.15, rng)
		for v := 0; v < g.N(); v++ {
			g.SetVertexLabel(v, rng.Intn(3))
		}
		corpus[i] = g
	}
	// Best of three runs per side damps scheduler noise (CI runners, or
	// worker pools oversubscribed on few cores).
	var mutexGram, shardGram *linalg.Matrix
	mutexSec, shardSec := math.Inf(1), math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		start = time.Now()
		mutexGram = LegacyMutexWLGram(corpus, 5)
		mutexSec = math.Min(mutexSec, time.Since(start).Seconds())
		start = time.Now()
		shardGram = kernel.Gram(kernel.WLSubtree{Rounds: 5}, corpus)
		shardSec = math.Min(shardSec, time.Since(start).Seconds())
	}
	rows = append(rows, KernelTiming{"wl-global-mutex", mutexSec}, KernelTiming{"wl-sharded", shardSec})
	contSpeedup := mutexSec / shardSec
	gramsAgree := true
	for i := 0; i < len(corpus); i++ {
		for j := 0; j < len(corpus); j++ {
			if mutexGram.At(i, j) != shardGram.At(i, j) {
				gramsAgree = false
			}
		}
	}
	report(w, "  interner contention (120 graphs, %d workers): global-mutex=%.3fs sharded=%.3fs (%.1fx), grams agree: %v",
		runtime.GOMAXPROCS(0), mutexSec, shardSec, contSpeedup, gramsAgree)
	// Compiled-pattern hom-vector head-to-head (the Section 4 counting
	// stack): naive = one hom.Vector call per graph, rebuilding every
	// matrix power (and, for general patterns, every tree decomposition)
	// per pattern per call; compiled = one hom.Compile of the class, then
	// a batched CorpusVectors pass sharing cycle powers and DP scratch.
	// The corpus is unlabelled so the cycle fast path is exercised, and
	// all counts are integers, so the two sides must agree bit for bit.
	homCorpus := make([]*graph.Graph, 120)
	for i := range homCorpus {
		homCorpus[i] = graph.Random(20, 0.15, rng)
	}
	class := hom.StandardClass()
	var naiveVecs, compiledVecs [][]float64
	naiveSec, compiledSec := math.Inf(1), math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		start = time.Now()
		nv := make([][]float64, len(homCorpus))
		for i, g := range homCorpus {
			nv[i] = hom.Vector(class, g)
		}
		naiveSec = math.Min(naiveSec, time.Since(start).Seconds())
		naiveVecs = nv
		start = time.Now()
		compiledVecs = hom.CorpusVectors(hom.Compile(class), homCorpus)
		compiledSec = math.Min(compiledSec, time.Since(start).Seconds())
	}
	homAgree := true
	for i := range homCorpus {
		for j := range naiveVecs[i] {
			if compiledVecs[i][j] != naiveVecs[i][j] {
				homAgree = false
			}
		}
	}
	homSpeedup := naiveSec / compiledSec
	rows = append(rows, KernelTiming{"hom-naive", naiveSec}, KernelTiming{"hom-compiled", compiledSec})
	report(w, "  hom vectors (120 graphs, standard class): naive=%.3fs compiled=%.3fs (%.1fx), vectors bit-identical: %v",
		naiveSec, compiledSec, homSpeedup, homAgree)
	// Hogwild SGNS head-to-head (the Section 2/5 learned-embedding stack,
	// mirroring the Gram pipeline's treatment above): the legacy trainer
	// allocates a gradient slice per (centre, context) pair and samples
	// negatives from the 64K unigram table; the sgns engine trains the same
	// walk corpus on flat matrices with pooled scratch, a sigmoid LUT and
	// an alias sampler — sequentially (Workers: 1, the deterministic
	// reference) and Hogwild across GOMAXPROCS lock-free workers.
	walkG := graph.Random(80, 0.08, rng)
	walkCorpus := embed.RandomWalks(walkG,
		embed.WalkConfig{WalksPerNode: 10, WalkLength: 20, P: 1, Q: 1}, rng)
	w2v := word2vec.DefaultConfig()
	w2v.Epochs = 3
	legacySec, engSeqSec, engParSec := math.Inf(1), math.Inf(1), math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		start = time.Now()
		word2vec.TrainLegacy(walkCorpus, walkG.N(), w2v, rand.New(rand.NewSource(25)))
		legacySec = math.Min(legacySec, time.Since(start).Seconds())
		w2v.Workers = 1
		start = time.Now()
		word2vec.Train(walkCorpus, walkG.N(), w2v, rand.New(rand.NewSource(25)))
		engSeqSec = math.Min(engSeqSec, time.Since(start).Seconds())
		w2v.Workers = 0
		start = time.Now()
		word2vec.Train(walkCorpus, walkG.N(), w2v, rand.New(rand.NewSource(25)))
		engParSec = math.Min(engParSec, time.Since(start).Seconds())
	}
	rows = append(rows, KernelTiming{"sgns-legacy", legacySec},
		KernelTiming{"sgns-engine-seq", engSeqSec}, KernelTiming{"sgns-hogwild", engParSec})
	sgnsSeqSpeedup := legacySec / engSeqSec
	sgnsParSpeedup := legacySec / engParSec
	report(w, "  sgns (%d-sentence walk corpus, %d workers): legacy=%.3fs engine-seq=%.3fs (%.1fx) hogwild=%.3fs (%.1fx)",
		len(walkCorpus), runtime.GOMAXPROCS(0), legacySec, engSeqSec, sgnsSeqSpeedup, engParSec, sgnsParSpeedup)
	// The float32 fused-kernel engine on the same corpus: identical
	// schedule and sampling (the f64 engine is its bit-level oracle up to
	// rounding), half the parameter traffic, fused dot/update kernels.
	f32SeqSec, f32ParSec := math.Inf(1), math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		w2v.Workers = 1
		start = time.Now()
		word2vec.Train32(walkCorpus, walkG.N(), w2v, rand.New(rand.NewSource(25)))
		f32SeqSec = math.Min(f32SeqSec, time.Since(start).Seconds())
		w2v.Workers = 0
		start = time.Now()
		word2vec.Train32(walkCorpus, walkG.N(), w2v, rand.New(rand.NewSource(25)))
		f32ParSec = math.Min(f32ParSec, time.Since(start).Seconds())
	}
	rows = append(rows, KernelTiming{"sgns-f32-seq", f32SeqSec}, KernelTiming{"sgns-f32-hogwild", f32ParSec})
	f32SeqSpeedup := engSeqSec / f32SeqSec
	f32ParSpeedup := engParSec / f32ParSec
	report(w, "  sgns-f32: seq=%.3fs (%.2fx vs f64) hogwild=%.3fs (%.2fx vs f64)",
		f32SeqSec, f32SeqSpeedup, f32ParSec, f32ParSpeedup)
	// TransE head-to-head (the Section 2.3 stack): the float64 oracle
	// trainer vs the float32 Hogwild engine on the same synthetic world,
	// with quality parity gated by filtered MRR on a held-out split — a
	// speedup that costs ranking quality would be a regression, not a win.
	kgRng := rand.New(rand.NewSource(26))
	kg := dataset.World(30, kgRng)
	kgTrain, kgTest := kg.Split(0.2, kgRng)
	kcfg := kge.DefaultTransEConfig()
	kcfg.Epochs = 120
	k32 := kge.DefaultTransE32Config()
	k32.Epochs = 120
	k32.Workers = 0
	kgeLegacySec, kgeHogSec := math.Inf(1), math.Inf(1)
	var kgeOracle *kge.TransE
	var kgeHog *kge.TransE32
	for rep := 0; rep < 3; rep++ {
		start = time.Now()
		kgeOracle = kge.TrainTransE(kgTrain, kg.NumEntities(), kg.NumRelations(), kcfg, rand.New(rand.NewSource(26)))
		kgeLegacySec = math.Min(kgeLegacySec, time.Since(start).Seconds())
		start = time.Now()
		kgeHog, _ = kge.TrainTransE32(kgTrain, kg.NumEntities(), kg.NumRelations(), k32, 26)
		kgeHogSec = math.Min(kgeHogSec, time.Since(start).Seconds())
	}
	rows = append(rows, KernelTiming{"kge-legacy", kgeLegacySec}, KernelTiming{"kge-hogwild", kgeHogSec})
	kgeSpeedup := kgeLegacySec / kgeHogSec
	metOracle := kge.EvaluateTransE(kgeOracle, kgTest, kg.Triples)
	metHog := kge.EvaluateTransE(kgeHog.ToTransE(), kgTest, kg.Triples)
	kgeParity := metHog.MRR >= metOracle.MRR-0.1
	report(w, "  transe (%d train triples, %d workers): legacy=%.3fs hogwild-f32=%.3fs (%.1fx), MRR %.3f vs %.3f (parity: %v)",
		len(kgTrain), runtime.GOMAXPROCS(0), kgeLegacySec, kgeHogSec, kgeSpeedup, metOracle.MRR, metHog.MRR, kgeParity)
	// GNN corpus embedding: the dense-adjacency forward (a.Mul per layer,
	// O(n²d) per graph) vs the CSR pooled-scratch corpus engine on 120
	// sparse graphs. The engine must agree bit for bit — it replays the
	// dense op order over the nonzeros — so the ratio isolates sparsity
	// plus scratch reuse.
	gnnNet, _ := gnn.New([]int{2, 16, 16}, 4, rand.New(rand.NewSource(27)))
	gnnCorpus := make([]*graph.Graph, 120)
	gnnX0s := make([]*linalg.Matrix, len(gnnCorpus))
	for i := range gnnCorpus {
		gnnCorpus[i] = graph.Random(40, 0.1, rng)
		gnnX0s[i] = gnn.DegreeFeatures(gnnCorpus[i], 2)
	}
	gnnDenseSec, gnnCSRSec := math.Inf(1), math.Inf(1)
	var denseOut, csrOut []*linalg.Matrix
	for rep := 0; rep < 3; rep++ {
		start = time.Now()
		dv := make([]*linalg.Matrix, len(gnnCorpus))
		for i, g := range gnnCorpus {
			dv[i], _ = gnnNet.EmbedDense(g, gnnX0s[i])
		}
		gnnDenseSec = math.Min(gnnDenseSec, time.Since(start).Seconds())
		denseOut = dv
		start = time.Now()
		csrOut, _ = gnnNet.EmbedCorpus(gnnCorpus, gnnX0s, 0)
		gnnCSRSec = math.Min(gnnCSRSec, time.Since(start).Seconds())
	}
	gnnAgree := true
	for i := range gnnCorpus {
		for j, x := range denseOut[i].Data {
			if csrOut[i].Data[j] != x {
				gnnAgree = false
			}
		}
	}
	rows = append(rows, KernelTiming{"gnn-dense", gnnDenseSec}, KernelTiming{"gnn-csr", gnnCSRSec})
	gnnSpeedup := gnnDenseSec / gnnCSRSec
	report(w, "  gnn corpus embed (120 graphs of 40 nodes): dense=%.3fs csr-pooled=%.3fs (%.1fx), bit-identical: %v",
		gnnDenseSec, gnnCSRSec, gnnSpeedup, gnnAgree)
	// WL must not be the slowest kernel (the paper's efficiency point), the
	// feature map must beat pairwise evaluation at equal parallelism, the
	// sharded engine must not lose to the global-mutex baseline (beyond
	// timer noise), both interners must produce the same Gram matrix, the
	// compiled hom engine must beat the per-call path on bit-identical
	// vectors (the expected margin is ≥5x; >1 keeps noisy CI runners from
	// flaking the check), the sgns engine must not lose to the legacy
	// scalar trainer in either mode (expected margins are ≥1.5x sequential
	// and ≥4x Hogwild on multi-core; >0.8 tolerates single-core CI noise),
	// and the f32 fused-kernel engine must not lose to its f64 twin
	// (expected ≥1.2x per mode; >0.8 again absorbs timer noise).
	ok := wlTime < worst && speedup > 1 && gramsAgree && contSpeedup > 0.8 &&
		homAgree && homSpeedup > 1 && sgnsSeqSpeedup > 0.8 && sgnsParSpeedup > 0.8 &&
		f32SeqSpeedup > 0.8 && f32ParSpeedup > 0.8 &&
		kgeSpeedup > 0.8 && kgeParity && gnnAgree && gnnSpeedup > 0.8
	return Result{ID: "E20", Passed: ok,
		Notes: fmt.Sprintf("wl=%.3fs worst=%.3fs feature-map=%.1fx contention=%.1fx hom-compiled=%.1fx sgns=%.1fx/%.1fx f32=%.2fx/%.2fx kge=%.2fx(mrr %.2f/%.2f) gnn-csr=%.2fx",
			wlTime, worst, speedup, contSpeedup, homSpeedup, sgnsSeqSpeedup, sgnsParSpeedup, f32SeqSpeedup, f32ParSpeedup,
			kgeSpeedup, metOracle.MRR, metHog.MRR, gnnSpeedup)}, rows
}

// E21HomComplexity measures hom-counting time as pattern treewidth grows
// (Section 4.3: polynomial for bounded treewidth, exponent tracks tw+1).
func E21HomComplexity(w io.Writer) Result {
	rng := rand.New(rand.NewSource(21))
	target := graph.Random(40, 0.15, rng)
	patterns := []struct {
		name string
		g    *graph.Graph
		tw   int
	}{
		{"tree (tw 1)", graph.AllTrees(7)[3], 1},
		{"cycle C7 (tw 2)", graph.Cycle(7), 2},
		{"K4 (tw 3)", graph.Complete(4), 3},
	}
	report(w, "E21 Sec 4.3: hom counting cost vs pattern treewidth (target n=40)")
	var times []float64
	for _, p := range patterns {
		start := time.Now()
		c := hom.Count(p.g, target)
		sec := time.Since(start).Seconds()
		times = append(times, sec)
		report(w, "  %-16s tw=%d hom=%.3g time=%.4fs", p.name, treedec.Treewidth(p.g), c, sec)
	}
	ok := times[0] <= times[2]+1 // trees no slower than K4 by more than a second
	return Result{ID: "E21", Passed: ok, Notes: fmt.Sprintf("times=%.4f/%.4f/%.4f", times[0], times[1], times[2])}
}

// E22Communities scores node2vec/DeepWalk against spectral embedding on SBM
// community recovery (Section 2.1's downstream framing).
func E22Communities(w io.Writer) Result {
	rng := rand.New(rand.NewSource(22))
	g, truth := graph.SBM([]int{16, 16}, 0.8, 0.05, rng)
	score := func(e *embed.NodeEmbedding) float64 {
		return embed.CommunityRecovery(e, truth, 2, rand.New(rand.NewSource(221)))
	}
	n2v := score(embed.Node2Vec(g, 8, 1, 0.5, rng))
	dw := score(embed.DeepWalk(g, 8, rng))
	spec := score(embed.DistanceSimilaritySpectral(g, 2, 2))
	report(w, "E22 Sec 2.1 / Fig 2c: SBM community recovery (NMI)")
	report(w, "  node2vec=%.3f deepwalk=%.3f spectral=%.3f", n2v, dw, spec)
	ok := n2v > 0.6 && dw > 0.6 && spec > 0.6
	return Result{ID: "E22", Passed: ok, Notes: fmt.Sprintf("NMI %.2f/%.2f/%.2f", n2v, dw, spec)}
}

// E23Graph2vec compares the transductive graph2vec embedding with the WL
// kernel on a common task (Section 2.5).
func E23Graph2vec(w io.Writer) Result {
	rng := rand.New(rand.NewSource(23))
	d := dataset.CycleParity(12, 8, rng)
	m := graph2vec.Train(d.Graphs, graph2vec.DefaultConfig(), rng)
	accG2V := svm.CrossValidate(kernel.Normalize(m.Gram()), d.Labels, 4, svm.DefaultConfig(), rng)
	accWL := core.ClassifyWithKernel(kernel.WLSubtree{Rounds: 3}, d.Graphs, d.Labels, 4, rand.New(rand.NewSource(231)))
	report(w, "E23 Sec 2.5: graph2vec (transductive) vs WL kernel on cycle parity")
	report(w, "  graph2vec+SVM=%.3f  wl-subtree+SVM=%.3f", accG2V, accWL)
	ok := accG2V >= 0.6
	return Result{ID: "E23", Passed: ok, Notes: fmt.Sprintf("g2v=%.2f wl=%.2f", accG2V, accWL)}
}

// E24CFI demonstrates the Section 3.3 lower-bound construction: the CFI
// pair over K4 is non-isomorphic yet 1-WL-equivalent, and higher-dimensional
// WL separates it.
func E24CFI(w io.Writer) Result {
	g, h := graph.CFIPair()
	iso := graph.Isomorphic(g, h)
	wl1 := wl.Distinguishes(g, h)
	k3 := wl.KWLDistinguishes(g, h, 3)
	report(w, "E24 Sec 3.3: CFI construction over K4 (%d vertices each)", g.N())
	report(w, "  isomorphic: %v (expected false)", iso)
	report(w, "  distinguished by 1-WL: %v (expected false)", wl1)
	report(w, "  distinguished by 3-WL: %v (expected true)", k3)
	ok := !iso && !wl1 && k3
	return Result{ID: "E24", Passed: ok, Notes: fmt.Sprintf("iso=%v 1wl=%v 3wl=%v", iso, wl1, k3)}
}

// RunAll executes every experiment in order and returns the results.
func RunAll(w io.Writer) []Result {
	var results []Result
	run := func(r Result) { results = append(results, r) }
	run(E01Fig2(w))
	run(E02Fig3(w))
	run(E03Fig4(w))
	run(E04Fig5(w))
	run(E05Ex41(w))
	run(E06Lovasz(w))
	run(E07Cospectral(w))
	run(E08TreeHoms(w))
	run(E09PathHoms(w))
	run(E10TreeDepth(w))
	run(E11RootedHoms(w))
	run(E12Incidence(w))
	run(E13Weighted(w))
	run(E14GNNvsWL(w))
	r15, _ := E15Classification(w)
	run(r15)
	run(E16TransE(w))
	run(E17RESCAL(w))
	run(E18Distances(w))
	run(E19CutNorm(w))
	r20, _ := E20KernelEfficiency(w)
	run(r20)
	run(E21HomComplexity(w))
	run(E22Communities(w))
	run(E23Graph2vec(w))
	run(E24CFI(w))
	sort.SliceStable(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	return results
}
