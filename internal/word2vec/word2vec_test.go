package word2vec

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// syntheticCorpus builds sentences where tokens from the same group
// co-occur: group A = {0..4}, group B = {5..9}.
func syntheticCorpus(rng *rand.Rand, sentences int) [][]int {
	var corpus [][]int
	for s := 0; s < sentences; s++ {
		group := rng.Intn(2)
		sent := make([]int, 12)
		for i := range sent {
			sent[i] = group*5 + rng.Intn(5)
		}
		corpus = append(corpus, sent)
	}
	return corpus
}

func TestTrainSeparatesCooccurrenceGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	corpus := syntheticCorpus(rng, 300)
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Epochs = 8
	m := Train(corpus, 10, cfg, rng)
	// Average intra-group similarity should exceed inter-group similarity.
	var intra, inter float64
	var nIntra, nInter int
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			sim := linalg.CosineSimilarity(m.Vector(a), m.Vector(b))
			if (a < 5) == (b < 5) {
				intra += sim
				nIntra++
			} else {
				inter += sim
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra <= inter {
		t.Errorf("intra-group similarity %v should exceed inter-group %v", intra, inter)
	}
}

func TestModelShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	m := Train([][]int{{0, 1, 2}}, 3, DefaultConfig(), rng)
	if m.Vocab != 3 || len(m.In) != 3 || len(m.In[0]) != m.Dim {
		t.Errorf("model shapes wrong: vocab=%d in=%d dim=%d", m.Vocab, len(m.In), m.Dim)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	corpus := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}}
	m1 := Train(corpus, 4, DefaultConfig(), rand.New(rand.NewSource(5)))
	m2 := Train(corpus, 4, DefaultConfig(), rand.New(rand.NewSource(5)))
	for i := range m1.In {
		for j := range m1.In[i] {
			if m1.In[i][j] != m2.In[i][j] {
				t.Fatal("training should be deterministic under a fixed seed")
			}
		}
	}
}

func TestNegativeTableRespectsFrequency(t *testing.T) {
	corpus := [][]int{{0, 0, 0, 0, 0, 0, 1}}
	table := negativeTable(corpus, 2, 0.75)
	c0, c1 := 0, 0
	for _, t := range table {
		if t == 0 {
			c0++
		} else {
			c1++
		}
	}
	if c0 <= c1 {
		t.Errorf("token 0 should dominate the table: %d vs %d", c0, c1)
	}
	if c1 == 0 {
		t.Error("rare token should still appear")
	}
}

func TestSigmoidBounds(t *testing.T) {
	if sigmoid(100) != 1 || sigmoid(-100) != 0 {
		t.Error("sigmoid saturation")
	}
	if s := sigmoid(0); s != 0.5 {
		t.Errorf("sigmoid(0)=%v", s)
	}
}
