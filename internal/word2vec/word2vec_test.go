package word2vec

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// syntheticCorpus builds sentences where tokens from the same group
// co-occur: group A = {0..4}, group B = {5..9}.
func syntheticCorpus(rng *rand.Rand, sentences int) [][]int {
	var corpus [][]int
	for s := 0; s < sentences; s++ {
		group := rng.Intn(2)
		sent := make([]int, 12)
		for i := range sent {
			sent[i] = group*5 + rng.Intn(5)
		}
		corpus = append(corpus, sent)
	}
	return corpus
}

func TestTrainSeparatesCooccurrenceGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	corpus := syntheticCorpus(rng, 300)
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Epochs = 8
	m := Train(corpus, 10, cfg, rng)
	// Average intra-group similarity should exceed inter-group similarity.
	var intra, inter float64
	var nIntra, nInter int
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			sim := linalg.CosineSimilarity(m.Vector(a), m.Vector(b))
			if (a < 5) == (b < 5) {
				intra += sim
				nIntra++
			} else {
				inter += sim
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra <= inter {
		t.Errorf("intra-group similarity %v should exceed inter-group %v", intra, inter)
	}
}

func TestModelShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	m := Train([][]int{{0, 1, 2}}, 3, DefaultConfig(), rng)
	if m.Vocab != 3 || len(m.In) != 3 || len(m.In[0]) != m.Dim {
		t.Errorf("model shapes wrong: vocab=%d in=%d dim=%d", m.Vocab, len(m.In), m.Dim)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	corpus := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}}
	m1 := Train(corpus, 4, DefaultConfig(), rand.New(rand.NewSource(5)))
	m2 := Train(corpus, 4, DefaultConfig(), rand.New(rand.NewSource(5)))
	for i := range m1.In {
		for j := range m1.In[i] {
			if m1.In[i][j] != m2.In[i][j] {
				t.Fatal("training should be deterministic under a fixed seed")
			}
		}
	}
}

// The engine (Workers: 1) must reproduce the legacy trainer's qualitative
// behaviour on the same corpus: both separate the co-occurrence groups, and
// the engine's separation margin is not materially worse than the oracle's.
// (Bit-identity is not expected — the engine uses a sigmoid LUT and an
// alias sampler, so its arithmetic and RNG stream differ by design.)
func TestEngineMatchesLegacyQuality(t *testing.T) {
	corpus := syntheticCorpus(rand.New(rand.NewSource(73)), 300)
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Epochs = 8
	gap := func(m *Model) float64 {
		var intra, inter float64
		var ni, nx int
		for a := 0; a < 10; a++ {
			for b := a + 1; b < 10; b++ {
				sim := linalg.CosineSimilarity(m.Vector(a), m.Vector(b))
				if (a < 5) == (b < 5) {
					intra += sim
					ni++
				} else {
					inter += sim
					nx++
				}
			}
		}
		return intra/float64(ni) - inter/float64(nx)
	}
	legacy := gap(TrainLegacy(corpus, 10, cfg, rand.New(rand.NewSource(9))))
	engine := gap(Train(corpus, 10, cfg, rand.New(rand.NewSource(9))))
	if legacy <= 0 || engine <= 0 {
		t.Fatalf("both trainers must separate the groups: legacy=%v engine=%v", legacy, engine)
	}
	if engine < legacy-0.3 {
		t.Errorf("engine margin %v far below legacy oracle %v", engine, legacy)
	}
}

func TestLegacyDeterministicWithSeed(t *testing.T) {
	corpus := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}}
	m1 := TrainLegacy(corpus, 4, DefaultConfig(), rand.New(rand.NewSource(5)))
	m2 := TrainLegacy(corpus, 4, DefaultConfig(), rand.New(rand.NewSource(5)))
	for i := range m1.In {
		for j := range m1.In[i] {
			if m1.In[i][j] != m2.In[i][j] {
				t.Fatal("legacy training should be deterministic under a fixed seed")
			}
		}
	}
}

// Regression for the `i <= count` table-fill bug: tokens that never occur
// in the corpus must get no slots at all.
func TestNegativeTableExcludesZeroFrequencyTokens(t *testing.T) {
	corpus := [][]int{{0, 1, 0, 1, 0}}
	table := negativeTable(corpus, 5, 0.75)
	if len(table) == 0 {
		t.Fatal("table should not be empty")
	}
	for _, tok := range table {
		if tok >= 2 {
			t.Fatalf("zero-frequency token %d found in the negative table", tok)
		}
	}
}

func TestNegativeTableRespectsFrequency(t *testing.T) {
	corpus := [][]int{{0, 0, 0, 0, 0, 0, 1}}
	table := negativeTable(corpus, 2, 0.75)
	c0, c1 := 0, 0
	for _, t := range table {
		if t == 0 {
			c0++
		} else {
			c1++
		}
	}
	if c0 <= c1 {
		t.Errorf("token 0 should dominate the table: %d vs %d", c0, c1)
	}
	if c1 == 0 {
		t.Error("rare token should still appear")
	}
}

func TestSigmoidBounds(t *testing.T) {
	if sigmoid(100) != 1 || sigmoid(-100) != 0 {
		t.Error("sigmoid saturation")
	}
	if s := sigmoid(0); s != 0.5 {
		t.Errorf("sigmoid(0)=%v", s)
	}
}
