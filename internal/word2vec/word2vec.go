// Package word2vec implements skip-gram with negative sampling (SGNS), the
// learned-embedding engine of Mikolov et al. that the paper identifies as
// the common core of DeepWalk, node2vec, and graph2vec: sentences in, dense
// vectors out. Sentences are sequences of integer token ids; random walks
// over graphs and WL-subtree documents both reduce to this interface.
//
// Train delegates to the shared internal/sgns engine (flat parameter
// matrices, sigmoid lookup table, alias-method negative sampler, optional
// Hogwild parallelism). TrainLegacy keeps the original scalar sequential
// loop as the reference oracle for equivalence tests and the baseline in
// the SGNS benchmarks, exactly as the wl package kept its string-based
// refinement paths.
package word2vec

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sgns"
)

// Config controls SGNS training.
type Config struct {
	Dim             int     // embedding dimension
	Window          int     // context window radius
	Negative        int     // negative samples per positive pair
	LearningRate    float64 // initial SGD step size (linearly decayed)
	Epochs          int     // passes over the corpus
	UnigramPower    float64 // exponent for the negative-sampling distribution (0.75 in the original)
	MinLearningRate float64
	Workers         int // engine worker count: 0 = GOMAXPROCS Hogwild, 1 = deterministic sequential
}

// DefaultConfig mirrors the common word2vec defaults at small scale. The
// default Workers: 1 keeps training bit-reproducible under a fixed seed;
// callers that want Hogwild throughput set Workers to 0 (GOMAXPROCS) or an
// explicit count.
func DefaultConfig() Config {
	return Config{
		Dim:             16,
		Window:          4,
		Negative:        5,
		LearningRate:    0.05,
		Epochs:          5,
		UnigramPower:    0.75,
		MinLearningRate: 0.0001,
		Workers:         1,
	}
}

// Model holds the trained input ("word") and output ("context") vectors.
// The rows are views into the engine's flat matrices.
type Model struct {
	Dim   int
	Vocab int
	In    [][]float64 // the embedding used downstream
	Out   [][]float64
}

// Vector returns the embedding of token t.
func (m *Model) Vector(t int) []float64 { return m.In[t] }

// Train runs SGNS over the corpus on the shared engine. vocab is the number
// of distinct tokens (ids must lie in [0, vocab)). With cfg.Workers == 1
// the result is bit-identical run to run for a fixed rng seed; with more
// workers the engine trains Hogwild-style shards in parallel.
func Train(corpus [][]int, vocab int, cfg Config, rng *rand.Rand) *Model {
	if cfg.Dim <= 0 || vocab <= 0 {
		panic("word2vec: invalid configuration") //x2vec:allow nopanic config precondition; cmd layer validates flags before calling
	}
	sm := sgns.Train(corpus, vocab, sgns.Config{
		Dim:             cfg.Dim,
		Window:          cfg.Window,
		Negative:        cfg.Negative,
		LearningRate:    cfg.LearningRate,
		MinLearningRate: cfg.MinLearningRate,
		Epochs:          cfg.Epochs,
		UnigramPower:    cfg.UnigramPower,
		Workers:         cfg.Workers,
	}, rng.Int63())
	return &Model{
		Dim:   cfg.Dim,
		Vocab: vocab,
		In:    rowViews(sm.In, vocab, cfg.Dim),
		Out:   rowViews(sm.Out, vocab, cfg.Dim),
	}
}

// Train32 runs SGNS on the float32 fused-kernel engine (flat []float32
// matrices, unrolled dot/paired-axpy kernels from internal/linalg/f32) and
// returns the raw engine model. The float64 Train remains the
// quality/determinism oracle; Train32 is the throughput path — same
// schedule, same sampling, half the parameter memory traffic. With
// cfg.Workers == 1 the result is bit-identical run to run for a fixed rng
// seed.
func Train32(corpus [][]int, vocab int, cfg Config, rng *rand.Rand) *sgns.Model32 {
	if cfg.Dim <= 0 || vocab <= 0 {
		panic("word2vec: invalid configuration") //x2vec:allow nopanic config precondition; cmd layer validates flags before calling
	}
	return sgns.Train32(corpus, vocab, sgns.Config{
		Dim:             cfg.Dim,
		Window:          cfg.Window,
		Negative:        cfg.Negative,
		LearningRate:    cfg.LearningRate,
		MinLearningRate: cfg.MinLearningRate,
		Epochs:          cfg.Epochs,
		UnigramPower:    cfg.UnigramPower,
		Workers:         cfg.Workers,
	}, rng.Int63())
}

// FineTune32 runs SGNS on the float32 engine warm-started from an existing
// embedding table (vocab*Dim row-major values, typically the In table of a
// saved model) instead of the random init — the continuation path for
// dynamic corpora, where a few epochs from a good prior beat a full fresh
// run. Everything else matches Train32, including bit-determinism at
// cfg.Workers == 1 for a fixed rng seed.
func FineTune32(corpus [][]int, vocab int, cfg Config, rng *rand.Rand, warm []float32) (*sgns.Model32, error) {
	if cfg.Dim <= 0 || vocab <= 0 {
		return nil, fmt.Errorf("word2vec: invalid fine-tune configuration (dim %d, vocab %d)", cfg.Dim, vocab)
	}
	return sgns.FineTune32(corpus, vocab, sgns.Config{
		Dim:             cfg.Dim,
		Window:          cfg.Window,
		Negative:        cfg.Negative,
		LearningRate:    cfg.LearningRate,
		MinLearningRate: cfg.MinLearningRate,
		Epochs:          cfg.Epochs,
		UnigramPower:    cfg.UnigramPower,
		Workers:         cfg.Workers,
	}, rng.Int63(), warm)
}

// rowViews slices a flat row-major matrix into per-row views (no copy).
func rowViews(flat []float64, rows, dim int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return out
}

// TrainLegacy is the original sequential scalar trainer: per-pair gradient
// slices, exact sigmoid, and the 64K-slot unigram table. It is kept as the
// test oracle and benchmark baseline for the sgns engine.
func TrainLegacy(corpus [][]int, vocab int, cfg Config, rng *rand.Rand) *Model {
	if cfg.Dim <= 0 || vocab <= 0 {
		panic("word2vec: invalid configuration") //x2vec:allow nopanic config precondition; cmd layer validates flags before calling
	}
	m := &Model{Dim: cfg.Dim, Vocab: vocab}
	m.In = randomMatrix(vocab, cfg.Dim, rng, 0.5/float64(cfg.Dim))
	m.Out = make([][]float64, vocab)
	for i := range m.Out {
		m.Out[i] = make([]float64, cfg.Dim)
	}
	table := negativeTable(corpus, vocab, cfg.UnigramPower)
	totalPairs := 0
	for _, s := range corpus {
		totalPairs += len(s)
	}
	totalSteps := cfg.Epochs * totalPairs
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sentence := range corpus {
			for i, center := range sentence {
				lr := cfg.LearningRate * (1 - float64(step)/float64(totalSteps+1))
				if lr < cfg.MinLearningRate {
					lr = cfg.MinLearningRate
				}
				step++
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(sentence) {
					hi = len(sentence) - 1
				}
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					m.trainPair(center, sentence[j], table, cfg.Negative, lr, rng)
				}
			}
		}
	}
	return m
}

// trainPair applies one positive update (center, context) and Negative
// sampled negative updates with the standard SGNS gradients.
func (m *Model) trainPair(center, context int, table []int, negative int, lr float64, rng *rand.Rand) {
	in := m.In[center]
	grad := make([]float64, m.Dim)
	apply := func(target int, label float64) {
		out := m.Out[target]
		var dot float64
		for d := 0; d < m.Dim; d++ {
			dot += in[d] * out[d]
		}
		g := (label - sigmoid(dot)) * lr
		for d := 0; d < m.Dim; d++ {
			grad[d] += g * out[d]
			out[d] += g * in[d]
		}
	}
	apply(context, 1)
	for k := 0; k < negative; k++ {
		neg := table[rng.Intn(len(table))]
		if neg == context {
			continue
		}
		apply(neg, 0)
	}
	for d := 0; d < m.Dim; d++ {
		in[d] += grad[d]
	}
}

func sigmoid(x float64) float64 {
	switch {
	case x > 30:
		return 1
	case x < -30:
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// negativeTable builds the unigram^power sampling table for the legacy
// trainer. Slots are allocated in proportion to true frequency: a token
// gets int(freq^power/total * tableSize) slots, which is zero for
// zero-frequency tokens. (The original loop ran `i <= count`, handing every
// token — including ones absent from the corpus — one extra slot and
// skewing the distribution; the sgns engine's alias sampler is exact and is
// regression-tested against this.)
func negativeTable(corpus [][]int, vocab int, power float64) []int {
	if power == 0 {
		power = 0.75
	}
	freq := make([]float64, vocab)
	for _, s := range corpus {
		for _, t := range s {
			freq[t]++
		}
	}
	var total float64
	for i := range freq {
		if freq[i] > 0 {
			freq[i] = math.Pow(freq[i], power)
		}
		total += freq[i]
	}
	const tableSize = 1 << 16
	table := make([]int, 0, tableSize)
	if total == 0 {
		for i := 0; i < tableSize; i++ {
			table = append(table, i%vocab)
		}
		return table
	}
	for t := 0; t < vocab; t++ {
		count := int(freq[t] / total * tableSize)
		for i := 0; i < count; i++ {
			table = append(table, t)
		}
	}
	if len(table) == 0 {
		// Degenerate rounding (tiny corpora): fall back to the non-zero
		// support, uniformly.
		for t := 0; t < vocab; t++ {
			if freq[t] > 0 {
				table = append(table, t)
			}
		}
	}
	return table
}

func randomMatrix(r, c int, rng *rand.Rand, scale float64) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
		for j := range m[i] {
			m[i][j] = (rng.Float64()*2 - 1) * scale
		}
	}
	return m
}
