// Package graphon implements the graph-limit objects of Section 4.1: the
// paper points out that Lovász's Theorem 4.2 is "the starting point for the
// theory of graph limits", where homomorphism vectors embed graphs into a
// space whose limit points are graphons. This package provides step-function
// graphons, homomorphism densities t(F,W), W-random graph sampling, and the
// empirical convergence t(F, G(n,W)) → t(F,W) that motivates the embedding
// view.
package graphon

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/hom"
)

// Graphon is a symmetric measurable function W: [0,1]² → [0,1]; this
// implementation uses step functions (block-constant kernels), which are
// dense in cut distance.
type Graphon struct {
	// Blocks[i][j] is the edge density between block i and block j; the
	// matrix must be symmetric with entries in [0,1].
	Blocks [][]float64
	// Sizes[i] is the measure of block i; entries must sum to 1.
	Sizes []float64
}

// NewStep builds a step graphon after validating symmetry and measure.
func NewStep(blocks [][]float64, sizes []float64) (*Graphon, error) {
	k := len(blocks)
	if len(sizes) != k {
		return nil, fmt.Errorf("graphon: %d blocks but %d sizes", k, len(sizes))
	}
	var total float64
	for _, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("graphon: negative block size")
		}
		total += s
	}
	if total < 1-1e-9 || total > 1+1e-9 {
		return nil, fmt.Errorf("graphon: block sizes sum to %v, want 1", total)
	}
	for i := range blocks {
		if len(blocks[i]) != k {
			return nil, fmt.Errorf("graphon: ragged block matrix")
		}
		for j := range blocks[i] {
			if blocks[i][j] < 0 || blocks[i][j] > 1 {
				return nil, fmt.Errorf("graphon: density %v out of [0,1]", blocks[i][j])
			}
			if blocks[i][j] != blocks[j][i] {
				return nil, fmt.Errorf("graphon: block matrix not symmetric")
			}
		}
	}
	return &Graphon{Blocks: blocks, Sizes: sizes}, nil
}

// Constant returns the Erdős–Rényi graphon W ≡ p, or an error when p is
// not a probability.
func Constant(p float64) (*Graphon, error) {
	return NewStep([][]float64{{p}}, []float64{1})
}

// FromGraph returns the empirical graphon of a graph: n equal blocks with
// density A[i][j] (the natural embedding of graphs into graphon space).
// Directed graphs have no graphon (the block matrix would be asymmetric)
// and yield an error.
func FromGraph(g *graph.Graph) (*Graphon, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("graphon: empty graph has no empirical graphon")
	}
	blocks := make([][]float64, n)
	a := g.AdjacencyMatrix()
	for i := range blocks {
		blocks[i] = make([]float64, n)
		for j := range blocks[i] {
			if a[i][j] != 0 {
				blocks[i][j] = 1
			}
		}
	}
	sizes := make([]float64, n)
	for i := range sizes {
		sizes[i] = 1 / float64(n)
	}
	return NewStep(blocks, sizes)
}

// At evaluates W(x, y) for x, y ∈ [0,1].
func (w *Graphon) At(x, y float64) float64 {
	return w.Blocks[w.blockOf(x)][w.blockOf(y)]
}

func (w *Graphon) blockOf(x float64) int {
	acc := 0.0
	for i, s := range w.Sizes {
		acc += s
		if x < acc {
			return i
		}
	}
	return len(w.Sizes) - 1
}

// Density returns the edge density t(K2, W) = ∫∫ W.
func (w *Graphon) Density() float64 {
	var d float64
	for i := range w.Blocks {
		for j := range w.Blocks[i] {
			d += w.Blocks[i][j] * w.Sizes[i] * w.Sizes[j]
		}
	}
	return d
}

// HomDensity computes the homomorphism density
// t(F, W) = ∫ Π_{uv∈E(F)} W(x_u, x_v) dx exactly, by summing over block
// assignments of F's vertices (k^|V(F)| terms — use small patterns).
func (w *Graphon) HomDensity(f *graph.Graph) float64 {
	k := len(w.Blocks)
	nf := f.N()
	assign := make([]int, nf)
	var total float64
	var rec func(i int, weight float64)
	rec = func(i int, weight float64) {
		if weight == 0 {
			return
		}
		if i == nf {
			total += weight
			return
		}
		for b := 0; b < k; b++ {
			assign[i] = b
			wgt := weight * w.Sizes[b]
			for _, e := range f.Edges() {
				if e.U == i && e.V < i {
					wgt *= w.Blocks[b][assign[e.V]]
				} else if e.V == i && e.U < i {
					wgt *= w.Blocks[assign[e.U]][b]
				} else if e.U == i && e.V == i {
					wgt *= w.Blocks[b][b]
				}
			}
			rec(i+1, wgt)
		}
	}
	rec(0, 1)
	return total
}

// Sample draws the W-random graph G(n, W): vertices get i.i.d. uniform
// positions, edges appear independently with probability W(x_u, x_v).
func (w *Graphon) Sample(n int, rng *rand.Rand) *graph.Graph {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < w.At(xs[i], xs[j]) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// EmpiricalHomDensity returns the normalised homomorphism count
// t(F, G) = hom(F, G)/n^{|F|}, the quantity that converges to t(F, W) for
// W-random graphs (Borgs et al., cited as the graph-limit connection).
func EmpiricalHomDensity(f, g *graph.Graph) float64 {
	n := float64(g.N())
	denom := 1.0
	for i := 0; i < f.N(); i++ {
		denom *= n
	}
	return hom.Count(f, g) / denom
}

// CutDistanceUpper bounds the cut distance between two step graphons with
// identical block structure by the maximum block discrepancy (a crude but
// sound upper bound used in tests). Graphons with different block counts
// yield an error.
func CutDistanceUpper(a, b *Graphon) (float64, error) {
	if len(a.Blocks) != len(b.Blocks) {
		return 0, fmt.Errorf("graphon: block structures differ (%d vs %d blocks)", len(a.Blocks), len(b.Blocks))
	}
	worst := 0.0
	for i := range a.Blocks {
		for j := range a.Blocks[i] {
			d := a.Blocks[i][j] - b.Blocks[i][j]
			if d < 0 {
				d = -d
			}
			d *= a.Sizes[i] * a.Sizes[j]
			if d > worst {
				worst = d
			}
		}
	}
	return worst * float64(len(a.Blocks)*len(a.Blocks)), nil
}
