package graphon

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func mustConstant(t *testing.T, p float64) *Graphon {
	t.Helper()
	w, err := Constant(p)
	if err != nil {
		t.Fatalf("Constant(%v): %v", p, err)
	}
	return w
}

func TestConstantGraphonDensities(t *testing.T) {
	w := mustConstant(t, 0.5)
	if d := w.Density(); d != 0.5 {
		t.Errorf("density=%v, want 0.5", d)
	}
	// t(F, p) = p^{|E(F)|} for the constant graphon.
	tests := []struct {
		f    *graph.Graph
		want float64
	}{
		{graph.Path(2), 0.5},
		{graph.Cycle(3), 0.125},
		{graph.Cycle(4), 0.0625},
		{graph.Path(3), 0.25},
	}
	for _, tc := range tests {
		if got := w.HomDensity(tc.f); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("t(%v, 1/2)=%v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestStepValidation(t *testing.T) {
	if _, err := NewStep([][]float64{{0.5, 0.2}, {0.3, 0.5}}, []float64{0.5, 0.5}); err == nil {
		t.Error("asymmetric blocks should be rejected")
	}
	if _, err := NewStep([][]float64{{1.5}}, []float64{1}); err == nil {
		t.Error("density > 1 should be rejected")
	}
	if _, err := NewStep([][]float64{{0.5}}, []float64{0.7}); err == nil {
		t.Error("sizes must sum to 1")
	}
}

func TestFromGraphDensities(t *testing.T) {
	// The empirical graphon of G has t(F, W_G) = hom(F,G)/n^{|F|}.
	g := graph.Fig5Graph()
	w, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*graph.Graph{graph.Path(2), graph.Path(3), graph.Cycle(3)} {
		want := EmpiricalHomDensity(f, g)
		got := w.HomDensity(f)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("t(%v, W_G)=%v, want hom density %v", f, got, want)
		}
	}
}

func TestSampleRespectsDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	w := mustConstant(t, 0.3)
	g := w.Sample(60, rng)
	maxEdges := float64(60 * 59 / 2)
	density := float64(g.M()) / maxEdges
	if math.Abs(density-0.3) > 0.05 {
		t.Errorf("sampled edge density %v, want ~0.3", density)
	}
}

func TestConvergenceOfHomDensities(t *testing.T) {
	// t(F, G(n,W)) -> t(F,W): the Section 4.1 convergence, checked at two
	// scales for the triangle density of a two-block graphon.
	rng := rand.New(rand.NewSource(172))
	w, err := NewStep([][]float64{{0.8, 0.1}, {0.1, 0.6}}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	f := graph.Cycle(3)
	target := w.HomDensity(f)
	errAt := func(n, reps int) float64 {
		var sum float64
		for r := 0; r < reps; r++ {
			sum += EmpiricalHomDensity(f, w.Sample(n, rng))
		}
		return math.Abs(sum/float64(reps) - target)
	}
	small := errAt(15, 8)
	large := errAt(60, 8)
	if large > small+0.02 {
		t.Errorf("hom density should converge: err(n=15)=%v err(n=60)=%v target=%v", small, large, target)
	}
	if large > 0.1 {
		t.Errorf("err at n=60 is %v, too far from target %v", large, target)
	}
}

func TestHomDensityMultiplicativeOverComponents(t *testing.T) {
	w, _ := NewStep([][]float64{{0.7, 0.2}, {0.2, 0.4}}, []float64{0.3, 0.7})
	f1, f2 := graph.Cycle(3), graph.Path(3)
	union := graph.DisjointUnion(f1, f2)
	got := w.HomDensity(union)
	want := w.HomDensity(f1) * w.HomDensity(f2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("t(F1∪F2)=%v, want t(F1)t(F2)=%v", got, want)
	}
}

func TestAtAndBlockLookup(t *testing.T) {
	w, _ := NewStep([][]float64{{0.9, 0.1}, {0.1, 0.5}}, []float64{0.25, 0.75})
	if w.At(0.1, 0.1) != 0.9 {
		t.Error("both points in block 0")
	}
	if w.At(0.1, 0.9) != 0.1 {
		t.Error("cross-block")
	}
	if w.At(0.99, 0.99) != 0.5 {
		t.Error("both in block 1")
	}
}

func TestCutDistanceUpperZeroForEqual(t *testing.T) {
	w, _ := NewStep([][]float64{{0.5, 0.2}, {0.2, 0.5}}, []float64{0.5, 0.5})
	d, err := CutDistanceUpper(w, w)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self distance %v", d)
	}
}

// TestBadInputsReturnErrors pins the nopanic contract for the graphon
// constructors and comparisons: invalid inputs yield errors, not panics.
func TestBadInputsReturnErrors(t *testing.T) {
	if _, err := Constant(1.5); err == nil {
		t.Error("Constant(1.5) should reject a non-probability density")
	}
	dg := graph.NewDirected(2)
	dg.AddEdge(0, 1)
	if _, err := FromGraph(dg); err == nil {
		t.Error("FromGraph of a directed graph should be an error (asymmetric blocks)")
	}
	one := mustConstant(t, 0.5)
	two, err := NewStep([][]float64{{0.5, 0.2}, {0.2, 0.5}}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CutDistanceUpper(one, two); err == nil {
		t.Error("CutDistanceUpper across block structures should be an error")
	}
}
