package sgns

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// The float32 engine: identical training schedule, sampling, and Hogwild
// sharding to the float64 engine in sgns.go, but with parameters in flat
// []float32 matrices and the inner loop running the fused kernels of
// internal/linalg/f32 (dot → sigmoid LUT → one-pass paired axpy). Float32
// halves the parameter memory traffic — the resource the SGNS inner loop is
// actually bound by — and the fused pair update touches each output-row
// element once instead of twice.
//
// The float64 engine remains the quality/determinism oracle per repo
// convention: TestF32MatchesF64Training gates the f32 path on per-row
// cosine similarity against float64 training from the same seed, and the
// embed package gates it on CommunityRecovery over an SBM graph. Both
// engines consume the master RNG identically (init draws, worker seeds,
// per-pair negative draws), so with Workers: 1 the two trajectories differ
// only by rounding.

// Model32 holds float32 parameter matrices in flat row-major layout — the
// float32 counterpart of Model.
type Model32 struct {
	Dim     int
	InRows  int
	OutRows int
	In      []float32 // InRows x Dim: the embedding used downstream
	Out     []float32 // OutRows x Dim: context vectors (aliases In when Shared)
}

// Vector returns row i of the input matrix — the embedding of token/doc i.
func (m *Model32) Vector(i int) []float32 {
	return m.In[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// Context returns row i of the output (context) matrix.
func (m *Model32) Context(i int) []float32 {
	return m.Out[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// Float64 converts the input matrix to a flat []float64 — the boundary
// back to the float64 world downstream consumers (linalg.Matrix, the model
// store's float64 blocks) live in. The conversion is exact.
func (m *Model32) Float64() []float64 {
	out := make([]float64, len(m.In))
	for i, x := range m.In {
		out[i] = float64(x)
	}
	return out
}

// Train32 runs skip-gram SGNS on the float32 fused-kernel engine. Semantics
// match Train: token ids in [0, vocab), both matrices vocab rows, Workers: 1
// is bit-deterministic for a fixed seed.
func Train32(corpus [][]int, vocab int, cfg Config, seed int64) *Model32 {
	return train32(corpus, vocab, vocab, false, cfg, seed, nil)
}

// TrainDBOW32 runs PV-DBOW on the float32 fused-kernel engine. Semantics
// match TrainDBOW.
func TrainDBOW32(docs [][]int, nDocs, nWords int, cfg Config, seed int64) *Model32 {
	return train32(docs, nDocs, nWords, true, cfg, seed, nil)
}

// FineTune32 runs skip-gram SGNS warm-started from an existing embedding
// table: the input matrix starts from warm (vocab*Dim row-major values,
// e.g. the In table of a previously trained and saved Model32) instead of
// the random init, and the output matrix starts at zero — the same state
// fresh training gives it, which is what makes a saved model (which
// persists only In) a sufficient warm start. Training then proceeds
// exactly like Train32: same schedule, same sampling, same Hogwild
// sharding, and Workers: 1 is bit-deterministic for a fixed seed. The
// warm slice is copied, never mutated.
func FineTune32(corpus [][]int, vocab int, cfg Config, seed int64, warm []float32) (*Model32, error) {
	if cfg.Dim <= 0 || vocab <= 0 {
		return nil, fmt.Errorf("sgns: invalid fine-tune configuration (dim %d, vocab %d)", cfg.Dim, vocab)
	}
	if len(warm) != vocab*cfg.Dim {
		return nil, fmt.Errorf("sgns: warm start has %d values, model needs %d (%d rows x %d dim)",
			len(warm), vocab*cfg.Dim, vocab, cfg.Dim)
	}
	return train32(corpus, vocab, vocab, false, cfg, seed, warm), nil
}

// trainer32 is the float32 twin of trainer: workers mutate in/out through
// the ld32/st32-based fused kernels (plain f32 kernels in normal builds,
// relaxed atomics under -race); everything else is read-only after
// construction (steps is atomic).
type trainer32 struct {
	dim      int
	window   int
	negative int
	lr0      float64
	minLR    float64
	dbow     bool

	in, out []float32
	neg     *Alias

	steps      atomic.Int64
	totalSteps float64
}

func train32(sentences [][]int, inRows, outRows int, dbow bool, cfg Config, seed int64, warm []float32) *Model32 {
	if cfg.Dim <= 0 || inRows <= 0 || outRows <= 0 {
		panic("sgns: invalid configuration") //x2vec:allow nopanic config precondition validated by exported wrappers
	}
	if cfg.Shared && inRows != outRows {
		panic("sgns: Shared vectors require equal In/Out row counts") //x2vec:allow nopanic config precondition validated by exported wrappers
	}
	dim := cfg.Dim
	master := rand.New(rand.NewSource(seed))
	m := &Model32{Dim: dim, InRows: inRows, OutRows: outRows}
	m.In = make([]float32, inRows*dim)
	if warm != nil {
		// Warm start: the master RNG skips the init draws and is consumed
		// for worker seeds only — a fine-tune is its own trajectory, not a
		// replay of the fresh one.
		copy(m.In, warm)
	} else {
		scale := 0.5 / float64(dim)
		for i := range m.In {
			m.In[i] = float32((master.Float64()*2 - 1) * scale)
		}
	}
	if cfg.Shared {
		m.Out = m.In
	} else {
		m.Out = make([]float32, outRows*dim)
	}

	power := cfg.UnigramPower
	if power == 0 {
		power = 0.75
	}
	freq := make([]float64, outRows)
	totalTokens := 0
	for _, s := range sentences {
		totalTokens += len(s)
		for _, w := range s {
			freq[w]++
		}
	}
	for i, f := range freq {
		if f > 0 {
			freq[i] = math.Pow(f, power)
		}
	}

	t := &trainer32{
		dim:        dim,
		window:     cfg.Window,
		negative:   cfg.Negative,
		lr0:        cfg.LearningRate,
		minLR:      cfg.MinLearningRate,
		dbow:       dbow,
		in:         m.In,
		out:        m.Out,
		neg:        NewAlias(freq),
		totalSteps: float64(cfg.Epochs*totalTokens) + 1,
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sentences) {
		workers = len(sentences)
	}
	if workers <= 1 {
		rng := NewFastRand(uint64(master.Int63()))
		grad := make([]float32, dim)
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for si, s := range sentences {
				t.sentence(s, si, rng, grad)
			}
		}
		return m
	}
	seeds := make([]int64, workers)
	for w := range seeds {
		seeds[w] = master.Int63()
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := NewFastRand(uint64(seeds[w]))
			grad := make([]float32, dim)
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				for si := w; si < len(sentences); si += workers {
					t.sentence(sentences[si], si, rng, grad)
				}
			}
		}(w)
	}
	wg.Wait()
	return m
}

// sentence trains one sentence on the fused float32 kernels; grad is the
// worker's dim-sized scratch (zeroed on entry and on exit). The loop
// allocates nothing.
//
//x2vec:hotpath
func (t *trainer32) sentence(sent []int, doc int, rng *FastRand, grad []float32) {
	if len(sent) == 0 {
		return
	}
	done := t.steps.Add(int64(len(sent)))
	lr := t.lr0 * (1 - float64(done)/t.totalSteps)
	if lr < t.minLR {
		lr = t.minLR
	}
	if t.dbow {
		for _, w := range sent {
			t.update(doc, w, float32(lr), rng, grad)
		}
		return
	}
	for i, center := range sent {
		lo := i - t.window
		if lo < 0 {
			lo = 0
		}
		hi := i + t.window
		if hi >= len(sent) {
			hi = len(sent) - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			t.update(center, sent[j], float32(lr), rng, grad)
		}
	}
}

// update applies one positive (inRow, ctx) update plus Negative sampled
// negative updates, accumulating the input-row gradient in grad and
// applying it once at the end — the same schedule as the float64 oracle,
// but every row pass is a fused kernel.
func (t *trainer32) update(inRow, ctx int, lr float32, rng *FastRand, grad []float32) {
	dim := t.dim
	in := t.in[inRow*dim : inRow*dim+dim]
	t.apply(in, ctx, 1, lr, grad)
	for k := 0; k < t.negative; k++ {
		n := t.neg.Pick(rng.Intn(t.neg.N()), rng.Float64())
		if n == ctx {
			continue
		}
		t.apply(in, n, 0, lr, grad)
	}
	addAndZero32(in, grad)
}

// apply adds one (input row, output row) gradient step: fused dot, sigmoid
// LUT, then the fused pair update (grad += g*out; out += g*in in one pass).
func (t *trainer32) apply(in []float32, target int, label, lr float32, grad []float32) {
	dim := len(in)
	out := t.out[target*dim : target*dim+dim]
	g := (label - Sigmoid32(dot32(in, out))) * lr
	pairUpdate32(g, in, out, grad)
}
