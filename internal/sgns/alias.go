package sgns

import "math/rand"

// Alias is Vose's alias-method sampler: O(n) construction, O(1) draws from
// an arbitrary discrete distribution. It replaces the word2vec "unigram
// table" (a 64K-slot array whose integer-truncated fill skewed the
// distribution and gave even zero-frequency tokens a slot) with an exact
// sampler: entries with zero weight are never drawn, and every positive
// weight is represented in true proportion. The walk engine reuses it for
// weighted neighbour proposals.
type Alias struct {
	prob []float64
	alt  []int32
}

// NewAlias builds a sampler over the given non-negative weights. An
// all-zero (or empty total) weight vector falls back to the uniform
// distribution, mirroring the legacy table's behaviour on an empty corpus.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	a := &Alias{prob: make([]float64, n), alt: make([]int32, n)}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("sgns: negative sampling weight") //x2vec:allow nopanic caller contract: sampling weights are frequencies, never negative
		}
		total += w
	}
	if n == 0 {
		return a
	}
	if total == 0 {
		for i := range a.prob {
			a.prob[i] = 1
			a.alt[i] = int32(i)
		}
		return a
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alt[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are within floating-point noise of probability 1.
	for _, i := range large {
		a.prob[i] = 1
		a.alt[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alt[i] = i
	}
	return a
}

// N returns the support size.
func (a *Alias) N() int { return len(a.prob) }

// Pick maps a uniform column i in [0, N) and a uniform u in [0, 1) to a
// sample — the two-random-number form, for callers with their own RNG.
func (a *Alias) Pick(i int, u float64) int {
	if u < a.prob[i] {
		return i
	}
	return int(a.alt[i])
}

// Sample draws one index using rng. It performs no allocations.
func (a *Alias) Sample(rng *rand.Rand) int {
	return a.Pick(rng.Intn(len(a.prob)), rng.Float64())
}
