//go:build !race

package sgns

import "repro/internal/linalg/f32"

// Float32 twins of the ld/st accessor scheme (params_norace.go): in normal
// builds the shared-parameter kernels are the plain fused loops of
// internal/linalg/f32 — concurrent Hogwild workers race on individual
// float32 words, last writer wins, statistically benign. Under -race the
// versions in kernels_race.go replace these with relaxed-atomic scalar
// loops so the detector sees a synchronised program.

func ld32(s []float32, i int) float32 { return s[i] }

func st32(s []float32, i int, v float32) { s[i] = v }

func dot32(a, b []float32) float32 { return f32.Dot(a, b) }

func pairUpdate32(g float32, in, out, grad []float32) { f32.PairUpdate(g, in, out, grad) }

func addAndZero32(dst, grad []float32) { f32.AddAndZero(dst, grad) }
