package sgns

// FastRand is the worker-local splitmix64 PRNG of the training loop: the
// negative sampler draws two variates per sample, so the generator is on
// the hot path and math/rand's generic source (with its modulo-rejection
// Intn) costs real throughput. Splitmix64 passes BigCrush, allocates
// nothing, and is trivially seedable per worker; determinism under a fixed
// seed is preserved by construction. The embed walk engine shares it for
// its per-walk counter-seeded generators.
type FastRand struct{ s uint64 }

// NewFastRand returns a generator whose stream is a pure function of seed.
func NewFastRand(seed uint64) *FastRand { return &FastRand{s: seed} }

func (r *FastRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *FastRand) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// Intn returns a uniform int in [0, n). The modulo bias is negligible for
// the vocabulary sizes involved (below 2^-30 even for million-token
// vocabularies).
func (r *FastRand) Intn(n int) int { return int(r.next() % uint64(n)) }
