package sgns

import "math"

// The logistic sigmoid is the only transcendental in the SGNS inner loop;
// like the original word2vec implementation we precompute it once into a
// lookup table over [-sigmoidMaxX, sigmoidMaxX] and clamp outside. With
// 2048 buckets over [-8, 8] the absolute error is below 2e-3, well under
// the SGD noise floor, and the table build is deterministic — the Workers:1
// reproducibility contract includes it.
const (
	sigmoidTableSize = 2048
	sigmoidMaxX      = 8.0
)

var (
	sigmoidTable   [sigmoidTableSize]float64
	sigmoidTable32 [sigmoidTableSize]float32
)

func init() {
	for i := range sigmoidTable {
		x := (float64(i)/sigmoidTableSize*2 - 1) * sigmoidMaxX
		sigmoidTable[i] = 1 / (1 + math.Exp(-x))
		sigmoidTable32[i] = float32(sigmoidTable[i])
	}
}

// Sigmoid returns the table-looked-up logistic function 1/(1+e^-x),
// saturating to exactly 0 and 1 beyond ±8.
func Sigmoid(x float64) float64 {
	if x >= sigmoidMaxX {
		return 1
	}
	if x <= -sigmoidMaxX {
		return 0
	}
	return sigmoidTable[int((x+sigmoidMaxX)*(sigmoidTableSize/(2*sigmoidMaxX)))]
}

// Sigmoid32 is the float32 face of the same lookup table, used by the
// fused-kernel trainer: identical buckets, entries rounded once at table
// build, saturating to exactly 0 and 1 beyond ±8.
func Sigmoid32(x float32) float32 {
	if x >= sigmoidMaxX {
		return 1
	}
	if x <= -sigmoidMaxX {
		return 0
	}
	return sigmoidTable32[int((x+sigmoidMaxX)*(sigmoidTableSize/(2*sigmoidMaxX)))]
}
