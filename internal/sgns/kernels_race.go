//go:build race

package sgns

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Race-detector builds route every shared float32 parameter access through
// relaxed (load/store, not read-modify-write) atomics on the bit patterns,
// exactly like the float64 accessors in params_race.go. The fused f32
// kernels are replaced by scalar loops over these accessors: slower, but
// `go test -race` observes a synchronised program while normal builds keep
// the unrolled kernels of internal/linalg/f32.

func ld32(s []float32, i int) float32 {
	return math.Float32frombits(atomic.LoadUint32((*uint32)(unsafe.Pointer(&s[i]))))
}

func st32(s []float32, i int, v float32) {
	atomic.StoreUint32((*uint32)(unsafe.Pointer(&s[i])), math.Float32bits(v))
}

func dot32(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += ld32(a, i) * ld32(b, i)
	}
	return s
}

func pairUpdate32(g float32, in, out, grad []float32) {
	for i := range in {
		o := ld32(out, i)
		grad[i] += g * o
		st32(out, i, o+g*ld32(in, i))
	}
}

func addAndZero32(dst, grad []float32) {
	for i := range dst {
		st32(dst, i, ld32(dst, i)+grad[i])
		grad[i] = 0
	}
}
