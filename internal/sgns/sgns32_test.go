package sgns

import (
	"math"
	"math/rand"
	"testing"
)

func cosine32v64(a []float32, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * b[i]
		na += float64(a[i]) * float64(a[i])
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func groupGap32(m *Model32) float64 {
	var intra, inter float64
	var ni, nx int
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			va, vb := m.Vector(a), m.Vector(b)
			var dot, na, nb float64
			for i := range va {
				dot += float64(va[i]) * float64(vb[i])
				na += float64(va[i]) * float64(va[i])
				nb += float64(vb[i]) * float64(vb[i])
			}
			sim := 0.0
			if na > 0 && nb > 0 {
				sim = dot / math.Sqrt(na*nb)
			}
			if (a < 5) == (b < 5) {
				intra += sim
				ni++
			} else {
				inter += sim
				nx++
			}
		}
	}
	return intra/float64(ni) - inter/float64(nx)
}

// The determinism contract carries over: Workers: 1 f32 training is
// bit-identical run to run for a fixed seed.
func TestF32SequentialDeterminism(t *testing.T) {
	corpus := groupedCorpus(rand.New(rand.NewSource(1)), 50)
	m1 := Train32(corpus, 10, testConfig(), 99)
	m2 := Train32(corpus, 10, testConfig(), 99)
	for i := range m1.In {
		if m1.In[i] != m2.In[i] {
			t.Fatal("Workers:1 f32 training must be bit-identical under a fixed seed")
		}
	}
	for i := range m1.Out {
		if m1.Out[i] != m2.Out[i] {
			t.Fatal("Workers:1 f32 context vectors must be bit-identical under a fixed seed")
		}
	}
}

// The f64-oracle equivalence gate: both engines consume the master RNG
// identically (init draws, per-pair negative draws), so sequential f32 and
// f64 training from the same seed walk the same trajectory up to float32
// rounding and may differ only marginally — every trained row must stay
// nearly parallel to its float64 twin.
func TestF32MatchesF64Training(t *testing.T) {
	corpus := groupedCorpus(rand.New(rand.NewSource(8)), 200)
	cfg := testConfig()
	m64 := Train(corpus, 10, cfg, 21)
	m32 := Train32(corpus, 10, cfg, 21)
	if m32.InRows != m64.InRows || m32.OutRows != m64.OutRows || m32.Dim != m64.Dim {
		t.Fatalf("shape mismatch: f32 %dx%d/%d, f64 %dx%d/%d",
			m32.InRows, m32.OutRows, m32.Dim, m64.InRows, m64.OutRows, m64.Dim)
	}
	minCos, sumCos := 1.0, 0.0
	for r := 0; r < m32.InRows; r++ {
		c := cosine32v64(m32.Vector(r), m64.In[r*m64.Dim:(r+1)*m64.Dim])
		sumCos += c
		if c < minCos {
			minCos = c
		}
	}
	mean := sumCos / float64(m32.InRows)
	if mean < 0.995 || minCos < 0.98 {
		t.Errorf("f32 training diverged from the f64 oracle: mean row cosine %.5f (want >= 0.995), min %.5f (want >= 0.98)", mean, minCos)
	}
	// And the learned structure matches: both engines separate the groups
	// by a comparable margin.
	gap64 := groupGap(m64)
	gap32 := groupGap32(m32)
	if gap32 <= 0 {
		t.Errorf("f32 model failed to separate groups, gap=%v", gap32)
	}
	if math.Abs(gap32-gap64) > 0.1 {
		t.Errorf("f32 group gap %v strays from f64 oracle gap %v", gap32, gap64)
	}
}

// Hogwild f32 must keep quality: multi-worker training separates the
// co-occurrence groups like the sequential run.
func TestF32HogwildQuality(t *testing.T) {
	corpus := groupedCorpus(rand.New(rand.NewSource(9)), 300)
	cfg := testConfig()
	cfg.Workers = 4
	m := Train32(corpus, 10, cfg, 7)
	if gap := groupGap32(m); gap <= 0 {
		t.Errorf("hogwild f32 model failed to separate groups, gap=%v", gap)
	}
}

func TestF32SharedVectorsAlias(t *testing.T) {
	m := Train32([][]int{{0, 1}}, 2, Config{
		Dim: 4, Window: 1, Negative: 2, LearningRate: 0.05, Epochs: 1, Workers: 1, Shared: true,
	}, 5)
	if &m.Out[0] != &m.In[0] {
		t.Error("Shared must alias Out onto In in the f32 engine")
	}
}

func TestF32DBOWShapes(t *testing.T) {
	docs := [][]int{{0, 1, 2}, {2, 3, 4}}
	m := TrainDBOW32(docs, 2, 5, testConfig(), 3)
	if m.InRows != 2 || m.OutRows != 5 {
		t.Fatalf("DBOW32 shapes: in=%d out=%d", m.InRows, m.OutRows)
	}
}

func TestFloat64ConversionExact(t *testing.T) {
	m := Train32(groupedCorpus(rand.New(rand.NewSource(10)), 20), 10, testConfig(), 4)
	f := m.Float64()
	for i, x := range m.In {
		if f[i] != float64(x) {
			t.Fatalf("Float64()[%d] = %v, want exact %v", i, f[i], x)
		}
	}
}

// The f32 steady-state inner loop must not allocate, like its f64 twin.
func TestF32ZeroAllocSteadyState(t *testing.T) {
	corpus := groupedCorpus(rand.New(rand.NewSource(6)), 10)
	cfg := testConfig()
	m := Train32(corpus, 10, cfg, 13)
	tr := &trainer32{
		dim:        cfg.Dim,
		window:     cfg.Window,
		negative:   cfg.Negative,
		lr0:        cfg.LearningRate,
		minLR:      cfg.MinLearningRate,
		in:         m.In,
		out:        m.Out,
		neg:        NewAlias([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),
		totalSteps: 1e9,
	}
	rng := NewFastRand(14)
	grad := make([]float32, cfg.Dim)
	sent := corpus[0]
	if avg := testing.AllocsPerRun(200, func() {
		tr.sentence(sent, 0, rng, grad)
	}); avg != 0 {
		t.Errorf("f32 steady-state training allocates %v times per sentence, want 0", avg)
	}
}

func TestTrain32PanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { Train32(nil, 0, testConfig(), 1) },
		func() { Train32(nil, 3, Config{Dim: 0}, 1) },
		func() { TrainDBOW32(nil, 2, 3, Config{Dim: 4, Shared: true}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid f32 configuration should panic")
				}
			}()
			f()
		}()
	}
}

func TestSigmoid32Table(t *testing.T) {
	if Sigmoid32(100) != 1 || Sigmoid32(-100) != 0 {
		t.Error("Sigmoid32 must saturate")
	}
	for _, x := range []float32{-7.5, -2, -0.3, 0, 0.3, 2, 7.5} {
		exact := 1 / (1 + math.Exp(-float64(x)))
		if d := math.Abs(float64(Sigmoid32(x)) - exact); d > 5e-3 {
			t.Errorf("Sigmoid32(%v) off by %v", x, d)
		}
	}
}
