// Package sgns is the shared skip-gram-with-negative-sampling engine under
// every learned x2vec embedding in the repository: word2vec skip-gram,
// DeepWalk and node2vec (SGNS over random-walk corpora), graph2vec's
// PV-DBOW (document vectors predicting WL-subtree words), and first-order
// LINE (SGNS over edge "sentences" with one shared vector set). The paper's
// Sections 2 and 5 reduce all of these to the same optimisation; this
// package reduces them to the same inner loop.
//
// The engine is built for throughput:
//
//   - Parameters live in two flat row-major []float64 matrices (In for
//     centre rows, Out for context rows), not row-pointer slices, so the
//     inner loop walks contiguous memory.
//   - The logistic sigmoid is a precomputed lookup table (see sigmoid.go).
//   - Negative samples come from an O(1) alias-method sampler over the
//     unigram^power context distribution, weighted by true frequency —
//     zero-frequency tokens are never drawn (see alias.go).
//   - Each worker owns its gradient scratch and RNG: the steady-state
//     training loop performs zero heap allocations per (centre, context)
//     pair.
//   - Parallel training is Hogwild-style (Recht et al.): workers shard
//     sentences and update the shared matrices lock-free; sparse collisions
//     make the races statistically benign. Under the race detector the
//     parameter accessors switch to relaxed atomics (see params_race.go),
//     so `go test -race` observes no data races.
//
// Determinism contract: with Workers: 1 the engine runs on the calling
// goroutine in corpus order with a single seeded RNG — output vectors are
// bit-identical run to run for a fixed (corpus, config, seed). With more
// workers, scheduling interleaves updates and results vary run to run; use
// the Workers: 1 mode as the reproducible reference.
package sgns

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config controls SGNS training.
type Config struct {
	Dim             int     // embedding dimension
	Window          int     // context window radius (skip-gram mode; ignored by DBOW)
	Negative        int     // negative samples per positive pair
	LearningRate    float64 // initial SGD step size, linearly decayed
	MinLearningRate float64 // decay floor
	Epochs          int     // passes over the corpus
	UnigramPower    float64 // negative-sampling exponent (0 means the canonical 0.75)
	Workers         int     // 0 = GOMAXPROCS Hogwild workers, 1 = deterministic sequential
	Shared          bool    // Out aliases In (first-order LINE); requires equal row counts
}

// Model holds the trained parameter matrices in flat row-major layout.
type Model struct {
	Dim     int
	InRows  int
	OutRows int
	In      []float64 // InRows x Dim: the embedding used downstream
	Out     []float64 // OutRows x Dim: context vectors (aliases In when Shared)
}

// Vector returns row i of the input matrix — the embedding of token/doc i.
func (m *Model) Vector(i int) []float64 {
	return m.In[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// Context returns row i of the output (context) matrix.
func (m *Model) Context(i int) []float64 {
	return m.Out[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// Train runs skip-gram SGNS over the corpus: for every token, every other
// token within the window is a positive context. Token ids must lie in
// [0, vocab). Both matrices have vocab rows.
func Train(corpus [][]int, vocab int, cfg Config, seed int64) *Model {
	return train(corpus, vocab, vocab, false, cfg, seed)
}

// TrainDBOW runs PV-DBOW (the graph2vec objective): sentence i is the word
// list of document i, and the single positive pair per token is
// (document i, token) — the document vector predicts each of its words.
// In has nDocs rows (the document embeddings), Out has nWords rows.
func TrainDBOW(docs [][]int, nDocs, nWords int, cfg Config, seed int64) *Model {
	return train(docs, nDocs, nWords, true, cfg, seed)
}

// trainer is the shared state of one training run. Workers mutate in/out
// concurrently through the ld/st accessors; everything else is read-only
// after construction (steps is atomic).
type trainer struct {
	dim      int
	window   int
	negative int
	lr0      float64
	minLR    float64
	dbow     bool

	in, out []float64
	neg     *Alias

	steps      atomic.Int64
	totalSteps float64
}

func train(sentences [][]int, inRows, outRows int, dbow bool, cfg Config, seed int64) *Model {
	if cfg.Dim <= 0 || inRows <= 0 || outRows <= 0 {
		panic("sgns: invalid configuration") //x2vec:allow nopanic config precondition validated by exported wrappers
	}
	if cfg.Shared && inRows != outRows {
		panic("sgns: Shared vectors require equal In/Out row counts") //x2vec:allow nopanic config precondition validated by exported wrappers
	}
	dim := cfg.Dim
	master := rand.New(rand.NewSource(seed))
	m := &Model{Dim: dim, InRows: inRows, OutRows: outRows}
	m.In = make([]float64, inRows*dim)
	scale := 0.5 / float64(dim)
	for i := range m.In {
		m.In[i] = (master.Float64()*2 - 1) * scale
	}
	if cfg.Shared {
		m.Out = m.In
	} else {
		m.Out = make([]float64, outRows*dim)
	}

	power := cfg.UnigramPower
	if power == 0 {
		power = 0.75
	}
	freq := make([]float64, outRows)
	totalTokens := 0
	for _, s := range sentences {
		totalTokens += len(s)
		for _, w := range s {
			freq[w]++
		}
	}
	for i, f := range freq {
		if f > 0 {
			freq[i] = math.Pow(f, power)
		}
	}

	t := &trainer{
		dim:        dim,
		window:     cfg.Window,
		negative:   cfg.Negative,
		lr0:        cfg.LearningRate,
		minLR:      cfg.MinLearningRate,
		dbow:       dbow,
		in:         m.In,
		out:        m.Out,
		neg:        NewAlias(freq),
		totalSteps: float64(cfg.Epochs*totalTokens) + 1,
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sentences) {
		workers = len(sentences)
	}
	if workers <= 1 {
		rng := NewFastRand(uint64(master.Int63()))
		grad := make([]float64, dim)
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for si, s := range sentences {
				t.sentence(s, si, rng, grad)
			}
		}
		return m
	}
	// Hogwild: worker w owns the interleaved shard w, w+workers, ... and
	// runs all epochs over it without barriers; the learning rate decays by
	// the shared atomic token counter, so stragglers still see the global
	// schedule. Parameter updates go through ld/st (plain stores in normal
	// builds, relaxed atomics under -race).
	seeds := make([]int64, workers)
	for w := range seeds {
		seeds[w] = master.Int63()
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := NewFastRand(uint64(seeds[w]))
			grad := make([]float64, dim)
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				for si := w; si < len(sentences); si += workers {
					t.sentence(sentences[si], si, rng, grad)
				}
			}
		}(w)
	}
	wg.Wait()
	return m
}

// sentence trains one sentence: skip-gram pairs within the window, or
// (doc, token) pairs in DBOW mode. grad is the worker's dim-sized scratch
// (zeroed on entry and on exit); the loop allocates nothing.
//
//x2vec:hotpath
func (t *trainer) sentence(sent []int, doc int, rng *FastRand, grad []float64) {
	if len(sent) == 0 {
		return
	}
	done := t.steps.Add(int64(len(sent)))
	lr := t.lr0 * (1 - float64(done)/t.totalSteps)
	if lr < t.minLR {
		lr = t.minLR
	}
	if t.dbow {
		for _, w := range sent {
			t.update(doc, w, lr, rng, grad)
		}
		return
	}
	for i, center := range sent {
		lo := i - t.window
		if lo < 0 {
			lo = 0
		}
		hi := i + t.window
		if hi >= len(sent) {
			hi = len(sent) - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			t.update(center, sent[j], lr, rng, grad)
		}
	}
}

// update applies one positive (inRow, ctx) update plus Negative sampled
// negative updates. The gradient on the input row accumulates in grad and
// is applied once at the end, exactly like the reference implementation.
func (t *trainer) update(inRow, ctx int, lr float64, rng *FastRand, grad []float64) {
	dim := t.dim
	in := t.in[inRow*dim : inRow*dim+dim]
	t.apply(in, ctx, 1, lr, grad)
	for k := 0; k < t.negative; k++ {
		n := t.neg.Pick(rng.Intn(t.neg.N()), rng.Float64())
		if n == ctx {
			continue
		}
		t.apply(in, n, 0, lr, grad)
	}
	for d := 0; d < dim; d++ {
		st(in, d, ld(in, d)+grad[d])
		grad[d] = 0
	}
}

// apply adds one (input row, output row) gradient step with the standard
// SGNS gradients, reading the sigmoid from the lookup table. The reslices
// let the compiler prove all three buffers share len(in) and drop the
// bounds checks from both loops.
func (t *trainer) apply(in []float64, target int, label, lr float64, grad []float64) {
	dim := len(in)
	out := t.out[target*dim:]
	out = out[:dim]
	grad = grad[:dim]
	var dot float64
	for d := range in {
		dot += ld(in, d) * ld(out, d)
	}
	g := (label - Sigmoid(dot)) * lr
	for d := range in {
		od := ld(out, d)
		grad[d] += g * od
		st(out, d, od+g*ld(in, d))
	}
}
