package sgns

import (
	"math"
	"math/rand"
	"testing"
)

// The regression test for the legacy negative-table bug: the sampler must
// follow the true unigram^0.75 distribution, and tokens with zero frequency
// (which the old `for i := 0; i <= count; i++` builders gave at least one
// slot each) must never be drawn.
func TestAliasMatchesUnigramPowerDistribution(t *testing.T) {
	freq := []float64{0, 5, 1, 0, 10, 2}
	weights := make([]float64, len(freq))
	var total float64
	for i, f := range freq {
		if f > 0 {
			weights[i] = math.Pow(f, 0.75)
		}
		total += weights[i]
	}
	a := NewAlias(weights)
	rng := rand.New(rand.NewSource(31))
	const draws = 400000
	counts := make([]int, len(freq))
	for i := 0; i < draws; i++ {
		counts[a.Sample(rng)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-frequency tokens were sampled: %v", counts)
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		want := w / total
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("token %d: empirical %v vs expected %v", i, got, want)
		}
	}
}

func TestAliasUniformFallbackOnZeroWeights(t *testing.T) {
	a := NewAlias(make([]float64, 4))
	rng := rand.New(rand.NewSource(32))
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[a.Sample(rng)]++
	}
	for i, c := range counts {
		if c < 1500 {
			t.Errorf("uniform fallback undersamples index %d: %d", i, c)
		}
	}
}

func TestAliasSingletonAndPanic(t *testing.T) {
	a := NewAlias([]float64{3})
	for i := 0; i < 10; i++ {
		if a.Sample(rand.New(rand.NewSource(1))) != 0 {
			t.Fatal("singleton sampler must return 0")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("negative weight should panic")
		}
	}()
	NewAlias([]float64{1, -1})
}

func TestAliasSampleAllocates(t *testing.T) {
	a := NewAlias([]float64{1, 2, 3})
	rng := rand.New(rand.NewSource(33))
	if avg := testing.AllocsPerRun(100, func() { a.Sample(rng) }); avg != 0 {
		t.Errorf("Sample allocates %v per call, want 0", avg)
	}
}
