//go:build race

package sgns

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Race-detector builds route every shared-parameter access through relaxed
// (load/store, not read-modify-write) atomics on the float64 bit patterns.
// This keeps `go test -race` free of reports while preserving Hogwild's
// lock-free last-writer-wins semantics; normal builds use the plain
// accessors in params_norace.go, so the hot loop pays nothing.
func ld(s []float64, i int) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(&s[i]))))
}

func st(s []float64, i int, v float64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&s[i])), math.Float64bits(v))
}
