//go:build !race

package sgns

// ld and st are the shared-parameter accessors of the Hogwild inner loop.
// In normal builds they are plain loads and stores (inlined to direct
// indexing, zero overhead): concurrent workers race on individual float64
// words, which the Go memory model resolves to some previously written
// value on 64-bit platforms — the lock-free update scheme of Hogwild, where
// sparse collisions are statistically benign. Under -race the versions in
// params_race.go replace these with relaxed atomics so the detector sees a
// synchronised program.
func ld(s []float64, i int) float64 { return s[i] }

func st(s []float64, i int, v float64) { s[i] = v }
