package sgns

import (
	"math"
	"math/rand"
	"testing"
)

// groupedCorpus builds sentences where tokens from the same group co-occur:
// group A = {0..4}, group B = {5..9}.
func groupedCorpus(rng *rand.Rand, sentences int) [][]int {
	var corpus [][]int
	for s := 0; s < sentences; s++ {
		group := rng.Intn(2)
		sent := make([]int, 12)
		for i := range sent {
			sent[i] = group*5 + rng.Intn(5)
		}
		corpus = append(corpus, sent)
	}
	return corpus
}

func testConfig() Config {
	return Config{
		Dim:             8,
		Window:          4,
		Negative:        5,
		LearningRate:    0.05,
		MinLearningRate: 0.0001,
		Epochs:          8,
		UnigramPower:    0.75,
		Workers:         1,
	}
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// groupGap returns mean intra-group minus mean inter-group cosine
// similarity over the 10-token grouped vocabulary.
func groupGap(m *Model) float64 {
	var intra, inter float64
	var ni, nx int
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			sim := cosine(m.Vector(a), m.Vector(b))
			if (a < 5) == (b < 5) {
				intra += sim
				ni++
			} else {
				inter += sim
				nx++
			}
		}
	}
	return intra/float64(ni) - inter/float64(nx)
}

// The determinism contract: Workers: 1 with a fixed seed is bit-identical
// run to run, in both parameter matrices.
func TestSequentialDeterminism(t *testing.T) {
	corpus := groupedCorpus(rand.New(rand.NewSource(1)), 50)
	m1 := Train(corpus, 10, testConfig(), 99)
	m2 := Train(corpus, 10, testConfig(), 99)
	for i := range m1.In {
		if m1.In[i] != m2.In[i] {
			t.Fatal("Workers:1 training must be bit-identical under a fixed seed")
		}
	}
	for i := range m1.Out {
		if m1.Out[i] != m2.Out[i] {
			t.Fatal("Workers:1 context vectors must be bit-identical under a fixed seed")
		}
	}
}

func TestSequentialLearnsCooccurrence(t *testing.T) {
	corpus := groupedCorpus(rand.New(rand.NewSource(2)), 300)
	m := Train(corpus, 10, testConfig(), 7)
	if gap := groupGap(m); gap <= 0 {
		t.Errorf("intra-group similarity should exceed inter-group, gap=%v", gap)
	}
}

// Hogwild must not degrade quality: the multi-worker model separates the
// co-occurrence groups just like the sequential one.
func TestHogwildQualityMatchesSequential(t *testing.T) {
	corpus := groupedCorpus(rand.New(rand.NewSource(3)), 300)
	cfg := testConfig()
	seq := Train(corpus, 10, cfg, 7)
	cfg.Workers = 4
	par := Train(corpus, 10, cfg, 7)
	seqGap, parGap := groupGap(seq), groupGap(par)
	if parGap <= 0 {
		t.Errorf("hogwild model failed to separate groups, gap=%v", parGap)
	}
	if parGap < seqGap-0.4 {
		t.Errorf("hogwild gap %v degraded far below sequential gap %v", parGap, seqGap)
	}
}

// DBOW mode: documents over the same word set embed closer together than
// documents over a disjoint word set.
func TestDBOWSeparatesDocumentClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	docs := make([][]int, 20)
	for i := range docs {
		doc := make([]int, 30)
		for j := range doc {
			if i%2 == 0 {
				doc[j] = rng.Intn(5)
			} else {
				doc[j] = 5 + rng.Intn(5)
			}
		}
		docs[i] = doc
	}
	cfg := testConfig()
	cfg.Epochs = 20
	m := TrainDBOW(docs, len(docs), 10, cfg, 11)
	if m.InRows != 20 || m.OutRows != 10 {
		t.Fatalf("DBOW shapes: in=%d out=%d", m.InRows, m.OutRows)
	}
	var intra, inter float64
	var ni, nx int
	for a := 0; a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			sim := cosine(m.Vector(a), m.Vector(b))
			if a%2 == b%2 {
				intra += sim
				ni++
			} else {
				inter += sim
				nx++
			}
		}
	}
	if intra/float64(ni) <= inter/float64(nx) {
		t.Errorf("DBOW intra-class similarity %v should exceed inter-class %v",
			intra/float64(ni), inter/float64(nx))
	}
}

func TestSharedVectorsAlias(t *testing.T) {
	m := Train([][]int{{0, 1}}, 2, Config{
		Dim: 4, Window: 1, Negative: 2, LearningRate: 0.05, Epochs: 1, Workers: 1, Shared: true,
	}, 5)
	if &m.Out[0] != &m.In[0] {
		t.Error("Shared must alias Out onto In")
	}
}

// The steady-state inner loop must not allocate: one sentence through the
// trainer, repeated, stays at zero allocations per run.
func TestZeroAllocSteadyState(t *testing.T) {
	corpus := groupedCorpus(rand.New(rand.NewSource(6)), 10)
	cfg := testConfig()
	m := Train(corpus, 10, cfg, 13) // warmed-up parameters
	tr := &trainer{
		dim:        cfg.Dim,
		window:     cfg.Window,
		negative:   cfg.Negative,
		lr0:        cfg.LearningRate,
		minLR:      cfg.MinLearningRate,
		in:         m.In,
		out:        m.Out,
		neg:        NewAlias([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),
		totalSteps: 1e9,
	}
	rng := NewFastRand(14)
	grad := make([]float64, cfg.Dim)
	sent := corpus[0]
	if avg := testing.AllocsPerRun(200, func() {
		tr.sentence(sent, 0, rng, grad)
	}); avg != 0 {
		t.Errorf("steady-state training allocates %v times per sentence, want 0", avg)
	}
}

func TestTrainPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { Train(nil, 0, testConfig(), 1) },
		func() { Train(nil, 3, Config{Dim: 0}, 1) },
		func() { TrainDBOW(nil, 2, 3, Config{Dim: 4, Shared: true}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid configuration should panic")
				}
			}()
			f()
		}()
	}
}

func TestSigmoidTable(t *testing.T) {
	if Sigmoid(100) != 1 || Sigmoid(-100) != 0 {
		t.Error("sigmoid must saturate")
	}
	for _, x := range []float64{-7.5, -2, -0.3, 0, 0.3, 2, 7.5} {
		exact := 1 / (1 + math.Exp(-x))
		if d := math.Abs(Sigmoid(x) - exact); d > 5e-3 {
			t.Errorf("Sigmoid(%v) off by %v", x, d)
		}
	}
}
