// Package treedec computes tree decompositions, treewidth, and tree-depth of
// small graphs. Exact treewidth uses the Held-Karp-style dynamic program
// over elimination orders; decompositions are built from elimination orders
// via the fill-in construction, and can be converted to "nice" form for the
// homomorphism-counting DP in package hom.
//
// Size limits: the exact treewidth DP is exponential in the vertex count and
// is capped at MaxExactVertices (20); the bitmask machinery behind it caps
// graphs at 32 vertices, and exact tree-depth at 16. Beyond MaxExactVertices,
// OptimalDecomposition degrades gracefully to the min-fill heuristic (still a
// valid decomposition, possibly of suboptimal width) instead of panicking, so
// a corpus job counting homomorphisms of an oversized pattern keeps running
// as long as the resulting width stays manageable (downstream dynamic
// programs fail fast on infeasible widths); callers that need the exact
// number can use ExactTreewidth and handle ErrTooLarge.
package treedec

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/graph"
)

// MaxExactVertices is the largest graph order for which the exact treewidth
// dynamic program (and hence an optimal-width decomposition) is computed.
const MaxExactVertices = 20

// ErrTooLarge reports that a graph exceeds the exact-computation size limit.
var ErrTooLarge = errors.New("treedec: graph exceeds exact treewidth limit")

// Decomposition is a tree decomposition: Bags[i] is the vertex set of node
// i, Tree lists the decomposition-tree edges.
type Decomposition struct {
	Bags [][]int
	Tree [][2]int
}

// Width returns the width (max bag size − 1) of the decomposition.
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Validate checks the three tree-decomposition conditions against g:
// vertex coverage, edge coverage, and connectedness of every vertex's bags.
func (d *Decomposition) Validate(g *graph.Graph) error {
	n := g.N()
	covered := make([]bool, n)
	for _, b := range d.Bags {
		for _, v := range b {
			if v < 0 || v >= n {
				return fmt.Errorf("treedec: bag vertex %d out of range", v)
			}
			covered[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if !covered[v] {
			return fmt.Errorf("treedec: vertex %d not covered", v)
		}
	}
	for _, e := range g.Edges() {
		ok := false
		for _, b := range d.Bags {
			if containsAll(b, e.U, e.V) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("treedec: edge %d-%d not covered", e.U, e.V)
		}
	}
	// Connectedness: the nodes containing each vertex must induce a subtree.
	adj := make([][]int, len(d.Bags))
	for _, te := range d.Tree {
		adj[te[0]] = append(adj[te[0]], te[1])
		adj[te[1]] = append(adj[te[1]], te[0])
	}
	for v := 0; v < n; v++ {
		var nodes []int
		for i, b := range d.Bags {
			if contains(b, v) {
				nodes = append(nodes, i)
			}
		}
		if len(nodes) == 0 {
			continue
		}
		inSet := map[int]bool{}
		for _, x := range nodes {
			inSet[x] = true
		}
		seen := map[int]bool{nodes[0]: true}
		stack := []int{nodes[0]}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if inSet[y] && !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		if len(seen) != len(nodes) {
			return fmt.Errorf("treedec: bags of vertex %d not connected", v)
		}
	}
	// Tree must be acyclic and connected over its nodes.
	if len(d.Bags) > 0 && len(d.Tree) != len(d.Bags)-1 {
		return fmt.Errorf("treedec: %d nodes but %d tree edges", len(d.Bags), len(d.Tree))
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsAll(xs []int, vs ...int) bool {
	for _, v := range vs {
		if !contains(xs, v) {
			return false
		}
	}
	return true
}

// Treewidth returns the exact treewidth of g (n <= MaxExactVertices) via the
// subset DP over elimination orders. It panics on oversized graphs; use
// ExactTreewidth for an error-returning variant.
func Treewidth(g *graph.Graph) int {
	w, err := ExactTreewidth(g)
	if err != nil {
		panic(fmt.Sprintf("treedec: exact treewidth limited to n <= %d", MaxExactVertices)) //x2vec:allow nopanic Treewidth is the documented must-variant of ExactTreewidth
	}
	return w
}

// ExactTreewidth returns the exact treewidth of g, or ErrTooLarge when g has
// more than MaxExactVertices vertices (the subset DP is exponential in n).
func ExactTreewidth(g *graph.Graph) (int, error) {
	n := g.N()
	if n == 0 {
		return -1, nil
	}
	if n > MaxExactVertices {
		return 0, ErrTooLarge
	}
	adjMask := adjacencyMasks(g)
	// dp[S] = minimal width achievable when the vertices of S have been
	// eliminated (in some order), counting |higher neighbourhood| at
	// elimination time.
	size := 1 << uint(n)
	dp := make([]int8, size)
	for i := range dp {
		dp[i] = 127
	}
	dp[0] = 0
	for s := 0; s < size; s++ {
		if dp[s] == 127 {
			continue
		}
		for v := 0; v < n; v++ {
			if s&(1<<uint(v)) != 0 {
				continue
			}
			// Eliminating v after S: its degree into V\S\{v} through the
			// partially eliminated graph equals the number of vertices
			// outside S∪{v} reachable from v through S.
			deg := reachDegree(adjMask, n, s, v)
			w := dp[s]
			if int8(deg) > w {
				w = int8(deg)
			}
			t := s | 1<<uint(v)
			if w < dp[t] {
				dp[t] = w
			}
		}
	}
	return int(dp[size-1]), nil
}

// reachDegree counts vertices outside s∪{v} adjacent to v directly or via
// paths through s (the degree of v in the graph where s is eliminated).
func reachDegree(adjMask []uint32, n, s, v int) int {
	visited := uint32(1 << uint(v))
	frontier := adjMask[v]
	result := uint32(0)
	for frontier != 0 {
		b := frontier & (-frontier)
		frontier &^= b
		w := bits.TrailingZeros32(b)
		if visited&b != 0 {
			continue
		}
		visited |= b
		if s&(1<<uint(w)) != 0 {
			frontier |= adjMask[w] &^ visited
		} else {
			result |= b
		}
	}
	return bits.OnesCount32(result)
}

func adjacencyMasks(g *graph.Graph) []uint32 {
	n := g.N()
	if n > 32 {
		panic("treedec: graphs limited to 32 vertices") //x2vec:allow nopanic unreachable: exported entry points reject n > 32 with ErrTooLarge first
	}
	masks := make([]uint32, n)
	for _, e := range g.Edges() {
		if e.U != e.V {
			masks[e.U] |= 1 << uint(e.V)
			masks[e.V] |= 1 << uint(e.U)
		}
	}
	return masks
}

// EliminationOrderWidth returns the width induced by eliminating vertices in
// the given order (fill-in simulation).
func EliminationOrderWidth(g *graph.Graph, order []int) int {
	n := g.N()
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
	}
	for _, e := range g.Edges() {
		if e.U != e.V {
			adj[e.U][e.V] = true
			adj[e.V][e.U] = true
		}
	}
	eliminated := make([]bool, n)
	width := 0
	for _, v := range order {
		var nbrs []int
		for w := range adj[v] {
			if !eliminated[w] {
				nbrs = append(nbrs, w)
			}
		}
		if len(nbrs) > width {
			width = len(nbrs)
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				adj[nbrs[i]][nbrs[j]] = true
				adj[nbrs[j]][nbrs[i]] = true
			}
		}
		eliminated[v] = true
	}
	return width
}

// MinFillOrder returns a heuristic elimination order choosing, at each step,
// the vertex whose elimination adds the fewest fill edges.
func MinFillOrder(g *graph.Graph) []int {
	n := g.N()
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
	}
	for _, e := range g.Edges() {
		if e.U != e.V {
			adj[e.U][e.V] = true
			adj[e.V][e.U] = true
		}
	}
	eliminated := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		bestV, bestFill := -1, 1<<30
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			var nbrs []int
			for w := range adj[v] {
				if !eliminated[w] {
					nbrs = append(nbrs, w)
				}
			}
			fill := 0
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					if !adj[nbrs[i]][nbrs[j]] {
						fill++
					}
				}
			}
			if fill < bestFill {
				bestFill = fill
				bestV = v
			}
		}
		v := bestV
		var nbrs []int
		for w := range adj[v] {
			if !eliminated[w] {
				nbrs = append(nbrs, w)
			}
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				adj[nbrs[i]][nbrs[j]] = true
				adj[nbrs[j]][nbrs[i]] = true
			}
		}
		eliminated[v] = true
		order = append(order, v)
	}
	return order
}

// Decompose builds a tree decomposition from an elimination order via the
// fill-in construction. The result's width equals the order's induced width.
func Decompose(g *graph.Graph, order []int) *Decomposition {
	n := g.N()
	if n == 0 {
		return &Decomposition{Bags: [][]int{{}}}
	}
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
	}
	for _, e := range g.Edges() {
		if e.U != e.V {
			adj[e.U][e.V] = true
			adj[e.V][e.U] = true
		}
	}
	// Fill in.
	bags := make([][]int, n)
	for _, v := range order {
		var higher []int
		for w := range adj[v] {
			if pos[w] > pos[v] {
				higher = append(higher, w)
			}
		}
		for i := 0; i < len(higher); i++ {
			for j := i + 1; j < len(higher); j++ {
				adj[higher[i]][higher[j]] = true
				adj[higher[j]][higher[i]] = true
			}
		}
		bag := append([]int{v}, higher...)
		sort.Ints(bag)
		bags[pos[v]] = bag
	}
	d := &Decomposition{Bags: bags}
	for i, v := range order {
		if i == n-1 {
			break
		}
		// Attach bag i to the bag of the earliest-eliminated higher
		// neighbour of v, or to the next bag if v had none.
		next := -1
		for _, w := range bags[i] {
			if w != v && (next < 0 || pos[w] < next) {
				next = pos[w]
			}
		}
		if next < 0 {
			next = i + 1
		}
		d.Tree = append(d.Tree, [2]int{i, next})
	}
	return d
}

// OptimalDecomposition returns a tree decomposition of exact minimal width
// for small graphs by searching elimination orders with branch and bound
// seeded by min-fill. Graphs above MaxExactVertices fall back to the plain
// min-fill heuristic decomposition — always valid, possibly wider than
// optimal — so downstream dynamic programs (hom.CountTD on an oversized
// pattern) degrade in speed rather than panicking.
func OptimalDecomposition(g *graph.Graph) *Decomposition {
	n := g.N()
	if n == 0 {
		return &Decomposition{Bags: [][]int{{}}}
	}
	target, err := ExactTreewidth(g)
	if err != nil {
		return Decompose(g, MinFillOrder(g))
	}
	// Branch and bound over orders, pruning when induced width exceeds the
	// known optimum.
	best := MinFillOrder(g)
	if EliminationOrderWidth(g, best) == target {
		return Decompose(g, best)
	}
	order := make([]int, 0, n)
	used := make([]bool, n)
	adjMask := adjacencyMasks(g)
	var found []int
	var rec func(s int) bool
	rec = func(s int) bool {
		if len(order) == n {
			found = append([]int(nil), order...)
			return true
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			if reachDegree(adjMask, n, s, v) > target {
				continue
			}
			used[v] = true
			order = append(order, v)
			if rec(s | 1<<uint(v)) {
				return true
			}
			order = order[:len(order)-1]
			used[v] = false
		}
		return false
	}
	if !rec(0) {
		// Cannot happen if Treewidth is correct; fall back to heuristic.
		return Decompose(g, best)
	}
	return Decompose(g, found)
}

// TreeDepth returns the exact tree-depth of g (n <= 16): 0 for the empty
// graph, 1 for a single vertex, and 1 + min over root removals for
// connected graphs; the max over components otherwise.
func TreeDepth(g *graph.Graph) int {
	n := g.N()
	if n > 16 {
		panic("treedec: exact tree-depth limited to n <= 16") //x2vec:allow nopanic documented exact-solver size cap, mirrors ExactTreewidth
	}
	adjMask := adjacencyMasks(g)
	memo := map[uint32]int{}
	full := uint32(0)
	for v := 0; v < n; v++ {
		full |= 1 << uint(v)
	}
	var td func(mask uint32) int
	td = func(mask uint32) int {
		if mask == 0 {
			return 0
		}
		if v, ok := memo[mask]; ok {
			return v
		}
		comps := componentsOfMask(adjMask, mask)
		var result int
		if len(comps) > 1 {
			for _, c := range comps {
				if d := td(c); d > result {
					result = d
				}
			}
		} else {
			result = 1 << 30
			for m := mask; m != 0; {
				b := m & (-m)
				m &^= b
				if d := 1 + td(mask&^b); d < result {
					result = d
				}
			}
		}
		memo[mask] = result
		return result
	}
	return td(full)
}

func componentsOfMask(adjMask []uint32, mask uint32) []uint32 {
	var comps []uint32
	remaining := mask
	for remaining != 0 {
		b := remaining & (-remaining)
		comp := b
		frontier := b
		for frontier != 0 {
			nb := frontier & (-frontier)
			frontier &^= nb
			v := bits.TrailingZeros32(nb)
			nbrs := adjMask[v] & mask &^ comp
			comp |= nbrs
			frontier |= nbrs
		}
		comps = append(comps, comp)
		remaining &^= comp
	}
	return comps
}

// GraphsOfTreewidthAtMost filters the exhaustive small-graph catalogue to
// connected graphs of treewidth <= k and order <= maxN (maxN <= 6).
func GraphsOfTreewidthAtMost(k, maxN int) []*graph.Graph {
	var out []*graph.Graph
	for n := 1; n <= maxN; n++ {
		for _, g := range graph.ConnectedGraphs(n) {
			if Treewidth(g) <= k {
				out = append(out, g)
			}
		}
	}
	return out
}

// GraphsOfTreeDepthAtMost filters the catalogue to connected graphs of
// tree-depth <= k and order <= maxN (maxN <= 6).
func GraphsOfTreeDepthAtMost(k, maxN int) []*graph.Graph {
	var out []*graph.Graph
	for n := 1; n <= maxN; n++ {
		for _, g := range graph.ConnectedGraphs(n) {
			if TreeDepth(g) <= k {
				out = append(out, g)
			}
		}
	}
	return out
}
