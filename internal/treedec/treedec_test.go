package treedec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestTreewidthKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K1", graph.New(1), 0},
		{"P5", graph.Path(5), 1},
		{"tree", graph.Star(4), 1},
		{"C4", graph.Cycle(4), 2},
		{"C7", graph.Cycle(7), 2},
		{"K4", graph.Complete(4), 3},
		{"K5", graph.Complete(5), 4},
		{"paw", graph.Fig5Graph(), 2},
		{"grid33", graph.Grid(3, 3), 3},
		{"K23", graph.CompleteBipartite(2, 3), 2},
	}
	for _, tc := range tests {
		if got := Treewidth(tc.g); got != tc.want {
			t.Errorf("%s: treewidth=%d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestOptimalDecompositionIsValidAndTight(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(6), graph.Cycle(5), graph.Complete(4),
		graph.Grid(3, 3), graph.Petersen(), graph.Fig5Graph(),
	}
	for _, g := range graphs {
		d := OptimalDecomposition(g)
		if err := d.Validate(g); err != nil {
			t.Errorf("%v: invalid decomposition: %v", g, err)
			continue
		}
		if d.Width() != Treewidth(g) {
			t.Errorf("%v: decomposition width %d != treewidth %d", g, d.Width(), Treewidth(g))
		}
	}
}

func TestMinFillOrderSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := graph.Random(8, 0.4, rng)
		order := MinFillOrder(g)
		w := EliminationOrderWidth(g, order)
		tw := Treewidth(g)
		if w < tw {
			t.Errorf("min-fill width %d below exact treewidth %d (impossible)", w, tw)
		}
		d := Decompose(g, order)
		if err := d.Validate(g); err != nil {
			t.Errorf("min-fill decomposition invalid: %v", err)
		}
		if d.Width() != w {
			t.Errorf("decomposition width %d != elimination width %d", d.Width(), w)
		}
	}
}

func TestTreeDepthKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K1", graph.New(1), 1},
		{"K2", graph.Path(2), 2},
		{"P3", graph.Path(3), 2},
		{"P4", graph.Path(4), 3},
		{"P7", graph.Path(7), 3},
		{"P8", graph.Path(8), 4},
		{"K4", graph.Complete(4), 4},
		{"S4", graph.Star(4), 2},
		{"C4", graph.Cycle(4), 3},
		{"C5", graph.Cycle(5), 4},
		{"2K1", graph.New(2), 1},
	}
	for _, tc := range tests {
		if got := TreeDepth(tc.g); got != tc.want {
			t.Errorf("%s: tree-depth=%d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestTreeDepthPathLogarithmic(t *testing.T) {
	// td(P_n) = ceil(log2(n+1)).
	want := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 3, 7: 3, 8: 4, 15: 4, 16: 5}
	for n, w := range want {
		if got := TreeDepth(graph.Path(n)); got != w {
			t.Errorf("td(P%d)=%d, want %d", n, got, w)
		}
	}
}

func TestTreewidthLEQTreeDepthMinusOne(t *testing.T) {
	// tw(G) <= td(G) - 1 for every graph.
	for n := 1; n <= 5; n++ {
		for _, g := range graph.ConnectedGraphs(n) {
			tw, td := Treewidth(g), TreeDepth(g)
			if tw > td-1 {
				t.Errorf("%v: tw=%d > td-1=%d", g, tw, td-1)
			}
		}
	}
}

func TestGraphsOfTreewidthAtMost(t *testing.T) {
	t1 := GraphsOfTreewidthAtMost(1, 5)
	// Connected graphs of treewidth <= 1 are exactly trees: 1+1+1+2+3 = 8.
	if len(t1) != 8 {
		t.Errorf("tw<=1 connected graphs up to n=5: got %d, want 8 (trees)", len(t1))
	}
	for _, g := range t1 {
		if g.M() != g.N()-1 {
			t.Errorf("tw<=1 connected graph is not a tree: %v", g)
		}
	}
	t2 := GraphsOfTreewidthAtMost(2, 4)
	// All connected graphs on <=4 vertices except K4: 1+1+2+5 = 9.
	if len(t2) != 9 {
		t.Errorf("tw<=2 connected graphs up to n=4: got %d, want 9", len(t2))
	}
}

func TestGraphsOfTreeDepthAtMost(t *testing.T) {
	d1 := GraphsOfTreeDepthAtMost(1, 4)
	if len(d1) != 1 {
		t.Errorf("td<=1 connected graphs: got %d, want 1 (K1 only)", len(d1))
	}
	d2 := GraphsOfTreeDepthAtMost(2, 4)
	// td<=2 connected graphs are stars: K1, K2, S2(=P3), S3.
	if len(d2) != 4 {
		t.Errorf("td<=2 connected graphs up to n=4: got %d, want 4 (stars)", len(d2))
	}
}

func TestQuickDecompositionValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%7) + 1
		g := graph.Random(n, 0.5, rand.New(rand.NewSource(seed)))
		d := OptimalDecomposition(g)
		return d.Validate(g) == nil && d.Width() == Treewidth(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickTreewidthMonotoneUnderEdgeRemoval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.Random(6, 0.5, rng)
		if g.M() == 0 {
			return true
		}
		// Remove a random edge by rebuilding.
		skip := rng.Intn(g.M())
		h := graph.New(6)
		for i, e := range g.Edges() {
			if i != skip {
				h.AddEdge(e.U, e.V)
			}
		}
		return Treewidth(h) <= Treewidth(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
