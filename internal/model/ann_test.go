package model

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ann"
	"repro/internal/linalg"
)

// annTestIndex builds a small real index the way cmd/x2vec index does.
func annTestIndex(t testing.TB, n, dim int, seed int64) *ann.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(n, dim)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	ix, err := ann.Build(m, ann.Config{
		Tables: 4, Bits: 8, Seed: 77,
		SketchRounds: 3, SketchWidth: 64, SketchSeed: 2024,
	}, 2)
	if err != nil {
		t.Fatalf("ann.Build: %v", err)
	}
	return ix
}

func annIndexEqual(t *testing.T, got, want *ann.Index) {
	t.Helper()
	if got.Dim != want.Dim || got.N != want.N || got.Tables != want.Tables || got.Bits != want.Bits ||
		got.Seed != want.Seed || got.SketchRounds != want.SketchRounds ||
		got.SketchWidth != want.SketchWidth || got.SketchSeed != want.SketchSeed {
		t.Fatalf("scalar fields differ: got %+v want %+v",
			[8]any{got.Dim, got.N, got.Tables, got.Bits, got.Seed, got.SketchRounds, got.SketchWidth, got.SketchSeed},
			[8]any{want.Dim, want.N, want.Tables, want.Bits, want.Seed, want.SketchRounds, want.SketchWidth, want.SketchSeed})
	}
	if len(got.Planes) != len(want.Planes) || len(got.Vecs) != len(want.Vecs) {
		t.Fatalf("block sizes differ: planes %d/%d vecs %d/%d", len(got.Planes), len(want.Planes), len(got.Vecs), len(want.Vecs))
	}
	for i := range want.Planes {
		if got.Planes[i] != want.Planes[i] {
			t.Fatalf("planes differ at %d: %v != %v", i, got.Planes[i], want.Planes[i])
		}
	}
	for i := range want.Vecs {
		if got.Vecs[i] != want.Vecs[i] {
			t.Fatalf("vecs differ at %d: %v != %v", i, got.Vecs[i], want.Vecs[i])
		}
	}
	for tbl := 0; tbl < want.Tables; tbl++ {
		if len(got.Sigs[tbl]) != len(want.Sigs[tbl]) {
			t.Fatalf("table %d: %d sigs, want %d", tbl, len(got.Sigs[tbl]), len(want.Sigs[tbl]))
		}
		for i := range want.Sigs[tbl] {
			if got.Sigs[tbl][i] != want.Sigs[tbl][i] {
				t.Fatalf("table %d sig %d differs", tbl, i)
			}
		}
		for i := range want.Offs[tbl] {
			if got.Offs[tbl][i] != want.Offs[tbl][i] {
				t.Fatalf("table %d off %d differs", tbl, i)
			}
		}
		for i := range want.IDs[tbl] {
			if got.IDs[tbl][i] != want.IDs[tbl][i] {
				t.Fatalf("table %d id %d differs", tbl, i)
			}
		}
	}
}

func TestANNIndexRoundTrip(t *testing.T) {
	ix := annTestIndex(t, 60, 12, 5)
	path := filepath.Join(t.TempDir(), "ann.x2vm")
	if err := SaveANNIndex(path, ix); err != nil {
		t.Fatalf("SaveANNIndex: %v", err)
	}
	for _, noMmap := range []string{"", "1"} {
		t.Setenv("X2VEC_NO_MMAP", noMmap)
		h, err := OpenANNIndex(path)
		if err != nil {
			t.Fatalf("OpenANNIndex (no_mmap=%q): %v", noMmap, err)
		}
		annIndexEqual(t, h.Index, ix)
		if err := h.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}

		// Search through the reopened handle must match the in-memory index.
		q := make([]float64, ix.Dim)
		rng := rand.New(rand.NewSource(9))
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		want, err := ann.NewSearcher(ix).Search(q, 5, 4, nil)
		if err != nil {
			t.Fatalf("in-memory Search: %v", err)
		}
		got, err := ann.NewSearcher(h.Index).Search(q, 5, 4, nil)
		if err != nil {
			t.Fatalf("reopened Search: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("result lengths differ: %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("result %d differs: %+v vs %+v", i, got[i], want[i])
			}
		}
		if err := h.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// TestANNIndexEmptyCorpus: an index over zero vectors round-trips.
func TestANNIndexEmptyCorpus(t *testing.T) {
	ix, err := ann.Build(linalg.NewMatrix(0, 6), ann.Config{Tables: 2, Bits: 5}, 1)
	if err != nil {
		t.Fatalf("ann.Build: %v", err)
	}
	path := filepath.Join(t.TempDir(), "empty.x2vm")
	if err := SaveANNIndex(path, ix); err != nil {
		t.Fatalf("SaveANNIndex: %v", err)
	}
	h, err := OpenANNIndex(path)
	if err != nil {
		t.Fatalf("OpenANNIndex: %v", err)
	}
	defer h.Close()
	annIndexEqual(t, h.Index, ix)
}

func TestSaveANNIndexRejectsBadShapes(t *testing.T) {
	if err := SaveANNIndex("/dev/null", nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("nil index: want ErrBadPayload, got %v", err)
	}
	ix := annTestIndex(t, 10, 4, 1)
	broken := *ix
	broken.Planes = broken.Planes[:len(broken.Planes)-1]
	if err := SaveANNIndex("/dev/null", &broken); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short planes: want ErrBadPayload, got %v", err)
	}
	broken = *ix
	broken.Bits = annMaxBits + 1
	if err := SaveANNIndex("/dev/null", &broken); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("oversized bits: want ErrBadPayload, got %v", err)
	}
}

// TestANNIndexCorruption: every byte class of damage must surface as a typed
// error — structural damage at Open, payload damage at Verify — and never a
// panic or a silently wrong handle.
func TestANNIndexCorruption(t *testing.T) {
	ix := annTestIndex(t, 40, 8, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "ann.x2vm")
	if err := SaveANNIndex(path, ix); err != nil {
		t.Fatalf("SaveANNIndex: %v", err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reopen := func(t *testing.T, b []byte) (*ANNIndex, error) {
		p := filepath.Join(dir, "mut.x2vm")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return OpenANNIndex(p)
	}

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), clean...)
		b[0] ^= 0xff
		if _, err := reopen(t, b); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), clean...)
		b[4] = 9
		if _, err := reopen(t, b); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("want ErrBadVersion, got %v", err)
		}
	})
	t.Run("wrong kind", func(t *testing.T) {
		b := append([]byte(nil), clean...)
		b[6] = byte(KindWord2Vec)
		if _, err := reopen(t, b); !errors.Is(err, ErrBadKind) {
			t.Fatalf("want ErrBadKind, got %v", err)
		}
	})
	t.Run("header flip", func(t *testing.T) {
		b := append([]byte(nil), clean...)
		b[v2HeaderOff+2] ^= 0x40 // dim field
		if _, err := reopen(t, b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 7, v2HeaderOff + 3, len(clean) / 2, len(clean) - 5} {
			if _, err := reopen(t, clean[:cut]); err == nil {
				t.Fatalf("truncation to %d bytes opened cleanly", cut)
			}
		}
	})
	t.Run("payload flip fails Verify not Open", func(t *testing.T) {
		b := append([]byte(nil), clean...)
		b[len(b)-16] ^= 0x01 // inside the ids block payload
		h, err := reopen(t, b)
		if err != nil {
			// Structural validation may legitimately reject an ids flip.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open: %v", err)
			}
			return
		}
		defer h.Close()
		if err := h.Verify(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Verify after payload flip: want ErrCorrupt, got %v", err)
		}
	})
	t.Run("vector payload flip passes Open, fails Verify", func(t *testing.T) {
		b := append([]byte(nil), clean...)
		// Flip inside the planes block (first 4096-aligned data byte).
		b[4096] ^= 0x80
		h, err := reopen(t, b)
		if err != nil {
			t.Fatalf("open after float flip: %v", err)
		}
		defer h.Close()
		if err := h.Verify(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Verify after float flip: want ErrCorrupt, got %v", err)
		}
	})
	t.Run("embeddings loader rejects ann kind", func(t *testing.T) {
		if _, err := OpenEmbeddings(path); !errors.Is(err, ErrBadKind) {
			t.Fatalf("OpenEmbeddings on ann file: want ErrBadKind, got %v", err)
		}
	})
}

// FuzzANNParse is satellite 3's no-panic gate: arbitrary bytes through the
// parser must error or produce a structurally valid handle, never panic.
func FuzzANNParse(f *testing.F) {
	ix := annTestIndex(f, 12, 4, 21)
	path := filepath.Join(f.TempDir(), "seed.x2vm")
	if err := SaveANNIndex(path, ix); err != nil {
		f.Fatalf("SaveANNIndex: %v", err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)/2])
	f.Add([]byte("x2vm"))
	f.Add([]byte{})
	mut := append([]byte(nil), clean...)
	mut[v2HeaderOff+5] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := parseANNIndex(append([]byte(nil), b...), false)
		if err != nil {
			return
		}
		// A handle that parses must be safe to search and close.
		q := make([]float64, h.Index.Dim)
		if _, err := ann.NewSearcher(h.Index).Search(q, 3, 2, nil); err != nil {
			t.Fatalf("Search on parsed handle: %v", err)
		}
		h.Close()
	})
}
