package model

// ANN index persistence: KindANNIndex blocks in the version-2 container.
// Like the embedding tables, the layout is mmap-first — every array the
// query path touches (hyperplanes, normalised vectors, per-table signature
// buckets) is stored little-endian at an aligned offset, so the daemon
// cold-starts an index by pointing ann.Index slices at the mapping:
//
//	offset    size  field
//	0         4     magic "x2vm"
//	4         2     format version, uint16 LE (2)
//	6         2     model kind, uint16 LE (KindANNIndex)
//	8         4     header length H, uint32 LE
//	12        4     CRC32 (IEEE) over the H header bytes, uint32 LE
//	16        H     header: dim/n/tables/bits u32, seed u64, sketchRounds/
//	                sketchWidth u32, sketchSeed u64, five (off,len) u64
//	                pairs (planes, vecs, sigs, offs, ids), then tables u32
//	                bucket counts
//	planesOff .     tables*bits*dim float32 hyperplane normals (4096-aligned)
//	vecsOff   .     n*dim float32 unit rows (64-aligned)
//	sigsOff   .     per-table sorted signatures, concatenated, uint64 (64-aligned)
//	offsOff   .     per-table CSR offsets (bucketCount+1 each), uint32 (64-aligned)
//	idsOff    .     per-table row ids, n each, uint32 (64-aligned)
//	end-4     4     CRC32 (IEEE) over bytes [0, end-4), uint32 LE
//
// Open cost is O(header + bucket structure): offsets, alignment, bucket
// monotonicity and id ranges are validated eagerly — the zero-alloc query
// path indexes Vecs by ids without bounds checks, so a handle must never
// hold ids that point outside the vector block — but the (dominant) float
// payload is only CRC-checked by Verify, preserving the O(1)-ish cold start.
// The structural scan touches the sigs/offs/ids blocks (4–12 bytes per row),
// not the vector block that dominates the file.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"repro/internal/ann"
)

// annMaxBits mirrors ann's signature-width bound for parse validation.
const annMaxBits = 60

// SaveANNIndex writes ix as a version-2 KindANNIndex file.
func SaveANNIndex(path string, ix *ann.Index) error {
	if ix == nil {
		return fmt.Errorf("%w: nil ann index", ErrBadPayload)
	}
	if ix.Dim < 1 || ix.Tables < 1 || ix.Bits < 1 || ix.Bits > annMaxBits || ix.N < 0 {
		return fmt.Errorf("%w: ann index shape dim=%d n=%d tables=%d bits=%d", ErrBadPayload,
			ix.Dim, ix.N, ix.Tables, ix.Bits)
	}
	if len(ix.Sigs) != ix.Tables || len(ix.Offs) != ix.Tables || len(ix.IDs) != ix.Tables {
		return fmt.Errorf("%w: ann index has %d/%d/%d table slices, want %d", ErrBadPayload,
			len(ix.Sigs), len(ix.Offs), len(ix.IDs), ix.Tables)
	}
	if len(ix.Planes) != ix.Tables*ix.Bits*ix.Dim || len(ix.Vecs) != ix.N*ix.Dim {
		return fmt.Errorf("%w: ann index block sizes planes=%d vecs=%d", ErrBadPayload, len(ix.Planes), len(ix.Vecs))
	}
	totalSigs := 0
	for t := 0; t < ix.Tables; t++ {
		b := len(ix.Sigs[t])
		if len(ix.Offs[t]) != b+1 || len(ix.IDs[t]) != ix.N {
			return fmt.Errorf("%w: ann index table %d has %d offsets / %d ids for %d buckets",
				ErrBadPayload, t, len(ix.Offs[t]), len(ix.IDs[t]), b)
		}
		totalSigs += b
	}

	headerLen := 4*4 + 8 + 4 + 4 + 8 + 5*16 + 4*ix.Tables
	planesOff := alignUp(v2HeaderOff+headerLen, v2DataAlign)
	planesLen := len(ix.Planes) * 4
	vecsOff := alignUp(planesOff+planesLen, v2ScaleAlign)
	vecsLen := len(ix.Vecs) * 4
	sigsOff := alignUp(vecsOff+vecsLen, v2ScaleAlign)
	sigsLen := totalSigs * 8
	offsOff := alignUp(sigsOff+sigsLen, v2ScaleAlign)
	offsLen := (totalSigs + ix.Tables) * 4
	idsOff := alignUp(offsOff+offsLen, v2ScaleAlign)
	idsLen := ix.Tables * ix.N * 4
	end := idsOff + idsLen

	var h encoder
	h.u32(uint32(ix.Dim))
	h.u32(uint32(ix.N))
	h.u32(uint32(ix.Tables))
	h.u32(uint32(ix.Bits))
	h.u64(ix.Seed)
	h.u32(uint32(ix.SketchRounds))
	h.u32(uint32(ix.SketchWidth))
	h.u64(ix.SketchSeed)
	for _, v := range []int{planesOff, planesLen, vecsOff, vecsLen, sigsOff, sigsLen, offsOff, offsLen, idsOff, idsLen} {
		h.u64(uint64(v))
	}
	for t := 0; t < ix.Tables; t++ {
		h.u32(uint32(len(ix.Sigs[t])))
	}
	if len(h.buf) != headerLen {
		return fmt.Errorf("model: internal error: ann header %d bytes, computed %d", len(h.buf), headerLen)
	}

	out := make([]byte, end, end+4)
	copy(out, magic[:])
	binary.LittleEndian.PutUint16(out[4:], Version2)
	binary.LittleEndian.PutUint16(out[6:], uint16(KindANNIndex))
	binary.LittleEndian.PutUint32(out[8:], uint32(headerLen))
	binary.LittleEndian.PutUint32(out[12:], crc32.ChecksumIEEE(h.buf))
	copy(out[v2HeaderOff:], h.buf)

	for i, x := range ix.Planes {
		binary.LittleEndian.PutUint32(out[planesOff+i*4:], f32bits(x))
	}
	for i, x := range ix.Vecs {
		binary.LittleEndian.PutUint32(out[vecsOff+i*4:], f32bits(x))
	}
	p := sigsOff
	for t := 0; t < ix.Tables; t++ {
		for _, s := range ix.Sigs[t] {
			binary.LittleEndian.PutUint64(out[p:], s)
			p += 8
		}
	}
	p = offsOff
	for t := 0; t < ix.Tables; t++ {
		for _, o := range ix.Offs[t] {
			binary.LittleEndian.PutUint32(out[p:], o)
			p += 4
		}
	}
	p = idsOff
	for t := 0; t < ix.Tables; t++ {
		for _, id := range ix.IDs[t] {
			binary.LittleEndian.PutUint32(out[p:], id)
			p += 4
		}
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return writeFileAtomic(path, out)
}

func f32bits(x float32) uint32 { return math.Float32bits(x) }

// u64 extends the shared header decoder for the ann block's 64-bit fields.
func (d *decoder) u64() (uint64, error) {
	b, err := d.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// ANNIndex is a read-only serving handle over a saved index. The wrapped
// ann.Index's slices point into the file mapping (or an aligned heap read
// under X2VEC_NO_MMAP); Close releases them.
type ANNIndex struct {
	Index  *ann.Index
	Mapped bool

	file    []byte
	mapping []byte
}

// OpenANNIndex opens an index file for serving, mmap-fast: structural
// validation only, with the whole-file CRC deferred to Verify (see the
// format comment). The caller owns the handle and must Close it.
func OpenANNIndex(path string) (*ANNIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: file too short for a model header", ErrCorrupt)
	}
	if string(head[:4]) != string(magic[:]) {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMagic, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != Version2 {
		f.Close()
		return nil, fmt.Errorf("%w: ann index file version %d, this build reads 2", ErrBadVersion, v)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := int(st.Size())
	var b []byte
	mapped := false
	if os.Getenv("X2VEC_NO_MMAP") == "" {
		if m, merr := mmapFile(f, size); merr == nil {
			b, mapped = m, true
		}
	}
	if b == nil {
		if b, err = readAligned(f, size); err != nil {
			f.Close()
			return nil, err
		}
	}
	f.Close()
	a, err := parseANNIndex(b, mapped)
	if err != nil {
		if mapped {
			munmapFile(b)
		}
		return nil, err
	}
	return a, nil
}

// parseANNIndex validates the container and builds an ann.Index over b.
// Everything the query path would index with is checked here — offsets,
// alignment, bucket monotonicity, id ranges — so a handle can never drive
// Search out of bounds; only the float payload bytes are taken on faith
// until Verify.
func parseANNIndex(b []byte, mapped bool) (*ANNIndex, error) {
	if len(b) < v2HeaderOff+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short for an ann index file", ErrCorrupt, len(b))
	}
	if kind := Kind(binary.LittleEndian.Uint16(b[6:8])); kind != KindANNIndex {
		return nil, fmt.Errorf("%w: cannot serve an ann index from a %v model", ErrBadKind, kind)
	}
	headerLen := int(binary.LittleEndian.Uint32(b[8:12]))
	if headerLen < 0 || v2HeaderOff+headerLen+4 > len(b) {
		return nil, fmt.Errorf("%w: header length %d exceeds file", ErrCorrupt, headerLen)
	}
	hb := b[v2HeaderOff : v2HeaderOff+headerLen]
	if got, want := crc32.ChecksumIEEE(hb), binary.LittleEndian.Uint32(b[12:16]); got != want {
		return nil, fmt.Errorf("%w: header checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	d := &decoder{b: hb}
	var dims [4]uint32
	for i := range dims {
		v, err := d.u32()
		if err != nil {
			return nil, err
		}
		dims[i] = v
	}
	dim, n, tables, bits := int(dims[0]), int(dims[1]), int(dims[2]), int(dims[3])
	seed, err := d.u64()
	if err != nil {
		return nil, err
	}
	skRounds, err := d.u32()
	if err != nil {
		return nil, err
	}
	skWidth, err := d.u32()
	if err != nil {
		return nil, err
	}
	skSeed, err := d.u64()
	if err != nil {
		return nil, err
	}
	var blocks [10]uint64
	for i := range blocks {
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		blocks[i] = v
	}
	if dim < 1 || tables < 1 || bits < 1 || bits > annMaxBits {
		return nil, fmt.Errorf("%w: ann index shape dim=%d tables=%d bits=%d", ErrCorrupt, dim, tables, bits)
	}
	// Dimension sanity against the file size before any multiplication can
	// overflow: every row costs ≥ 4 bytes in the ids block alone.
	fileLen := uint64(len(b))
	if uint64(tables)*uint64(bits)*uint64(dim) > fileLen || uint64(n)*uint64(dim) > fileLen ||
		uint64(tables)*uint64(n) > fileLen {
		return nil, fmt.Errorf("%w: ann index shape %dx%d (%d tables) exceeds file", ErrCorrupt, n, dim, tables)
	}
	if d.remaining() != 4*tables {
		return nil, fmt.Errorf("%w: ann header has %d trailing bytes for %d bucket counts", ErrCorrupt, d.remaining(), tables)
	}
	counts := make([]int, tables)
	totalSigs := 0
	for t := range counts {
		c, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(c) > n {
			return nil, fmt.Errorf("%w: table %d has %d buckets over %d rows", ErrCorrupt, t, c, n)
		}
		counts[t] = int(c)
		totalSigs += int(c)
	}

	type blockSpec struct {
		name  string
		align int
		want  uint64
	}
	specs := []blockSpec{
		{"planes", v2DataAlign, uint64(tables) * uint64(bits) * uint64(dim) * 4},
		{"vecs", v2ScaleAlign, uint64(n) * uint64(dim) * 4},
		{"sigs", v2ScaleAlign, uint64(totalSigs) * 8},
		{"offs", v2ScaleAlign, uint64(totalSigs+tables) * 4},
		{"ids", v2ScaleAlign, uint64(tables) * uint64(n) * 4},
	}
	prevEnd := uint64(v2HeaderOff + headerLen)
	for i, spec := range specs {
		off, length := blocks[2*i], blocks[2*i+1]
		if length != spec.want || off%uint64(spec.align) != 0 || off < prevEnd ||
			off+length > fileLen-4 || off+length < off {
			return nil, fmt.Errorf("%w: %s block [%d,%d) invalid (want %d bytes)", ErrCorrupt, spec.name, off, off+length, spec.want)
		}
		prevEnd = off + length
	}

	ix := &ann.Index{
		Dim: dim, N: n, Tables: tables, Bits: bits, Seed: seed,
		SketchRounds: int(skRounds), SketchWidth: int(skWidth), SketchSeed: skSeed,
		Sigs: make([][]uint64, tables),
		Offs: make([][]uint32, tables),
		IDs:  make([][]uint32, tables),
	}
	ix.Planes = unsafe.Slice((*float32)(unsafe.Pointer(&b[blocks[0]])), tables*bits*dim)
	if n*dim > 0 {
		ix.Vecs = unsafe.Slice((*float32)(unsafe.Pointer(&b[blocks[2]])), n*dim)
	}
	var allSigs []uint64
	if totalSigs > 0 {
		allSigs = unsafe.Slice((*uint64)(unsafe.Pointer(&b[blocks[4]])), totalSigs)
	}
	allOffs := unsafe.Slice((*uint32)(unsafe.Pointer(&b[blocks[6]])), totalSigs+tables)
	var allIDs []uint32
	if tables*n > 0 {
		allIDs = unsafe.Slice((*uint32)(unsafe.Pointer(&b[blocks[8]])), tables*n)
	}
	sigPos, offPos := 0, 0
	for t := 0; t < tables; t++ {
		c := counts[t]
		sigs := allSigs[sigPos : sigPos+c]
		offs := allOffs[offPos : offPos+c+1]
		ids := allIDs[t*n : t*n+n]
		sigPos += c
		offPos += c + 1
		for i := 1; i < c; i++ {
			if sigs[i] <= sigs[i-1] {
				return nil, fmt.Errorf("%w: table %d signatures not strictly sorted at %d", ErrCorrupt, t, i)
			}
		}
		if offs[0] != 0 || int(offs[c]) != n {
			return nil, fmt.Errorf("%w: table %d bucket offsets span [%d,%d), want [0,%d)", ErrCorrupt, t, offs[0], offs[c], n)
		}
		for i := 1; i <= c; i++ {
			if offs[i] <= offs[i-1] {
				return nil, fmt.Errorf("%w: table %d bucket offsets not increasing at %d", ErrCorrupt, t, i)
			}
		}
		for i, id := range ids {
			if int(id) >= n {
				return nil, fmt.Errorf("%w: table %d id %d out of range at %d", ErrCorrupt, t, id, i)
			}
		}
		ix.Sigs[t] = sigs
		ix.Offs[t] = offs
		ix.IDs[t] = ids
	}

	a := &ANNIndex{Index: ix, Mapped: mapped, file: b}
	if mapped {
		a.mapping = b
	}
	return a, nil
}

// Verify runs the deferred whole-file CRC — the check that extends trust
// from the structure (validated at open) to the float payload.
func (a *ANNIndex) Verify() error {
	if a.file == nil {
		return nil
	}
	body, trailer := a.file[:len(a.file)-4], a.file[len(a.file)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	return nil
}

// Close releases the file mapping. The handle's index is invalid afterwards.
func (a *ANNIndex) Close() error {
	m := a.mapping
	a.mapping = nil
	a.Index, a.file = nil, nil
	if m == nil {
		return nil
	}
	return munmapFile(m)
}
