package model

// KindGNN files carry a message-passing network in the version-2 container:
// the standard fixed prefix and CRC trailer, a GNN header (feature scheme,
// dtype, layer widths, output head width), and one page-aligned parameter
// block holding, in order, each layer's WSelf, WAgg and Bias followed by
// WOut and BOut, row-major in the declared dtype (float64 or float32 —
// int8 makes no sense for a network applied multiplicatively layer over
// layer). Networks are small (KBs, not GBs), so unlike embedding tables the
// whole file is read, CRC-checked and decoded to the heap eagerly: a handle
// never holds wrong parameter bytes.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/linalg"
)

// GNNSpec describes a trained network for SaveGNN.
type GNNSpec struct {
	Net *gnn.Network
	// Features names the initial-feature scheme the network was trained
	// with and that serving must reproduce: "const" or "degree".
	Features string
	DType    DType // DTypeF64 or DTypeF32
	Lineage  []LineageEntry
}

// gnnParamCount returns the total parameter count of a network with the
// given widths and head.
func gnnParamCount(dims []int, classes int) int {
	n := 0
	for i := 0; i+1 < len(dims); i++ {
		n += 2*dims[i]*dims[i+1] + dims[i+1]
	}
	return n + dims[len(dims)-1]*classes + classes
}

// SaveGNN writes a version-2 GNN model file atomically.
func SaveGNN(path string, spec GNNSpec) error {
	if spec.Net == nil {
		return fmt.Errorf("%w: nil network", ErrBadPayload)
	}
	switch spec.Features {
	case "const", "degree":
	default:
		return fmt.Errorf("%w: unknown feature scheme %q", ErrBadPayload, spec.Features)
	}
	var width int
	switch spec.DType {
	case DTypeF64:
		width = 8
	case DTypeF32:
		width = 4
	default:
		return fmt.Errorf("%w: GNN precision %v", ErrBadPayload, spec.DType)
	}
	dims := spec.Net.Dims()
	classes := spec.Net.Classes()
	paramLen := gnnParamCount(dims, classes) * width

	headerLen := 4 + len(spec.Features) + 1 + 4 + 4*len(dims) + 4 + 2*8 + 4
	for _, le := range spec.Lineage {
		headerLen += 4 + 4 + 4 + len(le.Note)
	}
	paramOff := alignUp(v2HeaderOff+headerLen, v2DataAlign)
	end := paramOff + paramLen

	var h encoder
	h.str(spec.Features)
	h.u8(uint8(spec.DType))
	h.u32(uint32(len(dims)))
	for _, d := range dims {
		h.u32(uint32(d))
	}
	h.u32(uint32(classes))
	h.u64(uint64(paramOff))
	h.u64(uint64(paramLen))
	h.u32(uint32(len(spec.Lineage)))
	for _, le := range spec.Lineage {
		h.u32(le.Parent)
		h.u32(le.Seq)
		h.str(le.Note)
	}
	if len(h.buf) != headerLen {
		return fmt.Errorf("model: internal error: GNN header %d bytes, computed %d", len(h.buf), headerLen)
	}

	out := make([]byte, end, end+4)
	copy(out, magic[:])
	binary.LittleEndian.PutUint16(out[4:], Version2)
	binary.LittleEndian.PutUint16(out[6:], uint16(KindGNN))
	binary.LittleEndian.PutUint32(out[8:], uint32(headerLen))
	binary.LittleEndian.PutUint32(out[12:], crc32.ChecksumIEEE(h.buf))
	copy(out[v2HeaderOff:], h.buf)

	pb := out[paramOff:end]
	off := 0
	put := func(xs []float64) {
		for _, x := range xs {
			if width == 8 {
				binary.LittleEndian.PutUint64(pb[off:], math.Float64bits(x))
			} else {
				binary.LittleEndian.PutUint32(pb[off:], math.Float32bits(float32(x)))
			}
			off += width
		}
	}
	for _, l := range spec.Net.Layers {
		put(l.WSelf.Data)
		put(l.WAgg.Data)
		put(l.Bias)
	}
	put(spec.Net.WOut.Data)
	put(spec.Net.BOut)
	if off != paramLen {
		return fmt.Errorf("model: internal error: GNN params %d bytes, computed %d", off, paramLen)
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return writeFileAtomic(path, out)
}

// GNNModel is a decoded serving handle over a saved network.
type GNNModel struct {
	Net      *gnn.Network
	Dims     []int
	Classes  int
	Features string
	DType    DType
	Lineage  []LineageEntry
}

// OpenGNN reads, CRC-checks and decodes a KindGNN model file.
func OpenGNN(path string) (*GNNModel, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < v2HeaderOff+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short for a v2 model file", ErrCorrupt, len(b))
	}
	if string(b[:4]) != string(magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMagic, b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != Version2 {
		return nil, fmt.Errorf("%w: file version %d, GNN models are version 2", ErrBadVersion, v)
	}
	if kind := Kind(binary.LittleEndian.Uint16(b[6:8])); kind != KindGNN {
		return nil, fmt.Errorf("%w: cannot serve GNN embeddings from a %v model", ErrBadKind, kind)
	}
	// Small file, decoded fully: run the trailer CRC eagerly.
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	headerLen := int(binary.LittleEndian.Uint32(b[8:12]))
	if headerLen < 0 || v2HeaderOff+headerLen+4 > len(b) {
		return nil, fmt.Errorf("%w: header length %d exceeds file", ErrCorrupt, headerLen)
	}
	hb := b[v2HeaderOff : v2HeaderOff+headerLen]
	if got, want := crc32.ChecksumIEEE(hb), binary.LittleEndian.Uint32(b[12:16]); got != want {
		return nil, fmt.Errorf("%w: header checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	d := &decoder{b: hb}
	features, err := d.str()
	if err != nil {
		return nil, err
	}
	switch features {
	case "const", "degree":
	default:
		return nil, fmt.Errorf("%w: unknown feature scheme %q", ErrCorrupt, features)
	}
	dt, err := d.u8()
	if err != nil {
		return nil, err
	}
	dtype := DType(dt)
	var width int
	switch dtype {
	case DTypeF64:
		width = 8
	case DTypeF32:
		width = 4
	default:
		return nil, fmt.Errorf("%w: GNN precision %d", ErrBadPayload, dt)
	}
	nDims, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nDims == 0 || int(nDims) > d.remaining()/4 {
		return nil, fmt.Errorf("%w: layer width count %d", ErrCorrupt, nDims)
	}
	dims := make([]int, nDims)
	for i := range dims {
		w, err := d.u32()
		if err != nil {
			return nil, err
		}
		if w == 0 || w > 1<<20 {
			return nil, fmt.Errorf("%w: layer width %d", ErrCorrupt, w)
		}
		dims[i] = int(w)
	}
	classes32, err := d.u32()
	if err != nil {
		return nil, err
	}
	classes := int(classes32)
	if classes <= 0 || classes > 1<<20 {
		return nil, fmt.Errorf("%w: output width %d", ErrCorrupt, classes)
	}
	var offs [2]uint64
	for i := range offs {
		s, err := d.need(8)
		if err != nil {
			return nil, err
		}
		offs[i] = binary.LittleEndian.Uint64(s)
	}
	lineage, err := decodeLineage(d)
	if err != nil {
		return nil, err
	}
	// Bound the parameter count before trusting the multiplication: widths
	// are capped at 2^20 above, so products fit comfortably in int64.
	var count64 int64
	for i := 0; i+1 < len(dims); i++ {
		count64 += 2*int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])
	}
	count64 += int64(dims[len(dims)-1])*int64(classes) + int64(classes)
	if count64 > int64(len(b))/int64(width) {
		return nil, fmt.Errorf("%w: %d parameters exceed payload", ErrBadPayload, count64)
	}
	paramOff, paramLen := int(offs[0]), int(offs[1])
	if paramLen != int(count64)*width || paramOff%v2DataAlign != 0 ||
		paramOff < v2HeaderOff+headerLen || paramOff+paramLen > len(b)-4 {
		return nil, fmt.Errorf("%w: parameter block [%d,%d) invalid", ErrCorrupt, paramOff, paramOff+paramLen)
	}

	pb := b[paramOff : paramOff+paramLen]
	off := 0
	take := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			if width == 8 {
				xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(pb[off:]))
			} else {
				xs[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(pb[off:])))
			}
			off += width
		}
		return xs
	}
	net := &gnn.Network{}
	for i := 0; i+1 < len(dims); i++ {
		l := &gnn.Layer{
			WSelf: linalg.NewMatrix(dims[i], dims[i+1]),
			WAgg:  linalg.NewMatrix(dims[i], dims[i+1]),
		}
		copy(l.WSelf.Data, take(dims[i]*dims[i+1]))
		copy(l.WAgg.Data, take(dims[i]*dims[i+1]))
		l.Bias = take(dims[i+1])
		net.Layers = append(net.Layers, l)
	}
	net.WOut = linalg.NewMatrix(dims[len(dims)-1], classes)
	copy(net.WOut.Data, take(dims[len(dims)-1]*classes))
	net.BOut = take(classes)

	return &GNNModel{
		Net: net, Dims: dims, Classes: classes,
		Features: features, DType: dtype, Lineage: lineage,
	}, nil
}

// FeatureMatrix builds the initial feature matrix the model's stored
// scheme prescribes for g, matching what training used.
func (m *GNNModel) FeatureMatrix(g *graph.Graph) *linalg.Matrix {
	if m.Features == "degree" {
		return gnn.DegreeFeatures(g, m.Dims[0])
	}
	return gnn.ConstantFeatures(g.N(), m.Dims[0])
}
