// Package model is the versioned binary model store of the serving layer:
// train once with cmd/x2vec, persist, and let cmd/x2vecd answer requests
// from the saved parameters without retraining. Before this package the
// repository had no Save/Load at all — every CLI run retrained from
// scratch and threw the vectors away with the process.
//
// # File format (version 1)
//
//	offset  size  field
//	0       4     magic "x2vm"
//	4       2     format version, uint16 LE (currently 1)
//	6       2     model kind, uint16 LE (see Kind)
//	8       ...   kind-specific payload, little-endian throughout
//	end-4   4     CRC32 (IEEE) over bytes [0, end-4), uint32 LE
//
// Matrices are stored as (precision uint8, rows uint32, cols uint32,
// rows*cols floats LE) blocks, where precision is 8 for float64 (the
// native parameter type; round-trips are bit-identical) or 4 for float32
// (half the bytes, for models whose consumers tolerate quantisation).
// Strings are (len uint32, bytes); per-graph payloads store order,
// directedness, vertex labels, and full (u, v, weight, label) edge records.
//
// Every loader rejects wrong magic, unknown versions, unknown kinds,
// truncation, and CRC mismatches with descriptive errors — a daemon must
// fail closed on a bad model file, not serve garbage vectors.
package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/graph2vec"
	"repro/internal/linalg"
	"repro/internal/word2vec"
)

// Kind identifies what a model file holds.
type Kind uint16

const (
	// KindWord2Vec is a word2vec.Model: In and Out parameter matrices.
	KindWord2Vec Kind = 1
	// KindNodeEmbedding is an embed.NodeEmbedding: one vector per vertex of
	// the training graph, plus the method name (node2vec, deepwalk, line, …).
	KindNodeEmbedding Kind = 2
	// KindGraph2Vec is a graph2vec.Model: one vector per training graph.
	KindGraph2Vec Kind = 3
	// KindHomClass is a homomorphism pattern class: the graphs themselves;
	// the consumer recompiles them with hom.Compile after loading.
	KindHomClass Kind = 4
	// KindANNIndex is an ann.Index: LSH hyperplanes, the normalised vector
	// matrix, and the per-table signature buckets, laid out for mmap serving
	// (see ann.go in this package).
	KindANNIndex Kind = 5
	// KindKGE is a knowledge-graph embedding: entity and relation matrices
	// (TransE translations or RESCAL mixing matrices) plus the training
	// triples, so the daemon can serve filtered /link-predict (see kge.go in
	// this package).
	KindKGE Kind = 6
	// KindGNN is a message-passing network: per-layer WSelf/WAgg/Bias
	// parameters plus the output head and the feature scheme (see gnn.go in
	// this package).
	KindGNN Kind = 7
)

func (k Kind) String() string {
	switch k {
	case KindWord2Vec:
		return "word2vec"
	case KindNodeEmbedding:
		return "node-embedding"
	case KindGraph2Vec:
		return "graph2vec"
	case KindHomClass:
		return "hom-class"
	case KindANNIndex:
		return "ann-index"
	case KindKGE:
		return "kge"
	case KindGNN:
		return "gnn"
	}
	return fmt.Sprintf("kind(%d)", uint16(k))
}

// Version is the current file format version.
const Version uint16 = 1

var magic = [4]byte{'x', '2', 'v', 'm'}

// Sentinel errors for the rejection paths; all loader errors wrap one of
// these (or an os error for I/O failures).
var (
	ErrBadMagic   = errors.New("model: not an x2vec model file")
	ErrBadVersion = errors.New("model: unsupported format version")
	ErrBadKind    = errors.New("model: unexpected model kind")
	ErrCorrupt    = errors.New("model: corrupt model file")
	ErrBadPayload = errors.New("model: malformed payload")
)

// --- encoding helpers -------------------------------------------------

// encoder appends little-endian fields to a plain byte slice. An earlier
// revision funnelled every scalar through binary.Write, whose reflection
// (an interface allocation plus a type switch per value) dominated save
// time on large matrices; the append helpers below encode the same bytes
// with no per-value allocation (see BenchmarkModelSave).
type encoder struct{ buf []byte }

func (e *encoder) u8(x uint8)    { e.buf = append(e.buf, x) }
func (e *encoder) u32(x uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, x) }
func (e *encoder) u64(x uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, x) }
func (e *encoder) i64(x int64)   { e.u64(uint64(x)) }
func (e *encoder) f64(x float64) { e.u64(math.Float64bits(x)) }

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// matrix writes one matrix block. prec is 8 (float64, exact) or 4
// (float32, quantised). The float region is grown once and filled in
// place, with the precision branch hoisted out of the loop.
func (e *encoder) matrix(data []float64, rows, cols, prec int) {
	e.u8(uint8(prec))
	e.u32(uint32(rows))
	e.u32(uint32(cols))
	n := rows * cols
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, n*prec)...)
	b := e.buf[off:]
	if prec == 4 {
		for i, x := range data[:n] {
			binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(float32(x)))
		}
	} else {
		for i, x := range data[:n] {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
		}
	}
}

type decoder struct {
	b   []byte
	off int
}

// remaining returns how many payload bytes are left to decode.
func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) need(n int) ([]byte, error) {
	if d.off+n > len(d.b) {
		return nil, fmt.Errorf("%w: payload truncated at byte %d", ErrBadPayload, d.off)
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s, nil
}

func (d *decoder) u8() (uint8, error) {
	s, err := d.need(1)
	if err != nil {
		return 0, err
	}
	return s[0], nil
}

func (d *decoder) u32() (uint32, error) {
	s, err := d.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(s), nil
}

func (d *decoder) i64() (int64, error) {
	s, err := d.need(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(s)), nil
}

func (d *decoder) f64() (float64, error) {
	s, err := d.need(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(s)), nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	s, err := d.need(int(n))
	if err != nil {
		return "", err
	}
	return string(s), nil
}

// matrix reads one matrix block back into float64s.
func (d *decoder) matrix() (data []float64, rows, cols int, err error) {
	prec, err := d.u8()
	if err != nil {
		return nil, 0, 0, err
	}
	if prec != 4 && prec != 8 {
		return nil, 0, 0, fmt.Errorf("%w: matrix precision %d", ErrBadPayload, prec)
	}
	r, err := d.u32()
	if err != nil {
		return nil, 0, 0, err
	}
	c, err := d.u32()
	if err != nil {
		return nil, 0, 0, err
	}
	rows, cols = int(r), int(c)
	if rows < 0 || cols < 0 || (cols != 0 && rows > (len(d.b)-d.off)/(cols*int(prec))) {
		return nil, 0, 0, fmt.Errorf("%w: matrix %dx%d exceeds payload", ErrBadPayload, rows, cols)
	}
	raw, err := d.need(rows * cols * int(prec))
	if err != nil {
		return nil, 0, 0, err
	}
	data = make([]float64, rows*cols)
	if prec == 4 {
		for i := range data {
			data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	} else {
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return data, rows, cols, nil
}

// --- container --------------------------------------------------------

// writeFile frames payload with the header and CRC trailer and writes it.
func writeFile(path string, kind Kind, payload []byte) error {
	out := make([]byte, 0, len(payload)+12)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint16(out, uint16(kind))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return writeFileAtomic(path, out)
}

// readFile verifies the container and returns the payload bytes and kind.
func readFile(path string) ([]byte, Kind, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	const headerLen, trailerLen = 8, 4
	if len(b) < headerLen+trailerLen {
		return nil, 0, fmt.Errorf("%w: %d bytes is too short for a model file", ErrCorrupt, len(b))
	}
	if !bytes.Equal(b[:4], magic[:]) {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrBadMagic, b[:4])
	}
	body, trailer := b[:len(b)-trailerLen], b[len(b)-trailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, 0, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != Version {
		return nil, 0, fmt.Errorf("%w: file version %d, this build reads %d", ErrBadVersion, v, Version)
	}
	kind := Kind(binary.LittleEndian.Uint16(b[6:8]))
	return body[headerLen:], kind, nil
}

// Sniff returns the kind of a model file after full container validation
// (magic, version, CRC). Version-1 only; use SniffKind to dispatch across
// format generations without paying a full read.
func Sniff(path string) (Kind, error) {
	_, kind, err := readFile(path)
	return kind, err
}

// SniffKind reads just the 8-byte fixed prefix and returns the model kind
// and format version — the serving layer's O(1) dispatch before choosing an
// opener. Structural validation stays with that opener.
func SniffKind(path string) (Kind, uint16, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: file too short for a model header", ErrCorrupt)
	}
	if !bytes.Equal(head[:4], magic[:]) {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrBadMagic, head[:4])
	}
	return Kind(binary.LittleEndian.Uint16(head[6:8])), binary.LittleEndian.Uint16(head[4:6]), nil
}

// LoadAny reads a model file ONCE and dispatches on its kind, returning
// *word2vec.Model, *embed.NodeEmbedding, *graph2vec.Model, or
// []*graph.Graph — the daemon's -model entry point (a Sniff-then-Load pair
// would read and CRC a potentially large file twice).
func LoadAny(path string) (any, Kind, error) {
	payload, kind, err := readFile(path)
	if err != nil {
		return nil, 0, err
	}
	var v any
	switch kind {
	case KindWord2Vec:
		v, err = decodeWord2Vec(payload)
	case KindNodeEmbedding:
		v, err = decodeNodeEmbedding(payload)
	case KindGraph2Vec:
		v, err = decodeGraph2Vec(payload)
	case KindHomClass:
		v, err = decodeHomClass(payload)
	default:
		return nil, kind, fmt.Errorf("%w: %v", ErrBadKind, kind)
	}
	if err != nil {
		return nil, kind, err
	}
	return v, kind, nil
}

func expectKind(got, want Kind) error {
	if got != want {
		return fmt.Errorf("%w: file holds %v, want %v", ErrBadKind, got, want)
	}
	return nil
}

// --- word2vec ---------------------------------------------------------

// SaveWord2Vec persists a word2vec model (both parameter matrices, exact).
func SaveWord2Vec(path string, m *word2vec.Model) error {
	var e encoder
	e.u32(uint32(m.Vocab))
	e.u32(uint32(m.Dim))
	e.matrix(flattenRows(m.In, m.Dim), m.Vocab, m.Dim, 8)
	e.matrix(flattenRows(m.Out, m.Dim), m.Vocab, m.Dim, 8)
	return writeFile(path, KindWord2Vec, e.buf)
}

// LoadWord2Vec restores a word2vec model saved by SaveWord2Vec.
func LoadWord2Vec(path string) (*word2vec.Model, error) {
	payload, kind, err := readFile(path)
	if err != nil {
		return nil, err
	}
	if err := expectKind(kind, KindWord2Vec); err != nil {
		return nil, err
	}
	return decodeWord2Vec(payload)
}

func decodeWord2Vec(payload []byte) (*word2vec.Model, error) {
	d := &decoder{b: payload}
	vocab, err := d.u32()
	if err != nil {
		return nil, err
	}
	dim, err := d.u32()
	if err != nil {
		return nil, err
	}
	in, rows, cols, err := d.matrix()
	if err != nil {
		return nil, err
	}
	if rows != int(vocab) || cols != int(dim) {
		return nil, fmt.Errorf("%w: In matrix %dx%d, header says %dx%d", ErrBadPayload, rows, cols, vocab, dim)
	}
	out, rows, cols, err := d.matrix()
	if err != nil {
		return nil, err
	}
	if rows != int(vocab) || cols != int(dim) {
		return nil, fmt.Errorf("%w: Out matrix %dx%d, header says %dx%d", ErrBadPayload, rows, cols, vocab, dim)
	}
	return &word2vec.Model{
		Dim:   int(dim),
		Vocab: int(vocab),
		In:    rowViews(in, int(vocab), int(dim)),
		Out:   rowViews(out, int(vocab), int(dim)),
	}, nil
}

// --- node embeddings (node2vec, deepwalk, LINE, spectral) -------------

// SaveNodeEmbedding persists a per-vertex embedding with its method name.
func SaveNodeEmbedding(path string, e *embed.NodeEmbedding) error {
	var enc encoder
	enc.str(e.Method)
	enc.matrix(e.Vectors.Data, e.Vectors.Rows, e.Vectors.Cols, 8)
	return writeFile(path, KindNodeEmbedding, enc.buf)
}

// LoadNodeEmbedding restores a node embedding saved by SaveNodeEmbedding.
func LoadNodeEmbedding(path string) (*embed.NodeEmbedding, error) {
	payload, kind, err := readFile(path)
	if err != nil {
		return nil, err
	}
	if err := expectKind(kind, KindNodeEmbedding); err != nil {
		return nil, err
	}
	return decodeNodeEmbedding(payload)
}

func decodeNodeEmbedding(payload []byte) (*embed.NodeEmbedding, error) {
	d := &decoder{b: payload}
	method, err := d.str()
	if err != nil {
		return nil, err
	}
	data, rows, cols, err := d.matrix()
	if err != nil {
		return nil, err
	}
	m := linalg.NewMatrix(rows, cols)
	copy(m.Data, data)
	return &embed.NodeEmbedding{Vectors: m, Method: method}, nil
}

// --- graph2vec --------------------------------------------------------

// SaveGraph2Vec persists the learned per-graph vectors. The WL vocabulary
// is process-local interning state and is not persisted; graph2vec is
// transductive, so the vectors are the entire serving surface.
func SaveGraph2Vec(path string, m *graph2vec.Model) error {
	var e encoder
	e.matrix(m.Vectors.Data, m.Vectors.Rows, m.Vectors.Cols, 8)
	return writeFile(path, KindGraph2Vec, e.buf)
}

// LoadGraph2Vec restores a graph2vec model saved by SaveGraph2Vec.
func LoadGraph2Vec(path string) (*graph2vec.Model, error) {
	payload, kind, err := readFile(path)
	if err != nil {
		return nil, err
	}
	if err := expectKind(kind, KindGraph2Vec); err != nil {
		return nil, err
	}
	return decodeGraph2Vec(payload)
}

func decodeGraph2Vec(payload []byte) (*graph2vec.Model, error) {
	d := &decoder{b: payload}
	data, rows, cols, err := d.matrix()
	if err != nil {
		return nil, err
	}
	m := linalg.NewMatrix(rows, cols)
	copy(m.Data, data)
	return graph2vec.NewModel(m), nil
}

// --- homomorphism pattern classes -------------------------------------

// SaveHomClass persists a pattern class graph by graph. Consumers recompile
// with hom.Compile after loading — the compiled programs are cheap to
// rebuild and full of pointers, the graphs are the ground truth.
func SaveHomClass(path string, class []*graph.Graph) error {
	var e encoder
	e.u32(uint32(len(class)))
	for _, g := range class {
		dir := uint8(0)
		if g.Directed() {
			dir = 1
		}
		e.u8(dir)
		e.u32(uint32(g.N()))
		for v := 0; v < g.N(); v++ {
			e.i64(int64(g.VertexLabel(v)))
		}
		e.u32(uint32(g.M()))
		for _, ed := range g.Edges() {
			e.u32(uint32(ed.U))
			e.u32(uint32(ed.V))
			e.f64(ed.Weight)
			e.i64(int64(ed.Label))
		}
	}
	return writeFile(path, KindHomClass, e.buf)
}

// LoadHomClass restores a pattern class saved by SaveHomClass.
func LoadHomClass(path string) ([]*graph.Graph, error) {
	payload, kind, err := readFile(path)
	if err != nil {
		return nil, err
	}
	if err := expectKind(kind, KindHomClass); err != nil {
		return nil, err
	}
	return decodeHomClass(payload)
}

func decodeHomClass(payload []byte) ([]*graph.Graph, error) {
	d := &decoder{b: payload}
	count, err := d.u32()
	if err != nil {
		return nil, err
	}
	// Bound every file-supplied count by the bytes that would have to back
	// it (like decoder.matrix does): a graph record is at least 9 bytes
	// (dir + n + m), a vertex label 8, an edge 24. A crafted header cannot
	// make the loader allocate gigabytes before hitting truncation.
	if int(count) > d.remaining()/9 {
		return nil, fmt.Errorf("%w: %d graphs exceed payload", ErrBadPayload, count)
	}
	class := make([]*graph.Graph, 0, count)
	for gi := uint32(0); gi < count; gi++ {
		dir, err := d.u8()
		if err != nil {
			return nil, err
		}
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(n) > d.remaining()/8 {
			return nil, fmt.Errorf("%w: graph %d order %d exceeds payload", ErrBadPayload, gi, n)
		}
		var g *graph.Graph
		if dir == 1 {
			g = graph.NewDirected(int(n))
		} else {
			g = graph.New(int(n))
		}
		for v := 0; v < int(n); v++ {
			l, err := d.i64()
			if err != nil {
				return nil, err
			}
			g.SetVertexLabel(v, int(l))
		}
		m, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(m) > d.remaining()/24 {
			return nil, fmt.Errorf("%w: graph %d size %d exceeds payload", ErrBadPayload, gi, m)
		}
		for ei := uint32(0); ei < m; ei++ {
			u, err := d.u32()
			if err != nil {
				return nil, err
			}
			v, err := d.u32()
			if err != nil {
				return nil, err
			}
			w, err := d.f64()
			if err != nil {
				return nil, err
			}
			l, err := d.i64()
			if err != nil {
				return nil, err
			}
			if int(u) >= int(n) || int(v) >= int(n) {
				return nil, fmt.Errorf("%w: edge (%d,%d) out of range for n=%d", ErrBadPayload, u, v, n)
			}
			g.AddEdgeFull(int(u), int(v), w, int(l))
		}
		class = append(class, g)
	}
	return class, nil
}

// --- shared helpers ---------------------------------------------------

// flattenRows concatenates row views back into one flat matrix.
func flattenRows(rows [][]float64, dim int) []float64 {
	out := make([]float64, 0, len(rows)*dim)
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}

// rowViews slices a flat row-major matrix into per-row views (no copy).
func rowViews(flat []float64, rows, dim int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return out
}
