//go:build linux

package model

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The raw syscall keeps the
// serving layer dependency-free; the mapping is page-aligned by the
// kernel, which is what lets parseV2 point float views at it directly.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size <= 0 {
		return nil, errNoMmap
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
