package model

// Lineage chain round-trip and format-compatibility pinning: the chain
// must survive save/open for every dtype, files without the field must
// read back as an empty chain, and FileCRC must agree with the trailer
// Verify checks — the identity the serving layer reports per generation.

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func specRC(rows, cols int, dt DType, lineage []LineageEntry) EmbeddingsSpec {
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = float64(i%13) - 6
	}
	return EmbeddingsSpec{
		Kind: KindNodeEmbedding, Method: "node2vec",
		Rows: rows, Cols: cols, Data: data, DType: dt, Lineage: lineage,
	}
}

func TestLineageRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, dt := range []DType{DTypeF64, DTypeF32, DTypeInt8} {
		path := filepath.Join(dir, dt.String()+".x2vm")
		chain := []LineageEntry{
			{Parent: 0xdeadbeef, Seq: 1, Note: "fine-tune +3 edges"},
			{Parent: 0x12345678, Seq: 2, Note: ""},
		}
		if err := SaveEmbeddings(path, specRC(5, 4, dt, chain)); err != nil {
			t.Fatalf("%v: save: %v", dt, err)
		}
		e, err := OpenEmbeddings(path)
		if err != nil {
			t.Fatalf("%v: open: %v", dt, err)
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: verify with lineage: %v", dt, err)
		}
		if len(e.Lineage) != len(chain) {
			t.Fatalf("%v: %d lineage entries, want %d", dt, len(e.Lineage), len(chain))
		}
		for i := range chain {
			if e.Lineage[i] != chain[i] {
				t.Fatalf("%v: lineage[%d] = %+v, want %+v", dt, i, e.Lineage[i], chain[i])
			}
		}
		// Vectors must be unaffected by the longer header.
		if got, want := e.Vector(3)[2], float64((3*4+2)%13-6); dt == DTypeF64 && got != want {
			t.Fatalf("vector payload shifted: row 3 col 2 = %v, want %v", got, want)
		}
		e.Close()
	}
}

// TestLineageAbsentReadsEmpty pins backward compatibility: a header that
// ends at the fixed fields — what every pre-lineage writer produced — must
// open cleanly with an empty chain. The test synthesises such a file by
// truncating the header of a fresh (lineage-count-0) save back to the
// fixed fields and re-stamping both CRCs.
func TestLineageAbsentReadsEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.x2vm")
	if err := SaveEmbeddings(path, specRC(3, 2, DTypeF32, nil)); err != nil {
		t.Fatal(err)
	}
	e, err := OpenEmbeddings(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Lineage) != 0 {
		t.Fatalf("fresh model has lineage %+v", e.Lineage)
	}
	e.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := int(binary.LittleEndian.Uint32(b[8:12]))
	legacyLen := headerLen - 4 // drop the trailing zero lineage count
	binary.LittleEndian.PutUint32(b[8:12], uint32(legacyLen))
	binary.LittleEndian.PutUint32(b[12:16], crc32.ChecksumIEEE(b[16:16+legacyLen]))
	// Zero the orphaned count bytes (inside the padding now) and re-stamp
	// the trailer over the modified prefix.
	for i := 16 + legacyLen; i < 16+headerLen; i++ {
		b[i] = 0
	}
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
	legacy := filepath.Join(dir, "legacy.x2vm")
	if err := os.WriteFile(legacy, b, 0o644); err != nil {
		t.Fatal(err)
	}
	le, err := OpenEmbeddings(legacy)
	if err != nil {
		t.Fatalf("pre-lineage header rejected: %v", err)
	}
	defer le.Close()
	if err := le.Verify(); err != nil {
		t.Fatalf("legacy verify: %v", err)
	}
	if len(le.Lineage) != 0 {
		t.Fatalf("legacy file decoded lineage %+v", le.Lineage)
	}
	if le.Rows != 3 || le.Cols != 2 {
		t.Fatalf("legacy file shape %dx%d, want 3x2", le.Rows, le.Cols)
	}
}

func TestFileCRCMatchesTrailer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.x2vm")
	if err := SaveEmbeddings(path, specRC(4, 4, DTypeF64, nil)); err != nil {
		t.Fatal(err)
	}
	crc, err := FileCRC(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := crc32.ChecksumIEEE(b[:len(b)-4]); crc != want {
		t.Fatalf("FileCRC %08x, trailer computes %08x", crc, want)
	}
	// Chain a child onto the parent identity and read it back.
	child := filepath.Join(dir, "child.x2vm")
	if err := SaveEmbeddings(child, specRC(4, 4, DTypeF64, []LineageEntry{{Parent: crc, Seq: 1, Note: "warm"}})); err != nil {
		t.Fatal(err)
	}
	e, err := OpenEmbeddings(child)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if len(e.Lineage) != 1 || e.Lineage[0].Parent != crc {
		t.Fatalf("child lineage %+v does not point at parent %08x", e.Lineage, crc)
	}
	if _, err := FileCRC(filepath.Join(dir, "missing.x2vm")); err == nil {
		t.Fatal("FileCRC on a missing file succeeded")
	}
}
