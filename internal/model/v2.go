package model

// Format version 2: the zero-copy serving container. Version 1 stores
// matrices as decode-on-load payload bytes — opening a model costs a full
// read, a CRC pass, and a per-element conversion into fresh heap slices.
// Version 2 lays the vector table out so the serving layer can mmap the
// file and point float views straight at the mapping:
//
//	offset  size  field
//	0       4     magic "x2vm"
//	4       2     format version, uint16 LE (2)
//	6       2     model kind, uint16 LE (embedding kinds only)
//	8       4     header length H, uint32 LE
//	12      4     CRC32 (IEEE) over the H header bytes, uint32 LE
//	16      H     header: method string, dtype uint8, rows uint32,
//	              cols uint32, dataOff/dataLen/scaleOff/scaleLen uint64
//	...           zero padding to dataOff (4096-aligned: one page, so the
//	              mmap'ed block is page-aligned and view-safe)
//	dataOff .     vector block: rows*cols values of dtype, row-major LE
//	...           zero padding to scaleOff (64-aligned) when dtype is int8
//	scaleOff.     per-row float32 dequantisation scales (int8 only)
//	end-4   4     CRC32 (IEEE) over bytes [0, end-4), uint32 LE
//
// Open cost is O(header): the header CRC and every offset/length are
// validated eagerly (a structurally bad file never produces a handle), but
// the whole-file trailer CRC is deferred to Verify — an O(size) pass over
// a potentially multi-gigabyte mapping would forfeit the O(1) cold start
// this layout exists for. Bad vector bytes can only yield wrong numbers,
// never out-of-bounds access; callers that want fail-closed float payloads
// (the daemon does, by default) call Verify once after opening.
//
// dtype is the storage width in bytes, except int8: 8 = float64
// (bit-exact round-trips), 4 = float32, 1 = symmetric per-row int8 —
// q = round(x*127/maxAbs) with the row's scale maxAbs/127 stored as
// float32, so each row's codes span the full [-127, 127] range.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"repro/internal/embed"
	"repro/internal/graph2vec"
	"repro/internal/word2vec"
)

// Version2 is the mmap-friendly serving format version.
const Version2 uint16 = 2

// DType identifies the storage type of a v2 vector block.
type DType uint8

const (
	// DTypeInt8 is symmetric per-row-scale quantised int8 (1 byte/value).
	DTypeInt8 DType = 1
	// DTypeF32 is little-endian float32 (4 bytes/value).
	DTypeF32 DType = 4
	// DTypeF64 is little-endian float64 (8 bytes/value, bit-exact).
	DTypeF64 DType = 8
)

func (d DType) String() string {
	switch d {
	case DTypeInt8:
		return "int8"
	case DTypeF32:
		return "float32"
	case DTypeF64:
		return "float64"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

const (
	v2HeaderOff  = 16   // fixed prefix: magic, version, kind, headerLen, headerCRC
	v2DataAlign  = 4096 // vector block alignment: one page
	v2ScaleAlign = 64   // scale block alignment: one cache line
)

// LineageEntry is one link of a model's provenance chain: which saved
// model this one was fine-tuned from, and how many generations deep the
// chain is. Parent is the parent file's trailer CRC (FileCRC), a stable
// content identity that needs no registry; Seq is the generation number
// (1 for the first fine-tune of a fresh model); Note is free-form
// ("fine-tune +128 edges", a timestamp, …).
type LineageEntry struct {
	Parent uint32 // FileCRC of the parent model file
	Seq    uint32 // generation number, monotone along the chain
	Note   string
}

// EmbeddingsSpec describes one embedding table for SaveEmbeddings.
type EmbeddingsSpec struct {
	Kind   Kind   // KindWord2Vec, KindNodeEmbedding, or KindGraph2Vec
	Method string // pipeline name served back by /embed (node2vec, line, …)
	Rows   int
	Cols   int
	Data   []float64 // row-major Rows*Cols values (exact float64 images of the parameters)
	DType  DType     // storage precision of the vector block
	// Lineage is the provenance chain, oldest ancestor first; a warm-started
	// save appends one entry to its parent's chain. Stored in the v2 header
	// after the fixed fields — readers that predate the field ignore the
	// extra header bytes, and files that predate it read back as an empty
	// chain, so the format stays compatible both directions.
	Lineage []LineageEntry
}

// SaveEmbeddings writes a version-2 model file: the serving format whose
// page-aligned vector block OpenEmbeddings maps (or reads) without any
// per-element decode. DTypeF64 round-trips bit-identically; DTypeF32
// stores the nearest float32s; DTypeInt8 additionally writes the per-row
// scale block (see Int8Quality for the train-time regression gate).
func SaveEmbeddings(path string, spec EmbeddingsSpec) error {
	switch spec.Kind {
	case KindWord2Vec, KindNodeEmbedding, KindGraph2Vec:
	default:
		return fmt.Errorf("%w: v2 stores embedding tables, not %v", ErrBadKind, spec.Kind)
	}
	if spec.Rows < 0 || spec.Cols < 0 {
		return fmt.Errorf("%w: negative shape %dx%d", ErrBadPayload, spec.Rows, spec.Cols)
	}
	n := spec.Rows * spec.Cols
	if len(spec.Data) < n {
		return fmt.Errorf("%w: %dx%d spec over %d data values", ErrBadPayload, spec.Rows, spec.Cols, len(spec.Data))
	}
	var dataLen, scaleLen int
	switch spec.DType {
	case DTypeF64:
		dataLen = n * 8
	case DTypeF32:
		dataLen = n * 4
	case DTypeInt8:
		dataLen = n
		scaleLen = spec.Rows * 4
	default:
		return fmt.Errorf("%w: matrix precision %d", ErrBadPayload, uint8(spec.DType))
	}

	headerLen := 4 + len(spec.Method) + 1 + 4 + 4 + 4*8 + 4
	for _, le := range spec.Lineage {
		headerLen += 4 + 4 + 4 + len(le.Note)
	}
	dataOff := alignUp(v2HeaderOff+headerLen, v2DataAlign)
	end := dataOff + dataLen
	scaleOff := 0
	if scaleLen > 0 {
		scaleOff = alignUp(end, v2ScaleAlign)
		end = scaleOff + scaleLen
	}

	var h encoder
	h.str(spec.Method)
	h.u8(uint8(spec.DType))
	h.u32(uint32(spec.Rows))
	h.u32(uint32(spec.Cols))
	h.u64(uint64(dataOff))
	h.u64(uint64(dataLen))
	h.u64(uint64(scaleOff))
	h.u64(uint64(scaleLen))
	h.u32(uint32(len(spec.Lineage)))
	for _, le := range spec.Lineage {
		h.u32(le.Parent)
		h.u32(le.Seq)
		h.str(le.Note)
	}
	if len(h.buf) != headerLen {
		return fmt.Errorf("model: internal error: v2 header %d bytes, computed %d", len(h.buf), headerLen)
	}

	out := make([]byte, end, end+4)
	copy(out, magic[:])
	binary.LittleEndian.PutUint16(out[4:], Version2)
	binary.LittleEndian.PutUint16(out[6:], uint16(spec.Kind))
	binary.LittleEndian.PutUint32(out[8:], uint32(headerLen))
	binary.LittleEndian.PutUint32(out[12:], crc32.ChecksumIEEE(h.buf))
	copy(out[v2HeaderOff:], h.buf)

	db := out[dataOff : dataOff+dataLen]
	switch spec.DType {
	case DTypeF64:
		for i, x := range spec.Data[:n] {
			binary.LittleEndian.PutUint64(db[i*8:], math.Float64bits(x))
		}
	case DTypeF32:
		for i, x := range spec.Data[:n] {
			binary.LittleEndian.PutUint32(db[i*4:], math.Float32bits(float32(x)))
		}
	case DTypeInt8:
		sb := out[scaleOff : scaleOff+scaleLen]
		for r := 0; r < spec.Rows; r++ {
			scale := quantizeRowInt8(spec.Data[r*spec.Cols:(r+1)*spec.Cols], db[r*spec.Cols:(r+1)*spec.Cols])
			binary.LittleEndian.PutUint32(sb[r*4:], math.Float32bits(scale))
		}
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return writeFileAtomic(path, out)
}

func alignUp(x, a int) int { return (x + a - 1) &^ (a - 1) }

// quantizeRowInt8 quantises one row symmetrically into q and returns the
// float32 dequantisation scale maxAbs/127 (0 for an all-zero row). Codes
// are round(x/scale) clamped to [-127, 127], so the row extremes map to
// ±127 and every value dequantises within scale/2 of its original.
func quantizeRowInt8(row []float64, q []byte) float32 {
	var maxAbs float64
	for _, x := range row {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range q {
			q[i] = 0
		}
		return 0
	}
	scale := float32(maxAbs / 127)
	inv := 1 / float64(scale) // quantise against the rounded float32 scale the reader will use
	for i, x := range row {
		v := math.Round(x * inv)
		if v > 127 {
			v = 127
		} else if v < -127 {
			v = -127
		}
		q[i] = byte(int8(v))
	}
	return scale
}

// Int8Quality reports the mean and minimum per-row cosine similarity
// between data and its int8 round-trip image — the regression gate
// `x2vec train -quantize int8` enforces before writing a quantised model.
// Zero rows round-trip exactly and count as cosine 1.
func Int8Quality(data []float64, rows, cols int) (mean, min float64) {
	if rows == 0 {
		return 1, 1
	}
	q := make([]byte, cols)
	min = 1
	for r := 0; r < rows; r++ {
		row := data[r*cols : (r+1)*cols]
		scale := float64(quantizeRowInt8(row, q))
		var dot, na, nb float64
		for i, x := range row {
			d := float64(int8(q[i])) * scale
			dot += x * d
			na += x * x
			nb += d * d
		}
		c := 1.0
		if na > 0 && nb > 0 {
			c = dot / math.Sqrt(na*nb)
		}
		mean += c
		if c < min {
			min = c
		}
	}
	return mean / float64(rows), min
}

// Embeddings is a read-only serving handle over a saved embedding table.
// Version-2 files back the vector block with a page-aligned mmap view
// (heap read when mmap is unavailable or X2VEC_NO_MMAP is set); version-1
// files decode through the legacy loaders into heap float64s, so one open
// path serves both generations. Close releases the mapping.
type Embeddings struct {
	Kind   Kind
	Method string
	Rows   int
	Cols   int
	DType  DType // DTypeF64 for every v1 model
	Mapped bool  // vector views point into an mmap'ed file
	// Lineage is the provenance chain recorded at save time, oldest
	// ancestor first; empty for fresh models and for files that predate
	// the field.
	Lineage []LineageEntry

	f64     []float64
	f32     []float32
	q8      []int8
	scales  []float32
	file    []byte // full v2 file bytes (mapping or heap) for Verify
	mapping []byte // non-nil while an mmap is live
}

// OpenEmbeddings opens a model file for serving. Version 2 opens in
// O(header) time with the vector block left in place (see the format
// comment for what is and is not verified eagerly); version 1 falls back
// to the legacy decode, including its full CRC check. The caller owns the
// handle and must Close it.
func OpenEmbeddings(path string) (*Embeddings, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: file too short for a model header", ErrCorrupt)
	}
	if string(head[:4]) != string(magic[:]) {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMagic, head[:4])
	}
	switch v := binary.LittleEndian.Uint16(head[4:6]); v {
	case 1:
		f.Close()
		return openV1(path)
	case Version2:
	default:
		f.Close()
		return nil, fmt.Errorf("%w: file version %d, this build reads 1 and 2", ErrBadVersion, v)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := int(st.Size())
	var b []byte
	mapped := false
	if os.Getenv("X2VEC_NO_MMAP") == "" {
		if m, merr := mmapFile(f, size); merr == nil {
			b, mapped = m, true
		}
	}
	if b == nil {
		if b, err = readAligned(f, size); err != nil {
			f.Close()
			return nil, err
		}
	}
	// The fd can close once mapped — the mapping outlives it.
	f.Close()
	e, err := parseV2(b, mapped)
	if err != nil {
		if mapped {
			munmapFile(b)
		}
		return nil, err
	}
	return e, nil
}

// readAligned reads size file bytes into a buffer backed by []uint64, so
// the base is 8-byte aligned and the float64 views parseV2 builds over the
// page-aligned data offset stay aligned without mmap.
func readAligned(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return nil, fmt.Errorf("%w: empty model file", ErrCorrupt)
	}
	words := make([]uint64, (size+7)/8)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)[:size]
	if _, err := f.ReadAt(b, 0); err != nil {
		return nil, err
	}
	return b, nil
}

// parseV2 validates the v2 container structure and builds the vector views
// over b. Everything offset-shaped is checked here — a handle never holds
// an out-of-bounds view — but the whole-file CRC is Verify's job.
func parseV2(b []byte, mapped bool) (*Embeddings, error) {
	if len(b) < v2HeaderOff+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short for a v2 model file", ErrCorrupt, len(b))
	}
	kind := Kind(binary.LittleEndian.Uint16(b[6:8]))
	switch kind {
	case KindWord2Vec, KindNodeEmbedding, KindGraph2Vec:
	default:
		return nil, fmt.Errorf("%w: cannot serve embeddings from a %v model", ErrBadKind, kind)
	}
	headerLen := int(binary.LittleEndian.Uint32(b[8:12]))
	if headerLen < 0 || v2HeaderOff+headerLen+4 > len(b) {
		return nil, fmt.Errorf("%w: header length %d exceeds file", ErrCorrupt, headerLen)
	}
	hb := b[v2HeaderOff : v2HeaderOff+headerLen]
	if got, want := crc32.ChecksumIEEE(hb), binary.LittleEndian.Uint32(b[12:16]); got != want {
		return nil, fmt.Errorf("%w: header checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	d := &decoder{b: hb}
	method, err := d.str()
	if err != nil {
		return nil, err
	}
	dt, err := d.u8()
	if err != nil {
		return nil, err
	}
	rows32, err := d.u32()
	if err != nil {
		return nil, err
	}
	cols32, err := d.u32()
	if err != nil {
		return nil, err
	}
	var offs [4]uint64
	for i := range offs {
		s, err := d.need(8)
		if err != nil {
			return nil, err
		}
		offs[i] = binary.LittleEndian.Uint64(s)
	}
	// Lineage chain, if the header carries one (files from before the
	// field end exactly here and read back as an empty chain).
	var lineage []LineageEntry
	if d.remaining() > 0 {
		cnt, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(cnt) > d.remaining()/12 { // 12 bytes is the minimum entry encoding
			return nil, fmt.Errorf("%w: lineage count %d exceeds header", ErrCorrupt, cnt)
		}
		lineage = make([]LineageEntry, cnt)
		for i := range lineage {
			if lineage[i].Parent, err = d.u32(); err != nil {
				return nil, err
			}
			if lineage[i].Seq, err = d.u32(); err != nil {
				return nil, err
			}
			if lineage[i].Note, err = d.str(); err != nil {
				return nil, err
			}
		}
	}
	rows, cols := int(rows32), int(cols32)
	dtype := DType(dt)
	var width int
	switch dtype {
	case DTypeF64:
		width = 8
	case DTypeF32:
		width = 4
	case DTypeInt8:
		width = 1
	default:
		return nil, fmt.Errorf("%w: matrix precision %d", ErrBadPayload, dt)
	}
	if cols != 0 && rows > (len(b)-v2HeaderOff)/(cols*width) {
		return nil, fmt.Errorf("%w: matrix %dx%d exceeds payload", ErrBadPayload, rows, cols)
	}
	n := rows * cols
	dataOff, dataLen := int(offs[0]), int(offs[1])
	scaleOff, scaleLen := int(offs[2]), int(offs[3])
	if dataLen != n*width || dataOff%v2DataAlign != 0 || dataOff < v2HeaderOff+headerLen ||
		dataOff+dataLen > len(b)-4 {
		return nil, fmt.Errorf("%w: vector block [%d,%d) invalid for %dx%d %v", ErrCorrupt, dataOff, dataOff+dataLen, rows, cols, dtype)
	}
	if dtype == DTypeInt8 {
		if scaleLen != rows*4 || scaleOff%v2ScaleAlign != 0 || scaleOff < dataOff+dataLen ||
			scaleOff+scaleLen > len(b)-4 {
			return nil, fmt.Errorf("%w: scale block [%d,%d) invalid for %d rows", ErrCorrupt, scaleOff, scaleOff+scaleLen, rows)
		}
	} else if scaleOff != 0 || scaleLen != 0 {
		return nil, fmt.Errorf("%w: scale block on a %v model", ErrCorrupt, dtype)
	}

	e := &Embeddings{
		Kind: kind, Method: method, Rows: rows, Cols: cols,
		DType: dtype, Mapped: mapped, Lineage: lineage, file: b,
	}
	if mapped {
		e.mapping = b
	}
	if n > 0 {
		switch dtype {
		case DTypeF64:
			e.f64 = unsafe.Slice((*float64)(unsafe.Pointer(&b[dataOff])), n)
		case DTypeF32:
			e.f32 = unsafe.Slice((*float32)(unsafe.Pointer(&b[dataOff])), n)
		case DTypeInt8:
			e.q8 = unsafe.Slice((*int8)(unsafe.Pointer(&b[dataOff])), n)
			e.scales = unsafe.Slice((*float32)(unsafe.Pointer(&b[scaleOff])), rows)
		}
	}
	return e, nil
}

// openV1 decodes a version-1 file through the legacy loaders and wraps the
// embedding table (word2vec In vectors, node-embedding rows, graph2vec doc
// vectors) in a heap-backed handle.
func openV1(path string) (*Embeddings, error) {
	v, kind, err := LoadAny(path)
	if err != nil {
		return nil, err
	}
	e := &Embeddings{Kind: kind, DType: DTypeF64}
	switch m := v.(type) {
	case *word2vec.Model:
		e.Method = kind.String()
		e.Rows, e.Cols = m.Vocab, m.Dim
		e.f64 = flattenRows(m.In, m.Dim)
	case *embed.NodeEmbedding:
		e.Method = m.Method
		e.Rows, e.Cols = m.Vectors.Rows, m.Vectors.Cols
		e.f64 = m.Vectors.Data
	case *graph2vec.Model:
		e.Method = kind.String()
		e.Rows, e.Cols = m.Vectors.Rows, m.Vectors.Cols
		e.f64 = m.Vectors.Data
	default:
		return nil, fmt.Errorf("%w: cannot serve embeddings from a %v model", ErrBadKind, kind)
	}
	return e, nil
}

// VectorInto dequantises row r into dst (len >= Cols) without allocating.
// r must be in [0, Rows) — the serving layer validates ids before lookup.
//
//x2vec:hotpath
func (e *Embeddings) VectorInto(dst []float64, r int) {
	c := e.Cols
	dst = dst[:c]
	switch e.DType {
	case DTypeF64:
		copy(dst, e.f64[r*c:(r+1)*c])
	case DTypeF32:
		src := e.f32[r*c : (r+1)*c : (r+1)*c]
		for i, x := range src {
			dst[i] = float64(x)
		}
	case DTypeInt8:
		src := e.q8[r*c : (r+1)*c : (r+1)*c]
		s := float64(e.scales[r])
		for i, x := range src {
			dst[i] = float64(x) * s
		}
	}
}

// Vector returns a fresh copy of row r.
func (e *Embeddings) Vector(r int) []float64 {
	dst := make([]float64, e.Cols)
	e.VectorInto(dst, r)
	return dst
}

// Verify runs the deferred whole-file CRC over the vector payload of a v2
// handle (v1 models were fully CRC-checked at open). It walks the entire
// mapping once; daemons that want fail-closed float payloads call it right
// after OpenEmbeddings, before serving.
func (e *Embeddings) Verify() error {
	if e.file == nil {
		return nil
	}
	body, trailer := e.file[:len(e.file)-4], e.file[len(e.file)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	return nil
}

// Close releases the file mapping (a no-op for heap-backed handles). The
// handle's vector views are invalid afterwards.
func (e *Embeddings) Close() error {
	m := e.mapping
	e.mapping = nil
	e.f64, e.f32, e.q8, e.scales, e.file = nil, nil, nil, nil, nil
	if m == nil {
		return nil
	}
	return munmapFile(m)
}

// FileCRC returns a saved model file's trailer checksum — the content
// identity a lineage chain records as Parent. Both format versions end in
// a CRC32 trailer over everything before it, so the value is defined for
// any valid model file without parsing it.
func FileCRC(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if st.Size() < 4 {
		return 0, fmt.Errorf("%w: %d bytes is too short for a model trailer", ErrCorrupt, st.Size())
	}
	var trailer [4]byte
	if _, err := f.ReadAt(trailer[:], st.Size()-4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(trailer[:]), nil
}

var errNoMmap = errors.New("model: mmap unavailable")
