package model

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gnn"
	"repro/internal/graph"
)

func kgeSpecFixture(method string) KGESpec {
	rng := rand.New(rand.NewSource(71))
	dim := 4
	nE, nR := 6, 2
	relWidth := dim
	if method == "rescal" {
		relWidth = dim * dim
	}
	ent := make([]float64, nE*dim)
	for i := range ent {
		ent[i] = rng.NormFloat64()
	}
	rel := make([]float64, nR*relWidth)
	for i := range rel {
		rel[i] = rng.NormFloat64()
	}
	return KGESpec{
		Method: method, NumEntities: nE, NumRelations: nR, Dim: dim,
		Entities: ent, Relations: rel,
		Triples: [][3]int{{0, 0, 1}, {1, 1, 2}, {0, 0, 3}},
		DType:   DTypeF64,
	}
}

func TestKGERoundTripF64BitIdentical(t *testing.T) {
	for _, method := range []string{"transe", "rescal"} {
		spec := kgeSpecFixture(method)
		path := filepath.Join(t.TempDir(), "kge.bin")
		if err := SaveKGE(path, spec); err != nil {
			t.Fatalf("SaveKGE(%s): %v", method, err)
		}
		m, err := OpenKGE(path)
		if err != nil {
			t.Fatalf("OpenKGE(%s): %v", method, err)
		}
		defer m.Close()
		if err := m.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if m.Method != method || m.NumEntities != spec.NumEntities || m.Dim != spec.Dim ||
			m.RelWidth != spec.RelWidth() || len(m.Triples) != len(spec.Triples) {
			t.Fatalf("header mismatch: %+v", m)
		}
		row := make([]float64, m.Dim)
		for i := 0; i < m.NumEntities; i++ {
			m.EntityInto(row, i)
			for j, v := range row {
				if math.Float64bits(v) != math.Float64bits(spec.Entities[i*m.Dim+j]) {
					t.Fatalf("entity %d[%d] not bit-identical", i, j)
				}
			}
		}
		rrow := make([]float64, m.RelWidth)
		for i := 0; i < m.NumRelations; i++ {
			m.RelationInto(rrow, i)
			for j, v := range rrow {
				if math.Float64bits(v) != math.Float64bits(spec.Relations[i*m.RelWidth+j]) {
					t.Fatalf("relation %d[%d] not bit-identical", i, j)
				}
			}
		}
		if tails := m.KnownTails(0, 0); len(tails) != 2 {
			t.Fatalf("KnownTails(0,0) = %v, want the two stored facts", tails)
		}
		if heads := m.KnownHeads(1, 2); len(heads) != 1 || heads[0] != 1 {
			t.Fatalf("KnownHeads(1,2) = %v", heads)
		}
	}
}

func TestKGEInt8QuantizedServing(t *testing.T) {
	spec := kgeSpecFixture("transe")
	spec.DType = DTypeInt8
	path := filepath.Join(t.TempDir(), "kge8.bin")
	if err := SaveKGE(path, spec); err != nil {
		t.Fatal(err)
	}
	m, err := OpenKGE(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	row := make([]float64, m.Dim)
	for i := 0; i < m.NumEntities; i++ {
		m.EntityInto(row, i)
		var maxAbs float64
		for _, x := range spec.Entities[i*m.Dim : (i+1)*m.Dim] {
			maxAbs = math.Max(maxAbs, math.Abs(x))
		}
		for j, v := range row {
			if math.Abs(v-spec.Entities[i*m.Dim+j]) > maxAbs/127+1e-9 {
				t.Fatalf("entity %d[%d] dequantised outside the scale bound: %v vs %v", i, j, v, spec.Entities[i*m.Dim+j])
			}
		}
	}
	// The view must answer top-k without error on quantised storage.
	if _, err := m.View().TopTails(0, 0, 3, 2, nil); err != nil {
		t.Fatalf("TopTails over int8: %v", err)
	}
}

func TestKGEViewMatchesSpec(t *testing.T) {
	spec := kgeSpecFixture("transe")
	path := filepath.Join(t.TempDir(), "kge.bin")
	if err := SaveKGE(path, spec); err != nil {
		t.Fatal(err)
	}
	m, err := OpenKGE(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	preds, err := m.View().TopTails(0, 0, m.NumEntities, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != m.NumEntities {
		t.Fatalf("want all candidates, got %d", len(preds))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i-1].Score > preds[i].Score {
			t.Fatal("transe ranking should ascend")
		}
	}
}

func TestKGERejectsBadSpecs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kge.bin")
	spec := kgeSpecFixture("transe")
	bad := spec
	bad.Method = "distmult"
	if err := SaveKGE(path, bad); !errors.Is(err, ErrBadPayload) {
		t.Errorf("unknown method: err = %v", err)
	}
	bad = spec
	bad.Entities = bad.Entities[:3]
	if err := SaveKGE(path, bad); !errors.Is(err, ErrBadPayload) {
		t.Errorf("short entities: err = %v", err)
	}
	bad = spec
	bad.Triples = [][3]int{{0, 5, 0}}
	if err := SaveKGE(path, bad); !errors.Is(err, ErrBadPayload) {
		t.Errorf("out-of-range triple: err = %v", err)
	}
}

func TestKGECorruptionAndVersionNegotiation(t *testing.T) {
	spec := kgeSpecFixture("transe")
	path := filepath.Join(t.TempDir(), "kge.bin")
	if err := SaveKGE(path, spec); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(off int) string {
		b := append([]byte(nil), raw...)
		b[off] ^= 0xff
		cp := filepath.Join(t.TempDir(), "corrupt.bin")
		if err := os.WriteFile(cp, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return cp
	}
	// Header corruption: rejected at open, never a panic.
	if _, err := OpenKGE(corrupt(20)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt header: err = %v, want ErrCorrupt", err)
	}
	// Payload corruption: open succeeds (O(header) contract), Verify fails.
	m, err := OpenKGE(corrupt(4096 + 7))
	if err != nil {
		t.Fatalf("payload corruption must not fail open: %v", err)
	}
	if err := m.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt payload: Verify = %v, want ErrCorrupt", err)
	}
	m.Close()
	// Truncation: rejected structurally.
	short := filepath.Join(t.TempDir(), "short.bin")
	if err := os.WriteFile(short, raw[:100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenKGE(short); err == nil {
		t.Error("truncated file should be rejected")
	}
	// A v1 file is not a KGE container.
	v1 := filepath.Join(t.TempDir(), "v1.bin")
	v1b := append([]byte(nil), raw[:8]...)
	binary.LittleEndian.PutUint16(v1b[4:], 1)
	v1b = append(v1b, raw[8:]...)
	if err := os.WriteFile(v1, v1b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenKGE(v1); !errors.Is(err, ErrBadVersion) {
		t.Errorf("v1 file: err = %v, want ErrBadVersion", err)
	}
	// The embeddings opener must reject the KGE kind cleanly.
	if _, err := OpenEmbeddings(path); !errors.Is(err, ErrBadKind) {
		t.Errorf("OpenEmbeddings on KGE: err = %v, want ErrBadKind", err)
	}
	// And the GNN opener too.
	if _, err := OpenGNN(path); !errors.Is(err, ErrBadKind) {
		t.Errorf("OpenGNN on KGE: err = %v, want ErrBadKind", err)
	}
	// The dispatch sniffer reports the new kind and version.
	if k, v, err := SniffKind(path); err != nil || k != KindKGE || v != 2 {
		t.Errorf("SniffKind = %v, %d, %v; want KindKGE v2", k, v, err)
	}
}

func trainedGNNFixture(t *testing.T) *gnn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(72))
	net, err := gnn.New([]int{2, 5, 3}, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGNNRoundTripF64BitIdentical(t *testing.T) {
	net := trainedGNNFixture(t)
	path := filepath.Join(t.TempDir(), "gnn.bin")
	if err := SaveGNN(path, GNNSpec{Net: net, Features: "degree", DType: DTypeF64,
		Lineage: []LineageEntry{{Parent: 7, Seq: 1, Note: "fresh"}}}); err != nil {
		t.Fatalf("SaveGNN: %v", err)
	}
	m, err := OpenGNN(path)
	if err != nil {
		t.Fatalf("OpenGNN: %v", err)
	}
	if m.Features != "degree" || m.Classes != 2 || len(m.Dims) != 3 {
		t.Fatalf("header mismatch: %+v", m)
	}
	if len(m.Lineage) != 1 || m.Lineage[0].Parent != 7 {
		t.Fatalf("lineage mismatch: %+v", m.Lineage)
	}
	for l := range net.Layers {
		for i, v := range net.Layers[l].WSelf.Data {
			if math.Float64bits(v) != math.Float64bits(m.Net.Layers[l].WSelf.Data[i]) {
				t.Fatalf("layer %d WSelf[%d] not bit-identical", l, i)
			}
		}
		for i, v := range net.Layers[l].WAgg.Data {
			if math.Float64bits(v) != math.Float64bits(m.Net.Layers[l].WAgg.Data[i]) {
				t.Fatalf("layer %d WAgg[%d] not bit-identical", l, i)
			}
		}
	}
	for i, v := range net.WOut.Data {
		if math.Float64bits(v) != math.Float64bits(m.Net.WOut.Data[i]) {
			t.Fatalf("WOut[%d] not bit-identical", i)
		}
	}
	// The decoded network embeds graphs identically to the original.
	g := graph.Cycle(6)
	x0 := m.FeatureMatrix(g)
	want, err := net.GraphEmbed(g, gnn.DegreeFeatures(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Net.GraphEmbed(g, x0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("decoded network embedding diverges at %d", i)
		}
	}
}

func TestGNNRoundTripF32(t *testing.T) {
	net := trainedGNNFixture(t)
	path := filepath.Join(t.TempDir(), "gnn32.bin")
	if err := SaveGNN(path, GNNSpec{Net: net, Features: "const", DType: DTypeF32}); err != nil {
		t.Fatal(err)
	}
	m, err := OpenGNN(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range net.WOut.Data {
		if math.Float64bits(float64(float32(v))) != math.Float64bits(m.Net.WOut.Data[i]) {
			t.Fatalf("WOut[%d] not float32-exact", i)
		}
	}
}

func TestGNNRejectsBadInput(t *testing.T) {
	net := trainedGNNFixture(t)
	path := filepath.Join(t.TempDir(), "gnn.bin")
	if err := SaveGNN(path, GNNSpec{Net: nil, Features: "const", DType: DTypeF64}); !errors.Is(err, ErrBadPayload) {
		t.Errorf("nil net: err = %v", err)
	}
	if err := SaveGNN(path, GNNSpec{Net: net, Features: "random", DType: DTypeF64}); !errors.Is(err, ErrBadPayload) {
		t.Errorf("bad features: err = %v", err)
	}
	if err := SaveGNN(path, GNNSpec{Net: net, Features: "const", DType: DTypeInt8}); !errors.Is(err, ErrBadPayload) {
		t.Errorf("int8 gnn: err = %v", err)
	}

	if err := SaveGNN(path, GNNSpec{Net: net, Features: "const", DType: DTypeF64}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Any single-byte corruption is rejected at open (full eager CRC).
	for _, off := range []int{6, 20, 4096 + 3, len(raw) - 2} {
		b := append([]byte(nil), raw...)
		b[off] ^= 0xff
		cp := filepath.Join(t.TempDir(), "corrupt.bin")
		if err := os.WriteFile(cp, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenGNN(cp); err == nil {
			t.Errorf("corruption at %d not rejected", off)
		}
	}
	if _, err := OpenEmbeddings(path); !errors.Is(err, ErrBadKind) {
		t.Errorf("OpenEmbeddings on GNN: err = %v, want ErrBadKind", err)
	}
	if _, err := OpenKGE(path); !errors.Is(err, ErrBadKind) {
		t.Errorf("OpenKGE on GNN: err = %v, want ErrBadKind", err)
	}
	if k, v, err := SniffKind(path); err != nil || k != KindGNN || v != 2 {
		t.Errorf("SniffKind = %v, %d, %v; want KindGNN v2", k, v, err)
	}
}

// TestKGEGoldenBytes pins the on-disk prefix of the KGE container so
// accidental layout changes fail loudly.
func TestKGEGoldenBytes(t *testing.T) {
	spec := kgeSpecFixture("transe")
	spec.Lineage = nil
	path := filepath.Join(t.TempDir(), "kge.bin")
	if err := SaveKGE(path, spec); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:4]) != "x2vm" {
		t.Errorf("magic %q", raw[:4])
	}
	if v := binary.LittleEndian.Uint16(raw[4:6]); v != 2 {
		t.Errorf("version %d", v)
	}
	if k := binary.LittleEndian.Uint16(raw[6:8]); Kind(k) != KindKGE {
		t.Errorf("kind %d", k)
	}
	// Header: method string first ("transe", length-prefixed u32).
	if n := binary.LittleEndian.Uint32(raw[16:20]); n != 6 {
		t.Errorf("method length %d", n)
	}
	if string(raw[20:26]) != "transe" {
		t.Errorf("method %q", raw[20:26])
	}
	if raw[26] != 8 {
		t.Errorf("dtype byte %d, want 8 (f64)", raw[26])
	}
	if nE := binary.LittleEndian.Uint32(raw[27:31]); nE != 6 {
		t.Errorf("entity count %d", nE)
	}
	// Entity block starts at the first page boundary.
	first := math.Float64frombits(binary.LittleEndian.Uint64(raw[4096:]))
	if math.Float64bits(first) != math.Float64bits(spec.Entities[0]) {
		t.Errorf("entity block at 4096 holds %v, want %v", first, spec.Entities[0])
	}
}
