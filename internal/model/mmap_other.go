//go:build !linux

package model

import "os"

// Non-Linux builds always take the aligned heap-read fallback; the v2
// format works identically, just without the zero-copy cold start.
func mmapFile(f *os.File, size int) ([]byte, error) { return nil, errNoMmap }

func munmapFile(b []byte) error { return nil }
