package model

// Atomic file writes for every saved artifact. Model and index files are
// served mmap'ed MAP_SHARED, so overwriting a path in place (O_TRUNC on the
// same inode) would mutate the bytes under any generation still mapped —
// exactly the documented fine-tune workflow that re-saves to a fixed path
// and SIGHUPs the daemon. Writing to a temp file in the target's directory
// and renaming over the path gives every save a fresh inode: live mappings
// keep the old file (the kernel frees it when the last mapping drops), and
// a crash mid-save can never leave a torn file at the served path.

import (
	"os"
	"path/filepath"
)

// writeFileAtomic writes data to path via a same-directory temp file and
// rename, so the destination is replaced atomically and never truncated in
// place.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
