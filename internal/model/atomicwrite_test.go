package model

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestResaveDoesNotMutateOpenMapping pins the atomic-write guarantee the
// hot-swap workflow depends on: re-saving a model to the path a live
// generation is serving from must not change the bytes under that
// generation's mmap. Before writeFileAtomic, os.WriteFile truncated the
// same inode and a MAP_SHARED mapping of the old generation read the new
// model's floats — the documented "re-save to a fixed path, SIGHUP"
// fine-tune loop corrupted in-flight reads.
func TestResaveDoesNotMutateOpenMapping(t *testing.T) {
	const rows, cols = 4, 3
	p := filepath.Join(t.TempDir(), "m.x2vm")
	gen := func(g float64) EmbeddingsSpec {
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = g
		}
		return EmbeddingsSpec{Kind: KindNodeEmbedding, Method: "node2vec",
			Rows: rows, Cols: cols, Data: data, DType: DTypeF64}
	}
	if err := SaveEmbeddings(p, gen(1)); err != nil {
		t.Fatal(err)
	}
	e, err := OpenEmbeddings(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Overwrite the served path with a new generation. The open handle
	// must keep reading generation 1 and still pass its whole-file CRC.
	if err := SaveEmbeddings(p, gen(2)); err != nil {
		t.Fatal(err)
	}
	if v := e.Vector(0); v[0] != 1 {
		t.Fatalf("open mapping mutated by re-save: read %v, want generation-1 value 1", v[0])
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("old generation failed CRC after re-save: %v", err)
	}
	e2, err := OpenEmbeddings(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if v := e2.Vector(0); v[0] != 2 {
		t.Fatalf("re-opened path serves %v, want new generation value 2", v[0])
	}

	// A failed or in-progress save must never leave temp litter next to
	// the model once it returns.
	ents, err := os.ReadDir(filepath.Dir(p))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if strings.Contains(ent.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", ent.Name())
		}
	}
}
