package model

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/graph2vec"
	"repro/internal/hom"
	"repro/internal/linalg"
	"repro/internal/word2vec"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "m.bin")
}

// TestWord2VecRoundTrip: save → load must be bit-identical on every
// parameter of both matrices — the acceptance bar for serving from a cold
// daemon instead of retraining.
func TestWord2VecRoundTrip(t *testing.T) {
	corpus := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {1, 3, 0, 2, 4}}
	cfg := word2vec.DefaultConfig()
	cfg.Dim = 9
	m := word2vec.Train(corpus, 5, cfg, rand.New(rand.NewSource(1)))

	p := tmpPath(t)
	if err := SaveWord2Vec(p, m); err != nil {
		t.Fatal(err)
	}
	if k, err := Sniff(p); err != nil || k != KindWord2Vec {
		t.Fatalf("Sniff = %v, %v", k, err)
	}
	got, err := LoadWord2Vec(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != m.Dim || got.Vocab != m.Vocab {
		t.Fatalf("header dim=%d vocab=%d, want %d %d", got.Dim, got.Vocab, m.Dim, m.Vocab)
	}
	for i := range m.In {
		for j := range m.In[i] {
			if got.In[i][j] != m.In[i][j] {
				t.Fatalf("In[%d][%d] = %v, want bit-identical %v", i, j, got.In[i][j], m.In[i][j])
			}
			if got.Out[i][j] != m.Out[i][j] {
				t.Fatalf("Out[%d][%d] = %v, want bit-identical %v", i, j, got.Out[i][j], m.Out[i][j])
			}
		}
	}
}

func TestNodeEmbeddingRoundTrip(t *testing.T) {
	g := graph.Cycle(8)
	e := embed.Node2VecWorkers(g, 6, 0.5, 2, 1, rand.New(rand.NewSource(1)))
	p := tmpPath(t)
	if err := SaveNodeEmbedding(p, e); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNodeEmbedding(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != e.Method {
		t.Errorf("method %q, want %q", got.Method, e.Method)
	}
	if got.Vectors.Rows != e.Vectors.Rows || got.Vectors.Cols != e.Vectors.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Vectors.Rows, got.Vectors.Cols, e.Vectors.Rows, e.Vectors.Cols)
	}
	for i, x := range e.Vectors.Data {
		if got.Vectors.Data[i] != x {
			t.Fatalf("vector datum %d = %v, want bit-identical %v", i, got.Vectors.Data[i], x)
		}
	}
}

func TestGraph2VecRoundTrip(t *testing.T) {
	gs := []*graph.Graph{graph.Cycle(5), graph.Path(6), graph.Complete(4)}
	cfg := graph2vec.DefaultConfig()
	cfg.Epochs = 5
	m := graph2vec.Train(gs, cfg, rand.New(rand.NewSource(2)))
	p := tmpPath(t)
	if err := SaveGraph2Vec(p, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraph2Vec(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gs {
		want := m.Vector(i)
		have := got.Vector(i)
		for j := range want {
			if have[j] != want[j] {
				t.Fatalf("graph %d coord %d = %v, want bit-identical %v", i, j, have[j], want[j])
			}
		}
	}
}

// TestHomClassRoundTrip: the persisted pattern class must rebuild into
// graphs whose compiled corpus vectors are bit-identical to the original
// class's — the property the daemon's /homvec pipeline rests on.
func TestHomClassRoundTrip(t *testing.T) {
	class := hom.StandardClass()
	// Add a labelled, weighted, directed specimen to exercise every field.
	d := graph.NewDirected(3)
	d.SetVertexLabel(1, 7)
	d.AddEdgeFull(0, 1, 2.5, 3)
	d.AddEdge(1, 2)
	class = append(class, d)

	p := tmpPath(t)
	if err := SaveHomClass(p, class); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHomClass(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(class) {
		t.Fatalf("%d graphs, want %d", len(got), len(class))
	}
	for i, g := range class {
		h := got[i]
		if h.N() != g.N() || h.M() != g.M() || h.Directed() != g.Directed() {
			t.Fatalf("graph %d: n=%d m=%d dir=%v, want n=%d m=%d dir=%v",
				i, h.N(), h.M(), h.Directed(), g.N(), g.M(), g.Directed())
		}
		for v := 0; v < g.N(); v++ {
			if h.VertexLabel(v) != g.VertexLabel(v) {
				t.Fatalf("graph %d vertex %d label %d, want %d", i, v, h.VertexLabel(v), g.VertexLabel(v))
			}
		}
		for ei, e := range g.Edges() {
			ge := h.Edges()[ei]
			if ge != e {
				t.Fatalf("graph %d edge %d = %+v, want %+v", i, ei, ge, e)
			}
		}
	}

	// Compiled evaluation agrees coordinate for coordinate.
	target := graph.Random(9, 0.4, rand.New(rand.NewSource(3)))
	want := hom.Compile(hom.StandardClass()).Vector(target)
	have := hom.Compile(got[:len(got)-1]).Vector(target)
	for i := range want {
		if have[i] != want[i] {
			t.Fatalf("restored class pattern %d: %v, want bit-identical %v", i, have[i], want[i])
		}
	}
}

// TestRejection: every container-level failure mode must be a descriptive
// error, never a parse of garbage — the daemon fails closed on bad files.
func TestRejection(t *testing.T) {
	g := graph.Cycle(6)
	e := embed.Node2VecWorkers(g, 4, 1, 1, 1, rand.New(rand.NewSource(1)))
	p := tmpPath(t)
	if err := SaveNodeEmbedding(p, e); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}

	write := func(t *testing.T, b []byte) string {
		t.Helper()
		q := filepath.Join(t.TempDir(), "bad.bin")
		if err := os.WriteFile(q, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return q
	}

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[0] = 'Z'
		if _, err := LoadNodeEmbedding(write(t, b)); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[len(b)/2] ^= 0x40
		if _, err := LoadNodeEmbedding(write(t, b)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := LoadNodeEmbedding(write(t, raw[:len(raw)-5])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("too short", func(t *testing.T) {
		if _, err := LoadNodeEmbedding(write(t, raw[:6])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint16(b[4:6], Version+1)
		// Trailer CRC must be recomputed or the version check is shadowed.
		body := b[:len(b)-4]
		binary.LittleEndian.PutUint32(b[len(b)-4:], crcOf(body))
		if _, err := LoadNodeEmbedding(write(t, b)); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("wrong kind", func(t *testing.T) {
		if _, err := LoadWord2Vec(p); !errors.Is(err, ErrBadKind) {
			t.Errorf("err = %v, want ErrBadKind", err)
		}
		if _, err := LoadHomClass(p); !errors.Is(err, ErrBadKind) {
			t.Errorf("err = %v, want ErrBadKind", err)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, err := LoadNodeEmbedding(filepath.Join(t.TempDir(), "none.bin")); err == nil {
			t.Error("want error for missing file")
		}
	})
}

// TestGoldenBytes pins the version-1 wire format: a fixed tiny model must
// serialise to exactly these bytes, so an accidental format change (field
// order, endianness, header width) fails loudly instead of silently
// orphaning every model file in the fleet.
func TestGoldenBytes(t *testing.T) {
	m := linalg.NewMatrix(1, 2)
	m.Data[0], m.Data[1] = 1, -2
	e := &embed.NodeEmbedding{Vectors: m, Method: "x"}
	p := tmpPath(t)
	if err := SaveNodeEmbedding(p, e); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		'x', '2', 'v', 'm', // magic
		1, 0, // version 1 LE
		2, 0, // kind node-embedding LE
		1, 0, 0, 0, 'x', // method: len=1, "x"
		8,          // float64 precision
		1, 0, 0, 0, // rows
		2, 0, 0, 0, // cols
		0, 0, 0, 0, 0, 0, 0xf0, 0x3f, // 1.0 LE
		0, 0, 0, 0, 0, 0, 0x00, 0xc0, // -2.0 LE
	}
	want = append(want, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(want[len(want)-4:], crcOf(want[:len(want)-4]))
	if len(got) != len(want) {
		t.Fatalf("file is %d bytes, want %d\ngot  %x\nwant %x", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %02x, want %02x\ngot  %x\nwant %x", i, got[i], want[i], got, want)
		}
	}
	back, err := LoadNodeEmbedding(p)
	if err != nil {
		t.Fatal(err)
	}
	if back.Method != "x" || back.Vectors.Data[0] != 1 || back.Vectors.Data[1] != -2 {
		t.Errorf("golden file did not round-trip: %+v", back)
	}
}

// TestFloat32Matrix exercises the 4-byte precision path of the matrix
// block, which trades exactness for half the bytes.
func TestFloat32Matrix(t *testing.T) {
	var e encoder
	data := []float64{0.5, -1.25, 3}
	e.matrix(data, 1, 3, 4)
	d := &decoder{b: e.buf}
	got, rows, cols, err := d.matrix()
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 || cols != 3 {
		t.Fatalf("shape %dx%d", rows, cols)
	}
	for i, x := range data {
		if got[i] != x { // all three are exactly float32-representable
			t.Errorf("datum %d = %v, want %v", i, got[i], x)
		}
	}
}

func crcOf(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}

// TestHomClassRejectsOversizedCounts: counts in the header must be bounded
// by the payload actually present — a crafted file with a valid CRC must
// fail closed instead of triggering a multi-gigabyte allocation.
func TestHomClassRejectsOversizedCounts(t *testing.T) {
	write := func(payload []byte) string {
		p := filepath.Join(t.TempDir(), "evil.bin")
		if err := writeFile(p, KindHomClass, payload); err != nil {
			t.Fatal(err)
		}
		return p
	}
	var e encoder
	e.u32(0xFFFFFFFF) // 4 billion graphs in a 4-byte payload
	if _, err := LoadHomClass(write(e.buf)); !errors.Is(err, ErrBadPayload) {
		t.Errorf("oversized graph count: err = %v, want ErrBadPayload", err)
	}

	var e2 encoder
	e2.u32(1)          // one graph
	e2.u8(0)           // undirected
	e2.u32(0xFFFFFFF0) // with ~4 billion vertices
	if _, err := LoadHomClass(write(e2.buf)); !errors.Is(err, ErrBadPayload) {
		t.Errorf("oversized vertex count: err = %v, want ErrBadPayload", err)
	}

	var e3 encoder
	e3.u32(1)
	e3.u8(0)
	e3.u32(2)
	e3.i64(0)
	e3.i64(0)
	e3.u32(0xFFFFFFF0) // ~4 billion edges
	if _, err := LoadHomClass(write(e3.buf)); !errors.Is(err, ErrBadPayload) {
		t.Errorf("oversized edge count: err = %v, want ErrBadPayload", err)
	}
}

// TestLoadAny: the single-read dispatch entry must return the right
// concrete type per kind and reject garbage like the typed loaders.
func TestLoadAny(t *testing.T) {
	dir := t.TempDir()
	g := graph.Cycle(5)

	np := filepath.Join(dir, "n.bin")
	if err := SaveNodeEmbedding(np, embed.Node2VecWorkers(g, 3, 1, 1, 1, rand.New(rand.NewSource(1)))); err != nil {
		t.Fatal(err)
	}
	v, kind, err := LoadAny(np)
	if err != nil || kind != KindNodeEmbedding {
		t.Fatalf("LoadAny node: %v, %v", kind, err)
	}
	if _, ok := v.(*embed.NodeEmbedding); !ok {
		t.Fatalf("LoadAny node returned %T", v)
	}

	cp := filepath.Join(dir, "c.bin")
	if err := SaveHomClass(cp, []*graph.Graph{graph.Path(3)}); err != nil {
		t.Fatal(err)
	}
	v, kind, err = LoadAny(cp)
	if err != nil || kind != KindHomClass {
		t.Fatalf("LoadAny class: %v, %v", kind, err)
	}
	if _, ok := v.([]*graph.Graph); !ok {
		t.Fatalf("LoadAny class returned %T", v)
	}

	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadAny(bad); err == nil {
		t.Error("LoadAny should reject garbage")
	}
}
