package model

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/linalg"
)

func writeV2(t *testing.T, spec EmbeddingsSpec) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "m.bin")
	if err := SaveEmbeddings(p, spec); err != nil {
		t.Fatal(err)
	}
	return p
}

func openV2(t *testing.T, path string) *Embeddings {
	t.Helper()
	e, err := OpenEmbeddings(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func randomData(rows, cols int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return data
}

// TestV2GoldenBytes pins the version-2 wire layout byte for byte: the
// fixed prefix, the header fields, the page-aligned data offset, and the
// CRC trailer. A layout change breaks every deployed model file — this
// test is the tripwire.
func TestV2GoldenBytes(t *testing.T) {
	data := []float64{1, -2, 0.5, 3}
	p := writeV2(t, EmbeddingsSpec{
		Kind: KindNodeEmbedding, Method: "x", Rows: 2, Cols: 2, Data: data, DType: DTypeF64,
	})
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Prefix: magic, version 2, kind 2.
	if string(b[:4]) != "x2vm" {
		t.Fatalf("magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != 2 {
		t.Fatalf("version %d", v)
	}
	if k := binary.LittleEndian.Uint16(b[6:8]); k != uint16(KindNodeEmbedding) {
		t.Fatalf("kind %d", k)
	}
	// Header: method "x" (4+1), dtype (1), rows+cols (8), four u64 (32),
	// lineage count (4, zero for a fresh model).
	wantHeaderLen := 5 + 1 + 8 + 32 + 4
	if hl := binary.LittleEndian.Uint32(b[8:12]); int(hl) != wantHeaderLen {
		t.Fatalf("header length %d, want %d", hl, wantHeaderLen)
	}
	h := b[16 : 16+wantHeaderLen]
	if binary.LittleEndian.Uint32(h[0:4]) != 1 || h[4] != 'x' {
		t.Fatalf("method field %v", h[:5])
	}
	if h[5] != 8 {
		t.Fatalf("dtype %d, want 8", h[5])
	}
	if r := binary.LittleEndian.Uint32(h[6:10]); r != 2 {
		t.Fatalf("rows %d", r)
	}
	if c := binary.LittleEndian.Uint32(h[10:14]); c != 2 {
		t.Fatalf("cols %d", c)
	}
	dataOff := binary.LittleEndian.Uint64(h[14:22])
	if dataOff != 4096 {
		t.Fatalf("dataOff %d, want the first page boundary", dataOff)
	}
	if dl := binary.LittleEndian.Uint64(h[22:30]); dl != 32 {
		t.Fatalf("dataLen %d, want 32", dl)
	}
	if so := binary.LittleEndian.Uint64(h[30:38]); so != 0 {
		t.Fatalf("scaleOff %d, want 0 for float64", so)
	}
	if lc := binary.LittleEndian.Uint32(h[46:50]); lc != 0 {
		t.Fatalf("lineage count %d, want 0 for a fresh model", lc)
	}
	if len(b) != int(dataOff)+32+4 {
		t.Fatalf("file is %d bytes, want data end + CRC trailer = %d", len(b), int(dataOff)+36)
	}
	// Padding between header and data must be zero.
	for i := 16 + wantHeaderLen; i < int(dataOff); i++ {
		if b[i] != 0 {
			t.Fatalf("padding byte %d = %d, want 0", i, b[i])
		}
	}
	// The data block is raw little-endian float64 bits.
	for i, x := range data {
		if got := math.Float64frombits(binary.LittleEndian.Uint64(b[int(dataOff)+8*i:])); got != x {
			t.Fatalf("datum %d = %v, want %v", i, got, x)
		}
	}
	// And the round trip through the real opener is bit-identical.
	e := openV2(t, p)
	for i := 0; i < 2; i++ {
		v := e.Vector(i)
		if v[0] != data[2*i] || v[1] != data[2*i+1] {
			t.Fatalf("row %d = %v", i, v)
		}
	}
}

func TestV2RoundTripF64BitIdentical(t *testing.T) {
	data := randomData(37, 16, 1)
	p := writeV2(t, EmbeddingsSpec{
		Kind: KindWord2Vec, Method: "word2vec", Rows: 37, Cols: 16, Data: data, DType: DTypeF64,
	})
	e := openV2(t, p)
	if e.Kind != KindWord2Vec || e.Method != "word2vec" || e.Rows != 37 || e.Cols != 16 || e.DType != DTypeF64 {
		t.Fatalf("handle %+v", e)
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("Verify on a clean file: %v", err)
	}
	dst := make([]float64, 16)
	for r := 0; r < 37; r++ {
		e.VectorInto(dst, r)
		for i, x := range dst {
			if x != data[r*16+i] {
				t.Fatalf("row %d dim %d: %v != %v (float64 must round-trip bit-identically)", r, i, x, data[r*16+i])
			}
		}
	}
}

func TestV2RoundTripF32(t *testing.T) {
	data := randomData(9, 5, 2)
	p := writeV2(t, EmbeddingsSpec{
		Kind: KindGraph2Vec, Method: "graph2vec", Rows: 9, Cols: 5, Data: data, DType: DTypeF32,
	})
	e := openV2(t, p)
	for r := 0; r < 9; r++ {
		for i, x := range e.Vector(r) {
			if want := float64(float32(data[r*5+i])); x != want {
				t.Fatalf("row %d dim %d: %v, want the exact float32 image %v", r, i, x, want)
			}
		}
	}
}

// TestV2Int8RoundTripBounds: symmetric per-row quantisation must keep
// every value within scale/2 of its original, map each row's extreme to
// exactly ±127*scale, and keep zero rows exactly zero.
func TestV2Int8RoundTripBounds(t *testing.T) {
	const rows, cols = 20, 24
	data := randomData(rows, cols, 3)
	for i := 0; i < cols; i++ {
		data[5*cols+i] = 0 // an all-zero row
	}
	p := writeV2(t, EmbeddingsSpec{
		Kind: KindNodeEmbedding, Method: "node2vec", Rows: rows, Cols: cols, Data: data, DType: DTypeInt8,
	})
	e := openV2(t, p)
	if e.DType != DTypeInt8 {
		t.Fatalf("dtype %v", e.DType)
	}
	for r := 0; r < rows; r++ {
		row := data[r*cols : (r+1)*cols]
		var maxAbs float64
		for _, x := range row {
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
			}
		}
		scale := float64(float32(maxAbs / 127))
		got := e.Vector(r)
		for i, x := range row {
			if maxAbs == 0 {
				if got[i] != 0 {
					t.Fatalf("zero row %d dim %d dequantised to %v", r, i, got[i])
				}
				continue
			}
			if d := math.Abs(got[i] - x); d > scale/2+1e-12 {
				t.Fatalf("row %d dim %d: |%v - %v| = %v exceeds scale/2 = %v", r, i, got[i], x, d, scale/2)
			}
			if math.Abs(x) == maxAbs && math.Abs(math.Abs(got[i])-127*scale) > 1e-12 {
				t.Fatalf("row %d extreme %v dequantised to %v, want ±127*scale = %v", r, x, got[i], 127*scale)
			}
		}
	}
}

// TestV2VersionNegotiation: OpenEmbeddings reads version-1 files through
// the legacy decoder — same vectors, heap-backed, never mapped.
func TestV2VersionNegotiation(t *testing.T) {
	g := graph.Cycle(6)
	ne := &embed.NodeEmbedding{Vectors: linalg.NewMatrix(6, 3), Method: "node2vec"}
	for i := range ne.Vectors.Data {
		ne.Vectors.Data[i] = float64(i) * 0.25
	}
	p := filepath.Join(t.TempDir(), "v1.bin")
	if err := SaveNodeEmbedding(p, ne); err != nil {
		t.Fatal(err)
	}
	e := openV2(t, p)
	if e.Mapped {
		t.Error("v1 files decode to heap, Mapped must be false")
	}
	if e.Kind != KindNodeEmbedding || e.Method != "node2vec" || e.Rows != g.N() || e.Cols != 3 {
		t.Fatalf("handle %+v", e)
	}
	for r := 0; r < 6; r++ {
		for i, x := range e.Vector(r) {
			if x != ne.Vectors.At(r, i) {
				t.Fatalf("row %d dim %d: %v != %v", r, i, x, ne.Vectors.At(r, i))
			}
		}
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("Verify on a v1 handle: %v", err)
	}
}

// TestV2CorruptionDetection: a flipped header byte fails at open; a
// flipped vector byte passes the O(1) open (by design) and fails Verify.
func TestV2CorruptionDetection(t *testing.T) {
	data := randomData(8, 8, 4)
	p := writeV2(t, EmbeddingsSpec{
		Kind: KindNodeEmbedding, Method: "node2vec", Rows: 8, Cols: 8, Data: data, DType: DTypeF64,
	})
	orig, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(off int) string {
		b := append([]byte(nil), orig...)
		b[off] ^= 0x40
		cp := filepath.Join(t.TempDir(), "corrupt.bin")
		if err := os.WriteFile(cp, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return cp
	}

	// Header corruption: rejected at open.
	if _, err := OpenEmbeddings(corrupt(20)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt header: err = %v, want ErrCorrupt", err)
	}
	// Vector payload corruption: open succeeds, Verify fails — under mmap.
	e, err := OpenEmbeddings(corrupt(4096 + 13))
	if err != nil {
		t.Fatalf("payload corruption must not fail the O(1) open: %v", err)
	}
	defer e.Close()
	if err := e.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt payload: Verify = %v, want ErrCorrupt", err)
	}
	// Truncation inside the data block: rejected at open.
	tp := filepath.Join(t.TempDir(), "trunc.bin")
	if err := os.WriteFile(tp, orig[:4096+16], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEmbeddings(tp); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated file: err = %v, want ErrCorrupt", err)
	}
}

// TestV2HeapFallback: X2VEC_NO_MMAP forces the aligned heap read; vectors
// and Verify must behave identically to the mapped path.
func TestV2HeapFallback(t *testing.T) {
	data := randomData(12, 7, 5)
	p := writeV2(t, EmbeddingsSpec{
		Kind: KindNodeEmbedding, Method: "node2vec", Rows: 12, Cols: 7, Data: data, DType: DTypeF64,
	})
	t.Setenv("X2VEC_NO_MMAP", "1")
	e := openV2(t, p)
	if e.Mapped {
		t.Fatal("X2VEC_NO_MMAP=1 must force the heap path")
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		for i, x := range e.Vector(r) {
			if x != data[r*7+i] {
				t.Fatalf("heap fallback row %d dim %d: %v != %v", r, i, x, data[r*7+i])
			}
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestV2MmapUsedOnLinux(t *testing.T) {
	if os.Getenv("X2VEC_NO_MMAP") != "" {
		t.Skip("mmap disabled by environment")
	}
	p := writeV2(t, EmbeddingsSpec{
		Kind: KindNodeEmbedding, Method: "node2vec", Rows: 4, Cols: 4,
		Data: randomData(4, 4, 6), DType: DTypeF64,
	})
	e := openV2(t, p)
	if !e.Mapped {
		t.Skip("mmap unavailable on this platform; heap fallback covered elsewhere")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("munmap: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
}

func TestSaveEmbeddingsRejectsBadSpecs(t *testing.T) {
	p := filepath.Join(t.TempDir(), "m.bin")
	data := randomData(2, 2, 7)
	cases := []struct {
		name string
		spec EmbeddingsSpec
		want error
	}{
		{"hom class kind", EmbeddingsSpec{Kind: KindHomClass, Rows: 2, Cols: 2, Data: data, DType: DTypeF64}, ErrBadKind},
		{"unknown dtype", EmbeddingsSpec{Kind: KindWord2Vec, Rows: 2, Cols: 2, Data: data, DType: DType(3)}, ErrBadPayload},
		{"short data", EmbeddingsSpec{Kind: KindWord2Vec, Rows: 3, Cols: 2, Data: data, DType: DTypeF64}, ErrBadPayload},
		{"negative shape", EmbeddingsSpec{Kind: KindWord2Vec, Rows: -1, Cols: 2, Data: data, DType: DTypeF64}, ErrBadPayload},
	}
	for _, tc := range cases {
		if err := SaveEmbeddings(p, tc.spec); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestOpenEmbeddingsRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := OpenEmbeddings(write("magic.bin", []byte("nope5678"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := OpenEmbeddings(write("short.bin", []byte("x2"))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short file: %v", err)
	}
	if _, err := OpenEmbeddings(write("future.bin", []byte{'x', '2', 'v', 'm', 9, 0, 1, 0})); !errors.Is(err, ErrBadVersion) {
		t.Errorf("future version: %v", err)
	}
	// A v1 hom class is a valid model file but not an embedding table.
	hp := filepath.Join(dir, "class.bin")
	if err := SaveHomClass(hp, []*graph.Graph{graph.Path(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEmbeddings(hp); !errors.Is(err, ErrBadKind) {
		t.Errorf("hom class: %v", err)
	}
}

// TestVectorIntoZeroAlloc: the serving hot path must not allocate for any
// dtype — the daemon calls it per request.
func TestVectorIntoZeroAlloc(t *testing.T) {
	data := randomData(6, 32, 8)
	dst := make([]float64, 32)
	for _, dt := range []DType{DTypeF64, DTypeF32, DTypeInt8} {
		p := writeV2(t, EmbeddingsSpec{
			Kind: KindNodeEmbedding, Method: "node2vec", Rows: 6, Cols: 32, Data: data, DType: dt,
		})
		e := openV2(t, p)
		if avg := testing.AllocsPerRun(100, func() {
			e.VectorInto(dst, 3)
		}); avg != 0 {
			t.Errorf("%v VectorInto allocates %v times per call, want 0", dt, avg)
		}
	}
}

// TestInt8QualityGate: the train-time gate must pass on realistic
// embedding magnitudes and report degraded similarity, not panic, on
// pathological rows.
func TestInt8QualityGate(t *testing.T) {
	mean, min := Int8Quality(randomData(50, 16, 9), 50, 16)
	if mean < 0.999 || min < 0.99 {
		t.Errorf("int8 quality on Gaussian rows: mean %v min %v, expected to clear the gate", mean, min)
	}
	// One dominant value starves the rest of the row of resolution: the
	// small components sit below half a quantisation step and vanish.
	bad := make([]float64, 64)
	bad[0] = 1
	for i := 1; i < len(bad); i++ {
		bad[i] = 0.003
	}
	_, minBad := Int8Quality(bad, 1, 64)
	if minBad > 0.9999 {
		t.Errorf("starved row reported min cosine %v; the gate must see the damage", minBad)
	}
	if m, n := Int8Quality(nil, 0, 4); m != 1 || n != 1 {
		t.Errorf("empty table: %v %v", m, n)
	}
}
