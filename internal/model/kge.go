package model

// KindKGE files carry a knowledge-graph embedding in the version-2
// container: the same fixed prefix (magic, version, kind, header length,
// header CRC) and whole-file CRC trailer as embedding tables, with a
// KGE-specific header and three aligned blocks —
//
//	entOff    (4096-aligned)  entity matrix, NumEntities×Dim of dtype
//	entScale  (64-aligned)    per-row float32 scales (int8 only)
//	relOff    (64-aligned)    relation matrix, NumRelations×RelWidth of dtype
//	relScale  (64-aligned)    per-row float32 scales (int8 only)
//	tripleOff (64-aligned)    training triples, 3×uint32 LE each
//
// RelWidth is Dim for TransE translations and Dim² for RESCAL mixing
// matrices. The training triples ride along so the serving layer can answer
// /link-predict in the filtered setting (excluding known facts) without a
// side channel back to the training corpus. Like embedding tables, the
// entity block is page-aligned so serving can mmap the file and score
// candidates straight off the mapping; structural validation is eager,
// the whole-file CRC is Verify's deferred job.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"repro/internal/kge"
)

// KGESpec describes a knowledge-graph embedding for SaveKGE.
type KGESpec struct {
	Method       string // "transe" or "rescal"
	NumEntities  int
	NumRelations int
	Dim          int
	Entities     []float64 // NumEntities×Dim, row-major float64 images
	Relations    []float64 // NumRelations×RelWidth, row-major
	Triples      [][3]int  // training triples for filtered serving
	DType        DType
	Lineage      []LineageEntry
}

// RelWidth returns the relation row width implied by the scoring method.
func (s *KGESpec) RelWidth() int {
	if s.Method == "rescal" {
		return s.Dim * s.Dim
	}
	return s.Dim
}

// KGESpecFrom flattens a trained model through its scoring view — the one
// surface all three trainers (TransE, TransE32, RESCAL) share — into a
// saveable spec. triples become the filtered-serving exclusion set.
func KGESpecFrom(v *kge.KGView, triples [][3]int, dtype DType) KGESpec {
	spec := KGESpec{
		Method:       v.Method,
		NumEntities:  v.NumEntities,
		NumRelations: v.NumRelations,
		Dim:          v.Dim,
		Triples:      triples,
		DType:        dtype,
	}
	relWidth := v.RelWidth()
	spec.Entities = make([]float64, v.NumEntities*v.Dim)
	for i := 0; i < v.NumEntities; i++ {
		v.Entity(i, spec.Entities[i*v.Dim:(i+1)*v.Dim])
	}
	spec.Relations = make([]float64, v.NumRelations*relWidth)
	for i := 0; i < v.NumRelations; i++ {
		v.Relation(i, spec.Relations[i*relWidth:(i+1)*relWidth])
	}
	return spec
}

// SaveKGE writes a version-2 KGE model file atomically.
func SaveKGE(path string, spec KGESpec) error {
	switch spec.Method {
	case "transe", "rescal":
	default:
		return fmt.Errorf("%w: unknown KGE method %q", ErrBadPayload, spec.Method)
	}
	if spec.NumEntities <= 0 || spec.NumRelations <= 0 || spec.Dim <= 0 {
		return fmt.Errorf("%w: KGE shape %d entities / %d relations / dim %d",
			ErrBadPayload, spec.NumEntities, spec.NumRelations, spec.Dim)
	}
	relWidth := spec.RelWidth()
	if len(spec.Entities) != spec.NumEntities*spec.Dim {
		return fmt.Errorf("%w: entity matrix has %d values, want %d", ErrBadPayload, len(spec.Entities), spec.NumEntities*spec.Dim)
	}
	if len(spec.Relations) != spec.NumRelations*relWidth {
		return fmt.Errorf("%w: relation matrix has %d values, want %d", ErrBadPayload, len(spec.Relations), spec.NumRelations*relWidth)
	}
	for _, t := range spec.Triples {
		if t[0] < 0 || t[0] >= spec.NumEntities || t[2] < 0 || t[2] >= spec.NumEntities ||
			t[1] < 0 || t[1] >= spec.NumRelations {
			return fmt.Errorf("%w: triple %v outside the entity/relation ranges", ErrBadPayload, t)
		}
	}
	var width int
	switch spec.DType {
	case DTypeF64:
		width = 8
	case DTypeF32:
		width = 4
	case DTypeInt8:
		width = 1
	default:
		return fmt.Errorf("%w: matrix precision %d", ErrBadPayload, uint8(spec.DType))
	}

	entLen := spec.NumEntities * spec.Dim * width
	relLen := spec.NumRelations * relWidth * width
	tripleLen := len(spec.Triples) * 12
	var entScaleLen, relScaleLen int
	if spec.DType == DTypeInt8 {
		entScaleLen = spec.NumEntities * 4
		relScaleLen = spec.NumRelations * 4
	}

	headerLen := 4 + len(spec.Method) + 1 + 5*4 + 10*8 + 4
	for _, le := range spec.Lineage {
		headerLen += 4 + 4 + 4 + len(le.Note)
	}
	entOff := alignUp(v2HeaderOff+headerLen, v2DataAlign)
	cursor := entOff + entLen
	entScaleOff := 0
	if entScaleLen > 0 {
		entScaleOff = alignUp(cursor, v2ScaleAlign)
		cursor = entScaleOff + entScaleLen
	}
	relOff := alignUp(cursor, v2ScaleAlign)
	cursor = relOff + relLen
	relScaleOff := 0
	if relScaleLen > 0 {
		relScaleOff = alignUp(cursor, v2ScaleAlign)
		cursor = relScaleOff + relScaleLen
	}
	tripleOff := alignUp(cursor, v2ScaleAlign)
	end := tripleOff + tripleLen

	var h encoder
	h.str(spec.Method)
	h.u8(uint8(spec.DType))
	h.u32(uint32(spec.NumEntities))
	h.u32(uint32(spec.NumRelations))
	h.u32(uint32(spec.Dim))
	h.u32(uint32(relWidth))
	h.u32(uint32(len(spec.Triples)))
	for _, off := range []int{entOff, entLen, entScaleOff, entScaleLen, relOff, relLen, relScaleOff, relScaleLen, tripleOff, tripleLen} {
		h.u64(uint64(off))
	}
	h.u32(uint32(len(spec.Lineage)))
	for _, le := range spec.Lineage {
		h.u32(le.Parent)
		h.u32(le.Seq)
		h.str(le.Note)
	}
	if len(h.buf) != headerLen {
		return fmt.Errorf("model: internal error: KGE header %d bytes, computed %d", len(h.buf), headerLen)
	}

	out := make([]byte, end, end+4)
	copy(out, magic[:])
	binary.LittleEndian.PutUint16(out[4:], Version2)
	binary.LittleEndian.PutUint16(out[6:], uint16(KindKGE))
	binary.LittleEndian.PutUint32(out[8:], uint32(headerLen))
	binary.LittleEndian.PutUint32(out[12:], crc32.ChecksumIEEE(h.buf))
	copy(out[v2HeaderOff:], h.buf)

	writeBlock := func(data []float64, rows, cols, off, scaleOff int) {
		db := out[off : off+rows*cols*width]
		switch spec.DType {
		case DTypeF64:
			for i, x := range data {
				binary.LittleEndian.PutUint64(db[i*8:], math.Float64bits(x))
			}
		case DTypeF32:
			for i, x := range data {
				binary.LittleEndian.PutUint32(db[i*4:], math.Float32bits(float32(x)))
			}
		case DTypeInt8:
			sb := out[scaleOff : scaleOff+rows*4]
			for r := 0; r < rows; r++ {
				scale := quantizeRowInt8(data[r*cols:(r+1)*cols], db[r*cols:(r+1)*cols])
				binary.LittleEndian.PutUint32(sb[r*4:], math.Float32bits(scale))
			}
		}
	}
	writeBlock(spec.Entities, spec.NumEntities, spec.Dim, entOff, entScaleOff)
	writeBlock(spec.Relations, spec.NumRelations, relWidth, relOff, relScaleOff)
	tb := out[tripleOff : tripleOff+tripleLen]
	for i, t := range spec.Triples {
		binary.LittleEndian.PutUint32(tb[i*12:], uint32(t[0]))
		binary.LittleEndian.PutUint32(tb[i*12+4:], uint32(t[1]))
		binary.LittleEndian.PutUint32(tb[i*12+8:], uint32(t[2]))
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return writeFileAtomic(path, out)
}

// kgeBlock is one dequantisable matrix view over the file bytes.
type kgeBlock struct {
	cols   int
	dtype  DType
	f64    []float64
	f32    []float32
	q8     []int8
	scales []float32
}

// rowInto dequantises row r into dst (len ≥ cols) without allocating.
//
//x2vec:hotpath
func (b *kgeBlock) rowInto(dst []float64, r int) {
	c := b.cols
	dst = dst[:c]
	switch b.dtype {
	case DTypeF64:
		copy(dst, b.f64[r*c:(r+1)*c])
	case DTypeF32:
		src := b.f32[r*c : (r+1)*c : (r+1)*c]
		for i, x := range src {
			dst[i] = float64(x)
		}
	case DTypeInt8:
		src := b.q8[r*c : (r+1)*c : (r+1)*c]
		s := float64(b.scales[r])
		for i, x := range src {
			dst[i] = float64(x) * s
		}
	}
}

// KGEModel is a read-only serving handle over a saved knowledge-graph
// embedding: mmap-backed matrix views plus the known-fact index for
// filtered answering. The caller owns the handle and must Close it.
type KGEModel struct {
	Method       string
	NumEntities  int
	NumRelations int
	Dim          int
	RelWidth     int
	DType        DType
	Mapped       bool
	Lineage      []LineageEntry
	Triples      [][3]int

	ent, rel kgeBlock
	// knownTails[h<<32|r] lists known tails of (h, r, ?); knownHeads[r<<32|t]
	// lists known heads of (?, r, t). Built once at open from the stored
	// triples, so filtered /link-predict needs no per-query pass.
	knownTails map[uint64][]int
	knownHeads map[uint64][]int

	file    []byte
	mapping []byte
}

// OpenKGE opens a KindKGE model file for serving in O(header + triples)
// time, with the matrix blocks left in place (mmap'ed when possible).
func OpenKGE(path string) (*KGEModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: file too short for a model header", ErrCorrupt)
	}
	if string(head[:4]) != string(magic[:]) {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMagic, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != Version2 {
		f.Close()
		return nil, fmt.Errorf("%w: file version %d, KGE models are version 2", ErrBadVersion, v)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := int(st.Size())
	var b []byte
	mapped := false
	if os.Getenv("X2VEC_NO_MMAP") == "" {
		if m, merr := mmapFile(f, size); merr == nil {
			b, mapped = m, true
		}
	}
	if b == nil {
		if b, err = readAligned(f, size); err != nil {
			f.Close()
			return nil, err
		}
	}
	f.Close()
	m, err := parseKGE(b, mapped)
	if err != nil {
		if mapped {
			munmapFile(b)
		}
		return nil, err
	}
	return m, nil
}

func parseKGE(b []byte, mapped bool) (*KGEModel, error) {
	if len(b) < v2HeaderOff+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short for a v2 model file", ErrCorrupt, len(b))
	}
	if kind := Kind(binary.LittleEndian.Uint16(b[6:8])); kind != KindKGE {
		return nil, fmt.Errorf("%w: cannot serve link prediction from a %v model", ErrBadKind, kind)
	}
	headerLen := int(binary.LittleEndian.Uint32(b[8:12]))
	if headerLen < 0 || v2HeaderOff+headerLen+4 > len(b) {
		return nil, fmt.Errorf("%w: header length %d exceeds file", ErrCorrupt, headerLen)
	}
	hb := b[v2HeaderOff : v2HeaderOff+headerLen]
	if got, want := crc32.ChecksumIEEE(hb), binary.LittleEndian.Uint32(b[12:16]); got != want {
		return nil, fmt.Errorf("%w: header checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	d := &decoder{b: hb}
	method, err := d.str()
	if err != nil {
		return nil, err
	}
	dt, err := d.u8()
	if err != nil {
		return nil, err
	}
	var dims [5]uint32 // numEntities, numRelations, dim, relWidth, numTriples
	for i := range dims {
		if dims[i], err = d.u32(); err != nil {
			return nil, err
		}
	}
	var offs [10]uint64
	for i := range offs {
		s, err := d.need(8)
		if err != nil {
			return nil, err
		}
		offs[i] = binary.LittleEndian.Uint64(s)
	}
	lineage, err := decodeLineage(d)
	if err != nil {
		return nil, err
	}

	nE, nR := int(dims[0]), int(dims[1])
	dim, relWidth, nT := int(dims[2]), int(dims[3]), int(dims[4])
	dtype := DType(dt)
	var width int
	switch dtype {
	case DTypeF64:
		width = 8
	case DTypeF32:
		width = 4
	case DTypeInt8:
		width = 1
	default:
		return nil, fmt.Errorf("%w: matrix precision %d", ErrBadPayload, dt)
	}
	wantRelWidth := dim
	if method == "rescal" {
		wantRelWidth = dim * dim
	} else if method != "transe" {
		return nil, fmt.Errorf("%w: unknown KGE method %q", ErrBadPayload, method)
	}
	if nE <= 0 || nR <= 0 || dim <= 0 || relWidth != wantRelWidth || nT < 0 {
		return nil, fmt.Errorf("%w: KGE shape %d/%d dim %d relWidth %d triples %d", ErrCorrupt, nE, nR, dim, relWidth, nT)
	}
	// Overflow-safe size bounds before any multiplication-derived offsets.
	maxVals := (len(b) - v2HeaderOff) / width
	if dim != 0 && (nE > maxVals/dim || nR > maxVals/relWidth) {
		return nil, fmt.Errorf("%w: matrices exceed payload", ErrBadPayload)
	}
	if nT > (len(b)-v2HeaderOff)/12 {
		return nil, fmt.Errorf("%w: %d triples exceed payload", ErrBadPayload, nT)
	}

	entOff, entLen := int(offs[0]), int(offs[1])
	entScaleOff, entScaleLen := int(offs[2]), int(offs[3])
	relOff, relLen := int(offs[4]), int(offs[5])
	relScaleOff, relScaleLen := int(offs[6]), int(offs[7])
	tripleOff, tripleLen := int(offs[8]), int(offs[9])

	checkBlock := func(name string, off, length, want, align, floor int) error {
		if length != want || off%align != 0 || off < floor || off+length > len(b)-4 {
			return fmt.Errorf("%w: %s block [%d,%d) invalid", ErrCorrupt, name, off, off+length)
		}
		return nil
	}
	if err := checkBlock("entity", entOff, entLen, nE*dim*width, v2DataAlign, v2HeaderOff+headerLen); err != nil {
		return nil, err
	}
	if err := checkBlock("relation", relOff, relLen, nR*relWidth*width, v2ScaleAlign, entOff+entLen); err != nil {
		return nil, err
	}
	if err := checkBlock("triple", tripleOff, tripleLen, nT*12, v2ScaleAlign, relOff+relLen); err != nil {
		return nil, err
	}
	if dtype == DTypeInt8 {
		if err := checkBlock("entity scale", entScaleOff, entScaleLen, nE*4, v2ScaleAlign, entOff+entLen); err != nil {
			return nil, err
		}
		if err := checkBlock("relation scale", relScaleOff, relScaleLen, nR*4, v2ScaleAlign, relOff+relLen); err != nil {
			return nil, err
		}
	} else if entScaleOff != 0 || entScaleLen != 0 || relScaleOff != 0 || relScaleLen != 0 {
		return nil, fmt.Errorf("%w: scale blocks on a %v model", ErrCorrupt, dtype)
	}

	m := &KGEModel{
		Method: method, NumEntities: nE, NumRelations: nR,
		Dim: dim, RelWidth: relWidth, DType: dtype, Mapped: mapped,
		Lineage: lineage, file: b,
		ent: kgeBlock{cols: dim, dtype: dtype},
		rel: kgeBlock{cols: relWidth, dtype: dtype},
	}
	if mapped {
		m.mapping = b
	}
	view := func(blk *kgeBlock, off, scaleOff, rows, cols int) {
		n := rows * cols
		if n == 0 {
			return
		}
		switch dtype {
		case DTypeF64:
			blk.f64 = unsafe.Slice((*float64)(unsafe.Pointer(&b[off])), n)
		case DTypeF32:
			blk.f32 = unsafe.Slice((*float32)(unsafe.Pointer(&b[off])), n)
		case DTypeInt8:
			blk.q8 = unsafe.Slice((*int8)(unsafe.Pointer(&b[off])), n)
			blk.scales = unsafe.Slice((*float32)(unsafe.Pointer(&b[scaleOff])), rows)
		}
	}
	view(&m.ent, entOff, entScaleOff, nE, dim)
	view(&m.rel, relOff, relScaleOff, nR, relWidth)

	m.Triples = make([][3]int, nT)
	m.knownTails = make(map[uint64][]int)
	m.knownHeads = make(map[uint64][]int)
	tb := b[tripleOff : tripleOff+tripleLen]
	for i := range m.Triples {
		h := int(binary.LittleEndian.Uint32(tb[i*12:]))
		r := int(binary.LittleEndian.Uint32(tb[i*12+4:]))
		t := int(binary.LittleEndian.Uint32(tb[i*12+8:]))
		if h >= nE || t >= nE || r >= nR {
			return nil, fmt.Errorf("%w: stored triple (%d,%d,%d) outside the entity/relation ranges", ErrCorrupt, h, r, t)
		}
		m.Triples[i] = [3]int{h, r, t}
		m.knownTails[uint64(h)<<32|uint64(r)] = append(m.knownTails[uint64(h)<<32|uint64(r)], t)
		m.knownHeads[uint64(r)<<32|uint64(t)] = append(m.knownHeads[uint64(r)<<32|uint64(t)], h)
	}
	return m, nil
}

// decodeLineage reads the trailing lineage chain of a v2-family header
// (empty when the header ends before the field).
func decodeLineage(d *decoder) ([]LineageEntry, error) {
	if d.remaining() == 0 {
		return nil, nil
	}
	cnt, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(cnt) > d.remaining()/12 {
		return nil, fmt.Errorf("%w: lineage count %d exceeds header", ErrCorrupt, cnt)
	}
	lineage := make([]LineageEntry, cnt)
	for i := range lineage {
		if lineage[i].Parent, err = d.u32(); err != nil {
			return nil, err
		}
		if lineage[i].Seq, err = d.u32(); err != nil {
			return nil, err
		}
		if lineage[i].Note, err = d.str(); err != nil {
			return nil, err
		}
	}
	return lineage, nil
}

// EntityInto dequantises entity row i into dst (len ≥ Dim).
//
//x2vec:hotpath
func (m *KGEModel) EntityInto(dst []float64, i int) { m.ent.rowInto(dst, i) }

// RelationInto dequantises relation row i into dst (len ≥ RelWidth).
func (m *KGEModel) RelationInto(dst []float64, i int) { m.rel.rowInto(dst, i) }

// View wraps the stored matrices in the storage-agnostic scoring view the
// answering paths consume.
func (m *KGEModel) View() *kge.KGView {
	return &kge.KGView{
		Method:       m.Method,
		NumEntities:  m.NumEntities,
		NumRelations: m.NumRelations,
		Dim:          m.Dim,
		Entity:       func(i int, dst []float64) { m.ent.rowInto(dst, i) },
		Relation:     func(i int, dst []float64) { m.rel.rowInto(dst, i) },
	}
}

// KnownTails returns the stored tails of (h, r, ?) — the filtered setting's
// exclusion set. The returned slice is shared; callers must not mutate it.
func (m *KGEModel) KnownTails(h, r int) []int { return m.knownTails[uint64(h)<<32|uint64(r)] }

// KnownHeads returns the stored heads of (?, r, t).
func (m *KGEModel) KnownHeads(r, t int) []int { return m.knownHeads[uint64(r)<<32|uint64(t)] }

// Verify runs the deferred whole-file CRC (see Embeddings.Verify).
func (m *KGEModel) Verify() error {
	if m.file == nil {
		return nil
	}
	body, trailer := m.file[:len(m.file)-4], m.file[len(m.file)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	return nil
}

// Close releases the file mapping; the handle's views are invalid after.
func (m *KGEModel) Close() error {
	mp := m.mapping
	m.mapping = nil
	m.ent, m.rel = kgeBlock{}, kgeBlock{}
	m.file = nil
	if mp == nil {
		return nil
	}
	return munmapFile(mp)
}
