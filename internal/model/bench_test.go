package model

// Save/load benchmarks backing two of this repo's perf claims.
//
// ModelSave vs ModelSaveReflect: the encoder used to funnel every scalar
// through binary.Write, whose reflection path allocates an interface and
// runs a type switch per value — per float64 of a big matrix. The append
// encoder (model.go) emits the identical bytes; ModelSaveReflect keeps the
// old path alive inline here as the baseline.
//
// ColdStartV1Decode vs ColdStartV2Open: a v1 file must be read and decoded
// in full (every float converted, the whole file CRC'd) before the first
// vector can be served; a v2 file is mmap'ed and served zero-copy, so
// OpenEmbeddings is O(header) no matter how large the matrix is. The
// ≥50 MB model below makes the asymptotic gap measurable: E7's acceptance
// bar is ≥10x. CI runs these at -benchtime=1x as a smoke job
// (BENCH_Serve.json artifact).

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/embed"
	"repro/internal/linalg"
)

// benchEmbedding builds a deterministic rows x cols node embedding without
// seeding a PRNG: value variety is enough to defeat trivial compression or
// branch-prediction artifacts, bit-exactness is enough to compare codecs.
func benchEmbedding(rows, cols int) *embed.NodeEmbedding {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float64(i%997)/997 - 0.5
	}
	return &embed.NodeEmbedding{Vectors: m, Method: "bench"}
}

const benchRows, benchCols = 2048, 128 // ~2 MB payload: codec-bound, not syscall-bound

func BenchmarkModelSave(b *testing.B) {
	e := benchEmbedding(benchRows, benchCols)
	path := filepath.Join(b.TempDir(), "m.bin")
	b.SetBytes(int64(benchRows * benchCols * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SaveNodeEmbedding(path, e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelSaveReflect is the pre-append encoder, byte-for-byte: a
// bytes.Buffer fed through binary.Write for every field including each
// matrix element. Kept as a benchmark-only baseline so the speedup of the
// append encoder stays measured instead of remembered.
func BenchmarkModelSaveReflect(b *testing.B) {
	e := benchEmbedding(benchRows, benchCols)
	path := filepath.Join(b.TempDir(), "m.bin")
	save := func() error {
		var buf bytes.Buffer
		le := binary.LittleEndian
		binary.Write(&buf, le, uint32(len(e.Method)))
		buf.WriteString(e.Method)
		binary.Write(&buf, le, uint8(8))
		binary.Write(&buf, le, uint32(e.Vectors.Rows))
		binary.Write(&buf, le, uint32(e.Vectors.Cols))
		for _, x := range e.Vectors.Data {
			binary.Write(&buf, le, x)
		}
		out := make([]byte, 0, buf.Len()+12)
		out = append(out, magic[:]...)
		out = le.AppendUint16(out, Version)
		out = le.AppendUint16(out, uint16(KindNodeEmbedding))
		out = append(out, buf.Bytes()...)
		out = le.AppendUint32(out, crc32.ChecksumIEEE(out))
		return os.WriteFile(path, out, 0o644)
	}
	b.SetBytes(int64(benchRows * benchCols * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := save(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelLoad(b *testing.B) {
	path := filepath.Join(b.TempDir(), "m.bin")
	if err := SaveNodeEmbedding(path, benchEmbedding(benchRows, benchCols)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(benchRows * benchCols * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadNodeEmbedding(path); err != nil {
			b.Fatal(err)
		}
	}
}

// coldRows x coldCols x 8 bytes ≈ 52 MB — past the ISSUE's ≥50 MB bar.
const coldRows, coldCols = 65536, 100

func coldStartData() []float64 {
	data := make([]float64, coldRows*coldCols)
	for i := range data {
		data[i] = float64(i%613)/613 - 0.5
	}
	return data
}

func BenchmarkColdStartV1Decode(b *testing.B) {
	path := filepath.Join(b.TempDir(), "v1.bin")
	m := linalg.NewMatrix(coldRows, coldCols)
	copy(m.Data, coldStartData())
	if err := SaveNodeEmbedding(path, &embed.NodeEmbedding{Vectors: m, Method: "bench"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := OpenEmbeddings(path)
		if err != nil {
			b.Fatal(err)
		}
		if v := e.Vector(coldRows - 1); len(v) != coldCols {
			b.Fatal("bad vector")
		}
		e.Close()
	}
}

func BenchmarkColdStartV2Open(b *testing.B) {
	path := filepath.Join(b.TempDir(), "v2.bin")
	err := SaveEmbeddings(path, EmbeddingsSpec{
		Kind: KindNodeEmbedding, Method: "bench",
		Rows: coldRows, Cols: coldCols,
		Data: coldStartData(), DType: DTypeF64,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := OpenEmbeddings(path)
		if err != nil {
			b.Fatal(err)
		}
		if v := e.Vector(coldRows - 1); len(v) != coldCols {
			b.Fatal("bad vector")
		}
		e.Close()
	}
}
