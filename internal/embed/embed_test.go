package embed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

func TestAdjacencySpectralShape(t *testing.T) {
	g := graph.Cycle(6)
	e := AdjacencySpectral(g, 2)
	if e.Vectors.Rows != 6 || e.Dim() != 2 {
		t.Fatalf("embedding shape %dx%d", e.Vectors.Rows, e.Dim())
	}
	if e.Method != "adjacency-svd" {
		t.Error("method name")
	}
}

func TestSpectralEmbeddingRespectsSymmetry(t *testing.T) {
	// On a path, symmetric vertices should be at equal distance from the
	// centre in embedding space.
	g := graph.Path(5)
	e := DistanceSimilaritySpectral(g, 2, 2)
	d04 := e.InducedDistance(0, 2) - e.InducedDistance(4, 2)
	if math.Abs(d04) > 1e-6 {
		t.Errorf("symmetric vertices at different embedded distances: %v", d04)
	}
}

func TestDistanceSimilaritySeparatesCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g, truth := graph.SBM([]int{12, 12}, 0.9, 0.05, rng)
	e := DistanceSimilaritySpectral(g, 2, 2)
	nmi := CommunityRecovery(e, truth, 2, rng)
	if nmi < 0.8 {
		t.Errorf("spectral similarity embedding NMI=%v, want >= 0.8 on a strong SBM", nmi)
	}
}

func TestNode2VecSeparatesCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	g, truth := graph.SBM([]int{12, 12}, 0.9, 0.02, rng)
	e := Node2Vec(g, 8, 1, 0.5, rng)
	nmi := CommunityRecovery(e, truth, 2, rng)
	if nmi < 0.7 {
		t.Errorf("node2vec NMI=%v, want >= 0.7 on a strong SBM", nmi)
	}
}

func TestDeepWalkKarateClub(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g, factions := graph.KarateClub()
	e := DeepWalk(g, 8, rng)
	nmi := CommunityRecovery(e, factions, 2, rng)
	if nmi < 0.3 {
		t.Errorf("DeepWalk on karate club NMI=%v, want >= 0.3", nmi)
	}
}

func TestEncoderDecoderReducesReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	g := graph.Cycle(8)
	s := linalg.FromRows(g.AdjacencyMatrix())
	e0 := EncoderDecoder(s, 3, 0, 0.01, rand.New(rand.NewSource(84)))
	e1 := EncoderDecoder(s, 3, 300, 0.01, rand.New(rand.NewSource(84)))
	if ReconstructionError(e1, s) >= ReconstructionError(e0, s) {
		t.Errorf("training should reduce reconstruction error: %v -> %v",
			ReconstructionError(e0, s), ReconstructionError(e1, s))
	}
	_ = rng
}

func TestRandomWalksProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	g := graph.Cycle(5)
	walks := RandomWalks(g, WalkConfig{WalksPerNode: 3, WalkLength: 10, P: 1, Q: 1}, rng)
	if len(walks) != 15 {
		t.Fatalf("got %d walks, want 15", len(walks))
	}
	for _, w := range walks {
		if len(w) != 10 {
			t.Errorf("walk length %d, want 10", len(w))
		}
		for i := 1; i < len(w); i++ {
			if !g.HasEdge(w[i-1], w[i]) {
				t.Fatalf("walk uses a non-edge %d-%d", w[i-1], w[i])
			}
		}
	}
}

func TestBiasedWalkReturnsMoreWithSmallP(t *testing.T) {
	// With tiny P the walk returns to the previous node very often.
	rng := rand.New(rand.NewSource(86))
	g := graph.Star(5) // walks on a star alternate centre-leaf
	returns := func(p, q float64) int {
		count := 0
		for trial := 0; trial < 200; trial++ {
			w := biasedWalk(g, 1, WalkConfig{WalkLength: 3, P: p, Q: q}, rng)
			if len(w) == 3 && w[2] == w[0] {
				count++
			}
		}
		return count
	}
	many := returns(0.01, 1)
	few := returns(100, 1)
	if many <= few {
		t.Errorf("small P should cause more returns: %d vs %d", many, few)
	}
}

func TestWalkSimilarityRows(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	g := graph.Cycle(4)
	s := WalkSimilarity(g, 3, 200, rng)
	for v := 0; v < 4; v++ {
		var rowSum float64
		for w := 0; w < 4; w++ {
			rowSum += s.At(v, w)
		}
		if math.Abs(rowSum-1) > 1e-9 {
			t.Errorf("walk similarity row %d sums to %v", v, rowSum)
		}
	}
	// Odd cycle: a 3-step walk from v cannot end at v (bipartite-like parity
	// does not apply to C4: 3 steps from v lands at odd distance).
	if s.At(0, 0) != 0 {
		t.Errorf("3-step walk on C4 cannot return to start: %v", s.At(0, 0))
	}
}

func TestInducedDistanceIsMetricOnEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	g := graph.Random(8, 0.5, rng)
	e := AdjacencySpectral(g, 3)
	for a := 0; a < 8; a++ {
		if e.InducedDistance(a, a) > 1e-12 {
			t.Error("self distance should be 0")
		}
		for b := 0; b < 8; b++ {
			if math.Abs(e.InducedDistance(a, b)-e.InducedDistance(b, a)) > 1e-12 {
				t.Error("induced distance should be symmetric")
			}
			for c := 0; c < 8; c++ {
				if e.InducedDistance(a, c) > e.InducedDistance(a, b)+e.InducedDistance(b, c)+1e-9 {
					t.Error("triangle inequality violated")
				}
			}
		}
	}
}

// The f32/f64 equivalence gate at the embedding level: trained from the same
// seed, the float32 fused-kernel path walks the same trajectory as the f64
// oracle (identical walk corpus, identical RNG consumption), so every node
// vector must stay nearly parallel to its float64 twin and community
// recovery must match.
func TestNode2VecF32QualityMatchesF64(t *testing.T) {
	g, truth := graph.SBM([]int{12, 12}, 0.9, 0.02, rand.New(rand.NewSource(82)))
	e64 := Node2VecWorkers(g, 8, 1, 0.5, 1, rand.New(rand.NewSource(55)))
	e32 := Node2VecWorkersF32(g, 8, 1, 0.5, 1, rand.New(rand.NewSource(55)))
	if e32.Vectors.Rows != e64.Vectors.Rows || e32.Vectors.Cols != e64.Vectors.Cols {
		t.Fatalf("shape mismatch: f32 %dx%d, f64 %dx%d",
			e32.Vectors.Rows, e32.Vectors.Cols, e64.Vectors.Rows, e64.Vectors.Cols)
	}
	minCos, sumCos := 1.0, 0.0
	for v := 0; v < g.N(); v++ {
		c := linalg.CosineSimilarity(e32.Vector(v), e64.Vector(v))
		sumCos += c
		if c < minCos {
			minCos = c
		}
	}
	mean := sumCos / float64(g.N())
	if mean < 0.995 || minCos < 0.98 {
		t.Errorf("f32 node2vec diverged from the f64 oracle: mean cosine %.5f (want >= 0.995), min %.5f (want >= 0.98)", mean, minCos)
	}
	rng := rand.New(rand.NewSource(7))
	nmi64 := CommunityRecovery(e64, truth, 2, rng)
	nmi32 := CommunityRecovery(e32, truth, 2, rand.New(rand.NewSource(7)))
	if nmi32 < 0.7 {
		t.Errorf("f32 node2vec NMI=%v, want >= 0.7 on a strong SBM", nmi32)
	}
	if math.Abs(nmi32-nmi64) > 0.1 {
		t.Errorf("f32 community recovery NMI %v strays from f64 oracle %v", nmi32, nmi64)
	}
}
