package embed

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/sgns"
)

// LINE implements the first-order proximity variant of the LINE embedding
// cited in Section 2.1: node pairs joined by an edge should have similar
// vectors, trained by logistic loss with negative sampling over edges —
// matrix factorisation of the adjacency matrix in disguise, without random
// walks.
//
// It runs on the shared sgns engine: every edge becomes a two-token
// "sentence" [u, v], trained skip-gram with window 1 and a single Shared
// vector set (first-order LINE has no separate context matrix), in the
// engine's sequential mode so the result stays a pure function of the rng
// seed like every other rng-taking embedding here. Token frequency equals
// vertex degree, so the engine's alias sampler draws negatives from the
// degree^0.75 distribution of the original LINE paper.
func LINE(g *graph.Graph, d, epochs int, lr float64, rng *rand.Rand) *NodeEmbedding {
	n := g.N()
	vec := linalg.NewMatrix(n, d)
	if n == 0 {
		return &NodeEmbedding{Vectors: vec, Method: "line"}
	}
	edges := g.Edges()
	sents := make([][]int, len(edges))
	flat := make([]int, 2*len(edges))
	for i, e := range edges {
		s := flat[2*i : 2*i+2]
		s[0], s[1] = e.U, e.V
		sents[i] = s
	}
	m := sgns.Train(sents, n, sgns.Config{
		Dim:             d,
		Window:          1,
		Negative:        5,
		LearningRate:    lr,
		MinLearningRate: lr / 100,
		Epochs:          epochs,
		UnigramPower:    0.75,
		Workers:         1,
		Shared:          true,
	}, rng.Int63())
	copy(vec.Data, m.In)
	return &NodeEmbedding{Vectors: vec, Method: "line"}
}
