package embed

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// LINE implements the first-order proximity variant of the LINE embedding
// cited in Section 2.1: node pairs joined by an edge should have similar
// vectors, trained by logistic loss with negative sampling over edges —
// matrix factorisation of the adjacency matrix in disguise, without random
// walks.
func LINE(g *graph.Graph, d, epochs int, lr float64, rng *rand.Rand) *NodeEmbedding {
	n := g.N()
	vec := linalg.NewMatrix(n, d)
	for i := range vec.Data {
		vec.Data[i] = (rng.Float64()*2 - 1) * 0.5 / float64(d)
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return &NodeEmbedding{Vectors: vec, Method: "line"}
	}
	const negative = 5
	for e := 0; e < epochs; e++ {
		for _, edge := range edges {
			lineUpdate(vec, edge.U, edge.V, 1, lr)
			for k := 0; k < negative; k++ {
				w := rng.Intn(n)
				if w != edge.V && !g.HasEdge(edge.U, w) {
					lineUpdate(vec, edge.U, w, 0, lr)
				}
			}
		}
	}
	return &NodeEmbedding{Vectors: vec, Method: "line"}
}

func lineUpdate(vec *linalg.Matrix, u, v int, label, lr float64) {
	a, b := vec.Row(u), vec.Row(v)
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	p := 1 / (1 + math.Exp(-clamp(dot)))
	g := (label - p) * lr
	for i := range a {
		ai := a[i]
		a[i] += g * b[i]
		b[i] += g * ai
	}
}

func clamp(x float64) float64 {
	if x > 30 {
		return 30
	}
	if x < -30 {
		return -30
	}
	return x
}
