// Package embed implements the node-embedding techniques of Section 2.1 and
// Figure 2 of the paper: spectral (SVD) factorisation of the adjacency
// matrix, factorisation of the exp(−c·dist) similarity matrix, a generic
// encoder-decoder trained by gradient descent, and the random-walk methods
// DeepWalk and node2vec built on the word2vec SGNS engine.
package embed

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/word2vec"
)

// NodeEmbedding maps each vertex of one graph to a d-dimensional vector.
type NodeEmbedding struct {
	Vectors *linalg.Matrix // row v = embedding of vertex v
	Method  string
}

// Vector returns the embedding of vertex v.
func (e *NodeEmbedding) Vector(v int) []float64 { return e.Vectors.Row(v) }

// Dim returns the embedding dimension.
func (e *NodeEmbedding) Dim() int { return e.Vectors.Cols }

// InducedDistance is the distance measure dist_f induced by the embedding:
// the Euclidean distance between vertex images.
func (e *NodeEmbedding) InducedDistance(v, w int) float64 {
	a, b := e.Vector(v), e.Vector(w)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AdjacencySpectral is the Figure 2(a) embedding: the rank-d spectral
// factorisation of the adjacency matrix (first-order proximity).
func AdjacencySpectral(g *graph.Graph, d int) *NodeEmbedding {
	s := linalg.FromRows(g.AdjacencyMatrix())
	return &NodeEmbedding{Vectors: linalg.SpectralEmbedding(s, d), Method: "adjacency-svd"}
}

// DistanceSimilaritySpectral is the Figure 2(b) embedding: factorise the
// similarity matrix S_vw = exp(−c·dist(v,w)); unreachable pairs get
// similarity 0.
func DistanceSimilaritySpectral(g *graph.Graph, d int, c float64) *NodeEmbedding {
	n := g.N()
	dist := g.AllPairsDistances()
	s := linalg.NewMatrix(n, n)
	for v := 0; v < n; v++ {
		for w := 0; w < n; w++ {
			if dist[v][w] >= 0 {
				s.Set(v, w, math.Exp(-c*float64(dist[v][w])))
			}
		}
	}
	return &NodeEmbedding{Vectors: linalg.SpectralEmbedding(s, d), Method: "exp-distance-svd"}
}

// EncoderDecoder trains an explicit embedding matrix X to minimise
// ‖XXᵀ − S‖²_F by gradient descent — the shallow encoder-decoder framing the
// paper uses for all Section 2.1 methods. S must be symmetric.
func EncoderDecoder(s *linalg.Matrix, d, iters int, lr float64, rng *rand.Rand) *NodeEmbedding {
	n := s.Rows
	x := linalg.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() * 0.1
	}
	for it := 0; it < iters; it++ {
		// grad = 4 (XXᵀ − S) X
		diff := x.Mul(x.T()).Sub(s)
		grad := diff.Mul(x).Scale(4)
		x = x.Sub(grad.Scale(lr))
	}
	return &NodeEmbedding{Vectors: x, Method: "encoder-decoder"}
}

// ReconstructionError returns ‖XXᵀ − S‖_F for an embedding against a target
// similarity matrix.
func ReconstructionError(e *NodeEmbedding, s *linalg.Matrix) float64 {
	return linalg.Frobenius(e.Vectors.Mul(e.Vectors.T()).Sub(s))
}

// WalkConfig controls random-walk corpus generation.
type WalkConfig struct {
	WalksPerNode int
	WalkLength   int
	P, Q         float64 // node2vec return / in-out parameters; 1,1 = DeepWalk
	Workers      int     // walk-generation worker cap; 0 = GOMAXPROCS (corpora are deterministic either way)
}

// RandomWalks samples second-order biased random walks in the node2vec
// sense: the unnormalised probability of stepping from v to x, having
// arrived from t, is 1/P if x = t, 1 if x is adjacent to t, and 1/Q
// otherwise. P = Q = 1 yields uniform walks (DeepWalk); non-unit edge
// weights bias the first-order proposal in proportion.
//
// Generation fans out over linalg.ParallelFor: the graph is snapshotted
// once into the walk engine's CSR form (per-vertex alias tables when
// weighted, rejection sampling for the (P, Q) bias — see walks.go), and
// every walk runs on its own counter-based PRNG seeded from (rng, walk
// index). The corpus is therefore deterministic for a fixed rng seed, with
// walks in (start vertex, repeat) order, regardless of worker scheduling.
func RandomWalks(g *graph.Graph, cfg WalkConfig, rng *rand.Rand) [][]int {
	n := g.N()
	if n == 0 || cfg.WalksPerNode <= 0 {
		return nil
	}
	wk := newWalker(g, cfg.P, cfg.Q)
	base := uint64(rng.Int63())
	total := n * cfg.WalksPerNode
	walks := make([][]int, total)
	linalg.ParallelForWorkers(cfg.Workers, total, func(i int) {
		walks[i] = wk.walk(i/cfg.WalksPerNode, cfg.WalkLength, walkRand(base, i))
	})
	corpus := make([][]int, 0, total)
	for _, w := range walks {
		if len(w) > 1 {
			corpus = append(corpus, w)
		}
	}
	return corpus
}

// biasedWalk is the legacy sequential walk sampler: a weight slice is
// allocated and renormalised at every step. It is kept as the distribution
// oracle for the walk engine's rejection sampler (see walks_test.go).
func biasedWalk(g *graph.Graph, start int, cfg WalkConfig, rng *rand.Rand) []int {
	walk := []int{start}
	if g.Degree(start) == 0 {
		return walk
	}
	cur := start
	prev := -1
	for len(walk) < cfg.WalkLength {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		var next int
		if prev < 0 || (cfg.P == 1 && cfg.Q == 1) {
			next = nbrs[rng.Intn(len(nbrs))]
		} else {
			weights := make([]float64, len(nbrs))
			var total float64
			for i, x := range nbrs {
				switch {
				case x == prev:
					weights[i] = 1 / cfg.P
				case g.HasEdge(x, prev):
					weights[i] = 1
				default:
					weights[i] = 1 / cfg.Q
				}
				total += weights[i]
			}
			r := rng.Float64() * total
			acc := 0.0
			next = nbrs[len(nbrs)-1]
			for i, w := range weights {
				acc += w
				if r <= acc {
					next = nbrs[i]
					break
				}
			}
		}
		walk = append(walk, next)
		prev = cur
		cur = next
	}
	return walk
}

// DeepWalk embeds nodes by SGNS over uniform random walks (Perozzi et al.).
func DeepWalk(g *graph.Graph, d int, rng *rand.Rand) *NodeEmbedding {
	return Node2Vec(g, d, 1, 1, rng)
}

// Node2Vec embeds nodes by SGNS over (p,q)-biased walks (Grover-Leskovec),
// the Figure 2(c) method. It trains in the engine's sequential mode so the
// result stays a pure function of the rng seed (core.Node2VecEmbedder and
// the seeded experiments rely on that); use Node2VecWorkers to opt into
// Hogwild parallel training.
func Node2Vec(g *graph.Graph, d int, p, q float64, rng *rand.Rand) *NodeEmbedding {
	return Node2VecWorkers(g, d, p, q, 1, rng)
}

// Node2VecWorkers is Node2Vec with an explicit worker count covering both
// stages: walk generation fans out over at most `workers` goroutines
// (walk corpora are deterministic at any worker count — per-walk counter
// PRNGs) and SGNS trains with the same cap, where 0 uses GOMAXPROCS
// Hogwild workers and 1 trains sequentially, bit-reproducible for a fixed
// rng seed.
func Node2VecWorkers(g *graph.Graph, d int, p, q float64, workers int, rng *rand.Rand) *NodeEmbedding {
	walks := RandomWalks(g, WalkConfig{WalksPerNode: 10, WalkLength: 20, P: p, Q: q, Workers: workers}, rng)
	cfg := word2vec.DefaultConfig()
	cfg.Dim = d
	cfg.Window = 5
	cfg.Workers = workers
	model := word2vec.Train(walks, g.N(), cfg, rng)
	x := linalg.NewMatrix(g.N(), d)
	for v := 0; v < g.N(); v++ {
		copy(x.Row(v), model.Vector(v))
	}
	return &NodeEmbedding{Vectors: x, Method: "node2vec"}
}

// Node2VecWorkersF32 is Node2VecWorkers on the float32 fused-kernel SGNS
// engine: the same walk corpus (bit-identical for a fixed rng seed at any
// worker count), trained through sgns.Train32. The returned embedding holds
// the exact float64 images of the float32 parameters, so saving it with a
// float32 model block is lossless. The float64 Node2VecWorkers path remains
// the quality oracle (see TestNode2VecF32QualityMatchesF64).
func Node2VecWorkersF32(g *graph.Graph, d int, p, q float64, workers int, rng *rand.Rand) *NodeEmbedding {
	walks := RandomWalks(g, WalkConfig{WalksPerNode: 10, WalkLength: 20, P: p, Q: q, Workers: workers}, rng)
	cfg := word2vec.DefaultConfig()
	cfg.Dim = d
	cfg.Window = 5
	cfg.Workers = workers
	model := word2vec.Train32(walks, g.N(), cfg, rng)
	x := linalg.NewMatrix(g.N(), d)
	copy(x.Data, model.Float64())
	return &NodeEmbedding{Vectors: x, Method: "node2vec"}
}

// Node2VecFineTuneF32 continues node2vec training from a previous
// embedding instead of a random init: walks are sampled from the current
// (possibly mutated) graph exactly like Node2VecWorkersF32, but the SGNS
// input matrix warm-starts from the rows of warm — typically a saved
// model's table reloaded after the graph changed — and trains for only
// `epochs` passes. Because untouched regions of a mutated graph yield
// walk windows the prior model already fits, a small epoch budget (the
// dynamic pipeline uses ≤ 25% of the fresh-training default) recovers
// fresh-training quality; TestWarmStartRecoversCommunities pins that on
// an SBM perturbation. warm must be g.N() x d and is never mutated.
func Node2VecFineTuneF32(g *graph.Graph, d int, p, q float64, workers, epochs int, warm *linalg.Matrix, rng *rand.Rand) (*NodeEmbedding, error) {
	if warm == nil || warm.Rows != g.N() || warm.Cols != d {
		return nil, fmt.Errorf("embed: warm start must be %dx%d to fine-tune this graph", g.N(), d)
	}
	if epochs <= 0 {
		return nil, fmt.Errorf("embed: fine-tune needs a positive epoch budget, got %d", epochs)
	}
	walks := RandomWalks(g, WalkConfig{WalksPerNode: 10, WalkLength: 20, P: p, Q: q, Workers: workers}, rng)
	cfg := word2vec.DefaultConfig()
	cfg.Dim = d
	cfg.Window = 5
	cfg.Workers = workers
	cfg.Epochs = epochs
	w32 := make([]float32, len(warm.Data))
	for i, x := range warm.Data {
		w32[i] = float32(x)
	}
	model, err := word2vec.FineTune32(walks, g.N(), cfg, rng, w32)
	if err != nil {
		return nil, err
	}
	x := linalg.NewMatrix(g.N(), d)
	copy(x.Data, model.Float64())
	return &NodeEmbedding{Vectors: x, Method: "node2vec"}, nil
}

// WalkSimilarity estimates the implicit similarity matrix the random-walk
// methods factorise: S_vw = probability that a fixed-length uniform walk
// from v visits w, estimated from samples.
func WalkSimilarity(g *graph.Graph, walkLen, samples int, rng *rand.Rand) *linalg.Matrix {
	n := g.N()
	s := linalg.NewMatrix(n, n)
	for v := 0; v < n; v++ {
		for t := 0; t < samples; t++ {
			cur := v
			for step := 0; step < walkLen; step++ {
				nbrs := g.Neighbors(cur)
				if len(nbrs) == 0 {
					break
				}
				cur = nbrs[rng.Intn(len(nbrs))]
			}
			s.Set(v, cur, s.At(v, cur)+1)
		}
		for w := 0; w < n; w++ {
			s.Set(v, w, s.At(v, w)/float64(samples))
		}
	}
	return s
}

// CommunityRecovery clusters an embedding with k-means and scores it
// against ground-truth communities by NMI.
func CommunityRecovery(e *NodeEmbedding, truth []int, k int, rng *rand.Rand) float64 {
	assign := linalg.KMeans(e.Vectors, k, rng)
	return linalg.NMI(truth, assign)
}
