package embed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sgns"
)

// Parallel walk generation must be deterministic for a fixed seed: the
// per-walk counter-based PRNGs depend only on (seed, walk index), never on
// worker scheduling.
func TestRandomWalksDeterministic(t *testing.T) {
	g, _ := graph.SBM([]int{15, 15}, 0.6, 0.05, rand.New(rand.NewSource(90)))
	cfg := WalkConfig{WalksPerNode: 5, WalkLength: 12, P: 0.5, Q: 2}
	a := RandomWalks(g, cfg, rand.New(rand.NewSource(91)))
	b := RandomWalks(g, cfg, rand.New(rand.NewSource(91)))
	if len(a) != len(b) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("walk %d lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("walk %d diverges at step %d", i, j)
			}
		}
	}
}

// The rejection-sampled walker must realise the same single-step (p, q)
// transition distribution as the legacy exact-scan oracle.
func TestWalkerStepMatchesLegacyDistribution(t *testing.T) {
	g := graph.Petersen()
	p, q := 0.25, 4.0
	wk := newWalker(g, p, q)
	prev, cur := 0, g.Neighbors(0)[0]

	// Exact distribution, legacy formula.
	nbrs := g.Neighbors(cur)
	want := make(map[int]float64)
	var total float64
	for _, x := range nbrs {
		w := 1 / q
		if x == prev {
			w = 1 / p
		} else if g.HasEdge(x, prev) {
			w = 1
		}
		want[x] = w
		total += w
	}
	for x := range want {
		want[x] /= total
	}

	const draws = 200000
	counts := make(map[int]int)
	r := sgns.NewFastRand(12345)
	for i := 0; i < draws; i++ {
		counts[wk.step(cur, prev, r)]++
	}
	for x, wantP := range want {
		gotP := float64(counts[x]) / draws
		if math.Abs(gotP-wantP) > 0.01 {
			t.Errorf("next=%d: empirical %v vs exact %v", x, gotP, wantP)
		}
	}
}

// Mirrors TestBiasedWalkReturnsMoreWithSmallP for the engine path: tiny P
// makes the walker return to the previous vertex far more often.
func TestWalkerReturnsMoreWithSmallP(t *testing.T) {
	g := graph.Star(5)
	returns := func(p, q float64) int {
		wk := newWalker(g, p, q)
		count := 0
		for trial := 0; trial < 400; trial++ {
			r := sgns.NewFastRand(uint64(trial)*0x9e3779b97f4a7c15 + 1)
			w := wk.walk(1, 3, r)
			if len(w) == 3 && w[2] == w[0] {
				count++
			}
		}
		return count
	}
	many := returns(0.01, 1)
	few := returns(100, 1)
	if many <= few {
		t.Errorf("small P should cause more returns: %d vs %d", many, few)
	}
}

// Non-unit edge weights bias the first-order proposal via the per-vertex
// alias tables: a heavy edge dominates the step distribution.
func TestWalkerRespectsEdgeWeights(t *testing.T) {
	g := graph.New(3)
	g.AddWeightedEdge(0, 1, 9)
	g.AddWeightedEdge(0, 2, 1)
	wk := newWalker(g, 1, 1)
	r := sgns.NewFastRand(777)
	heavy := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if wk.step(0, -1, r) == 1 {
			heavy++
		}
	}
	got := float64(heavy) / draws
	if math.Abs(got-0.9) > 0.01 {
		t.Errorf("heavy edge taken with probability %v, want ~0.9", got)
	}
}

// Degenerate walk lengths must not panic (regression: make with cap <
// len): the corpus just comes back empty, like the legacy sampler's.
func TestRandomWalksZeroLength(t *testing.T) {
	g := graph.Cycle(4)
	for _, l := range []int{0, -3, 1} {
		walks := RandomWalks(g, WalkConfig{WalksPerNode: 2, WalkLength: l, P: 1, Q: 1}, rand.New(rand.NewSource(1)))
		if len(walks) != 0 {
			t.Errorf("WalkLength=%d: got %d walks, want an empty corpus", l, len(walks))
		}
	}
}

// The multi-worker parallel-quality gate: Hogwild node2vec must recover SBM
// communities as well as the sequential deterministic baseline.
func TestParallelNode2VecCommunityGate(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	g, truth := graph.SBM([]int{12, 12}, 0.9, 0.02, rng)
	seq := Node2VecWorkers(g, 8, 1, 0.5, 1, rand.New(rand.NewSource(96)))
	par := Node2VecWorkers(g, 8, 1, 0.5, 4, rand.New(rand.NewSource(96)))
	seqNMI := CommunityRecovery(seq, truth, 2, rand.New(rand.NewSource(97)))
	parNMI := CommunityRecovery(par, truth, 2, rand.New(rand.NewSource(97)))
	if seqNMI < 0.7 {
		t.Errorf("sequential baseline NMI=%v, want >= 0.7", seqNMI)
	}
	if parNMI < seqNMI-0.15 {
		t.Errorf("parallel node2vec NMI=%v fell below sequential baseline %v - 0.15", parNMI, seqNMI)
	}
}

// Workers: 1 node2vec is end-to-end reproducible: deterministic walks plus
// the engine's sequential mode.
func TestSequentialNode2VecDeterministic(t *testing.T) {
	g, _ := graph.SBM([]int{10, 10}, 0.8, 0.05, rand.New(rand.NewSource(98)))
	a := Node2VecWorkers(g, 6, 2, 0.5, 1, rand.New(rand.NewSource(99)))
	b := Node2VecWorkers(g, 6, 2, 0.5, 1, rand.New(rand.NewSource(99)))
	for i := range a.Vectors.Data {
		if a.Vectors.Data[i] != b.Vectors.Data[i] {
			t.Fatal("Workers:1 node2vec must be bit-identical under a fixed seed")
		}
	}
}
