package embed

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/sgns"
)

// The walk engine behind RandomWalks: a CSR adjacency snapshot with sorted
// neighbour lists, per-vertex alias tables for weighted proposal sampling,
// and rejection sampling for the node2vec second-order (p, q) bias — the
// legacy path allocated and renormalised a weight slice at every step. Each
// walk runs on its own counter-based PRNG seeded from (base, walk index),
// so a parallel corpus is deterministic for a fixed seed regardless of how
// the scheduler interleaves workers.

// walker holds the preprocessed graph for biased random walks.
type walker struct {
	offsets []int32       // n+1 CSR offsets into nbrs/wts
	nbrs    []int32       // neighbour lists, sorted per vertex (binary-searchable)
	wts     []float64     // edge weights aligned with nbrs; nil when all are 1
	alias   []*sgns.Alias // per-vertex proposal tables; nil when unweighted
	p, q    float64
	biased  bool    // (p, q) != (1, 1): second-order bias active
	maxBias float64 // max(1/p, 1, 1/q), the rejection envelope
}

// rejectionTries bounds the rejection-sampling loop before falling back to
// the exact weighted scan; with reasonable (p, q) the expected number of
// proposals is a small constant, the fallback only matters for extreme
// bias ratios on adversarial neighbourhoods.
const rejectionTries = 32

func newWalker(g *graph.Graph, p, q float64) *walker {
	if p <= 0 {
		p = 1
	}
	if q <= 0 {
		q = 1
	}
	n := g.N()
	w := &walker{offsets: make([]int32, n+1), p: p, q: q, biased: p != 1 || q != 1}
	w.maxBias = 1
	if 1/p > w.maxBias {
		w.maxBias = 1 / p
	}
	if 1/q > w.maxBias {
		w.maxBias = 1 / q
	}
	total := 0
	for v := 0; v < n; v++ {
		total += len(g.Arcs(v))
	}
	w.nbrs = make([]int32, 0, total)
	edges := g.Edges()
	weighted := false
	wts := make([]float64, 0, total)
	for v := 0; v < n; v++ {
		arcs := g.Arcs(v)
		start := len(w.nbrs)
		for _, a := range arcs {
			w.nbrs = append(w.nbrs, int32(a.To))
			wt := edges[a.Edge].Weight
			if wt != 1 {
				weighted = true
			}
			wts = append(wts, wt)
		}
		seg := w.nbrs[start:]
		segW := wts[start:]
		sort.Sort(&nbrSort{seg, segW})
		w.offsets[v+1] = int32(len(w.nbrs))
	}
	if weighted {
		w.wts = wts
		w.alias = make([]*sgns.Alias, n)
		for v := 0; v < n; v++ {
			lo, hi := w.offsets[v], w.offsets[v+1]
			if lo < hi {
				w.alias[v] = sgns.NewAlias(wts[lo:hi])
			}
		}
	}
	return w
}

// nbrSort sorts a neighbour segment and its weights in lockstep.
type nbrSort struct {
	n []int32
	w []float64
}

func (s *nbrSort) Len() int           { return len(s.n) }
func (s *nbrSort) Less(i, j int) bool { return s.n[i] < s.n[j] }
func (s *nbrSort) Swap(i, j int) {
	s.n[i], s.n[j] = s.n[j], s.n[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// adjacent reports whether x is a neighbour of v, by binary search in v's
// sorted neighbour list.
func (w *walker) adjacent(v, x int) bool {
	lo, hi := int(w.offsets[v]), int(w.offsets[v+1])
	t := int32(x)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case w.nbrs[mid] < t:
			lo = mid + 1
		case w.nbrs[mid] > t:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// bias is the node2vec second-order factor for stepping to x having
// arrived at the current vertex from prev.
func (w *walker) bias(x, prev int) float64 {
	switch {
	case x == prev:
		return 1 / w.p
	case w.adjacent(prev, x):
		return 1
	default:
		return 1 / w.q
	}
}

// propose draws a neighbour of cur from the first-order distribution:
// uniform on an unweighted graph, edge-weight alias table otherwise.
func (w *walker) propose(cur int, rng *sgns.FastRand) int {
	lo := int(w.offsets[cur])
	deg := int(w.offsets[cur+1]) - lo
	if w.alias == nil {
		return int(w.nbrs[lo+rng.Intn(deg)])
	}
	return int(w.nbrs[lo+w.alias[cur].Pick(rng.Intn(deg), rng.Float64())])
}

// step samples the next vertex, or returns -1 at a sink. The biased case
// proposes from the first-order distribution and accepts with probability
// bias/maxBias — O(1) per accepted step, no per-step weight slice.
func (w *walker) step(cur, prev int, rng *sgns.FastRand) int {
	if w.offsets[cur+1] == w.offsets[cur] {
		return -1
	}
	if prev < 0 || !w.biased {
		return w.propose(cur, rng)
	}
	for try := 0; try < rejectionTries; try++ {
		x := w.propose(cur, rng)
		if rng.Float64()*w.maxBias <= w.bias(x, prev) {
			return x
		}
	}
	return w.exactStep(cur, prev, rng)
}

// exactStep is the allocation-free exact fallback: two passes over the
// neighbour segment, weighting each candidate by edge weight times bias.
func (w *walker) exactStep(cur, prev int, rng *sgns.FastRand) int {
	lo, hi := int(w.offsets[cur]), int(w.offsets[cur+1])
	var total float64
	for i := lo; i < hi; i++ {
		wt := 1.0
		if w.wts != nil {
			wt = w.wts[i]
		}
		total += wt * w.bias(int(w.nbrs[i]), prev)
	}
	r := rng.Float64() * total
	var acc float64
	for i := lo; i < hi; i++ {
		wt := 1.0
		if w.wts != nil {
			wt = w.wts[i]
		}
		acc += wt * w.bias(int(w.nbrs[i]), prev)
		if r <= acc {
			return int(w.nbrs[i])
		}
	}
	return int(w.nbrs[hi-1])
}

// walk samples one walk of up to length vertices from start (always at
// least the start vertex itself, matching the legacy sampler).
func (w *walker) walk(start, length int, rng *sgns.FastRand) []int {
	if length < 1 {
		length = 1
	}
	walk := make([]int, 1, length)
	walk[0] = start
	cur, prev := start, -1
	for len(walk) < length {
		next := w.step(cur, prev, rng)
		if next < 0 {
			break
		}
		walk = append(walk, next)
		prev, cur = cur, next
	}
	return walk
}
