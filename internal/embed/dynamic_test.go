package embed

// Differential pinning for incremental walk maintenance: after any
// mutation sequence, a WalkSet's corpus must be bit-identical to a
// from-scratch RandomWalks call on the final graph with the same master
// seed — and walks that never visit a mutated endpoint must be the very
// same step sequences they were before the mutation.

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func walksEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkWalkSetMatchesScratch asserts the maintained corpus equals a fresh
// RandomWalks run on the current graph with the same master seed.
func checkWalkSetMatchesScratch(t *testing.T, ws *WalkSet, seed int64) {
	t.Helper()
	scratch := RandomWalks(ws.g, ws.cfg, rand.New(rand.NewSource(seed)))
	got := ws.Corpus()
	if len(got) != len(scratch) {
		t.Fatalf("corpus size: incremental %d, from-scratch %d", len(got), len(scratch))
	}
	for i := range scratch {
		if !walksEqual(got[i], scratch[i]) {
			t.Fatalf("corpus walk %d diverged:\nincremental %v\nfrom-scratch %v", i, got[i], scratch[i])
		}
	}
}

// dynamicWalkConfigs covers the three walker regimes: uniform (DeepWalk),
// second-order biased (node2vec), and biased with non-unit edge weights
// in play (alias-table proposals).
var dynamicWalkConfigs = []struct {
	name     string
	cfg      WalkConfig
	weighted bool // sprinkle non-unit edge weights into the mutations
}{
	{"deepwalk", WalkConfig{WalksPerNode: 3, WalkLength: 8, P: 1, Q: 1}, false},
	{"node2vec", WalkConfig{WalksPerNode: 3, WalkLength: 8, P: 0.5, Q: 2}, false},
	{"node2vec-weighted", WalkConfig{WalksPerNode: 2, WalkLength: 6, P: 2, Q: 0.5}, true},
}

// TestDifferentialWalkInvalidation drives random insert/delete sequences
// and checks the full from-scratch equality after every step, for every
// walker regime.
func TestDifferentialWalkInvalidation(t *testing.T) {
	for _, tc := range dynamicWalkConfigs {
		t.Run(tc.name, func(t *testing.T) {
			const seed = 99
			rng := rand.New(rand.NewSource(7))
			g := graph.Random(14, 0.2, rng)
			ws, err := NewWalkSet(g, tc.cfg, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			checkWalkSetMatchesScratch(t, ws, seed)
			for step := 0; step < 40; step++ {
				var u, v int
				if g.M() > 0 && rng.Float64() < 0.4 {
					e := g.Edges()[rng.Intn(g.M())]
					u, v = e.U, e.V
					if !g.RemoveEdge(u, v) {
						t.Fatalf("RemoveEdge(%d,%d) lost a listed edge", u, v)
					}
				} else {
					u, v = rng.Intn(g.N()), rng.Intn(g.N())
					w := 1.0
					if tc.weighted && rng.Float64() < 0.5 {
						w = float64(rng.Intn(3)) + 0.5
					}
					g.AddEdgeFull(u, v, w, 0)
				}
				if err := ws.Update(u, v); err != nil {
					t.Fatalf("step %d: Update(%d,%d): %v", step, u, v, err)
				}
				checkWalkSetMatchesScratch(t, ws, seed)
			}
			st := ws.Stats()
			if st.Mutations != 40 {
				t.Fatalf("stats recorded %d mutations, want 40", st.Mutations)
			}
			if st.Resampled == 0 {
				t.Fatal("no walks resampled over 40 mutations")
			}
		})
	}
}

// TestWalkInvalidationUntouchedBitIdentical pins the sharper guarantee the
// fine-tuning path relies on: walks that visit neither endpoint of the
// mutated edge are not merely re-derivable — they are not regenerated at
// all, and remain the exact same step sequences.
func TestWalkInvalidationUntouchedBitIdentical(t *testing.T) {
	for _, tc := range dynamicWalkConfigs {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			g := graph.Random(20, 0.15, rng)
			ws, err := NewWalkSet(g, tc.cfg, rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 15; step++ {
				before := make([][]int, len(ws.Walks()))
				for i, w := range ws.Walks() {
					before[i] = append([]int(nil), w...)
				}
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				weight := 1.0
				if tc.weighted && step%2 == 1 {
					weight = 2.5
				}
				g.AddEdgeFull(u, v, weight, 0)
				resampledBefore := ws.Stats().Resampled
				if err := ws.Update(u, v); err != nil {
					t.Fatal(err)
				}
				fullResample := ws.Stats().Resampled-resampledBefore == len(ws.Walks())
				for i, w := range ws.Walks() {
					visits := false
					for _, x := range before[i] {
						if x == u || x == v {
							visits = true
							break
						}
					}
					if !visits && !fullResample && !walksEqual(w, before[i]) {
						t.Fatalf("step %d: walk %d avoids (%d,%d) but changed: %v -> %v",
							step, i, u, v, before[i], w)
					}
				}
			}
		})
	}
}

// TestWalkSetWeightednessFlip pins the global edge case: a mutation that
// introduces the first non-unit weight (or removes the last) changes the
// per-step draw cadence for every walk, so the set must resample all of
// them — and still land exactly on the from-scratch corpus.
func TestWalkSetWeightednessFlip(t *testing.T) {
	const seed = 21
	g := graph.Random(10, 0.3, rand.New(rand.NewSource(1)))
	cfg := WalkConfig{WalksPerNode: 2, WalkLength: 6, P: 1, Q: 1}
	ws, err := NewWalkSet(g, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdgeFull(0, 1, 3.5, 0) // first weighted edge: cadence flips
	if err := ws.Update(0, 1); err != nil {
		t.Fatal(err)
	}
	if ws.Stats().FullResamples != 1 {
		t.Fatalf("weightedness flip should force a full resample, stats: %+v", ws.Stats())
	}
	checkWalkSetMatchesScratch(t, ws, seed)
	if !g.RemoveEdge(0, 1) { // last weighted edge gone: flips back
		t.Fatal("RemoveEdge(0,1) found nothing")
	}
	if err := ws.Update(0, 1); err != nil {
		t.Fatal(err)
	}
	if ws.Stats().FullResamples != 2 {
		t.Fatalf("reverse flip should force a second full resample, stats: %+v", ws.Stats())
	}
	checkWalkSetMatchesScratch(t, ws, seed)
}

func TestWalkSetErrors(t *testing.T) {
	g := graph.Random(5, 0.5, rand.New(rand.NewSource(2)))
	if _, err := NewWalkSet(g, WalkConfig{WalksPerNode: 0, WalkLength: 4}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("WalksPerNode 0 accepted")
	}
	ws, err := NewWalkSet(g, WalkConfig{WalksPerNode: 1, WalkLength: 4, P: 1, Q: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Update(0, 5); err == nil {
		t.Fatal("out-of-range update accepted")
	}
	if st := ws.Stats(); st.Mutations != 0 {
		t.Fatalf("failed update recorded in stats: %+v", st)
	}
}
