package embed

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

func TestLINESeparatesCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	g, truth := graph.SBM([]int{12, 12}, 0.9, 0.02, rng)
	e := LINE(g, 8, 60, 0.05, rng)
	nmi := CommunityRecovery(e, truth, 2, rng)
	if nmi < 0.6 {
		t.Errorf("LINE NMI=%v, want >= 0.6 on a strong SBM", nmi)
	}
	if e.Method != "line" {
		t.Error("method name")
	}
}

func TestLINENeighboursMoreSimilarThanStrangers(t *testing.T) {
	rng := rand.New(rand.NewSource(192))
	g := graph.Cycle(10)
	e := LINE(g, 6, 200, 0.05, rng)
	var nbr, far float64
	for v := 0; v < 10; v++ {
		nbr += linalg.CosineSimilarity(e.Vector(v), e.Vector((v+1)%10))
		far += linalg.CosineSimilarity(e.Vector(v), e.Vector((v+5)%10))
	}
	if nbr <= far {
		t.Errorf("first-order proximity: neighbour similarity %v should beat antipodal %v", nbr, far)
	}
}

func TestLINEEdgelessGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	e := LINE(graph.New(4), 3, 10, 0.05, rng)
	if e.Vectors.Rows != 4 || e.Vectors.Cols != 3 {
		t.Errorf("shape %dx%d", e.Vectors.Rows, e.Vectors.Cols)
	}
}
