package embed

// Warm-start quality regression: after a community-preserving perturbation
// of an SBM graph, fine-tuning from the pre-perturbation model at a
// quarter of the epoch budget must recover communities at least as well
// as training from scratch — the economic argument for the whole
// incremental pipeline (issue 8 tentpole (c)).

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sgns"
	"repro/internal/word2vec"
)

// perturbCommunityPreserving rewires a fraction of the graph's edges
// without moving any vertex across communities: deleted edges are replaced
// by fresh intra-community edges, so the block structure (and the ground
// truth) is unchanged while concrete adjacencies move.
func perturbCommunityPreserving(g *graph.Graph, truth []int, frac float64, rng *rand.Rand) {
	moves := int(frac * float64(g.M()))
	for i := 0; i < moves; i++ {
		g.RemoveEdgeAt(rng.Intn(g.M()))
		// Replace with an edge inside a random vertex's own community.
		u := rng.Intn(g.N())
		var peers []int
		for v := 0; v < g.N(); v++ {
			if v != u && truth[v] == truth[u] {
				peers = append(peers, v)
			}
		}
		g.AddEdge(u, peers[rng.Intn(len(peers))])
	}
}

// TestWarmStartRecoversCommunities trains node2vec on an SBM graph, saves
// the embedding as the warm start, perturbs the graph community-
// preservingly, and asserts that fine-tuning for 25% of the epochs
// recovers communities at least as well as a full from-scratch run on the
// perturbed graph. Deterministic: Workers 1, fixed seeds.
func TestWarmStartRecoversCommunities(t *testing.T) {
	const (
		d       = 16
		k       = 3
		fullEp  = 5 // word2vec.DefaultConfig epochs, what Node2VecWorkersF32 trains with
		tunedEp = 1 // 20% of the from-scratch budget, within the issue's ≤25% gate
	)
	g, truth := graph.SBM([]int{15, 15, 15}, 0.5, 0.02, rand.New(rand.NewSource(31)))
	prior := Node2VecWorkersF32(g, d, 1, 1, 1, rand.New(rand.NewSource(32)))

	perturbCommunityPreserving(g, truth, 0.15, rand.New(rand.NewSource(33)))

	scratch := Node2VecWorkersF32(g, d, 1, 1, 1, rand.New(rand.NewSource(34)))
	baseline := CommunityRecovery(scratch, truth, k, rand.New(rand.NewSource(35)))

	tuned, err := Node2VecFineTuneF32(g, d, 1, 1, 1, tunedEp, prior.Vectors, rand.New(rand.NewSource(34)))
	if err != nil {
		t.Fatal(err)
	}
	got := CommunityRecovery(tuned, truth, k, rand.New(rand.NewSource(35)))
	t.Logf("NMI: fine-tune(%d epochs)=%.4f, from-scratch(%d epochs)=%.4f", tunedEp, got, fullEp, baseline)
	if got < baseline {
		t.Fatalf("fine-tuned NMI %.4f below from-scratch baseline %.4f at %d/%d epochs",
			got, baseline, tunedEp, fullEp)
	}
}

// TestFineTuneDeterministicAndValidated pins the plumbing: Workers 1 fine-
// tunes are bit-reproducible for a fixed seed, the warm slice is never
// mutated, and shape mismatches error instead of training garbage.
func TestFineTuneDeterministicAndValidated(t *testing.T) {
	g := graph.Random(12, 0.3, rand.New(rand.NewSource(1)))
	prior := Node2VecWorkersF32(g, 8, 1, 1, 1, rand.New(rand.NewSource(2)))
	warmCopy := append([]float64(nil), prior.Vectors.Data...)

	a, err := Node2VecFineTuneF32(g, 8, 1, 1, 1, 2, prior.Vectors, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Node2VecFineTuneF32(g, 8, 1, 1, 1, 2, prior.Vectors, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Vectors.Data {
		if a.Vectors.Data[i] != b.Vectors.Data[i] {
			t.Fatalf("fine-tune not deterministic at Workers 1: value %d differs", i)
		}
	}
	for i := range warmCopy {
		if warmCopy[i] != prior.Vectors.Data[i] {
			t.Fatal("fine-tune mutated the warm-start matrix")
		}
	}
	if _, err := Node2VecFineTuneF32(g, 9, 1, 1, 1, 2, prior.Vectors, rand.New(rand.NewSource(9))); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := Node2VecFineTuneF32(g, 8, 1, 1, 1, 0, prior.Vectors, rand.New(rand.NewSource(9))); err == nil {
		t.Fatal("zero epoch budget accepted")
	}
	if _, err := word2vec.FineTune32(nil, 0, word2vec.DefaultConfig(), rand.New(rand.NewSource(1)), nil); err == nil {
		t.Fatal("word2vec.FineTune32 accepted zero vocab")
	}
	if _, err := sgns.FineTune32(nil, 4, sgns.Config{Dim: 8, Epochs: 1}, 1, make([]float32, 3)); err == nil {
		t.Fatal("sgns.FineTune32 accepted a short warm slice")
	}
}
