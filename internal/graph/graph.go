// Package graph provides the core graph data structures used throughout the
// x2vec reproduction: finite graphs with optional direction, vertex labels,
// edge labels, and real edge weights, together with generators, exact
// isomorphism tests, and enumeration of small graphs up to isomorphism.
//
// Vertices are integers 0..N()-1. The zero value of Graph is not usable;
// construct graphs with New or NewDirected.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Arc is one directed half-edge in an adjacency list. For undirected graphs
// each edge contributes an Arc in both endpoint lists (self-loops contribute
// two arcs at the same vertex).
type Arc struct {
	To   int // head vertex
	Edge int // index into Edges()
}

// Edge is a single edge record. For undirected graphs U <= V is not
// guaranteed; use Endpoints for a normalised view.
type Edge struct {
	U, V   int
	Weight float64
	Label  int
}

// Graph is a finite graph with optional direction, integer vertex and edge
// labels, and float64 edge weights (default 1).
type Graph struct {
	n        int
	directed bool
	edges    []Edge
	adj      [][]Arc
	vlabels  []int
}

// New returns an undirected graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count") //x2vec:allow nopanic constructor precondition, mirrors make() semantics
	}
	return &Graph{n: n, adj: make([][]Arc, n), vlabels: make([]int, n)}
}

// NewDirected returns a directed graph with n vertices and no edges.
func NewDirected(n int) *Graph {
	g := New(n)
	g.directed = true
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// AddVertex appends a fresh vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.n++
	g.adj = append(g.adj, nil)
	g.vlabels = append(g.vlabels, 0)
	return g.n - 1
}

// AddEdge adds an edge of weight 1 and label 0 between u and v and returns
// its edge index.
func (g *Graph) AddEdge(u, v int) int { return g.AddEdgeFull(u, v, 1, 0) }

// AddWeightedEdge adds an edge with the given weight and label 0.
func (g *Graph) AddWeightedEdge(u, v int, w float64) int { return g.AddEdgeFull(u, v, w, 0) }

// AddLabeledEdge adds an edge of weight 1 with the given label.
func (g *Graph) AddLabeledEdge(u, v, label int) int { return g.AddEdgeFull(u, v, 1, label) }

// AddEdgeFull adds an edge with explicit weight and label and returns its
// edge index. Parallel edges are permitted.
func (g *Graph) AddEdgeFull(u, v int, w float64, label int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)) //x2vec:allow nopanic index precondition, mirrors slice bounds semantics
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: w, Label: label})
	g.adj[u] = append(g.adj[u], Arc{To: v, Edge: idx})
	if !g.directed {
		g.adj[v] = append(g.adj[v], Arc{To: u, Edge: idx})
	}
	return idx
}

// RemoveEdgeAt deletes the edge with index idx. The last edge is swapped
// into the vacated index, so exactly one edge index (the former last one)
// is renumbered; adjacency-list order is not preserved. Consumers that
// snapshot edge indices or arc order (CSR walkers, refinement sessions)
// must rebuild or be notified after a removal — the dynamic-graph sessions
// in wl and embed do exactly that.
func (g *Graph) RemoveEdgeAt(idx int) {
	if idx < 0 || idx >= len(g.edges) {
		panic(fmt.Sprintf("graph: edge index %d out of range [0,%d)", idx, len(g.edges))) //x2vec:allow nopanic index precondition, mirrors slice bounds semantics
	}
	e := g.edges[idx]
	g.removeArc(e.U, idx)
	if !g.directed {
		g.removeArc(e.V, idx)
	}
	last := len(g.edges) - 1
	if idx != last {
		g.edges[idx] = g.edges[last]
		moved := g.edges[idx]
		g.renumberArc(moved.U, last, idx)
		if !g.directed {
			g.renumberArc(moved.V, last, idx)
		}
	}
	g.edges = g.edges[:last]
}

// RemoveEdge deletes one edge between u and v (in either stored orientation
// for undirected graphs, u->v only for directed ones) and reports whether
// an edge was found. With parallel edges present, exactly one is removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			g.RemoveEdgeAt(a.Edge)
			return true
		}
	}
	return false
}

// removeArc deletes one arc with the given edge index from v's adjacency
// list by swap-remove. Self-loops store two arcs with the same edge index
// in one list; each call removes exactly one of them.
func (g *Graph) removeArc(v, edge int) {
	adj := g.adj[v]
	for i, a := range adj {
		if a.Edge == edge {
			adj[i] = adj[len(adj)-1]
			g.adj[v] = adj[:len(adj)-1]
			return
		}
	}
}

// renumberArc rewrites one arc referencing edge index from to index to.
func (g *Graph) renumberArc(v, from, to int) {
	adj := g.adj[v]
	for i, a := range adj {
		if a.Edge == from {
			adj[i].Edge = to
			return
		}
	}
}

// Edges returns the underlying edge slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Arcs returns the adjacency list of v (out-arcs for directed graphs).
// Callers must not modify the returned slice.
func (g *Graph) Arcs(v int) []Arc { return g.adj[v] }

// Neighbors returns the out-neighbours of v as a fresh slice.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, a := range g.adj[v] {
		out[i] = a.To
	}
	return out
}

// Degree returns the out-degree of v (degree for undirected graphs).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// InDegree returns the in-degree of v. For undirected graphs it equals
// Degree(v).
func (g *Graph) InDegree(v int) int {
	if !g.directed {
		return g.Degree(v)
	}
	d := 0
	for _, e := range g.edges {
		if e.V == v {
			d++
		}
	}
	return d
}

// HasEdge reports whether an edge u->v exists (or u-v for undirected).
func (g *Graph) HasEdge(u, v int) bool {
	for _, a := range g.adj[u] {
		if a.To == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the sum of the weights of all edges from u to v (0 when
// none exist). Summing makes parallel edges behave like their combined
// weight, matching the weighted-WL convention.
func (g *Graph) EdgeWeight(u, v int) float64 {
	var w float64
	for _, a := range g.adj[u] {
		if a.To == v {
			w += g.edges[a.Edge].Weight
		}
	}
	return w
}

// VertexLabel returns the label of v.
func (g *Graph) VertexLabel(v int) int { return g.vlabels[v] }

// SetVertexLabel assigns a label to v.
func (g *Graph) SetVertexLabel(v, label int) { g.vlabels[v] = label }

// VertexLabels returns a copy of the vertex-label slice.
func (g *Graph) VertexLabels() []int {
	out := make([]int, g.n)
	copy(out, g.vlabels)
	return out
}

// HasVertexLabels reports whether any vertex carries a non-zero label.
func (g *Graph) HasVertexLabels() bool {
	for _, l := range g.vlabels {
		if l != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := &Graph{n: g.n, directed: g.directed}
	h.edges = append([]Edge(nil), g.edges...)
	h.vlabels = append([]int(nil), g.vlabels...)
	h.adj = make([][]Arc, g.n)
	for v := range g.adj {
		h.adj[v] = append([]Arc(nil), g.adj[v]...)
	}
	return h
}

// AdjacencyMatrix returns the n-by-n weighted adjacency matrix. Entry (u,v)
// is the total weight of edges from u to v. Undirected edges appear
// symmetrically.
func (g *Graph) AdjacencyMatrix() [][]float64 {
	a := make([][]float64, g.n)
	for i := range a {
		a[i] = make([]float64, g.n)
	}
	for _, e := range g.edges {
		a[e.U][e.V] += e.Weight
		if !g.directed && e.U != e.V {
			a[e.V][e.U] += e.Weight
		}
	}
	return a
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	d := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	return d
}

// DisjointUnion returns the disjoint union of g and h. Vertices of h are
// shifted by g.N(). Both graphs must agree on directedness.
func DisjointUnion(g, h *Graph) *Graph {
	if g.directed != h.directed {
		panic("graph: disjoint union of mixed directedness") //x2vec:allow nopanic caller contract: operands must agree on directedness
	}
	u := New(g.n + h.n)
	u.directed = g.directed
	copy(u.vlabels, g.vlabels)
	for v := 0; v < h.n; v++ {
		u.vlabels[g.n+v] = h.vlabels[v]
	}
	for _, e := range g.edges {
		u.AddEdgeFull(e.U, e.V, e.Weight, e.Label)
	}
	for _, e := range h.edges {
		u.AddEdgeFull(e.U+g.n, e.V+g.n, e.Weight, e.Label)
	}
	return u
}

// InducedSubgraph returns the subgraph induced by the given vertices; the
// i-th listed vertex becomes vertex i.
func (g *Graph) InducedSubgraph(vs []int) *Graph {
	idx := make(map[int]int, len(vs))
	for i, v := range vs {
		idx[v] = i
	}
	h := New(len(vs))
	h.directed = g.directed
	for i, v := range vs {
		h.vlabels[i] = g.vlabels[v]
	}
	for _, e := range g.edges {
		iu, oku := idx[e.U]
		iv, okv := idx[e.V]
		if oku && okv {
			h.AddEdgeFull(iu, iv, e.Weight, e.Label)
		}
	}
	return h
}

// Complement returns the complement of a simple undirected graph (labels are
// preserved, loops are never added).
func (g *Graph) Complement() *Graph {
	if g.directed {
		panic("graph: complement of directed graph not supported") //x2vec:allow nopanic caller contract: complement is undirected-only
	}
	h := New(g.n)
	copy(h.vlabels, g.vlabels)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.HasEdge(u, v) {
				h.AddEdge(u, v)
			}
		}
	}
	return h
}

// BFSDistances returns shortest-path hop distances from src; unreachable
// vertices get -1.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[v] {
			if dist[a.To] < 0 {
				dist[a.To] = dist[v] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}

// AllPairsDistances returns the hop-distance matrix (−1 for unreachable).
func (g *Graph) AllPairsDistances() [][]int {
	d := make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.BFSDistances(v)
	}
	return d
}

// IsConnected reports whether an undirected graph (or the underlying
// undirected graph of a directed one) is connected. The empty graph counts
// as connected.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	return len(g.componentOf(0)) == g.n
}

func (g *Graph) componentOf(src int) []int {
	seen := make([]bool, g.n)
	seen[src] = true
	stack := []int{src}
	comp := []int{src}
	und := g.undirectedAdj()
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range und[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
				comp = append(comp, w)
			}
		}
	}
	sort.Ints(comp)
	return comp
}

func (g *Graph) undirectedAdj() [][]int {
	und := make([][]int, g.n)
	for _, e := range g.edges {
		und[e.U] = append(und[e.U], e.V)
		und[e.V] = append(und[e.V], e.U)
	}
	return und
}

// Components returns the vertex sets of the connected components (of the
// underlying undirected graph), each sorted, in order of smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		comp := g.componentOf(v)
		for _, w := range comp {
			seen[w] = true
		}
		comps = append(comps, comp)
	}
	return comps
}

// ComponentGraphs returns each connected component as its own graph.
func (g *Graph) ComponentGraphs() []*Graph {
	var out []*Graph
	for _, comp := range g.Components() {
		out = append(out, g.InducedSubgraph(comp))
	}
	return out
}

// Triangles returns the number of triangles in a simple undirected graph.
func (g *Graph) Triangles() int {
	count := 0
	for u := 0; u < g.n; u++ {
		for _, a := range g.adj[u] {
			v := a.To
			if v <= u {
				continue
			}
			for _, b := range g.adj[v] {
				w := b.To
				if w <= v {
					continue
				}
				if g.HasEdge(u, w) {
					count++
				}
			}
		}
	}
	return count
}

// Girth returns the length of a shortest cycle, or -1 for forests.
func (g *Graph) Girth() int {
	best := -1
	for s := 0; s < g.n; s++ {
		dist := make([]int, g.n)
		parent := make([]int, g.n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		parent[s] = -1
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[v] {
				w := a.To
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					parent[w] = v
					queue = append(queue, w)
				} else if parent[v] != w {
					c := dist[v] + dist[w] + 1
					if best < 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// String renders a compact description, useful in test failures.
func (g *Graph) String() string {
	var b strings.Builder
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	fmt.Fprintf(&b, "%s graph n=%d m=%d edges=[", kind, g.n, len(g.edges))
	for i, e := range g.edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		if e.Weight != 1 || e.Label != 0 {
			fmt.Fprintf(&b, "%d-%d(w=%g,l=%d)", e.U, e.V, e.Weight, e.Label)
		} else {
			fmt.Fprintf(&b, "%d-%d", e.U, e.V)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// FromEdgeList builds an undirected, unweighted graph with n vertices from
// (u,v) pairs.
func FromEdgeList(n int, pairs [][2]int) *Graph {
	g := New(n)
	for _, p := range pairs {
		g.AddEdge(p[0], p[1])
	}
	return g
}
