package graph

import "testing"

func TestEmptyGraphBehaviour(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatal("empty graph")
	}
	if !g.IsConnected() {
		t.Error("empty graph counts as connected")
	}
	if comps := g.Components(); len(comps) != 0 {
		t.Errorf("empty graph has %d components", len(comps))
	}
	if a := g.AdjacencyMatrix(); len(a) != 0 {
		t.Error("empty adjacency")
	}
	if Automorphisms(g) != 1 {
		t.Error("empty graph has exactly the identity map")
	}
}

func TestSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	if g.M() != 1 {
		t.Fatal("loop should count as one edge")
	}
	if g.Degree(0) != 2 {
		t.Errorf("loop contributes 2 to degree, got %d", g.Degree(0))
	}
	if !g.HasEdge(0, 0) {
		t.Error("loop should be visible")
	}
	a := g.AdjacencyMatrix()
	if a[0][0] != 1 {
		t.Errorf("loop diagonal entry %v", a[0][0])
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"negative vertex count", func() { New(-1) }},
		{"edge out of range", func() { New(2).AddEdge(0, 5) }},
		{"negative endpoint", func() { New(2).AddEdge(-1, 0) }},
		{"cycle too small", func() { Cycle(2) }},
		{"regular impossible", func() { RandomRegular(3, 3, nil) }},
		{"complement of directed", func() { NewDirected(2).Complement() }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := New(1)
	if !g.IsConnected() || g.Girth() != -1 || g.Triangles() != 0 {
		t.Error("single vertex invariants")
	}
	if d := g.BFSDistances(0); d[0] != 0 {
		t.Error("distance to self")
	}
	if !Isomorphic(g, New(1)) {
		t.Error("single vertices are isomorphic")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Cycle(4)
	h := g.Clone()
	h.AddEdge(0, 2)
	if g.M() != 4 || h.M() != 5 {
		t.Error("clone should be independent")
	}
	h.SetVertexLabel(0, 7)
	if g.VertexLabel(0) == 7 {
		t.Error("labels should not be shared")
	}
}

func TestInducedSubgraphEmptySelection(t *testing.T) {
	g := Complete(4)
	h := g.InducedSubgraph(nil)
	if h.N() != 0 || h.M() != 0 {
		t.Error("empty selection yields empty graph")
	}
}

func TestDirectedDegreeAsymmetry(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	if g.Degree(0) != 2 || g.Degree(1) != 0 {
		t.Error("out-degrees")
	}
	if g.InDegree(0) != 0 || g.InDegree(1) != 1 {
		t.Error("in-degrees")
	}
}
