package graph

import (
	"fmt"
	"sort"
	"sync"
)

// AllGraphs returns one representative of every isomorphism class of simple
// undirected graphs on n vertices (n <= 6; there are 1, 2, 4, 11, 34, 156
// classes for n = 1..6). Results are memoised; callers must not mutate the
// returned graphs.
func AllGraphs(n int) []*Graph {
	if n < 0 || n > 6 {
		panic(fmt.Sprintf("graph: AllGraphs supports n in [0,6], got %d", n)) //x2vec:allow nopanic enumeration bound; callers pass small literals
	}
	allGraphsMu.Lock()
	defer allGraphsMu.Unlock()
	if gs, ok := allGraphsMemo[n]; ok {
		return gs
	}
	gs := enumerateGraphs(n)
	allGraphsMemo[n] = gs
	return gs
}

var (
	allGraphsMu   sync.Mutex
	allGraphsMemo = map[int][]*Graph{}
)

// pairIndex enumerates the vertex pairs (i,j), i<j, in a fixed order so that
// an m-bit mask encodes an n-vertex graph.
func pairIndex(n int) [][2]int {
	var ps [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ps = append(ps, [2]int{i, j})
		}
	}
	return ps
}

func enumerateGraphs(n int) []*Graph {
	ps := pairIndex(n)
	perms := permutations(n)
	seen := map[uint64]bool{}
	var out []*Graph
	for mask := uint64(0); mask < 1<<len(ps); mask++ {
		if canonicalMask(mask, ps, perms, n) != mask {
			continue
		}
		if seen[mask] {
			continue
		}
		seen[mask] = true
		g := New(n)
		for b, p := range ps {
			if mask&(1<<uint(b)) != 0 {
				g.AddEdge(p[0], p[1])
			}
		}
		out = append(out, g)
	}
	return out
}

// canonicalMask returns the lexicographically smallest mask over all vertex
// permutations.
func canonicalMask(mask uint64, ps [][2]int, perms [][]int, n int) uint64 {
	// Precompute pair -> bit lookup.
	bitOf := make([][]int, n)
	for i := range bitOf {
		bitOf[i] = make([]int, n)
	}
	for b, p := range ps {
		bitOf[p[0]][p[1]] = b
		bitOf[p[1]][p[0]] = b
	}
	best := mask
	for _, perm := range perms {
		var m uint64
		for b, p := range ps {
			if mask&(1<<uint(b)) != 0 {
				u, v := perm[p[0]], perm[p[1]]
				m |= 1 << uint(bitOf[u][v])
			}
		}
		if m < best {
			best = m
		}
	}
	return best
}

func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// ConnectedGraphs filters AllGraphs(n) to connected representatives.
func ConnectedGraphs(n int) []*Graph {
	var out []*Graph
	for _, g := range AllGraphs(n) {
		if g.IsConnected() {
			out = append(out, g)
		}
	}
	return out
}

// AllTrees returns one representative of every isomorphism class of free
// trees on n vertices (n <= 8; the counts are 1, 1, 1, 2, 3, 6, 11, 23 for
// n = 1..8). Results are memoised.
func AllTrees(n int) []*Graph {
	if n < 1 || n > 8 {
		panic(fmt.Sprintf("graph: AllTrees supports n in [1,8], got %d", n)) //x2vec:allow nopanic enumeration bound; callers pass small literals
	}
	allTreesMu.Lock()
	defer allTreesMu.Unlock()
	if ts, ok := allTreesMemo[n]; ok {
		return ts
	}
	ts := enumerateTrees(n)
	allTreesMemo[n] = ts
	return ts
}

var (
	allTreesMu   sync.Mutex
	allTreesMemo = map[int][]*Graph{}
)

func enumerateTrees(n int) []*Graph {
	if n == 1 {
		return []*Graph{New(1)}
	}
	if n == 2 {
		return []*Graph{Path(2)}
	}
	var reps []*Graph
	var keys []string
	seq := make([]int, n-2)
	var rec func(i int)
	rec = func(i int) {
		if i == len(seq) {
			t := TreeFromPrufer(seq)
			k := treeInvariantKey(t)
			for j, rk := range keys {
				if rk == k && Isomorphic(t, reps[j]) {
					return
				}
			}
			reps = append(reps, t)
			keys = append(keys, k)
			return
		}
		for v := 0; v < n; v++ {
			seq[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return reps
}

func treeInvariantKey(t *Graph) string {
	ds := t.DegreeSequence()
	ecc := make([]int, t.N())
	for v := 0; v < t.N(); v++ {
		for _, d := range t.BFSDistances(v) {
			if d > ecc[v] {
				ecc[v] = d
			}
		}
	}
	sort.Ints(ecc)
	return fmt.Sprintf("%v|%v", ds, ecc)
}

// BinaryTrees returns all free trees on up to maxN vertices whose maximum
// degree is at most 3 ("binary trees" in the paper's Section 4 sense).
func BinaryTrees(maxN int) []*Graph {
	var out []*Graph
	for n := 1; n <= maxN; n++ {
		for _, t := range AllTrees(n) {
			maxDeg := 0
			for v := 0; v < t.N(); v++ {
				if d := t.Degree(v); d > maxDeg {
					maxDeg = d
				}
			}
			if maxDeg <= 3 {
				out = append(out, t)
			}
		}
	}
	return out
}

// PathsUpTo returns the paths P_1 .. P_k.
func PathsUpTo(k int) []*Graph {
	out := make([]*Graph, 0, k)
	for i := 1; i <= k; i++ {
		out = append(out, Path(i))
	}
	return out
}

// CyclesUpTo returns the cycles C_3 .. C_k.
func CyclesUpTo(k int) []*Graph {
	var out []*Graph
	for i := 3; i <= k; i++ {
		out = append(out, Cycle(i))
	}
	return out
}

// TreesUpTo returns all free trees with at most k vertices (k <= 8).
func TreesUpTo(k int) []*Graph {
	var out []*Graph
	for n := 1; n <= k; n++ {
		out = append(out, AllTrees(n)...)
	}
	return out
}
