package graph

// CFI builds the Cai–Fürer–Immerman graph of a connected base graph. For
// each base vertex v a gadget with one node per even-cardinality subset of
// v's incident edges is created, and for each base edge e = {u,v} gadget
// nodes a_{u,X}, a_{v,Y} are joined when e's membership in X and Y agrees.
// With twist set to true, exactly one base edge has the agreement condition
// flipped, producing the "twisted" companion.
//
// For a connected base graph, CFI(base,false) and CFI(base,true) are
// non-isomorphic, yet 1-WL (and, for bases of high enough treewidth, k-WL)
// cannot distinguish them — the standard lower-bound construction cited in
// Section 3.3 of the paper. Gadget nodes are vertex-labelled by their base
// vertex so the pairing is rigid.
func CFI(base *Graph, twist bool) *Graph {
	if base.Directed() {
		panic("graph: CFI requires an undirected base") //x2vec:allow nopanic caller contract: CFI gadgets are only defined over undirected bases
	}
	n := base.N()
	// Incident edge indices per base vertex.
	inc := make([][]int, n)
	for i, e := range base.Edges() {
		inc[e.U] = append(inc[e.U], i)
		if e.V != e.U {
			inc[e.V] = append(inc[e.V], i)
		}
	}
	// Enumerate even subsets of each vertex's incident edges.
	type gadgetNode struct {
		base   int
		subset uint32 // bitmask over positions in inc[base]
	}
	var nodes []gadgetNode
	nodeID := map[gadgetNode]int{}
	for v := 0; v < n; v++ {
		d := len(inc[v])
		for mask := uint32(0); mask < 1<<uint(d); mask++ {
			if popcount(mask)%2 == 0 {
				id := len(nodes)
				gn := gadgetNode{v, mask}
				nodes = append(nodes, gn)
				nodeID[gn] = id
			}
		}
	}
	g := New(len(nodes))
	for id, gn := range nodes {
		g.SetVertexLabel(id, gn.base+1)
	}
	// position of edge e within inc[v]
	posIn := func(v, e int) int {
		for i, x := range inc[v] {
			if x == e {
				return i
			}
		}
		return -1
	}
	twistEdge := -1
	if twist && base.M() > 0 {
		twistEdge = 0
	}
	for eIdx, e := range base.Edges() {
		pu := posIn(e.U, eIdx)
		pv := posIn(e.V, eIdx)
		for _, a := range nodes {
			if a.base != e.U {
				continue
			}
			inU := a.subset&(1<<uint(pu)) != 0
			for _, b := range nodes {
				if b.base != e.V {
					continue
				}
				inV := b.subset&(1<<uint(pv)) != 0
				agree := inU == inV
				if eIdx == twistEdge {
					agree = !agree
				}
				if agree {
					g.AddEdge(nodeID[gadgetNode{a.base, a.subset}], nodeID[gadgetNode{b.base, b.subset}])
				}
			}
		}
	}
	return g
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// CFIPair returns the untwisted and twisted CFI graphs over the complete
// graph K4, the smallest convenient base: 16 vertices each, non-isomorphic,
// 1-WL-equivalent.
func CFIPair() (*Graph, *Graph) {
	base := Complete(4)
	return CFI(base, false), CFI(base, true)
}
