package graph

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadGraphBasic(t *testing.T) {
	g, err := ParseGraph("# comment\n0 1\n1 2 2.5\n\n2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 3,3", g.N(), g.M())
	}
	if w := g.EdgeWeight(1, 2); w != 2.5 {
		t.Errorf("weight(1,2)=%v, want 2.5", w)
	}
}

// TestReadGraphOrderHeader: "# n=K" must make trailing isolated vertices
// (and completely empty graphs) representable — the old CLI parser inferred
// the order from the max edge endpoint and silently dropped them.
func TestReadGraphOrderHeader(t *testing.T) {
	g, err := ParseGraph("# n=5\n0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 1 {
		t.Fatalf("n=%d m=%d, want 5,1", g.N(), g.M())
	}
	for v := 2; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("vertex %d should be isolated", v)
		}
	}

	// Header variants and placement.
	for _, in := range []string{"#n=4\n", "# n = 4\n0 1\n", "0 1\n# n=4\n"} {
		g, err := ParseGraph(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if g.N() != 4 {
			t.Errorf("%q: n=%d, want 4", in, g.N())
		}
	}

	// Edgeless declared graph.
	g, err = ParseGraph("# n=3\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("n=%d m=%d, want 3,0", g.N(), g.M())
	}

	// Empty input is the empty graph, not an error.
	g, err = ParseGraph("")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 {
		t.Fatalf("n=%d, want 0", g.N())
	}
}

// TestReadGraphErrors: every malformed input must come back as an error —
// the old path panicked inside graph.AddEdge on a negative id.
func TestReadGraphErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"negative id", "-1 2\n", "non-negative"},
		{"negative second id", "0 -7\n", "non-negative"},
		{"non-numeric", "a b\n", "bad vertex id"},
		{"single field", "0\n", "u v [weight]"},
		{"too many fields", "0 1 2 3\n", "u v [weight]"},
		{"bad weight", "0 1 heavy\n", "bad edge weight"},
		{"endpoint beyond header", "# n=2\n0 5\n", "out of range"},
		{"negative header", "# n=-3\n", "non-negative"},
		{"typoed header count", "# n=1O\n0 1\n", "bad vertex count"},
		{"header with trailing prose", "# n=5 vertices\n0 1\n", "bad vertex count"},
	}
	for _, tc := range cases {
		_, err := ParseGraph(tc.in)
		if err == nil {
			t.Errorf("%s: want error, got none", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadGraphFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(p, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraphFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if _, err := LoadGraphFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("-1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGraphFile(bad); err == nil {
		t.Error("negative id should error")
	} else if !strings.Contains(err.Error(), "bad.txt") {
		t.Errorf("error should name the file: %v", err)
	}
}
