package graph

// The edge-list reader shared by the x2vec CLI and the x2vecd request
// decoder. The CLI used to parse files itself and feed unvalidated ids
// straight into AddEdge, so a negative vertex id in the input panicked deep
// inside the graph package, and trailing isolated vertices were
// unrepresentable because the order was inferred from the maximum edge
// endpoint. Here parsing is a proper decoder: malformed input becomes an
// error, and an optional "# n=K" header pins the vertex count.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadGraph parses the x2vec edge-list format from r:
//
//   - one "u v [weight]" edge per line, whitespace-separated;
//   - blank lines and "#" comment lines are ignored, except that a comment
//     of the exact form "# n=K" declares the vertex count, so graphs with
//     trailing isolated vertices (or no edges at all) are representable;
//   - vertex ids must be non-negative integers; the vertex count is
//     max(K, largest endpoint + 1).
//
// Invalid input — negative or non-numeric ids, a malformed weight, an edge
// endpoint at or above a declared "# n=K" — returns a descriptive error
// instead of panicking, so a daemon can reject a bad request and keep
// serving.
func ReadGraph(r io.Reader) (*Graph, error) {
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	declared := -1 // vertex count from a "# n=K" header, -1 when absent
	maxV := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			k, ok, err := parseOrderHeader(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if ok {
				if k < 0 {
					return nil, fmt.Errorf("line %d: vertex count n=%d must be non-negative", lineNo, k)
				}
				declared = k
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("line %d: want \"u v [weight]\", got %q", lineNo, line)
		}
		u, err := parseVertex(fields[0], lineNo)
		if err != nil {
			return nil, err
		}
		v, err := parseVertex(fields[1], lineNo)
		if err != nil {
			return nil, err
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad edge weight %q", lineNo, fields[2])
			}
		}
		edges = append(edges, edge{u, v, w})
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := maxV + 1
	if declared >= 0 {
		if maxV >= declared {
			return nil, fmt.Errorf("edge endpoint %d out of range for declared n=%d", maxV, declared)
		}
		n = declared
	}
	g := New(n)
	for _, e := range edges {
		g.AddWeightedEdge(e.u, e.v, e.w)
	}
	return g, nil
}

// parseVertex parses one non-negative vertex id.
func parseVertex(s string, lineNo int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("line %d: bad vertex id %q", lineNo, s)
	}
	if v < 0 {
		return 0, fmt.Errorf("line %d: vertex id %d must be non-negative", lineNo, v)
	}
	return v, nil
}

// parseOrderHeader recognises the "# n=K" vertex-count declaration
// (whitespace-tolerant: "#n = 5" works too). Comments that do not match
// the "n =" shape return ok=false; a comment that DOES match the shape but
// carries an unparseable count (e.g. "# n=1O") is an error — silently
// treating a typoed header as prose would serve features for the wrong
// vertex count with a 200.
func parseOrderHeader(line string) (k int, ok bool, err error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	if !strings.HasPrefix(rest, "n") {
		return 0, false, nil
	}
	rest = strings.TrimSpace(strings.TrimPrefix(rest, "n"))
	if !strings.HasPrefix(rest, "=") {
		return 0, false, nil
	}
	rest = strings.TrimSpace(strings.TrimPrefix(rest, "="))
	v, convErr := strconv.Atoi(rest)
	if convErr != nil {
		return 0, false, fmt.Errorf("bad vertex count in header %q", line)
	}
	return v, true, nil
}

// ParseGraph is ReadGraph over an in-memory edge-list string — the form the
// daemon's JSON request decoder uses.
func ParseGraph(s string) (*Graph, error) {
	return ReadGraph(strings.NewReader(s))
}

// LoadGraphFile reads one graph from an edge-list file.
func LoadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadGraph(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
