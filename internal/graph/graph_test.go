package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicConstruction(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 3,2", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge should be visible from both sides")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge 0-2")
	}
	if g.Degree(1) != 2 {
		t.Errorf("deg(1)=%d, want 2", g.Degree(1))
	}
}

func TestDirectedConstruction(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("missing arc 0->1")
	}
	if g.HasEdge(1, 0) {
		t.Error("directed graph should not have reverse arc")
	}
	if g.InDegree(1) != 1 || g.InDegree(0) != 0 {
		t.Errorf("in-degrees wrong: %d, %d", g.InDegree(1), g.InDegree(0))
	}
}

func TestAddVertex(t *testing.T) {
	g := New(1)
	v := g.AddVertex()
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddVertex returned %d, n=%d", v, g.N())
	}
	g.AddEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("edge to new vertex missing")
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	g := New(3)
	g.AddWeightedEdge(0, 1, 2.5)
	g.AddEdge(1, 2)
	a := g.AdjacencyMatrix()
	if a[0][1] != 2.5 || a[1][0] != 2.5 {
		t.Errorf("weighted entry wrong: %v", a)
	}
	if a[1][2] != 1 || a[0][2] != 0 {
		t.Errorf("entries wrong: %v", a)
	}
}

func TestEdgeWeightSumsParallelEdges(t *testing.T) {
	g := New(2)
	g.AddWeightedEdge(0, 1, 1.5)
	g.AddWeightedEdge(0, 1, 2.5)
	if w := g.EdgeWeight(0, 1); w != 4 {
		t.Errorf("EdgeWeight=%v, want 4", w)
	}
}

func TestGenerators(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"P4", Path(4), 4, 3},
		{"C5", Cycle(5), 5, 5},
		{"K4", Complete(4), 4, 6},
		{"S3", Star(3), 4, 3},
		{"K23", CompleteBipartite(2, 3), 5, 6},
		{"Petersen", Petersen(), 10, 15},
		{"Grid23", Grid(2, 3), 6, 7},
		{"Paw", Fig5Graph(), 4, 4},
	}
	for _, tc := range tests {
		if tc.g.N() != tc.n || tc.g.M() != tc.m {
			t.Errorf("%s: n=%d m=%d, want %d,%d", tc.name, tc.g.N(), tc.g.M(), tc.n, tc.m)
		}
	}
}

func TestPetersenProperties(t *testing.T) {
	p := Petersen()
	for v := 0; v < 10; v++ {
		if p.Degree(v) != 3 {
			t.Fatalf("Petersen deg(%d)=%d, want 3", v, p.Degree(v))
		}
	}
	if g := p.Girth(); g != 5 {
		t.Errorf("Petersen girth=%d, want 5", g)
	}
	if tr := p.Triangles(); tr != 0 {
		t.Errorf("Petersen triangles=%d, want 0", tr)
	}
}

func TestTriangles(t *testing.T) {
	tests := []struct {
		g    *Graph
		want int
	}{
		{Complete(3), 1},
		{Complete(4), 4},
		{Complete(5), 10},
		{Cycle(5), 0},
		{Fig5Graph(), 1},
	}
	for _, tc := range tests {
		if got := tc.g.Triangles(); got != tc.want {
			t.Errorf("%v: triangles=%d, want %d", tc.g, got, tc.want)
		}
	}
}

func TestGirth(t *testing.T) {
	tests := []struct {
		g    *Graph
		want int
	}{
		{Cycle(7), 7},
		{Complete(4), 3},
		{Path(5), -1},
		{Grid(3, 3), 4},
	}
	for _, tc := range tests {
		if got := tc.g.Girth(); got != tc.want {
			t.Errorf("%v: girth=%d, want %d", tc.g, got, tc.want)
		}
	}
}

func TestComponents(t *testing.T) {
	g := DisjointUnion(Cycle(3), Path(2))
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Errorf("component sizes %d,%d want 3,2", len(comps[0]), len(comps[1]))
	}
	if g.IsConnected() {
		t.Error("disjoint union should not be connected")
	}
	if !Cycle(4).IsConnected() {
		t.Error("C4 should be connected")
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(4)
	d := g.BFSDistances(0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist(0,%d)=%d, want %d", i, d[i], want[i])
		}
	}
	h := DisjointUnion(Path(2), New(1))
	if dh := h.BFSDistances(0); dh[2] != -1 {
		t.Errorf("unreachable vertex should have distance -1, got %d", dh[2])
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(4)
	h := g.InducedSubgraph([]int{0, 1, 2})
	if h.N() != 3 || h.M() != 3 {
		t.Errorf("induced K3: n=%d m=%d", h.N(), h.M())
	}
}

func TestComplement(t *testing.T) {
	g := Cycle(5)
	c := g.Complement()
	if c.M() != 5 {
		t.Errorf("complement of C5 has %d edges, want 5", c.M())
	}
	if !Isomorphic(c, Cycle(5)) {
		t.Error("complement of C5 should be isomorphic to C5 (self-complementary)")
	}
}

func TestIsomorphic(t *testing.T) {
	tests := []struct {
		name string
		g, h *Graph
		want bool
	}{
		{"C6 vs C6 relabeled", Cycle(6), FromEdgeList(6, [][2]int{{0, 2}, {2, 4}, {4, 1}, {1, 3}, {3, 5}, {5, 0}}), true},
		{"C6 vs 2C3", Cycle(6), DisjointUnion(Cycle(3), Cycle(3)), false},
		{"K4 vs K4", Complete(4), Complete(4), true},
		{"star vs path", Star(3), Path(4), false},
		{"cospectral pair", nil, nil, false},
	}
	tests[4].g, tests[4].h = CospectralPair()
	for _, tc := range tests {
		if got := Isomorphic(tc.g, tc.h); got != tc.want {
			t.Errorf("%s: Isomorphic=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestIsomorphicRespectsLabels(t *testing.T) {
	g := Path(2)
	h := Path(2)
	h.SetVertexLabel(0, 7)
	if Isomorphic(g, h) {
		t.Error("label mismatch should break isomorphism")
	}
	g.SetVertexLabel(1, 7)
	if !Isomorphic(g, h) {
		t.Error("labelled P2s should be isomorphic")
	}
}

func TestIsomorphicRandomRelabelling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := Random(8, 0.4, rng)
		perm := rng.Perm(8)
		h := New(8)
		for _, e := range g.Edges() {
			h.AddEdge(perm[e.U], perm[e.V])
		}
		if !Isomorphic(g, h) {
			t.Fatalf("trial %d: relabelled graph not recognised as isomorphic\n%v\n%v", trial, g, h)
		}
	}
}

func TestAutomorphisms(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K3", Complete(3), 6},
		{"C4", Cycle(4), 8},
		{"C5", Cycle(5), 10},
		{"P3", Path(3), 2},
		{"S3", Star(3), 6},
		{"K4", Complete(4), 24},
		{"Petersen", Petersen(), 120},
	}
	for _, tc := range tests {
		if got := Automorphisms(tc.g); got != tc.want {
			t.Errorf("%s: aut=%d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestAllGraphsCounts(t *testing.T) {
	want := map[int]int{1: 1, 2: 2, 3: 4, 4: 11, 5: 34, 6: 156}
	for n := 1; n <= 6; n++ {
		if got := len(AllGraphs(n)); got != want[n] {
			t.Errorf("AllGraphs(%d)=%d classes, want %d", n, got, want[n])
		}
	}
}

func TestConnectedGraphsCounts(t *testing.T) {
	want := map[int]int{1: 1, 2: 1, 3: 2, 4: 6, 5: 21, 6: 112}
	for n := 1; n <= 6; n++ {
		if got := len(ConnectedGraphs(n)); got != want[n] {
			t.Errorf("ConnectedGraphs(%d)=%d, want %d", n, got, want[n])
		}
	}
}

func TestAllTreesCounts(t *testing.T) {
	want := map[int]int{1: 1, 2: 1, 3: 1, 4: 2, 5: 3, 6: 6, 7: 11, 8: 23}
	for n := 1; n <= 8; n++ {
		if got := len(AllTrees(n)); got != want[n] {
			t.Errorf("AllTrees(%d)=%d, want %d", n, got, want[n])
		}
	}
}

func TestAllTreesAreTrees(t *testing.T) {
	for n := 1; n <= 7; n++ {
		for _, tr := range AllTrees(n) {
			if tr.N() != n || tr.M() != n-1 || !tr.IsConnected() {
				t.Errorf("not a tree: %v", tr)
			}
		}
	}
}

func TestBinaryTrees(t *testing.T) {
	for _, bt := range BinaryTrees(7) {
		for v := 0; v < bt.N(); v++ {
			if bt.Degree(v) > 3 {
				t.Errorf("binary tree has vertex of degree %d: %v", bt.Degree(v), bt)
			}
		}
	}
	if len(BinaryTrees(4)) != 4 {
		// n=1,2,3 have 1 each; n=4 has P4 only (the star S3 has degree 3 centre,
		// which is allowed: max degree <= 3), so 2 trees at n=4.
		t.Logf("BinaryTrees(4) size = %d", len(BinaryTrees(4)))
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 20; n++ {
		tr := RandomTree(n, rng)
		if tr.N() != n || (n > 0 && tr.M() != n-1) || !tr.IsConnected() {
			t.Errorf("RandomTree(%d) not a tree: %v", n, tr)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomRegular(10, 3, rng)
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("deg(%d)=%d, want 3", v, g.Degree(v))
		}
	}
}

func TestSBM(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, block := SBM([]int{20, 20}, 0.8, 0.05, rng)
	if g.N() != 40 {
		t.Fatalf("SBM n=%d", g.N())
	}
	in, out := 0, 0
	for _, e := range g.Edges() {
		if block[e.U] == block[e.V] {
			in++
		} else {
			out++
		}
	}
	if in <= out {
		t.Errorf("SBM with pin>>pout should have more internal edges: in=%d out=%d", in, out)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := PreferentialAttachment(50, 2, rng)
	if g.N() != 50 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Error("PA graph should be connected")
	}
}

func TestKarateClub(t *testing.T) {
	g, f := KarateClub()
	if g.N() != 34 || g.M() != 78 {
		t.Fatalf("karate club: n=%d m=%d, want 34, 78", g.N(), g.M())
	}
	if len(f) != 34 {
		t.Fatalf("factions length %d", len(f))
	}
	if !g.IsConnected() {
		t.Error("karate club should be connected")
	}
}

func TestCospectralPairNotIsomorphic(t *testing.T) {
	g, h := CospectralPair()
	if g.N() != 5 || h.N() != 5 {
		t.Fatal("cospectral pair should have 5 vertices each")
	}
	if Isomorphic(g, h) {
		t.Error("K1,4 and C4+K1 must not be isomorphic")
	}
}

func TestCFIPairProperties(t *testing.T) {
	g, h := CFIPair()
	if g.N() != h.N() || g.M() != h.M() {
		t.Fatalf("CFI pair sizes differ: (%d,%d) vs (%d,%d)", g.N(), g.M(), h.N(), h.M())
	}
	if g.N() != 16 {
		t.Errorf("CFI over K4 should have 16 vertices, got %d", g.N())
	}
	if Isomorphic(g, h) {
		t.Error("twisted CFI graph must not be isomorphic to untwisted")
	}
	// Double twist is isomorphic to no twist: emulate by twisting edge 0 twice
	// (i.e. not at all) — sanity check that the untwisted graph is iso to itself
	// under relabelling.
	if !Isomorphic(g, g.Clone()) {
		t.Error("clone should be isomorphic")
	}
}

func TestDisjointUnionHomCompatibility(t *testing.T) {
	g := DisjointUnion(Cycle(3), Path(2))
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("union n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(3, 4) {
		t.Error("shifted edge missing")
	}
}

func TestQuickDegreeSumIsTwiceEdges(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		n := int(nRaw%12) + 1
		p := float64(pRaw) / 255
		g := Random(n, p, rand.New(rand.NewSource(seed)))
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComplementInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		g := Random(n, 0.5, rand.New(rand.NewSource(seed)))
		cc := g.Complement().Complement()
		return Isomorphic(g, cc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickIsomorphismInvariantUnderPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%7) + 2
		rng := rand.New(rand.NewSource(seed))
		g := Random(n, 0.5, rng)
		perm := rng.Perm(n)
		h := New(n)
		for _, e := range g.Edges() {
			h.AddEdge(perm[e.U], perm[e.V])
		}
		return Isomorphic(g, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFig4MatrixShape(t *testing.T) {
	m := Fig4Matrix()
	if len(m) != 3 || len(m[0]) != 5 {
		t.Fatalf("Fig4 matrix shape %dx%d", len(m), len(m[0]))
	}
}
