package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// adjacencyConsistent checks the structural invariant RemoveEdgeAt must
// preserve: every edge record is referenced by exactly the arcs AddEdgeFull
// would have created for it, i.e. rebuilding the adjacency from the edge
// slice yields the same per-vertex arc multisets.
func adjacencyConsistent(t *testing.T, g *Graph) {
	t.Helper()
	want := make([][]Arc, g.N())
	for idx, e := range g.Edges() {
		want[e.U] = append(want[e.U], Arc{To: e.V, Edge: idx})
		if !g.Directed() {
			want[e.V] = append(want[e.V], Arc{To: e.U, Edge: idx})
		}
	}
	sortArcs := func(as []Arc) {
		sort.Slice(as, func(i, j int) bool {
			if as[i].To != as[j].To {
				return as[i].To < as[j].To
			}
			return as[i].Edge < as[j].Edge
		})
	}
	for v := 0; v < g.N(); v++ {
		got := append([]Arc(nil), g.Arcs(v)...)
		sortArcs(got)
		sortArcs(want[v])
		if len(got) != len(want[v]) {
			t.Fatalf("vertex %d: %d arcs, want %d", v, len(got), len(want[v]))
		}
		for i := range got {
			if got[i] != want[v][i] {
				t.Fatalf("vertex %d arc %d: got %+v want %+v", v, i, got[i], want[v][i])
			}
		}
	}
}

func TestRemoveEdgeBasic(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) found nothing")
	}
	if g.M() != 2 || g.HasEdge(1, 2) {
		t.Fatalf("after removal: m=%d hasEdge(1,2)=%v", g.M(), g.HasEdge(1, 2))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatal("removal damaged unrelated edges")
	}
	adjacencyConsistent(t, g)
	if g.RemoveEdge(1, 2) {
		t.Fatal("second RemoveEdge(1,2) claimed success")
	}
	// Reverse orientation must also match on undirected graphs.
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) should match stored edge (0,1)")
	}
	adjacencyConsistent(t, g)
}

func TestRemoveEdgeDirected(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if g.RemoveEdge(2, 0) {
		t.Fatal("RemoveEdge on absent arc claimed success")
	}
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge(0,1) found nothing")
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 1) {
		t.Fatal("directed removal deleted the wrong orientation")
	}
	adjacencyConsistent(t, g)
}

func TestRemoveEdgeSelfLoopAndParallel(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0) // self-loop: two arcs at vertex 0
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // parallel edge
	g.AddEdgeFull(1, 2, 2.5, 7)
	if !g.RemoveEdge(0, 0) {
		t.Fatal("self-loop removal failed")
	}
	adjacencyConsistent(t, g)
	if len(g.Arcs(0)) != 2 {
		t.Fatalf("vertex 0 should keep both parallel arcs, has %d", len(g.Arcs(0)))
	}
	if !g.RemoveEdge(0, 1) {
		t.Fatal("parallel edge removal failed")
	}
	adjacencyConsistent(t, g)
	if !g.HasEdge(0, 1) {
		t.Fatal("removing one parallel edge removed both")
	}
	// The weighted labelled edge must survive all removals intact.
	var found bool
	for _, e := range g.Edges() {
		if e.U == 1 && e.V == 2 && e.Weight == 2.5 && e.Label == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("weighted labelled edge (1,2,2.5,7) lost or damaged")
	}
}

// TestRemoveEdgeRandomised drives long random add/remove sequences on
// directed and undirected graphs (with self-loops and parallel edges) and
// checks adjacency consistency after every removal.
func TestRemoveEdgeRandomised(t *testing.T) {
	for _, directed := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		var g *Graph
		if directed {
			g = NewDirected(8)
		} else {
			g = New(8)
		}
		for step := 0; step < 400; step++ {
			if g.M() == 0 || rng.Float64() < 0.6 {
				g.AddEdgeFull(rng.Intn(8), rng.Intn(8), float64(rng.Intn(3)+1), rng.Intn(2))
			} else {
				g.RemoveEdgeAt(rng.Intn(g.M()))
			}
			adjacencyConsistent(t, g)
		}
	}
}
