package graph

import "sort"

// Isomorphic reports whether g and h are isomorphic, respecting direction,
// vertex labels, edge labels and edge weights. It is intended for the small
// graphs used in experiments and tests (exact backtracking with iterated
// degree/label refinement pruning).
func Isomorphic(g, h *Graph) bool {
	return countMappings(g, h, true) > 0
}

// Automorphisms returns the order of the automorphism group of g.
func Automorphisms(g *Graph) int {
	return countMappings(g, g, false)
}

// countMappings counts isomorphisms from g to h; with stopAtFirst it returns
// 1 as soon as one is found.
func countMappings(g, h *Graph, stopAtFirst bool) int {
	if g.n != h.n || len(g.edges) != len(h.edges) || g.directed != h.directed {
		return 0
	}
	n := g.n
	cg := refinementColours(g)
	ch := refinementColours(h)
	if !sameColourHistogram(cg, ch) {
		return 0
	}
	// Order g's vertices to fail fast: rarest colour class first, then by
	// connectivity to already-placed vertices.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	classSize := map[int]int{}
	for _, c := range cg {
		classSize[c]++
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if classSize[cg[a]] != classSize[cg[b]] {
			return classSize[cg[a]] < classSize[cg[b]]
		}
		return a < b
	})

	perm := make([]int, n) // g vertex -> h vertex
	used := make([]bool, n)
	for i := range perm {
		perm[i] = -1
	}
	count := 0
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			count++
			return stopAtFirst
		}
		v := order[k]
		for w := 0; w < n; w++ {
			if used[w] || ch[w] != cg[v] {
				continue
			}
			if !compatible(g, h, perm, v, w) {
				continue
			}
			perm[v] = w
			used[w] = true
			if rec(k + 1) {
				return true
			}
			perm[v] = -1
			used[w] = false
		}
		return false
	}
	rec(0)
	return count
}

// compatible checks whether mapping v->w is consistent with the partial map:
// every already-mapped neighbour relation of v must be mirrored at w with
// matching weight/label multiset, and vice versa.
func compatible(g, h *Graph, perm []int, v, w int) bool {
	if g.vlabels[v] != h.vlabels[w] {
		return false
	}
	type ek struct {
		to     int
		weight float64
		label  int
	}
	gm := map[ek]int{}
	for _, a := range g.adj[v] {
		if t := perm[a.To]; t >= 0 {
			e := g.edges[a.Edge]
			gm[ek{t, e.Weight, e.Label}]++
		}
	}
	hm := map[ek]int{}
	mapped := map[int]bool{}
	for u, t := range perm {
		if t >= 0 {
			mapped[t] = true
			_ = u
		}
	}
	for _, a := range h.adj[w] {
		if mapped[a.To] {
			e := h.edges[a.Edge]
			hm[ek{a.To, e.Weight, e.Label}]++
		}
	}
	if len(gm) != len(hm) {
		return false
	}
	for k, c := range gm {
		if hm[k] != c {
			return false
		}
	}
	if g.directed {
		// Also check in-arcs against the partial map.
		gin := map[ek]int{}
		for _, e := range g.edges {
			if e.V == v {
				if t := perm[e.U]; t >= 0 {
					gin[ek{t, e.Weight, e.Label}]++
				}
			}
		}
		hin := map[ek]int{}
		for _, e := range h.edges {
			if e.V == w && mapped[e.U] {
				hin[ek{e.U, e.Weight, e.Label}]++
			}
		}
		if len(gin) != len(hin) {
			return false
		}
		for k, c := range gin {
			if hin[k] != c {
				return false
			}
		}
	}
	return true
}

// refinementColours runs a simple colour refinement (degree + labels) used
// purely as an isomorphism-pruning heuristic; the wl package holds the real
// algorithm. Colours are normalised so isomorphic graphs get identical
// histograms.
func refinementColours(g *Graph) []int {
	n := g.n
	col := make([]int, n)
	for v := 0; v < n; v++ {
		col[v] = g.vlabels[v]
	}
	normalise := func(keys []string) []int {
		uniq := map[string]int{}
		var sorted []string
		for _, k := range keys {
			if _, ok := uniq[k]; !ok {
				uniq[k] = 0
				sorted = append(sorted, k)
			}
		}
		sort.Strings(sorted)
		for i, k := range sorted {
			uniq[k] = i
		}
		out := make([]int, len(keys))
		for i, k := range keys {
			out[i] = uniq[k]
		}
		return out
	}
	for round := 0; round < n; round++ {
		keys := make([]string, n)
		for v := 0; v < n; v++ {
			var sig []int
			for _, a := range g.adj[v] {
				e := g.edges[a.Edge]
				sig = append(sig, col[a.To]*31+e.Label)
			}
			sort.Ints(sig)
			keys[v] = signatureKey(col[v], sig)
		}
		next := normalise(keys)
		if samePartition(col, next) {
			return next
		}
		col = next
	}
	return col
}

func signatureKey(own int, sig []int) string {
	buf := make([]byte, 0, 4+4*len(sig))
	enc := func(x int) {
		buf = append(buf, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	enc(own)
	for _, s := range sig {
		enc(s)
	}
	return string(buf)
}

func samePartition(a, b []int) bool {
	fwd := map[int]int{}
	bwd := map[int]int{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := bwd[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

func sameColourHistogram(a, b []int) bool {
	ha := map[int]int{}
	hb := map[int]int{}
	for _, c := range a {
		ha[c]++
	}
	for _, c := range b {
		hb[c]++
	}
	if len(ha) != len(hb) {
		return false
	}
	for c, k := range ha {
		if hb[c] != k {
			return false
		}
	}
	return true
}
