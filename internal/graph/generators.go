package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph with k vertices (k-1 edges). P(1) is a single
// vertex.
func Path(k int) *Graph {
	g := New(k)
	for i := 0; i+1 < k; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle with k >= 3 vertices.
func Cycle(k int) *Graph {
	if k < 3 {
		panic("graph: cycle needs at least 3 vertices") //x2vec:allow nopanic generator precondition; callers pass constants
	}
	g := New(k)
	for i := 0; i < k; i++ {
		g.AddEdge(i, (i+1)%k)
	}
	return g
}

// Complete returns the complete graph on k vertices.
func Complete(k int) *Graph {
	g := New(k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Star returns the star S_k: one centre (vertex 0) joined to k leaves.
func Star(k int) *Graph {
	g := New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddEdge(i, a+j)
		}
	}
	return g
}

// Petersen returns the Petersen graph.
func Petersen() *Graph {
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer cycle
		g.AddEdge(i, i+5)         // spokes
		g.AddEdge(i+5, (i+2)%5+5) // inner pentagram
	}
	return g
}

// Erdos-Renyi random graph G(n, p).
func Random(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n vertices via a
// random Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n <= 0 {
		return New(0)
	}
	if n == 1 {
		return New(1)
	}
	if n == 2 {
		g := New(2)
		g.AddEdge(0, 1)
		return g
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	return TreeFromPrufer(seq)
}

// TreeFromPrufer decodes a Prüfer sequence into the tree on len(seq)+2
// vertices.
func TreeFromPrufer(seq []int) *Graph {
	n := len(seq) + 2
	g := New(n)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range seq {
		deg[v]++
	}
	for _, v := range seq {
		for u := 0; u < n; u++ {
			if deg[u] == 1 {
				g.AddEdge(u, v)
				deg[u]--
				deg[v]--
				break
			}
		}
	}
	u, w := -1, -1
	for v := 0; v < n; v++ {
		if deg[v] == 1 {
			if u < 0 {
				u = v
			} else {
				w = v
			}
		}
	}
	g.AddEdge(u, w)
	return g
}

// RandomRegular returns a random d-regular simple graph on n vertices using
// the pairing model with restarts. n*d must be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if n*d%2 != 0 || d >= n {
		panic(fmt.Sprintf("graph: no %d-regular graph on %d vertices", d, n)) //x2vec:allow nopanic generator precondition; callers pass constants
	}
	for attempt := 0; attempt < 1000; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		g := New(n)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.AddEdge(u, v)
		}
		if ok {
			return g
		}
	}
	panic("graph: random regular generation failed after 1000 attempts") //x2vec:allow nopanic restart exhaustion has vanishing probability for valid (n,d)
}

// SBM samples a stochastic block model: sizes[i] vertices in block i, edge
// probability pin within a block and pout across blocks. The returned
// assignment maps each vertex to its block.
func SBM(sizes []int, pin, pout float64, rng *rand.Rand) (*Graph, []int) {
	n := 0
	for _, s := range sizes {
		n += s
	}
	block := make([]int, n)
	v := 0
	for b, s := range sizes {
		for i := 0; i < s; i++ {
			block[v] = b
			v++
		}
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pout
			if block[i] == block[j] {
				p = pin
			}
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g, block
}

// PreferentialAttachment grows a Barabási–Albert-style graph: start from a
// small clique and attach each new vertex to m existing vertices chosen with
// probability proportional to degree.
func PreferentialAttachment(n, m int, rng *rand.Rand) *Graph {
	if n < m+1 {
		panic("graph: preferential attachment needs n >= m+1") //x2vec:allow nopanic generator precondition; callers pass constants
	}
	g := New(n)
	var targets []int
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdge(i, j)
			targets = append(targets, i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			chosen[targets[rng.Intn(len(targets))]] = true
		}
		for u := range chosen {
			g.AddEdge(v, u)
			targets = append(targets, v, u)
		}
	}
	return g
}

// KarateClub returns Zachary's karate club network (34 vertices, 78 edges),
// the canonical small social network used for node-embedding figures, along
// with the standard two-faction split (0 = instructor's faction, 1 =
// president's faction).
func KarateClub() (*Graph, []int) {
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}, {0, 10},
		{0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21}, {0, 31}, {1, 2},
		{1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21}, {1, 30}, {2, 3},
		{2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28}, {2, 32}, {3, 7},
		{3, 12}, {3, 13}, {4, 6}, {4, 10}, {5, 6}, {5, 10}, {5, 16}, {6, 16},
		{8, 30}, {8, 32}, {8, 33}, {9, 33}, {13, 33}, {14, 32}, {14, 33},
		{15, 32}, {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33},
		{22, 32}, {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33},
		{24, 25}, {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33},
		{28, 31}, {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32},
		{31, 33}, {32, 33},
	}
	g := FromEdgeList(34, edges)
	factions := []int{
		0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0,
		1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
	}
	return g, factions
}

// CospectralPair returns the classic co-spectral but non-isomorphic pair
// from Figure 6 of the paper: the star K_{1,4} and the disjoint union
// C4 ∪ K1. Both have spectrum {-2, 0, 0, 0, 2}.
func CospectralPair() (*Graph, *Graph) {
	star := Star(4)
	c4k1 := DisjointUnion(Cycle(4), New(1))
	return star, c4k1
}

// WLIndistinguishablePair returns the textbook pair that 1-WL cannot
// distinguish: the 6-cycle and the disjoint union of two triangles (both
// 2-regular on six vertices).
func WLIndistinguishablePair() (*Graph, *Graph) {
	return Cycle(6), DisjointUnion(Cycle(3), Cycle(3))
}

// Fig5Graph returns the running example graph used for Figures 3 and 5 and
// Examples 3.3/4.1 of the paper: the "paw" graph (a triangle with a pendant
// vertex) satisfies the paper's published homomorphism counts
// hom(S2, G) = 18 and hom(T, G) = 114 for the height-2 tree T used in
// Example 4.1 (see EXPERIMENTS.md E05 for the reconstruction).
func Fig5Graph() *Graph {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	return g
}

// Fig4Matrix returns the 3×5 matrix from Figure 4 of the paper, used by the
// matrix-WL experiment.
func Fig4Matrix() [][]float64 {
	return [][]float64{
		{0.3, 2, 1, 0, 0.7},
		{1, 0, 1, 1, 1},
		{0.7, 2, 0, 1, 0.3},
	}
}

// Grid returns the r-by-c grid graph.
func Grid(r, c int) *Graph {
	g := New(r * c)
	at := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(at(i, j), at(i, j+1))
			}
			if i+1 < r {
				g.AddEdge(at(i, j), at(i+1, j))
			}
		}
	}
	return g
}
