package analysis

// Package loading without golang.org/x/tools. The repo's linter must stay
// offline-safe and dependency-free, so packages are discovered with
// `go list -json`, parsed with go/parser, and type-checked with go/types
// against gc export data pulled from the build cache via
// `go list -export`. The toolchain that compiles the code also produces
// the export data the checker imports, so the two can never skew.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Pkg is one loaded, type-checked package plus the build-tag-excluded
// files the type checker never sees (needed by racemirror).
type Pkg struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // parsed + type-checked non-test sources
	TagFiles   []*ast.File // parsed only: sources excluded by build tags
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error

	// Internal marks packages subject to the library-code rules
	// (nopanic, the go-statement half of workerpool).
	Internal bool
	// PoolPkg marks the approved goroutine-pool packages where bare go
	// statements are the implementation, not a violation.
	PoolPkg bool
}

// poolPackages are the only internal packages allowed to spawn goroutines
// directly; everything else rides their ParallelFor*-style pools.
var poolPackages = map[string]bool{
	"linalg": true,
	"serve":  true,
	"sgns":   true,
}

type listPkg struct {
	ImportPath     string
	Dir            string
	Export         string
	GoFiles        []string
	IgnoredGoFiles []string
	Standard       bool
	Error          *struct{ Err string }
}

// exportCatalog resolves import paths to gc export data files, shelling
// out to `go list -export` on demand for paths not seen up front.
type exportCatalog struct {
	mu    sync.Mutex
	dir   string // working directory for go list invocations
	files map[string]string
}

func (c *exportCatalog) lookup(path string) (io.ReadCloser, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		pkgs, err := goList(c.dir, "-export", "-deps", path)
		if err != nil {
			return nil, fmt.Errorf("analysis: resolving import %q: %w", path, err)
		}
		for _, p := range pkgs {
			if p.Export != "" {
				c.files[p.ImportPath] = p.Export
			}
		}
		f, ok = c.files[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	return os.Open(f)
}

func goList(dir string, extra ...string) ([]listPkg, error) {
	args := append([]string{"list", "-json"}, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPatterns loads, parses, and type-checks every non-test package
// matched by the go list patterns (e.g. "./..."), resolving imports —
// stdlib and in-module alike — through build-cache export data.
func LoadPatterns(dir string, patterns ...string) ([]*Pkg, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// One -deps -export pass seeds the catalog with every dependency's
	// export data (and forces compilation into the build cache).
	deps, err := goList(dir, append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	cat := &exportCatalog{dir: dir, files: map[string]string{}}
	for _, p := range deps {
		if p.Export != "" {
			cat.files[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", cat.lookup)
	var out []*Pkg
	for _, t := range targets {
		if t.Standard || t.Error != nil || len(t.GoFiles)+len(t.IgnoredGoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, t listPkg) (*Pkg, error) {
	pkg := &Pkg{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Internal:   strings.Contains("/"+t.ImportPath+"/", "/internal/"),
	}
	pkg.PoolPkg = pkg.Internal && poolPackages[filepath.Base(t.ImportPath)]
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	for _, name := range t.IgnoredGoFiles {
		// Excluded-by-tags files are kept for syntactic analysis only; a
		// parse failure here (e.g. a non-Go artifact) is not our problem.
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err == nil {
			pkg.TagFiles = append(pkg.TagFiles, f)
		}
	}
	pkg.typeCheck(imp)
	return pkg, nil
}

// LoadDir loads a single directory as one package outside the module's
// package graph — the shape the linter's own testdata packages use. The
// caller gets the same Pkg a `go list` load would produce, with Internal
// defaulted to true so the library-code rules are exercised.
func LoadDir(dir string) (*Pkg, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &Pkg{
		ImportPath: filepath.ToSlash(filepath.Base(abs)),
		Dir:        abs,
		Fset:       fset,
		Internal:   true,
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(abs, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if satisfiedByCurrentBuild(fileConstraint(fset, f)) {
			pkg.Files = append(pkg.Files, f)
		} else {
			pkg.TagFiles = append(pkg.TagFiles, f)
		}
	}
	cat := &exportCatalog{dir: abs, files: map[string]string{}}
	imp := importer.ForCompiler(fset, "gc", cat.lookup)
	pkg.typeCheck(imp)
	return pkg, nil
}

func (p *Pkg) typeCheck(imp types.Importer) {
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	// Check errors are collected, not fatal: `go build` gates the linter in
	// CI, so residual errors mean a loader bug and surface as findings.
	p.Types, _ = conf.Check(p.ImportPath, p.Fset, p.Files, p.Info)
}

// fileConstraint returns the //go:build expression governing f, or nil.
func fileConstraint(fset *token.FileSet, f *ast.File) constraint.Expr {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				if x, err := constraint.Parse(c.Text); err == nil {
					return x
				}
			}
		}
	}
	return nil
}

// evalConstraint evaluates a build expression with the race tag forced to
// the given value; GOOS/GOARCH/go1.N tags match the running toolchain and
// everything else is off.
func evalConstraint(x constraint.Expr, race bool) bool {
	if x == nil {
		return true
	}
	return x.Eval(func(tag string) bool {
		switch {
		case tag == "race":
			return race
		case tag == runtime.GOOS || tag == runtime.GOARCH:
			return true
		case strings.HasPrefix(tag, "go1."):
			return true
		}
		return false
	})
}

func satisfiedByCurrentBuild(x constraint.Expr) bool { return evalConstraint(x, false) }
