// Package analysis is the repo's own static-analysis pass: a small
// stdlib-only framework (loader, directive parser, runner) plus one
// analyzer per hand-built invariant that the compiler cannot see —
// zero-allocation hot paths, no-panic library code, seeded randomness,
// explicit worker pools, and race-build mirror files. `cmd/x2veclint`
// drives it over the module and CI fails on any finding, so invariants
// that used to live in reviewer memory are machine-checked on every push.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Analyzer is one named rule over a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pkg) []Finding
}

// Analyzers returns the full rule suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		hotallocAnalyzer,
		nopanicAnalyzer,
		noglobalrandAnalyzer,
		workerpoolAnalyzer,
		racemirrorAnalyzer,
	}
}

// AnalyzerNames returns the names of the full suite.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

const (
	allowPrefix   = "//x2vec:allow"
	hotpathMarker = "//x2vec:hotpath"
)

// directives holds the //x2vec:allow suppressions of one package:
// file -> line -> rule set. A directive suppresses the named rule on its
// own line (trailing-comment form) and on the line directly below it
// (standalone-comment form).
type directives map[string]map[int]map[string]bool

func (d directives) allows(pos token.Position, rule string) bool {
	lines := d[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][rule] || lines[pos.Line-1][rule]
}

// collectDirectives scans every comment of the package (tag-excluded
// files included) for //x2vec:allow markers. Malformed directives — no
// rule, unknown rule, or a missing justification — are themselves
// findings: the escape hatch only works audited.
func collectDirectives(p *Pkg, known map[string]bool) (directives, []Finding) {
	d := directives{}
	var bad []Finding
	files := append(append([]*ast.File{}, p.Files...), p.TagFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{pos, "directive", "x2vec:allow needs a rule name and a justification"})
				case !known[fields[0]]:
					bad = append(bad, Finding{pos, "directive", fmt.Sprintf("x2vec:allow names unknown rule %q", fields[0])})
				case len(fields) < 2:
					bad = append(bad, Finding{pos, "directive", fmt.Sprintf("x2vec:allow %s needs a justification", fields[0])})
				default:
					lines := d[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						d[pos.Filename] = lines
					}
					rules := lines[pos.Line]
					if rules == nil {
						rules = map[string]bool{}
						lines[pos.Line] = rules
					}
					rules[fields[0]] = true
				}
			}
		}
	}
	return d, bad
}

// Run executes the analyzers over every package, applies //x2vec:allow
// suppressions, surfaces type-check failures, and returns the surviving
// findings sorted by position.
func Run(pkgs []*Pkg, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, p := range pkgs {
		d, bad := collectDirectives(p, known)
		out = append(out, bad...)
		for _, err := range p.TypeErrors {
			out = append(out, Finding{Rule: "typecheck", Message: err.Error(), Pos: typeErrorPos(err)})
		}
		for _, a := range analyzers {
			for _, f := range a.Run(p) {
				if !d.allows(f.Pos, f.Rule) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

func typeErrorPos(err error) token.Position {
	if te, ok := err.(types.Error); ok && te.Fset != nil {
		return te.Fset.Position(te.Pos)
	}
	return token.Position{}
}
