package analysis

import (
	"go/ast"
	"go/types"
)

// nopanic: library code under internal/ must return errors, not panic.
// PR 3 set the pattern (treedec.ErrTooLarge and friends): callers of a
// library can always recover an error, but a panic kills the serving
// daemon. Deliberate invariant panics — impossible-by-construction
// states, documented small-input caps with an error-returning sibling —
// survive only under an audited `//x2vec:allow nopanic <why>`.
var nopanicAnalyzer = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic in internal library code; return errors instead",
	Run:  runNopanic,
}

func runNopanic(p *Pkg) []Finding {
	if !p.Internal {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					out = append(out, Finding{
						Pos:     p.Fset.Position(call.Pos()),
						Rule:    "nopanic",
						Message: "panic in library code: return an error (treedec.ErrTooLarge pattern) or justify with //x2vec:allow nopanic",
					})
				}
			}
			return true
		})
	}
	return out
}
