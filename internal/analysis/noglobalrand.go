package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// noglobalrand: the engines are bit-deterministic by contract — every
// random stream flows from an explicit seed through a *rand.Rand or the
// repo's splitmix64 (sgns.FastRand), never through math/rand's shared
// global source. A single rand.Intn in an engine silently breaks corpus
// reproducibility and the differential test suites built on it.
var noglobalrandAnalyzer = &Analyzer{
	Name: "noglobalrand",
	Doc:  "forbid math/rand global-source top-level functions; thread a seeded *rand.Rand",
	Run:  runNoglobalrand,
}

// randConstructors are the math/rand package-level functions that do NOT
// touch the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runNoglobalrand(p *Pkg) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && !randConstructors[fn.Name()] {
				out = append(out, Finding{
					Pos:     p.Fset.Position(sel.Pos()),
					Rule:    "noglobalrand",
					Message: fmt.Sprintf("rand.%s uses the global math/rand source; thread a seeded *rand.Rand (or splitmix64) for determinism", fn.Name()),
				})
			}
			return true
		})
	}
	return out
}
