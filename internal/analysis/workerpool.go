package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// workerpool: per-pipeline worker caps replaced the old process-global
// GOMAXPROCS mutation in PR 5, and all engine fan-out rides the pool
// primitives (linalg.ParallelFor*, the serve coalescer, the sgns Hogwild
// pool) so goroutine counts stay bounded per pipeline. Two checks:
// runtime.GOMAXPROCS may only be called with the constant 0 (a read),
// and bare go statements are confined to the approved pool packages.
var workerpoolAnalyzer = &Analyzer{
	Name: "workerpool",
	Doc:  "forbid GOMAXPROCS mutation and bare go statements outside the approved pool packages",
	Run:  runWorkerpool,
}

func runWorkerpool(p *Pkg) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if p.Internal && !p.PoolPkg {
					out = append(out, Finding{
						Pos:     p.Fset.Position(n.Pos()),
						Rule:    "workerpool",
						Message: "bare go statement outside the approved pool packages (linalg, serve, sgns); fan out via linalg.ParallelFor* with an explicit worker cap",
					})
				}
			case *ast.CallExpr:
				if isGOMAXPROCSMutation(p, n) {
					out = append(out, Finding{
						Pos:     p.Fset.Position(n.Pos()),
						Rule:    "workerpool",
						Message: "runtime.GOMAXPROCS with a non-zero argument mutates the process-global pool; thread an explicit Workers cap instead",
					})
				}
			}
			return true
		})
	}
	return out
}

func isGOMAXPROCSMutation(p *Pkg, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "GOMAXPROCS" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[x].(*types.PkgName)
	if !ok || pn.Imported().Path() != "runtime" {
		return false
	}
	if len(call.Args) != 1 {
		return true
	}
	tv := p.Info.Types[call.Args[0]]
	if tv.Value == nil {
		return true // non-constant argument: cannot prove it is a read
	}
	v, ok := constant.Int64Val(tv.Value)
	return !ok || v != 0
}
