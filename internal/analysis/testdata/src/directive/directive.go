// Package directive is x2veclint golden testdata for the //x2vec:allow
// escape hatch: suppression is rule- and line-exact, and unjustified
// directives are findings themselves. Expectations live in the test, not
// in want comments, because the directives under test share the lines.
package directive

import "math/rand"

// Suppressed inline: no nopanic finding on line 12.
func a() {
	panic("invariant") //x2vec:allow nopanic documented impossible state
}

// Suppressed by the standalone form on the line above: no noglobalrand
// finding on line 19.
func b(n int) int {
	//x2vec:allow noglobalrand jitter only, determinism not required here
	return rand.Intn(n)
}

// A directive for one rule must not silence another: the nopanic finding
// on line 25 survives its noglobalrand allow.
func c() {
	panic("boom") //x2vec:allow noglobalrand wrong rule on purpose
}

// A directive without a justification is itself a finding, and the
// panic on line 31 stays flagged.
func d() {
	panic("boom") //x2vec:allow nopanic
}

// A directive naming an unknown rule is a finding.
func e() int {
	return 1 //x2vec:allow madeuprule because reasons
}
