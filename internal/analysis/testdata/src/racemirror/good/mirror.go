//go:build !race

// Package mirror is x2veclint golden testdata: a race/!race pair whose
// function sets match exactly — no findings.
package mirror

func ld(s []float64, i int) float64 { return s[i] }

func st(s []float64, i int, v float64) { s[i] = v }
