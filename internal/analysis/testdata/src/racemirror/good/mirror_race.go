//go:build race

package mirror

func ld(s []float64, i int) float64 { return s[i] }

func st(s []float64, i int, v float64) { s[i] = v }
