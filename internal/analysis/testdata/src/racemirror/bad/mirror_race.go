//go:build race

package mirror

func ld(s []float64, i int) float64 { return s[i] }

// extra exists only in the race file: flagged.
func extra(s []float64) float64 { return s[0] } //want racemirror

func scale(s []float64, f float32) { //want racemirror
	for i := range s {
		s[i] *= float64(f)
	}
}
