//go:build !race

// Package mirror is x2veclint golden testdata: a race/!race file pair
// whose function sets have drifted in all three possible ways.
package mirror

func ld(s []float64, i int) float64 { return s[i] }

// st exists only in the !race file: flagged at this declaration.
func st(s []float64, i int, v float64) { s[i] = v } //want racemirror

// scale exists in both files but with different signatures: flagged at
// the race-side declaration.
func scale(s []float64, f float64) {
	for i := range s {
		s[i] *= f
	}
}
