// Package hotalloc is x2veclint golden testdata: allocation-bearing
// constructs inside and outside //x2vec:hotpath functions.
package hotalloc

import "fmt"

// Hot is the annotated inner loop: every alloc-bearing construct in it
// (or in a same-package callee) is flagged.
//
//x2vec:hotpath
func Hot(xs []string, b []byte, n int) string {
	s := ""
	for _, x := range xs {
		s += x //want hotalloc
	}
	s = s + string(b)      //want hotalloc hotalloc
	m := make(map[int]int) //want hotalloc
	_ = m
	_ = map[string]int{"a": 1} //want hotalloc
	ch := make(chan int)       //want hotalloc
	_ = ch
	k := 0
	f := func() { k++ } //want hotalloc
	f()
	sink(n)    //want hotalloc
	callee(xs) // pulls callee into the hot closure
	if n < 0 {
		// Panic arguments are exempt: this allocation only happens on the
		// way out of a dying invariant, never in steady state.
		panic(fmt.Sprintf("hotalloc: bad n %d", n))
	}
	return s
}

// callee is reached from Hot, so its fmt call is flagged too.
func callee(xs []string) {
	fmt.Println(xs) //want hotalloc
}

// sink's interface parameter makes Hot's call site a boxing allocation;
// sink itself is clean.
func sink(v any) {}

// Cold has the same constructs but no hotpath annotation and no hot
// caller: clean.
func Cold(xs []string, b []byte) string {
	s := ""
	for _, x := range xs {
		s += x
	}
	m := map[string]int{"a": 1}
	_ = m
	return s + string(b) + fmt.Sprint(len(xs))
}
