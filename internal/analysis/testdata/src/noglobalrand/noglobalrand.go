// Package noglobalrand is x2veclint golden testdata: global math/rand
// source use versus properly seeded generators.
package noglobalrand

import "math/rand"

// Bad draws from the process-global source: nondeterministic, flagged.
func Bad(n int) int {
	rand.Shuffle(n, func(i, j int) {}) //want noglobalrand
	return rand.Intn(n)                //want noglobalrand
}

// Good threads a seeded *rand.Rand: clean (rand.New and rand.NewSource
// are constructors, not global-source draws).
func Good(n int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
