// Package workerpool is x2veclint golden testdata: GOMAXPROCS mutation
// and bare goroutine spawns versus the approved read/pool forms.
package workerpool

import (
	"runtime"
	"sync"
)

// Bad mutates the global pool and spawns an unpooled goroutine.
func Bad(done chan struct{}) {
	runtime.GOMAXPROCS(4) //want workerpool
	go func() {           //want workerpool
		close(done)
	}()
}

// Good only reads GOMAXPROCS and fans out through a (stand-in) pool
// helper rather than a bare go statement.
func Good() int {
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	wg.Wait()
	return workers
}
