// Package nopanic is x2veclint golden testdata: one positive and one
// negative case for the nopanic rule.
package nopanic

import "errors"

var errBad = errors.New("nopanic: bad input")

// Bad panics in library code: flagged.
func Bad(n int) int {
	if n < 0 {
		panic("negative") //want nopanic
	}
	return n * 2
}

// Good returns an error instead: clean.
func Good(n int) (int, error) {
	if n < 0 {
		return 0, errBad
	}
	return n * 2, nil
}

// shadowed uses a local function named panic: not the builtin, clean.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
