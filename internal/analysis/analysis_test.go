package analysis

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func loadTestPkg(t *testing.T, dir string) *Pkg {
	t.Helper()
	p, err := LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if len(p.TypeErrors) > 0 {
		t.Fatalf("LoadDir(%s) type errors: %v", dir, p.TypeErrors)
	}
	return p
}

// wants collects the `//want rule [rule...]` expectations of a package's
// sources (tag-excluded files included) as a line -> sorted rules multiset.
func wants(p *Pkg) map[int][]string {
	out := map[int][]string{}
	for _, f := range append(append([]*ast.File{}, p.Files...), p.TagFiles...) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//want ")
				if !ok {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				out[line] = append(out[line], strings.Fields(rest)...)
				sort.Strings(out[line])
			}
		}
	}
	return out
}

func findingLines(fs []Finding) map[int][]string {
	out := map[int][]string{}
	for _, f := range fs {
		out[f.Pos.Line] = append(out[f.Pos.Line], f.Rule)
		sort.Strings(out[f.Pos.Line])
	}
	return out
}

func checkGolden(t *testing.T, p *Pkg, a *Analyzer) {
	t.Helper()
	got := findingLines(Run([]*Pkg{p}, []*Analyzer{a}))
	want := wants(p)
	for line, rules := range want {
		if fmt.Sprint(got[line]) != fmt.Sprint(rules) {
			t.Errorf("line %d: got findings %v, want %v", line, got[line], rules)
		}
	}
	for line, rules := range got {
		if len(want[line]) == 0 {
			t.Errorf("line %d: unexpected findings %v", line, rules)
		}
	}
}

func TestNopanicGolden(t *testing.T) {
	checkGolden(t, loadTestPkg(t, "nopanic"), nopanicAnalyzer)
}

func TestNopanicSkipsNonInternal(t *testing.T) {
	p := loadTestPkg(t, "nopanic")
	p.Internal = false
	if fs := Run([]*Pkg{p}, []*Analyzer{nopanicAnalyzer}); len(fs) != 0 {
		t.Fatalf("non-internal package should be exempt, got %v", fs)
	}
}

func TestNoglobalrandGolden(t *testing.T) {
	checkGolden(t, loadTestPkg(t, "noglobalrand"), noglobalrandAnalyzer)
}

func TestWorkerpoolGolden(t *testing.T) {
	checkGolden(t, loadTestPkg(t, "workerpool"), workerpoolAnalyzer)
}

func TestWorkerpoolPoolPackageMayGo(t *testing.T) {
	p := loadTestPkg(t, "workerpool")
	p.PoolPkg = true
	fs := Run([]*Pkg{p}, []*Analyzer{workerpoolAnalyzer})
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "GOMAXPROCS") {
		t.Fatalf("pool package should only flag the GOMAXPROCS mutation, got %v", fs)
	}
}

func TestHotallocGolden(t *testing.T) {
	checkGolden(t, loadTestPkg(t, "hotalloc"), hotallocAnalyzer)
}

func TestRacemirrorGolden(t *testing.T) {
	checkGolden(t, loadTestPkg(t, filepath.Join("racemirror", "bad")), racemirrorAnalyzer)
}

func TestRacemirrorMatchedPairClean(t *testing.T) {
	p := loadTestPkg(t, filepath.Join("racemirror", "good"))
	if fs := Run([]*Pkg{p}, []*Analyzer{racemirrorAnalyzer}); len(fs) != 0 {
		t.Fatalf("matched race mirror should be clean, got %v", fs)
	}
}

// TestDirectiveSuppression pins the escape-hatch contract: //x2vec:allow
// suppresses exactly the named rule on the annotated line, and malformed
// directives are findings.
func TestDirectiveSuppression(t *testing.T) {
	p := loadTestPkg(t, "directive")
	src, err := os.ReadFile(filepath.Join("testdata", "src", "directive", "directive.go"))
	if err != nil {
		t.Fatal(err)
	}
	lineOf := func(marker string) []int {
		var out []int
		for i, l := range strings.Split(string(src), "\n") {
			if strings.Contains(l, marker) {
				out = append(out, i+1)
			}
		}
		return out
	}
	got := findingLines(Run([]*Pkg{p}, Analyzers()))

	for _, line := range lineOf(`panic("invariant")`) {
		if len(got[line]) != 0 {
			t.Errorf("line %d: allowed panic should be suppressed, got %v", line, got[line])
		}
	}
	for _, line := range lineOf("rand.Intn(n)") {
		if len(got[line]) != 0 {
			t.Errorf("line %d: standalone allow above should suppress, got %v", line, got[line])
		}
	}
	for _, line := range lineOf("wrong rule on purpose") {
		if fmt.Sprint(got[line]) != "[nopanic]" {
			t.Errorf("line %d: allow for another rule must not suppress nopanic, got %v", line, got[line])
		}
	}
	var directiveFindings, nopanicSurvivors int
	for _, rules := range got {
		for _, r := range rules {
			switch r {
			case "directive":
				directiveFindings++
			case "nopanic":
				nopanicSurvivors++
			}
		}
	}
	if directiveFindings != 2 {
		t.Errorf("want 2 malformed-directive findings (no justification, unknown rule), got %d: %v", directiveFindings, got)
	}
	if nopanicSurvivors != 2 {
		t.Errorf("want 2 surviving nopanic findings, got %d: %v", nopanicSurvivors, got)
	}
}

// TestModuleIsClean is the dogfood gate in test form: the repository's
// own tree must lint clean, so `go test` fails the moment a violation
// lands even if CI's dedicated x2veclint step is skipped.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadPatterns(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", f)
	}
}
