package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
)

// racemirror: the Hogwild engine swaps its shared-parameter accessors by
// build tag — plain loads/stores in normal builds, relaxed atomics under
// -race (internal/sgns/params_race.go vs params_norace.go). The compiler
// checks each build in isolation, so the two files can drift: a function
// added to one and not the other only explodes when someone runs the
// other configuration. This analyzer diffs the package-level function
// sets (names and signatures) of every race-tagged file against its
// !race counterparts.
var racemirrorAnalyzer = &Analyzer{
	Name: "racemirror",
	Doc:  "race-build files must declare exactly the package-level functions of their !race counterparts",
	Run:  runRacemirror,
}

type mirrorFunc struct {
	sig string
	pos token.Pos
}

func runRacemirror(p *Pkg) []Finding {
	race := map[string]mirrorFunc{}
	plain := map[string]mirrorFunc{}
	haveRaceFile := false
	all := append(append([]*ast.File{}, p.Files...), p.TagFiles...)
	for _, f := range all {
		x := fileConstraint(p.Fset, f)
		if x == nil {
			continue
		}
		underRace, underPlain := evalConstraint(x, true), evalConstraint(x, false)
		if underRace == underPlain {
			continue // not a race-sensitive file
		}
		dst := plain
		if underRace {
			dst = race
			haveRaceFile = true
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			dst[funcKey(fd)] = mirrorFunc{sig: funcSig(p.Fset, fd), pos: fd.Pos()}
		}
	}
	if !haveRaceFile {
		return nil
	}
	var out []Finding
	for key, rf := range race {
		pf, ok := plain[key]
		switch {
		case !ok:
			out = append(out, Finding{
				Pos:     p.Fset.Position(rf.pos),
				Rule:    "racemirror",
				Message: fmt.Sprintf("race-build function %s has no !race counterpart; the accessor sets have drifted", key),
			})
		case pf.sig != rf.sig:
			out = append(out, Finding{
				Pos:     p.Fset.Position(rf.pos),
				Rule:    "racemirror",
				Message: fmt.Sprintf("race-build function %s has signature %s but the !race counterpart has %s", key, rf.sig, pf.sig),
			})
		}
	}
	for key, pf := range plain {
		if _, ok := race[key]; !ok {
			out = append(out, Finding{
				Pos:     p.Fset.Position(pf.pos),
				Rule:    "racemirror",
				Message: fmt.Sprintf("function %s in a !race file has no race-build counterpart; -race builds will not compile or will silently diverge", key),
			})
		}
	}
	return out
}

// funcKey is the identity of a package-level function: receiver base type
// (if any) plus name.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return typeText(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

func funcSig(fset *token.FileSet, fd *ast.FuncDecl) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, fd.Type)
	return buf.String()
}

func typeText(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
