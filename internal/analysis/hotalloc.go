package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotalloc: functions marked `//x2vec:hotpath` (and every same-package
// function they reach) are the per-pair / per-vertex inner loops whose
// zero-allocation steady state the AllocsPerRun tests pin at runtime.
// This analyzer pins it statically, rejecting the constructs that put an
// allocation (or a write barrier) in the loop: fmt calls, non-constant
// string concatenation, string<->[]byte conversions, map literals and
// make(map/chan), variable-capturing closures, and concrete values boxed
// into interface parameters at call sites. Constructs that only execute
// while panicking (arguments of panic calls) are exempt — a message
// built on the way out of a dying process costs nothing in steady state.
var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation-bearing constructs in //x2vec:hotpath functions and their same-package callees",
	Run:  runHotalloc,
}

func runHotalloc(p *Pkg) []Finding {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
			if hasHotpathMarker(fd) {
				roots = append(roots, fd)
			}
		}
	}
	// Transitive same-package closure, each function attributed to the
	// first hotpath root that reaches it.
	rootOf := map[*ast.FuncDecl]string{}
	var queue []*ast.FuncDecl
	for _, r := range roots {
		if _, ok := rootOf[r]; !ok {
			rootOf[r] = funcKey(r)
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() != p.Types {
				return true
			}
			callee := decls[fn]
			if callee == nil {
				return true
			}
			if _, seen := rootOf[callee]; !seen {
				rootOf[callee] = rootOf[fd]
				queue = append(queue, callee)
			}
			return true
		})
	}
	var out []Finding
	for fd, root := range rootOf {
		out = append(out, checkHotFunc(p, fd, root)...)
	}
	return out
}

func hasHotpathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

// panicRanges returns the source ranges of every panic(...) argument list
// in the body: alloc-bearing constructs inside them are exempt.
func panicRanges(p *Pkg, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
				out = append(out, [2]token.Pos{call.Args[0].Pos(), call.Args[len(call.Args)-1].End()})
			}
		}
		return true
	})
	return out
}

func checkHotFunc(p *Pkg, fd *ast.FuncDecl, root string) []Finding {
	if fd.Body == nil {
		return nil
	}
	exempt := panicRanges(p, fd.Body)
	inPanic := func(pos token.Pos) bool {
		for _, r := range exempt {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	var out []Finding
	report := func(pos token.Pos, msg string) {
		if inPanic(pos) {
			return
		}
		out = append(out, Finding{
			Pos:     p.Fset.Position(pos),
			Rule:    "hotalloc",
			Message: fmt.Sprintf("%s (hot path: %s)", msg, root),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, n, report)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv := p.Info.Types[n]; tv.Value == nil && isStringType(tv.Type) {
					report(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if isStringType(exprType(p, n.Lhs[0])) {
					report(n.Pos(), "string += allocates")
				}
			}
		case *ast.CompositeLit:
			if tv := p.Info.Types[n]; tv.Type != nil {
				if _, ok := tv.Type.Underlying().(*types.Map); ok {
					report(n.Pos(), "map literal allocates")
				}
			}
		case *ast.FuncLit:
			if v := capturedVar(p, n); v != "" {
				report(n.Pos(), fmt.Sprintf("closure captures %q by reference and escapes", v))
			}
		}
		return true
	})
	return out
}

func checkHotCall(p *Pkg, call *ast.CallExpr, report func(token.Pos, string)) {
	tv := p.Info.Types[call.Fun]
	if tv.IsType() {
		// Conversion: string <-> []byte / []rune copies into fresh memory.
		if len(call.Args) == 1 {
			at := p.Info.Types[call.Args[0]].Type
			if stringBytesConversion(tv.Type, at) {
				report(call.Pos(), "string/byte-slice conversion allocates a copy")
			}
		}
		return
	}
	callee := calleeObject(p, call)
	if b, ok := callee.(*types.Builtin); ok {
		if b.Name() == "make" && len(call.Args) >= 1 {
			switch p.Info.Types[call.Args[0]].Type.Underlying().(type) {
			case *types.Map:
				report(call.Pos(), "make(map) allocates; hoist to a reused scratch buffer")
			case *types.Chan:
				report(call.Pos(), "make(chan) allocates; hot loops must not create channels")
			}
		}
		return
	}
	if fn, ok := callee.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), fmt.Sprintf("fmt.%s allocates (formatting in a hot loop)", fn.Name()))
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		at := p.Info.Types[arg]
		if at.IsNil() || at.Type == nil || types.IsInterface(at.Type) {
			continue
		}
		report(arg.Pos(), fmt.Sprintf("%s boxed into interface parameter %s at call site", at.Type, pt))
	}
}

func calleeObject(p *Pkg, call *ast.CallExpr) types.Object {
	fun := call.Fun
	for {
		paren, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = paren.X
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// capturedVar returns the name of a variable the closure captures from an
// enclosing scope (forcing a heap allocation for the closure and, often,
// the variable), or "" if the literal is capture-free.
func capturedVar(p *Pkg, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || !v.Pos().IsValid() {
			return true
		}
		if p.Types != nil && v.Parent() == p.Types.Scope() {
			return true // package-level variable, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

func exprType(p *Pkg, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func stringBytesConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
