package kernel

import (
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// DiffusionKernel is the heat/diffusion node kernel of Kondor-Lafferty
// (Section 2.4's node-kernel reference): K = exp(−β·L) for the graph
// Laplacian L, computed via the eigendecomposition. It is positive definite
// for every β > 0 and implicitly embeds the nodes of one graph.
type DiffusionKernel struct {
	Beta float64
}

// Matrix returns the full node-kernel matrix exp(−β·L) of g.
func (k DiffusionKernel) Matrix(g *graph.Graph) *linalg.Matrix {
	beta := k.Beta
	if beta == 0 {
		beta = 1
	}
	n := g.N()
	l := linalg.NewMatrix(n, n)
	a := g.AdjacencyMatrix()
	for i := 0; i < n; i++ {
		var deg float64
		for j := 0; j < n; j++ {
			deg += a[i][j]
			if i != j {
				l.Set(i, j, -a[i][j])
			}
		}
		l.Set(i, i, deg)
	}
	vals, vecs := linalg.SymmetricEigen(l)
	// exp(-β L) = V diag(exp(-β λ)) Vᵀ.
	d := linalg.NewMatrix(n, n)
	for i, lam := range vals {
		d.Set(i, i, math.Exp(-beta*lam))
	}
	return vecs.Mul(d).Mul(vecs.T())
}

// Compute returns the diffusion kernel value between two nodes of g.
func (k DiffusionKernel) Compute(g *graph.Graph, v, w int) float64 {
	return k.Matrix(g).At(v, w)
}
