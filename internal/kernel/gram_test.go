package kernel

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/linalg"
)

// mixedLabelCorpus builds a corpus of random graphs with mixed vertex
// labels, plus a few structured graphs, to exercise label-sensitive feature
// maps (shortest-path, random-walk) as well as the purely structural ones.
func mixedLabelCorpus(t testing.TB, n int, seed int64) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gs := []*graph.Graph{
		graph.Cycle(5), graph.Path(6), graph.Complete(4), graph.Star(4),
	}
	for len(gs) < n {
		g := graph.Random(7, 0.35, rng)
		for v := 0; v < g.N(); v++ {
			g.SetVertexLabel(v, rng.Intn(3))
		}
		gs = append(gs, g)
	}
	return gs[:n]
}

func allKernels() []Kernel {
	return []Kernel{
		WLSubtree{Rounds: 3},
		WLDiscounted{},
		ShortestPath{},
		Graphlet{Size: 3},
		RandomWalk{Lambda: 0.05, MaxLen: 6},
		HomVector{Class: hom.StandardClass()},
		HomVector{Class: hom.StandardClass(), Log: true},
	}
}

// TestGramMatchesPairwise checks the core refactor invariant: the parallel
// feature-map Gram equals the sequential pairwise Gram entry-by-entry
// (exactly for the integral feature maps, within 1e-12 relative error for
// the float-weighted ones) for every kernel on a mixed-label corpus.
func TestGramMatchesPairwise(t *testing.T) {
	gs := mixedLabelCorpus(t, 12, 71)
	for _, k := range allKernels() {
		got := Gram(k, gs)
		want := PairwiseGram(k, gs)
		for i := 0; i < want.Rows; i++ {
			for j := 0; j < want.Cols; j++ {
				g, w := got.At(i, j), want.At(i, j)
				tol := 1e-12 * math.Max(1, math.Abs(w))
				if math.Abs(g-w) > tol {
					t.Errorf("%s: Gram(%d,%d)=%v, pairwise=%v", k.Name(), i, j, g, w)
				}
			}
		}
	}
}

// TestFeatureDotMatchesCompute checks the FeatureKernel contract
// K(g,h) = ⟨φ(g), φ(h)⟩ for every kernel with an explicit feature map.
func TestFeatureDotMatchesCompute(t *testing.T) {
	gs := mixedLabelCorpus(t, 6, 72)
	for _, k := range allKernels() {
		fk, ok := k.(FeatureKernel)
		if !ok {
			continue
		}
		for _, g := range gs {
			for _, h := range gs {
				want := k.Compute(g, h)
				got := fk.Features(g).Dot(fk.Features(h))
				tol := 1e-12 * math.Max(1, math.Abs(want))
				if math.Abs(got-want) > tol {
					t.Errorf("%s: feature dot %v != Compute %v", k.Name(), got, want)
				}
			}
		}
	}
}

// countingKernel wraps WLSubtree and counts both extraction paths,
// verifying the each-graph-extracted-exactly-once contract of the Gram
// pipeline: a corpus kernel gets one batched pass covering every graph,
// and no per-graph Features calls on top.
type countingKernel struct {
	WLSubtree
	features     *atomic.Int64 // single-graph Features calls
	corpusGraphs *atomic.Int64 // graphs covered by batched CorpusFeatures calls
}

func (c countingKernel) Features(g *graph.Graph) linalg.SparseVector {
	c.features.Add(1)
	return c.WLSubtree.Features(g)
}

func (c countingKernel) CorpusFeatures(gs []*graph.Graph, workers int) []linalg.SparseVector {
	c.corpusGraphs.Add(int64(len(gs)))
	return c.WLSubtree.CorpusFeatures(gs, workers)
}

func TestGramExtractsFeaturesOncePerGraph(t *testing.T) {
	gs := mixedLabelCorpus(t, 10, 73)
	var features, corpusGraphs atomic.Int64
	k := countingKernel{WLSubtree: WLSubtree{Rounds: 3}, features: &features, corpusGraphs: &corpusGraphs}
	Gram(k, gs)
	if got := corpusGraphs.Load(); got != int64(len(gs)) {
		t.Errorf("Gram covered %d graphs via CorpusFeatures for %d graphs, want exactly one batched pass", got, len(gs))
	}
	if got := features.Load(); got != 0 {
		t.Errorf("Gram made %d per-graph Features calls despite the corpus extractor", got)
	}
}

// TestCorpusFeaturesMatchSingleGraphFeatures pins the CorpusFeatureKernel
// contract: the batched corpus pass must yield exactly the vectors of
// independent per-graph extractions, coordinate for coordinate (the shared
// colour store is process-globally canonical, so ids must agree).
func TestCorpusFeaturesMatchSingleGraphFeatures(t *testing.T) {
	gs := mixedLabelCorpus(t, 14, 76)
	corpusKernels := []CorpusFeatureKernel{
		WLSubtree{Rounds: 4},
		WLDiscounted{Horizon: 5},
		HomVector{Class: hom.StandardClass()},
		HomVector{Class: hom.StandardClass(), Log: true},
	}
	for _, k := range corpusKernels {
		batch := k.CorpusFeatures(gs, 0)
		if len(batch) != len(gs) {
			t.Fatalf("%s: %d corpus vectors for %d graphs", k.Name(), len(batch), len(gs))
		}
		for i, g := range gs {
			single := k.Features(g)
			if len(batch[i]) != len(single) {
				t.Fatalf("%s graph %d: corpus NNZ %d != single %d", k.Name(), i, len(batch[i]), len(single))
			}
			for key, v := range single {
				if batch[i][key] != v {
					t.Fatalf("%s graph %d: coordinate %v differs: %v vs %v", k.Name(), i, key, batch[i][key], v)
				}
			}
		}
	}
}

// TestParallelGramInvariants locks in Normalize and IsPSD on the parallel
// pipeline's output for both the feature path and the pairwise fallback.
func TestParallelGramInvariants(t *testing.T) {
	gs := mixedLabelCorpus(t, 10, 74)
	for _, k := range []Kernel{WLSubtree{Rounds: 3}, RandomWalk{Lambda: 0.05, MaxLen: 6}} {
		gram := Gram(k, gs)
		if !IsPSD(gram, 1e-6*linalg.Frobenius(gram)) {
			t.Errorf("%s: parallel Gram not PSD", k.Name())
		}
		norm := Normalize(gram)
		for i := 0; i < norm.Rows; i++ {
			if math.Abs(norm.At(i, i)-1) > 1e-9 {
				t.Errorf("%s: normalised diagonal entry %d = %v", k.Name(), i, norm.At(i, i))
			}
		}
	}
}

// TestFeatureVectorsParallelDeterministic: repeated parallel extractions
// agree with a direct sequential extraction (worker scheduling must not
// leak into the features).
func TestFeatureVectorsParallelDeterministic(t *testing.T) {
	gs := mixedLabelCorpus(t, 16, 75)
	k := WLSubtree{Rounds: 4}
	par := FeatureVectors(k, gs)
	for i, g := range gs {
		seq := k.Features(g)
		if len(par[i]) != len(seq) {
			t.Fatalf("graph %d: parallel NNZ %d != sequential %d", i, len(par[i]), len(seq))
		}
		for key, v := range seq {
			if par[i][key] != v {
				t.Fatalf("graph %d: coordinate %v differs: %v vs %v", i, key, par[i][key], v)
			}
		}
	}
}
