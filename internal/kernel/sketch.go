package kernel

// CountSketchWL: feature hashing for the WL subtree kernel. The exact
// kernel's feature space is unbounded — every new graph can mint new colours,
// so corpus feature matrices are ragged, sparse, and unusable as input to
// anything that wants fixed-width vectors (the ANN tier, out-of-core dot
// products, GPU batching). The count-sketch folds coordinate (round, colour)
// into one of Width buckets with a ±1 sign, giving every graph a dense
// Width-long vector whose inner products are unbiased estimates of the exact
// WLSubtree kernel: E[⟨sketch(g), sketch(h)⟩] = K_WL(g, h) over the hash
// seed, with variance O(‖φg‖²‖φh‖²/Width) (Weinberger et al.'s hashing-trick
// bound). Width trades memory and ANN dimensionality against estimator
// noise; sketch_test.go pins the unbiasedness empirically.
//
// Colours come from wl.HashColorRounds, not the refinement engine: engine
// ids are process-local interning order, and a sketch built by `x2vec index`
// must land in the same buckets as one built by the daemon answering
// /neighbors, or the two live in different coordinate systems. The stable
// codes induce the same partitions as the engine (pinned in
// wl/stablecolors_test.go), so the sketched kernel estimates exactly the
// kernel WLSubtree computes.

import (
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/wl"
)

// CountSketchWL is the hashed-feature WL subtree kernel. The zero value
// sketches 3 rounds into 128 buckets with the default seed. Distinct seeds
// give independent estimators of the same kernel; averaging sketch dot
// products over seeds converges to the exact WLSubtree value.
type CountSketchWL struct {
	Rounds int    // WL rounds (0 = default 3)
	Width  int    // sketch width in buckets (0 = default 128)
	Seed   uint64 // hash seed; 0 is a valid (default) seed
}

// DefaultSketchRounds and DefaultSketchWidth are the zero-value parameters
// of CountSketchWL, shared with the `x2vec index` CLI defaults.
const (
	DefaultSketchRounds = 3
	DefaultSketchWidth  = 128
)

func (k CountSketchWL) rounds() int {
	if k.Rounds <= 0 {
		return DefaultSketchRounds
	}
	return k.Rounds
}

func (k CountSketchWL) width() int {
	if k.Width <= 0 {
		return DefaultSketchWidth
	}
	return k.Width
}

// Name implements Kernel.
func (CountSketchWL) Name() string { return "wl-sketch" }

// mix64 is the murmur3 finaliser (bijective, strong avalanche) — the local
// copy of wl's mixer for deriving bucket/sign bits from stable colour codes.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// sketchKey derives the per-coordinate hash key: a per-(seed, round) subseed
// mixed with the stable colour code. The bucket reads the low bits
// (key % width) and the sign the top bit, so the two are effectively
// independent — the property count-sketch unbiasedness needs.
func sketchKey(seed uint64, round int, code uint64) uint64 {
	sub := mix64(seed ^ uint64(round)*0x9e3779b97f4a7c15)
	return mix64(sub ^ code)
}

// Sketch returns the dense Width-long count-sketch of g: every vertex at
// every round 0..Rounds contributes ±1 to the bucket its stable colour
// hashes to.
func (k CountSketchWL) Sketch(g *graph.Graph) []float64 {
	width := k.width()
	out := make([]float64, width)
	k.sketchInto(out, g)
	return out
}

// sketchInto accumulates g's sketch into out (len(out) must be k.width()).
func (k CountSketchWL) sketchInto(out []float64, g *graph.Graph) {
	width := uint64(len(out))
	codes := wl.HashColorRounds(g, k.rounds())
	for r, round := range codes {
		for _, c := range round {
			key := sketchKey(k.Seed, r, c)
			if key>>63 != 0 {
				out[key%width]--
			} else {
				out[key%width]++
			}
		}
	}
}

// CorpusSketches sketches a whole corpus across a worker pool (0 or negative
// workers = GOMAXPROCS). Row i equals Sketch(gs[i]) exactly — sketching is
// per-graph arithmetic, so there is no cross-graph state to batch, just the
// embarrassing parallelism.
func (k CountSketchWL) CorpusSketches(gs []*graph.Graph, workers int) [][]float64 {
	out := make([][]float64, len(gs))
	width := k.width()
	backing := make([]float64, len(gs)*width)
	linalg.ParallelForWorkers(workers, len(gs), func(i int) {
		row := backing[i*width : (i+1)*width]
		k.sketchInto(row, gs[i])
		out[i] = row
	})
	return out
}

// CorpusSketchMatrix is CorpusSketches shaped as a dense row-major matrix —
// the form the ANN index builder consumes.
func (k CountSketchWL) CorpusSketchMatrix(gs []*graph.Graph, workers int) *linalg.Matrix {
	width := k.width()
	m := linalg.NewMatrix(len(gs), width)
	linalg.ParallelForWorkers(workers, len(gs), func(i int) {
		k.sketchInto(m.Row(i), gs[i])
	})
	return m
}

// Compute implements Kernel: the inner product of the two sketches — an
// unbiased estimate of WLSubtree{Rounds}.Compute(g, h).
func (k CountSketchWL) Compute(g, h *graph.Graph) float64 {
	return linalg.Dot(k.Sketch(g), k.Sketch(h))
}

// Features implements FeatureKernel; the sketch is dense, so this exists to
// slot the kernel into Gram's n-extraction fast path, not to save space.
func (k CountSketchWL) Features(g *graph.Graph) linalg.SparseVector {
	return denseToSparse(k.Sketch(g))
}

// CorpusFeatures implements CorpusFeatureKernel.
func (k CountSketchWL) CorpusFeatures(gs []*graph.Graph, workers int) []linalg.SparseVector {
	sketches := k.CorpusSketches(gs, workers)
	feats := make([]linalg.SparseVector, len(gs))
	linalg.ParallelForWorkers(workers, len(gs), func(i int) {
		feats[i] = denseToSparse(sketches[i])
	})
	return feats
}
