package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

func TestDiffusionKernelPSDAndSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 5; trial++ {
		g := graph.Random(8, 0.4, rng)
		k := DiffusionKernel{Beta: 0.5}.Matrix(g)
		for i := 0; i < k.Rows; i++ {
			for j := 0; j < k.Cols; j++ {
				if math.Abs(k.At(i, j)-k.At(j, i)) > 1e-9 {
					t.Fatal("diffusion kernel not symmetric")
				}
			}
		}
		if !IsPSD(k, 1e-8) {
			t.Fatal("diffusion kernel not PSD")
		}
	}
}

func TestDiffusionKernelDecaysWithDistance(t *testing.T) {
	g := graph.Path(7)
	k := DiffusionKernel{Beta: 0.5}
	m := k.Matrix(g)
	// Heat from vertex 0 decays along the path.
	prev := m.At(0, 0)
	for v := 1; v < 7; v++ {
		cur := m.At(0, v)
		if cur > prev+1e-12 {
			t.Errorf("diffusion should decay along the path: K(0,%d)=%v > K(0,%d)=%v", v, cur, v-1, prev)
		}
		prev = cur
	}
}

func TestDiffusionKernelRowsSumToOneishAtLargeBeta(t *testing.T) {
	// As β → 0, exp(−βL) → I.
	g := graph.Cycle(5)
	m := DiffusionKernel{Beta: 1e-9}.Matrix(g)
	if !m.Equal(linalg.Identity(5), 1e-6) {
		t.Error("beta->0 limit should be the identity")
	}
}

func TestDiffusionKernelComputeMatchesMatrix(t *testing.T) {
	g := graph.Star(4)
	k := DiffusionKernel{Beta: 0.3}
	m := k.Matrix(g)
	if got := k.Compute(g, 0, 1); math.Abs(got-m.At(0, 1)) > 1e-12 {
		t.Errorf("Compute=%v, Matrix entry=%v", got, m.At(0, 1))
	}
}
