package kernel

// Nyström approximation: the subquadratic Gram path. An exact Gram over n
// graphs costs n feature extractions plus Θ(n²) kernel dot products; past
// 10^4 graphs the quadratic term owns the wall clock no matter how parallel
// the fill is. Nyström replaces it with m ≪ n landmark columns:
//
//	K̃ = K_nm · K_mm⁺ · K_nmᵀ
//
// where K_mm is the kernel among m sampled landmark graphs and K_nm the
// corpus-against-landmarks strip. Factoring K_mm⁺ = B·Bᵀ through its
// eigendecomposition (B = V·diag(λᵢ>τ ? λᵢ^(-1/2) : 0)·Vᵀ) turns the
// approximation into explicit features W = K_nm·B with K̃ = W·Wᵀ — n rows of
// m dense coordinates, which is also exactly the shape the ANN tier wants
// when no sketchable feature map exists. Total cost: n·m kernel dots + one
// m×m eigendecomposition + O(n·m²) dense algebra, versus n²/2 kernel dots.
//
// The quality story: K̃ is the best approximation of K within the span of
// the landmark columns, so the spectral error ‖K − K̃‖₂ tracks the tail
// eigenvalues past rank m. Corpora with cluster structure (families of
// related graphs — the production case) have fast-decaying spectra and
// approximate well at m ≈ √n; adversarially diagonal Grams (every graph its
// own colour space) do not, which is why nystrom_test.go gates the error on
// a structured corpus and the exact Gram stays the default everywhere
// quality is graded.

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// ErrBadLandmarks reports a non-positive landmark count.
var ErrBadLandmarks = errors.New("kernel: landmark count must be positive")

// NystromFeatures returns the n×m factor W with W·Wᵀ = K̃ ≈ Gram(k, gs).
// m landmarks are drawn uniformly without replacement from gs (deterministic
// in seed; m is clamped to len(gs)); workers bounds every parallel stage
// (0 or negative = GOMAXPROCS). Feature extraction still happens once per
// graph — the corpus pipeline when k supports it — so the savings are all in
// the dot-product phase: n·m dots instead of n²/2.
func NystromFeatures(k FeatureKernel, gs []*graph.Graph, m, workers int, seed int64) (*linalg.Matrix, error) {
	n := len(gs)
	if m < 1 {
		return nil, ErrBadLandmarks
	}
	if m > n {
		m = n
	}
	if n == 0 {
		return linalg.NewMatrix(0, 0), nil
	}
	feats := FeatureVectorsWorkers(k, gs, workers)

	landmarks := rand.New(rand.NewSource(seed)).Perm(n)[:m]

	// K_mm: kernel among landmarks.
	kmm := linalg.SymmetricFromFuncWorkers(workers, m, func(i, j int) float64 {
		return feats[landmarks[i]].Dot(feats[landmarks[j]])
	})

	// B = K_mm^(-1/2) through the eigendecomposition, with small eigenvalues
	// dropped (pseudo-inverse): rank deficiency among landmarks — duplicate
	// graphs, collapsed features — must not blow up the factor.
	vals, vecs := linalg.SymmetricEigen(kmm)
	var lmax float64
	for _, v := range vals {
		if v > lmax {
			lmax = v
		}
	}
	tol := 1e-12 * float64(m) * lmax
	b := linalg.NewMatrix(m, m)
	for c := 0; c < m; c++ {
		if vals[c] <= tol {
			continue
		}
		inv := 1 / math.Sqrt(vals[c])
		for r := 0; r < m; r++ {
			vrc := vecs.At(r, c)
			if vrc == 0 {
				continue
			}
			row := b.Row(r)
			for q := 0; q < m; q++ {
				row[q] += vrc * inv * vecs.At(q, c)
			}
		}
	}

	// W = K_nm · B, one corpus row at a time across the pool.
	w := linalg.NewMatrix(n, m)
	linalg.ParallelForWorkers(workers, n, func(i int) {
		row := w.Row(i)
		for j := 0; j < m; j++ {
			kij := feats[i].Dot(feats[landmarks[j]])
			if kij == 0 {
				continue
			}
			brow := b.Row(j)
			for q := 0; q < m; q++ {
				row[q] += kij * brow[q]
			}
		}
	})
	return w, nil
}

// NystromGram materialises the approximate Gram K̃ = W·Wᵀ. Prefer
// NystromFeatures when the factor is enough (ANN indexing, linear models):
// the n×n product is the one dense quadratic step left in this path.
func NystromGram(k FeatureKernel, gs []*graph.Graph, m, workers int, seed int64) (*linalg.Matrix, error) {
	w, err := NystromFeatures(k, gs, m, workers, seed)
	if err != nil {
		return nil, err
	}
	return linalg.SymmetricFromFuncWorkers(workers, len(gs), func(i, j int) float64 {
		return linalg.Dot(w.Row(i), w.Row(j))
	}), nil
}
