package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomWalkCorpus: labelled random graphs, some directed structure via
// labels, including an empty graph and a single vertex — the edge cases the
// product-graph recurrence must survive.
func randomWalkCorpus(n int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	gs := make([]*graph.Graph, 0, n)
	for i := 0; i < n; i++ {
		g := graph.Random(6+rng.Intn(8), 0.3, rng)
		for v := 0; v < g.N(); v++ {
			g.SetVertexLabel(v, rng.Intn(3))
		}
		gs = append(gs, g)
	}
	gs = append(gs, graph.New(0), graph.New(1), graph.Cycle(5))
	return gs
}

// TestRandomWalkPreparedMatchesCompute pins the prepared-pairwise path
// against the sequential reference pair by pair: walk counts are integral,
// so prepared evaluation must agree to full precision.
func TestRandomWalkPreparedMatchesCompute(t *testing.T) {
	gs := randomWalkCorpus(10, 31)
	for _, k := range []RandomWalk{{}, {Lambda: 0.05, MaxLen: 4}, {Lambda: 0.2, MaxLen: 2}} {
		preps := make([]any, len(gs))
		for i, g := range gs {
			preps[i] = k.prepare(g)
		}
		for i := range gs {
			for j := i; j < len(gs); j++ {
				want := k.Compute(gs[i], gs[j])
				got := k.computePrepared(preps[i], preps[j])
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("λ=%v len=%d pair (%d,%d): prepared %v != reference %v",
						k.Lambda, k.MaxLen, i, j, got, want)
				}
			}
		}
	}
}

// TestRandomWalkGramUsesPreparedPath: GramWorkers on RandomWalk must equal
// the sequential PairwiseGram reference — the regression gate for the
// dispatch added in ISSUE 9.
func TestRandomWalkGramUsesPreparedPath(t *testing.T) {
	gs := randomWalkCorpus(8, 37)
	k := RandomWalk{Lambda: 0.03, MaxLen: 5}
	want := PairwiseGram(k, gs)
	got := GramWorkers(k, gs, 3)
	for i := 0; i < want.Rows; i++ {
		for j := 0; j < want.Cols; j++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-9*(1+math.Abs(want.At(i, j))) {
				t.Fatalf("(%d,%d): Gram %v != PairwiseGram %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}
