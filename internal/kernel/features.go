package kernel

import (
	"math"

	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/linalg"
	"repro/internal/wl"
)

// FeatureKernel is a Kernel with an explicit feature map: Compute(g, h)
// equals Features(g).Dot(Features(h)). Section 3.5 stresses the explicit
// map as the reason the WL subtree kernel scales: a Gram matrix over n
// graphs needs only n feature extractions (one per graph) followed by
// cheap sparse dot products, instead of O(n²) pairwise kernel evaluations
// each re-running refinement, APSP, or subgraph counting from scratch.
type FeatureKernel interface {
	Kernel
	// Features returns the explicit sparse feature vector of g. It must be
	// safe to call concurrently on distinct graphs.
	Features(g *graph.Graph) linalg.SparseVector
}

// CorpusFeatureKernel is a FeatureKernel that can extract the feature
// vectors of a whole corpus from one shared refinement pass. The WL
// kernels implement it on top of wl.RefineCorpus: the corpus refines once
// across a worker pool through the lock-striped canonical colour store,
// instead of n independent CanonicalColors calls. CorpusFeatures must
// return exactly one vector per input graph, equal to Features(gs[i]) for
// every i. workers caps the extraction pool (0 or negative = GOMAXPROCS);
// it is an explicit parameter so multi-pipeline processes (the serve
// batcher, the daemon) can bound each pipeline without touching the
// process-global runtime.GOMAXPROCS.
type CorpusFeatureKernel interface {
	FeatureKernel
	CorpusFeatures(gs []*graph.Graph, workers int) []linalg.SparseVector
}

// wlSubtreeVector folds one graph's per-round canonical colours (as
// returned by wl.CanonicalColors or one slot of wl.RefineCorpus) into the
// sparse colour-count feature vector.
func wlSubtreeVector(rounds [][]int) linalg.SparseVector {
	out := make(linalg.SparseVector)
	for i, round := range rounds {
		for _, c := range round {
			out.Add(linalg.Key(i, c, 0), 1)
		}
	}
	return out
}

// Features implements FeatureKernel: coordinate (round, colour) holds the
// colour-count wl(c, g) over rounds 0..Rounds, from a single refinement
// run per graph. Colour ids are process-globally canonical (see
// wl.CanonicalColors), so vectors of different graphs are comparable.
func (k WLSubtree) Features(g *graph.Graph) linalg.SparseVector {
	return wlSubtreeVector(wl.CanonicalColors(g, k.Rounds))
}

// CorpusFeatures implements CorpusFeatureKernel from one batched
// wl.RefineCorpus pass over the whole corpus.
func (k WLSubtree) CorpusFeatures(gs []*graph.Graph, workers int) []linalg.SparseVector {
	cols := wl.RefineCorpusWorkers(gs, k.Rounds, workers)
	feats := make([]linalg.SparseVector, len(gs))
	linalg.ParallelForWorkers(workers, len(gs), func(i int) {
		feats[i] = wlSubtreeVector(cols[i])
	})
	return feats
}

// wlDiscountedVector folds per-round canonical colours into the
// √(1/2ⁱ)-scaled colour-count vector of K_WL.
func wlDiscountedVector(rounds [][]int) linalg.SparseVector {
	out := make(linalg.SparseVector)
	w := 1.0
	for i, round := range rounds {
		counts := map[int]int{}
		for _, c := range round {
			counts[c]++
		}
		sw := math.Sqrt(w)
		for c, n := range counts {
			out[linalg.Key(i, c, 0)] = sw * float64(n)
		}
		w /= 2
	}
	return out
}

// Features implements FeatureKernel: per-round colour counts scaled by
// √(1/2ⁱ), so the sparse dot product reproduces the geometric round
// discount of K_WL.
func (k WLDiscounted) Features(g *graph.Graph) linalg.SparseVector {
	return wlDiscountedVector(wl.CanonicalColors(g, k.rounds()))
}

// CorpusFeatures implements CorpusFeatureKernel from one batched
// wl.RefineCorpus pass over the whole corpus.
func (k WLDiscounted) CorpusFeatures(gs []*graph.Graph, workers int) []linalg.SparseVector {
	cols := wl.RefineCorpusWorkers(gs, k.rounds(), workers)
	feats := make([]linalg.SparseVector, len(gs))
	linalg.ParallelForWorkers(workers, len(gs), func(i int) {
		feats[i] = wlDiscountedVector(cols[i])
	})
	return feats
}

// Features implements FeatureKernel: coordinate (distance, labelA, labelB)
// counts vertex pairs at each finite distance, from one APSP run per graph.
func (ShortestPath) Features(g *graph.Graph) linalg.SparseVector {
	out := make(linalg.SparseVector)
	d := g.AllPairsDistances()
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if d[u][v] <= 0 {
				continue
			}
			la, lb := g.VertexLabel(u), g.VertexLabel(v)
			if la > lb {
				la, lb = lb, la
			}
			out.Add(linalg.Key(d[u][v], la, lb), 1)
		}
	}
	return out
}

// Features implements FeatureKernel: coordinate i holds the count of the
// i-th isomorphism class of induced k-vertex subgraphs.
func (k Graphlet) Features(g *graph.Graph) linalg.SparseVector {
	size := k.Size
	if size == 0 {
		size = 3
	}
	out := make(linalg.SparseVector)
	for i, c := range GraphletCounts(g, size) {
		if c != 0 {
			out[linalg.Key(i, 0, 0)] = c
		}
	}
	return out
}

// Features implements FeatureKernel: coordinate i holds the scaled (or
// log-scaled) homomorphism count of the i-th pattern of the class — the
// truncated vector of equation (4.1).
func (k HomVector) Features(g *graph.Graph) linalg.SparseVector {
	class := k.class()
	var dense []float64
	if k.Log {
		dense = hom.LogScaledVector(class, g)
	} else {
		dense = scaledHomVector(class, g)
	}
	return denseToSparse(dense)
}

// CorpusFeatures implements CorpusFeatureKernel: the pattern class compiles
// once (component split, dispatch decision, nice tree decompositions), and
// the whole corpus evaluates through hom.CorpusVectors on a worker pool with
// pooled DP scratch — no per-call decomposition rebuilds, no per-table
// reallocation. Scaling replays the Features formulas on the same counts, so
// corpus vectors equal per-graph Features coordinate for coordinate.
func (k HomVector) CorpusFeatures(gs []*graph.Graph, workers int) []linalg.SparseVector {
	class := k.class()
	cc := hom.Compile(class)
	var dense [][]float64
	if k.Log {
		dense = hom.CorpusLogScaledVectorsWorkers(cc, gs, workers)
	} else {
		dense = hom.CorpusVectorsWorkers(cc, gs, workers)
		linalg.ParallelForWorkers(workers, len(dense), func(i int) {
			for j, f := range class {
				sz := float64(f.N())
				dense[i][j] /= math.Pow(sz, sz)
			}
		})
	}
	feats := make([]linalg.SparseVector, len(gs))
	linalg.ParallelForWorkers(workers, len(gs), func(i int) {
		feats[i] = denseToSparse(dense[i])
	})
	return feats
}

// denseToSparse drops zero coordinates of a dense feature vector.
func denseToSparse(dense []float64) linalg.SparseVector {
	out := make(linalg.SparseVector)
	for i, v := range dense {
		if v != 0 {
			out[linalg.Key(i, 0, 0)] = v
		}
	}
	return out
}

// FeatureVectors extracts the explicit feature vector of every graph,
// covering each graph exactly once. Kernels with a corpus extractor
// (CorpusFeatureKernel) get one batched pass over the whole set; the rest
// get one Features call per graph across a GOMAXPROCS-sized worker pool.
func FeatureVectors(k FeatureKernel, gs []*graph.Graph) []linalg.SparseVector {
	return FeatureVectorsWorkers(k, gs, 0)
}

// FeatureVectorsWorkers is FeatureVectors with an explicit worker cap
// (0 or negative = GOMAXPROCS).
func FeatureVectorsWorkers(k FeatureKernel, gs []*graph.Graph, workers int) []linalg.SparseVector {
	if ck, ok := k.(CorpusFeatureKernel); ok {
		return ck.CorpusFeatures(gs, workers)
	}
	feats := make([]linalg.SparseVector, len(gs))
	linalg.ParallelForWorkers(workers, len(gs), func(i int) {
		feats[i] = k.Features(gs[i])
	})
	return feats
}
