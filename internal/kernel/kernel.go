// Package kernel implements the graph kernels surveyed in Sections 2.4 and
// 3.5 of the paper: the Weisfeiler-Leman subtree kernel (fixed-round and
// discounted), shortest-path kernel, graphlet kernel, geometric random-walk
// kernel, and the homomorphism-vector kernel of equation (4.1), together
// with Gram-matrix utilities (normalisation, positive-semidefiniteness
// checks) and rooted-homomorphism node kernels.
//
// Kernels with an explicit feature map additionally implement
// FeatureKernel, exposing their sparse feature vector directly. This is the
// efficiency argument of Section 3.5: with an explicit map, building the
// Gram matrix of n graphs takes n feature extractions — one per graph —
// plus cheap sparse dot products, whereas a kernel evaluated only pairwise
// needs O(n²) evaluations each repeating the expensive per-graph work
// (WL refinement, APSP, subgraph counting). Gram exploits this and runs
// both the extraction and the matrix fill on a GOMAXPROCS-sized worker
// pool; PairwiseGram keeps the sequential O(n²) reference path.
package kernel

import (
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/linalg"
	"repro/internal/wl"
)

// Kernel is a positive semidefinite similarity between graphs.
type Kernel interface {
	// Compute returns K(g, h). It must be safe to call concurrently on
	// distinct pairs: Gram's pairwise fallback evaluates it across a
	// worker pool, so implementations must not share unsynchronised
	// mutable state (e.g. a scratch buffer or memo map) between calls.
	Compute(g, h *graph.Graph) float64
	// Name identifies the kernel in experiment reports.
	Name() string
}

// WLSubtree is the t-round Weisfeiler-Leman subtree kernel K_WL^(t) of
// Section 3.5: the inner product of the colour-count feature vectors
// wl(c, ·) accumulated over rounds 0..Rounds.
type WLSubtree struct {
	Rounds int
}

// Name implements Kernel.
func (k WLSubtree) Name() string { return "wl-subtree" }

// Compute implements Kernel: the inner product of the explicit colour-count
// feature vectors (all entries are integral, so the sparse dot is exact).
func (k WLSubtree) Compute(g, h *graph.Graph) float64 {
	return k.Features(g).Dot(k.Features(h))
}

// WLDiscounted is the round-unbounded WL kernel K_WL with geometric
// discount 1/2^i per round. The infinite series is truncated at a fixed
// horizon shared by all pairs (so the feature space is consistent and the
// Gram matrix PSD); the tail beyond round R contributes at most n²/2^R.
type WLDiscounted struct {
	Horizon int // 0 means the default of 12 rounds
}

// Name implements Kernel.
func (WLDiscounted) Name() string { return "wl-discounted" }

// rounds resolves the truncation horizon, shared by Compute and Features.
func (k WLDiscounted) rounds() int {
	if k.Horizon == 0 {
		return 12
	}
	return k.Horizon
}

// Compute implements Kernel.
func (k WLDiscounted) Compute(g, h *graph.Graph) float64 {
	rounds := k.rounds()
	cg := wl.RoundColorCounts(g, rounds)
	ch := wl.RoundColorCounts(h, rounds)
	var s float64
	w := 1.0
	for i := 0; i <= rounds; i++ {
		for c, n := range cg[i] {
			s += w * float64(n) * float64(ch[i][c])
		}
		w /= 2
	}
	return s
}

// ShortestPath is the shortest-path kernel of Borgwardt and Kriegel:
// features are counts of vertex pairs at each finite distance (optionally
// refined by endpoint labels).
type ShortestPath struct{}

// Name implements Kernel.
func (ShortestPath) Name() string { return "shortest-path" }

// Compute implements Kernel: the inner product of the distance-histogram
// feature vectors (integral counts, so the sparse dot is exact).
func (k ShortestPath) Compute(g, h *graph.Graph) float64 {
	return k.Features(g).Dot(k.Features(h))
}

// Graphlet is the 3- and 4-vertex graphlet kernel: features are counts of
// induced subgraphs on all vertex triples and (optionally) quadruples.
type Graphlet struct {
	Size int // 3 or 4
}

// Name implements Kernel.
func (Graphlet) Name() string { return "graphlet" }

// Compute implements Kernel: the inner product of the graphlet-count
// feature vectors (integral counts, so the sparse dot is exact).
func (k Graphlet) Compute(g, h *graph.Graph) float64 {
	return k.Features(g).Dot(k.Features(h))
}

// graphletTable maps every edge bitmask of a k-vertex subset to its
// isomorphism-class index in graph.AllGraphs(k). Building it runs the
// expensive isomorphism tests once per possible mask (2^C(k,2) of them, 64
// for k = 4) instead of once per subset; after that each of the C(n, k)
// subsets classifies with bit tests and one array lookup.
type graphletTable struct {
	pairs   [][2]int
	byMask  []int16
	classes int
}

// graphletTables caches one table per k across Gram workers.
var graphletTables sync.Map

func graphletTableFor(k int) *graphletTable {
	if v, ok := graphletTables.Load(k); ok {
		return v.(*graphletTable)
	}
	reps := graph.AllGraphs(k)
	var pairs [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	tbl := &graphletTable{pairs: pairs, byMask: make([]int16, 1<<len(pairs)), classes: len(reps)}
	for mask := 0; mask < 1<<len(pairs); mask++ {
		sub := graph.New(k)
		for b, pr := range pairs {
			if mask>>b&1 == 1 {
				sub.AddEdge(pr[0], pr[1])
			}
		}
		for ci, r := range reps {
			if sub.M() == r.M() && graph.Isomorphic(sub, r) {
				tbl.byMask[mask] = int16(ci)
				break
			}
		}
	}
	actual, _ := graphletTables.LoadOrStore(k, tbl)
	return actual.(*graphletTable)
}

// GraphletCounts returns induced-subgraph counts on all k-subsets, indexed
// by the isomorphism class of the induced subgraph (4 classes for k=3, 11
// for k=4). Each subset is classified by looking its edge bitmask up in the
// precomputed canonical-code table — no per-subset isomorphism tests. The
// original enumerate-and-test path is kept as graphletCountsIso, the test
// oracle and benchmark baseline (and the fallback for k > 5, where the mask
// table would outgrow its usefulness).
func GraphletCounts(g *graph.Graph, k int) []float64 {
	if k > 5 {
		return graphletCountsIso(g, k)
	}
	tbl := graphletTableFor(k)
	n := g.N()
	adj := bitsetAdjacency(g)
	counts := make([]float64, tbl.classes)
	subset := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			mask := 0
			for b, pr := range tbl.pairs {
				u, v := subset[pr[0]], subset[pr[1]]
				if adj[u][v>>6]&(1<<(uint(v)&63)) != 0 {
					mask |= 1 << b
				}
			}
			counts[tbl.byMask[mask]]++
			return
		}
		for v := start; v < n; v++ {
			subset[depth] = v
			rec(v+1, depth+1)
		}
	}
	rec(0, 0)
	return counts
}

// bitsetAdjacency snapshots the simple adjacency relation as n bitset rows
// for O(1) edge tests during subset classification.
func bitsetAdjacency(g *graph.Graph) [][]uint64 {
	n := g.N()
	words := (n + 63) / 64
	adj := make([][]uint64, n)
	backing := make([]uint64, n*words)
	for v := range adj {
		adj[v] = backing[v*words : (v+1)*words]
	}
	for _, e := range g.Edges() {
		if e.U == e.V {
			continue
		}
		adj[e.U][e.V>>6] |= 1 << (uint(e.V) & 63)
		adj[e.V][e.U>>6] |= 1 << (uint(e.U) & 63)
	}
	return adj
}

// graphletCountsIso is the pre-table reference implementation: build the
// induced subgraph of every subset and isomorphism-test it against each
// representative. Kept as the oracle for GraphletCounts and as the
// benchmark baseline.
func graphletCountsIso(g *graph.Graph, k int) []float64 {
	reps := graph.AllGraphs(k)
	counts := make([]float64, len(reps))
	n := g.N()
	subset := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			sub := g.InducedSubgraph(subset)
			for i, r := range reps {
				if sub.M() == r.M() && graph.Isomorphic(sub, r) {
					counts[i]++
					break
				}
			}
			return
		}
		for v := start; v < n; v++ {
			subset[depth] = v
			rec(v+1, depth+1)
		}
	}
	rec(0, 0)
	return counts
}

// RandomWalk is the geometric random-walk kernel: K(g,h) = Σ_k λ^k · (number
// of length-k walk pairs) computed on the direct product graph, truncated at
// MaxLen steps (λ must satisfy λ·Δ(g)Δ(h) < 1 for convergence of the full
// series; truncation keeps any λ finite).
//
// RandomWalk is the one kernel here that cannot join the corpus feature
// pipeline: its implicit feature space is indexed by labelled walk
// sequences, so an explicit Features(g) would hold one coordinate per
// realised label sequence of length ≤ MaxLen — exponential in MaxLen as soon
// as labels are diverse. Gram instead uses the prepared-pairwise path
// (prepared.go): the label-bucketed adjacency is built once per graph per
// Gram, and only the irreducibly pairwise product-graph recurrence runs in
// the O(n²) loop. Compute below is the sequential reference the prepared
// path is pinned against.
type RandomWalk struct {
	Lambda float64
	MaxLen int
}

// Name implements Kernel.
func (RandomWalk) Name() string { return "random-walk" }

// Compute implements Kernel.
func (k RandomWalk) Compute(g, h *graph.Graph) float64 {
	lambda := k.Lambda
	if lambda == 0 {
		lambda = 0.01
	}
	maxLen := k.MaxLen
	if maxLen == 0 {
		maxLen = 8
	}
	// Direct product adjacency (on matching vertex labels).
	ng, nh := g.N(), h.N()
	cur := make([]float64, ng*nh)
	for i := 0; i < ng; i++ {
		for j := 0; j < nh; j++ {
			if g.VertexLabel(i) == h.VertexLabel(j) {
				cur[i*nh+j] = 1
			}
		}
	}
	total := sum(cur)
	w := 1.0
	next := make([]float64, ng*nh)
	for step := 1; step <= maxLen; step++ {
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < ng; i++ {
			for _, ai := range g.Arcs(i) {
				for j := 0; j < nh; j++ {
					v := cur[i*nh+j]
					if v == 0 {
						continue
					}
					for _, aj := range h.Arcs(j) {
						if g.VertexLabel(ai.To) == h.VertexLabel(aj.To) {
							next[ai.To*nh+aj.To] += v
						}
					}
				}
			}
		}
		cur, next = next, cur
		w *= lambda
		total += w * sum(cur)
	}
	return total
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// HomVector is the homomorphism-vector kernel: the inner product of
// (scaled) homomorphism counts over a finite pattern class, the truncated
// form of equation (4.1). With Log set, features are the practically
// motivated log(1+hom)/|F| entries.
type HomVector struct {
	Class []*graph.Graph
	Log   bool
}

// Name implements Kernel.
func (k HomVector) Name() string {
	if k.Log {
		return "hom-log"
	}
	return "hom"
}

// class resolves the pattern class, shared by Compute and Features.
func (k HomVector) class() []*graph.Graph {
	if k.Class == nil {
		return hom.StandardClass()
	}
	return k.Class
}

// Compute implements Kernel.
func (k HomVector) Compute(g, h *graph.Graph) float64 {
	class := k.class()
	var fg, fh []float64
	if k.Log {
		fg = hom.LogScaledVector(class, g)
		fh = hom.LogScaledVector(class, h)
	} else {
		fg = scaledHomVector(class, g)
		fh = scaledHomVector(class, h)
	}
	return linalg.Dot(fg, fh)
}

// scaledHomVector scales hom(F,G) by |F|^{-|F|} as in equation (4.1) to
// keep magnitudes comparable across pattern sizes.
func scaledHomVector(class []*graph.Graph, g *graph.Graph) []float64 {
	out := make([]float64, len(class))
	for i, f := range class {
		k := float64(f.N())
		out[i] = hom.Count(f, g) / math.Pow(k, k)
	}
	return out
}

// Gram computes the kernel matrix of a graph set. For a FeatureKernel it
// extracts the explicit feature vector of every graph exactly once across a
// GOMAXPROCS-sized worker pool and fills the symmetric matrix with parallel
// sparse dot products — the Section 3.5 efficiency result (n extractions
// instead of O(n²)). Kernels without a feature map (e.g. RandomWalk) fall
// back to a parallelised pairwise loop with identical Compute semantics.
func Gram(k Kernel, gs []*graph.Graph) *linalg.Matrix {
	return GramWorkers(k, gs, 0)
}

// GramWorkers is Gram with an explicit worker cap for both the feature
// extraction and the symmetric matrix fill (0 or negative = GOMAXPROCS) —
// the per-pipeline knob that replaced the CLI's old runtime.GOMAXPROCS
// mutation.
func GramWorkers(k Kernel, gs []*graph.Graph, workers int) *linalg.Matrix {
	if fk, ok := k.(FeatureKernel); ok {
		feats := FeatureVectorsWorkers(fk, gs, workers)
		return linalg.SymmetricFromFuncWorkers(workers, len(gs), func(i, j int) float64 {
			return feats[i].Dot(feats[j])
		})
	}
	if pk, ok := k.(preparedKernel); ok {
		// No explicit feature map, but per-graph preprocessing factors out:
		// prepare each graph once, evaluate pairs on the prepared forms
		// (identical values to Compute — see prepared.go).
		preps := make([]any, len(gs))
		linalg.ParallelForWorkers(workers, len(gs), func(i int) {
			preps[i] = pk.prepare(gs[i])
		})
		return linalg.SymmetricFromFuncWorkers(workers, len(gs), func(i, j int) float64 {
			return pk.computePrepared(preps[i], preps[j])
		})
	}
	return linalg.SymmetricFromFuncWorkers(workers, len(gs), func(i, j int) float64 {
		return k.Compute(gs[i], gs[j])
	})
}

// PairwiseGram is the sequential O(n²)-evaluation reference implementation
// of Gram: one Kernel.Compute call per unordered pair, no feature reuse, no
// parallelism. It is kept for equivalence tests and as the baseline in the
// Gram-construction benchmarks and experiment E20.
func PairwiseGram(k Kernel, gs []*graph.Graph) *linalg.Matrix {
	n := len(gs)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := k.Compute(gs[i], gs[j])
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// Normalize rescales a Gram matrix to unit diagonal: K'ij = Kij/√(Kii·Kjj).
func Normalize(gram *linalg.Matrix) *linalg.Matrix {
	n := gram.Rows
	out := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := math.Sqrt(gram.At(i, i) * gram.At(j, j))
			if d > 0 {
				out.Set(i, j, gram.At(i, j)/d)
			}
		}
	}
	return out
}

// IsPSD reports whether a symmetric matrix is positive semidefinite within
// tolerance (smallest eigenvalue >= -tol).
func IsPSD(m *linalg.Matrix, tol float64) bool {
	vals := linalg.Eigenvalues(m)
	if len(vals) == 0 {
		return true
	}
	return vals[len(vals)-1] >= -tol
}

// NodeKernel is the rooted-tree homomorphism node kernel of Section 4.4:
// the inner product of rooted hom counts over a class of rooted trees.
type NodeKernel struct {
	Trees []*graph.Graph
	Roots []int
}

// DefaultNodeKernel uses all rooted trees on up to 4 vertices.
func DefaultNodeKernel() *NodeKernel {
	trees, roots := hom.AllRootedTrees(4)
	return &NodeKernel{Trees: trees, Roots: roots}
}

// Compute returns the node kernel value between vertex v of g and w of h.
func (k *NodeKernel) Compute(g *graph.Graph, v int, h *graph.Graph, w int) float64 {
	fv := hom.RootedVector(k.Trees, k.Roots, g, v)
	fw := hom.RootedVector(k.Trees, k.Roots, h, w)
	// Scale like equation (4.1) to temper growth.
	var s float64
	for i := range fv {
		sz := float64(k.Trees[i].N())
		s += fv[i] * fw[i] / math.Pow(sz, 2*sz)
	}
	return s
}
