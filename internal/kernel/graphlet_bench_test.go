package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// The canonical-code table path must agree exactly with the
// enumerate-and-isomorphism-test oracle on every class.
func TestGraphletCountsMatchesIsoOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	graphs := []*graph.Graph{
		graph.Complete(5),
		graph.Cycle(7),
		graph.Star(6),
		graph.Petersen(),
		graph.Random(9, 0.4, rng),
		graph.Random(10, 0.15, rng),
	}
	for gi, g := range graphs {
		for _, k := range []int{3, 4} {
			fast := GraphletCounts(g, k)
			slow := graphletCountsIso(g, k)
			if len(fast) != len(slow) {
				t.Fatalf("graph %d k=%d: class counts differ in length", gi, k)
			}
			for c := range fast {
				if fast[c] != slow[c] {
					t.Errorf("graph %d k=%d class %d: table=%v oracle=%v", gi, k, c, fast[c], slow[c])
				}
			}
		}
	}
}

// Before/after benchmark for the canonical-code table: the baseline runs an
// isomorphism test per subset, the table path a bitmask lookup.

func benchGraphletGraph() *graph.Graph {
	return graph.Random(25, 0.2, rand.New(rand.NewSource(56)))
}

func BenchmarkGraphletCountsIso25(b *testing.B) {
	g := benchGraphletGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphletCountsIso(g, 4)
	}
}

func BenchmarkGraphletCountsCoded25(b *testing.B) {
	g := benchGraphletGraph()
	graphletTableFor(4) // table build is a one-time cost, excluded
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GraphletCounts(g, 4)
	}
}
