package kernel

// The prepared-pairwise path: Gram reuse for kernels without a feature map.
//
// RandomWalk cannot join the corpus feature pipeline outright: its implicit
// feature space is indexed by labelled walk sequences — coordinate (ℓ₀, …,
// ℓ_k) counts the walks through that label sequence, K(g,h) = Σ_k λ^k
// Σ_seq walks_g(seq)·walks_h(seq) — and the number of realised sequences
// grows like |labels|^MaxLen, so materialising Features(g) is exponential in
// MaxLen exactly where the kernel is interesting (many labels). What CAN be
// hoisted out of Gram's O(n²) pairwise loop is every per-graph quantity the
// product-graph walk recurrence touches: the label-bucketed out-adjacency
// (destinations of each vertex grouped by destination label, sorted by
// label) and the per-label vertex lists that seed the round-0 match matrix.
// preparedKernel formalises that: Gram prepares each graph once, then every
// pair multiplies prepared forms — identical arithmetic (walk counts are
// integers, so bucket-ordered accumulation is exactly equal), no repeated
// bucketing, no per-arc label comparisons in the inner loop.

import (
	"sort"

	"repro/internal/graph"
)

// preparedKernel is a Kernel whose pairwise evaluation factors through a
// per-graph prepared form. GramWorkers prepares each graph exactly once and
// evaluates pairs on the prepared forms; computePrepared(prepare(g),
// prepare(h)) must equal Compute(g, h) for all pairs, which the regression
// tests pin for every implementor.
type preparedKernel interface {
	Kernel
	prepare(g *graph.Graph) any
	computePrepared(a, b any) float64
}

// labelRun is one vertex's out-destinations carrying a single label.
type labelRun struct {
	label int
	dsts  []int32
}

// rwPrep is RandomWalk's prepared form.
type rwPrep struct {
	n       int
	labels  []int        // vertex labels (round-0 matching)
	byLabel [][]labelRun // per vertex: out-destinations bucketed by label, label-sorted
}

// prepare implements preparedKernel: one pass bucketing g's out-adjacency by
// destination label.
func (RandomWalk) prepare(g *graph.Graph) any {
	n := g.N()
	p := &rwPrep{n: n, labels: make([]int, n), byLabel: make([][]labelRun, n)}
	var dsts []int32
	for v := 0; v < n; v++ {
		p.labels[v] = g.VertexLabel(v)
		arcs := g.Arcs(v)
		dsts = dsts[:0]
		for _, a := range arcs {
			dsts = append(dsts, int32(a.To))
		}
		sort.Slice(dsts, func(i, j int) bool {
			li, lj := g.VertexLabel(int(dsts[i])), g.VertexLabel(int(dsts[j]))
			return li < lj || (li == lj && dsts[i] < dsts[j])
		})
		var runs []labelRun
		for i := 0; i < len(dsts); {
			l := g.VertexLabel(int(dsts[i]))
			j := i + 1
			for j < len(dsts) && g.VertexLabel(int(dsts[j])) == l {
				j++
			}
			run := labelRun{label: l, dsts: make([]int32, j-i)}
			copy(run.dsts, dsts[i:j])
			runs = append(runs, run)
			i = j
		}
		p.byLabel[v] = runs
	}
	return p
}

// computePrepared implements preparedKernel: the same truncated geometric
// walk series as Compute, evaluated on prepared forms. Walk counts are
// integers, so the bucket-ordered accumulation is bit-identical to Compute's
// arc-ordered one, and the per-round weighting replays Compute's loop
// exactly.
func (k RandomWalk) computePrepared(a, b any) float64 {
	pg := a.(*rwPrep)
	ph := b.(*rwPrep)
	lambda := k.Lambda
	if lambda == 0 {
		lambda = 0.01
	}
	maxLen := k.MaxLen
	if maxLen == 0 {
		maxLen = 8
	}
	ng, nh := pg.n, ph.n
	cur := make([]float64, ng*nh)
	for i := 0; i < ng; i++ {
		for j := 0; j < nh; j++ {
			if pg.labels[i] == ph.labels[j] {
				cur[i*nh+j] = 1
			}
		}
	}
	total := sum(cur)
	w := 1.0
	next := make([]float64, ng*nh)
	for step := 1; step <= maxLen; step++ {
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < ng; i++ {
			runsG := pg.byLabel[i]
			if len(runsG) == 0 {
				continue
			}
			for j := 0; j < nh; j++ {
				v := cur[i*nh+j]
				if v == 0 {
					continue
				}
				runsH := ph.byLabel[j]
				// Sorted-run merge on destination label: only matching
				// labels contribute product-graph steps.
				gi, hi := 0, 0
				for gi < len(runsG) && hi < len(runsH) {
					switch {
					case runsG[gi].label < runsH[hi].label:
						gi++
					case runsG[gi].label > runsH[hi].label:
						hi++
					default:
						for _, u := range runsG[gi].dsts {
							row := next[int(u)*nh:]
							for _, x := range runsH[hi].dsts {
								row[x] += v
							}
						}
						gi++
						hi++
					}
				}
			}
		}
		cur, next = next, cur
		w *= lambda
		total += w * sum(cur)
	}
	return total
}
