package kernel

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// nystromCorpus builds a clustered corpus (SBM families), the regime the
// approximation is for: family structure gives the Gram a fast-decaying
// spectrum that m ≪ n landmark columns can span.
func nystromCorpus(perFamily int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	families := []struct {
		sizes     []int
		pin, pout float64
	}{
		{[]int{10, 10}, 0.85, 0.05},
		{[]int{7, 7, 7}, 0.9, 0.1},
		{[]int{15, 5}, 0.7, 0.15},
		{[]int{6, 6, 6, 6}, 0.8, 0.05},
	}
	var gs []*graph.Graph
	for _, f := range families {
		for i := 0; i < perFamily; i++ {
			g, blocks := graph.SBM(f.sizes, f.pin, f.pout, rng)
			for v, b := range blocks {
				g.SetVertexLabel(v, b%2)
			}
			gs = append(gs, g)
		}
	}
	return gs
}

// TestNystromSpectralErrorGate is the pinned quality budget of ISSUE 9: on
// the structured corpus with m = 2√n landmarks, the relative spectral error
// ‖G − G̃‖₂/‖G‖₂ of the Nyström Gram must stay under 0.15.
func TestNystromSpectralErrorGate(t *testing.T) {
	gs := nystromCorpus(50, 7) // n = 200
	k := WLSubtree{Rounds: 1}
	exact := Gram(k, gs)
	n := len(gs)
	m := 2 * int(math.Sqrt(float64(n)))
	approx, err := NystromGram(k, gs, m, 0, 99)
	if err != nil {
		t.Fatalf("NystromGram: %v", err)
	}
	rel := linalg.SpectralNorm(exact.Sub(approx)) / linalg.SpectralNorm(exact)
	if rel > 0.15 {
		t.Fatalf("relative spectral error %.4f > 0.15 at m=%d, n=%d", rel, m, n)
	}
	t.Logf("n=%d m=%d relative spectral error %.4f", n, m, rel)
}

// TestNystromExactAtFullRank: with m = n every column is a landmark, the
// span is complete, and K̃ must equal K to numerical precision.
func TestNystromExactAtFullRank(t *testing.T) {
	gs := nystromCorpus(8, 11) // n = 32
	k := WLSubtree{Rounds: 1}
	exact := Gram(k, gs)
	approx, err := NystromGram(k, gs, len(gs), 0, 3)
	if err != nil {
		t.Fatalf("NystromGram: %v", err)
	}
	scale := linalg.Frobenius(exact)
	if diff := linalg.Frobenius(exact.Sub(approx)); diff > 1e-8*scale {
		t.Fatalf("full-rank Nyström differs from exact Gram: ‖diff‖_F = %v (scale %v)", diff, scale)
	}
}

// TestNystromFeaturesFactorConsistency: NystromGram must equal the W·Wᵀ of
// NystromFeatures with the same seed — the factor IS the approximation.
func TestNystromFeaturesFactorConsistency(t *testing.T) {
	gs := nystromCorpus(10, 13)
	k := WLSubtree{Rounds: 1}
	w, err := NystromFeatures(k, gs, 12, 0, 5)
	if err != nil {
		t.Fatalf("NystromFeatures: %v", err)
	}
	gram, err := NystromGram(k, gs, 12, 0, 5)
	if err != nil {
		t.Fatalf("NystromGram: %v", err)
	}
	if w.Rows != len(gs) || w.Cols != 12 {
		t.Fatalf("factor shape %dx%d, want %dx12", w.Rows, w.Cols, len(gs))
	}
	for i := 0; i < len(gs); i++ {
		for j := i; j < len(gs); j++ {
			if got, want := gram.At(i, j), linalg.Dot(w.Row(i), w.Row(j)); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("(%d,%d): gram %v != factor product %v", i, j, got, want)
			}
		}
	}
}

// TestNystromPSD: K̃ = W·Wᵀ is PSD by construction — the property that lets
// downstream spectral embeddings consume it unguarded.
func TestNystromPSD(t *testing.T) {
	gs := nystromCorpus(10, 17)
	approx, err := NystromGram(WLSubtree{Rounds: 2}, gs, 10, 0, 1)
	if err != nil {
		t.Fatalf("NystromGram: %v", err)
	}
	if !IsPSD(approx, 1e-6*linalg.SpectralNorm(approx)) {
		t.Fatal("Nyström Gram is not PSD")
	}
}

// TestNystromDeterministicInSeed and worker-count invariant.
func TestNystromDeterministic(t *testing.T) {
	gs := nystromCorpus(6, 19)
	k := WLSubtree{Rounds: 1}
	a, err := NystromGram(k, gs, 8, 1, 42)
	if err != nil {
		t.Fatalf("NystromGram: %v", err)
	}
	b, err := NystromGram(k, gs, 8, 4, 42)
	if err != nil {
		t.Fatalf("NystromGram: %v", err)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-12 {
			t.Fatalf("worker count changed Nyström result at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestNystromErrors(t *testing.T) {
	gs := nystromCorpus(2, 23)
	if _, err := NystromGram(WLSubtree{Rounds: 1}, gs, 0, 0, 1); !errors.Is(err, ErrBadLandmarks) {
		t.Fatalf("m=0: want ErrBadLandmarks, got %v", err)
	}
	// m > n clamps instead of failing.
	if _, err := NystromGram(WLSubtree{Rounds: 1}, gs, 10*len(gs), 0, 1); err != nil {
		t.Fatalf("m>n: %v", err)
	}
	// Empty corpus: empty matrices, no error.
	w, err := NystromFeatures(WLSubtree{Rounds: 1}, nil, 3, 0, 1)
	if err != nil || w.Rows != 0 {
		t.Fatalf("empty corpus: rows=%d err=%v", w.Rows, err)
	}
}
