package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// TestCountSketchUnbiased is the headline property: averaged over hash
// seeds, sketch inner products converge to the exact WLSubtree kernel.
// Width is kept small (64) so per-seed noise is visible and the averaging is
// doing real work.
func TestCountSketchUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, _ := graph.SBM([]int{8, 8}, 0.8, 0.1, rng)
	h, _ := graph.SBM([]int{8, 8}, 0.7, 0.15, rng)
	for v := 0; v < g.N(); v++ {
		g.SetVertexLabel(v, v%2)
	}
	for v := 0; v < h.N(); v++ {
		h.SetVertexLabel(v, v%2)
	}
	const rounds = 2
	exact := WLSubtree{Rounds: rounds}.Compute(g, h)
	if exact <= 0 {
		t.Fatalf("degenerate test pair: exact kernel %v", exact)
	}
	const samples = 500
	var mean float64
	for s := 0; s < samples; s++ {
		k := CountSketchWL{Rounds: rounds, Width: 64, Seed: uint64(s + 1)}
		mean += k.Compute(g, h)
	}
	mean /= samples
	if rel := math.Abs(mean-exact) / exact; rel > 0.10 {
		t.Fatalf("sketch estimator biased: mean %v exact %v rel err %.3f", mean, exact, rel)
	}
}

// TestCountSketchSelfKernelUpperBiased documents the known self-product
// bias: E‖sketch‖² = ‖φ‖² + collision mass ≥ ‖φ‖², so self-similarities are
// never underestimated on average.
func TestCountSketchSelfKernelUpperBiased(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Random(14, 0.3, rng)
	const rounds = 2
	exact := WLSubtree{Rounds: rounds}.Compute(g, g)
	const samples = 300
	var mean float64
	for s := 0; s < samples; s++ {
		k := CountSketchWL{Rounds: rounds, Width: 64, Seed: uint64(s + 1)}
		mean += k.Compute(g, g)
	}
	mean /= samples
	if mean < exact*0.98 {
		t.Fatalf("self kernel underestimated on average: mean %v exact %v", mean, exact)
	}
}

// TestCountSketchDeterministicAndConsistent: same seed → identical sketches,
// corpus path ≡ per-graph path, Features ≡ Sketch, Compute ≡ Features dot.
func TestCountSketchDeterministicAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gs := []*graph.Graph{
		graph.Cycle(7),
		graph.Random(10, 0.4, rng),
		graph.RandomTree(9, rng),
	}
	k := CountSketchWL{Rounds: 3, Width: 32, Seed: 42}
	corpus := k.CorpusSketches(gs, 2)
	mat := k.CorpusSketchMatrix(gs, 2)
	for i, g := range gs {
		single := k.Sketch(g)
		again := k.Sketch(g)
		for j := range single {
			if single[j] != again[j] {
				t.Fatalf("graph %d: sketch not deterministic at %d", i, j)
			}
			if corpus[i][j] != single[j] {
				t.Fatalf("graph %d: corpus sketch differs at %d", i, j)
			}
			if mat.At(i, j) != single[j] {
				t.Fatalf("graph %d: sketch matrix differs at %d", i, j)
			}
		}
		if got, want := k.Compute(g, g), linalg.Dot(single, single); math.Abs(got-want) > 1e-9 {
			t.Fatalf("graph %d: Compute %v != sketch self-dot %v", i, got, want)
		}
		feat := k.Features(g)
		var fromFeat float64
		for _, v := range feat {
			fromFeat += v * v
		}
		if math.Abs(fromFeat-linalg.Dot(single, single)) > 1e-9 {
			t.Fatalf("graph %d: Features mass differs from sketch", i)
		}
	}
}

// TestCountSketchIsomorphismInvariant: renumbering vertices must not move
// the sketch — the property that makes wl.Hash a sound cache key for
// /neighbors responses.
func TestCountSketchIsomorphismInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.Random(12, 0.3, rng)
	for v := 0; v < g.N(); v++ {
		g.SetVertexLabel(v, v%3)
	}
	perm := rng.Perm(g.N())
	h := graph.New(g.N())
	for v := 0; v < g.N(); v++ {
		h.SetVertexLabel(perm[v], g.VertexLabel(v))
	}
	for _, e := range g.Edges() {
		h.AddEdgeFull(perm[e.U], perm[e.V], e.Weight, e.Label)
	}
	k := CountSketchWL{}
	sg, sh := k.Sketch(g), k.Sketch(h)
	for i := range sg {
		if sg[i] != sh[i] {
			t.Fatalf("sketch differs under renumbering at bucket %d", i)
		}
	}
}

// TestCountSketchDefaults pins the zero-value parameters.
func TestCountSketchDefaults(t *testing.T) {
	k := CountSketchWL{}
	if got := len(k.Sketch(graph.Path(3))); got != DefaultSketchWidth {
		t.Fatalf("default width: got %d want %d", got, DefaultSketchWidth)
	}
	if k.rounds() != DefaultSketchRounds {
		t.Fatalf("default rounds: got %d want %d", k.rounds(), DefaultSketchRounds)
	}
}
