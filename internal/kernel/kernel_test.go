package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/linalg"
)

func testGraphs(rng *rand.Rand, n int) []*graph.Graph {
	gs := []*graph.Graph{
		graph.Cycle(5), graph.Path(6), graph.Complete(4),
		graph.Star(4), graph.Fig5Graph(), graph.Petersen(),
	}
	for len(gs) < n {
		gs = append(gs, graph.Random(6, 0.4, rng))
	}
	return gs[:n]
}

func TestAllKernelsSymmetricAndPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	gs := testGraphs(rng, 8)
	kernels := []Kernel{
		WLSubtree{Rounds: 3},
		WLDiscounted{},
		ShortestPath{},
		Graphlet{Size: 3},
		RandomWalk{Lambda: 0.05, MaxLen: 6},
		HomVector{Class: hom.StandardClass()},
		HomVector{Class: hom.StandardClass(), Log: true},
	}
	for _, k := range kernels {
		gram := Gram(k, gs)
		for i := 0; i < gram.Rows; i++ {
			for j := 0; j < gram.Cols; j++ {
				if math.Abs(gram.At(i, j)-gram.At(j, i)) > 1e-9 {
					t.Errorf("%s: Gram not symmetric at (%d,%d)", k.Name(), i, j)
				}
			}
		}
		if !IsPSD(gram, 1e-6*linalg.Frobenius(gram)) {
			t.Errorf("%s: Gram matrix not PSD", k.Name())
		}
	}
}

func TestWLSubtreeKnownValue(t *testing.T) {
	// Round 0: every vertex has the same colour, contributing n(G)·n(H).
	g, h := graph.Cycle(3), graph.Cycle(4)
	k0 := WLSubtree{Rounds: 0}.Compute(g, h)
	if k0 != 12 {
		t.Errorf("K^(0)(C3,C4)=%v, want 12", k0)
	}
	// Round 1 adds degree profiles: all vertices of both are degree 2, so
	// another 12.
	k1 := WLSubtree{Rounds: 1}.Compute(g, h)
	if k1 != 24 {
		t.Errorf("K^(1)(C3,C4)=%v, want 24", k1)
	}
}

func TestWLSubtreeSeparatesNonWLEquivalent(t *testing.T) {
	g, h := graph.CospectralPair() // K1,4 vs C4+K1, distinguished by WL
	kGH := WLSubtree{Rounds: 2}.Compute(g, h)
	kGG := WLSubtree{Rounds: 2}.Compute(g, g)
	kHH := WLSubtree{Rounds: 2}.Compute(h, h)
	// Distance in feature space must be positive.
	if d := kGG + kHH - 2*kGH; d <= 0 {
		t.Errorf("WL feature distance %v, want > 0", d)
	}
}

func TestWLSubtreeBlindToWLEquivalentPair(t *testing.T) {
	g, h := graph.WLIndistinguishablePair() // C6 vs 2C3
	for rounds := 0; rounds <= 5; rounds++ {
		k := WLSubtree{Rounds: rounds}
		if d := k.Compute(g, g) + k.Compute(h, h) - 2*k.Compute(g, h); math.Abs(d) > 1e-9 {
			t.Errorf("rounds=%d: WL kernel separates a WL-equivalent pair (distance %v)", rounds, d)
		}
	}
}

func TestShortestPathKernel(t *testing.T) {
	// P3 has pairs at distance 1 (two) and 2 (one); features (1:2, 2:1).
	// Self kernel = 4+1 = 5.
	if got := (ShortestPath{}).Compute(graph.Path(3), graph.Path(3)); got != 5 {
		t.Errorf("SP(P3,P3)=%v, want 5", got)
	}
	// C3: three pairs at distance 1: self kernel 9; cross with P3: 3*2=6.
	if got := (ShortestPath{}).Compute(graph.Cycle(3), graph.Path(3)); got != 6 {
		t.Errorf("SP(C3,P3)=%v, want 6", got)
	}
}

func TestGraphletCounts(t *testing.T) {
	// K4 contains C(4,3)=4 triangles and no other triple type.
	counts := GraphletCounts(graph.Complete(4), 3)
	var total float64
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Errorf("K4 triple count=%v, want 4", total)
	}
	var triangles float64
	reps := graph.AllGraphs(3)
	for i, r := range reps {
		if r.M() == 3 {
			triangles = counts[i]
		}
	}
	if triangles != 4 {
		t.Errorf("K4 triangle graphlets=%v, want 4", triangles)
	}
	// C5: all 10 triples, none is a triangle; path-of-3 triples = 5.
	c5 := GraphletCounts(graph.Cycle(5), 3)
	var c5tri, c5p3 float64
	for i, r := range reps {
		switch r.M() {
		case 3:
			c5tri = c5[i]
		case 2:
			c5p3 = c5[i]
		}
	}
	if c5tri != 0 || c5p3 != 5 {
		t.Errorf("C5 graphlets: triangles=%v (want 0), cherries=%v (want 5)", c5tri, c5p3)
	}
}

func TestRandomWalkKernelBasics(t *testing.T) {
	k := RandomWalk{Lambda: 0.1, MaxLen: 4}
	// Walk pairs of length 0: n(g)*n(h).
	got := k.Compute(graph.New(2), graph.New(3))
	if got != 6 {
		t.Errorf("edgeless RW kernel=%v, want 6", got)
	}
	// Single edges: product graph K2xK2 has 4 vertices, 2 edges... verify
	// positivity and symmetry only.
	a := k.Compute(graph.Path(2), graph.Cycle(3))
	b := k.Compute(graph.Cycle(3), graph.Path(2))
	if math.Abs(a-b) > 1e-9 || a <= 0 {
		t.Errorf("RW kernel asymmetric or nonpositive: %v vs %v", a, b)
	}
}

func TestHomVectorKernelSeparatesCospectralPair(t *testing.T) {
	g, h := graph.CospectralPair()
	k := HomVector{Class: hom.StandardClass()}
	d := k.Compute(g, g) + k.Compute(h, h) - 2*k.Compute(g, h)
	if d <= 0 {
		t.Errorf("hom kernel distance %v, want > 0 (trees distinguish the pair)", d)
	}
}

func TestNormalizeUnitDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	gs := testGraphs(rng, 6)
	gram := Normalize(Gram(WLSubtree{Rounds: 3}, gs))
	for i := 0; i < gram.Rows; i++ {
		if math.Abs(gram.At(i, i)-1) > 1e-9 {
			t.Errorf("normalised diagonal entry %d = %v", i, gram.At(i, i))
		}
		for j := 0; j < gram.Cols; j++ {
			if gram.At(i, j) > 1+1e-9 {
				t.Errorf("normalised entry > 1 at (%d,%d)", i, j)
			}
		}
	}
}

func TestNodeKernelMatchesWLColours(t *testing.T) {
	// Vertices with equal 1-WL colour have equal rooted-tree hom vectors
	// (Theorem 4.14), hence equal node-kernel self-similarity.
	nk := DefaultNodeKernel()
	g := graph.Path(5)
	// Vertices 0 and 4 are WL-equivalent.
	k00 := nk.Compute(g, 0, g, 0)
	k44 := nk.Compute(g, 4, g, 4)
	k04 := nk.Compute(g, 0, g, 4)
	if math.Abs(k00-k44) > 1e-9 || math.Abs(k00-k04) > 1e-9 {
		t.Errorf("WL-equivalent nodes should have identical kernel rows: %v %v %v", k00, k44, k04)
	}
	// Centre differs from endpoint.
	k22 := nk.Compute(g, 2, g, 2)
	if math.Abs(k22-k00) < 1e-12 {
		t.Error("centre and endpoint should differ in node kernel")
	}
}

func TestWLSubtreeFeatures(t *testing.T) {
	k := WLSubtree{Rounds: 2}
	f := k.Features(graph.Cycle(4))
	var total float64
	for _, v := range f {
		total += v
	}
	// 4 vertices x 3 rounds of counts.
	if total != 12 {
		t.Errorf("feature mass %v, want 12", total)
	}
	// C4 is vertex-transitive: one colour per round, so 3 coordinates.
	if f.NNZ() != 3 {
		t.Errorf("feature NNZ %d, want 3", f.NNZ())
	}
}
