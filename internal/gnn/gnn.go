// Package gnn implements the message-passing graph neural networks of
// Section 2.2 (equations 2.1/2.2): layers computing
//
//	X' = ReLU(X·W_self + A·X·W_agg + b)
//
// with shared parameters across nodes, trained by manual backpropagation
// for node classification (softmax cross-entropy) or sum-pooled graph
// classification. The package also provides the expressiveness probes of
// Section 3.6: GNN outputs are invariant across 1-WL-equivalent nodes when
// initial features are constant, and random initial features break that
// ceiling at the price of per-run invariance.
package gnn

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// Layer is one message-passing layer.
type Layer struct {
	WSelf *linalg.Matrix // d_in × d_out
	WAgg  *linalg.Matrix // d_in × d_out
	Bias  []float64      // d_out
}

// Network is a stack of message-passing layers plus a linear output head.
type Network struct {
	Layers []*Layer
	WOut   *linalg.Matrix // d_last × classes
	BOut   []float64
}

// New creates a network with the given layer widths: dims[0] is the input
// feature width, dims[1..] the hidden widths, classes the output width.
func New(dims []int, classes int, rng *rand.Rand) *Network {
	net := &Network{}
	for i := 0; i+1 < len(dims); i++ {
		net.Layers = append(net.Layers, &Layer{
			WSelf: glorot(dims[i], dims[i+1], rng),
			WAgg:  glorot(dims[i], dims[i+1], rng),
			Bias:  make([]float64, dims[i+1]),
		})
	}
	net.WOut = glorot(dims[len(dims)-1], classes, rng)
	net.BOut = make([]float64, classes)
	return net
}

func glorot(in, out int, rng *rand.Rand) *linalg.Matrix {
	m := linalg.NewMatrix(in, out)
	scale := math.Sqrt(6 / float64(in+out))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// ConstantFeatures returns the all-ones n×d feature matrix (the paper's
// default initial state).
func ConstantFeatures(n, d int) *linalg.Matrix {
	x := linalg.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = 1
	}
	return x
}

// RandomFeatures returns i.i.d. uniform initial states, the Section 3.6
// trick that lifts GNN expressiveness beyond 1-WL.
func RandomFeatures(n, d int, rng *rand.Rand) *linalg.Matrix {
	x := linalg.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	return x
}

// forwardState captures intermediate activations for backprop.
type forwardState struct {
	a      *linalg.Matrix   // adjacency
	inputs []*linalg.Matrix // X_0 .. X_L (post-activation)
	pre    []*linalg.Matrix // Z_1 .. Z_L (pre-activation)
}

// Embed runs the message-passing layers and returns the final node states —
// the GNN node embedding of Section 2.2.
func (net *Network) Embed(g *graph.Graph, x0 *linalg.Matrix) *linalg.Matrix {
	st := net.forward(g, x0)
	return st.inputs[len(st.inputs)-1]
}

func (net *Network) forward(g *graph.Graph, x0 *linalg.Matrix) *forwardState {
	a := linalg.FromRows(g.AdjacencyMatrix())
	st := &forwardState{a: a, inputs: []*linalg.Matrix{x0}}
	x := x0
	for _, l := range net.Layers {
		z := x.Mul(l.WSelf).Add(a.Mul(x).Mul(l.WAgg))
		for i := 0; i < z.Rows; i++ {
			row := z.Row(i)
			for j := range row {
				row[j] += l.Bias[j]
			}
		}
		st.pre = append(st.pre, z)
		x = relu(z)
		st.inputs = append(st.inputs, x)
	}
	return st
}

func relu(m *linalg.Matrix) *linalg.Matrix {
	out := m.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// NodeLogits returns per-node class scores.
func (net *Network) NodeLogits(g *graph.Graph, x0 *linalg.Matrix) *linalg.Matrix {
	emb := net.Embed(g, x0)
	return net.head(emb)
}

func (net *Network) head(emb *linalg.Matrix) *linalg.Matrix {
	logits := emb.Mul(net.WOut)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		for j := range row {
			row[j] += net.BOut[j]
		}
	}
	return logits
}

// GraphLogits sum-pools final node states and applies the output head —
// the simplest whole-graph embedding of Section 2.5.
func (net *Network) GraphLogits(g *graph.Graph, x0 *linalg.Matrix) []float64 {
	emb := net.Embed(g, x0)
	pooled := make([]float64, emb.Cols)
	for i := 0; i < emb.Rows; i++ {
		row := emb.Row(i)
		for j, v := range row {
			pooled[j] += v
		}
	}
	logits := make([]float64, net.WOut.Cols)
	for j := 0; j < net.WOut.Cols; j++ {
		s := net.BOut[j]
		for d := 0; d < net.WOut.Rows; d++ {
			s += pooled[d] * net.WOut.At(d, j)
		}
		logits[j] = s
	}
	return logits
}

// PredictNodes returns argmax class per node.
func (net *Network) PredictNodes(g *graph.Graph, x0 *linalg.Matrix) []int {
	logits := net.NodeLogits(g, x0)
	out := make([]int, logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		out[i] = argmax(logits.Row(i))
	}
	return out
}

func argmax(xs []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range xs {
		if x > best {
			best = x
			bi = i
		}
	}
	return bi
}

// NodeLoss computes the mean softmax cross-entropy over the masked nodes.
func (net *Network) NodeLoss(g *graph.Graph, x0 *linalg.Matrix, labels []int, mask []bool) float64 {
	logits := net.NodeLogits(g, x0)
	loss, count := 0.0, 0
	for i := 0; i < logits.Rows; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		p := softmax(logits.Row(i))
		loss += -math.Log(math.Max(p[labels[i]], 1e-12))
		count++
	}
	if count == 0 {
		return 0
	}
	return loss / float64(count)
}

func softmax(xs []float64) []float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	var sum float64
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Exp(x - m)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// TrainNodes runs full-batch gradient descent on node classification and
// returns the loss trace. mask selects training nodes (nil = all).
func (net *Network) TrainNodes(g *graph.Graph, x0 *linalg.Matrix, labels []int, mask []bool, epochs int, lr float64) []float64 {
	trace := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		loss := net.step(g, x0, labels, mask, lr)
		trace = append(trace, loss)
	}
	return trace
}

// step does one forward/backward/update pass and returns the loss.
func (net *Network) step(g *graph.Graph, x0 *linalg.Matrix, labels []int, mask []bool, lr float64) float64 {
	st := net.forward(g, x0)
	emb := st.inputs[len(st.inputs)-1]
	logits := net.head(emb)
	n := logits.Rows
	classes := logits.Cols

	// Loss and dLogits.
	dLogits := linalg.NewMatrix(n, classes)
	loss, count := 0.0, 0
	for i := 0; i < n; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		count++
	}
	if count == 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		p := softmax(logits.Row(i))
		loss += -math.Log(math.Max(p[labels[i]], 1e-12))
		for j := 0; j < classes; j++ {
			grad := p[j]
			if j == labels[i] {
				grad--
			}
			dLogits.Set(i, j, grad/float64(count))
		}
	}
	loss /= float64(count)

	// Output head gradients.
	dWOut := emb.T().Mul(dLogits)
	dBOut := colSums(dLogits)
	dX := dLogits.Mul(net.WOut.T())

	// Layer gradients, backwards.
	type layerGrad struct {
		dWSelf, dWAgg *linalg.Matrix
		dBias         []float64
	}
	grads := make([]layerGrad, len(net.Layers))
	for l := len(net.Layers) - 1; l >= 0; l-- {
		z := st.pre[l]
		dZ := dX.Clone()
		for i, v := range z.Data {
			if v <= 0 {
				dZ.Data[i] = 0
			}
		}
		xin := st.inputs[l]
		ax := st.a.Mul(xin)
		grads[l] = layerGrad{
			dWSelf: xin.T().Mul(dZ),
			dWAgg:  ax.T().Mul(dZ),
			dBias:  colSums(dZ),
		}
		if l > 0 {
			// dX_{l-1} = dZ Wselfᵀ + Aᵀ dZ Waggᵀ (A symmetric for
			// undirected graphs; use transpose for generality).
			dX = dZ.Mul(net.Layers[l].WSelf.T()).Add(st.a.T().Mul(dZ).Mul(net.Layers[l].WAgg.T()))
		}
	}

	// SGD update.
	for l, lg := range grads {
		applyUpdate(net.Layers[l].WSelf, lg.dWSelf, lr)
		applyUpdate(net.Layers[l].WAgg, lg.dWAgg, lr)
		for j := range net.Layers[l].Bias {
			net.Layers[l].Bias[j] -= lr * lg.dBias[j]
		}
	}
	applyUpdate(net.WOut, dWOut, lr)
	for j := range net.BOut {
		net.BOut[j] -= lr * dBOut[j]
	}
	return loss
}

func applyUpdate(w, g *linalg.Matrix, lr float64) {
	for i := range w.Data {
		w.Data[i] -= lr * g.Data[i]
	}
}

func colSums(m *linalg.Matrix) []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}
