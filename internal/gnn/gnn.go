// Package gnn implements the message-passing graph neural networks of
// Section 2.2 (equations 2.1/2.2): layers computing
//
//	X' = ReLU(X·W_self + A·X·W_agg + b)
//
// with shared parameters across nodes, trained by manual backpropagation
// for node classification (softmax cross-entropy) or sum-pooled graph
// classification. Aggregation runs over a CSR adjacency snapshot (csr.go) —
// O(n + m) per layer, bit-identical to the dense-adjacency oracle kept as
// EmbedDense — and whole corpora batch over the linalg worker pool
// (corpus.go). The package also provides the expressiveness probes of
// Section 3.6: GNN outputs are invariant across 1-WL-equivalent nodes when
// initial features are constant, and random initial features break that
// ceiling at the price of per-run invariance.
package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// Layer is one message-passing layer.
type Layer struct {
	WSelf *linalg.Matrix // d_in × d_out
	WAgg  *linalg.Matrix // d_in × d_out
	Bias  []float64      // d_out
}

// Network is a stack of message-passing layers plus a linear output head.
type Network struct {
	Layers []*Layer
	WOut   *linalg.Matrix // d_last × classes
	BOut   []float64
}

// New creates a network with the given layer widths: dims[0] is the input
// feature width, dims[1..] the hidden widths, classes the output width.
func New(dims []int, classes int, rng *rand.Rand) (*Network, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("gnn: empty layer width list")
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("gnn: layer width dims[%d] = %d must be positive", i, d)
		}
	}
	if classes <= 0 {
		return nil, fmt.Errorf("gnn: output width %d must be positive", classes)
	}
	net := &Network{}
	for i := 0; i+1 < len(dims); i++ {
		net.Layers = append(net.Layers, &Layer{
			WSelf: glorot(dims[i], dims[i+1], rng),
			WAgg:  glorot(dims[i], dims[i+1], rng),
			Bias:  make([]float64, dims[i+1]),
		})
	}
	net.WOut = glorot(dims[len(dims)-1], classes, rng)
	net.BOut = make([]float64, classes)
	return net, nil
}

// InDim returns the input feature width the network expects.
func (net *Network) InDim() int {
	if len(net.Layers) > 0 {
		return net.Layers[0].WSelf.Rows
	}
	return net.WOut.Rows
}

// OutDim returns the width of the final node states (the embedding width).
func (net *Network) OutDim() int { return net.WOut.Rows }

// Classes returns the output head width.
func (net *Network) Classes() int { return net.WOut.Cols }

// Dims reconstructs the layer width list [in, hidden..., last].
func (net *Network) Dims() []int {
	dims := []int{net.InDim()}
	for _, l := range net.Layers {
		dims = append(dims, l.WSelf.Cols)
	}
	return dims
}

func glorot(in, out int, rng *rand.Rand) *linalg.Matrix {
	m := linalg.NewMatrix(in, out)
	scale := math.Sqrt(6 / float64(in+out))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// ConstantFeatures returns the all-ones n×d feature matrix (the paper's
// default initial state).
func ConstantFeatures(n, d int) *linalg.Matrix {
	x := linalg.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = 1
	}
	return x
}

// RandomFeatures returns i.i.d. uniform initial states, the Section 3.6
// trick that lifts GNN expressiveness beyond 1-WL.
func RandomFeatures(n, d int, rng *rand.Rand) *linalg.Matrix {
	x := linalg.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	return x
}

// DegreeFeatures returns the degree-based initial states used by the
// serving and CLI training paths: column 0 is the constant 1, column 1 (if
// present) the normalised degree deg(v)/n, further columns zero. Unlike
// random features the scheme is deterministic and permutation-equivariant,
// so pooled graph embeddings stay renumbering-invariant.
func DegreeFeatures(g *graph.Graph, d int) *linalg.Matrix {
	n := g.N()
	x := linalg.NewMatrix(n, d)
	for v := 0; v < n; v++ {
		row := x.Row(v)
		row[0] = 1
		if d > 1 && n > 0 {
			row[1] = float64(g.Degree(v)) / float64(n)
		}
	}
	return x
}

// checkInput validates the feature matrix against the graph and the
// network: silent shape mismatches used to read out of step or panic deep
// inside the matrix kernels.
func (net *Network) checkInput(g *graph.Graph, x0 *linalg.Matrix) error {
	if g == nil {
		return fmt.Errorf("gnn: nil graph")
	}
	if x0 == nil {
		return fmt.Errorf("gnn: nil feature matrix")
	}
	if x0.Rows != g.N() {
		return fmt.Errorf("gnn: feature matrix has %d rows for a graph of order %d", x0.Rows, g.N())
	}
	if x0.Cols != net.InDim() {
		return fmt.Errorf("gnn: feature width %d, network expects %d", x0.Cols, net.InDim())
	}
	return nil
}

// checkLabels validates a label vector against the graph order and the
// output head width.
func (net *Network) checkLabels(g *graph.Graph, labels []int, mask []bool) error {
	if len(labels) != g.N() {
		return fmt.Errorf("gnn: %d labels for a graph of order %d", len(labels), g.N())
	}
	if mask != nil && len(mask) != g.N() {
		return fmt.Errorf("gnn: %d mask entries for a graph of order %d", len(mask), g.N())
	}
	classes := net.Classes()
	for v, l := range labels {
		if mask != nil && !mask[v] {
			continue
		}
		if l < 0 || l >= classes {
			return fmt.Errorf("gnn: label %d of node %d outside [0,%d)", l, v, classes)
		}
	}
	return nil
}

// forwardState captures intermediate activations for backprop.
type forwardState struct {
	adj    *csrAdj          // adjacency snapshot shared by every layer
	inputs []*linalg.Matrix // X_0 .. X_L (post-activation)
	pre    []*linalg.Matrix // Z_1 .. Z_L (pre-activation)
}

// Embed runs the message-passing layers and returns the final node states —
// the GNN node embedding of Section 2.2.
func (net *Network) Embed(g *graph.Graph, x0 *linalg.Matrix) (*linalg.Matrix, error) {
	if err := net.checkInput(g, x0); err != nil {
		return nil, err
	}
	st := net.forward(newCSR(g), x0)
	return st.inputs[len(st.inputs)-1], nil
}

// EmbedDense is the dense-adjacency oracle: the original O(n²) forward
// pass, kept (like the float64 trainers elsewhere) as the reference the
// differential suite pins the CSR path against bit-for-bit.
func (net *Network) EmbedDense(g *graph.Graph, x0 *linalg.Matrix) (*linalg.Matrix, error) {
	if err := net.checkInput(g, x0); err != nil {
		return nil, err
	}
	a := linalg.FromRows(g.AdjacencyMatrix())
	x := x0
	for _, l := range net.Layers {
		z := x.Mul(l.WSelf).Add(a.Mul(x).Mul(l.WAgg))
		addBias(z, l.Bias)
		x = relu(z)
	}
	return x, nil
}

func (net *Network) forward(adj *csrAdj, x0 *linalg.Matrix) *forwardState {
	st := &forwardState{adj: adj, inputs: []*linalg.Matrix{x0}}
	x := x0
	for _, l := range net.Layers {
		z := x.Mul(l.WSelf).Add(adj.mul(x).Mul(l.WAgg))
		addBias(z, l.Bias)
		st.pre = append(st.pre, z)
		x = relu(z)
		st.inputs = append(st.inputs, x)
	}
	return st
}

func addBias(z *linalg.Matrix, bias []float64) {
	for i := 0; i < z.Rows; i++ {
		row := z.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
}

func relu(m *linalg.Matrix) *linalg.Matrix {
	out := m.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// NodeLogits returns per-node class scores.
func (net *Network) NodeLogits(g *graph.Graph, x0 *linalg.Matrix) (*linalg.Matrix, error) {
	emb, err := net.Embed(g, x0)
	if err != nil {
		return nil, err
	}
	return net.head(emb), nil
}

func (net *Network) head(emb *linalg.Matrix) *linalg.Matrix {
	logits := emb.Mul(net.WOut)
	addBias(logits, net.BOut)
	return logits
}

// GraphEmbed sum-pools the final node states into one vector — the
// whole-graph embedding the daemon serves for GNN models.
func (net *Network) GraphEmbed(g *graph.Graph, x0 *linalg.Matrix) ([]float64, error) {
	emb, err := net.Embed(g, x0)
	if err != nil {
		return nil, err
	}
	return colSumsOf(emb), nil
}

// GraphLogits sum-pools final node states and applies the output head —
// the simplest whole-graph embedding of Section 2.5.
func (net *Network) GraphLogits(g *graph.Graph, x0 *linalg.Matrix) ([]float64, error) {
	pooled, err := net.GraphEmbed(g, x0)
	if err != nil {
		return nil, err
	}
	logits := make([]float64, net.WOut.Cols)
	for j := 0; j < net.WOut.Cols; j++ {
		s := net.BOut[j]
		for d := 0; d < net.WOut.Rows; d++ {
			s += pooled[d] * net.WOut.At(d, j)
		}
		logits[j] = s
	}
	return logits, nil
}

// PredictNodes returns argmax class per node.
func (net *Network) PredictNodes(g *graph.Graph, x0 *linalg.Matrix) ([]int, error) {
	logits, err := net.NodeLogits(g, x0)
	if err != nil {
		return nil, err
	}
	out := make([]int, logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		out[i] = argmax(logits.Row(i))
	}
	return out, nil
}

func argmax(xs []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range xs {
		if x > best {
			best = x
			bi = i
		}
	}
	return bi
}

// NodeLoss computes the mean softmax cross-entropy over the masked nodes.
func (net *Network) NodeLoss(g *graph.Graph, x0 *linalg.Matrix, labels []int, mask []bool) (float64, error) {
	if err := net.checkLabels(g, labels, mask); err != nil {
		return 0, err
	}
	logits, err := net.NodeLogits(g, x0)
	if err != nil {
		return 0, err
	}
	loss, count := 0.0, 0
	for i := 0; i < logits.Rows; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		p := softmax(logits.Row(i))
		loss += -math.Log(math.Max(p[labels[i]], 1e-12))
		count++
	}
	if count == 0 {
		return 0, nil
	}
	return loss / float64(count), nil
}

func softmax(xs []float64) []float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	var sum float64
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Exp(x - m)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// TrainNodes runs full-batch gradient descent on node classification and
// returns the loss trace. mask selects training nodes (nil = all). The
// adjacency snapshot is built once and shared by every epoch.
func (net *Network) TrainNodes(g *graph.Graph, x0 *linalg.Matrix, labels []int, mask []bool, epochs int, lr float64) ([]float64, error) {
	if err := net.checkInput(g, x0); err != nil {
		return nil, err
	}
	if err := net.checkLabels(g, labels, mask); err != nil {
		return nil, err
	}
	adj := newCSR(g)
	trace := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		loss, gr := net.nodeGradients(adj, x0, labels, mask)
		if gr != nil {
			net.apply(gr, lr)
		}
		trace = append(trace, loss)
	}
	return trace, nil
}

// step does one forward/backward/update pass and returns the loss (the
// finite-difference suite drives it directly; inputs are pre-validated by
// the exported callers).
func (net *Network) step(g *graph.Graph, x0 *linalg.Matrix, labels []int, mask []bool, lr float64) float64 {
	loss, gr := net.nodeGradients(newCSR(g), x0, labels, mask)
	if gr != nil {
		net.apply(gr, lr)
	}
	return loss
}

// layerGrad holds one layer's parameter gradients.
type layerGrad struct {
	dWSelf, dWAgg *linalg.Matrix
	dBias         []float64
}

// netGrads holds a full parameter gradient, the unit TrainCorpus reduces
// across graphs before applying.
type netGrads struct {
	layers []layerGrad
	dWOut  *linalg.Matrix
	dBOut  []float64
}

// nodeGradients computes the node-classification loss and the full
// parameter gradient for one graph (nil gradient when the mask selects no
// nodes).
func (net *Network) nodeGradients(adj *csrAdj, x0 *linalg.Matrix, labels []int, mask []bool) (float64, *netGrads) {
	st := net.forward(adj, x0)
	emb := st.inputs[len(st.inputs)-1]
	logits := net.head(emb)
	n := logits.Rows
	classes := logits.Cols

	// Loss and dLogits.
	dLogits := linalg.NewMatrix(n, classes)
	loss, count := 0.0, 0
	for i := 0; i < n; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		count++
	}
	if count == 0 {
		return 0, nil
	}
	for i := 0; i < n; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		p := softmax(logits.Row(i))
		loss += -math.Log(math.Max(p[labels[i]], 1e-12))
		for j := 0; j < classes; j++ {
			grad := p[j]
			if j == labels[i] {
				grad--
			}
			dLogits.Set(i, j, grad/float64(count))
		}
	}
	loss /= float64(count)

	gr := &netGrads{
		layers: make([]layerGrad, len(net.Layers)),
		dWOut:  emb.T().Mul(dLogits),
		dBOut:  colSumsOf(dLogits),
	}
	dX := dLogits.Mul(net.WOut.T())

	// Layer gradients, backwards.
	for l := len(net.Layers) - 1; l >= 0; l-- {
		z := st.pre[l]
		dZ := dX.Clone()
		for i, v := range z.Data {
			if v <= 0 {
				dZ.Data[i] = 0
			}
		}
		xin := st.inputs[l]
		ax := st.adj.mul(xin)
		gr.layers[l] = layerGrad{
			dWSelf: xin.T().Mul(dZ),
			dWAgg:  ax.T().Mul(dZ),
			dBias:  colSumsOf(dZ),
		}
		if l > 0 {
			// dX_{l-1} = dZ Wselfᵀ + Aᵀ dZ Waggᵀ (A symmetric for
			// undirected graphs; the snapshot's transpose view covers the
			// directed case).
			dX = dZ.Mul(net.Layers[l].WSelf.T()).Add(st.adj.tMul(dZ).Mul(net.Layers[l].WAgg.T()))
		}
	}
	return loss, gr
}

// apply takes one SGD step along gr.
func (net *Network) apply(gr *netGrads, lr float64) {
	for l, lg := range gr.layers {
		applyUpdate(net.Layers[l].WSelf, lg.dWSelf, lr)
		applyUpdate(net.Layers[l].WAgg, lg.dWAgg, lr)
		for j := range net.Layers[l].Bias {
			net.Layers[l].Bias[j] -= lr * lg.dBias[j]
		}
	}
	applyUpdate(net.WOut, gr.dWOut, lr)
	for j := range net.BOut {
		net.BOut[j] -= lr * gr.dBOut[j]
	}
}

func applyUpdate(w, g *linalg.Matrix, lr float64) {
	for i := range w.Data {
		w.Data[i] -= lr * g.Data[i]
	}
}

func colSumsOf(m *linalg.Matrix) []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}
