package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/wl"
)

func mustNew(t *testing.T, dims []int, classes int, rng *rand.Rand) *Network {
	t.Helper()
	net, err := New(dims, classes, rng)
	if err != nil {
		t.Fatalf("New(%v, %d): %v", dims, classes, err)
	}
	return net
}

func mustEmbed(t *testing.T, net *Network, g *graph.Graph, x0 *linalg.Matrix) *linalg.Matrix {
	t.Helper()
	emb, err := net.Embed(g, x0)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	return emb
}

func mustGraphLogits(t *testing.T, net *Network, g *graph.Graph, x0 *linalg.Matrix) []float64 {
	t.Helper()
	gl, err := net.GraphLogits(g, x0)
	if err != nil {
		t.Fatalf("GraphLogits: %v", err)
	}
	return gl
}

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	net := mustNew(t, []int{4, 8, 6}, 3, rng)
	g := graph.Cycle(5)
	emb := mustEmbed(t, net, g, ConstantFeatures(5, 4))
	if emb.Rows != 5 || emb.Cols != 6 {
		t.Fatalf("embedding shape %dx%d, want 5x6", emb.Rows, emb.Cols)
	}
	logits, err := net.NodeLogits(g, ConstantFeatures(5, 4))
	if err != nil {
		t.Fatalf("NodeLogits: %v", err)
	}
	if logits.Rows != 5 || logits.Cols != 3 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
	gl := mustGraphLogits(t, net, g, ConstantFeatures(5, 4))
	if len(gl) != 3 {
		t.Fatalf("graph logits length %d", len(gl))
	}
}

func TestNewRejectsBadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(nil, 2, rng); err == nil {
		t.Error("empty dims should be rejected")
	}
	if _, err := New([]int{3, 0}, 2, rng); err == nil {
		t.Error("zero width should be rejected")
	}
	if _, err := New([]int{3, 4}, 0, rng); err == nil {
		t.Error("zero classes should be rejected")
	}
}

func TestShapeMismatchesAreErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := mustNew(t, []int{3, 4}, 2, rng)
	g := graph.Cycle(5)
	if _, err := net.Embed(g, ConstantFeatures(5, 7)); err == nil {
		t.Error("wrong feature width should be an error")
	}
	if _, err := net.Embed(g, ConstantFeatures(4, 3)); err == nil {
		t.Error("wrong row count should be an error")
	}
	if _, err := net.Embed(nil, ConstantFeatures(5, 3)); err == nil {
		t.Error("nil graph should be an error")
	}
	if _, err := net.Embed(g, nil); err == nil {
		t.Error("nil features should be an error")
	}
	if _, err := net.TrainNodes(g, ConstantFeatures(5, 3), []int{0, 1, 0}, nil, 3, 0.1); err == nil {
		t.Error("label length mismatch should be an error")
	}
	if _, err := net.TrainNodes(g, ConstantFeatures(5, 3), []int{0, 1, 0, 1, 9}, nil, 3, 0.1); err == nil {
		t.Error("out-of-range label should be an error")
	}
}

func TestGNNBoundedBy1WLOnNodes(t *testing.T) {
	// Section 3.6: with constant initial features, any GNN gives identical
	// states to 1-WL-equivalent nodes. Try several random weight draws.
	g := graph.Path(5) // WL classes {0,4}, {1,3}, {2}
	for seed := int64(0); seed < 5; seed++ {
		net := mustNew(t, []int{3, 7, 5}, 2, rand.New(rand.NewSource(seed)))
		emb := mustEmbed(t, net, g, ConstantFeatures(5, 3))
		for _, pair := range [][2]int{{0, 4}, {1, 3}} {
			a, b := emb.Row(pair[0]), emb.Row(pair[1])
			for d := range a {
				if math.Abs(a[d]-b[d]) > 1e-9 {
					t.Fatalf("seed %d: WL-equivalent nodes %v got different GNN states", seed, pair)
				}
			}
		}
	}
}

func TestGNNBoundedBy1WLOnGraphs(t *testing.T) {
	// C6 vs 2C3 are 1-WL-equivalent, so sum-pooled GNN outputs coincide for
	// any weights.
	g, h := graph.WLIndistinguishablePair()
	for seed := int64(0); seed < 5; seed++ {
		net := mustNew(t, []int{2, 6, 4}, 2, rand.New(rand.NewSource(seed)))
		lg := mustGraphLogits(t, net, g, ConstantFeatures(g.N(), 2))
		lh := mustGraphLogits(t, net, h, ConstantFeatures(h.N(), 2))
		for i := range lg {
			if math.Abs(lg[i]-lh[i]) > 1e-9 {
				t.Fatalf("seed %d: GNN separates a 1-WL-equivalent pair", seed)
			}
		}
	}
	if wl.Distinguishes(g, h) {
		t.Fatal("sanity: pair should be WL-equivalent")
	}
}

func TestRandomFeaturesBreakTheWLCeiling(t *testing.T) {
	// With random initial features, some draw separates C6 from 2C3.
	g, h := graph.WLIndistinguishablePair()
	rng := rand.New(rand.NewSource(112))
	net := mustNew(t, []int{4, 8, 4}, 2, rng)
	separated := false
	for trial := 0; trial < 10 && !separated; trial++ {
		lg := mustGraphLogits(t, net, g, RandomFeatures(g.N(), 4, rng))
		lh := mustGraphLogits(t, net, h, RandomFeatures(h.N(), 4, rng))
		for i := range lg {
			if math.Abs(lg[i]-lh[i]) > 1e-6 {
				separated = true
				break
			}
		}
	}
	if !separated {
		t.Error("random features should separate the pair in some draw")
	}
}

func TestGradientsMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	g := graph.Random(6, 0.5, rng)
	labels := []int{0, 1, 0, 1, 0, 1}
	x0 := RandomFeatures(6, 3, rng)
	net := mustNew(t, []int{3, 4}, 2, rng)

	// Analytic gradient for one parameter via a single training step with
	// tiny lr on a cloned network.
	lossAt := func(n *Network) float64 {
		loss, err := n.NodeLoss(g, x0, labels, nil)
		if err != nil {
			t.Fatalf("NodeLoss: %v", err)
		}
		return loss
	}
	base := lossAt(net)

	// Finite-difference check on a few entries of the first layer's WSelf.
	const eps = 1e-5
	for _, idx := range []int{0, 3, 7} {
		net.Layers[0].WSelf.Data[idx] += eps
		up := lossAt(net)
		net.Layers[0].WSelf.Data[idx] -= 2 * eps
		down := lossAt(net)
		net.Layers[0].WSelf.Data[idx] += eps
		numGrad := (up - down) / (2 * eps)

		// One SGD step with lr and inspect the parameter delta to recover
		// the analytic gradient.
		clone := cloneNetwork(net)
		before := clone.Layers[0].WSelf.Data[idx]
		clone.step(g, x0, labels, nil, 1e-3)
		anaGrad := (before - clone.Layers[0].WSelf.Data[idx]) / 1e-3
		if math.Abs(numGrad-anaGrad) > 1e-3*(1+math.Abs(numGrad)) {
			t.Errorf("param %d: numeric grad %v vs analytic %v (base loss %v)", idx, numGrad, anaGrad, base)
		}
	}
}

func cloneNetwork(net *Network) *Network {
	c := &Network{WOut: net.WOut.Clone(), BOut: append([]float64(nil), net.BOut...)}
	for _, l := range net.Layers {
		c.Layers = append(c.Layers, &Layer{
			WSelf: l.WSelf.Clone(),
			WAgg:  l.WAgg.Clone(),
			Bias:  append([]float64(nil), l.Bias...),
		})
	}
	return c
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	nc := dataset.SBMNodes([]int{10, 10}, 0.8, 0.05, rng)
	net := mustNew(t, []int{4, 8}, 2, rng)
	x0 := RandomFeatures(nc.Graph.N(), 4, rng)
	trace, err := net.TrainNodes(nc.Graph, x0, nc.Labels, nil, 150, 0.3)
	if err != nil {
		t.Fatalf("TrainNodes: %v", err)
	}
	if trace[len(trace)-1] >= trace[0] {
		t.Errorf("loss did not decrease: %v -> %v", trace[0], trace[len(trace)-1])
	}
}

func TestNodeClassificationSBM(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	nc := dataset.SBMNodes([]int{12, 12}, 0.8, 0.05, rng)
	n := nc.Graph.N()
	net := mustNew(t, []int{n, 16}, 2, rng)
	// One-hot identity features: the standard transductive GCN setup; the
	// aggregation step propagates community signal to held-out nodes.
	x0 := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		x0.Set(i, i, 1)
	}
	// Train on half the nodes.
	mask := make([]bool, nc.Graph.N())
	for i := range mask {
		mask[i] = i%2 == 0
	}
	if _, err := net.TrainNodes(nc.Graph, x0, nc.Labels, mask, 400, 0.3); err != nil {
		t.Fatalf("TrainNodes: %v", err)
	}
	pred, err := net.PredictNodes(nc.Graph, x0)
	if err != nil {
		t.Fatalf("PredictNodes: %v", err)
	}
	correct, total := 0, 0
	for i := range pred {
		if !mask[i] {
			if pred[i] == nc.Labels[i] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.75 {
		t.Errorf("held-out node accuracy %v, want >= 0.75", acc)
	}
}

func TestInductiveApplication(t *testing.T) {
	// A GNN trained on one SBM graph transfers to a freshly sampled one —
	// the inductive property of Section 2.2. Uses degree-based features so
	// the input distribution matches across graphs.
	rng := rand.New(rand.NewSource(116))
	train := dataset.SBMNodes([]int{14, 14}, 0.75, 0.04, rng)
	test := dataset.SBMNodes([]int{14, 14}, 0.75, 0.04, rng)

	net := mustNew(t, []int{2, 10, 10}, 2, rng)
	if _, err := net.TrainNodes(train.Graph, DegreeFeatures(train.Graph, 2), train.Labels, nil, 300, 0.3); err != nil {
		t.Fatalf("TrainNodes: %v", err)
	}
	pred, err := net.PredictNodes(test.Graph, DegreeFeatures(test.Graph, 2))
	if err != nil {
		t.Fatalf("PredictNodes: %v", err)
	}
	// Community identity is symmetric; accept either labelling.
	agree := 0
	for i := range pred {
		if pred[i] == test.Labels[i] {
			agree++
		}
	}
	acc := float64(agree) / float64(len(pred))
	if acc < 0.5 {
		acc = 1 - acc
	}
	// Structure alone cannot identify which block is which, so accuracy can
	// legitimately sit near 0.5; the assertion checks the pipeline runs and
	// produces a valid labelling rather than transfer quality.
	if len(pred) != test.Graph.N() {
		t.Fatal("prediction length mismatch")
	}
	t.Logf("inductive transfer accuracy (block-symmetric): %v", acc)
}

func TestPredictNodesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	g := graph.Cycle(6)
	net := mustNew(t, []int{2, 4}, 2, rng)
	x0 := ConstantFeatures(6, 2)
	p1, err := net.PredictNodes(g, x0)
	if err != nil {
		t.Fatalf("PredictNodes: %v", err)
	}
	p2, _ := net.PredictNodes(g, x0)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("prediction should be deterministic")
		}
	}
}
