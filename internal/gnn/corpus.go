package gnn

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// Corpus batching: the serving pipelines and experiments embed hundreds of
// graphs per call, and the one-graph-at-a-time path paid an adjacency
// materialisation plus fresh activation matrices per graph. EmbedCorpus
// fans the corpus out over linalg.ParallelForWorkers with per-worker
// scratch pooled in a sync.Pool — CSR snapshot build plus ping-pong
// activation buffers that grow to the corpus maximum once and are reused —
// and TrainCorpus trains one shared network by deterministic full-batch
// gradient descent over per-graph gradients computed in parallel.

// embedScratch is one worker's reusable inference state: the aggregation
// buffer, the WSelf/WAgg product buffer, and the ping-pong activation
// pair. Buffers grow monotonically and are recycled through the pool.
type embedScratch struct {
	ax, aw, ping, pong []float64
}

func growBuf(buf []float64, size int) []float64 {
	if cap(buf) < size {
		return make([]float64, size)
	}
	return buf[:size]
}

// matMulInto computes dst = a·b over a row-major an×am buffer, replaying
// the dense linalg.Mul loop exactly (zero-skip, ascending-k accumulation)
// so the scratch-buffer inference path stays bit-identical to the
// allocating one.
//
//x2vec:hotpath
func matMulInto(dst, a []float64, an, am int, b *linalg.Matrix) {
	bc := b.Cols
	for i := 0; i < an; i++ {
		drow := dst[i*bc : i*bc+bc]
		for j := range drow {
			drow[j] = 0
		}
		arow := a[i*am : i*am+am]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*bc : k*bc+bc]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// embedWith runs the inference-only forward pass over pooled scratch and
// returns a fresh matrix holding the final node states.
func (net *Network) embedWith(adj *csrAdj, x0 *linalg.Matrix, sc *embedScratch) *linalg.Matrix {
	n := adj.n
	cur, curW := x0.Data, x0.Cols
	usePing := true
	for _, l := range net.Layers {
		din, dout := l.WSelf.Rows, l.WSelf.Cols
		sc.ax = growBuf(sc.ax, n*din)
		adj.aggInto(sc.ax, cur, din)
		var dst []float64
		if usePing {
			sc.ping = growBuf(sc.ping, n*dout)
			dst = sc.ping
		} else {
			sc.pong = growBuf(sc.pong, n*dout)
			dst = sc.pong
		}
		matMulInto(dst, cur, n, din, l.WSelf)
		sc.aw = growBuf(sc.aw, n*dout)
		matMulInto(sc.aw, sc.ax, n, din, l.WAgg)
		for i := 0; i < n; i++ {
			row := dst[i*dout : i*dout+dout]
			for j := range row {
				v := row[j] + sc.aw[i*dout+j] + l.Bias[j]
				if v < 0 {
					v = 0
				}
				row[j] = v
			}
		}
		cur, curW = dst, dout
		usePing = !usePing
	}
	out := linalg.NewMatrix(n, curW)
	copy(out.Data, cur[:n*curW])
	return out
}

// EmbedCorpus embeds every graph of the corpus (final node states per
// graph) over the worker pool (workers ≤ 0 = GOMAXPROCS). x0s[i] is graph
// i's initial feature matrix. Results are bit-identical to per-graph Embed
// calls for every pool size.
func (net *Network) EmbedCorpus(gs []*graph.Graph, x0s []*linalg.Matrix, workers int) ([]*linalg.Matrix, error) {
	if len(gs) != len(x0s) {
		return nil, fmt.Errorf("gnn: %d graphs with %d feature matrices", len(gs), len(x0s))
	}
	for i := range gs {
		if err := net.checkInput(gs[i], x0s[i]); err != nil {
			return nil, fmt.Errorf("graph %d: %w", i, err)
		}
	}
	out := make([]*linalg.Matrix, len(gs))
	var pool sync.Pool
	pool.New = func() any { return &embedScratch{} }
	linalg.ParallelForWorkers(workers, len(gs), func(i int) {
		sc := pool.Get().(*embedScratch)
		out[i] = net.embedWith(newCSR(gs[i]), x0s[i], sc)
		pool.Put(sc)
	})
	return out, nil
}

// NodeTask is one labelled graph of a TrainCorpus batch.
type NodeTask struct {
	G      *graph.Graph
	X0     *linalg.Matrix
	Labels []int
	Mask   []bool // nil = all nodes train
}

// TrainCorpus trains the shared network on node classification across a
// corpus by full-batch gradient descent: each epoch computes every graph's
// parameter gradient in parallel over the worker pool, reduces them in
// graph order (so the result is identical for every pool size), and takes
// one step along the mean. Adjacency snapshots build once and are reused
// across epochs. Returns the per-epoch mean loss trace.
func (net *Network) TrainCorpus(tasks []NodeTask, epochs int, lr float64, workers int) ([]float64, error) {
	for i, t := range tasks {
		if err := net.checkInput(t.G, t.X0); err != nil {
			return nil, fmt.Errorf("graph %d: %w", i, err)
		}
		if err := net.checkLabels(t.G, t.Labels, t.Mask); err != nil {
			return nil, fmt.Errorf("graph %d: %w", i, err)
		}
	}
	if epochs < 0 {
		return nil, fmt.Errorf("gnn: negative epoch count %d", epochs)
	}
	adjs := make([]*csrAdj, len(tasks))
	linalg.ParallelForWorkers(workers, len(tasks), func(i int) { adjs[i] = newCSR(tasks[i].G) })
	losses := make([]float64, len(tasks))
	grads := make([]*netGrads, len(tasks))
	trace := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		linalg.ParallelForWorkers(workers, len(tasks), func(i int) {
			losses[i], grads[i] = net.nodeGradients(adjs[i], tasks[i].X0, tasks[i].Labels, tasks[i].Mask)
		})
		total, active := net.zeroGrads(), 0
		var meanLoss float64
		for i := range tasks { // fixed reduction order: deterministic
			if grads[i] == nil {
				continue
			}
			active++
			meanLoss += losses[i]
			addGrads(total, grads[i])
		}
		if active > 0 {
			scaleGrads(total, 1/float64(active))
			net.apply(total, lr)
			meanLoss /= float64(active)
		}
		trace = append(trace, meanLoss)
	}
	return trace, nil
}

// zeroGrads allocates a gradient holder shaped like the network.
func (net *Network) zeroGrads() *netGrads {
	gr := &netGrads{
		layers: make([]layerGrad, len(net.Layers)),
		dWOut:  linalg.NewMatrix(net.WOut.Rows, net.WOut.Cols),
		dBOut:  make([]float64, len(net.BOut)),
	}
	for l, lay := range net.Layers {
		gr.layers[l] = layerGrad{
			dWSelf: linalg.NewMatrix(lay.WSelf.Rows, lay.WSelf.Cols),
			dWAgg:  linalg.NewMatrix(lay.WAgg.Rows, lay.WAgg.Cols),
			dBias:  make([]float64, len(lay.Bias)),
		}
	}
	return gr
}

func addGrads(dst, src *netGrads) {
	for l := range dst.layers {
		addInto(dst.layers[l].dWSelf.Data, src.layers[l].dWSelf.Data)
		addInto(dst.layers[l].dWAgg.Data, src.layers[l].dWAgg.Data)
		addIntoVec(dst.layers[l].dBias, src.layers[l].dBias)
	}
	addInto(dst.dWOut.Data, src.dWOut.Data)
	addIntoVec(dst.dBOut, src.dBOut)
}

func scaleGrads(gr *netGrads, s float64) {
	for l := range gr.layers {
		scaleVec(gr.layers[l].dWSelf.Data, s)
		scaleVec(gr.layers[l].dWAgg.Data, s)
		scaleVec(gr.layers[l].dBias, s)
	}
	scaleVec(gr.dWOut.Data, s)
	scaleVec(gr.dBOut, s)
}

func addInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

func addIntoVec(dst, src []float64) { addInto(dst, src) }

func scaleVec(xs []float64, s float64) {
	for i := range xs {
		xs[i] *= s
	}
}
