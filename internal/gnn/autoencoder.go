package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// Autoencoder is the graph autoencoder of Section 2.5 (Kipf-Welling GAE
// style): a message-passing encoder produces node states Z, and the inner-
// product decoder σ(z_vᵀ z_w) reconstructs the adjacency matrix. Training
// is unsupervised — the reconstruction loss needs no labels — giving an
// unsupervised way to train graph/node embeddings.
type Autoencoder struct {
	Encoder *Network
	Dim     int
}

// NewAutoencoder builds an encoder with the given widths (dims[0] is the
// input feature width; the final width is the latent dimension).
func NewAutoencoder(dims []int, rng *rand.Rand) (*Autoencoder, error) {
	// The output head is unused; give it width 1.
	enc, err := New(dims, 1, rng)
	if err != nil {
		return nil, err
	}
	return &Autoencoder{Encoder: enc, Dim: dims[len(dims)-1]}, nil
}

// Encode returns the latent node states Z. The final encoder layer is
// applied without its ReLU (a linear output layer, as in the original graph
// autoencoder) so latent coordinates can be negative and inner products are
// unconstrained.
func (ae *Autoencoder) Encode(g *graph.Graph, x0 *linalg.Matrix) (*linalg.Matrix, error) {
	if err := ae.Encoder.checkInput(g, x0); err != nil {
		return nil, err
	}
	st := ae.Encoder.forward(newCSR(g), x0)
	if len(st.pre) == 0 {
		return nil, fmt.Errorf("gnn: autoencoder has no encoder layers")
	}
	return st.pre[len(st.pre)-1], nil
}

// posWeight returns the standard GAE class-balance factor: the ratio of
// non-edges to edges among ordered off-diagonal pairs. Weighting positive
// terms by it keeps the all-zero latent from being a stable saddle on
// sparse graphs.
func posWeight(g *graph.Graph) float64 {
	n := g.N()
	total := n*n - n
	pos := 0
	a := g.AdjacencyMatrix()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && a[i][j] != 0 {
				pos++
			}
		}
	}
	if pos == 0 || total == pos {
		return 1
	}
	return float64(total-pos) / float64(pos)
}

// ReconstructionLoss is the mean binary cross-entropy between σ(ZZᵀ) and
// the adjacency matrix (diagonal excluded), with positive pairs re-weighted
// by the non-edge/edge ratio.
func (ae *Autoencoder) ReconstructionLoss(g *graph.Graph, x0 *linalg.Matrix) (float64, error) {
	z, err := ae.Encode(g, x0)
	if err != nil {
		return 0, err
	}
	a := g.AdjacencyMatrix()
	n := g.N()
	pw := posWeight(g)
	var loss float64
	var count int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p := sigmoidAE(linalg.Dot(z.Row(i), z.Row(j)))
			if a[i][j] != 0 {
				loss += -pw * math.Log(math.Max(p, 1e-12))
			} else {
				loss += -math.Log(math.Max(1-p, 1e-12))
			}
			count++
		}
	}
	if count == 0 {
		return 0, nil
	}
	return loss / float64(count), nil
}

// Train runs full-batch gradient descent on the reconstruction loss via
// backprop through the inner-product decoder and the encoder layers,
// returning the loss trace. The adjacency snapshot is built once and shared
// by every epoch.
func (ae *Autoencoder) Train(g *graph.Graph, x0 *linalg.Matrix, epochs int, lr float64) ([]float64, error) {
	if err := ae.Encoder.checkInput(g, x0); err != nil {
		return nil, err
	}
	if len(ae.Encoder.Layers) == 0 {
		return nil, fmt.Errorf("gnn: autoencoder has no encoder layers")
	}
	adj := newCSR(g)
	trace := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		trace = append(trace, ae.step(adj, g, x0, lr))
	}
	return trace, nil
}

func (ae *Autoencoder) step(adj *csrAdj, g *graph.Graph, x0 *linalg.Matrix, lr float64) float64 {
	net := ae.Encoder
	st := net.forward(adj, x0)
	z := st.pre[len(st.pre)-1]
	a := g.AdjacencyMatrix()
	n := g.N()
	// Loss and gradient wrt Z: dL/dz_i = Σ_j (σ(z_i·z_j) − A_ij)·z_j / count.
	dZ := linalg.NewMatrix(n, ae.Dim)
	var loss float64
	count := n*n - n
	if count == 0 {
		return 0
	}
	pw := posWeight(g)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p := sigmoidAE(linalg.Dot(z.Row(i), z.Row(j)))
			var gcoef float64
			if a[i][j] != 0 {
				loss += -pw * math.Log(math.Max(p, 1e-12))
				gcoef = pw * (p - 1) / float64(count)
			} else {
				loss += -math.Log(math.Max(1-p, 1e-12))
				gcoef = p / float64(count)
			}
			zi, zj := z.Row(i), z.Row(j)
			di := dZ.Row(i)
			for d := 0; d < ae.Dim; d++ {
				di[d] += gcoef * zj[d]
			}
			dj := dZ.Row(j)
			for d := 0; d < ae.Dim; d++ {
				dj[d] += gcoef * zi[d]
			}
		}
	}
	loss /= float64(count)
	// Backprop dZ through the encoder layers (same machinery as
	// nodeGradients, aggregating over the CSR snapshot).
	dX := dZ
	for l := len(net.Layers) - 1; l >= 0; l-- {
		dZl := dX.Clone()
		if l < len(net.Layers)-1 {
			// Inner layers pass through ReLU; the final layer is linear.
			zpre := st.pre[l]
			for i, v := range zpre.Data {
				if v <= 0 {
					dZl.Data[i] = 0
				}
			}
		}
		xin := st.inputs[l]
		ax := st.adj.mul(xin)
		dWSelf := xin.T().Mul(dZl)
		dWAgg := ax.T().Mul(dZl)
		dBias := colSumsOf(dZl)
		if l > 0 {
			dX = dZl.Mul(net.Layers[l].WSelf.T()).Add(st.adj.tMul(dZl).Mul(net.Layers[l].WAgg.T()))
		}
		applyUpdate(net.Layers[l].WSelf, dWSelf, lr)
		applyUpdate(net.Layers[l].WAgg, dWAgg, lr)
		for j := range net.Layers[l].Bias {
			net.Layers[l].Bias[j] -= lr * dBias[j]
		}
	}
	return loss
}

func sigmoidAE(x float64) float64 {
	switch {
	case x > 30:
		return 1
	case x < -30:
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}
