package gnn

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// csrAdj is a CSR snapshot of the weighted adjacency matrix, following the
// walker snapshot idiom of embed/walks.go: int32 offsets into flat
// neighbour/weight arrays, built once per graph and shared by every layer
// of a forward/backward pass. The dense path materialised an n×n
// AdjacencyMatrix per forward call — O(n²) memory that made corpus-scale
// GNN embedding unusable; the CSR aggregation touches O(n + m) instead.
//
// Bit-identity with the dense path is load-bearing (the differential suite
// pins it): linalg's dense Mul skips zero entries and accumulates columns
// in ascending order, so aggregating over column-sorted nonzero cells
// replays the exact float operation sequence. Duplicate (u,v) edges are
// merged by summing weights in edge order — the same per-cell accumulation
// order as AdjacencyMatrix — and cells whose merged weight is exactly zero
// are dropped, matching the dense multiply's zero-skip.
type csrAdj struct {
	n       int
	offsets []int32 // len n+1; row u's cells are cols/wts[offsets[u]:offsets[u+1]]
	cols    []int32 // column ids, ascending within each row
	wts     []float64

	// Transpose views for the backward pass (Aᵀ·dZ). Undirected adjacency
	// is exactly symmetric — same cells, same merged values — so these
	// alias the forward arrays; directed graphs build a real transpose.
	tOffsets []int32
	tCols    []int32
	tWts     []float64
}

type csrCell struct {
	col int32
	w   float64
}

// newCSR snapshots g's adjacency structure.
func newCSR(g *graph.Graph) *csrAdj {
	n := g.N()
	rows := make([][]csrCell, n)
	for _, e := range g.Edges() {
		rows[e.U] = append(rows[e.U], csrCell{int32(e.V), e.Weight})
		if !g.Directed() && e.U != e.V {
			rows[e.V] = append(rows[e.V], csrCell{int32(e.U), e.Weight})
		}
	}
	c := &csrAdj{n: n, offsets: make([]int32, n+1)}
	for u, row := range rows {
		// Stable by column: cells of one (u,v) pair stay in edge order, so
		// the merge below accumulates exactly like the dense fill.
		sort.SliceStable(row, func(i, j int) bool { return row[i].col < row[j].col })
		for i := 0; i < len(row); {
			j := i + 1
			w := row[i].w
			for j < len(row) && row[j].col == row[i].col {
				w += row[j].w
				j++
			}
			if w != 0 { // dense Mul skips zero entries
				c.cols = append(c.cols, row[i].col)
				c.wts = append(c.wts, w)
			}
			i = j
		}
		c.offsets[u+1] = int32(len(c.cols))
	}
	if !g.Directed() {
		c.tOffsets, c.tCols, c.tWts = c.offsets, c.cols, c.wts
		return c
	}
	// Counting-sort transpose: walking forward rows in ascending u fills
	// each transpose row in ascending column order for free.
	c.tOffsets = make([]int32, n+1)
	for _, col := range c.cols {
		c.tOffsets[col+1]++
	}
	for i := 0; i < n; i++ {
		c.tOffsets[i+1] += c.tOffsets[i]
	}
	c.tCols = make([]int32, len(c.cols))
	c.tWts = make([]float64, len(c.wts))
	next := make([]int32, n)
	copy(next, c.tOffsets[:n])
	for u := 0; u < n; u++ {
		for p := c.offsets[u]; p < c.offsets[u+1]; p++ {
			v := c.cols[p]
			q := next[v]
			next[v]++
			c.tCols[q] = int32(u)
			c.tWts[q] = c.wts[p]
		}
	}
	return c
}

// aggInto computes dst = A·x over row-major n×d buffers: the sparse
// message-aggregation inner loop of every GNN layer. dst is overwritten.
//
//x2vec:hotpath
func (c *csrAdj) aggInto(dst, x []float64, d int) {
	aggRows(c.offsets, c.cols, c.wts, dst, x, d)
}

// tAggInto computes dst = Aᵀ·x, the backward-pass aggregation.
//
//x2vec:hotpath
func (c *csrAdj) tAggInto(dst, x []float64, d int) {
	aggRows(c.tOffsets, c.tCols, c.tWts, dst, x, d)
}

// aggRows is the shared CSR row-times-matrix kernel. Accumulation per
// destination element runs over ascending columns, replaying the dense
// multiply's operation order exactly.
//
//x2vec:hotpath
func aggRows(offsets, cols []int32, wts, dst, x []float64, d int) {
	n := len(offsets) - 1
	for i := 0; i < n; i++ {
		drow := dst[i*d : i*d+d]
		for j := range drow {
			drow[j] = 0
		}
		for p := offsets[i]; p < offsets[i+1]; p++ {
			w := wts[p]
			xrow := x[int(cols[p])*d : int(cols[p])*d+d]
			for j, v := range xrow {
				drow[j] += w * v
			}
		}
	}
}

// mul returns A·x as a fresh matrix (the allocating convenience over
// aggInto used by the training path, which retains activations anyway).
func (c *csrAdj) mul(x *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(c.n, x.Cols)
	c.aggInto(out.Data, x.Data, x.Cols)
	return out
}

// tMul returns Aᵀ·x as a fresh matrix.
func (c *csrAdj) tMul(x *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(c.n, x.Cols)
	c.tAggInto(out.Data, x.Data, x.Cols)
	return out
}
