package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/linalg"
)

func TestEmbedCorpusMatchesEmbed(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	net := mustNew(t, []int{2, 7, 5}, 3, rng)
	var gs []*graph.Graph
	var x0s []*linalg.Matrix
	for i := 0; i < 25; i++ {
		g := randomWeightedGraph(3+rng.Intn(10), i%3 == 0, rng)
		gs = append(gs, g)
		x0s = append(x0s, RandomFeatures(g.N(), 2, rng))
	}
	for _, workers := range []int{1, 4, 0} {
		out, err := net.EmbedCorpus(gs, x0s, workers)
		if err != nil {
			t.Fatalf("EmbedCorpus(workers=%d): %v", workers, err)
		}
		for i := range gs {
			want := mustEmbed(t, net, gs[i], x0s[i])
			if out[i].Rows != want.Rows || out[i].Cols != want.Cols {
				t.Fatalf("graph %d: shape mismatch", i)
			}
			for j, v := range out[i].Data {
				if math.Float64bits(v) != math.Float64bits(want.Data[j]) {
					t.Fatalf("workers=%d graph %d: corpus embedding diverges from Embed at %d: %v vs %v",
						workers, i, j, v, want.Data[j])
				}
			}
		}
	}
}

func TestEmbedCorpusValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(412))
	net := mustNew(t, []int{2, 4}, 2, rng)
	g := graph.Cycle(4)
	if _, err := net.EmbedCorpus([]*graph.Graph{g}, nil, 2); err == nil {
		t.Error("length mismatch should be an error")
	}
	if _, err := net.EmbedCorpus([]*graph.Graph{g}, []*linalg.Matrix{ConstantFeatures(4, 9)}, 2); err == nil {
		t.Error("feature-width mismatch should be an error")
	}
}

func TestTrainCorpusDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(413))
	var tasks []NodeTask
	for i := 0; i < 8; i++ {
		nc := dataset.SBMNodes([]int{5, 5}, 0.8, 0.1, rng)
		tasks = append(tasks, NodeTask{
			G:      nc.Graph,
			X0:     DegreeFeatures(nc.Graph, 2),
			Labels: nc.Labels,
		})
	}
	train := func(workers int) (*Network, []float64) {
		net := mustNew(t, []int{2, 6}, 2, rand.New(rand.NewSource(99)))
		trace, err := net.TrainCorpus(tasks, 20, 0.2, workers)
		if err != nil {
			t.Fatalf("TrainCorpus(workers=%d): %v", workers, err)
		}
		return net, trace
	}
	n1, tr1 := train(1)
	n4, tr4 := train(4)
	for e := range tr1 {
		if math.Float64bits(tr1[e]) != math.Float64bits(tr4[e]) {
			t.Fatalf("epoch %d: loss trace differs across worker counts: %v vs %v", e, tr1[e], tr4[e])
		}
	}
	for l := range n1.Layers {
		for i, v := range n1.Layers[l].WSelf.Data {
			if math.Float64bits(v) != math.Float64bits(n4.Layers[l].WSelf.Data[i]) {
				t.Fatalf("layer %d WSelf[%d] differs across worker counts", l, i)
			}
		}
	}
	if tr1[len(tr1)-1] >= tr1[0] {
		t.Errorf("corpus training loss did not decrease: %v -> %v", tr1[0], tr1[len(tr1)-1])
	}
}

func TestTrainCorpusValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(414))
	net := mustNew(t, []int{2, 4}, 2, rng)
	g := graph.Cycle(4)
	bad := []NodeTask{{G: g, X0: ConstantFeatures(4, 2), Labels: []int{0, 1}}}
	if _, err := net.TrainCorpus(bad, 2, 0.1, 2); err == nil {
		t.Error("label-length mismatch should be an error")
	}
}

// TestGraphEmbedRenumberingInvariant pins the serving-path property: with
// degree features, sum-pooled graph embeddings ignore node numbering.
func TestGraphEmbedRenumberingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(415))
	net := mustNew(t, []int{2, 5, 4}, 2, rng)
	g := randomWeightedGraph(9, false, rng)
	// Relabel nodes by a random permutation.
	perm := rng.Perm(g.N())
	h := graph.New(g.N())
	for _, e := range g.Edges() {
		h.AddEdgeFull(perm[e.U], perm[e.V], e.Weight, e.Label)
	}
	eg, err := net.GraphEmbed(g, DegreeFeatures(g, 2))
	if err != nil {
		t.Fatalf("GraphEmbed: %v", err)
	}
	eh, err := net.GraphEmbed(h, DegreeFeatures(h, 2))
	if err != nil {
		t.Fatalf("GraphEmbed: %v", err)
	}
	for i := range eg {
		if math.Abs(eg[i]-eh[i]) > 1e-9 {
			t.Fatalf("graph embedding is not renumbering-invariant: %v vs %v", eg, eh)
		}
	}
}
