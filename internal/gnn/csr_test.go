package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// randomWeightedGraph samples a messy graph: random weights (some negative),
// self-loops, and duplicate parallel edges — everything the CSR merge has to
// reproduce in the dense fill's exact accumulation order.
func randomWeightedGraph(n int, directed bool, rng *rand.Rand) *graph.Graph {
	var g *graph.Graph
	if directed {
		g = graph.NewDirected(n)
	} else {
		g = graph.New(n)
	}
	m := n * 3
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		w := rng.NormFloat64()
		if rng.Intn(7) == 0 {
			w = 0 // exercise the zero-weight drop
		}
		g.AddEdgeFull(u, v, w, 0)
	}
	return g
}

func TestCSRForwardBitIdenticalToDense(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(12)
		g := randomWeightedGraph(n, trial%2 == 1, rng)
		net := mustNew(t, []int{3, 6, 4}, 2, rng)
		x0 := RandomFeatures(n, 3, rng)
		sparse := mustEmbed(t, net, g, x0)
		dense, err := net.EmbedDense(g, x0)
		if err != nil {
			t.Fatalf("EmbedDense: %v", err)
		}
		for i, v := range sparse.Data {
			if math.Float64bits(v) != math.Float64bits(dense.Data[i]) {
				t.Fatalf("trial %d (directed=%v): CSR forward diverges from dense at %d: %v vs %v",
					trial, g.Directed(), i, v, dense.Data[i])
			}
		}
	}
}

func TestCSRTransposeMatchesDenseTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		g := randomWeightedGraph(n, trial%2 == 0, rng)
		adj := newCSR(g)
		a := linalg.FromRows(g.AdjacencyMatrix())
		x := RandomFeatures(n, 4, rng)
		want := a.T().Mul(x)
		got := adj.tMul(x)
		for i, v := range got.Data {
			if math.Abs(v-want.Data[i]) > 1e-12 {
				t.Fatalf("trial %d: transpose aggregation diverges at %d: %v vs %v", trial, i, v, want.Data[i])
			}
		}
	}
}

func TestAggRowsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	g := randomWeightedGraph(32, false, rng)
	adj := newCSR(g)
	d := 8
	x := RandomFeatures(32, d, rng)
	dst := make([]float64, 32*d)
	if allocs := testing.AllocsPerRun(50, func() {
		adj.aggInto(dst, x.Data, d)
	}); allocs != 0 {
		t.Errorf("aggInto allocates %v times per run, want 0", allocs)
	}
}
