package gnn

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

func TestAutoencoderTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	g, _ := graph.SBM([]int{8, 8}, 0.8, 0.05, rng)
	ae := NewAutoencoder([]int{g.N(), 8, 4}, rng)
	x0 := identityFeatures(g.N())
	before := ae.ReconstructionLoss(g, x0)
	trace := ae.Train(g, x0, 200, 0.02)
	after := ae.ReconstructionLoss(g, x0)
	if after >= before {
		t.Errorf("autoencoder loss did not drop: %v -> %v", before, after)
	}
	if len(trace) != 200 {
		t.Errorf("trace length %d", len(trace))
	}
}

func TestAutoencoderLatentSeparatesCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	g, truth := graph.SBM([]int{10, 10}, 0.85, 0.05, rng)
	// One-hot identity features: the standard GAE setup.
	ae := NewAutoencoder([]int{g.N(), 12, 4}, rng)
	x0 := identityFeatures(g.N())
	ae.Train(g, x0, 400, 0.02)
	z := ae.Encode(g, x0)
	assign := linalg.KMeans(z, 2, rng)
	if nmi := linalg.NMI(truth, assign); nmi < 0.4 {
		t.Errorf("autoencoder latent NMI=%v, want >= 0.4", nmi)
	}
}

func identityFeatures(n int) *linalg.Matrix {
	x := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		x.Set(i, i, 1)
	}
	return x
}

func TestAutoencoderOnEmptyishGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	ae := NewAutoencoder([]int{2, 3}, rng)
	g := graph.New(1)
	x0 := ConstantFeatures(1, 2)
	_ = rng
	if loss := ae.ReconstructionLoss(g, x0); loss != 0 {
		t.Errorf("single-vertex graph loss=%v, want 0 (no off-diagonal pairs)", loss)
	}
	if got := ae.Train(g, x0, 3, 0.1); len(got) != 3 {
		t.Error("training on trivial graph should still produce a trace")
	}
}
