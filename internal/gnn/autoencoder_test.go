package gnn

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

func mustNewAutoencoder(t *testing.T, dims []int, rng *rand.Rand) *Autoencoder {
	t.Helper()
	ae, err := NewAutoencoder(dims, rng)
	if err != nil {
		t.Fatalf("NewAutoencoder(%v): %v", dims, err)
	}
	return ae
}

func TestAutoencoderTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	g, _ := graph.SBM([]int{8, 8}, 0.8, 0.05, rng)
	ae := mustNewAutoencoder(t, []int{g.N(), 8, 4}, rng)
	x0 := identityFeatures(g.N())
	before, err := ae.ReconstructionLoss(g, x0)
	if err != nil {
		t.Fatalf("ReconstructionLoss: %v", err)
	}
	trace, err := ae.Train(g, x0, 200, 0.02)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	after, _ := ae.ReconstructionLoss(g, x0)
	if after >= before {
		t.Errorf("autoencoder loss did not drop: %v -> %v", before, after)
	}
	if len(trace) != 200 {
		t.Errorf("trace length %d", len(trace))
	}
}

func TestAutoencoderLatentSeparatesCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	g, truth := graph.SBM([]int{10, 10}, 0.85, 0.05, rng)
	// One-hot identity features: the standard GAE setup.
	ae := mustNewAutoencoder(t, []int{g.N(), 12, 4}, rng)
	x0 := identityFeatures(g.N())
	if _, err := ae.Train(g, x0, 400, 0.02); err != nil {
		t.Fatalf("Train: %v", err)
	}
	z, err := ae.Encode(g, x0)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	assign := linalg.KMeans(z, 2, rng)
	if nmi := linalg.NMI(truth, assign); nmi < 0.4 {
		t.Errorf("autoencoder latent NMI=%v, want >= 0.4", nmi)
	}
}

func identityFeatures(n int) *linalg.Matrix {
	x := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		x.Set(i, i, 1)
	}
	return x
}

func TestAutoencoderOnEmptyishGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	ae := mustNewAutoencoder(t, []int{2, 3}, rng)
	g := graph.New(1)
	x0 := ConstantFeatures(1, 2)
	if loss, err := ae.ReconstructionLoss(g, x0); err != nil || loss != 0 {
		t.Errorf("single-vertex graph loss=%v err=%v, want 0 (no off-diagonal pairs)", loss, err)
	}
	got, err := ae.Train(g, x0, 3, 0.1)
	if err != nil || len(got) != 3 {
		t.Errorf("training on trivial graph should still produce a trace (err=%v)", err)
	}
}

func TestAutoencoderRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(184))
	if _, err := NewAutoencoder(nil, rng); err == nil {
		t.Error("empty dims should be rejected")
	}
	ae := mustNewAutoencoder(t, []int{2, 3}, rng)
	if _, err := ae.Encode(graph.Cycle(4), ConstantFeatures(4, 5)); err == nil {
		t.Error("wrong feature width should be an error")
	}
	if _, err := ae.Train(graph.Cycle(4), ConstantFeatures(3, 2), 2, 0.1); err == nil {
		t.Error("row-count mismatch should be an error")
	}
}
