package linalg

import (
	"math"
	"sort"
)

// SymmetricEigen computes the full eigendecomposition of a symmetric matrix
// using the cyclic Jacobi method. It returns the eigenvalues in descending
// order and the matching orthonormal eigenvectors as the columns of V.
func SymmetricEigen(a *Matrix) (values []float64, v *Matrix) {
	n := a.Rows
	if n != a.Cols {
		panic("linalg: eigen of non-square matrix") //x2vec:allow nopanic shape precondition (programmer error), BLAS-style contract
	}
	m := a.Clone()
	v = Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation J(p,q,theta) on both sides of m and
				// accumulate into v.
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}
	// Sort descending, permuting eigenvector columns in step.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	sortedVals := make([]float64, n)
	sortedV := NewMatrix(n, n)
	for col, src := range idx {
		sortedVals[col] = values[src]
		for r := 0; r < n; r++ {
			sortedV.Set(r, col, v.At(r, src))
		}
	}
	return sortedVals, sortedV
}

// Eigenvalues returns just the eigenvalues of a symmetric matrix, descending.
func Eigenvalues(a *Matrix) []float64 {
	vals, _ := SymmetricEigen(a)
	return vals
}

// SVD computes the thin singular value decomposition A = U Σ Vᵀ via the
// eigendecomposition of AᵀA (adequate for the small dense matrices used
// here). Singular values are returned descending; U is r×k, V is c×k with
// k = min(r,c).
func SVD(a *Matrix) (u *Matrix, sigma []float64, v *Matrix) {
	r, c := a.Rows, a.Cols
	k := r
	if c < k {
		k = c
	}
	ata := a.T().Mul(a)
	vals, vecs := SymmetricEigen(ata)
	sigma = make([]float64, k)
	v = NewMatrix(c, k)
	for j := 0; j < k; j++ {
		lam := vals[j]
		if lam < 0 {
			lam = 0
		}
		sigma[j] = math.Sqrt(lam)
		for i := 0; i < c; i++ {
			v.Set(i, j, vecs.At(i, j))
		}
	}
	u = NewMatrix(r, k)
	av := a.Mul(v)
	for j := 0; j < k; j++ {
		if sigma[j] > 1e-12 {
			for i := 0; i < r; i++ {
				u.Set(i, j, av.At(i, j)/sigma[j])
			}
		} else {
			// Null singular direction: leave the column zero; callers using
			// truncated SVDs never touch it.
			for i := 0; i < r; i++ {
				u.Set(i, j, 0)
			}
		}
	}
	return u, sigma, v
}

// SpectralEmbedding returns the d-dimensional embedding of a symmetric
// similarity matrix S: rows of U_d·|Λ_d|^{1/2} for the top-d eigenvalues by
// magnitude. This is the SVD/matrix-factorisation node embedding of
// Section 2.1 (Figure 2a/2b).
func SpectralEmbedding(s *Matrix, d int) *Matrix {
	n := s.Rows
	vals, vecs := SymmetricEigen(s)
	// Order by |λ| descending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(vals[idx[a]]) > math.Abs(vals[idx[b]])
	})
	if d > n {
		d = n
	}
	x := NewMatrix(n, d)
	for j := 0; j < d; j++ {
		col := idx[j]
		scale := math.Sqrt(math.Abs(vals[col]))
		for i := 0; i < n; i++ {
			x.Set(i, j, vecs.At(i, col)*scale)
		}
	}
	return x
}

// PowerIteration approximates the dominant eigenvalue (by magnitude) of a
// square matrix. Deterministic start vector; iters controls precision.
func PowerIteration(a *Matrix, iters int) float64 {
	n := a.Rows
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	var lambda float64
	for it := 0; it < iters; it++ {
		y := a.MulVec(x)
		norm := Norm2(y)
		if norm == 0 {
			return 0
		}
		for i := range y {
			y[i] /= norm
		}
		lambda = Dot(y, a.MulVec(y))
		x = y
	}
	return lambda
}
