package linalg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs f(i) for i = 0..n-1 across a GOMAXPROCS-sized worker
// pool. Indices are handed out through an atomic counter, so uneven work
// items (e.g. the shrinking rows of a triangular Gram fill) stay balanced
// across workers. f must be safe to call concurrently for distinct i.
func ParallelFor(n int, f func(i int)) { ParallelForWorkers(0, n, f) }

// DefaultWorkers returns the pool size a non-positive worker cap resolves
// to (GOMAXPROCS). Callers that shard work into per-worker chunks — rather
// than per-item indices — use this to pick the chunk count that matches the
// pool ParallelForWorkers will actually run.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ParallelForWorkers is ParallelFor with an explicit worker cap: at most
// `workers` goroutines run f concurrently (0 or negative selects the
// GOMAXPROCS default). Pipelines that serve concurrent callers — the serve
// batcher, the daemon — size their pools through this instead of mutating
// the process-global runtime.GOMAXPROCS, so one capped pipeline cannot
// starve every other one in the process.
func ParallelForWorkers(workers, n int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// SymmetricFromFunc fills an n-by-n symmetric matrix from entry(i, j),
// called exactly once per unordered pair i <= j, with rows distributed
// across the worker pool. The worker owning row i writes (i, j) and the
// mirror (j, i) for j >= i, so every matrix element has a unique writer.
func SymmetricFromFunc(n int, entry func(i, j int) float64) *Matrix {
	return SymmetricFromFuncWorkers(0, n, entry)
}

// SymmetricFromFuncWorkers is SymmetricFromFunc with an explicit worker cap
// (0 = GOMAXPROCS), for callers that bound per-pipeline parallelism.
func SymmetricFromFuncWorkers(workers, n int, entry func(i, j int) float64) *Matrix {
	m := NewMatrix(n, n)
	ParallelForWorkers(workers, n, func(i int) {
		for j := i; j < n; j++ {
			v := entry(i, j)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	})
	return m
}
