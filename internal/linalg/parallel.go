package linalg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs f(i) for i = 0..n-1 across a GOMAXPROCS-sized worker
// pool. Indices are handed out through an atomic counter, so uneven work
// items (e.g. the shrinking rows of a triangular Gram fill) stay balanced
// across workers. f must be safe to call concurrently for distinct i.
func ParallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// SymmetricFromFunc fills an n-by-n symmetric matrix from entry(i, j),
// called exactly once per unordered pair i <= j, with rows distributed
// across the worker pool. The worker owning row i writes (i, j) and the
// mirror (j, i) for j >= i, so every matrix element has a unique writer.
func SymmetricFromFunc(n int, entry func(i, j int) float64) *Matrix {
	m := NewMatrix(n, n)
	ParallelFor(n, func(i int) {
		for j := i; j < n; j++ {
			v := entry(i, j)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	})
	return m
}
