package linalg

import "math/big"

// RationalSystem is a linear system M·x = rhs over the rationals.
type RationalSystem struct {
	NumVars int
	rows    [][]*big.Rat // each row has NumVars coefficients
	rhs     []*big.Rat
}

// NewRationalSystem returns an empty system over n variables.
func NewRationalSystem(n int) *RationalSystem {
	return &RationalSystem{NumVars: n}
}

// AddEquation appends the equation Σ coeffs[i]·x_i = rhs, with coefficients
// given as int64s (adequate for adjacency-matrix systems).
func (s *RationalSystem) AddEquation(coeffs map[int]int64, rhs int64) {
	row := make([]*big.Rat, s.NumVars)
	for i := range row {
		row[i] = new(big.Rat)
	}
	for i, c := range coeffs {
		row[i].SetInt64(c)
	}
	s.rows = append(s.rows, row)
	s.rhs = append(s.rhs, new(big.Rat).SetInt64(rhs))
}

// Solvable decides by exact Gaussian elimination whether the system has any
// rational solution, and if so returns one (free variables set to zero).
func (s *RationalSystem) Solvable() (bool, []*big.Rat) {
	nv := s.NumVars
	rows := make([][]*big.Rat, len(s.rows))
	rhs := make([]*big.Rat, len(s.rhs))
	for i := range s.rows {
		rows[i] = make([]*big.Rat, nv)
		for j := range rows[i] {
			rows[i][j] = new(big.Rat).Set(s.rows[i][j])
		}
		rhs[i] = new(big.Rat).Set(s.rhs[i])
	}
	pivotCol := make([]int, 0, nv)
	r := 0
	for c := 0; c < nv && r < len(rows); c++ {
		// Find a pivot.
		p := -1
		for i := r; i < len(rows); i++ {
			if rows[i][c].Sign() != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		rows[r], rows[p] = rows[p], rows[r]
		rhs[r], rhs[p] = rhs[p], rhs[r]
		inv := new(big.Rat).Inv(rows[r][c])
		for j := c; j < nv; j++ {
			rows[r][j].Mul(rows[r][j], inv)
		}
		rhs[r].Mul(rhs[r], inv)
		for i := 0; i < len(rows); i++ {
			if i == r || rows[i][c].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(rows[i][c])
			for j := c; j < nv; j++ {
				t := new(big.Rat).Mul(f, rows[r][j])
				rows[i][j].Sub(rows[i][j], t)
			}
			t := new(big.Rat).Mul(f, rhs[r])
			rhs[i].Sub(rhs[i], t)
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	// Inconsistency: a zero row with nonzero rhs.
	for i := r; i < len(rows); i++ {
		if rhs[i].Sign() != 0 {
			return false, nil
		}
	}
	sol := make([]*big.Rat, nv)
	for i := range sol {
		sol[i] = new(big.Rat)
	}
	for i, c := range pivotCol {
		sol[c].Set(rhs[i])
		// Free variables are zero, so no back-substitution terms needed
		// beyond the pivot value (matrix is in reduced row echelon form
		// restricted to pivot columns; non-pivot columns multiply zeros).
		_ = i
	}
	// Verify: multiply out to be safe (free vars = 0 may interact with
	// non-reduced entries).
	for i := range s.rows {
		acc := new(big.Rat)
		for j := 0; j < nv; j++ {
			if s.rows[i][j].Sign() != 0 && sol[j].Sign() != 0 {
				t := new(big.Rat).Mul(s.rows[i][j], sol[j])
				acc.Add(acc, t)
			}
		}
		if acc.Cmp(s.rhs[i]) != 0 {
			// The zero-free-variable completion failed; fall back to
			// reporting solvability without a witness. Solvability itself is
			// already decided by the rank test above.
			return true, nil
		}
	}
	return true, sol
}
